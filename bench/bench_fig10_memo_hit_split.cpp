/**
 * @file
 * Fig 10 reproduction: memoization hit rate for counter-missing reads,
 * split into hits from Memoized Counter Value Groups and hits from the
 * MRU values of recently evicted groups (Sec IV-C4).  Also reports the
 * Sec VI headline: the fraction of counter misses fully accelerated.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace rmcc;
    auto rmcc_cfg = sim::rmccConfig(sim::SimMode::Functional);
    auto no_recent = rmcc_cfg;
    no_recent.label = "groups-only";
    no_recent.cfg.rmcc_cfg.memo.recent_values = 0;

    std::vector<sim::NamedConfig> configs = {rmcc_cfg, no_recent};
    sim::applyFastEnv(configs);

    util::Table table(
        "Fig 10: memoization hit rate for counter misses",
        {"workload", "group hits", "recent-value hits", "total",
         "groups-only total", "accelerated (Sec VI)"});
    std::vector<double> groups, recent, total, gonly, accel;
    for (const wl::Workload &w : wl::workloadSuite()) {
        const sim::SuiteRow row = sim::runWorkload(w, configs);
        const auto &full = row.results[0].stats;
        const double lookups = full.get("memo.l0_lookups_on_miss");
        const double g =
            lookups ? full.get("memo.l0_group_hit_on_miss") / lookups : 0;
        const double r =
            lookups ? full.get("memo.l0_recent_hit_on_miss") / lookups
                    : 0;
        groups.push_back(g);
        recent.push_back(r);
        total.push_back(g + r);
        gonly.push_back(row.results[1].memoHitRateOnMiss());
        accel.push_back(row.results[0].acceleratedMissRate());
        table.addRow(w.name,
                     {g * 100, r * 100, (g + r) * 100,
                      gonly.back() * 100, accel.back() * 100},
                     1);
        std::fputs(("fig10: " + w.name + " done\n").c_str(), stderr);
    }
    table.addRow("mean",
                 {util::mean(groups) * 100, util::mean(recent) * 100,
                  util::mean(total) * 100, util::mean(gonly) * 100,
                  util::mean(accel) * 100},
                 1);
    table.emit("fig10.csv");
    bench::exitIfInterrupted("fig10.csv");
    return 0;
}
