/**
 * @file
 * Fig 22 reproduction: memory traffic overhead vs Morphable under group
 * sizes 4, 8, and 16, at the 1% budget.  The paper finds size 16 incurs
 * the least overhead (longer +1 runs before crossing group boundaries).
 */
#include "bench_common.hpp"

int
main()
{
    using namespace rmcc;
    std::vector<sim::NamedConfig> configs = {
        sim::baselineConfig(sim::SimMode::Functional,
                            ctr::SchemeKind::Morphable)};
    for (const unsigned gs : {4u, 8u, 16u}) {
        auto nc = sim::rmccConfig(sim::SimMode::Functional);
        nc.label = "group size " + std::to_string(gs);
        nc.cfg.rmcc_cfg.memo.group_size = gs;
        nc.cfg.rmcc_cfg.memo.groups = 128 / gs;
        configs.push_back(nc);
    }
    bench::runAndEmit(
        "Fig 22: traffic overhead vs Morphable, by group size",
        "fig22.csv", configs,
        [](const sim::SuiteRow &row, std::size_t c) {
            if (c == 0)
                return 0.0;
            const double base = row.results[0].dramAccesses();
            return base > 0
                       ? row.results[c].dramAccesses() / base - 1.0
                       : 0.0;
        },
        /*percent=*/true);
    return 0;
}
