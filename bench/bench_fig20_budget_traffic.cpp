/**
 * @file
 * Fig 20 reproduction: memory traffic overhead of RMCC over Morphable
 * under 1%, 2%, and 8% bandwidth-overhead budgets, across whole
 * lifetimes.  The paper reports 1.9% at 1% budget, rising to 4% at 8%.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace rmcc;
    std::vector<sim::NamedConfig> configs = {
        sim::baselineConfig(sim::SimMode::Functional,
                            ctr::SchemeKind::Morphable)};
    for (const double pct : {0.01, 0.02, 0.08}) {
        auto nc = sim::rmccConfig(sim::SimMode::Functional);
        nc.label = util::fmtDouble(pct * 100, 0) + "% budget";
        nc.cfg.rmcc_cfg.budget.fraction = pct;
        configs.push_back(nc);
    }
    bench::runAndEmit(
        "Fig 20: traffic overhead vs Morphable, by budget", "fig20.csv",
        configs,
        [](const sim::SuiteRow &row, std::size_t c) {
            if (c == 0)
                return 0.0;
            const double base = row.results[0].dramAccesses();
            return base > 0
                       ? row.results[c].dramAccesses() / base - 1.0
                       : 0.0;
        },
        /*percent=*/true);
    return 0;
}
