/**
 * @file
 * Fig 17 reproduction: RMCC performance normalized to Morphable under
 * 15 ns (AES-128) and 22 ns (AES-256) latencies.  The paper reports the
 * improvement growing from 6% to 11% at the higher latency.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace rmcc;
    auto base15 = sim::baselineConfig(sim::SimMode::Timing,
                                      ctr::SchemeKind::Morphable);
    auto rmcc15 = sim::rmccConfig(sim::SimMode::Timing);
    rmcc15.label = "RMCC 15ns AES";
    auto base22 = base15;
    base22.label = "Morphable 22ns";
    base22.cfg.lat = mc::LatencyConfig::aes256();
    auto rmcc22 = rmcc15;
    rmcc22.label = "RMCC 22ns AES";
    rmcc22.cfg.lat = mc::LatencyConfig::aes256();

    std::vector<sim::NamedConfig> configs = {base15, rmcc15, base22,
                                             rmcc22};
    sim::applyFastEnv(configs);

    util::Table table(
        "Fig 17: RMCC perf normalized to Morphable, by AES latency",
        {"workload", "15ns AES", "22ns AES"});
    std::vector<double> r15, r22;
    for (const wl::Workload &w : wl::workloadSuite()) {
        const sim::SuiteRow row = sim::runWorkload(w, configs);
        r15.push_back(row.results[1].perf() / row.results[0].perf());
        r22.push_back(row.results[3].perf() / row.results[2].perf());
        table.addRow(w.name, {r15.back(), r22.back()});
        std::fputs(("fig17: " + w.name + " done\n").c_str(), stderr);
    }
    table.addRow("geomean",
                 {util::geomean(r15), util::geomean(r22)});
    table.emit("fig17.csv");
    bench::exitIfInterrupted("fig17.csv");
    return 0;
}
