/**
 * @file
 * Fig 19 reproduction: memoization hit rate across the whole lifetime
 * (all counter uses, hit or miss in the counter cache) under 1%, 2%,
 * and 8% bandwidth-overhead budgets.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace rmcc;
    std::vector<sim::NamedConfig> configs;
    for (const double pct : {0.01, 0.02, 0.08}) {
        auto nc = sim::rmccConfig(sim::SimMode::Functional);
        nc.label = util::fmtDouble(pct * 100, 0) + "% budget";
        nc.cfg.rmcc_cfg.budget.fraction = pct;
        configs.push_back(nc);
    }
    bench::runAndEmit("Fig 19: memoization hit rate by overhead budget",
                      "fig19.csv", configs,
                      [](const sim::SuiteRow &row, std::size_t c) {
                          return row.results[c].memoHitRateAll();
                      },
                      /*percent=*/true);
    return 0;
}
