/**
 * @file
 * Fig 18 reproduction: RMCC performance normalized to Morphable under
 * 128 KB, 256 KB, and 512 KB counter caches.  The paper reports 6%,
 * 5.4%, and 5.0% improvements: bigger caches shrink but do not erase
 * RMCC's benefit.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace rmcc;
    std::vector<sim::NamedConfig> configs;
    for (const std::uint64_t kb : {128, 256, 512}) {
        auto base = sim::baselineConfig(sim::SimMode::Timing,
                                        ctr::SchemeKind::Morphable);
        base.label = "Morphable " + std::to_string(kb) + "KB";
        base.cfg.counter_cache_bytes = kb * 1024;
        auto rmcc_nc = sim::rmccConfig(sim::SimMode::Timing);
        rmcc_nc.label = "RMCC " + std::to_string(kb) + "KB";
        rmcc_nc.cfg.counter_cache_bytes = kb * 1024;
        configs.push_back(base);
        configs.push_back(rmcc_nc);
    }
    sim::applyFastEnv(configs);

    util::Table table(
        "Fig 18: RMCC perf normalized to Morphable, by counter cache",
        {"workload", "128KB", "256KB", "512KB"});
    std::vector<std::vector<double>> cols(3);
    for (const wl::Workload &w : wl::workloadSuite()) {
        const sim::SuiteRow row = sim::runWorkload(w, configs);
        std::vector<double> vals;
        for (int k = 0; k < 3; ++k) {
            vals.push_back(row.results[2 * k + 1].perf() /
                           row.results[2 * k].perf());
            cols[static_cast<std::size_t>(k)].push_back(vals.back());
        }
        table.addRow(w.name, vals);
        std::fputs(("fig18: " + w.name + " done\n").c_str(), stderr);
    }
    table.addRow("geomean", {util::geomean(cols[0]),
                             util::geomean(cols[1]),
                             util::geomean(cols[2])});
    table.emit("fig18.csv");
    bench::exitIfInterrupted("fig18.csv");
    return 0;
}
