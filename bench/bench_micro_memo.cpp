/**
 * @file
 * Microbenchmarks (google-benchmark): memoization-table lookup/insert,
 * candidate-monitor observation, and counter-scheme write paths — the
 * per-access software costs of the simulator itself.
 */
#include <benchmark/benchmark.h>

#include "core/candidate_monitor.hpp"
#include "core/memo_table.hpp"
#include "counters/morphable.hpp"
#include "util/rng.hpp"

using namespace rmcc;

static void
BM_MemoLookupHit(benchmark::State &state)
{
    core::MemoTable table;
    for (unsigned g = 0; g < 16; ++g)
        table.insertGroup(1000 + 8 * g);
    std::uint64_t v = 1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.lookupRead(1000 + (v++ % 128)));
    }
}
BENCHMARK(BM_MemoLookupHit);

static void
BM_MemoLookupMiss(benchmark::State &state)
{
    core::MemoTable table;
    for (unsigned g = 0; g < 16; ++g)
        table.insertGroup(1000 + 8 * g);
    std::uint64_t v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.lookupRead(v++ % 900));
    }
}
BENCHMARK(BM_MemoLookupMiss);

static void
BM_MemoNearestAbove(benchmark::State &state)
{
    core::MemoTable table;
    for (unsigned g = 0; g < 16; ++g)
        table.insertGroup(1000 + 64 * g);
    std::uint64_t v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.nearestAbove(v++ % 2048));
    }
}
BENCHMARK(BM_MemoNearestAbove);

static void
BM_MonitorObserve(benchmark::State &state)
{
    core::CandidateMonitor monitor;
    monitor.arm(1000);
    std::uint64_t v = 0;
    for (auto _ : state)
        monitor.observeRead(900 + (v++ % 300));
}
BENCHMARK(BM_MonitorObserve);

static void
BM_MorphableWritePlusOne(benchmark::State &state)
{
    ctr::MorphableScheme scheme(1 << 14);
    util::Rng rng(1);
    std::uint64_t i = 0;
    for (auto _ : state) {
        const std::uint64_t idx = (i += 127) & ((1 << 14) - 1);
        scheme.write(idx, scheme.read(idx) + 1);
    }
}
BENCHMARK(BM_MorphableWritePlusOne);

static void
BM_MorphableEncodableCheck(benchmark::State &state)
{
    ctr::MorphableScheme scheme(1 << 14);
    std::uint64_t i = 0;
    for (auto _ : state) {
        const std::uint64_t idx = (i += 127) & ((1 << 14) - 1);
        benchmark::DoNotOptimize(
            scheme.encodable(idx, scheme.read(idx) + 1));
    }
}
BENCHMARK(BM_MorphableEncodableCheck);

BENCHMARK_MAIN();
