/**
 * @file
 * Fig 5 reproduction: the latency anatomy of a read whose counter misses
 * the counter cache, with and without memoization, assuming a DRAM
 * row-buffer miss and 15 ns AES (and the 22 ns AES-256 variant).
 */
#include "mc/latency.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace rmcc;
    const double row_miss_ns = 13.75 * 2 + 2.5; // tRCD + tCL + burst
    const double decode_ns = 3.0;

    util::Table table(
        "Fig 5: anatomy of a counter-missing read (row-buffer miss)",
        {"path", "ctr ready", "OTP ready", "verified", "done", "saving"});
    for (double aes : {15.0, 22.0}) {
        mc::LatencyConfig lat;
        lat.aes_ns = aes;
        const auto base =
            mc::fig5Anatomy(row_miss_ns, row_miss_ns, decode_ns, lat,
                            false);
        const auto memo =
            mc::fig5Anatomy(row_miss_ns, row_miss_ns, decode_ns, lat,
                            true);
        const std::string tag =
            " (AES " + util::fmtDouble(aes, 0) + "ns)";
        table.addRow("no memoization" + tag,
                     {base.counter_ready_ns, base.otp_ready_ns,
                      base.verified_ns, base.done_ns, 0.0}, 1);
        table.addRow("RMCC memo hit" + tag,
                     {memo.counter_ready_ns, memo.otp_ready_ns,
                      memo.verified_ns, memo.done_ns,
                      base.done_ns - memo.done_ns}, 1);
    }
    table.emit("fig05.csv");
    return 0;
}
