/**
 * @file
 * Fig 13 reproduction (the headline result): performance of SC-64,
 * Morphable Counters, and RMCC, normalized to a non-secure memory
 * system.  The paper reports RMCC improving average performance by 6%
 * over Morphable.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace rmcc;
    bench::runAndEmit(
        "Fig 13: performance normalized to non-secure", "fig13.csv",
        {sim::nonSecureConfig(sim::SimMode::Timing),
         sim::baselineConfig(sim::SimMode::Timing, ctr::SchemeKind::SC64),
         sim::baselineConfig(sim::SimMode::Timing,
                             ctr::SchemeKind::Morphable),
         sim::rmccConfig(sim::SimMode::Timing)},
        bench::perfNormalizedTo0(), /*percent=*/false,
        /*use_geomean=*/true);
    return 0;
}
