/**
 * @file
 * Fig 12 reproduction: memory bandwidth utilization under Morphable
 * Counters, broken down into normal data accesses, counter accesses,
 * level-0 overflow re-encryption, and level-1+ overflow re-encryption,
 * normalized to the channel's peak physical bandwidth.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace rmcc;
    std::vector<sim::NamedConfig> configs = {
        sim::baselineConfig(sim::SimMode::Timing,
                            ctr::SchemeKind::Morphable)};
    sim::applyFastEnv(configs);

    util::Table table(
        "Fig 12: bandwidth utilization breakdown under Morphable",
        {"workload", "data", "counters", "L0 overflow", "L1+ overflow",
         "total"});
    std::vector<double> d, c, o0, oh, tot;
    const double peak = configs[0].cfg.dram.peakBytesPerNs();
    for (const wl::Workload &w : wl::workloadSuite()) {
        const sim::SuiteRow row = sim::runWorkload(w, configs);
        const auto &s = row.results[0].stats;
        const double window_ns = row.results[0].elapsed_ns;
        auto util_of = [&](double accesses) {
            return window_ns > 0.0
                       ? accesses * 64.0 / (peak * window_ns)
                       : 0.0;
        };
        d.push_back(util_of(s.get("dram.data_read") +
                            s.get("dram.data_write")));
        c.push_back(util_of(s.get("dram.ctr_read") +
                            s.get("dram.ctr_write")));
        o0.push_back(util_of(s.get("dram.ovf0")));
        oh.push_back(util_of(s.get("dram.ovf_hi")));
        tot.push_back(d.back() + c.back() + o0.back() + oh.back());
        table.addRow(w.name,
                     {d.back() * 100, c.back() * 100, o0.back() * 100,
                      oh.back() * 100, tot.back() * 100},
                     1);
        std::fputs(("fig12: " + w.name + " done\n").c_str(), stderr);
    }
    table.addRow("mean",
                 {util::mean(d) * 100, util::mean(c) * 100,
                  util::mean(o0) * 100, util::mean(oh) * 100,
                  util::mean(tot) * 100},
                 1);
    table.emit("fig12.csv");
    bench::exitIfInterrupted("fig12.csv");
    return 0;
}
