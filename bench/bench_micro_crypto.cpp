/**
 * @file
 * Microbenchmarks (google-benchmark): AES, CLMUL, GF multiply, the two
 * OTP constructions, and MAC generation — the datapath primitives whose
 * hardware latencies Table I parameterizes.
 *
 * AES benches report blocks/sec and CLMUL benches ops/sec (the
 * items_per_second counter) for both the fast paths (T-table AES,
 * 4-bit-windowed CLMUL) and the byte/bit-wise reference paths, so the
 * software speedup is visible directly in the output.
 */
#include <benchmark/benchmark.h>

#include "crypto/mac.hpp"
#include "crypto/otp.hpp"

using namespace rmcc::crypto;

static void
BM_Aes128Encrypt(benchmark::State &state)
{
    const Aes aes = Aes::fromSeed(1);
    Block128 b = makeBlock(1, 2);
    for (auto _ : state) {
        b = aes.encrypt(b);
        benchmark::DoNotOptimize(b);
    }
    state.SetItemsProcessed(state.iterations()); // blocks/sec
}
BENCHMARK(BM_Aes128Encrypt);

static void
BM_Aes128EncryptReference(benchmark::State &state)
{
    const Aes aes = Aes::fromSeed(1);
    Block128 b = makeBlock(1, 2);
    for (auto _ : state) {
        b = aes.encryptReference(b);
        benchmark::DoNotOptimize(b);
    }
    state.SetItemsProcessed(state.iterations()); // blocks/sec
}
BENCHMARK(BM_Aes128EncryptReference);

static void
BM_Aes128EncryptBatch8(benchmark::State &state)
{
    // Batched counterpart of BM_Aes128Encrypt: 8 independent block
    // streams per encryptBlocks dispatch (the pipelined AES-NI kernel's
    // full width when batching is active).  Chained across iterations so
    // the work cannot be hoisted.
    const Aes aes = Aes::fromSeed(1);
    std::array<Block128, 8> b;
    for (unsigned i = 0; i < 8; ++i)
        b[i] = makeBlock(1, i);
    for (auto _ : state) {
        aes.encryptBlocks(b.data(), b.data(), b.size());
        benchmark::DoNotOptimize(b);
    }
    state.SetItemsProcessed(state.iterations() * 8); // blocks/sec
}
BENCHMARK(BM_Aes128EncryptBatch8);

static void
BM_Aes256Encrypt(benchmark::State &state)
{
    const Aes aes = Aes::fromSeed(1, Aes::KeySize::k256);
    Block128 b = makeBlock(1, 2);
    for (auto _ : state) {
        b = aes.encrypt(b);
        benchmark::DoNotOptimize(b);
    }
    state.SetItemsProcessed(state.iterations()); // blocks/sec
}
BENCHMARK(BM_Aes256Encrypt);

static void
BM_Aes256EncryptReference(benchmark::State &state)
{
    const Aes aes = Aes::fromSeed(1, Aes::KeySize::k256);
    Block128 b = makeBlock(1, 2);
    for (auto _ : state) {
        b = aes.encryptReference(b);
        benchmark::DoNotOptimize(b);
    }
    state.SetItemsProcessed(state.iterations()); // blocks/sec
}
BENCHMARK(BM_Aes256EncryptReference);

static void
BM_Clmul64Windowed(benchmark::State &state)
{
    std::uint64_t a = 0x0123456789abcdefULL;
    const std::uint64_t b = 0xdeadbeefcafebabeULL;
    for (auto _ : state) {
        const auto [lo, hi] = clmul64(a, b);
        benchmark::DoNotOptimize(lo);
        benchmark::DoNotOptimize(hi);
        a ^= lo;
    }
    state.SetItemsProcessed(state.iterations()); // ops/sec
}
BENCHMARK(BM_Clmul64Windowed);

static void
BM_Clmul64Reference(benchmark::State &state)
{
    std::uint64_t a = 0x0123456789abcdefULL;
    const std::uint64_t b = 0xdeadbeefcafebabeULL;
    for (auto _ : state) {
        const auto [lo, hi] = clmul64Reference(a, b);
        benchmark::DoNotOptimize(lo);
        benchmark::DoNotOptimize(hi);
        a ^= lo;
    }
    state.SetItemsProcessed(state.iterations()); // ops/sec
}
BENCHMARK(BM_Clmul64Reference);

static void
BM_Clmul128(benchmark::State &state)
{
    Block128 a = makeBlock(0x0123456789abcdefULL, 0xfedcba9876543210ULL);
    const Block128 b = makeBlock(0xdeadbeefULL, 0xcafebabeULL);
    for (auto _ : state) {
        const U256 p = clmul128(a, b);
        benchmark::DoNotOptimize(p);
        a[0] ^= static_cast<std::uint8_t>(p.limb[0]);
    }
    state.SetItemsProcessed(state.iterations()); // ops/sec
}
BENCHMARK(BM_Clmul128);

static void
BM_Clmul128Batch8(benchmark::State &state)
{
    // Batched counterpart of BM_Clmul128: 8 independent pairs per
    // clmul128Batch dispatch (interleaved PCLMULQDQ when active).
    std::array<Block128, 8> a;
    std::array<Block128, 8> b;
    for (unsigned i = 0; i < 8; ++i) {
        a[i] = makeBlock(0x0123456789abcdefULL + i, 0xfedcba9876543210ULL);
        b[i] = makeBlock(0xdeadbeefULL, 0xcafebabeULL + i);
    }
    std::array<U256, 8> p;
    for (auto _ : state) {
        clmul128Batch(a.data(), b.data(), p.data(), a.size());
        benchmark::DoNotOptimize(p);
        a[0][0] ^= static_cast<std::uint8_t>(p[0].limb[0]);
    }
    state.SetItemsProcessed(state.iterations() * 8); // ops/sec
}
BENCHMARK(BM_Clmul128Batch8);

static void
BM_TruncmulCombine(benchmark::State &state)
{
    Block128 a = makeBlock(1, 2), b = makeBlock(3, 4);
    for (auto _ : state) {
        a = truncmulMiddle(a, b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_TruncmulCombine);

static void
BM_Gf128Mul(benchmark::State &state)
{
    Block128 a = makeBlock(1, 2);
    const Block128 b = makeBlock(3, 4);
    for (auto _ : state) {
        a = gf128Mul(a, b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_Gf128Mul);

static void
BM_BaselineOtp(benchmark::State &state)
{
    const BaselineOtpEngine otp(Aes::fromSeed(1), Aes::fromSeed(2));
    std::uint64_t ctr = 0;
    for (auto _ : state) {
        const Block128 pad = otp.encryptionOtp(0x1000, 0, ++ctr);
        benchmark::DoNotOptimize(pad);
    }
}
BENCHMARK(BM_BaselineOtp);

static void
BM_RmccOtpFull(benchmark::State &state)
{
    const RmccOtpEngine otp(Aes::fromSeed(1), Aes::fromSeed(2));
    std::uint64_t ctr = 0;
    for (auto _ : state) {
        const Block128 pad = otp.encryptionOtp(0x1000, 0, ++ctr);
        benchmark::DoNotOptimize(pad);
    }
}
BENCHMARK(BM_RmccOtpFull);

static void
BM_RmccOtpMemoized(benchmark::State &state)
{
    // The memoized path: counter-only AES precomputed, combine only.
    const RmccOtpEngine otp(Aes::fromSeed(1), Aes::fromSeed(2));
    const Block128 ctr_only = otp.counterOnlyEnc(12345);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        const Block128 pad = RmccOtpEngine::combine(
            ctr_only, otp.addressOnlyEnc(addr += 64, 0));
        benchmark::DoNotOptimize(pad);
    }
}
BENCHMARK(BM_RmccOtpMemoized);

static void
BM_BlockCodecRmcc(benchmark::State &state)
{
    // Whole-block encode via the per-block OTP path (counter-only AES
    // computed once per block, not once per word).
    const RmccOtpEngine otp(Aes::fromSeed(1), Aes::fromSeed(2));
    const BlockCodec codec(otp);
    DataBlock block;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        block[w] = makeBlock(w, w + 1);
    std::uint64_t ctr = 0;
    for (auto _ : state) {
        block = codec.encode(block, 0x1000, ++ctr);
        benchmark::DoNotOptimize(block);
    }
    state.SetItemsProcessed(state.iterations()); // 64 B blocks/sec
}
BENCHMARK(BM_BlockCodecRmcc);

static void
BM_Mac64B(benchmark::State &state)
{
    const MacEngine mac(1);
    const RmccOtpEngine otp(Aes::fromSeed(1), Aes::fromSeed(2));
    const Block128 pad = otp.macOtp(0x1000, 5);
    DataBlock block;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        block[w] = makeBlock(w, w + 1);
    for (auto _ : state) {
        const std::uint64_t m = mac.mac(block, pad);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_Mac64B);

BENCHMARK_MAIN();
