/**
 * @file
 * Microbenchmarks (google-benchmark): AES, CLMUL, GF multiply, the two
 * OTP constructions, and MAC generation — the datapath primitives whose
 * hardware latencies Table I parameterizes.
 */
#include <benchmark/benchmark.h>

#include "crypto/mac.hpp"
#include "crypto/otp.hpp"

using namespace rmcc::crypto;

static void
BM_Aes128Encrypt(benchmark::State &state)
{
    const Aes aes = Aes::fromSeed(1);
    Block128 b = makeBlock(1, 2);
    for (auto _ : state) {
        b = aes.encrypt(b);
        benchmark::DoNotOptimize(b);
    }
}
BENCHMARK(BM_Aes128Encrypt);

static void
BM_Aes256Encrypt(benchmark::State &state)
{
    const Aes aes = Aes::fromSeed(1, Aes::KeySize::k256);
    Block128 b = makeBlock(1, 2);
    for (auto _ : state) {
        b = aes.encrypt(b);
        benchmark::DoNotOptimize(b);
    }
}
BENCHMARK(BM_Aes256Encrypt);

static void
BM_Clmul128(benchmark::State &state)
{
    Block128 a = makeBlock(0x0123456789abcdefULL, 0xfedcba9876543210ULL);
    const Block128 b = makeBlock(0xdeadbeefULL, 0xcafebabeULL);
    for (auto _ : state) {
        const U256 p = clmul128(a, b);
        benchmark::DoNotOptimize(p);
        a[0] ^= static_cast<std::uint8_t>(p.limb[0]);
    }
}
BENCHMARK(BM_Clmul128);

static void
BM_TruncmulCombine(benchmark::State &state)
{
    Block128 a = makeBlock(1, 2), b = makeBlock(3, 4);
    for (auto _ : state) {
        a = truncmulMiddle(a, b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_TruncmulCombine);

static void
BM_Gf128Mul(benchmark::State &state)
{
    Block128 a = makeBlock(1, 2);
    const Block128 b = makeBlock(3, 4);
    for (auto _ : state) {
        a = gf128Mul(a, b);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_Gf128Mul);

static void
BM_BaselineOtp(benchmark::State &state)
{
    const BaselineOtpEngine otp(Aes::fromSeed(1), Aes::fromSeed(2));
    std::uint64_t ctr = 0;
    for (auto _ : state) {
        const Block128 pad = otp.encryptionOtp(0x1000, 0, ++ctr);
        benchmark::DoNotOptimize(pad);
    }
}
BENCHMARK(BM_BaselineOtp);

static void
BM_RmccOtpFull(benchmark::State &state)
{
    const RmccOtpEngine otp(Aes::fromSeed(1), Aes::fromSeed(2));
    std::uint64_t ctr = 0;
    for (auto _ : state) {
        const Block128 pad = otp.encryptionOtp(0x1000, 0, ++ctr);
        benchmark::DoNotOptimize(pad);
    }
}
BENCHMARK(BM_RmccOtpFull);

static void
BM_RmccOtpMemoized(benchmark::State &state)
{
    // The memoized path: counter-only AES precomputed, combine only.
    const RmccOtpEngine otp(Aes::fromSeed(1), Aes::fromSeed(2));
    const Block128 ctr_only = otp.counterOnlyEnc(12345);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        const Block128 pad = RmccOtpEngine::combine(
            ctr_only, otp.addressOnlyEnc(addr += 64, 0));
        benchmark::DoNotOptimize(pad);
    }
}
BENCHMARK(BM_RmccOtpMemoized);

static void
BM_Mac64B(benchmark::State &state)
{
    const MacEngine mac(1);
    const RmccOtpEngine otp(Aes::fromSeed(1), Aes::fromSeed(2));
    const Block128 pad = otp.macOtp(0x1000, 5);
    DataBlock block;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        block[w] = makeBlock(w, w + 1);
    for (auto _ : state) {
        const std::uint64_t m = mac.mac(block, pad);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_Mac64B);

BENCHMARK_MAIN();
