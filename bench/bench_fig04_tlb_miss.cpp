/**
 * @file
 * Fig 4 reproduction: TLB misses (including those for cache-hitting
 * accesses) normalized to LLC misses, under 4 KB and 2 MB pages.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace rmcc;
    auto small = sim::baselineConfig(sim::SimMode::Functional,
                                     ctr::SchemeKind::Morphable);
    small.label = "4KB pages";
    small.cfg.page_mode = addr::PageMode::Small4K;
    auto huge = small;
    huge.label = "2MB pages";
    huge.cfg.page_mode = addr::PageMode::Huge2M;
    bench::runAndEmit(
        "Fig 4: TLB misses per LLC miss", "fig04.csv", {small, huge},
        [](const sim::SuiteRow &row, std::size_t c) {
            return row.results[c].tlbMissPerLlcMiss();
        },
        /*percent=*/true);
    return 0;
}
