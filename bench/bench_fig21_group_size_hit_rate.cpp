/**
 * @file
 * Fig 21 reproduction: memoization hit rate under Memoized Counter Value
 * Group sizes of 4, 8, and 16 values (128 total entries kept constant),
 * at the 1% budget.  The paper finds size 8 gives the best hit rate.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace rmcc;
    std::vector<sim::NamedConfig> configs;
    for (const unsigned gs : {4u, 8u, 16u}) {
        auto nc = sim::rmccConfig(sim::SimMode::Functional);
        nc.label = "group size " + std::to_string(gs);
        nc.cfg.rmcc_cfg.memo.group_size = gs;
        nc.cfg.rmcc_cfg.memo.groups = 128 / gs;
        configs.push_back(nc);
    }
    bench::runAndEmit("Fig 21: memoization hit rate by group size",
                      "fig21.csv", configs,
                      [](const sim::SuiteRow &row, std::size_t c) {
                          return row.results[c].memoHitRateAll();
                      },
                      /*percent=*/true);
    return 0;
}
