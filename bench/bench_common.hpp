/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: run a set of
 * named configurations over the 11-workload suite and print one metric as
 * the paper's figure series (plus a CSV next to stdout).
 */
#ifndef RMCC_BENCH_COMMON_HPP
#define RMCC_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sim/experiments.hpp"
#include "sim/journal.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rmcc::bench
{

/** Metric extracted per (workload, config-index) cell. */
using Metric = std::function<double(const sim::SuiteRow &, std::size_t)>;

/**
 * Mutex-guarded progress reporter: workload-done lines stay whole even
 * when they arrive from concurrent suite-runner workers.
 */
class ProgressReporter
{
  public:
    explicit ProgressReporter(std::string title) : title_(std::move(title))
    {
    }

    /** Report one finished workload (thread-safe). */
    void done(const std::string &workload)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        util::logInfo("%s: %s done", title_.c_str(), workload.c_str());
    }

  private:
    std::string title_;
    std::mutex mutex_;
};

inline void emitCellErrors(const std::string &csv,
                           const std::vector<sim::NamedConfig> &configs,
                           const std::vector<sim::SuiteRow> &rows);

/**
 * Exit with the conventional fatal-signal status (128+signum) if a
 * SIGTERM/SIGINT drained the suite.  Call after the CSV is emitted: the
 * partial results are on disk, but wrappers must see the interruption,
 * not a clean run.  Hand-rolled benches (those not using runAndEmit)
 * call this themselves after their final emit.
 */
inline void
exitIfInterrupted(const std::string &csv)
{
    if (sim::shutdownRequested()) {
        util::warn("suite interrupted by signal %d; partial results "
                   "written to %s",
                   sim::shutdownSignal(), csv.c_str());
        std::exit(128 + sim::shutdownSignal());
    }
}

/**
 * Run every configuration over the suite and emit one table: rows are
 * workloads (plus a mean row), columns are configurations.
 *
 * @param title figure name for the header.
 * @param csv file name for the CSV copy.
 * @param configs the configurations, in column order.
 * @param metric cell extractor.
 * @param percent render cells as percentages.
 * @param use_geomean mean row uses geometric mean (performance ratios).
 */
inline void
runAndEmit(const std::string &title, const std::string &csv,
           std::vector<sim::NamedConfig> configs, const Metric &metric,
           bool percent = false, bool use_geomean = false)
{
    sim::applyFastEnv(configs);
    std::vector<std::string> headers = {"workload"};
    for (const auto &nc : configs)
        headers.push_back(nc.label);
    util::Table table(title, headers);

    // The suite runner fans (workload x config) cells across RMCC_JOBS
    // threads; progress lines stream from its workers as workloads
    // finish, while rows come back in deterministic suite order.
    ProgressReporter reporter(title);
    const std::vector<sim::SuiteRow> rows = sim::runSuite(
        configs,
        [&reporter](const std::string &workload) { reporter.done(workload); });

    std::vector<std::vector<double>> columns(configs.size());
    for (const sim::SuiteRow &row : rows) {
        std::vector<std::string> cells = {row.workload};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const double v = metric(row, c);
            columns[c].push_back(v);
            cells.push_back(percent ? util::fmtPercent(v)
                                    : util::fmtDouble(v));
        }
        table.addRow(cells);
    }
    std::vector<std::string> mean_cells = {use_geomean ? "geomean"
                                                       : "mean"};
    for (const auto &col : columns) {
        const double m =
            use_geomean ? util::geomean(col) : util::mean(col);
        mean_cells.push_back(percent ? util::fmtPercent(m)
                                     : util::fmtDouble(m));
    }
    table.addRow(mean_cells);
    table.emit(csv);
    emitCellErrors(csv, configs, rows);

    // A SIGTERM/SIGINT mid-suite drained above (in-flight cells aborted,
    // unstarted ones marked Failed) and the partial CSV + sidecar are on
    // disk.
    exitIfInterrupted(csv);
}

/**
 * Record cells that failed or timed out: one line per bad cell — plus
 * one per earlier failed attempt of a retried cell, so a flaky cell's
 * first-attempt error survives — in a `<csv>.errors` sidecar plus a
 * stderr warning.  Failed cells carry placeholder results, so the main
 * CSV stays complete and parseable; the sidecar is how a consumer learns
 * which of its numbers to discard.  The sidecar is written to a temp
 * sibling and renamed into place, so a crash mid-write never leaves a
 * torn file where a prior complete one stood.  No sidecar is written
 * (and a stale one is removed) on a clean run.
 */
inline void
emitCellErrors(const std::string &csv,
               const std::vector<sim::NamedConfig> &configs,
               const std::vector<sim::SuiteRow> &rows)
{
    const std::string path = csv + ".errors";
    const std::string tmp = path + ".tmp";
    std::size_t bad = 0;
    std::ofstream out;
    for (const sim::SuiteRow &row : rows) {
        for (std::size_t c = 0;
             c < row.statuses.size() && c < configs.size(); ++c) {
            const sim::CellStatus &st = row.statuses[c];
            // A retried-then-Ok cell still logs its failed attempts:
            // the retry hid a real error someone may need to see.
            if (st.ok() && st.attempt_errors.empty())
                continue;
            if (!out.is_open())
                out.open(tmp, std::ios::trunc);
            const std::size_t prior =
                st.attempt_errors.size() -
                (st.ok() || st.attempt_errors.empty() ? 0 : 1);
            for (std::size_t a = 0; a < prior; ++a)
                out << row.workload << ',' << configs[c].label
                    << ",retried,attempt " << (a + 1) << ','
                    << st.attempt_errors[a] << '\n';
            if (!st.ok()) {
                ++bad;
                out << row.workload << ',' << configs[c].label << ','
                    << sim::cellStateName(st.state) << ',' << st.attempts
                    << " attempts," << st.error << '\n';
            }
        }
    }
    if (!out.is_open()) {
        std::remove(path.c_str());
        return;
    }
    out.close();
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        std::remove(tmp.c_str());
    if (bad > 0)
        util::warn("%zu cell(s) failed or timed out; see %s", bad,
                   path.c_str());
}

/** Performance of config c normalized to config 0 (first column). */
inline Metric
perfNormalizedTo0()
{
    return [](const sim::SuiteRow &row, std::size_t c) {
        const double base = row.results[0].perf();
        return base > 0.0 ? row.results[c].perf() / base : 0.0;
    };
}

} // namespace rmcc::bench

#endif // RMCC_BENCH_COMMON_HPP
