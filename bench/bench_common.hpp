/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: run a set of
 * named configurations over the 11-workload suite and print one metric as
 * the paper's figure series (plus a CSV next to stdout).
 */
#ifndef RMCC_BENCH_COMMON_HPP
#define RMCC_BENCH_COMMON_HPP

#include <functional>
#include <string>
#include <vector>

#include "sim/experiments.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rmcc::bench
{

/** Metric extracted per (workload, config-index) cell. */
using Metric = std::function<double(const sim::SuiteRow &, std::size_t)>;

/**
 * Run every configuration over the suite and emit one table: rows are
 * workloads (plus a mean row), columns are configurations.
 *
 * @param title figure name for the header.
 * @param csv file name for the CSV copy.
 * @param configs the configurations, in column order.
 * @param metric cell extractor.
 * @param percent render cells as percentages.
 * @param use_geomean mean row uses geometric mean (performance ratios).
 */
inline void
runAndEmit(const std::string &title, const std::string &csv,
           std::vector<sim::NamedConfig> configs, const Metric &metric,
           bool percent = false, bool use_geomean = false)
{
    sim::applyFastEnv(configs);
    std::vector<std::string> headers = {"workload"};
    for (const auto &nc : configs)
        headers.push_back(nc.label);
    util::Table table(title, headers);

    std::vector<std::vector<double>> columns(configs.size());
    for (const wl::Workload &w : wl::workloadSuite()) {
        const sim::SuiteRow row = sim::runWorkload(w, configs);
        std::vector<std::string> cells = {w.name};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const double v = metric(row, c);
            columns[c].push_back(v);
            cells.push_back(percent ? util::fmtPercent(v)
                                    : util::fmtDouble(v));
        }
        table.addRow(cells);
        // Stream progress: long benches print rows as they finish.
        std::fputs((title + ": " + w.name + " done\n").c_str(), stderr);
    }
    std::vector<std::string> mean_cells = {use_geomean ? "geomean"
                                                       : "mean"};
    for (const auto &col : columns) {
        const double m =
            use_geomean ? util::geomean(col) : util::mean(col);
        mean_cells.push_back(percent ? util::fmtPercent(m)
                                     : util::fmtDouble(m));
    }
    table.addRow(mean_cells);
    table.emit(csv);
}

/** Performance of config c normalized to config 0 (first column). */
inline Metric
perfNormalizedTo0()
{
    return [](const sim::SuiteRow &row, std::size_t c) {
        const double base = row.results[0].perf();
        return base > 0.0 ? row.results[c].perf() / base : 0.0;
    };
}

} // namespace rmcc::bench

#endif // RMCC_BENCH_COMMON_HPP
