/**
 * @file
 * Sec IV-D reproduction: RMCC's truncated-multiply OTPs pass the NIST
 * randomness battery at the same rate as the two raw AES streams they
 * are computed from (and a biased control stream fails, proving the
 * tests discriminate).
 */
#include "crypto/nist.hpp"
#include "crypto/otp.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace rmcc;
    using namespace rmcc::crypto;

    const Aes enc = Aes::fromSeed(0xA11CE), mac = Aes::fromSeed(0xB0B);
    const RmccOtpEngine otp(enc, mac);

    constexpr std::size_t kBlocks = 4096; // 64 KB per stream

    BitStream ctr_stream, addr_stream, otp_stream, biased;
    for (std::size_t i = 0; i < kBlocks; ++i) {
        const Block128 c = otp.counterOnlyEnc(100000 + i);
        const Block128 a = otp.addressOnlyEnc(0x1000 + 64 * i, i % 4);
        const Block128 o = RmccOtpEngine::combine(c, a);
        ctr_stream.appendBytes(c.data(), c.size());
        addr_stream.appendBytes(a.data(), a.size());
        otp_stream.appendBytes(o.data(), o.size());
        for (int b = 0; b < 16; ++b)
            biased.appendByte(0xF8); // control: clearly non-random
    }

    util::Table table("Sec IV-D: NIST SP 800-22 battery (p-values)",
                      {"test", "counter-only AES", "address-only AES",
                       "RMCC OTP", "biased control"});
    const auto r_ctr = runNistBattery(ctr_stream);
    const auto r_addr = runNistBattery(addr_stream);
    const auto r_otp = runNistBattery(otp_stream);
    const auto r_bad = runNistBattery(biased);
    unsigned otp_pass = 0, aes_pass = 0, bad_pass = 0;
    for (std::size_t t = 0; t < r_ctr.size(); ++t) {
        table.addRow(r_ctr[t].name,
                     {r_ctr[t].p_value, r_addr[t].p_value,
                      r_otp[t].p_value, r_bad[t].p_value},
                     4);
        aes_pass += r_ctr[t].pass && r_addr[t].pass;
        otp_pass += r_otp[t].pass;
        bad_pass += r_bad[t].pass;
    }
    table.addRow("tests passed",
                 {static_cast<double>(aes_pass),
                  static_cast<double>(aes_pass),
                  static_cast<double>(otp_pass),
                  static_cast<double>(bad_pass)},
                 0);
    table.emit("secIVD.csv");
    return otp_pass == r_otp.size() && bad_pass < r_bad.size() ? 0 : 1;
}
