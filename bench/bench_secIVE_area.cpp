/**
 * @file
 * Sec IV-E reproduction: area accounting for the memoization table, its
 * frequency counters, and the truncated carry-less multiplier.
 */
#include "core/area.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace rmcc;
    const core::AreaReport r = core::computeArea();
    util::Table table("Sec IV-E: RMCC area overhead (per table)",
                      {"component", "value"});
    table.addRow({"memoization table (AES results)",
                  std::to_string(r.table_bytes) + " B"});
    table.addRow({"frequency/monitor counters",
                  std::to_string(r.freq_counter_bytes) + " B"});
    table.addRow({"CLMUL XOR gates", std::to_string(r.clmul_xor_gates)});
    table.addRow({"CLMUL inverters", std::to_string(r.clmul_inverters)});
    table.addRow({"CLMUL SRAM-equivalent",
                  std::to_string(r.clmul_sram_equiv_bytes) + " B"});
    table.addRow({"CLMUL XOR depth", std::to_string(r.xor_depth)});
    table.addRow({"CLMUL inverter depth",
                  std::to_string(r.inverter_depth)});
    table.addRow({"total SRAM-equivalent",
                  std::to_string(r.totalSramEquivBytes()) + " B"});
    table.emit("secIVE.csv");
    return 0;
}
