/**
 * @file
 * Fig 3 reproduction: fraction of LLC misses that also miss the MC's
 * counter cache, under Morphable Counters in the Pintool-like
 * configuration (2 MB LLC, 32 KB counter cache, 2 MB huge pages).
 */
#include "bench_common.hpp"

int
main()
{
    using namespace rmcc;
    bench::runAndEmit(
        "Fig 3: counter-cache misses per LLC miss (Morphable)",
        "fig03.csv",
        {sim::baselineConfig(sim::SimMode::Functional,
                             ctr::SchemeKind::Morphable)},
        [](const sim::SuiteRow &row, std::size_t c) {
            return row.results[c].counterMissRate();
        },
        /*percent=*/true);
    return 0;
}
