/**
 * @file
 * Fig 15 reproduction: average number of memory blocks covered by each
 * counter value in the memoization table at the end of each workload's
 * lifetime run.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace rmcc;
    bench::runAndEmit(
        "Fig 15: avg blocks covered per memoized counter value",
        "fig15.csv", {sim::rmccConfig(sim::SimMode::Functional)},
        [](const sim::SuiteRow &row, std::size_t c) {
            return row.results[c].stats.get("rmcc.avg_coverage_l0");
        });
    return 0;
}
