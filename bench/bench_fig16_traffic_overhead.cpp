/**
 * @file
 * Fig 16 reproduction: memory traffic overhead of RMCC over Morphable
 * Counters under the 1% per-level budgets, split into the L0-table and
 * L1-table contributions.  Also reports the Sec IV-D2 system-max growth.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace rmcc;
    auto base = sim::baselineConfig(sim::SimMode::Functional,
                                    ctr::SchemeKind::Morphable);
    auto l0_only = sim::rmccConfig(sim::SimMode::Functional);
    l0_only.label = "RMCC-L0";
    l0_only.cfg.rmcc_cfg.memo_levels = 1;
    auto full = sim::rmccConfig(sim::SimMode::Functional);
    std::vector<sim::NamedConfig> configs = {base, l0_only, full};
    sim::applyFastEnv(configs);

    util::Table table(
        "Fig 16: traffic overhead of RMCC vs Morphable (1%+1% budgets)",
        {"workload", "L0 memoization", "L1 memoization", "total",
         "sysmax growth"});
    std::vector<double> l0s, l1s, tots, growth;
    for (const wl::Workload &w : wl::workloadSuite()) {
        const sim::SuiteRow row = sim::runWorkload(w, configs);
        const double b = row.results[0].dramAccesses();
        const double l0 =
            b > 0 ? row.results[1].dramAccesses() / b - 1.0 : 0.0;
        const double tot =
            b > 0 ? row.results[2].dramAccesses() / b - 1.0 : 0.0;
        l0s.push_back(l0);
        l1s.push_back(tot - l0);
        tots.push_back(tot);
        const double bmax = row.results[0].stats.get("ctr.observed_max");
        growth.push_back(
            bmax > 0
                ? row.results[2].stats.get("ctr.observed_max") / bmax -
                      1.0
                : 0.0);
        table.addRow(w.name,
                     {l0 * 100, (tot - l0) * 100, tot * 100,
                      growth.back() * 100},
                     2);
        std::fputs(("fig16: " + w.name + " done\n").c_str(), stderr);
    }
    table.addRow("mean",
                 {util::mean(l0s) * 100, util::mean(l1s) * 100,
                  util::mean(tots) * 100, util::mean(growth) * 100},
                 2);
    table.emit("fig16.csv");
    bench::exitIfInterrupted("fig16.csv");
    return 0;
}
