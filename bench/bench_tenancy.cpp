/**
 * @file
 * Multi-tenant interference sweep: interleave N tenants onto one shared
 * controller + counter cache + RMCC memo table and measure what they do
 * to each other — the contention study the single-tenant figures cannot
 * run.
 *
 * Cells:
 *  - solo-<archetype>: each component workload alone on the rig, the
 *    per-tenant latency baseline;
 *  - mixed: the Zipf-skewed N-tenant mix (RMCC_TENANTS /
 *    RMCC_TENANT_SKEW / RMCC_TENANT_ISOLATION);
 *  - storm: the same mix with a hot-tenant storm forcing an extra
 *    kStormShare of all draws onto tenant 0, run with the fault
 *    campaign's detection oracle attached under per-tenant data-plane
 *    key domains — cross-tenant interference must be a performance
 *    story, never an integrity one.
 *
 * Emits tenancy_tenants.csv (one row per tracked tenant per cell:
 * traffic, memo-hit split, counter-cache occupancy, latency
 * percentiles) and tenancy_interference.csv (per-cell Jain fairness,
 * hot-tenant and victim degradation vs their solo baselines, the
 * observed-system-max counter, and the storm cell's silent-corruption
 * count).
 *
 * Exit status: 0 iff every cell ran and the storm cell's injections
 * were all detected or masked — zero silent corruptions, zero
 * unexpected failures.
 */
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/campaign.hpp"
#include "sim/functional_sim.hpp"
#include "tenancy/mixer.hpp"
#include "tenancy/stats.hpp"
#include "tenancy/tenancy.hpp"
#include "util/env.hpp"
#include "util/zipf.hpp"

using namespace rmcc;

namespace
{

//! Extra fraction of all draws the storm cell forces onto tenant 0.
constexpr double kStormShare = 0.35;

//! Tenants used when RMCC_TENANTS does not ask for a real mix.
constexpr std::uint64_t kDefaultTenants = 4;

//! Component archetypes; tenant t runs archetypes[t % 3].  canneal /
//! omnetpp / mcf rather than the GraphBig kernels so the 128 MB shared
//! input graph stays out of a bench that already carries N traces.
const char *const kArchetypes[] = {"canneal", "omnetpp", "mcf"};

struct CellResult
{
    std::string label;
    sim::SimResult sim;
    double jain = 1.0;
    double hot_mean = 0.0;    //!< Tenant 0 mean read latency, ns.
    double victim_mean = 0.0; //!< Tenant 1 mean read latency, ns.
    double hot_share = 0.0;   //!< Tenant 0 observed traffic share.
    std::uint64_t silent = 0;
    std::uint64_t injected = 0;
};

sim::SystemConfig
baseConfig()
{
    sim::SystemConfig cfg = sim::SystemConfig::functionalDefault();
    cfg.rmcc = true;
    if (const auto fast = util::envString("RMCC_FAST");
        fast && (*fast)[0] != '0') {
        cfg.trace_records /= 8;
        cfg.warmup_records /= 8;
    }
    return cfg;
}

/** Mean read latency over the whole replay of one accountant slot. */
double
meanLat(const tenancy::TenantAccountant &acct, std::size_t t)
{
    return t < acct.tracked() ? acct.tenant(t).read_latency.mean() : 0.0;
}

double
readShare(const tenancy::TenantAccountant &acct, std::size_t t)
{
    std::uint64_t total = acct.other().reads;
    for (std::size_t i = 0; i < acct.tracked(); ++i)
        total += acct.tenant(i).reads;
    return total > 0 && t < acct.tracked()
               ? static_cast<double>(acct.tenant(t).reads) /
                     static_cast<double>(total)
               : 0.0;
}

} // namespace

int
main()
{
    tenancy::TenancyConfig tcfg = tenancy::tenancyConfigFromEnv();
    if (tcfg.tenants < 2) {
        util::logInfo("bench_tenancy: RMCC_TENANTS < 2 gives no "
                      "interference to measure; using %llu tenants",
                      static_cast<unsigned long long>(kDefaultTenants));
        tcfg.tenants = kDefaultTenants;
    }

    std::vector<const wl::Workload *> archetypes;
    for (const char *name : kArchetypes) {
        const wl::Workload *w = wl::findWorkload(name);
        if (w == nullptr)
            util::fatal("bench_tenancy: unknown workload '%s'", name);
        archetypes.push_back(w);
    }

    const sim::SystemConfig base = baseConfig();
    std::ofstream tenants_csv("tenancy_tenants.csv");
    bool first_rows = true;
    std::vector<CellResult> cells;

    // --- Solo baselines: each archetype alone on the rig --------------
    // The accountant's tag shift only has to clear every untagged vaddr
    // (47 bits does), so tenant 0 receives the whole solo stream.
    const sim::TenancyShape solo_shape{1, 47, true, 0};
    std::vector<double> solo_mean(archetypes.size(), 0.0);
    for (std::size_t a = 0; a < archetypes.size(); ++a) {
        const wl::Workload &w = *archetypes[a];
        const wl::TraceHandle trace =
            wl::generateTraceHandle(w, base.trace_records, base.seed);
        tenancy::TenantAccountant acct(solo_shape, 0);
        CellResult cell;
        cell.label = "solo-" + w.name;
        cell.sim = sim::runFunctional(w.name, trace.source(), base,
                                      nullptr, &acct);
        solo_mean[a] = meanLat(acct, 0);
        cell.hot_mean = cell.victim_mean = solo_mean[a];
        cell.hot_share = 1.0;
        acct.writeCsv(tenants_csv, cell.label, first_rows);
        first_rows = false;
        util::logInfo("bench_tenancy: %s done", cell.label.c_str());
        cells.push_back(std::move(cell));
    }

    // --- Mixed and storm cells ----------------------------------------
    bool storm_ok = true;
    for (const double storm_share : {0.0, kStormShare}) {
        tenancy::MixSpec spec;
        spec.cfg = tcfg;
        spec.archetypes = archetypes;
        spec.records = base.trace_records;
        spec.component_records =
            base.trace_records / archetypes.size() + 1;
        spec.seed = base.seed;
        spec.storm_share = storm_share;
        const tenancy::TenantMix mix = tenancy::generateMixHandle(spec);

        sim::SystemConfig cfg = base;
        cfg.tenancy.tenants = tcfg.tenants;
        cfg.tenancy.tag_shift = mix.tag_shift;
        cfg.tenancy.strict =
            tcfg.isolation == tenancy::IsolationMode::Strict;
        cfg.tenancy.memo_quota = tcfg.memo_quota;

        CellResult cell;
        cell.label = storm_share > 0.0 ? "storm" : "mixed";
        tenancy::TenantAccountant acct(cfg.tenancy,
                                       tenancy::arenaBlocks(cfg));
        if (storm_share > 0.0) {
            // The adversarial cell doubles as the integrity gate: seeded
            // faults injected while the hot tenant floods the shared
            // counter cache, classified by the oracle under per-tenant
            // data-plane key domains.
            fault::FaultPlan plan;
            plan.injections = 300;
            plan.gap_records = 128;
            plan.seed = 0x7e7a;
            fault::OracleConfig ocfg;
            ocfg.key_domain_shift = tenancy::keyDomainShift(cfg);
            fault::FaultCampaign campaign(plan, ocfg);
            cell.sim = sim::runFunctional(cell.label, mix.handle.source(),
                                          cfg, &campaign, &acct);
            cell.silent = campaign.stats().silent();
            cell.injected = campaign.stats().injected;
            storm_ok = cell.silent == 0 &&
                       campaign.stats().unexpected_failures == 0 &&
                       cell.injected > 0;
        } else {
            cell.sim = sim::runFunctional(cell.label, mix.handle.source(),
                                          cfg, nullptr, &acct);
        }
        cell.jain = acct.jainFairness();
        cell.hot_mean = meanLat(acct, 0);
        cell.victim_mean = meanLat(acct, 1);
        cell.hot_share = readShare(acct, 0);
        acct.writeCsv(tenants_csv, cell.label, first_rows);
        first_rows = false;
        util::logInfo("bench_tenancy: %s done", cell.label.c_str());
        cells.push_back(std::move(cell));
    }
    tenants_csv.close();

    // --- Interference summary -----------------------------------------
    // Degradation = mixed/storm mean read latency over the tenant's solo
    // baseline; tenant 0 runs archetypes[0], tenant 1 archetypes[1].
    const util::ZipfSampler zipf(tcfg.tenants, tcfg.skew);
    util::Table table(
        "Cross-tenant interference (" + std::to_string(tcfg.tenants) +
            " tenants, Zipf " + std::to_string(tcfg.skew) + ")",
        {"cell", "jain", "hot lat (ns)", "hot x solo", "victim lat (ns)",
         "victim x solo", "hot share", "observed max", "SILENT"});
    std::ofstream icsv("tenancy_interference.csv");
    icsv << "cell,tenants,jain_fairness,hot_mean_lat_ns,"
            "hot_degradation,victim_mean_lat_ns,victim_degradation,"
            "hot_read_share,hot_expected_share,observed_max,"
            "injected,silent\n";
    for (const CellResult &cell : cells) {
        // Degradation ratios only make sense for the mix cells: a solo
        // cell IS its own baseline.
        const bool solo = cell.label.rfind("solo-", 0) == 0;
        const double hot_deg =
            solo ? 1.0
            : solo_mean[0] > 0.0 ? cell.hot_mean / solo_mean[0]
                                 : 0.0;
        const double victim_deg =
            solo ? 1.0
            : solo_mean[1 % solo_mean.size()] > 0.0
                ? cell.victim_mean / solo_mean[1 % solo_mean.size()]
                : 0.0;
        const double expected_hot =
            cell.label == "storm"
                ? zipf.mass(0) * (1.0 - kStormShare) + kStormShare
            : cell.label == "mixed" ? zipf.mass(0)
                                    : 1.0;
        const double omax = cell.sim.stats.get("ctr.observed_max");
        table.addRow({cell.label, util::fmtDouble(cell.jain),
                      util::fmtDouble(cell.hot_mean),
                      util::fmtDouble(hot_deg),
                      util::fmtDouble(cell.victim_mean),
                      util::fmtDouble(victim_deg),
                      util::fmtPercent(cell.hot_share),
                      util::fmtDouble(omax),
                      std::to_string(cell.silent)});
        icsv << cell.label << ',' << tcfg.tenants << ',' << cell.jain
             << ',' << cell.hot_mean << ',' << hot_deg << ','
             << cell.victim_mean << ',' << victim_deg << ','
             << cell.hot_share << ',' << expected_hot << ',' << omax
             << ',' << cell.injected << ',' << cell.silent << '\n';
    }
    icsv.close();
    table.emit();
    bench::exitIfInterrupted("tenancy_interference.csv");

    if (!storm_ok) {
        std::printf("FAIL: storm cell leaked silent corruptions or "
                    "failed unexpectedly\n");
        return 1;
    }
    std::printf("PASS: per-tenant rows in tenancy_tenants.csv, "
                "interference matrix in tenancy_interference.csv\n");
    return 0;
}
