/**
 * @file
 * Fig 6 + Fig 7 reproduction: walkthroughs of memoization-aware counter
 * update.  Fig 6: a single memoized value's coverage grows as random
 * blocks write back.  Fig 7: one block's counter walks consecutive
 * memoized values across consecutive writebacks.
 */
#include <cstdio>

#include "core/update_policy.hpp"
#include "counters/morphable.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace rmcc;
    using namespace rmcc::core;

    // ---- Fig 6: coverage of one memoized group grows monotonically ----
    {
        MemoConfig mc_cfg;
        MemoTable table(mc_cfg);
        TrafficBudget budget;
        budget.setPool(1e18);
        UpdatePolicy policy(table, budget, true);
        ctr::MorphableScheme scheme(1 << 16);
        util::Rng rng(7);
        scheme.randomInit(rng, 10000000);
        table.insertGroup(20000000); // the Fig 6 example value

        util::Table t("Fig 6: coverage of the memoized group over writes",
                      {"writebacks", "covered counters"});
        auto coverage = [&]() {
            std::uint64_t covered = 0;
            for (std::uint64_t i = 0; i < scheme.entities(); ++i)
                covered += table.inGroups(scheme.read(i));
            return static_cast<double>(covered);
        };
        std::uint64_t writes = 0;
        for (int step = 0; step <= 6; ++step) {
            t.addRow(std::to_string(writes), {coverage()}, 0);
            for (int k = 0; k < 10000; ++k, ++writes)
                policy.onWrite(scheme, rng.nextBelow(scheme.entities()));
        }
        t.emit("fig06.csv");
    }

    // ---- Fig 7: consecutive writebacks walk consecutive values --------
    {
        MemoConfig mc_cfg;
        MemoTable table(mc_cfg);
        TrafficBudget budget;
        budget.setPool(1e18);
        UpdatePolicy policy(table, budget, true);
        ctr::MorphableScheme scheme(128);
        scheme.relevelBlock(0, 23); // block X starts at counter value 23
        table.insertGroup(35);      // memoized: 35..42
        table.insertGroup(43);      // memoized: 43..50

        util::Table t(
            "Fig 7: block X's counter across consecutive writebacks",
            {"write #", "counter value", "memoized?"});
        t.addRow("start", {23.0, 0.0}, 0);
        for (int w = 1; w <= 8; ++w) {
            const UpdateOutcome out = policy.onWrite(scheme, 0);
            t.addRow("write " + std::to_string(w),
                     {static_cast<double>(out.value),
                      table.inGroups(out.value) ? 1.0 : 0.0}, 0);
        }
        t.emit("fig07.csv");
        std::puts("(counter jumps to the first memoized value, then "
                  "walks +1 through consecutive memoized values)");
    }
    return 0;
}
