/**
 * @file
 * End-to-end simulator replay microbenchmark: generates one suite
 * workload trace and replays it through the timing simulator, reporting
 * host-side throughput (trace records/sec and simulated MC blocks/sec),
 * the crypto-kernel rates under the active dispatch and the forced
 * software path, the observability overhead (replay rate with RMCC_OBS
 * unset vs off vs epochs vs full), and the out-of-core trace engine
 * (spilled windowed-mmap replay vs the in-RAM buffer, with peak RSS).
 * Results are written as machine-readable JSON (BENCH_8.json by
 * default) for the CI perf-smoke job, which fails if RMCC_OBS=off costs
 * more than 2% over the no-obs baseline, if the batched hardware crypto
 * path fails to engage on an AES-NI runner, if the batched/SIMD replay
 * path regresses against the in-process legacy (batch off, scalar
 * probes) rate, or if the spilled replay drops below 0.9x in-RAM.
 *
 * Every A/B gate uses the same median-of-medians protocol: the two
 * modes run as back-to-back pairs with alternating order, one discarded
 * warmup run per mode before the pairs, each side of a pair is the
 * median of three replays, and the median per-pair ratio wins.  Earlier
 * revisions used best-of-two per side, which let one lucky scheduler
 * slot on either side swing the ratio past the gate in both directions
 * (BENCH_6 once reported the legacy path *faster* and a -5.9% obs
 * overhead on the same run).
 *
 * Knobs (environment):
 *   RMCC_BENCH_RECORDS  trace length (default 1000000)
 *   RMCC_BENCH_REPS     timed replay repetitions (default 3)
 *   RMCC_CRYPTO_IMPL    auto|hw|sw — which crypto path the replay uses
 *   RMCC_CRYPTO_BATCH   auto|on|off — pipelined multi-block kernels
 */
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "cache/set_assoc.hpp"
#include "crypto/dispatch.hpp"
#include "crypto/otp.hpp"
#include "obs/registry.hpp"
#include "sim/experiments.hpp"
#include "sim/timing_sim.hpp"
#include "trace/trace_file.hpp"
#include "trace/trace_source.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "workloads/registry.hpp"

using namespace rmcc;
using Clock = std::chrono::steady_clock;

namespace
{

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Chained AES-128 encryptions per second under the current dispatch. */
double
aesBlocksPerSec()
{
    const crypto::Aes aes = crypto::Aes::fromSeed(1);
    crypto::Block128 b = crypto::makeBlock(1, 2);
    constexpr int kIters = 2000000;
    const auto t0 = Clock::now();
    for (int i = 0; i < kIters; ++i)
        b = aes.encrypt(b);
    const double s = secondsSince(t0);
    // Fold the result into an observable side effect so the chain cannot
    // be optimized away.
    volatile std::uint8_t sink = b[0];
    (void)sink;
    return kIters / s;
}

/** Chained 128-bit carry-less multiplies per second. */
double
clmulOpsPerSec()
{
    crypto::Block128 a = crypto::makeBlock(0x0123456789abcdefULL,
                                           0xfedcba9876543210ULL);
    const crypto::Block128 b =
        crypto::makeBlock(0xdeadbeefULL, 0xcafebabeULL);
    constexpr int kIters = 2000000;
    const auto t0 = Clock::now();
    for (int i = 0; i < kIters; ++i) {
        const crypto::U256 p = crypto::clmul128(a, b);
        a[0] ^= static_cast<std::uint8_t>(p.limb[0]);
    }
    const double s = secondsSince(t0);
    volatile std::uint8_t sink = a[0];
    (void)sink;
    return kIters / s;
}

/**
 * Batched counterpart of aesBlocksPerSec: 8 independent blocks per
 * encryptBlocks dispatch, chained dispatch to dispatch (in == out) so
 * the work cannot overlap across timing-loop iterations.
 */
double
aesBlocksPerSecBatch()
{
    const crypto::Aes aes = crypto::Aes::fromSeed(1);
    std::array<crypto::Block128, 8> b;
    for (unsigned i = 0; i < 8; ++i)
        b[i] = crypto::makeBlock(1, i + 2);
    constexpr int kIters = 250000; // x8 blocks = 2M blocks
    const auto t0 = Clock::now();
    for (int i = 0; i < kIters; ++i)
        aes.encryptBlocks(b.data(), b.data(), b.size());
    const double s = secondsSince(t0);
    volatile std::uint8_t sink = b[0][0];
    (void)sink;
    return kIters * 8.0 / s;
}

/** Batched counterpart of clmulOpsPerSec: 8 pairs per dispatch. */
double
clmulOpsPerSecBatch()
{
    std::array<crypto::Block128, 8> a;
    std::array<crypto::Block128, 8> b;
    for (unsigned i = 0; i < 8; ++i) {
        a[i] = crypto::makeBlock(0x0123456789abcdefULL + i,
                                 0xfedcba9876543210ULL);
        b[i] = crypto::makeBlock(0xdeadbeefULL, 0xcafebabeULL + i);
    }
    std::array<crypto::U256, 8> p;
    constexpr int kIters = 250000;
    const auto t0 = Clock::now();
    for (int i = 0; i < kIters; ++i) {
        crypto::clmul128Batch(a.data(), b.data(), p.data(), a.size());
        a[0][0] ^= static_cast<std::uint8_t>(p[0].limb[0]);
    }
    const double s = secondsSince(t0);
    volatile std::uint8_t sink = a[0][0];
    (void)sink;
    return kIters * 8.0 / s;
}

/** Re-route the crypto dispatch to `impl` for the current process. */
void
forceImpl(const char *impl)
{
    setenv("RMCC_CRYPTO_IMPL", impl, 1);
    crypto::reresolveCryptoDispatch();
}

/** Force RMCC_CRYPTO_BATCH for the current process (or unset). */
void
forceBatch(const char *batch)
{
    if (batch)
        setenv("RMCC_CRYPTO_BATCH", batch, 1);
    else
        unsetenv("RMCC_CRYPTO_BATCH");
    crypto::reresolveCryptoDispatch();
}

/** One timed replay; returns host records/sec. */
double
replayOnce(const std::string &name, const trace::TraceSource &trace,
           const sim::SystemConfig &cfg,
           double *mc_blocks_per_run = nullptr)
{
    const auto t0 = Clock::now();
    const sim::SimResult r = sim::runTiming(name, trace, cfg);
    const double s = secondsSince(t0);
    if (mc_blocks_per_run)
        *mc_blocks_per_run =
            r.stats.get("mc.reads") + r.stats.get("mc.writes");
    return static_cast<double>(trace.size()) / s;
}

double
medianOf(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/**
 * Median-of-reps replay throughput (records/sec) under the current
 * environment.  Median (not best or mean) so one scheduler hiccup in
 * either direction cannot swing a mode comparison.
 */
double
replayRecordsPerSec(const std::string &name,
                    const trace::TraceSource &trace,
                    const sim::SystemConfig &cfg, int reps,
                    double *mc_blocks_per_run = nullptr)
{
    std::vector<double> rates;
    rates.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i)
        rates.push_back(replayOnce(name, trace, cfg, mc_blocks_per_run));
    return medianOf(rates);
}

/**
 * Median per-pair throughput ratio measure_b()/measure_a() over `pairs`
 * back-to-back comparisons.  Each measure callback switches its own
 * mode and returns a median-of-N rate; one run per mode is discarded up
 * front as warmup, and the in-pair order alternates so host-side drift
 * cancels instead of biasing whichever mode happens to run later.
 */
double
pairedRatio(const std::function<double()> &measure_a,
            const std::function<double()> &measure_b, int pairs)
{
    measure_a(); // warmup both modes; results discarded
    measure_b();
    std::vector<double> ratios;
    for (int i = 0; i < pairs; ++i) {
        double a, b;
        if (i % 2 == 0) {
            a = measure_a();
            b = measure_b();
        } else {
            b = measure_b();
            a = measure_a();
        }
        ratios.push_back(b / a);
    }
    return medianOf(ratios);
}

/** Point the obs subsystem at `mode` (or unset) for the next replays. */
void
setObsMode(const char *mode, const std::string &dir)
{
    if (mode) {
        setenv("RMCC_OBS", mode, 1);
        setenv("RMCC_OBS_DIR", dir.c_str(), 1);
    } else {
        unsetenv("RMCC_OBS");
        unsetenv("RMCC_OBS_DIR");
    }
    obs::reresolveObs();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_8.json";
    const auto records = static_cast<std::size_t>(
        util::envUnsignedOr("RMCC_BENCH_RECORDS", 1000000));
    const int reps =
        static_cast<int>(util::envUnsignedOr("RMCC_BENCH_REPS", 3));
    const auto bench_t0 = Clock::now();

    // --- Replay: one deterministic suite workload through runTiming.
    sim::NamedConfig nc = sim::rmccConfig(sim::SimMode::Timing);
    nc.cfg.trace_records = records;
    nc.cfg.warmup_records = records / 2;
    const wl::Workload &w = wl::workloadSuite().front();
    const trace::TraceBuffer trace =
        wl::generateTrace(w, nc.cfg.trace_records, nc.cfg.seed);

    // The replay baseline must not be skewed by an inherited RMCC_OBS.
    setObsMode(nullptr, "");
    sim::runTiming(w.name, trace, nc.cfg); // warm caches + allocator
    double mc_blocks_per_run = 0.0;
    const double rps_baseline = replayRecordsPerSec(
        w.name, trace, nc.cfg, reps, &mc_blocks_per_run);
    const double blocks_per_sec =
        rps_baseline / static_cast<double>(trace.size()) *
        mc_blocks_per_run;

    // --- Legacy replay path: pipelined crypto kernels and the AVX2 way
    // scan forced off, measured in the same process so the CI regression
    // gate compares batched-vs-scalar on identical hardware instead of
    // against a runner-dependent absolute number.
    const auto orig_batch = util::envString("RMCC_CRYPTO_BATCH");
    const auto setLegacyPath = [&](bool legacy) {
        if (legacy) {
            forceBatch("off");
            cache::SetAssocCache::setSimdProbes(false);
        } else {
            forceBatch(orig_batch ? orig_batch->c_str() : nullptr);
            cache::SetAssocCache::setSimdProbes(
                crypto::detectCpuFeatures().avx2);
        }
    };
    const int pairs = std::max(reps, 7);
    const double legacy_ratio = pairedRatio(
        [&] {
            setLegacyPath(false);
            return replayRecordsPerSec(w.name, trace, nc.cfg, 3);
        },
        [&] {
            setLegacyPath(true);
            return replayRecordsPerSec(w.name, trace, nc.cfg, 3);
        },
        pairs);
    setLegacyPath(false);
    const double rps_legacy = rps_baseline * legacy_ratio;

    // --- Observability overhead: off must be within noise of baseline;
    // epochs/full show the cost of sampling and tracing.
    const std::string obs_dir = "rmcc-obs-bench";
    double rps_base_i = 0.0, rps_off = 0.0;
    const double median_ratio = pairedRatio(
        [&] {
            setObsMode(nullptr, "");
            const double r = replayRecordsPerSec(w.name, trace, nc.cfg, 3);
            rps_base_i = std::max(rps_base_i, r);
            return r;
        },
        [&] {
            setObsMode("off", obs_dir);
            const double r = replayRecordsPerSec(w.name, trace, nc.cfg, 3);
            rps_off = std::max(rps_off, r);
            return r;
        },
        pairs);
    setObsMode("epochs", obs_dir);
    const double rps_epochs =
        replayRecordsPerSec(w.name, trace, nc.cfg, reps);
    setObsMode("full", obs_dir);
    const double rps_full =
        replayRecordsPerSec(w.name, trace, nc.cfg, reps);
    setObsMode(nullptr, "");
    std::error_code ec;
    std::filesystem::remove_all(obs_dir, ec);
    const double off_overhead_pct = (1.0 - median_ratio) * 100.0;

    // --- Out-of-core trace engine: the same workload regenerated with
    // RMCC_TRACE_SPILL=on and replayed from the windowed mmap reader,
    // compared pairwise against the in-RAM buffer.  Peak RSS comes from
    // getrusage so runs of the JSON can track the spilled high-water
    // mark (the dedicated large-trace CI job asserts the hard bound).
    const std::string spill_dir = "rmcc-trace-bench";
    setenv("RMCC_TRACE_SPILL", "on", 1);
    setenv("RMCC_TRACE_DIR", spill_dir.c_str(), 1);
    const wl::TraceHandle spilled =
        wl::generateTraceHandle(w, nc.cfg.trace_records, nc.cfg.seed);
    unsetenv("RMCC_TRACE_SPILL");
    unsetenv("RMCC_TRACE_DIR");
    const std::uint64_t window_records =
        trace::spillConfigFromEnv().window_records;
    double rps_spilled = 0.0;
    const double spill_ratio = pairedRatio(
        [&] { return replayRecordsPerSec(w.name, trace, nc.cfg, 3); },
        [&] {
            const double r = replayRecordsPerSec(
                w.name, spilled.source(), nc.cfg, 3);
            rps_spilled = std::max(rps_spilled, r);
            return r;
        },
        std::max(reps, 5));
    long long trace_file_bytes = 0;
    if (spilled.spilled()) {
        std::error_code fec;
        const auto sz = std::filesystem::file_size(spilled.path(), fec);
        if (!fec)
            trace_file_bytes = static_cast<long long>(sz);
    }
    struct rusage ru = {};
    getrusage(RUSAGE_SELF, &ru);
    const long peak_rss_kib = ru.ru_maxrss;
    std::filesystem::remove_all(spill_dir, ec);

    // --- Crypto kernels: active dispatch, then forced software.
    const crypto::CpuFeatures cpu = crypto::detectCpuFeatures();
    const auto orig_impl = util::envString("RMCC_CRYPTO_IMPL");
    const bool hw_aes = crypto::hwAesActive();
    const bool hw_clmul = crypto::hwClmulActive();
    const bool batch_aes = crypto::batchAesActive();
    const bool batch_clmul = crypto::batchClmulActive();
    const double aes_active = aesBlocksPerSec();
    const double clmul_active = clmulOpsPerSec();
    const double aes_batch = aesBlocksPerSecBatch();
    const double clmul_batch = clmulOpsPerSecBatch();
    forceImpl("sw");
    const double aes_sw = aesBlocksPerSec();
    const double clmul_sw = clmulOpsPerSec();
    if (orig_impl)
        setenv("RMCC_CRYPTO_IMPL", orig_impl->c_str(), 1);
    else
        unsetenv("RMCC_CRYPTO_IMPL");
    crypto::reresolveCryptoDispatch();

    const double total_sec = secondsSince(bench_t0);

    std::printf("replay: workload=%s records=%zu reps=%d -> "
                "%.0f records/sec, %.0f mc-blocks/sec "
                "(legacy scalar path %.0f records/sec)\n",
                w.name.c_str(), trace.size(), reps, rps_baseline,
                blocks_per_sec, rps_legacy);
    std::printf("obs:    off %.0f rec/s (%+.2f%% vs baseline), "
                "epochs %.0f rec/s, full %.0f rec/s\n",
                rps_off, -off_overhead_pct, rps_epochs, rps_full);
    std::printf("spill:  %.0f rec/s (%.3fx in-RAM), window %llu records, "
                "file %lld bytes, peak rss %ld KiB\n",
                rps_spilled, spill_ratio,
                static_cast<unsigned long long>(window_records),
                trace_file_bytes, peak_rss_kib);
    std::printf("crypto: aes128 %.2fM blk/s (active%s), %.2fM blk/s (sw); "
                "clmul128 %.2fM op/s (active), %.2fM op/s (sw)\n",
                aes_active / 1e6, hw_aes ? ", hw" : ", sw",
                aes_sw / 1e6, clmul_active / 1e6, clmul_sw / 1e6);
    std::printf("batch:  aes128 %.2fM blk/s (%s), clmul128 %.2fM op/s "
                "(%s); simd probes %s\n",
                aes_batch / 1e6, batch_aes ? "pipelined" : "scalar loop",
                clmul_batch / 1e6,
                batch_clmul ? "pipelined" : "scalar loop",
                cache::SetAssocCache::simdProbesActive() ? "avx2"
                                                         : "scalar");
    std::printf("suite wall-clock: %.3f s\n", total_sec);

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        util::logError("cannot open %s", out_path.c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"micro_sim\",\n"
                 "  \"replay\": {\n"
                 "    \"workload\": \"%s\",\n"
                 "    \"records\": %zu,\n"
                 "    \"reps\": %d,\n"
                 "    \"records_per_sec\": %.1f,\n"
                 "    \"records_per_sec_legacy\": %.1f,\n"
                 "    \"blocks_per_sec\": %.1f\n"
                 "  },\n"
                 "  \"obs\": {\n"
                 "    \"records_per_sec_baseline\": %.1f,\n"
                 "    \"records_per_sec_off\": %.1f,\n"
                 "    \"records_per_sec_epochs\": %.1f,\n"
                 "    \"records_per_sec_full\": %.1f,\n"
                 "    \"off_overhead_pct\": %.3f\n"
                 "  },\n"
                 "  \"crypto\": {\n"
                 "    \"cpu_aesni\": %s,\n"
                 "    \"cpu_pclmul\": %s,\n"
                 "    \"hw_aes_active\": %s,\n"
                 "    \"hw_clmul_active\": %s,\n"
                 "    \"aes128_blocks_per_sec_active\": %.1f,\n"
                 "    \"aes128_blocks_per_sec_sw\": %.1f,\n"
                 "    \"clmul128_ops_per_sec_active\": %.1f,\n"
                 "    \"clmul128_ops_per_sec_sw\": %.1f\n"
                 "  },\n"
                 "  \"batch\": {\n"
                 "    \"cpu_avx2\": %s,\n"
                 "    \"aes_batch_active\": %s,\n"
                 "    \"clmul_batch_active\": %s,\n"
                 "    \"simd_probes_active\": %s,\n"
                 "    \"aes128_blocks_per_sec_batch\": %.1f,\n"
                 "    \"clmul128_ops_per_sec_batch\": %.1f\n"
                 "  },\n"
                 "  \"spill\": {\n"
                 "    \"spilled\": %s,\n"
                 "    \"window_records\": %llu,\n"
                 "    \"records_per_sec_spilled\": %.1f,\n"
                 "    \"spilled_vs_inram_ratio\": %.4f,\n"
                 "    \"trace_file_bytes\": %lld,\n"
                 "    \"peak_rss_kib\": %ld\n"
                 "  },\n"
                 "  \"suite_wall_clock_sec\": %.6f\n"
                 "}\n",
                 w.name.c_str(), trace.size(), reps, rps_baseline,
                 rps_legacy, blocks_per_sec, rps_base_i, rps_off,
                 rps_epochs, rps_full, off_overhead_pct,
                 cpu.aesni ? "true" : "false",
                 cpu.pclmul ? "true" : "false",
                 hw_aes ? "true" : "false", hw_clmul ? "true" : "false",
                 aes_active, aes_sw, clmul_active, clmul_sw,
                 cpu.avx2 ? "true" : "false",
                 batch_aes ? "true" : "false",
                 batch_clmul ? "true" : "false",
                 cache::SetAssocCache::simdProbesActive() ? "true"
                                                          : "false",
                 aes_batch, clmul_batch,
                 spilled.spilled() ? "true" : "false",
                 static_cast<unsigned long long>(window_records),
                 rps_spilled, spill_ratio, trace_file_bytes,
                 peak_rss_kib, total_sec);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
