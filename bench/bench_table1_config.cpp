/**
 * @file
 * Table I reproduction: print the full system configuration used by the
 * timing experiments.
 */
#include <cstdio>

#include "sim/system_config.hpp"

int
main()
{
    using namespace rmcc::sim;
    std::puts("== Table I: System Configuration ==");
    SystemConfig cfg = SystemConfig::timingDefault();
    cfg.rmcc = true;
    std::fputs(cfg.describe().c_str(), stdout);
    std::puts("\n== Pintool-like lifetime-characterization preset ==");
    std::fputs(SystemConfig::functionalDefault().describe().c_str(),
               stdout);
    return 0;
}
