/**
 * @file
 * Fig 14 reproduction: average LLC miss latency (ns) under SC-64,
 * Morphable, RMCC, and the non-secure system.  The paper reports RMCC
 * saving 5.0 ns on average over Morphable.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace rmcc;
    bench::runAndEmit(
        "Fig 14: average LLC miss latency (ns)", "fig14.csv",
        {sim::baselineConfig(sim::SimMode::Timing, ctr::SchemeKind::SC64),
         sim::baselineConfig(sim::SimMode::Timing,
                             ctr::SchemeKind::Morphable),
         sim::rmccConfig(sim::SimMode::Timing),
         sim::nonSecureConfig(sim::SimMode::Timing)},
        [](const sim::SuiteRow &row, std::size_t c) {
            return row.results[c].avgReadLatencyNs();
        });
    return 0;
}
