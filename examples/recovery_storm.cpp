/**
 * @file
 * Recovery storm: sustained Poisson-rate fault injection against the
 * self-healing secure-MC datapath (RMCC_RECOVERY), reporting the
 * availability metrics the one-shot fault sweep cannot: recoveries by
 * stage (re-fetch / counter reconstruction / memo quarantine), refused
 * unrecoverable reads, degraded-mode residency, and MTTR.
 *
 * The claim under test is the recovery contract layered over the paper's
 * detection argument (Sec IV-D): with recovery enabled, a detected fault
 * is either healed and re-served or refused — never served silently —
 * and memoization-specific poison is contained by quarantining the
 * covering memo group (with the Observed-System-Max security register
 * re-armed, the rollback rule).  Under a storm rate past the threshold,
 * the policy must fall back to degraded mode (memoization off, full
 * verification) rather than keep consuming suspect memo state.
 *
 * Exit status: 0 iff every storm cell shows zero silent corruptions and
 * zero unexpected failures, every detection was recovered or refused,
 * stage-1 re-fetch healed transients, full mode reconstructed counters
 * and quarantined memo values, and the high-rate cell entered degraded
 * mode.  Set RMCC_OBS=epochs to also get recovery-latency histograms.
 */
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fault/storm.hpp"
#include "obs/registry.hpp"
#include "util/table.hpp"

using namespace rmcc;
using namespace rmcc::fault;

namespace
{

struct StormCell
{
    std::string label;
    mc::RecoveryMode mode;
    double rate;
    bool stress; //!< Tighten the degraded-mode thresholds (high rate).
};

std::string
fmt1(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", v);
    return buf;
}

} // namespace

int
main()
{
    const std::vector<StormCell> cells = {
        {"retry (re-fetch only)", mc::RecoveryMode::Retry, 0.01, false},
        {"full (reconstruct + quarantine)", mc::RecoveryMode::Full, 0.01,
         false},
        {"full @ storm rate (degraded)", mc::RecoveryMode::Full, 0.15,
         true},
    };

    util::Table table(
        "Recovery storm: availability under sustained fault injection",
        {"policy", "injected", "detected", "SILENT", "recovered",
         "refetch", "reconstruct", "quarantine", "refused", "degraded",
         "MTTR (reads)"});

    bool ok = true;
    std::vector<StormStats> results;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const StormCell &cell = cells[i];
        StormPlan plan;
        plan.rate = cell.rate;
        plan.ops = 30000;
        plan.transient_fraction = 0.5;
        plan.seed = 0x570f2 + i * 0x9e37;

        StormConfig cfg;
        cfg.seed = 17 + i;
        cfg.recovery.mode = cell.mode;
        if (cell.stress) {
            // A realistic monitor window would take millions of reads to
            // trip; shrink it so the 30 k-op storm exercises the
            // degraded-mode entry/exit machinery.
            cfg.recovery.storm_window_reads = 256;
            cfg.recovery.storm_threshold = 4;
            cfg.recovery.degraded_residency_reads = 1024;
        }

        std::unique_ptr<obs::Registry> obs = obs::makeRunRegistry(
            obs::sanitizeCellName("recovery-storm-" + cell.label));
        const StormStats s = runRecoveryStorm(plan, cfg, obs.get());
        results.push_back(s);

        const mc::RecoveryStats &r = s.recovery;
        table.addRow({cell.label, std::to_string(s.faults.injected),
                      std::to_string(s.faults.detected()),
                      std::to_string(s.faults.silent()),
                      std::to_string(r.recovered()),
                      std::to_string(r.recovered_refetch),
                      std::to_string(r.recovered_reconstruct),
                      std::to_string(r.recovered_quarantine),
                      std::to_string(r.unrecoverable),
                      std::to_string(r.degraded_entries),
                      fmt1(r.mttrReads())});

        if (obs) {
            const obs::HistSummary h =
                obs->hist(obs::LatencyHist::Recovery).summary();
            std::printf("%-32s recovery latency: n=%llu mean=%.0f ns "
                        "p95=%.0f ns max=%.0f ns\n",
                        cell.label.c_str(),
                        static_cast<unsigned long long>(h.count), h.mean,
                        h.p95, h.max);
        }

        // The availability contract, cell by cell.
        if (s.faults.silent() != 0 || s.faults.unexpected_failures != 0) {
            std::printf("FAIL[%s]: %llu silent, %llu unexpected\n",
                        cell.label.c_str(),
                        static_cast<unsigned long long>(s.faults.silent()),
                        static_cast<unsigned long long>(
                            s.faults.unexpected_failures));
            ok = false;
        }
        if (r.detections != s.faults.detected()) {
            std::printf("FAIL[%s]: controller saw %llu detections, "
                        "oracle classified %llu\n",
                        cell.label.c_str(),
                        static_cast<unsigned long long>(r.detections),
                        static_cast<unsigned long long>(
                            s.faults.detected()));
            ok = false;
        }
        if (r.recovered() + r.unrecoverable != r.detections) {
            std::printf("FAIL[%s]: %llu detections but %llu recovered + "
                        "%llu refused (a detected read was served "
                        "unhandled)\n",
                        cell.label.c_str(),
                        static_cast<unsigned long long>(r.detections),
                        static_cast<unsigned long long>(r.recovered()),
                        static_cast<unsigned long long>(r.unrecoverable));
            ok = false;
        }
        if (r.recovered_refetch == 0) {
            std::printf("FAIL[%s]: no transient healed by re-fetch\n",
                        cell.label.c_str());
            ok = false;
        }
        // Quarantine coverage is asserted on the non-degraded full cell
        // only: the stress cell spends nearly its whole run degraded,
        // where memoization is off and a poisoned pad cannot even be
        // consulted (that *is* the containment, just via a wider net).
        if (cell.mode == mc::RecoveryMode::Full && !cell.stress &&
            r.values_quarantined == 0) {
            std::printf("FAIL[%s]: full mode never quarantined a memo "
                        "value\n",
                        cell.label.c_str());
            ok = false;
        }
        if (cell.mode == mc::RecoveryMode::Full &&
            r.recovered_reconstruct == 0) {
            std::printf("FAIL[%s]: full mode never reconstructed a "
                        "counter path\n",
                        cell.label.c_str());
            ok = false;
        }
        if (cell.stress && (r.degraded_entries == 0 ||
                            s.degraded_reads_served == 0)) {
            std::printf("FAIL[%s]: storm rate never tripped degraded "
                        "mode\n",
                        cell.label.c_str());
            ok = false;
        }
        if (!cell.stress && r.degraded_entries != 0) {
            std::printf("FAIL[%s]: low-rate storm entered degraded mode "
                        "(threshold too twitchy)\n",
                        cell.label.c_str());
            ok = false;
        }
    }
    table.emit("recovery_storm.csv");

    // Per-site detection taxonomy across all storm cells (mirrors the
    // fault-sweep breakdown; quarantine coverage hinges on MemoEntry).
    FaultStats total;
    for (const StormStats &s : results)
        total.merge(s.faults);
    util::Table sites("Per-site outcomes (all storm cells)",
                      {"site", "detected", "masked", "SILENT"});
    for (unsigned si = 0; si < kSiteCount; ++si) {
        std::uint64_t det = 0, mask = 0, silent = 0;
        for (unsigned ki = 0; ki < kKindCount; ++ki) {
            det += total.counts[si][ki][0];
            mask += total.counts[si][ki][1];
            silent += total.counts[si][ki][2];
        }
        sites.addRow({siteName(static_cast<FaultSite>(si)),
                      std::to_string(det), std::to_string(mask),
                      std::to_string(silent)});
    }
    sites.emit();

    std::uint64_t injected = 0, detected = 0, recovered = 0, refused = 0;
    for (const StormStats &s : results) {
        injected += s.faults.injected;
        detected += s.faults.detected();
        recovered += s.recovery.recovered();
        refused += s.recovery.unrecoverable;
    }
    std::printf("\n%s: %llu injected, %llu detected -> %llu recovered + "
                "%llu refused, 0 served corrupt\n",
                ok ? "PASS" : "FAIL",
                static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(detected),
                static_cast<unsigned long long>(recovered),
                static_cast<unsigned long long>(refused));
    return ok ? 0 : 1;
}
