/**
 * @file
 * rmcc_sim — command-line driver for the secure-memory simulator.
 *
 * Runs one workload (or the whole suite) under a chosen configuration and
 * prints the measured statistics, so new configurations can be explored
 * without writing code:
 *
 *   rmcc_sim --workload canneal --scheme morphable --rmcc
 *   rmcc_sim --suite --mode functional --budget 0.02 --records 500000
 *   rmcc_sim --workload BFS --scheme sc64 --aes 22
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/experiments.hpp"
#include "util/log.hpp"

using namespace rmcc;
using namespace rmcc::sim;

namespace
{

void
usage()
{
    std::puts(
        "rmcc_sim [options]\n"
        "  --workload NAME   one of the 11 paper workloads (or --suite)\n"
        "  --suite           run all 11 workloads\n"
        "  --mode M          timing (default) | functional\n"
        "  --scheme S        morphable (default) | sc64 | monolithic\n"
        "  --rmcc            enable RMCC on top of the scheme\n"
        "  --non-secure      disable memory protection entirely\n"
        "  --records N       trace length (default 800000 timing)\n"
        "  --warmup N        warm-up records (default records/2)\n"
        "  --aes NS          AES latency in ns (default 15)\n"
        "  --budget F        RMCC overhead budget fraction (default 0.01)\n"
        "  --group-size N    memoized group size (default 8)\n"
        "  --counter-cache-kb N   counter cache size (default 128)\n"
        "  --pages P         huge (default) | small\n"
        "  --seed N          experiment seed (default 42)\n"
        "  --verbose         dump every statistic\n"
        "environment:\n"
        "  RMCC_OBS=off|epochs|full    observability (default off):\n"
        "    epochs writes per-cell epoch CSVs + latency histograms,\n"
        "    full adds Chrome-trace JSON (load in Perfetto)\n"
        "  RMCC_OBS_DIR=PATH           output dir (default rmcc-obs)\n"
        "  RMCC_OBS_EPOCH_RECORDS=N    records per epoch (default 10000)\n"
        "  RMCC_CRYPTO_IMPL=auto|hw|sw crypto kernels (default auto):\n"
        "    hw forces AES-NI/PCLMULQDQ (throws without CPU support),\n"
        "    sw forces the T-table/windowed software kernels\n"
        "  RMCC_CRYPTO_BATCH=auto|on|off  multi-block crypto pipelining\n"
        "    (default auto: batch when the hw kernels are active; on\n"
        "    throws unless they are; results are identical either way)\n"
        "  RMCC_TRACE_SPILL=off|auto|on  out-of-core traces (default off):\n"
        "    on streams every trace to a checksummed file and replays it\n"
        "    through windowed mmap (bounded RSS, bit-identical results);\n"
        "    auto spills only traces >= RMCC_TRACE_SPILL_THRESHOLD\n"
        "    (default 8388608 records)\n"
        "  RMCC_TRACE_DIR=PATH         spill/cache dir (default\n"
        "    /tmp/rmcc_traces); files are keyed by workload fingerprint\n"
        "    and reused across runs when they validate\n"
        "  RMCC_TRACE_WINDOW_RECORDS=N replay window (default 1048576)\n"
        "  RMCC_LOG_LEVEL=debug|info|warn|error|silent  (default info)");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "canneal";
    bool suite = false, rmcc_on = false, secure = true, verbose = false;
    NamedConfig nc = baselineConfig(SimMode::Timing,
                                    ctr::SchemeKind::Morphable);
    SystemConfig &cfg = nc.cfg;
    bool warmup_set = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                util::fatal("missing value for %s", a.c_str());
            return argv[++i];
        };
        if (a == "--workload") {
            workload = next();
        } else if (a == "--suite") {
            suite = true;
        } else if (a == "--mode") {
            const std::string m = next();
            const SystemConfig preset =
                m == "functional" ? SystemConfig::functionalDefault()
                                  : SystemConfig::timingDefault();
            const auto scheme = cfg.scheme;
            cfg = preset;
            cfg.scheme = scheme;
        } else if (a == "--scheme") {
            const std::string s = next();
            if (s == "morphable")
                cfg.scheme = ctr::SchemeKind::Morphable;
            else if (s == "sc64")
                cfg.scheme = ctr::SchemeKind::SC64;
            else if (s == "monolithic")
                cfg.scheme = ctr::SchemeKind::SgxMonolithic;
            else
                util::fatal("unknown scheme %s", s.c_str());
        } else if (a == "--rmcc") {
            rmcc_on = true;
        } else if (a == "--non-secure") {
            secure = false;
        } else if (a == "--records") {
            cfg.trace_records =
                static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
        } else if (a == "--warmup") {
            cfg.warmup_records =
                static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
            warmup_set = true;
        } else if (a == "--aes") {
            cfg.lat.aes_ns = std::strtod(next(), nullptr);
        } else if (a == "--budget") {
            cfg.rmcc_cfg.budget.fraction = std::strtod(next(), nullptr);
        } else if (a == "--group-size") {
            const auto gs =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
            cfg.rmcc_cfg.memo.group_size = gs;
            cfg.rmcc_cfg.memo.groups = 128 / (gs ? gs : 8);
        } else if (a == "--counter-cache-kb") {
            cfg.counter_cache_bytes =
                std::strtoull(next(), nullptr, 10) * 1024;
        } else if (a == "--pages") {
            cfg.page_mode = std::string(next()) == "small"
                                ? addr::PageMode::Small4K
                                : addr::PageMode::Huge2M;
        } else if (a == "--seed") {
            cfg.seed = std::strtoull(next(), nullptr, 10);
        } else if (a == "--verbose") {
            verbose = true;
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            usage();
            util::fatal("unknown option %s", a.c_str());
        }
    }
    cfg.secure = secure;
    cfg.rmcc = rmcc_on && secure;
    if (!warmup_set)
        cfg.warmup_records = cfg.trace_records / 2;
    nc.label = !secure ? "non-secure"
                       : ctr::schemeKindName(cfg.scheme) +
                             (cfg.rmcc ? "+RMCC" : "");

    auto run_one = [&](const wl::Workload &w) {
        const wl::TraceHandle trace =
            wl::generateTraceHandle(w, cfg.trace_records, cfg.seed);
        const SimResult r = runOne(w.name, trace.source(), nc);
        std::printf("%-14s [%s]", w.name.c_str(), nc.label.c_str());
        if (cfg.mode == SimMode::Timing)
            std::printf("  perf %.4f inst/ns", r.perf());
        std::printf("  read-lat %.1f ns  ctr-miss %.1f%%  dram %.0f",
                    r.avgReadLatencyNs(), r.counterMissRate() * 100,
                    r.dramAccesses());
        if (cfg.rmcc)
            std::printf("  memo-hit %.1f%%  accel %.1f%%",
                        r.memoHitRateAll() * 100,
                        r.acceleratedMissRate() * 100);
        std::puts("");
        if (verbose)
            printResult(r);
    };

    if (suite) {
        for (const wl::Workload &w : wl::workloadSuite())
            run_one(w);
    } else {
        const wl::Workload *w = wl::findWorkload(workload);
        if (!w)
            util::fatal("unknown workload %s (try --help)",
                        workload.c_str());
        run_one(*w);
    }
    return 0;
}
