/**
 * @file
 * Fault-injection sweep: inject thousands of seeded faults — bit flips,
 * bursts, counter rollbacks, and stale replays against data ciphertext,
 * MACs, L0 counters, tree nodes, and memo-table entries — into every
 * scheme x OTP construction, and print the detection taxonomy.
 *
 * The claim under test is RMCC's security argument (paper Sec IV-D):
 * memoizing the counter-mode pads changes nothing an attacker can
 * exploit, so the detection matrix must show ZERO silent corruptions
 * for the split-OTP construction exactly as for the SGX baseline.  As a
 * control, the sweep repeats one configuration with the oracle's MAC
 * compare truncated to 8 bits — a deliberately broken detector — and
 * demands nonzero silent corruptions there, proving the harness can
 * tell the difference.
 *
 * Exit status: 0 iff the real matrix is silent-free AND the weakened
 * control is not.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "util/table.hpp"

using namespace rmcc;
using namespace rmcc::fault;

namespace
{

struct MatrixCell
{
    std::string label;
    ctr::SchemeKind scheme;
    bool split_otp;
};

} // namespace

int
main()
{
    const std::vector<MatrixCell> cells = {
        {"SGX + baseline OTP", ctr::SchemeKind::SgxMonolithic, false},
        {"SGX + split OTP", ctr::SchemeKind::SgxMonolithic, true},
        {"SC-64 + baseline OTP", ctr::SchemeKind::SC64, false},
        {"SC-64 + split OTP", ctr::SchemeKind::SC64, true},
        {"Morphable + baseline OTP", ctr::SchemeKind::Morphable, false},
        {"Morphable + split OTP", ctr::SchemeKind::Morphable, true},
    };
    constexpr std::uint64_t kInjectionsPerCell = 2000;

    util::Table table("Fault-injection detection matrix",
                      {"configuration", "injected", "detected", "masked",
                       "SILENT", "unexpected"});
    FaultStats total;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        FaultPlan plan;
        plan.injections = kInjectionsPerCell;
        plan.seed = 0x5eed + i * 0x9e37;
        plan.gap_records = 4;
        SweepConfig cfg;
        cfg.scheme = cells[i].scheme;
        cfg.split_otp = cells[i].split_otp;
        cfg.seed = 17 + i;
        const FaultStats s = runFaultSweep(plan, cfg);
        table.addRow({cells[i].label, std::to_string(s.injected),
                      std::to_string(s.detected()),
                      std::to_string(s.masked()),
                      std::to_string(s.silent()),
                      std::to_string(s.unexpected_failures)});
        total.merge(s);
    }
    table.addRow({"TOTAL", std::to_string(total.injected),
                  std::to_string(total.detected()),
                  std::to_string(total.masked()),
                  std::to_string(total.silent()),
                  std::to_string(total.unexpected_failures)});
    table.emit();

    // Per-combo breakdown of the last full matrix (aggregated counts).
    util::Table combos("Per-(site, kind) outcomes (all configurations)",
                       {"site", "kind", "detected", "masked", "SILENT"});
    for (unsigned si = 0; si < kSiteCount; ++si)
        for (unsigned ki = 0; ki < kKindCount; ++ki) {
            const auto site = static_cast<FaultSite>(si);
            const auto kind = static_cast<FaultKind>(ki);
            if (!comboValid(site, kind))
                continue;
            const auto &c = total.counts[si][ki];
            combos.addRow({siteName(site), kindName(kind),
                           std::to_string(c[0]), std::to_string(c[1]),
                           std::to_string(c[2])});
        }
    combos.emit();

    // Control: an 8-bit MAC must leak silent corruptions, or the zeros
    // above mean nothing.
    FaultPlan weak_plan;
    weak_plan.injections = 2000;
    weak_plan.gap_records = 4;
    SweepConfig weak_cfg;
    weak_cfg.mac_bits = 8;
    const FaultStats weak = runFaultSweep(weak_plan, weak_cfg);
    std::printf("\nweakened-oracle control (8-bit MAC): %llu silent of "
                "%llu injected %s\n",
                static_cast<unsigned long long>(weak.silent()),
                static_cast<unsigned long long>(weak.injected),
                weak.silent() > 0 ? "(expected: nonzero)"
                                  : "(BUG: harness cannot fail)");

    const bool ok = total.silent() == 0 && total.unexpected_failures == 0 &&
                    weak.silent() > 0;
    std::printf("\n%s: %llu injections, %llu silent corruptions\n",
                ok ? "PASS" : "FAIL",
                static_cast<unsigned long long>(total.injected),
                static_cast<unsigned long long>(total.silent()));
    return ok ? 0 : 1;
}
