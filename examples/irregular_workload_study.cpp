/**
 * @file
 * The paper's motivating study in miniature: compare an irregular
 * workload (canneal) against a regular one (mcf) across the non-secure,
 * Morphable, and RMCC configurations, showing why counter misses hurt
 * irregular workloads and how memoization wins the latency back.
 */
#include <cstdio>

#include "sim/experiments.hpp"

using namespace rmcc;
using namespace rmcc::sim;

int
main()
{
    std::vector<NamedConfig> configs = {
        nonSecureConfig(SimMode::Timing),
        baselineConfig(SimMode::Timing, ctr::SchemeKind::Morphable),
        rmccConfig(SimMode::Timing),
    };
    // Keep the example snappy.
    for (auto &nc : configs) {
        nc.cfg.trace_records = 400000;
        nc.cfg.warmup_records = 200000;
    }

    for (const char *name : {"canneal", "mcf"}) {
        const wl::Workload *w = wl::findWorkload(name);
        std::printf("== %s ==\n", name);
        const SuiteRow row = runWorkload(*w, configs);
        const double base = row.results[0].perf();
        for (const SimResult &r : row.results) {
            std::printf("  %-11s perf %.2fx non-secure | LLC miss "
                        "latency %5.1f ns | counter miss %5.1f%%",
                        r.config_label.c_str(),
                        base > 0 ? r.perf() / base : 0,
                        r.avgReadLatencyNs(),
                        r.counterMissRate() * 100);
            if (r.config_label == "RMCC")
                std::printf(" | %4.1f%% of misses accelerated",
                            r.acceleratedMissRate() * 100);
            std::puts("");
        }
        const double morph = row.results[1].perf();
        const double rmcc_perf = row.results[2].perf();
        std::printf("  -> RMCC vs Morphable: %+.1f%%\n\n",
                    (rmcc_perf / morph - 1.0) * 100);
    }
    std::puts("Irregular workloads (canneal) suffer frequent counter "
              "misses, so memoizing\nhot counter values wins back most "
              "of the serialized AES latency; regular\nworkloads (mcf) "
              "rarely miss counters and are unaffected either way.");
    return 0;
}
