/**
 * @file
 * Security analysis companion (paper Sec IV-D): demonstrate, against the
 * real crypto, that (1) tampering and replay are detected by the MAC,
 * (2) swapping address and counter cannot reproduce an OTP (type-A
 * repeats), (3) the truncated combine is not invertible by construction
 * (information destroyed), (4) OTP streams look random to NIST, and
 * (5) multi-tenant sharing adds no integrity surface: per-tenant key
 * domains never collide, and a hot tenant flooding the shared counter
 * cache under active fault injection still yields zero silent
 * corruptions.
 */
#include <cstdio>
#include <set>

#include "crypto/mac.hpp"
#include "crypto/nist.hpp"
#include "crypto/otp.hpp"
#include "fault/campaign.hpp"
#include "sim/functional_sim.hpp"
#include "tenancy/mixer.hpp"
#include "tenancy/stats.hpp"

using namespace rmcc::crypto;

int
main()
{
    const RmccOtpEngine otp(Aes::fromSeed(101), Aes::fromSeed(202));
    const BlockCodec codec(otp);
    const MacEngine mac(42);

    // -- 1. Tamper and replay detection --------------------------------
    DataBlock secret;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        secret[w] = makeBlock(0xdeedULL * (w + 1), w);
    const std::uint64_t address = 0x7000, counter = 900;
    const DataBlock ct = codec.encode(secret, address, counter);
    const std::uint64_t tag = mac.mac(ct, otp.macOtp(address, counter));

    DataBlock flipped = ct;
    flipped[2][5] ^= 0x20;
    const bool tamper_caught =
        mac.mac(flipped, otp.macOtp(address, counter)) != tag;
    std::printf("bit-flip tampering detected:        %s\n",
                tamper_caught ? "yes" : "NO (BUG)");

    // Replay: old ciphertext re-verified under the advanced counter.
    const bool replay_caught =
        mac.mac(ct, otp.macOtp(address, counter + 1)) != tag;
    std::printf("stale-data replay detected:         %s\n",
                replay_caught ? "yes" : "NO (BUG)");

    // Relocation: same ciphertext presented at another address.
    const bool splice_caught =
        mac.mac(ct, otp.macOtp(address + 64, counter)) != tag;
    std::printf("block relocation detected:          %s\n",
                splice_caught ? "yes" : "NO (BUG)");

    // -- 2. Type-A repeats eliminated by zero-pad domain separation ----
    std::set<std::pair<std::uint64_t, std::uint64_t>> otps;
    bool collision = false;
    for (std::uint64_t x = 1; x <= 64; ++x)
        for (std::uint64_t y = 1; y <= 64; ++y)
            collision |= !otps.insert(splitBlock(
                                          otp.encryptionOtp(x * 64, 0, y)))
                              .second;
    std::printf("OTP(addr=x,ctr=y) vs OTP(addr=y,ctr=x) collisions over "
                "a 64x64 grid: %s\n",
                collision ? "FOUND (BUG)" : "none");

    // -- 3. Truncation destroys information ----------------------------
    // Many distinct (counter-only, address-only) pairs share a truncated
    // product prefix: the combine is lossy, so no system of OTP
    // equations can be solved back to the AES factors (Sec IV-D1).
    std::set<std::uint64_t> prefixes;
    const int samples = 1 << 14;
    for (int i = 0; i < samples; ++i) {
        const Block128 pad = otp.encryptionOtp(
            0x1000 + 64ULL * (i % 128), 0, 1000 + i / 128);
        prefixes.insert(splitBlock(pad).first >> 48); // 16-bit prefix
    }
    std::printf("distinct 16-bit OTP prefixes in %d samples: %zu "
                "(saturated => looks uniform)\n",
                samples, prefixes.size());

    // -- 4. NIST randomness of the OTP stream --------------------------
    BitStream stream;
    for (std::uint64_t i = 0; i < 2048; ++i) {
        const Block128 pad =
            otp.encryptionOtp(64 * (i % 512), i % 4, 5000 + i / 16);
        stream.appendBytes(pad.data(), pad.size());
    }
    std::puts("NIST SP 800-22 battery on the OTP stream:");
    bool all_pass = true;
    for (const NistResult &r : runNistBattery(stream)) {
        std::printf("  %-16s p=%.4f  %s\n", r.name.c_str(), r.p_value,
                    r.pass ? "pass" : "FAIL");
        all_pass &= r.pass;
    }
    // -- 5. Multi-tenant attack surface --------------------------------
    // 5a. Key-domain separation: two tenants encrypting the SAME
    // (address, counter) must never share an OTP or a MAC pad — the
    // derived per-domain schedules have to differ from each other and
    // from the platform keys.
    namespace rt = rmcc::tenancy;
    namespace rf = rmcc::fault;
    namespace rs = rmcc::sim;
    const std::uint64_t master = 0xfa177;
    const DomainKeys d0 = deriveDomainKeys(master, 0);
    const DomainKeys d1 = deriveDomainKeys(master, 1);
    const RmccOtpEngine otp0(d0.enc, d0.mac), otp1(d1.enc, d1.mac);
    const RmccOtpEngine platform(Aes::fromSeed(master),
                                 Aes::fromSeed(master + 0x9e3779b9));
    bool domains_disjoint = true;
    for (std::uint64_t a = 0; a < 32; ++a) {
        const std::uint64_t addr = 0x4000 + 64 * a;
        domains_disjoint &=
            otp0.encryptionOtp(addr, 0, 7) != otp1.encryptionOtp(addr, 0, 7) &&
            otp0.encryptionOtp(addr, 0, 7) !=
                platform.encryptionOtp(addr, 0, 7) &&
            otp0.macOtp(addr, 7) != otp1.macOtp(addr, 7);
    }
    std::printf("per-tenant key domains disjoint:    %s\n",
                domains_disjoint ? "yes" : "NO (BUG)");

    // 5b. Hot-tenant storm under injection: tenant 0 floods the shared
    // counter cache (75% of all draws on top of its Zipf share), evicting
    // the victims' counter lines from the region that backs their counter
    // groups, while seeded faults hit data, MACs, counters, tree nodes,
    // and memo entries.  The oracle — running per-tenant data-plane key
    // domains along the strict arena boundaries — must classify every
    // injection detected or masked: cross-tenant contention is a
    // performance problem, never an integrity one.
    rt::MixSpec spec;
    spec.cfg.tenants = 4;
    spec.cfg.skew = 0.99;
    spec.cfg.isolation = rt::IsolationMode::Strict;
    const rmcc::wl::Workload *canneal = rmcc::wl::findWorkload("canneal");
    const rmcc::wl::Workload *mcf = rmcc::wl::findWorkload("mcf");
    spec.archetypes = {canneal, mcf};
    spec.records = 120000;
    spec.component_records = 60000;
    spec.seed = 7;
    spec.storm_share = 0.75;
    const rt::TenantMix mix = rt::generateMixHandle(spec);

    rs::SystemConfig cfg = rs::SystemConfig::functionalDefault();
    cfg.rmcc = true;
    cfg.trace_records = spec.records;
    cfg.warmup_records = spec.records / 4;
    // Shrink the CPU caches so this short adversarial trace actually
    // reaches the controller, and the counter cache so the flood evicts
    // the victims' counter lines instead of fitting alongside them.
    cfg.l1 = {16 * 1024, 8, 2.0};
    cfg.l2 = {32 * 1024, 8, 4.0};
    cfg.llc = {64 * 1024, 16, 17.0};
    cfg.counter_cache_bytes = 4096;
    cfg.tenancy.tenants = spec.cfg.tenants;
    cfg.tenancy.tag_shift = mix.tag_shift;
    cfg.tenancy.strict = true;

    rf::FaultPlan plan;
    plan.injections = 150;
    plan.gap_records = 64;
    plan.seed = 0xad5a;
    rf::OracleConfig ocfg;
    ocfg.key_domain_shift = rt::keyDomainShift(cfg);
    rf::FaultCampaign campaign(plan, ocfg);
    rt::TenantAccountant acct(cfg.tenancy, rt::arenaBlocks(cfg));
    rs::runFunctional("tenant-storm", mix.handle.source(), cfg, &campaign,
                      &acct);
    const rf::FaultStats &fs = campaign.stats();
    const std::uint64_t victim_misses = acct.tenant(1).counter_misses +
                                        acct.tenant(2).counter_misses +
                                        acct.tenant(3).counter_misses;
    const bool storm_clean = fs.silent() == 0 &&
                             fs.unexpected_failures == 0 &&
                             fs.detected() > 0 && victim_misses > 0;
    std::printf("hot-tenant storm: %llu injected, %llu detected, %llu "
                "silent; victim counter misses under flood: %llu  %s\n",
                static_cast<unsigned long long>(fs.injected),
                static_cast<unsigned long long>(fs.detected()),
                static_cast<unsigned long long>(fs.silent()),
                static_cast<unsigned long long>(victim_misses),
                storm_clean ? "(clean)" : "(BUG)");


    return tamper_caught && replay_caught && splice_caught &&
                   !collision && all_pass && domains_disjoint &&
                   storm_clean
               ? 0
               : 1;
}
