/**
 * @file
 * Security analysis companion (paper Sec IV-D): demonstrate, against the
 * real crypto, that (1) tampering and replay are detected by the MAC,
 * (2) swapping address and counter cannot reproduce an OTP (type-A
 * repeats), (3) the truncated combine is not invertible by construction
 * (information destroyed), and (4) OTP streams look random to NIST.
 */
#include <cstdio>
#include <set>

#include "crypto/mac.hpp"
#include "crypto/nist.hpp"
#include "crypto/otp.hpp"

using namespace rmcc::crypto;

int
main()
{
    const RmccOtpEngine otp(Aes::fromSeed(101), Aes::fromSeed(202));
    const BlockCodec codec(otp);
    const MacEngine mac(42);

    // -- 1. Tamper and replay detection --------------------------------
    DataBlock secret;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        secret[w] = makeBlock(0xdeedULL * (w + 1), w);
    const std::uint64_t address = 0x7000, counter = 900;
    const DataBlock ct = codec.encode(secret, address, counter);
    const std::uint64_t tag = mac.mac(ct, otp.macOtp(address, counter));

    DataBlock flipped = ct;
    flipped[2][5] ^= 0x20;
    const bool tamper_caught =
        mac.mac(flipped, otp.macOtp(address, counter)) != tag;
    std::printf("bit-flip tampering detected:        %s\n",
                tamper_caught ? "yes" : "NO (BUG)");

    // Replay: old ciphertext re-verified under the advanced counter.
    const bool replay_caught =
        mac.mac(ct, otp.macOtp(address, counter + 1)) != tag;
    std::printf("stale-data replay detected:         %s\n",
                replay_caught ? "yes" : "NO (BUG)");

    // Relocation: same ciphertext presented at another address.
    const bool splice_caught =
        mac.mac(ct, otp.macOtp(address + 64, counter)) != tag;
    std::printf("block relocation detected:          %s\n",
                splice_caught ? "yes" : "NO (BUG)");

    // -- 2. Type-A repeats eliminated by zero-pad domain separation ----
    std::set<std::pair<std::uint64_t, std::uint64_t>> otps;
    bool collision = false;
    for (std::uint64_t x = 1; x <= 64; ++x)
        for (std::uint64_t y = 1; y <= 64; ++y)
            collision |= !otps.insert(splitBlock(
                                          otp.encryptionOtp(x * 64, 0, y)))
                              .second;
    std::printf("OTP(addr=x,ctr=y) vs OTP(addr=y,ctr=x) collisions over "
                "a 64x64 grid: %s\n",
                collision ? "FOUND (BUG)" : "none");

    // -- 3. Truncation destroys information ----------------------------
    // Many distinct (counter-only, address-only) pairs share a truncated
    // product prefix: the combine is lossy, so no system of OTP
    // equations can be solved back to the AES factors (Sec IV-D1).
    std::set<std::uint64_t> prefixes;
    const int samples = 1 << 14;
    for (int i = 0; i < samples; ++i) {
        const Block128 pad = otp.encryptionOtp(
            0x1000 + 64ULL * (i % 128), 0, 1000 + i / 128);
        prefixes.insert(splitBlock(pad).first >> 48); // 16-bit prefix
    }
    std::printf("distinct 16-bit OTP prefixes in %d samples: %zu "
                "(saturated => looks uniform)\n",
                samples, prefixes.size());

    // -- 4. NIST randomness of the OTP stream --------------------------
    BitStream stream;
    for (std::uint64_t i = 0; i < 2048; ++i) {
        const Block128 pad =
            otp.encryptionOtp(64 * (i % 512), i % 4, 5000 + i / 16);
        stream.appendBytes(pad.data(), pad.size());
    }
    std::puts("NIST SP 800-22 battery on the OTP stream:");
    bool all_pass = true;
    for (const NistResult &r : runNistBattery(stream)) {
        std::printf("  %-16s p=%.4f  %s\n", r.name.c_str(), r.p_value,
                    r.pass ? "pass" : "FAIL");
        all_pass &= r.pass;
    }
    return tamper_caught && replay_caught && splice_caught &&
                   !collision && all_pass
               ? 0
               : 1;
}
