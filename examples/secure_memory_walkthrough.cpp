/**
 * @file
 * Walkthrough of the secure memory controller: issue reads and writes
 * against the full model (integrity tree, counter cache, DRAM timing,
 * RMCC engine) and narrate what each access costs and why.
 */
#include <cstdio>

#include "core/rmcc_engine.hpp"
#include "counters/tree.hpp"
#include "dram/ddr4.hpp"
#include "mc/secure_mc.hpp"
#include "util/rng.hpp"

using namespace rmcc;

namespace
{

void
narrate(const char *what, const mc::McReadResult &r, double issued_ns)
{
    std::printf("%-34s latency %5.1f ns  [counter %s%s%s]\n", what,
                r.done_ns - issued_ns, r.counter_miss ? "miss" : "hit",
                r.memo_hit ? ", memoized" : "",
                r.accelerated ? ", accelerated" : "");
}

} // namespace

int
main()
{
    // Build a 64 MB protected region under Morphable + RMCC.
    ctr::IntegrityTree tree(ctr::SchemeKind::Morphable,
                            (64ULL << 20) / addr::kBlockSize);
    util::Rng rng(1);
    tree.randomInit(rng, 100000);

    core::RmccConfig rmcc_cfg;
    rmcc_cfg.budget.initial_pool_accesses = 1e6;
    core::RmccEngine engine(rmcc_cfg, tree);
    dram::Ddr4 dram;
    mc::SecureMc mc(mc::McConfig{}, tree, engine, dram);

    std::puts("== secure read/write walkthrough (Morphable + RMCC) ==\n");
    double now = 0.0;

    // Cold read: everything misses, the whole tree is walked.
    auto r = mc.read(0x100000, now);
    narrate("cold read (full tree walk)", r, now);
    now = r.done_ns + 100;

    // Neighbouring read: the counter block is now cached.
    r = mc.read(0x100040, now);
    narrate("neighbour read (counter hit)", r, now);
    now = r.done_ns + 100;

    // Far read, counters not cached and value not memoized yet.
    r = mc.read(0x2000000, now);
    narrate("far read (counter miss)", r, now);
    now = r.done_ns + 100;

    // Teach the memoization table the hot counter value, then relevel
    // another far block onto it, as RMCC's update policy would.
    engine.table(0).insertGroup(tree.observedMax() - 7);
    tree.level(0).relevelBlock(addr::blockOf(0x3000000),
                               tree.observedMax());
    r = mc.read(0x3000000, now);
    narrate("far read (counter miss, memoized)", r, now);
    now = r.done_ns + 100;

    // Writes are posted: the counter bumps, data re-encrypts, and the
    // core only stalls if the overflow engine is saturated.
    const addr::BlockId blk = addr::blockOf(0x100000);
    const auto ctr_before = tree.level(0).read(blk);
    const double stall = mc.write(0x100000, now);
    std::printf("%-34s counter %llu -> %llu, core stall %.1f ns\n",
                "writeback", static_cast<unsigned long long>(ctr_before),
                static_cast<unsigned long long>(tree.level(0).read(blk)),
                stall - now);

    std::puts("\n== controller statistics ==");
    for (const auto &[name, value] : mc.stats().all())
        if (value != 0)
            std::printf("  %-28s %.0f\n", name.c_str(), value);
    return 0;
}
