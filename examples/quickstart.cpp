/**
 * @file
 * Quickstart: protect a 64 B memory block the way RMCC's memory
 * controller does — encrypt it with a split OTP, MAC it, bump the write
 * counter on each write, and decrypt/verify on read, reusing one
 * memoized counter-only AES result across many blocks.
 */
#include <cstdio>

#include "crypto/mac.hpp"
#include "crypto/otp.hpp"

using namespace rmcc::crypto;

int
main()
{
    // 1. Keys: encryption and MAC use independent AES key schedules.
    const Aes enc_key = Aes::fromSeed(0x5ec5e7);
    const Aes mac_key = Aes::fromSeed(0x7a9);
    const RmccOtpEngine otp(enc_key, mac_key);
    const BlockCodec codec(otp);
    const MacEngine mac(0xdeadbeef);

    // 2. A 64 B plaintext block at physical address 0x4000.
    const std::uint64_t address = 0x4000;
    std::uint64_t counter = 41; // its current write counter
    DataBlock plaintext;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        plaintext[w] = makeBlock(0x48454c4c4f000000ULL + w, w * 1111);

    // 3. Write to memory: bump the counter, encrypt, MAC.
    ++counter;
    const DataBlock ciphertext = codec.encode(plaintext, address, counter);
    const std::uint64_t stored_mac =
        mac.mac(ciphertext, otp.macOtp(address, counter));
    std::printf("wrote block @%#llx under counter %llu, MAC=%#llx\n",
                static_cast<unsigned long long>(address),
                static_cast<unsigned long long>(counter),
                static_cast<unsigned long long>(stored_mac));

    // 4. Read back: verify the MAC, then decrypt.
    const std::uint64_t check =
        mac.mac(ciphertext, otp.macOtp(address, counter));
    if (check != stored_mac) {
        std::puts("integrity violation!");
        return 1;
    }
    const DataBlock recovered = codec.encode(ciphertext, address, counter);
    std::printf("verified and decrypted: %s\n",
                recovered == plaintext ? "plaintext recovered" : "BUG");

    // 5. The RMCC idea: ONE memoized counter-only AES result serves any
    //    block whose counter has that value — only the fast address-only
    //    AES and a 1 ns carry-less multiply remain per block.
    const Block128 memoized = otp.counterOnlyEnc(counter);
    std::puts("\nreusing one memoized counter-only AES result:");
    for (std::uint64_t a = 0x8000; a < 0x8000 + 4 * 64; a += 64) {
        const Block128 pad =
            RmccOtpEngine::combine(memoized, otp.addressOnlyEnc(a, 0));
        const Block128 full = otp.encryptionOtp(a, 0, counter);
        std::printf("  block @%#llx: combined OTP %s the full "
                    "calculation\n",
                    static_cast<unsigned long long>(a),
                    pad == full ? "matches" : "DIFFERS FROM");
    }
    return 0;
}
