/**
 * @file
 * rmcc-lint: token-level enforcement of project invariants that neither
 * the compiler nor the test suite can see (docs/STATIC_ANALYSIS.md).
 *
 * Usage:  rmcc-lint <repo-root>
 *
 * Scans src/, bench/, and examples/ (extensions .cpp/.hpp/.h/.cc) after
 * blanking comments and string literals, so matches are real code
 * tokens.  Rules:
 *
 *   getenv       std::getenv only inside src/util/env.cpp — every
 *                RMCC_* knob goes through the strict util::env parsers.
 *   env-docs     every RMCC_* env var named in a code string literal
 *                must appear in README.md or docs/*.md, and vice versa
 *                (stale docs are as misleading as missing ones).
 *   determinism  no rand()/srand()/time()/std::random_device in src/ —
 *                results are reproducible from the seed alone.
 *   hot-path     no new/malloc/std::string construction/std::cout|cerr
 *                inside a function whose definition is preceded by a
 *                `// rmcc-lint: hot-path` marker line (replay loops,
 *                cache probes, crypto batch kernels, SecureMc::read).
 *   mutex-guard  no naked std::mutex in src/ — concurrency state uses
 *                util::Mutex with RMCC_GUARDED_BY so Clang's
 *                -Wthread-safety can prove lock discipline.
 *
 * A violation line may carry `// rmcc-lint: allow(<rule>)` to suppress
 * that rule on that line; escapes are budgeted and reviewed
 * (docs/STATIC_ANALYSIS.md).  Output is one `path:line: rule(<name>):
 * message` per finding; exit 0 clean, 1 findings, 2 usage/IO error.
 *
 * Deliberately token/regex level — no libclang, no compile_commands —
 * so it builds in seconds anywhere the repo builds and runs in CI
 * before the first object file exists.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace
{

namespace fs = std::filesystem;

struct Finding
{
    std::string path; // repo-relative
    std::size_t line; // 1-based
    std::string rule;
    std::string message;
};

std::vector<Finding> g_findings;

void
report(const std::string &path, std::size_t line, const std::string &rule,
       const std::string &message)
{
    g_findings.push_back({path, line, rule, message});
}

//! Is c part of an identifier ([A-Za-z0-9_])?
bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/**
 * One scanned source file: the raw text split into lines, a "blanked"
 * copy with comments and string/char literals replaced by spaces, the
 * set of per-line lint directives, and every RMCC_* token found inside
 * string literals (the env-docs inventory).
 */
struct SourceFile
{
    std::string rel_path;
    std::vector<std::string> raw;     //!< Original lines.
    std::vector<std::string> blank;   //!< Comments/strings blanked.
    //! line (1-based) -> rules allowed on that line.
    std::map<std::size_t, std::set<std::string>> allows;
    std::vector<std::size_t> hot_markers; //!< Marker lines (1-based).
    //! RMCC_* tokens in string literals: token -> first line seen.
    std::map<std::string, std::size_t> env_tokens;
};

/** Collect RMCC_[A-Z0-9_]+ tokens from text into out (first line wins). */
void
collectEnvTokens(const std::string &text, std::size_t line,
                 std::map<std::string, std::size_t> &out)
{
    for (std::size_t i = 0; i + 5 <= text.size(); ++i) {
        if (text.compare(i, 5, "RMCC_") != 0)
            continue;
        if (i > 0 && identChar(text[i - 1]))
            continue;
        std::size_t j = i + 5;
        while (j < text.size() &&
               ((text[j] >= 'A' && text[j] <= 'Z') ||
                (text[j] >= '0' && text[j] <= '9') || text[j] == '_'))
            ++j;
        const std::string tok = text.substr(i, j - i);
        // Trailing '_' marks a deliberate wildcard/prefix mention
        // ("the RMCC_TRACE_ knobs"), not a variable name.
        if (tok.size() > 5 && tok.back() != '_')
            out.emplace(tok, line);
        i = j - 1;
    }
}

/**
 * Parse lint directives out of a comment body ("rmcc-lint: ..." text).
 */
void
parseDirective(const std::string &comment, std::size_t line, SourceFile &sf)
{
    const std::size_t at = comment.find("rmcc-lint:");
    if (at == std::string::npos)
        return;
    std::string rest = comment.substr(at + 10);
    // allow(rule[, rule...]) — consume (erase) these first so the
    // rule name inside allow(hot-path) is not mistaken for a marker.
    std::size_t pos = 0;
    while ((pos = rest.find("allow(", pos)) != std::string::npos) {
        const std::size_t close = rest.find(')', pos);
        if (close == std::string::npos)
            break;
        std::string inner = rest.substr(pos + 6, close - pos - 6);
        std::istringstream ss(inner);
        std::string rule;
        while (std::getline(ss, rule, ',')) {
            rule.erase(0, rule.find_first_not_of(" \t"));
            rule.erase(rule.find_last_not_of(" \t") + 1);
            if (!rule.empty())
                sf.allows[line].insert(rule);
        }
        rest.erase(pos, close + 1 - pos);
    }
    // hot-path marker
    if (rest.find("hot-path") != std::string::npos)
        sf.hot_markers.push_back(line);
}

/**
 * Load a file and produce the blanked view.  State machine over the
 * whole text: code, // comment, block comment, "string", 'char'.
 * Escapes inside literals are honoured; literal bodies become spaces in
 * the blanked view (so token scans never match inside them) but are
 * mined for RMCC_* names first.
 */
bool
loadSource(const fs::path &abs, const std::string &rel, SourceFile &sf)
{
    std::ifstream in(abs, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    sf.rel_path = rel;

    enum class St
    {
        Code,
        Line,   // //...
        Block,  // /*...*/
        Str,    // "..."
        Chr,    // '...'
    };
    St st = St::Code;
    std::string raw_line, blank_line, literal, comment;
    std::size_t line_no = 1;

    auto endLine = [&] {
        sf.raw.push_back(raw_line);
        sf.blank.push_back(blank_line);
        raw_line.clear();
        blank_line.clear();
        ++line_no;
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char n = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') {
            if (st == St::Line) {
                parseDirective(comment, line_no, sf);
                comment.clear();
                st = St::Code;
            }
            // Unterminated string/char at end of line: revert to code
            // (the compiler would reject it anyway).
            if (st == St::Str || st == St::Chr)
                st = St::Code;
            endLine();
            continue;
        }
        raw_line.push_back(c);
        switch (st) {
        case St::Code:
            if (c == '/' && n == '/') {
                st = St::Line;
                comment.clear();
                blank_line.push_back(' ');
            } else if (c == '/' && n == '*') {
                st = St::Block;
                blank_line.push_back(' ');
                ++i;
                raw_line.push_back('*');
                blank_line.push_back(' ');
            } else if (c == '"') {
                st = St::Str;
                literal.clear();
                blank_line.push_back(' ');
            } else if (c == '\'') {
                st = St::Chr;
                blank_line.push_back(' ');
            } else {
                blank_line.push_back(c);
            }
            break;
        case St::Line:
            comment.push_back(c);
            blank_line.push_back(' ');
            break;
        case St::Block:
            blank_line.push_back(' ');
            if (c == '*' && n == '/') {
                ++i;
                raw_line.push_back('/');
                blank_line.push_back(' ');
                st = St::Code;
            }
            break;
        case St::Str:
            blank_line.push_back(' ');
            if (c == '\\' && n != '\0') {
                ++i;
                raw_line.push_back(n);
                blank_line.push_back(' ');
            } else if (c == '"') {
                collectEnvTokens(literal, line_no, sf.env_tokens);
                literal.clear();
                st = St::Code;
            } else {
                literal.push_back(c);
            }
            break;
        case St::Chr:
            blank_line.push_back(' ');
            if (c == '\\' && n != '\0') {
                ++i;
                raw_line.push_back(n);
                blank_line.push_back(' ');
            } else if (c == '\'') {
                st = St::Code;
            }
            break;
        }
    }
    if (st == St::Line)
        parseDirective(comment, line_no, sf);
    if (!raw_line.empty() || !blank_line.empty())
        endLine();
    return true;
}

bool
allowed(const SourceFile &sf, std::size_t line, const std::string &rule)
{
    const auto it = sf.allows.find(line);
    return it != sf.allows.end() && it->second.count(rule) > 0;
}

/**
 * Find `token` as a standalone occurrence in `hay`: the character
 * before must not be an identifier char (so `time(` never matches
 * xtime( or localtime_r( but does match std::time(, whose ':' prefix
 * is not an identifier char), and — when the token ends in an
 * identifier char — the character after must not extend the identifier
 * (so `std::string` never matches std::stringstream).
 */
std::size_t
findToken(const std::string &hay, const std::string &token,
          std::size_t from)
{
    std::size_t pos = from;
    while ((pos = hay.find(token, pos)) != std::string::npos) {
        const bool pre_ok = pos == 0 || !identChar(hay[pos - 1]);
        const std::size_t end = pos + token.size();
        const bool post_ok = !identChar(token.back()) ||
                             end >= hay.size() || !identChar(hay[end]);
        if (pre_ok && post_ok)
            return pos;
        ++pos;
    }
    return std::string::npos;
}

/** Report the first standalone occurrence of token per line. */
void
scanToken(const SourceFile &sf, const std::string &token,
          const std::string &rule, const std::string &message)
{
    for (std::size_t l = 0; l < sf.blank.size(); ++l) {
        if (findToken(sf.blank[l], token, 0) == std::string::npos)
            continue;
        if (!allowed(sf, l + 1, rule))
            report(sf.rel_path, l + 1, rule, message);
    }
}

// --- hot-path rule ---------------------------------------------------------

struct HotToken
{
    const char *token;
    const char *what;
};

constexpr HotToken kHotTokens[] = {
    {"new", "operator new allocates"},
    {"malloc", "malloc allocates"},
    {"calloc", "calloc allocates"},
    {"realloc", "realloc allocates"},
    {"std::string", "std::string may allocate"},
    {"std::cout", "iostream output"},
    {"std::cerr", "iostream output"},
};

/**
 * Enforce the allocation/IO ban inside the function following each
 * `// rmcc-lint: hot-path` marker.  The extent starts at the first `{`
 * after the marker with all parentheses since the marker closed (i.e.
 * the function body, skipping the signature — a `const std::string &`
 * parameter is not a construction) and ends at the matching `}`.
 */
void
checkHotPaths(const SourceFile &sf)
{
    for (const std::size_t marker : sf.hot_markers) {
        int paren = 0;
        int brace = 0;
        bool in_body = false;
        bool found_body = false;
        for (std::size_t l = marker; l < sf.blank.size(); ++l) {
            const std::string &s = sf.blank[l];
            for (std::size_t i = 0; i < s.size(); ++i) {
                const char c = s[i];
                if (c == '(')
                    ++paren;
                else if (c == ')')
                    --paren;
                else if (c == '{') {
                    if (!in_body && paren == 0) {
                        in_body = true;
                        found_body = true;
                    }
                    if (in_body)
                        ++brace;
                } else if (c == '}') {
                    if (in_body && --brace == 0) {
                        in_body = false;
                        l = sf.blank.size(); // done with this marker
                        break;
                    }
                }
            }
            if (!in_body && found_body)
                break;
            if (!in_body)
                continue;
            // Scan this body line for banned tokens.
            for (const HotToken &t : kHotTokens) {
                if (findToken(s, t.token, 0) == std::string::npos)
                    continue;
                if (!allowed(sf, l + 1, "hot-path"))
                    report(sf.rel_path, l + 1, "hot-path",
                           std::string(t.what) +
                               " in a hot-path function (marked at line " +
                               std::to_string(marker) + ")");
            }
        }
        if (!found_body)
            report(sf.rel_path, marker, "hot-path",
                   "hot-path marker with no function body following it");
    }
}

// --- env-docs rule ---------------------------------------------------------

//! RMCC_* identifiers that are macros/tool knobs, not runtime env vars.
const std::set<std::string> kEnvIgnore = {
    "RMCC_CAPABILITY", "RMCC_SCOPED_CAPABILITY", "RMCC_GUARDED_BY",
    "RMCC_PT_GUARDED_BY", "RMCC_ACQUIRE", "RMCC_RELEASE",
    "RMCC_TRY_ACQUIRE", "RMCC_REQUIRES", "RMCC_EXCLUDES",
    "RMCC_ASSERT_CAPABILITY", "RMCC_RETURN_CAPABILITY",
    "RMCC_NO_THREAD_SAFETY_ANALYSIS", "RMCC_THREAD_ATTR",
    "RMCC_LINT_BIN", "RMCC_LINT_ROOT",
};

void
checkEnvDocs(const std::vector<SourceFile> &sources, const fs::path &root)
{
    // Inventory of documented names: README.md + docs/*.md, raw text.
    std::map<std::string, std::pair<std::string, std::size_t>> documented;
    auto scanDoc = [&](const fs::path &p, const std::string &rel) {
        std::ifstream in(p);
        if (!in)
            return;
        std::string line;
        std::size_t n = 0;
        while (std::getline(in, line)) {
            ++n;
            std::map<std::string, std::size_t> toks;
            collectEnvTokens(line, n, toks);
            for (const auto &kv : toks)
                documented.emplace(kv.first, std::make_pair(rel, n));
        }
    };
    scanDoc(root / "README.md", "README.md");
    if (fs::is_directory(root / "docs"))
        for (const auto &e : fs::directory_iterator(root / "docs"))
            if (e.is_regular_file() && e.path().extension() == ".md")
                scanDoc(e.path(), "docs/" + e.path().filename().string());

    // Code -> docs: every env var a code string literal names must be
    // documented.
    std::set<std::string> used;
    for (const SourceFile &sf : sources) {
        for (const auto &kv : sf.env_tokens) {
            if (kEnvIgnore.count(kv.first) > 0)
                continue;
            used.insert(kv.first);
            if (documented.count(kv.first) == 0 &&
                !allowed(sf, kv.second, "env-docs"))
                report(sf.rel_path, kv.second, "env-docs",
                       kv.first +
                           " is referenced in code but documented in "
                           "neither README.md nor docs/*.md");
        }
    }

    // Docs -> code: a documented variable nothing reads is stale docs.
    for (const auto &kv : documented) {
        if (kEnvIgnore.count(kv.first) > 0)
            continue;
        if (used.count(kv.first) == 0)
            report(kv.second.first, kv.second.second, "env-docs",
                   kv.first +
                       " is documented but no code string literal "
                       "references it (stale docs?)");
    }
}

// --- driver ----------------------------------------------------------------

bool
sourceExt(const fs::path &p)
{
    const std::string e = p.extension().string();
    return e == ".cpp" || e == ".hpp" || e == ".h" || e == ".cc";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: rmcc-lint <repo-root>\n");
        return 2;
    }
    const fs::path root = argv[1];
    if (!fs::is_directory(root)) {
        std::fprintf(stderr, "rmcc-lint: '%s' is not a directory\n",
                     argv[1]);
        return 2;
    }

    std::vector<SourceFile> sources;
    for (const char *top : {"src", "bench", "examples"}) {
        const fs::path dir = root / top;
        if (!fs::is_directory(dir))
            continue;
        std::vector<fs::path> files;
        for (const auto &e : fs::recursive_directory_iterator(dir))
            if (e.is_regular_file() && sourceExt(e.path()))
                files.push_back(e.path());
        std::sort(files.begin(), files.end());
        for (const fs::path &p : files) {
            SourceFile sf;
            const std::string rel =
                fs::relative(p, root).generic_string();
            if (!loadSource(p, rel, sf)) {
                std::fprintf(stderr, "rmcc-lint: cannot read %s\n",
                             rel.c_str());
                return 2;
            }
            sources.push_back(std::move(sf));
        }
    }

    for (const SourceFile &sf : sources) {
        const bool in_src = sf.rel_path.rfind("src/", 0) == 0;

        // getenv: strict parsing lives in exactly one place.
        if (sf.rel_path != "src/util/env.cpp")
            scanToken(sf, "getenv",
                      "getenv",
                      "raw getenv: use the strict util::env accessors "
                      "(envString/envUnsigned/envChoice)");

        if (in_src) {
            // determinism: seeded RNG only; no wall-clock in results.
            scanToken(sf, "rand(",
                      "determinism",
                      "rand(): use the seeded util RNG");
            scanToken(sf, "srand(",
                      "determinism",
                      "srand(): use the seeded util RNG");
            scanToken(sf, "time(",
                      "determinism",
                      "time(): results must not depend on wall clock "
                      "(std::chrono for diagnostics only)");
            scanToken(sf, "std::random_device",
                      "determinism",
                      "std::random_device is non-deterministic: use the "
                      "seeded util RNG");

            // mutex-guard: annotated wrappers only.
            scanToken(sf, "std::mutex",
                      "mutex-guard",
                      "naked std::mutex: use util::Mutex with "
                      "RMCC_GUARDED_BY so -Wthread-safety can prove "
                      "lock discipline");

            // A util::Mutex in a file with no RMCC_GUARDED_BY guards
            // nothing the analysis can check.
            bool has_mutex = false, has_guard = false;
            std::size_t mutex_line = 0;
            for (std::size_t l = 0; l < sf.blank.size(); ++l) {
                if (!has_mutex &&
                    findToken(sf.blank[l], "util::Mutex", 0) !=
                        std::string::npos) {
                    has_mutex = true;
                    mutex_line = l + 1;
                }
                if (sf.blank[l].find("RMCC_GUARDED_BY") !=
                    std::string::npos)
                    has_guard = true;
            }
            if (has_mutex && !has_guard &&
                sf.rel_path != "src/util/mutex.hpp" &&
                !allowed(sf, mutex_line, "mutex-guard"))
                report(sf.rel_path, mutex_line, "mutex-guard",
                       "util::Mutex declared but nothing in this file "
                       "is RMCC_GUARDED_BY it");
        }

        checkHotPaths(sf);
    }

    checkEnvDocs(sources, root);

    std::sort(g_findings.begin(), g_findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.path != b.path)
                      return a.path < b.path;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    for (const Finding &f : g_findings)
        std::printf("%s:%zu: rule(%s): %s\n", f.path.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
    if (!g_findings.empty()) {
        std::printf("rmcc-lint: %zu finding(s)\n", g_findings.size());
        return 1;
    }
    return 0;
}
