/**
 * @file
 * End-to-end integration tests: functional and timing simulations over
 * real workload traces, cross-config orderings (non-secure fastest,
 * RMCC >= Morphable on irregular workloads), statistic conservation, and
 * determinism.
 */
#include <gtest/gtest.h>

#include "sim/experiments.hpp"

using namespace rmcc;
using namespace rmcc::sim;

namespace
{

/** Small-but-real experiment shape to keep the test quick. */
void
shrink(SystemConfig &cfg)
{
    cfg.trace_records = 150000;
    cfg.warmup_records = 75000;
    // At this miniature scale the default lifetime-warmup grant cannot
    // relevel a full working set; give the emulated prior lifetime
    // enough budget to converge, as the full-scale defaults do.
    cfg.precondition_budget_fraction = 30.0;
}

} // namespace

TEST(Integration, FunctionalStatsConservation)
{
    NamedConfig nc = baselineConfig(SimMode::Functional,
                                    ctr::SchemeKind::Morphable);
    shrink(nc.cfg);
    const auto *w = wl::findWorkload("canneal");
    const auto trace = wl::generateTrace(*w, nc.cfg.trace_records, 42);
    const SimResult r = runOne(w->name, trace, nc);
    EXPECT_DOUBLE_EQ(r.stats.get("mc.reads"), r.stats.get("sim.llc_misses"));
    EXPECT_DOUBLE_EQ(r.stats.get("ctr.l0_hit") + r.stats.get("ctr.l0_miss"),
                     r.stats.get("mc.reads"));
    EXPECT_GT(r.counterMissRate(), 0.5); // canneal thrashes counters
    EXPECT_LE(r.counterMissRate(), 1.0);
}

TEST(Integration, TimingOrderingNonSecureFastest)
{
    std::vector<NamedConfig> configs = {
        nonSecureConfig(SimMode::Timing),
        baselineConfig(SimMode::Timing, ctr::SchemeKind::SC64),
        baselineConfig(SimMode::Timing, ctr::SchemeKind::Morphable),
    };
    for (auto &nc : configs)
        shrink(nc.cfg);
    const auto *w = wl::findWorkload("canneal");
    const SuiteRow row = runWorkload(*w, configs);
    const double nonsecure = row.results[0].perf();
    const double sc64 = row.results[1].perf();
    const double morph = row.results[2].perf();
    EXPECT_GT(nonsecure, morph);
    EXPECT_GT(nonsecure, sc64);
    // Morphable's 128-block coverage beats SC-64 on irregular workloads.
    EXPECT_GE(morph, sc64 * 0.98);
}

TEST(Integration, RmccBeatsMorphableOnCanneal)
{
    std::vector<NamedConfig> configs = {
        baselineConfig(SimMode::Timing, ctr::SchemeKind::Morphable),
        rmccConfig(SimMode::Timing),
    };
    for (auto &nc : configs)
        shrink(nc.cfg);
    const auto *w = wl::findWorkload("canneal");
    const SuiteRow row = runWorkload(*w, configs);
    EXPECT_GT(row.results[1].perf(), row.results[0].perf());
    EXPECT_LT(row.results[1].avgReadLatencyNs(),
              row.results[0].avgReadLatencyNs());
    EXPECT_GT(row.results[1].acceleratedMissRate(), 0.8);
}

TEST(Integration, RmccMemoHitRateHighAfterLifetimeWarmup)
{
    NamedConfig nc = rmccConfig(SimMode::Functional);
    shrink(nc.cfg);
    const auto *w = wl::findWorkload("canneal");
    const auto trace = wl::generateTrace(*w, nc.cfg.trace_records, 42);
    const SimResult r = runOne(w->name, trace, nc);
    EXPECT_GT(r.memoHitRateAll(), 0.8);
    EXPECT_GT(r.stats.get("rmcc.avg_coverage_l0"), 100.0);
}

TEST(Integration, RmccTrafficOverheadBounded)
{
    std::vector<NamedConfig> configs = {
        baselineConfig(SimMode::Functional, ctr::SchemeKind::Morphable),
        rmccConfig(SimMode::Functional),
    };
    for (auto &nc : configs)
        shrink(nc.cfg);
    const auto *w = wl::findWorkload("canneal");
    const SuiteRow row = runWorkload(*w, configs);
    const double overhead = row.results[1].dramAccesses() /
                                row.results[0].dramAccesses() -
                            1.0;
    // 1% budget per level plus residual convergence: well under 10%.
    EXPECT_LT(overhead, 0.10);
    EXPECT_GT(overhead, -0.10);
}

TEST(Integration, DeterministicAcrossRuns)
{
    NamedConfig nc = rmccConfig(SimMode::Timing);
    shrink(nc.cfg);
    const auto *w = wl::findWorkload("omnetpp");
    const auto trace = wl::generateTrace(*w, nc.cfg.trace_records, 42);
    const SimResult a = runOne(w->name, trace, nc);
    const SimResult b = runOne(w->name, trace, nc);
    EXPECT_DOUBLE_EQ(a.elapsed_ns, b.elapsed_ns);
    EXPECT_DOUBLE_EQ(a.dramAccesses(), b.dramAccesses());
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(Integration, HugePagesNearlyEliminateTlbMisses)
{
    NamedConfig small = baselineConfig(SimMode::Functional,
                                       ctr::SchemeKind::Morphable);
    shrink(small.cfg);
    small.cfg.page_mode = addr::PageMode::Small4K;
    NamedConfig huge = small;
    huge.cfg.page_mode = addr::PageMode::Huge2M;
    const auto *w = wl::findWorkload("canneal");
    const auto trace = wl::generateTrace(*w, small.cfg.trace_records, 42);
    const SimResult rs = runOne(w->name, trace, small);
    const SimResult rh = runOne(w->name, trace, huge);
    EXPECT_GT(rs.stats.get("tlb.misses"),
              10.0 * (rh.stats.get("tlb.misses") + 1.0));
}

TEST(Integration, SystemMaxGrowsModestlyUnderRmcc)
{
    // Sec IV-D2: RMCC raises the maximum counter value faster than the
    // baseline, but only modestly (paper: +24% geomean over lifetimes).
    std::vector<NamedConfig> configs = {
        baselineConfig(SimMode::Functional, ctr::SchemeKind::Morphable),
        rmccConfig(SimMode::Functional),
    };
    for (auto &nc : configs)
        shrink(nc.cfg);
    const auto *w = wl::findWorkload("canneal");
    const SuiteRow row = runWorkload(*w, configs);
    const double base_max = row.results[0].stats.get("ctr.observed_max");
    const double rmcc_max = row.results[1].stats.get("ctr.observed_max");
    EXPECT_GE(rmcc_max, base_max * 0.99);
    EXPECT_LT(rmcc_max, base_max * 3.0);
}

TEST(Integration, Table1DescribeMentionsKeyRows)
{
    const SystemConfig cfg = SystemConfig::timingDefault();
    const std::string text = cfg.describe();
    for (const char *key :
         {"192 entry ROB", "1536 entries", "Counter Cache", "AES latency",
          "FR-FCFS", "XOR-based"})
        EXPECT_NE(text.find(key), std::string::npos) << key;
}

TEST(Integration, RegistryLookupsIndependentOfTraceLength)
{
    // The hot loop must not consult the string-keyed stat registry per
    // record: after a warm-up run, a 2x longer trace resolves exactly as
    // many names as the short one.
    NamedConfig nc = rmccConfig(SimMode::Timing);
    shrink(nc.cfg);
    const auto *w = wl::findWorkload("canneal");
    const auto short_trace =
        wl::generateTrace(*w, nc.cfg.trace_records, 42);
    NamedConfig nc_long = nc;
    nc_long.cfg.trace_records = 2 * nc.cfg.trace_records;
    nc_long.cfg.warmup_records = 2 * nc.cfg.warmup_records;
    const auto long_trace =
        wl::generateTrace(*w, nc_long.cfg.trace_records, 42);

    runTiming(w->name, short_trace, nc.cfg); // warm lazy registrations

    const std::uint64_t base0 = util::StatSet::stringLookups();
    runTiming(w->name, short_trace, nc.cfg);
    const std::uint64_t short_lookups =
        util::StatSet::stringLookups() - base0;

    const std::uint64_t base1 = util::StatSet::stringLookups();
    runTiming(w->name, long_trace, nc_long.cfg);
    const std::uint64_t long_lookups =
        util::StatSet::stringLookups() - base1;

    EXPECT_EQ(short_lookups, long_lookups)
        << "string-keyed stat lookups must not scale with trace length";
}
