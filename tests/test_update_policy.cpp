/**
 * @file
 * Memoization-aware counter-update tests (Sec IV-B/C): jump-to-nearest,
 * cheap vs far jumps, whole-block relevels, budget gating, and the
 * security invariant that counters only ever increase.
 */
#include <gtest/gtest.h>

#include "core/update_policy.hpp"
#include "counters/morphable.hpp"
#include "counters/monolithic.hpp"

using namespace rmcc::core;
using namespace rmcc::ctr;

namespace
{

struct PolicyRig
{
    MemoTable table;
    TrafficBudget budget;
    UpdatePolicy policy{table, budget, true};
    MorphableScheme scheme{256};

    explicit PolicyRig(double pool = 0.0)
    {
        budget.setPool(pool);
    }
};

} // namespace

TEST(UpdatePolicy, DisabledMeansBaselinePlusOne)
{
    MemoTable table;
    TrafficBudget budget;
    UpdatePolicy policy(table, budget, false);
    MorphableScheme scheme(128);
    table.insertGroup(100);
    const UpdateOutcome out = policy.onWrite(scheme, 0);
    EXPECT_EQ(out.value, 1u);
    EXPECT_FALSE(out.used_memo_target);
}

TEST(UpdatePolicy, NoMemoizedValueAboveFallsBackToPlusOne)
{
    PolicyRig rig;
    rig.scheme.relevelBlock(0, 500);
    rig.table.insertGroup(100); // max memoized = 107 < 500
    const UpdateOutcome out = rig.policy.onWrite(rig.scheme, 0);
    EXPECT_EQ(out.value, 501u);
    EXPECT_FALSE(out.used_memo_target);
}

TEST(UpdatePolicy, CheapJumpToNearestMemoizedValue)
{
    PolicyRig rig;
    rig.scheme.relevelBlock(0, 100);
    rig.table.insertGroup(103); // nearest above 100 is 103, span 3 < 8
    const UpdateOutcome out = rig.policy.onWrite(rig.scheme, 0);
    EXPECT_EQ(out.value, 103u);
    EXPECT_TRUE(out.used_memo_target);
    EXPECT_EQ(out.overhead_accesses, 0u);
    EXPECT_EQ(out.reencrypt_blocks, 0u);
}

TEST(UpdatePolicy, GroupWalkIsPlusOneInsideGroup)
{
    // Consecutive writebacks walk the group one value at a time
    // (paper Fig 7): counters 103 -> 104 -> 105 ...
    PolicyRig rig;
    rig.scheme.relevelBlock(0, 100);
    rig.table.insertGroup(103);
    rmcc::addr::CounterValue prev = 100;
    for (int w = 0; w < 5; ++w) {
        const UpdateOutcome out = rig.policy.onWrite(rig.scheme, 0);
        EXPECT_EQ(out.value, std::max<rmcc::addr::CounterValue>(
                                 prev + 1, 103u));
        prev = out.value;
    }
    EXPECT_EQ(rig.scheme.read(0), 107u);
}

TEST(UpdatePolicy, FarJumpRelevelsWholeBlockWhenBudgetAllows)
{
    PolicyRig rig(10000.0);
    rig.scheme.relevelBlock(0, 100);
    rig.table.insertGroup(5000); // far above the dense range
    const UpdateOutcome out = rig.policy.onWrite(rig.scheme, 0);
    EXPECT_TRUE(out.used_memo_target);
    EXPECT_EQ(out.value, 5000u);
    EXPECT_EQ(out.reencrypt_blocks, 128u);
    EXPECT_EQ(out.overhead_accesses, 2u * 128);
    // Every counter of the block releveled to the memoized value.
    EXPECT_EQ(rig.scheme.read(1), 5000u);
    EXPECT_EQ(rig.budget.totalSpent(), 256u);
}

TEST(UpdatePolicy, FarJumpWithoutBudgetFallsBackToPlusOne)
{
    PolicyRig rig(0.0);
    rig.scheme.relevelBlock(0, 100);
    rig.table.insertGroup(5000);
    const UpdateOutcome out = rig.policy.onWrite(rig.scheme, 0);
    EXPECT_FALSE(out.used_memo_target);
    EXPECT_EQ(out.value, 101u);
    EXPECT_EQ(out.reencrypt_blocks, 0u);
}

TEST(UpdatePolicy, FarRelevelDisallowedFallsBackToPlusOne)
{
    MemoTable table;
    TrafficBudget budget;
    budget.setPool(1e6);
    UpdatePolicy policy(table, budget, true,
                        /*allow_far_relevel=*/false);
    MorphableScheme scheme(128);
    scheme.relevelBlock(0, 100);
    table.insertGroup(5000);
    const UpdateOutcome out = policy.onWrite(scheme, 0);
    EXPECT_EQ(out.value, 101u);
    EXPECT_EQ(budget.totalSpent(), 0u);
}

TEST(UpdatePolicy, ReadMissRelevelsBlockWithinBudget)
{
    PolicyRig rig(1000.0);
    rig.scheme.relevelBlock(0, 100);
    rig.table.insertGroup(5000);
    const auto out = rig.policy.onReadMiss(rig.scheme, 0);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->value, 5000u);
    EXPECT_EQ(out->reencrypt_blocks, 128u);
    EXPECT_EQ(rig.policy.readUpdates(), 1u);
    // All counters in the block now memoized.
    EXPECT_EQ(rig.scheme.read(5), 5000u);
}

TEST(UpdatePolicy, ReadMissSkippedWhenBudgetDry)
{
    PolicyRig rig(0.0);
    rig.table.insertGroup(5000);
    EXPECT_FALSE(rig.policy.onReadMiss(rig.scheme, 0).has_value());
    EXPECT_EQ(rig.policy.readUpdates(), 0u);
}

TEST(UpdatePolicy, ReadMissSkippedWhenNothingAbove)
{
    PolicyRig rig(1000.0);
    rig.scheme.relevelBlock(0, 9000);
    rig.table.insertGroup(5000);
    EXPECT_FALSE(rig.policy.onReadMiss(rig.scheme, 0).has_value());
}

TEST(UpdatePolicy, CountersStrictlyIncreaseUnderAnyPolicyPath)
{
    PolicyRig rig(1e9);
    rig.table.insertGroup(100);
    rig.table.insertGroup(300);
    rmcc::util::Rng rng(5);
    std::vector<rmcc::addr::CounterValue> last(256, 0);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t idx = rng.nextBelow(256);
        const auto before = rig.scheme.read(idx);
        const UpdateOutcome out = rig.policy.onWrite(rig.scheme, idx);
        EXPECT_GT(out.value, before);
        EXPECT_GE(rig.scheme.read(idx), out.value);
        last[idx] = out.value;
    }
}

TEST(UpdatePolicy, SelfReinforcementGrowsCoverage)
{
    // Paper Fig 6: the memoized values' coverage grows monotonically as
    // blocks are written back.
    PolicyRig rig(1e9);
    rig.table.insertGroup(200000);
    rmcc::util::Rng rng(11);
    rig.scheme.randomInit(rng, 100000);
    auto coverage = [&]() {
        std::uint64_t covered = 0;
        for (std::uint64_t i = 0; i < rig.scheme.entities(); ++i)
            covered += rig.table.inGroups(rig.scheme.read(i));
        return covered;
    };
    const std::uint64_t before = coverage();
    for (std::uint64_t i = 0; i < rig.scheme.entities(); ++i)
        rig.policy.onWrite(rig.scheme, i);
    EXPECT_GT(coverage(), before);
    EXPECT_GT(coverage(), rig.scheme.entities() / 2);
}
