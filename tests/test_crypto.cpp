/**
 * @file
 * Crypto tests: FIPS-197 AES vectors, CLMUL/GF algebra, OTP construction
 * properties (domain separation, non-commutativity, determinism), block
 * codec round trips, and MAC tamper detection.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>

#include "crypto/aes.hpp"
#include "crypto/clmul.hpp"
#include "crypto/dispatch.hpp"
#include "crypto/mac.hpp"
#include "crypto/otp.hpp"

using namespace rmcc::crypto;

namespace
{

Block128
hexBlock(const char *hex)
{
    Block128 b{};
    for (int i = 0; i < 16; ++i) {
        unsigned v = 0;
        sscanf(hex + 2 * i, "%2x", &v);
        b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
    }
    return b;
}

} // namespace

TEST(Aes, Fips197Aes128Vector)
{
    // FIPS-197 Appendix C.1.
    std::array<std::uint8_t, 16> key;
    for (int i = 0; i < 16; ++i)
        key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    const Aes aes = Aes::fromKey128(key);
    const Block128 pt = hexBlock("00112233445566778899aabbccddeeff");
    const Block128 expect = hexBlock("69c4e0d86a7b0430d8cdb78070b4c55a");
    EXPECT_EQ(aes.encrypt(pt), expect);
}

TEST(Aes, Fips197Aes256Vector)
{
    // FIPS-197 Appendix C.3.
    std::array<std::uint8_t, 32> key;
    for (int i = 0; i < 32; ++i)
        key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    const Aes aes = Aes::fromKey256(key);
    const Block128 pt = hexBlock("00112233445566778899aabbccddeeff");
    const Block128 expect = hexBlock("8ea2b7ca516745bfeafc49904b496089");
    EXPECT_EQ(aes.encrypt(pt), expect);
}

TEST(Aes, ReferencePathMatchesNistVectors)
{
    // The byte-wise oracle must itself pass FIPS-197 Appendix C.
    std::array<std::uint8_t, 16> key128;
    for (int i = 0; i < 16; ++i)
        key128[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    std::array<std::uint8_t, 32> key256;
    for (int i = 0; i < 32; ++i)
        key256[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    const Block128 pt = hexBlock("00112233445566778899aabbccddeeff");
    EXPECT_EQ(Aes::fromKey128(key128).encryptReference(pt),
              hexBlock("69c4e0d86a7b0430d8cdb78070b4c55a"));
    EXPECT_EQ(Aes::fromKey256(key256).encryptReference(pt),
              hexBlock("8ea2b7ca516745bfeafc49904b496089"));
}

TEST(Aes, TTableMatchesReferenceOnRandomInputs)
{
    // The T-table fast path must agree with the byte-wise FIPS-197
    // rounds on random keys and plaintexts, for both key sizes.
    std::mt19937_64 rng(0xc0ffee);
    for (int trial = 0; trial < 256; ++trial) {
        const Aes aes = Aes::fromSeed(rng(), trial % 2 == 0
                                                 ? Aes::KeySize::k128
                                                 : Aes::KeySize::k256);
        const Block128 pt = makeBlock(rng(), rng());
        EXPECT_EQ(aes.encrypt(pt), aes.encryptReference(pt));
    }
}

TEST(Aes, RoundCounts)
{
    EXPECT_EQ(Aes::fromSeed(1, Aes::KeySize::k128).rounds(), 10);
    EXPECT_EQ(Aes::fromSeed(1, Aes::KeySize::k256).rounds(), 14);
}

TEST(Aes, DeterministicAndKeyDependent)
{
    const Aes a = Aes::fromSeed(42);
    const Aes b = Aes::fromSeed(42);
    const Aes c = Aes::fromSeed(43);
    const Block128 pt = makeBlock(1, 2);
    EXPECT_EQ(a.encrypt(pt), b.encrypt(pt));
    EXPECT_NE(a.encrypt(pt), c.encrypt(pt));
}

TEST(Aes, AvalancheOnPlaintextBit)
{
    const Aes aes = Aes::fromSeed(7);
    const Block128 base = aes.encrypt(makeBlock(0, 0));
    const Block128 flip = aes.encrypt(makeBlock(0, 1));
    int differing_bits = 0;
    for (std::size_t i = 0; i < 16; ++i)
        differing_bits += __builtin_popcount(base[i] ^ flip[i]);
    // Expect roughly half of the 128 bits to flip.
    EXPECT_GT(differing_bits, 40);
    EXPECT_LT(differing_bits, 88);
}

TEST(BlockHelpers, MakeSplitRoundTrip)
{
    const Block128 b = makeBlock(0x1122334455667788ULL,
                                 0x99aabbccddeeff00ULL);
    const auto [hi, lo] = splitBlock(b);
    EXPECT_EQ(hi, 0x1122334455667788ULL);
    EXPECT_EQ(lo, 0x99aabbccddeeff00ULL);
    EXPECT_EQ(b[0], 0x11);
    EXPECT_EQ(b[15], 0x00);
}

TEST(Clmul, KnownSmallProducts)
{
    // (x+1)(x+1) = x^2+1 in GF(2)[x]: 3*3 = 5.
    auto [lo, hi] = clmul64(3, 3);
    EXPECT_EQ(lo, 5u);
    EXPECT_EQ(hi, 0u);
    // x^63 * x = x^64 -> bit 0 of the high word.
    std::tie(lo, hi) = clmul64(1ULL << 63, 2);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 1u);
}

TEST(Clmul, WindowedMatchesBitwiseReference)
{
    // Edge cases the 4-bit windows must not mangle.
    const std::uint64_t edges[] = {0ULL, 1ULL, 0xfULL, 1ULL << 63,
                                   ~0ULL};
    for (std::uint64_t a : edges)
        for (std::uint64_t b : edges)
            EXPECT_EQ(clmul64(a, b), clmul64Reference(a, b))
                << "a=" << a << " b=" << b;
    std::mt19937_64 rng(0x5eed);
    for (int trial = 0; trial < 1000; ++trial) {
        const std::uint64_t a = rng(), b = rng();
        EXPECT_EQ(clmul64(a, b), clmul64Reference(a, b))
            << "a=" << a << " b=" << b;
    }
}

TEST(Clmul, CommutativeAndDistributive)
{
    const Block128 a = makeBlock(0x0123456789abcdefULL, 0xfedcba9876543210ULL);
    const Block128 b = makeBlock(0xdeadbeefcafebabeULL, 0x0f1e2d3c4b5a6978ULL);
    const Block128 c = makeBlock(7, 13);
    EXPECT_EQ(clmul128(a, b), clmul128(b, a));
    // a*(b^c) == a*b ^ a*c.
    const U256 lhs = clmul128(a, b ^ c);
    const U256 ab = clmul128(a, b);
    const U256 ac = clmul128(a, c);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(lhs.limb[static_cast<std::size_t>(i)],
                  ab.limb[static_cast<std::size_t>(i)] ^
                      ac.limb[static_cast<std::size_t>(i)]);
}

TEST(Clmul, MultiplyByOneIsIdentity)
{
    const Block128 a = makeBlock(0x123456789abcdef0ULL, 0x0fedcba987654321ULL);
    const Block128 one = makeBlock(0, 1);
    const U256 p = clmul128(a, one);
    const auto [hi, lo] = splitBlock(a);
    EXPECT_EQ(p.limb[0], lo);
    EXPECT_EQ(p.limb[1], hi);
    EXPECT_EQ(p.limb[2], 0u);
    EXPECT_EQ(p.limb[3], 0u);
}

TEST(Clmul, TruncMiddleKeepsMiddleBits)
{
    // a = 1, b = x^64: product = x^64 -> middle window bit 0.
    const Block128 one = makeBlock(0, 1);
    const Block128 x64 = makeBlock(1, 0);
    const Block128 mid = truncmulMiddle(one, x64);
    EXPECT_EQ(mid, makeBlock(0, 1));
}

TEST(Gf128, IdentityAndCommutativity)
{
    const Block128 one = makeBlock(0, 1);
    const Block128 a = makeBlock(0xa5a5a5a5a5a5a5a5ULL, 0x5a5a5a5a5a5a5a5aULL);
    const Block128 b = makeBlock(3, 17);
    EXPECT_EQ(gf128Mul(a, one), a);
    EXPECT_EQ(gf128Mul(a, b), gf128Mul(b, a));
}

TEST(Gf128, ReductionMatchesPolynomial)
{
    // x^127 * x = x^128 = x^7 + x^2 + x + 1 (mod the GCM polynomial).
    const Block128 x127 = makeBlock(1ULL << 63, 0);
    const Block128 x = makeBlock(0, 2);
    EXPECT_EQ(gf128Mul(x127, x), makeBlock(0, 0x87));
}

TEST(Gf128, DistributesOverXor)
{
    const Block128 a = makeBlock(0x1111, 0x2222);
    const Block128 b = makeBlock(0x3333, 0x4444);
    const Block128 k = makeBlock(0xdeadbeef, 0xcafebabe);
    EXPECT_EQ(gf128Mul(a ^ b, k), gf128Mul(a, k) ^ gf128Mul(b, k));
}

class OtpEngines : public ::testing::Test
{
  protected:
    Aes enc_ = Aes::fromSeed(100);
    Aes mac_ = Aes::fromSeed(200);
    BaselineOtpEngine baseline_{enc_, mac_};
    RmccOtpEngine rmcc_{enc_, mac_};
};

TEST_F(OtpEngines, BaselineCounterChangesOtp)
{
    const auto o1 = baseline_.encryptionOtp(0x1000, 0, 5);
    const auto o2 = baseline_.encryptionOtp(0x1000, 0, 6);
    EXPECT_NE(o1, o2);
}

TEST_F(OtpEngines, BaselineWordIndexChangesOtp)
{
    EXPECT_NE(baseline_.encryptionOtp(0x1000, 0, 5),
              baseline_.encryptionOtp(0x1000, 1, 5));
}

TEST_F(OtpEngines, EncryptionAndMacOtpsDiffer)
{
    EXPECT_NE(baseline_.encryptionOtp(0x1000, 0, 5),
              baseline_.macOtp(0x1000, 5));
    EXPECT_NE(rmcc_.encryptionOtp(0x1000, 0, 5), rmcc_.macOtp(0x1000, 5));
}

TEST_F(OtpEngines, RmccSwapAddressCounterDiffers)
{
    // Type-A repeat elimination (Sec IV-D1): OTP(addr=x, ctr=y) must
    // differ from OTP(addr=y, ctr=x) thanks to the zero padding.
    const auto o1 = rmcc_.encryptionOtp(77, 0, 99);
    const auto o2 = rmcc_.encryptionOtp(99, 0, 77);
    EXPECT_NE(o1, o2);
}

TEST_F(OtpEngines, RmccCombineMatchesFullComputation)
{
    const auto ctr_only = rmcc_.counterOnlyEnc(12345);
    const auto addr_only = rmcc_.addressOnlyEnc(0xabcd00, 2);
    EXPECT_EQ(RmccOtpEngine::combine(ctr_only, addr_only),
              rmcc_.encryptionOtp(0xabcd00, 2, 12345));
}

TEST_F(OtpEngines, RmccMemoizedValueReusableAcrossAddresses)
{
    // The same counter-only result combines with different address-only
    // results to give distinct, correct OTPs: the memoization premise.
    const auto ctr_only = rmcc_.counterOnlyEnc(777);
    const auto a = RmccOtpEngine::combine(ctr_only,
                                          rmcc_.addressOnlyEnc(0x1000, 0));
    const auto b = RmccOtpEngine::combine(ctr_only,
                                          rmcc_.addressOnlyEnc(0x2000, 0));
    EXPECT_NE(a, b);
    EXPECT_EQ(a, rmcc_.encryptionOtp(0x1000, 0, 777));
    EXPECT_EQ(b, rmcc_.encryptionOtp(0x2000, 0, 777));
}

TEST_F(OtpEngines, BlockOtpsMatchPerWordOtps)
{
    // The per-block fast path (RMCC: one counter-only AES per block)
    // must yield exactly the per-word OTPs.
    for (const OtpEngine *eng :
         {static_cast<const OtpEngine *>(&baseline_),
          static_cast<const OtpEngine *>(&rmcc_)}) {
        const auto pads = eng->encryptionOtps(0xbeef00, 321);
        for (unsigned w = 0; w < kWordsPerBlock; ++w)
            EXPECT_EQ(pads[w], eng->encryptionOtp(0xbeef00, w, 321));
    }
}

TEST_F(OtpEngines, CodecRoundTripsBothEngines)
{
    DataBlock block;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        block[w] = makeBlock(0x1111111111111111ULL * (w + 1), w);
    for (const OtpEngine *eng :
         {static_cast<const OtpEngine *>(&baseline_),
          static_cast<const OtpEngine *>(&rmcc_)}) {
        BlockCodec codec(*eng);
        const DataBlock ct = codec.encode(block, 0x40, 9);
        EXPECT_NE(ct, block);
        EXPECT_EQ(codec.encode(ct, 0x40, 9), block);
    }
}

TEST_F(OtpEngines, CiphertextDiffersPerCounter)
{
    DataBlock block{};
    BlockCodec codec(rmcc_);
    const DataBlock c1 = codec.encode(block, 0x40, 1);
    const DataBlock c2 = codec.encode(block, 0x40, 2);
    EXPECT_NE(c1, c2);
}

TEST(Mac, DetectsSingleBitTampering)
{
    const MacEngine mac(555);
    const RmccOtpEngine otp(Aes::fromSeed(1), Aes::fromSeed(2));
    DataBlock block;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        block[w] = makeBlock(w * 3 + 1, w * 7 + 5);
    const Block128 pad = otp.macOtp(0x80, 4);
    const std::uint64_t good = mac.mac(block, pad);
    // Flip every byte position once across the block.
    for (unsigned w = 0; w < kWordsPerBlock; ++w) {
        for (std::size_t byte = 0; byte < 16; byte += 5) {
            DataBlock tampered = block;
            tampered[w][byte] ^= 1;
            EXPECT_NE(mac.mac(tampered, pad), good)
                << "undetected flip at word " << w << " byte " << byte;
        }
    }
}

TEST(Mac, DetectsCounterReplay)
{
    const MacEngine mac(556);
    const RmccOtpEngine otp(Aes::fromSeed(3), Aes::fromSeed(4));
    DataBlock block{};
    const std::uint64_t m1 = mac.mac(block, otp.macOtp(0x80, 10));
    const std::uint64_t m2 = mac.mac(block, otp.macOtp(0x80, 11));
    EXPECT_NE(m1, m2);
}

TEST(Mac, DetectsRelocation)
{
    const MacEngine mac(557);
    const RmccOtpEngine otp(Aes::fromSeed(5), Aes::fromSeed(6));
    DataBlock block{};
    EXPECT_NE(mac.mac(block, otp.macOtp(0x100, 3)),
              mac.mac(block, otp.macOtp(0x140, 3)));
}

TEST(Mac, Is56Bits)
{
    const MacEngine mac(558);
    DataBlock block{};
    for (int i = 0; i < 50; ++i) {
        const Block128 pad = makeBlock(static_cast<std::uint64_t>(i), 0);
        EXPECT_LE(mac.mac(block, pad), kMacMask);
    }
}

TEST(Mac, ExplicitKeysReproducible)
{
    std::array<Block128, kWordsPerBlock> keys;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        keys[w] = makeBlock(w + 1, w + 2);
    const MacEngine a(keys), b(keys);
    DataBlock block;
    for (unsigned w = 0; w < kWordsPerBlock; ++w)
        block[w] = makeBlock(w, ~w);
    EXPECT_EQ(a.dotProduct(block), b.dotProduct(block));
}

/** Property sweep: OTP uniqueness over (address, word, counter) grids. */
class OtpUniqueness : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(OtpUniqueness, NoCollisionsInSmallGrid)
{
    const RmccOtpEngine otp(Aes::fromSeed(GetParam()),
                            Aes::fromSeed(GetParam() + 1));
    std::vector<Block128> otps;
    for (std::uint64_t addr = 0; addr < 4; ++addr)
        for (unsigned w = 0; w < 4; ++w)
            for (std::uint64_t ctr = 0; ctr < 4; ++ctr)
                otps.push_back(
                    otp.encryptionOtp(addr * 64, w, ctr));
    for (std::size_t i = 0; i < otps.size(); ++i)
        for (std::size_t j = i + 1; j < otps.size(); ++j)
            EXPECT_NE(otps[i], otps[j]) << "collision " << i << "," << j;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OtpUniqueness,
                         ::testing::Values(1, 17, 3141, 65537));

// ---------------------------------------------------------------------------
// Runtime crypto dispatch (RMCC_CRYPTO_IMPL): the hardware AES-NI /
// PCLMULQDQ kernels and the software paths must be interchangeable
// bit-for-bit.  Tests force both directions in-process via setenv +
// reresolveCryptoDispatch() and restore the prior routing on exit.

namespace
{

/** Scoped forced dispatch; restores the previous env + routing. */
class ScopedImpl
{
  public:
    explicit ScopedImpl(const char *impl)
    {
        const char *prev = std::getenv("RMCC_CRYPTO_IMPL");
        had_prev_ = prev != nullptr;
        if (had_prev_)
            prev_ = prev;
        setenv("RMCC_CRYPTO_IMPL", impl, 1);
        rmcc::crypto::reresolveCryptoDispatch();
    }

    ~ScopedImpl()
    {
        if (had_prev_)
            setenv("RMCC_CRYPTO_IMPL", prev_.c_str(), 1);
        else
            unsetenv("RMCC_CRYPTO_IMPL");
        rmcc::crypto::reresolveCryptoDispatch();
    }

  private:
    bool had_prev_ = false;
    std::string prev_;
};

bool
hwAvailable()
{
    const auto cpu = rmcc::crypto::detectCpuFeatures();
    return cpu.aesni && cpu.pclmul;
}

} // namespace

TEST(Dispatch, ForcedSwNeverUsesHardware)
{
    ScopedImpl sw("sw");
    EXPECT_FALSE(rmcc::crypto::hwAesActive());
    EXPECT_FALSE(rmcc::crypto::hwClmulActive());
}

TEST(Dispatch, ForcedHwPassesNistVectors)
{
    if (!hwAvailable())
        GTEST_SKIP() << "CPU lacks AES-NI/PCLMULQDQ";
    ScopedImpl hw("hw");
    ASSERT_TRUE(rmcc::crypto::hwAesActive());
    ASSERT_TRUE(rmcc::crypto::hwClmulActive());
    // FIPS-197 Appendix C.1 / C.3 through the AES-NI kernel.
    std::array<std::uint8_t, 16> key128;
    for (int i = 0; i < 16; ++i)
        key128[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    std::array<std::uint8_t, 32> key256;
    for (int i = 0; i < 32; ++i)
        key256[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    const Block128 pt = hexBlock("00112233445566778899aabbccddeeff");
    EXPECT_EQ(Aes::fromKey128(key128).encrypt(pt),
              hexBlock("69c4e0d86a7b0430d8cdb78070b4c55a"));
    EXPECT_EQ(Aes::fromKey256(key256).encrypt(pt),
              hexBlock("8ea2b7ca516745bfeafc49904b496089"));
}

TEST(Dispatch, HwAndSwAgreeOnRandomBlocks)
{
    if (!hwAvailable())
        GTEST_SKIP() << "CPU lacks AES-NI/PCLMULQDQ";
    // 10k random (key, plaintext) pairs per primitive, each evaluated
    // with the dispatch forced to both directions.
    std::mt19937_64 rng(0xd15c0);
    for (int trial = 0; trial < 10000; ++trial) {
        const std::uint64_t seed = rng();
        const Aes aes = Aes::fromSeed(seed, trial % 2 == 0
                                                ? Aes::KeySize::k128
                                                : Aes::KeySize::k256);
        const Block128 pt = makeBlock(rng(), rng());
        const Block128 a = makeBlock(rng(), rng());
        const Block128 b = makeBlock(rng(), rng());
        Block128 ct_hw, ct_sw;
        U256 p_hw, p_sw;
        {
            ScopedImpl hw("hw");
            ct_hw = aes.encrypt(pt);
            p_hw = clmul128(a, b);
        }
        {
            ScopedImpl sw("sw");
            ct_sw = aes.encrypt(pt);
            p_sw = clmul128(a, b);
        }
        ASSERT_EQ(ct_hw, ct_sw) << "AES mismatch at trial " << trial;
        ASSERT_EQ(p_hw.limb, p_sw.limb)
            << "CLMUL mismatch at trial " << trial;
    }
}

TEST(Dispatch, ForcedHwThrowsWithoutCpuSupport)
{
    if (hwAvailable())
        GTEST_SKIP() << "CPU supports the hardware kernels";
    setenv("RMCC_CRYPTO_IMPL", "hw", 1);
    EXPECT_THROW(rmcc::crypto::reresolveCryptoDispatch(),
                 std::runtime_error);
    unsetenv("RMCC_CRYPTO_IMPL");
    rmcc::crypto::reresolveCryptoDispatch();
}

TEST(Dispatch, RejectsUnknownImplValue)
{
    setenv("RMCC_CRYPTO_IMPL", "fpga", 1);
    EXPECT_THROW(rmcc::crypto::reresolveCryptoDispatch(),
                 std::runtime_error);
    unsetenv("RMCC_CRYPTO_IMPL");
    rmcc::crypto::reresolveCryptoDispatch();
}

// ---------------------------------------------------------------------------
// Batched kernels (RMCC_CRYPTO_BATCH): the pipelined multi-block AES-NI /
// PCLMULQDQ paths must be bit-identical to the scalar kernels for every
// length, including non-multiple-of-batch tails, in both directions.

namespace
{

/** Scoped forced batch policy; restores the previous env + routing. */
class ScopedBatch
{
  public:
    explicit ScopedBatch(const char *batch)
    {
        const char *prev = std::getenv("RMCC_CRYPTO_BATCH");
        had_prev_ = prev != nullptr;
        if (had_prev_)
            prev_ = prev;
        setenv("RMCC_CRYPTO_BATCH", batch, 1);
        rmcc::crypto::reresolveCryptoDispatch();
    }

    ~ScopedBatch()
    {
        if (had_prev_)
            setenv("RMCC_CRYPTO_BATCH", prev_.c_str(), 1);
        else
            unsetenv("RMCC_CRYPTO_BATCH");
        rmcc::crypto::reresolveCryptoDispatch();
    }

  private:
    bool had_prev_ = false;
    std::string prev_;
};

} // namespace

TEST(Batch, ForcedOffUsesScalarLoops)
{
    ScopedBatch off("off");
    EXPECT_FALSE(rmcc::crypto::batchAesActive());
    EXPECT_FALSE(rmcc::crypto::batchClmulActive());
}

TEST(Batch, AutoFollowsHardwareRouting)
{
    ScopedBatch auto_batch("auto");
    {
        ScopedImpl sw("sw");
        EXPECT_FALSE(rmcc::crypto::batchAesActive());
        EXPECT_FALSE(rmcc::crypto::batchClmulActive());
    }
    if (hwAvailable()) {
        ScopedImpl hw("hw");
        EXPECT_TRUE(rmcc::crypto::batchAesActive());
        EXPECT_TRUE(rmcc::crypto::batchClmulActive());
    }
}

TEST(Batch, OnRequiresHardwareKernels)
{
    // batch=on with the software kernels forced can never be satisfied,
    // whatever the CPU supports.
    ScopedImpl sw("sw");
    setenv("RMCC_CRYPTO_BATCH", "on", 1);
    EXPECT_THROW(rmcc::crypto::reresolveCryptoDispatch(),
                 std::runtime_error);
    unsetenv("RMCC_CRYPTO_BATCH");
    rmcc::crypto::reresolveCryptoDispatch();
}

TEST(Batch, RejectsUnknownBatchValue)
{
    setenv("RMCC_CRYPTO_BATCH", "turbo", 1);
    EXPECT_THROW(rmcc::crypto::reresolveCryptoDispatch(),
                 std::runtime_error);
    unsetenv("RMCC_CRYPTO_BATCH");
    rmcc::crypto::reresolveCryptoDispatch();
}

TEST(Batch, PipelinedKernelPassesNistVectors)
{
    if (!hwAvailable())
        GTEST_SKIP() << "CPU lacks AES-NI/PCLMULQDQ";
    ScopedImpl hw("hw");
    ScopedBatch on("on");
    ASSERT_TRUE(rmcc::crypto::batchAesActive());
    // FIPS-197 Appendix C.1 replicated across a full 8-stream group plus
    // a 4-stream group plus scalar tail (n = 13): every lane must produce
    // the reference ciphertext.
    std::array<std::uint8_t, 16> key;
    for (int i = 0; i < 16; ++i)
        key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    const Aes aes = Aes::fromKey128(key);
    const Block128 pt = hexBlock("00112233445566778899aabbccddeeff");
    const Block128 expect = hexBlock("69c4e0d86a7b0430d8cdb78070b4c55a");
    std::array<Block128, 13> in;
    in.fill(pt);
    std::array<Block128, 13> out;
    aes.encryptBlocks(in.data(), out.data(), in.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], expect) << "lane " << i;
    // In-place (in == out) aliasing contract.
    aes.encryptBlocks(in.data(), in.data(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_EQ(in[i], expect) << "aliased lane " << i;
}

TEST(Batch, BatchedMatchesScalarOnRandomBlocks)
{
    // >= 10k random blocks through encryptBlocks/clmul128Batch at lengths
    // that exercise the 8-stream groups, the 4-stream group, and every
    // scalar tail (n = 1..17), compared against the per-block kernels in
    // both dispatch directions.
    std::mt19937_64 rng(0xba7c4);
    const std::vector<const char *> impls =
        hwAvailable() ? std::vector<const char *>{"hw", "sw"}
                      : std::vector<const char *>{"sw"};
    for (const char *impl : impls) {
        ScopedImpl scoped(impl);
        std::size_t blocks_checked = 0;
        for (int round = 0; blocks_checked < 10000; ++round) {
            const std::size_t n =
                static_cast<std::size_t>(round % 17) + 1;
            const Aes aes = Aes::fromSeed(rng(), round % 2 == 0
                                                     ? Aes::KeySize::k128
                                                     : Aes::KeySize::k256);
            std::vector<Block128> pts(n), a(n), b(n);
            for (std::size_t i = 0; i < n; ++i) {
                pts[i] = makeBlock(rng(), rng());
                a[i] = makeBlock(rng(), rng());
                b[i] = makeBlock(rng(), rng());
            }
            std::vector<Block128> ct_batch(n), mid_batch(n);
            std::vector<U256> p_batch(n);
            {
                // batch=on is rejected when the sw kernels are forced, so
                // the sw leg runs under auto (scalar loops either way).
                const bool hw_leg = impl[0] == 'h';
                ScopedBatch on(hw_leg && hwAvailable() ? "on" : "auto");
                aes.encryptBlocks(pts.data(), ct_batch.data(), n);
                clmul128Batch(a.data(), b.data(), p_batch.data(), n);
                truncmulMiddleBatch(a.data(), b.data(), mid_batch.data(),
                                    n);
            }
            ScopedBatch off("off");
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(ct_batch[i], aes.encrypt(pts[i]))
                    << impl << " AES n=" << n << " lane " << i;
                ASSERT_EQ(p_batch[i].limb, clmul128(a[i], b[i]).limb)
                    << impl << " CLMUL n=" << n << " lane " << i;
                ASSERT_EQ(mid_batch[i], truncmulMiddle(a[i], b[i]))
                    << impl << " truncmul n=" << n << " lane " << i;
            }
            blocks_checked += n;
        }
    }
}

TEST(Batch, Gf128ReduceMatchesGf128Mul)
{
    std::mt19937_64 rng(0x6f128);
    for (int trial = 0; trial < 2000; ++trial) {
        const Block128 a = makeBlock(rng(), rng());
        const Block128 b = makeBlock(rng(), rng());
        EXPECT_EQ(gf128Mul(a, b), gf128Reduce(clmul128(a, b)));
    }
}

TEST(Batch, EngineBatchApisMatchPerCallPaths)
{
    // encryptionOtps and macOtps of both engines must equal their
    // per-word / per-call counterparts under every routing combination.
    std::mt19937_64 rng(0x07b5);
    const std::vector<const char *> impls =
        hwAvailable() ? std::vector<const char *>{"hw", "sw"}
                      : std::vector<const char *>{"sw"};
    for (const char *impl : impls) {
        ScopedImpl scoped(impl);
        for (const char *batch : {"auto", "off"}) {
            ScopedBatch scoped_batch(batch);
            const BaselineOtpEngine baseline(Aes::fromSeed(11),
                                             Aes::fromSeed(22));
            const RmccOtpEngine rmcc_otp(Aes::fromSeed(33),
                                         Aes::fromSeed(44));
            const std::vector<const OtpEngine *> engines = {&baseline,
                                                            &rmcc_otp};
            for (const OtpEngine *eng : engines) {
                for (int trial = 0; trial < 50; ++trial) {
                    const std::uint64_t address = (rng() % 4096) * 64;
                    const std::uint64_t counter = rng() % 100000;
                    const auto pads =
                        eng->encryptionOtps(address, counter);
                    for (unsigned w = 0; w < kWordsPerBlock; ++w)
                        ASSERT_EQ(pads[w],
                                  eng->encryptionOtp(address, w, counter))
                            << impl << "/" << batch << " word " << w;
                }
                // macOtps over lengths spanning chunk boundaries.
                for (const std::size_t n : {1u, 3u, 7u, 8u, 9u, 20u}) {
                    std::vector<std::uint64_t> addrs(n), ctrs(n);
                    for (std::size_t i = 0; i < n; ++i) {
                        addrs[i] = (rng() % 4096) * 64;
                        ctrs[i] = rng() % 100000;
                    }
                    std::vector<Block128> otps(n);
                    eng->macOtps(addrs.data(), ctrs.data(), otps.data(),
                                 n);
                    for (std::size_t i = 0; i < n; ++i)
                        ASSERT_EQ(otps[i], eng->macOtp(addrs[i], ctrs[i]))
                            << impl << "/" << batch << " n=" << n
                            << " lane " << i;
                }
            }
        }
    }
}
