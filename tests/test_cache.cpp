/**
 * @file
 * Cache tests: set-associative behaviour (hits, LRU order, writebacks),
 * the three-level hierarchy's victim cascade, and the TLB.
 */
#include <gtest/gtest.h>

#include "cache/hierarchy.hpp"
#include "cache/set_assoc.hpp"
#include "cache/tlb.hpp"
#include "crypto/dispatch.hpp"

using namespace rmcc::cache;
using rmcc::addr::Addr;

namespace
{

/** Scoped SIMD-probe override; restores the CPU-derived default. */
struct ScopedSimdProbes
{
    explicit ScopedSimdProbes(bool on)
    {
        SetAssocCache::setSimdProbes(on);
    }
    ~ScopedSimdProbes()
    {
        SetAssocCache::setSimdProbes(
            rmcc::crypto::detectCpuFeatures().avx2);
    }
};

} // namespace

TEST(SetAssoc, HitAfterMiss)
{
    SetAssocCache c("t", 4096, 4);
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x13f, false).hit); // same line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssoc, LruEvictionOrder)
{
    // 2 sets x 2 ways, 64 B lines: lines 0,2,4 map to set 0.
    SetAssocCache c("t", 256, 2);
    c.access(0 * 64, false);
    c.access(2 * 64, false);
    c.access(0 * 64, false); // refresh 0: LRU victim is 2
    const AccessResult r = c.access(4 * 64, false);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim_addr, 2u * 64);
    EXPECT_TRUE(c.probe(0 * 64));
    EXPECT_FALSE(c.probe(2 * 64));
}

TEST(SetAssoc, DirtyEvictionIsWriteback)
{
    SetAssocCache c("t", 256, 2);
    c.access(0 * 64, true);
    c.access(2 * 64, false);
    const AccessResult r = c.access(4 * 64, false); // evicts dirty 0
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victim_addr, 0u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(SetAssoc, CleanEvictionIsNotWriteback)
{
    SetAssocCache c("t", 256, 2);
    c.access(0 * 64, false);
    c.access(2 * 64, false);
    EXPECT_FALSE(c.access(4 * 64, false).writeback);
}

TEST(SetAssoc, FillAndInvalidate)
{
    SetAssocCache c("t", 4096, 4);
    c.fill(0x200, true);
    EXPECT_TRUE(c.probe(0x200));
    EXPECT_TRUE(c.invalidate(0x200)); // was dirty
    EXPECT_FALSE(c.probe(0x200));
    EXPECT_FALSE(c.invalidate(0x200));
}

TEST(SetAssoc, TouchDirtyMarksResidentLine)
{
    SetAssocCache c("t", 256, 2);
    c.access(0, false);
    c.touchDirty(0);
    c.access(2 * 64, false);
    EXPECT_TRUE(c.access(4 * 64, false).writeback);
}

TEST(SetAssoc, FifoDiffersFromLru)
{
    SetAssocCache lru("l", 256, 2, 64, ReplPolicy::LRU);
    SetAssocCache fifo("f", 256, 2, 64, ReplPolicy::FIFO);
    for (SetAssocCache *c : {&lru, &fifo}) {
        c->access(0 * 64, false);
        c->access(2 * 64, false);
        c->access(0 * 64, false); // refresh 0 (no-op under FIFO)
    }
    EXPECT_EQ(lru.access(4 * 64, false).victim_addr, 2u * 64);
    EXPECT_EQ(fifo.access(4 * 64, false).victim_addr, 0u);
}

/** Property sweep over cache geometries: conservation of accounting. */
class CacheGeometry
    : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>>
{
};

TEST_P(CacheGeometry, AccountingConsistent)
{
    const auto [size, assoc] = GetParam();
    SetAssocCache c("t", size, assoc);
    std::uint64_t x = 88172645463325252ULL;
    for (int i = 0; i < 20000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        c.access((x % (size * 8)) & ~63ULL, (x & 1) != 0);
    }
    EXPECT_EQ(c.hits() + c.misses(), 20000u);
    EXPECT_LE(c.writebacks(), c.misses());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::pair<std::uint64_t, unsigned>{4096, 1},
                      std::pair<std::uint64_t, unsigned>{8192, 4},
                      std::pair<std::uint64_t, unsigned>{32768, 8},
                      std::pair<std::uint64_t, unsigned>{131072, 32}));

TEST(SetAssoc, SimdProbesMatchScalarProbes)
{
    // The AVX2 tag-compare and LRU-min scan must pick the same ways as
    // the scalar loops for every access of the same random sequence —
    // hits, victims, writebacks, and eviction addresses all agree.
    // Sweep geometries where SIMD engages (assoc % 4 == 0) and one where
    // it cannot (assoc 2, scalar both times).
    for (const auto &[size, assoc] :
         {std::pair<std::uint64_t, unsigned>{8192, 4},
          std::pair<std::uint64_t, unsigned>{32768, 8},
          std::pair<std::uint64_t, unsigned>{131072, 16},
          std::pair<std::uint64_t, unsigned>{4096, 2}}) {
        SetAssocCache simd("s", size, assoc);
        SetAssocCache scalar("c", size, assoc);
        std::uint64_t x = 0x9e3779b97f4a7c15ULL;
        for (int i = 0; i < 30000; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            const Addr a = (x % (size * 8)) & ~63ULL;
            const bool write = (x & 2) != 0;
            AccessResult rs, rc;
            {
                ScopedSimdProbes on(true);
                rs = simd.access(a, write);
            }
            {
                ScopedSimdProbes off(false);
                rc = scalar.access(a, write);
            }
            ASSERT_EQ(rs.hit, rc.hit) << "assoc=" << assoc << " i=" << i;
            ASSERT_EQ(rs.evicted, rc.evicted);
            ASSERT_EQ(rs.writeback, rc.writeback);
            ASSERT_EQ(rs.victim_addr, rc.victim_addr);
        }
        EXPECT_EQ(simd.hits(), scalar.hits()) << "assoc=" << assoc;
        EXPECT_EQ(simd.misses(), scalar.misses());
        EXPECT_EQ(simd.writebacks(), scalar.writebacks());
    }
}

TEST(Hierarchy, HitLevelsAndLatencies)
{
    Hierarchy h({1024, 2, 2.0}, {4096, 4, 4.0}, {16384, 8, 17.0});
    const HierarchyResult m = h.access(0, false);
    EXPECT_EQ(m.hit_level, 4u);
    EXPECT_TRUE(m.llc_miss);
    const HierarchyResult l1 = h.access(0, false);
    EXPECT_EQ(l1.hit_level, 1u);
    EXPECT_DOUBLE_EQ(l1.hit_latency_ns, 2.0);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    Hierarchy h({128, 1, 2.0}, {4096, 4, 4.0}, {16384, 8, 17.0});
    h.access(0, false);        // miss everywhere, fills all levels
    h.access(2 * 64, false);   // same L1 set (2 sets of 1 way): evicts 0
    h.access(4 * 64, false);
    const HierarchyResult r = h.access(0, false);
    EXPECT_EQ(r.hit_level, 2u);
    EXPECT_DOUBLE_EQ(r.hit_latency_ns, 6.0);
}

TEST(Hierarchy, DirtyDataEventuallyWritesBackToMemory)
{
    // Tiny hierarchy: writes must surface as memory writebacks once
    // capacity is exceeded everywhere.
    Hierarchy h({128, 1, 2.0}, {256, 1, 4.0}, {512, 1, 17.0});
    int wbs = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
        const HierarchyResult r = h.access(i * 64, true);
        wbs += r.memory_writeback.has_value();
    }
    EXPECT_GT(wbs, 0);
}

TEST(Tlb, HitsAndMisses)
{
    Tlb tlb(16, 4, 4096);
    EXPECT_FALSE(tlb.access(0));
    EXPECT_TRUE(tlb.access(100));    // same page
    EXPECT_FALSE(tlb.access(4096)); // next page
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, HugePagesCoverMore)
{
    Tlb small(64, 4, 4096);
    Tlb huge(64, 4, 2 * 1024 * 1024);
    std::uint64_t small_misses = 0, huge_misses = 0;
    for (std::uint64_t a = 0; a < (16ULL << 20); a += 8192) {
        small_misses += !small.access(a);
        huge_misses += !huge.access(a);
    }
    EXPECT_GT(small_misses, 10 * huge_misses);
}
