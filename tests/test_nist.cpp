/**
 * @file
 * NIST SP 800-22 battery tests: AES output must pass, pathological
 * streams must fail, and igamc must match known values.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "crypto/aes.hpp"
#include "crypto/otp.hpp"
#include "crypto/nist.hpp"

using namespace rmcc::crypto;

namespace
{

BitStream
aesStream(std::uint64_t seed, std::size_t blocks)
{
    const Aes aes = Aes::fromSeed(seed);
    BitStream bits;
    for (std::size_t i = 0; i < blocks; ++i) {
        const Block128 ct = aes.encrypt(makeBlock(0, i));
        bits.appendBytes(ct.data(), ct.size());
    }
    return bits;
}

BitStream
constantStream(std::uint8_t byte, std::size_t n)
{
    BitStream bits;
    for (std::size_t i = 0; i < n; ++i)
        bits.appendByte(byte);
    return bits;
}

} // namespace

TEST(BitStreamT, AppendAndIndex)
{
    BitStream bits;
    bits.appendByte(0b10110001);
    EXPECT_EQ(bits.size(), 8u);
    EXPECT_EQ(bits.bit(0), 1);
    EXPECT_EQ(bits.bit(1), 0);
    EXPECT_EQ(bits.bit(4), 1);
    EXPECT_EQ(bits.bit(7), 1);
}

TEST(Igamc, KnownValues)
{
    // Q(1, x) = exp(-x).
    EXPECT_NEAR(igamc(1.0, 1.0), std::exp(-1.0), 1e-10);
    EXPECT_NEAR(igamc(1.0, 2.5), std::exp(-2.5), 1e-10);
    // Q(0.5, x) = erfc(sqrt(x)).
    EXPECT_NEAR(igamc(0.5, 4.0), std::erfc(2.0), 1e-9);
    // Degenerate arguments.
    EXPECT_DOUBLE_EQ(igamc(1.0, 0.0), 1.0);
}

TEST(Nist, AesPassesBattery)
{
    const BitStream bits = aesStream(7, 2048); // 32 KB of AES output
    for (const NistResult &r : runNistBattery(bits))
        EXPECT_TRUE(r.pass) << r.name << " p=" << r.p_value;
}

TEST(Nist, AllZerosFails)
{
    const BitStream bits = constantStream(0x00, 4096);
    const NistResult r = frequencyTest(bits);
    EXPECT_FALSE(r.pass);
}

TEST(Nist, AlternatingBitsFailsRunsOrSerial)
{
    // 0101... has perfect balance but pathological run structure.
    const BitStream bits = constantStream(0xAA, 4096);
    EXPECT_TRUE(frequencyTest(bits).pass);
    const bool caught = !runsTest(bits).pass || !serialTest(bits).pass ||
                        !approximateEntropyTest(bits).pass;
    EXPECT_TRUE(caught);
}

TEST(Nist, BiasedStreamFailsFrequency)
{
    // Bytes with 6 of 8 bits set.
    const BitStream bits = constantStream(0xFC, 4096);
    EXPECT_FALSE(frequencyTest(bits).pass);
}

TEST(Nist, LongestRunDetectsClusters)
{
    // 64 one-bits then 64 zero-bits per 128-bit block: longest run is
    // always >= 9 category.
    BitStream bits;
    for (int b = 0; b < 512; ++b) {
        for (int i = 0; i < 8; ++i)
            bits.appendByte(0xff);
        for (int i = 0; i < 8; ++i)
            bits.appendByte(0x00);
    }
    EXPECT_FALSE(longestRunTest(bits).pass);
}

/** RMCC's combined OTPs must pass NIST at the same rate as raw AES. */
TEST(Nist, RmccOtpStreamPasses)
{
    const Aes enc = Aes::fromSeed(11), mac = Aes::fromSeed(13);
    RmccOtpEngine otp(enc, mac);
    BitStream bits;
    for (std::uint64_t i = 0; i < 2048; ++i) {
        const Block128 pad =
            otp.encryptionOtp(0x1000 + 64 * (i % 64), i % 4, 100 + i / 4);
        bits.appendBytes(pad.data(), pad.size());
    }
    for (const NistResult &r : runNistBattery(bits))
        EXPECT_TRUE(r.pass) << r.name << " p=" << r.p_value;
}

/** Parameterized: different AES seeds all pass (stability of the tests). */
class NistSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(NistSeeds, AesPasses)
{
    const BitStream bits = aesStream(GetParam(), 1024);
    for (const NistResult &r : runNistBattery(bits))
        EXPECT_TRUE(r.pass) << r.name << " p=" << r.p_value;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NistSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
