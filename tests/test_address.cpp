/**
 * @file
 * Address-space tests: block math, memory layout (counter regions per
 * level), and virtual-to-physical page mapping in both regimes.
 */
#include <gtest/gtest.h>

#include <set>

#include "address/layout.hpp"
#include "address/page_mapper.hpp"

using namespace rmcc::addr;

TEST(Types, BlockMath)
{
    EXPECT_EQ(blockOf(0), 0u);
    EXPECT_EQ(blockOf(63), 0u);
    EXPECT_EQ(blockOf(64), 1u);
    EXPECT_EQ(blockBase(3), 192u);
    EXPECT_EQ(fromNs(15.0), 15000u);
    EXPECT_DOUBLE_EQ(toNs(2500), 2.5);
}

TEST(Layout, LevelSizesMorphableArity)
{
    // 1 GB of data, 128-coverage: L0 = 2^24/128 blocks, etc.
    const std::uint64_t data_blocks = (1ULL << 30) / kBlockSize;
    MemoryLayout layout(1ULL << 30, 128, 128);
    EXPECT_EQ(layout.dataBlocks(), data_blocks);
    EXPECT_EQ(layout.levelBlocks(0), data_blocks / 128);
    EXPECT_EQ(layout.levelBlocks(1), data_blocks / 128 / 128);
    EXPECT_EQ(layout.levelBlocks(2), 8u); // on-chip root covers these
    EXPECT_EQ(layout.levels(), 3u);
}

TEST(Layout, PaperScale128GBHasFourLevels)
{
    // 128 GB protected data under Morphable: 4 in-memory tree levels
    // (L0..L3), as Sec V states.
    MemoryLayout layout(128ULL << 30, 128, 128);
    EXPECT_EQ(layout.levels(), 4u);
}

TEST(Layout, CounterRegionsDisjointAndOrdered)
{
    MemoryLayout layout(16ULL << 20, 128, 128);
    const Addr l0 = layout.counterBlockAddr(0, 0);
    EXPECT_EQ(l0, layout.dataBlocks() * kBlockSize);
    const Addr l0_last =
        layout.counterBlockAddr(0, layout.levelBlocks(0) - 1);
    const Addr l1 = layout.counterBlockAddr(1, 0);
    EXPECT_GT(l1, l0_last);
    EXPECT_TRUE(layout.isCounterAddr(l0));
    EXPECT_FALSE(layout.isCounterAddr(0));
    EXPECT_FALSE(layout.isCounterAddr(l0 - 1));
}

TEST(Layout, CounterBlockOfCoverage)
{
    MemoryLayout layout(16ULL << 20, 64, 64);
    EXPECT_EQ(layout.counterBlockOf(0), 0u);
    EXPECT_EQ(layout.counterBlockOf(63), 0u);
    EXPECT_EQ(layout.counterBlockOf(64), 1u);
    EXPECT_EQ(layout.parentOf(63), 0u);
    EXPECT_EQ(layout.parentOf(64), 1u);
}

TEST(Layout, TotalBytesAccountsAllLevels)
{
    MemoryLayout layout(8ULL << 20, 128, 128);
    std::uint64_t blocks = layout.dataBlocks();
    for (unsigned l = 0; l < layout.levels(); ++l)
        blocks += layout.levelBlocks(l);
    EXPECT_EQ(layout.totalBytes(), blocks * kBlockSize);
}

TEST(PageMapper, HugePagesAreContiguous)
{
    PageMapper m(PageMode::Huge2M, 1ULL << 30);
    const Addr p0 = m.translate(0);
    const Addr p1 = m.translate(kHugePageSize);
    const Addr p2 = m.translate(2 * kHugePageSize);
    // Bump allocation: adjacent virtual huge pages stay adjacent.
    EXPECT_EQ(p1 - p0, kHugePageSize);
    EXPECT_EQ(p2 - p1, kHugePageSize);
}

TEST(PageMapper, TranslationStableAndOffsetPreserving)
{
    PageMapper m(PageMode::Small4K, 1ULL << 26, 7);
    const Addr a = m.translate(0x12345);
    EXPECT_EQ(m.translate(0x12345), a);
    EXPECT_EQ(a % kSmallPageSize, 0x12345 % kSmallPageSize);
}

TEST(PageMapper, SmallPagesFragment)
{
    // Adjacent 4 KB virtual pages land on scattered frames.
    PageMapper m(PageMode::Small4K, 1ULL << 26, 7);
    int adjacent = 0;
    Addr prev = m.translate(0);
    for (std::uint64_t p = 1; p < 64; ++p) {
        const Addr cur = m.translate(p * kSmallPageSize);
        adjacent += (cur > prev ? cur - prev : prev - cur) ==
                    kSmallPageSize;
        prev = cur;
    }
    EXPECT_LT(adjacent, 8);
}

TEST(PageMapper, DistinctPagesGetDistinctFrames)
{
    PageMapper m(PageMode::Small4K, 1ULL << 24, 3);
    std::set<Addr> frames;
    for (std::uint64_t p = 0; p < 512; ++p)
        frames.insert(m.translate(p * kSmallPageSize) / kSmallPageSize);
    EXPECT_EQ(frames.size(), 512u);
}

TEST(PageMapper, AllocationCountsPages)
{
    PageMapper m(PageMode::Huge2M, 1ULL << 30);
    m.translate(0);
    m.translate(100);           // same page
    m.translate(kHugePageSize); // new page
    EXPECT_EQ(m.allocatedPages(), 2u);
}
