/**
 * @file
 * Traffic-budget tests: accrual rate, carry-over, epoch boundaries, and
 * spend semantics (Sec IV-C1/C2).
 */
#include <gtest/gtest.h>

#include "core/budget.hpp"

using namespace rmcc::core;

TEST(Budget, StartsWithInitialPool)
{
    BudgetConfig cfg;
    cfg.initial_pool_accesses = 500;
    TrafficBudget b(cfg);
    EXPECT_DOUBLE_EQ(b.available(), 500.0);
}

TEST(Budget, AccruesFractionPerAccess)
{
    BudgetConfig cfg;
    cfg.fraction = 0.01;
    TrafficBudget b(cfg);
    for (int i = 0; i < 1000; ++i)
        b.onAccess();
    EXPECT_NEAR(b.available(), 10.0, 1e-9);
}

TEST(Budget, EpochBoundarySignaled)
{
    BudgetConfig cfg;
    cfg.epoch_accesses = 100;
    TrafficBudget b(cfg);
    int epochs = 0;
    for (int i = 0; i < 350; ++i)
        epochs += b.onAccess();
    EXPECT_EQ(epochs, 3);
    EXPECT_EQ(b.epochs(), 3u);
    EXPECT_EQ(b.totalAccesses(), 350u);
}

TEST(Budget, SpendRespectsPool)
{
    BudgetConfig cfg;
    cfg.fraction = 0.01;
    TrafficBudget b(cfg);
    EXPECT_FALSE(b.trySpend(1));
    for (int i = 0; i < 200; ++i)
        b.onAccess(); // pool = 2
    EXPECT_TRUE(b.trySpend(2));
    EXPECT_FALSE(b.trySpend(1));
    EXPECT_EQ(b.totalSpent(), 2u);
}

TEST(Budget, CarryOverAccumulates)
{
    // Unused allowance carries over across epochs (paper Sec IV-C1).
    BudgetConfig cfg;
    cfg.fraction = 0.01;
    cfg.epoch_accesses = 100;
    TrafficBudget b(cfg);
    for (int i = 0; i < 1000; ++i)
        b.onAccess();
    EXPECT_NEAR(b.available(), 10.0, 1e-9); // 10 epochs x 1 carried
}

TEST(Budget, ForceSpendClampsAtZero)
{
    BudgetConfig cfg;
    cfg.initial_pool_accesses = 5;
    TrafficBudget b(cfg);
    b.forceSpend(100);
    EXPECT_DOUBLE_EQ(b.available(), 0.0);
    EXPECT_EQ(b.totalSpent(), 100u);
}

TEST(Budget, SetPoolOverrides)
{
    TrafficBudget b;
    b.setPool(1e6);
    EXPECT_TRUE(b.trySpend(1000));
    b.setPool(0.0);
    EXPECT_FALSE(b.trySpend(1));
}

/** Budget-fraction sweep: spendable overhead tracks the fraction. */
class BudgetFraction : public ::testing::TestWithParam<double>
{
};

TEST_P(BudgetFraction, SteadyStateSpendRate)
{
    BudgetConfig cfg;
    cfg.fraction = GetParam();
    TrafficBudget b(cfg);
    std::uint64_t spent = 0;
    for (int i = 0; i < 100000; ++i) {
        b.onAccess();
        if (b.trySpend(1))
            ++spent;
    }
    EXPECT_NEAR(static_cast<double>(spent) / 100000.0, GetParam(),
                GetParam() * 0.05 + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Fractions, BudgetFraction,
                         ::testing::Values(0.01, 0.02, 0.08));
