/**
 * @file
 * Recovery-subsystem tests: the RecoveryPolicy storm/degraded state
 * machine and its env knobs, memo-table quarantine semantics (including
 * the security-register rollback rule), per-mode storm invariants (a
 * detected fault is recovered or refused, never served), the zero-cost
 * guarantee of an armed-but-idle policy, and the crash-safe suite
 * journal (bit-exact round trip, resume validation, and the
 * skip-journaled-cells integration through runSuite).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <stdexcept>

#include "core/rmcc_engine.hpp"
#include "fault/storm.hpp"
#include "mc/recovery.hpp"
#include "sim/experiments.hpp"
#include "sim/journal.hpp"

using namespace rmcc;
using namespace rmcc::mc;

namespace
{

RecoveryConfig
fullConfig(std::uint64_t window, std::uint64_t threshold,
           std::uint64_t residency)
{
    RecoveryConfig cfg;
    cfg.mode = RecoveryMode::Full;
    cfg.storm_window_reads = window;
    cfg.storm_threshold = threshold;
    cfg.degraded_residency_reads = residency;
    return cfg;
}

} // namespace

TEST(RecoveryPolicy, OffModeIsInert)
{
    RecoveryPolicy p;
    EXPECT_FALSE(p.active());
    EXPECT_FALSE(p.full());
    EXPECT_FALSE(p.degraded());
    EXPECT_FALSE(p.onSecureRead());
    EXPECT_EQ(p.stats().detections, 0u);
}

TEST(RecoveryPolicy, RetryModeNeverDegrades)
{
    RecoveryConfig cfg = fullConfig(8, 2, 16);
    cfg.mode = RecoveryMode::Retry;
    RecoveryPolicy p(cfg);
    EXPECT_TRUE(p.active());
    EXPECT_FALSE(p.full());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(p.onDetection());
    EXPECT_FALSE(p.degraded());
    EXPECT_EQ(p.stats().detections, 100u);
    EXPECT_EQ(p.stats().degraded_entries, 0u);
}

TEST(RecoveryPolicy, StormThresholdTripsDegradedOnce)
{
    RecoveryPolicy p(fullConfig(64, 3, 10));
    EXPECT_FALSE(p.onDetection());
    EXPECT_FALSE(p.onDetection());
    EXPECT_FALSE(p.degraded());
    EXPECT_TRUE(p.onDetection()); // third within the window: enter
    EXPECT_TRUE(p.degraded());
    EXPECT_EQ(p.stats().degraded_entries, 1u);

    // Residency decays per read; the draining read reports the exit.
    for (int i = 0; i < 9; ++i) {
        EXPECT_FALSE(p.onSecureRead());
        EXPECT_TRUE(p.degraded());
    }
    EXPECT_TRUE(p.onSecureRead());
    EXPECT_FALSE(p.degraded());
    EXPECT_EQ(p.stats().degraded_reads, 10u);
}

TEST(RecoveryPolicy, ReArmWhileDegradedExtendsWithoutNewEntry)
{
    RecoveryPolicy p(fullConfig(64, 2, 10));
    p.onDetection();
    EXPECT_TRUE(p.onDetection()); // enter
    for (int i = 0; i < 5; ++i)
        p.onSecureRead(); // 5 reads of residency consumed
    p.onDetection();
    EXPECT_FALSE(p.onDetection()); // re-trip: extend, not a new entry
    EXPECT_EQ(p.stats().degraded_entries, 1u);
    // The stay was re-armed to the full residency, not the remainder.
    for (int i = 0; i < 9; ++i)
        EXPECT_FALSE(p.onSecureRead());
    EXPECT_TRUE(p.onSecureRead());
    EXPECT_FALSE(p.degraded());
}

TEST(RecoveryPolicy, WindowBoundaryForgetsOldDetections)
{
    RecoveryPolicy p(fullConfig(4, 2, 10));
    p.onDetection();
    for (int i = 0; i < 4; ++i)
        p.onSecureRead(); // window rolls: the count resets
    EXPECT_FALSE(p.onDetection()); // 1st of the new window, not 2nd
    EXPECT_FALSE(p.degraded());
}

TEST(RecoveryStats, MttrAveragesRefetchesOverDetections)
{
    RecoveryStats s;
    EXPECT_DOUBLE_EQ(s.mttrReads(), 0.0);
    s.detections = 4;
    s.refetch_attempts = 6;
    EXPECT_DOUBLE_EQ(s.mttrReads(), 2.5); // the read itself + 6/4
    s.recovered_refetch = 2;
    s.recovered_reconstruct = 1;
    s.recovered_quarantine = 1;
    EXPECT_EQ(s.recovered(), 4u);
}

TEST(RecoveryConfigEnv, DefaultsAreOffAndCalibrated)
{
    unsetenv("RMCC_RECOVERY");
    unsetenv("RMCC_RECOVERY_RETRIES");
    unsetenv("RMCC_RECOVERY_STORM_WINDOW");
    unsetenv("RMCC_RECOVERY_STORM_THRESHOLD");
    unsetenv("RMCC_RECOVERY_DEGRADED_READS");
    const RecoveryConfig cfg = recoveryConfigFromEnv();
    EXPECT_EQ(cfg.mode, RecoveryMode::Off);
    EXPECT_EQ(cfg.max_refetch, 3u);
    EXPECT_EQ(cfg.storm_window_reads, 512u);
    EXPECT_EQ(cfg.storm_threshold, 32u);
    EXPECT_EQ(cfg.degraded_residency_reads, 4096u);
}

TEST(RecoveryConfigEnv, ParsesModesAndKnobs)
{
    setenv("RMCC_RECOVERY", "retry", 1);
    EXPECT_EQ(recoveryConfigFromEnv().mode, RecoveryMode::Retry);
    setenv("RMCC_RECOVERY", "full", 1);
    setenv("RMCC_RECOVERY_RETRIES", "5", 1);
    setenv("RMCC_RECOVERY_STORM_WINDOW", "128", 1);
    setenv("RMCC_RECOVERY_STORM_THRESHOLD", "9", 1);
    setenv("RMCC_RECOVERY_DEGRADED_READS", "777", 1);
    const RecoveryConfig cfg = recoveryConfigFromEnv();
    EXPECT_EQ(cfg.mode, RecoveryMode::Full);
    EXPECT_EQ(cfg.max_refetch, 5u);
    EXPECT_EQ(cfg.storm_window_reads, 128u);
    EXPECT_EQ(cfg.storm_threshold, 9u);
    EXPECT_EQ(cfg.degraded_residency_reads, 777u);
    unsetenv("RMCC_RECOVERY");
    unsetenv("RMCC_RECOVERY_RETRIES");
    unsetenv("RMCC_RECOVERY_STORM_WINDOW");
    unsetenv("RMCC_RECOVERY_STORM_THRESHOLD");
    unsetenv("RMCC_RECOVERY_DEGRADED_READS");
}

TEST(RecoveryConfigEnv, GarbageModeThrows)
{
    setenv("RMCC_RECOVERY", "maybe", 1);
    EXPECT_THROW(recoveryConfigFromEnv(), std::runtime_error);
    unsetenv("RMCC_RECOVERY");
}

TEST(MemoQuarantine, QuarantinedValueRefusedUntilEpochEnd)
{
    core::MemoTable t;
    t.insertGroup(100);
    EXPECT_EQ(t.lookupRead(103), core::MemoHit::GroupHit);
    EXPECT_TRUE(t.quarantineValue(103));
    EXPECT_TRUE(t.isQuarantined(103));
    EXPECT_EQ(t.quarantinedCount(), 1u);
    // The covering group is invalidated (every pad it cached is suspect)
    // and the poisoned value itself is refused even if re-learned.
    EXPECT_EQ(t.validGroups(), 0u);
    for (addr::CounterValue v = 100; v < 108; ++v)
        EXPECT_EQ(t.lookupRead(v), core::MemoHit::Miss) << v;
    t.insertGroup(100);
    EXPECT_EQ(t.lookupRead(103), core::MemoHit::Miss);
    EXPECT_EQ(t.lookupRead(104), core::MemoHit::GroupHit);
    // Epoch reselection re-derives every pad from scratch: honest again.
    t.endOfEpoch();
    EXPECT_EQ(t.quarantinedCount(), 0u);
    EXPECT_FALSE(t.isQuarantined(103));
}

TEST(MemoQuarantine, RecentOnlyValueIsDropped)
{
    core::MemoConfig cfg;
    cfg.groups = 1;
    core::MemoTable t(cfg);
    t.insertGroup(100);
    t.insertGroup(200); // 100 -> shadow
    t.lookupRead(100);  // shadow value: memoized as MRU recent
    EXPECT_EQ(t.lookupRead(100), core::MemoHit::RecentHit);
    EXPECT_TRUE(t.quarantineValue(100));
    EXPECT_EQ(t.lookupRead(100), core::MemoHit::Miss);
}

TEST(MemoQuarantine, UnknownValueStillBlacklisted)
{
    core::MemoTable t;
    t.insertGroup(100);
    EXPECT_FALSE(t.quarantineValue(500)); // nothing to drop...
    EXPECT_TRUE(t.isQuarantined(500));    // ...but refused from now on
    EXPECT_EQ(t.lookupRead(103), core::MemoHit::GroupHit); // others live
}

TEST(MemoQuarantine, EngineQuarantineAppliesRollbackRule)
{
    // The security-register rollback rule: after a quarantine the
    // candidate monitor must be re-armed from the post-quarantine table
    // maximum, so a poisoned value cannot have ratcheted the threshold
    // future promotions are measured against.
    ctr::IntegrityTree tree(ctr::SchemeKind::Morphable, 1024);
    core::RmccConfig cfg;
    cfg.monitor.trigger_reads = 50;
    cfg.budget.epoch_accesses = 1000;
    cfg.budget.initial_pool_accesses = 1e6;
    core::RmccEngine engine(cfg, tree);
    engine.table(0).insertGroup(100);
    engine.table(0).insertGroup(300);
    EXPECT_EQ(engine.table(0).maxInTable(), 307u);
    EXPECT_TRUE(engine.quarantineMemoValue(0, 305));
    // The group holding the table max is gone; the surviving group
    // defines the new (lower) maximum the monitor re-armed around.
    EXPECT_EQ(engine.table(0).maxInTable(), 107u);
    EXPECT_FALSE(engine.quarantineMemoValue(7, 305)); // no such level
}

TEST(RecoveryStorm, PerModeInvariantsHold)
{
    using fault::StormConfig;
    using fault::StormPlan;
    using fault::StormStats;
    for (const RecoveryMode mode :
         {RecoveryMode::Off, RecoveryMode::Retry, RecoveryMode::Full}) {
        StormPlan plan;
        plan.rate = 0.01;
        plan.ops = 6000;
        plan.seed = 0xbeef;
        StormConfig cfg;
        cfg.seed = 3;
        cfg.recovery.mode = mode;
        const StormStats s = fault::runRecoveryStorm(plan, cfg);
        const RecoveryStats &r = s.recovery;
        SCOPED_TRACE(recoveryModeName(mode));

        // The detection contract survives every policy: no fault is
        // ever served as good data without a verdict.
        EXPECT_GT(s.faults.injected, 0u);
        EXPECT_EQ(s.faults.silent(), 0u);
        EXPECT_EQ(s.faults.unexpected_failures, 0u);

        if (mode == RecoveryMode::Off) {
            EXPECT_EQ(r.detections, 0u); // policy inactive: not consulted
            EXPECT_EQ(r.recovered(), 0u);
            continue;
        }
        // Active policy: the controller saw exactly what the oracle
        // classified, and every detection was healed or refused.
        EXPECT_EQ(r.detections, s.faults.detected());
        EXPECT_EQ(r.recovered() + r.unrecoverable, r.detections);
        EXPECT_GT(r.recovered_refetch, 0u); // transients heal in stage 1
        EXPECT_GE(r.mttrReads(), 1.0);
        if (mode == RecoveryMode::Retry) {
            EXPECT_EQ(r.recovered_reconstruct, 0u);
            EXPECT_EQ(r.values_quarantined, 0u);
            EXPECT_EQ(r.degraded_entries, 0u);
        } else {
            EXPECT_GT(r.recovered_reconstruct, 0u);
        }
    }
}

TEST(RecoveryStorm, ArmedIdlePolicyIsFreeOnCleanTraffic)
{
    // RMCC_RECOVERY=full on a fault-free cell must not change a single
    // stat: recovery only acts after a detection, and there are none.
    const auto *w = wl::findWorkload("omnetpp");
    std::vector<sim::NamedConfig> configs = {
        sim::rmccConfig(sim::SimMode::Timing)};
    configs[0].cfg.trace_records = 5000;
    configs[0].cfg.warmup_records = 2500;

    unsetenv("RMCC_RECOVERY");
    const sim::SuiteRow off = sim::runWorkload(*w, configs);
    setenv("RMCC_RECOVERY", "full", 1);
    const sim::SuiteRow armed = sim::runWorkload(*w, configs);
    unsetenv("RMCC_RECOVERY");

    ASSERT_TRUE(off.allOk());
    ASSERT_TRUE(armed.allOk());
    EXPECT_EQ(armed.results[0].instructions, off.results[0].instructions);
    EXPECT_EQ(armed.results[0].elapsed_ns, off.results[0].elapsed_ns);
    EXPECT_EQ(armed.results[0].stats.all(), off.results[0].stats.all());
}

// --- crash-safe suite journal ---------------------------------------------

namespace
{

std::vector<sim::NamedConfig>
journalConfigs()
{
    std::vector<sim::NamedConfig> configs = {
        sim::nonSecureConfig(sim::SimMode::Timing),
        sim::rmccConfig(sim::SimMode::Timing),
    };
    for (auto &nc : configs) {
        nc.cfg.trace_records = 5000;
        nc.cfg.warmup_records = 2500;
    }
    return configs;
}

/** RAII installer for the per-cell fault hook (always restores empty). */
struct HookGuard
{
    explicit HookGuard(
        std::function<void(const std::string &, const std::string &)> h)
    {
        sim::detail::cell_fault_hook = std::move(h);
    }
    ~HookGuard() { sim::detail::cell_fault_hook = nullptr; }
};

} // namespace

TEST(SuiteJournal, RoundTripIsBitExact)
{
    const std::string path =
        testing::TempDir() + "rmcc_journal_roundtrip";
    std::remove(path.c_str());
    const std::vector<sim::NamedConfig> configs = journalConfigs();

    auto j = sim::SuiteJournal::openAt(path, configs, false);
    ASSERT_NE(j, nullptr);

    sim::SimResult r;
    r.workload = "omnetpp";
    r.config_label = "RMCC";
    r.instructions = 123456789;
    r.elapsed_ns = 0.1 + 0.2; // not exactly representable: bits matter
    r.stats.set("lat.read sum ns", 1.0 / 3.0); // space survives escaping
    r.stats.set("memo.hits%odd", 42.0);
    sim::CellStatus ok;
    ok.state = sim::CellState::Ok;
    ok.attempts = 2;
    ok.elapsed_ms = 17.25;
    j->record("omnetpp", "RMCC", r, ok);

    // Failed cells are never journaled: they must rerun on resume.
    sim::CellStatus bad;
    bad.state = sim::CellState::Failed;
    j->record("omnetpp", "non-secure", r, bad);
    EXPECT_EQ(j->size(), 1u);

    auto resumed = sim::SuiteJournal::openAt(path, configs, true);
    EXPECT_EQ(resumed->resumed(), 1u);
    sim::SimResult out;
    sim::CellStatus st;
    EXPECT_FALSE(resumed->lookup("omnetpp", "non-secure", out, st));
    ASSERT_TRUE(resumed->lookup("omnetpp", "RMCC", out, st));
    EXPECT_EQ(out.instructions, 123456789u);
    EXPECT_EQ(out.elapsed_ns, 0.1 + 0.2); // exact, not approximate
    EXPECT_EQ(out.stats.get("lat.read sum ns"), 1.0 / 3.0);
    EXPECT_EQ(out.stats.get("memo.hits%odd"), 42.0);
    EXPECT_EQ(st.state, sim::CellState::Ok);
    EXPECT_EQ(st.attempts, 2u);
    EXPECT_EQ(st.elapsed_ms, 17.25);
    std::remove(path.c_str());
}

TEST(SuiteJournal, ForeignOrCorruptManifestStartsFresh)
{
    const std::string path =
        testing::TempDir() + "rmcc_journal_validate";
    std::remove(path.c_str());
    const std::vector<sim::NamedConfig> configs = journalConfigs();

    auto j = sim::SuiteJournal::openAt(path, configs, false);
    sim::SimResult r;
    r.instructions = 7;
    sim::CellStatus ok;
    ok.state = sim::CellState::Ok;
    j->record("omnetpp", "RMCC", r, ok);

    // Same file, different experiment: config labels changed.
    std::vector<sim::NamedConfig> other = configs;
    other[1].label = "RMCC-variant";
    EXPECT_EQ(sim::SuiteJournal::openAt(path, other, true)->resumed(), 0u);

    // Different trace shape: seed mismatch.
    std::vector<sim::NamedConfig> reseeded = journalConfigs();
    for (auto &nc : reseeded)
        nc.cfg.seed += 1;
    EXPECT_EQ(sim::SuiteJournal::openAt(path, reseeded, true)->resumed(),
              0u);

    // Flip one body byte: the checksum must reject the whole manifest.
    {
        std::ifstream in(path);
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        text[text.size() - 2] ^= 1;
        std::ofstream out(path, std::ios::trunc);
        out << text;
    }
    EXPECT_EQ(sim::SuiteJournal::openAt(path, configs, true)->resumed(),
              0u);

    // The pristine manifest still resumes.
    j->record("omnetpp", "RMCC", r, ok); // rewrite a valid file
    EXPECT_EQ(sim::SuiteJournal::openAt(path, configs, true)->resumed(),
              1u);
    std::remove(path.c_str());
}

TEST(SuiteJournal, OpenFromEnvRequiresPath)
{
    unsetenv("RMCC_SUITE_JOURNAL");
    EXPECT_EQ(sim::SuiteJournal::openFromEnv(journalConfigs()), nullptr);
}

TEST(SuiteJournal, ShutdownLatchRoundTrip)
{
    sim::resetShutdownForTest();
    EXPECT_FALSE(sim::shutdownRequested());
    sim::requestShutdown(15);
    EXPECT_TRUE(sim::shutdownRequested());
    EXPECT_EQ(sim::shutdownSignal(), 15);
    EXPECT_TRUE(sim::shutdownFlag()->load());
    sim::resetShutdownForTest();
    EXPECT_FALSE(sim::shutdownRequested());
}

TEST(SuiteJournal, SuiteResumeServesJournaledCellsWithoutRerunning)
{
    // End to end: run the suite once with a journal, then resume with a
    // poisoned cell hook.  Every cell must come back Ok and bit-identical
    // *without executing* — if any cell reran, the hook would fail it.
    const std::string base = testing::TempDir() + "rmcc_suite_journal";
    std::remove(base.c_str());
    std::remove((base + ".1").c_str());
    const std::vector<sim::NamedConfig> configs = journalConfigs();

    setenv("RMCC_SUITE_JOURNAL", base.c_str(), 1);
    setenv("RMCC_JOBS", "1", 1);
    const std::vector<sim::SuiteRow> first = sim::runSuite(configs);
    for (const sim::SuiteRow &row : first)
        ASSERT_TRUE(row.allOk()) << row.workload;

    // Each runSuite() invocation in one process journals to a fresh
    // suffix (base, base.1, ...); stage the manifest where the resumed
    // invocation will look, as a rerun of the same bench binary would.
    {
        std::ifstream in(base, std::ios::binary);
        ASSERT_TRUE(in.good()) << "journal was not written";
        std::ofstream out(base + ".1", std::ios::binary);
        out << in.rdbuf();
    }

    setenv("RMCC_SUITE_RESUME", "1", 1);
    HookGuard guard([](const std::string &, const std::string &) {
        throw std::runtime_error("cell executed despite journal");
    });
    const std::vector<sim::SuiteRow> second = sim::runSuite(configs);
    unsetenv("RMCC_SUITE_RESUME");
    unsetenv("RMCC_SUITE_JOURNAL");
    unsetenv("RMCC_JOBS");

    ASSERT_EQ(second.size(), first.size());
    for (std::size_t w = 0; w < first.size(); ++w) {
        EXPECT_EQ(second[w].workload, first[w].workload);
        ASSERT_TRUE(second[w].allOk()) << second[w].workload
                                       << " reran instead of resuming";
        ASSERT_EQ(second[w].results.size(), first[w].results.size());
        for (std::size_t c = 0; c < first[w].results.size(); ++c) {
            const sim::SimResult &a = first[w].results[c];
            const sim::SimResult &b = second[w].results[c];
            EXPECT_EQ(b.instructions, a.instructions);
            EXPECT_EQ(b.elapsed_ns, a.elapsed_ns);
            EXPECT_EQ(b.stats.all(), a.stats.all())
                << first[w].workload << " / " << a.config_label;
        }
    }
    std::remove(base.c_str());
    std::remove((base + ".1").c_str());
}
