/**
 * @file
 * DRAM model tests: address decode, row-buffer state machine, timing
 * ordering (hit < closed < conflict), bus serialization, refresh, and
 * the FR-FCFS cap.
 */
#include <gtest/gtest.h>

#include "dram/ddr4.hpp"

using namespace rmcc::dram;
using rmcc::addr::Addr;

namespace
{

DramConfig
quietConfig()
{
    DramConfig cfg;
    cfg.tREFI_ns = 1e12; // keep refresh out of timing tests
    return cfg;
}

} // namespace

TEST(Mapping, DecodeIsStableAndInBounds)
{
    const DramConfig cfg;
    AddressMapper m(cfg);
    for (Addr a = 0; a < (1ULL << 24); a += 4096 + 64) {
        const DramCoord c = m.decode(a);
        EXPECT_LT(c.channel, cfg.channels);
        EXPECT_LT(c.rank, cfg.ranks);
        EXPECT_LT(c.bank, cfg.banks_per_rank);
        const DramCoord c2 = m.decode(a);
        EXPECT_EQ(c.row, c2.row);
        EXPECT_EQ(c.bank, c2.bank);
    }
}

TEST(Mapping, SequentialBlocksShareRow)
{
    const DramConfig cfg;
    AddressMapper m(cfg);
    const DramCoord a = m.decode(0);
    const DramCoord b = m.decode(64);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_NE(a.column, b.column);
}

TEST(Mapping, XorHashSpreadsRowStrides)
{
    // Accesses striding by exactly one row land in different banks.
    const DramConfig cfg;
    AddressMapper m(cfg);
    const Addr row_stride =
        cfg.row_bytes * cfg.channels * cfg.banks_per_rank * cfg.ranks /
        cfg.banks_per_rank; // one full row per bank-group wrap
    const DramCoord a = m.decode(0);
    const DramCoord b = m.decode(row_stride);
    // With the XOR hash, same raw bank bits + different row -> different
    // bank index (for odd row deltas).
    EXPECT_TRUE(a.bank != b.bank || a.row == b.row);
}

TEST(Bank, RowHitFasterThanClosedFasterThanConflict)
{
    const DramConfig cfg = quietConfig();
    Bank bank;
    RowOutcome out;
    const double closed = bank.issue(0.0, 5, cfg, out);
    EXPECT_EQ(out, RowOutcome::Closed);
    const double t1 = bank.readyAt();
    const double hit = bank.issue(t1, 5, cfg, out) - t1;
    EXPECT_EQ(out, RowOutcome::Hit);
    const double t2 = bank.readyAt();
    const double conflict = bank.issue(t2, 9, cfg, out) - t2;
    EXPECT_EQ(out, RowOutcome::Conflict);
    EXPECT_LT(hit, closed);
    EXPECT_LT(closed, conflict);
    EXPECT_NEAR(hit, cfg.tCL_ns, 1e-9);
    EXPECT_NEAR(conflict, cfg.tRP_ns + cfg.tRCD_ns + cfg.tCL_ns, 1e-9);
}

TEST(Bank, RowTimeoutClosesIdleRow)
{
    const DramConfig cfg = quietConfig();
    Bank bank;
    RowOutcome out;
    bank.issue(0.0, 5, cfg, out);
    // Long idle: the 500 ns timeout precharges the row in the background.
    bank.issue(10000.0, 5, cfg, out);
    EXPECT_EQ(out, RowOutcome::Closed);
}

TEST(Channel, BusSerializesBursts)
{
    const DramConfig cfg = quietConfig();
    Channel ch(cfg, 0);
    // Two simultaneous row hits to different banks: the second burst must
    // wait for the shared bus.
    DramCoord a{0, 0, 0, 5, 0};
    DramCoord b{0, 0, 1, 5, 0};
    ch.serve(a, false, 0.0);
    ch.serve(b, false, 0.0);
    const DramCompletion c1 = ch.serve(a, false, 100.0);
    const DramCompletion c2 = ch.serve(b, false, 100.0);
    EXPECT_GE(c2.done_ns, c1.done_ns + cfg.burstNs() - 1e-9);
}

TEST(Channel, RefreshBlackoutDelaysRequests)
{
    DramConfig cfg;
    cfg.tREFI_ns = 1000.0;
    cfg.tRFC_ns = 350.0;
    Channel ch(cfg, 0);
    DramCoord a{0, 0, 0, 5, 0};
    // Rank 0's first refresh window starts at tREFI/ranks = 125 ns.
    const DramCompletion c = ch.serve(a, false, 130.0);
    EXPECT_GE(c.done_ns, 125.0 + cfg.tRFC_ns);
}

TEST(Channel, FrFcfsCapBreaksHitStreak)
{
    const DramConfig cfg = quietConfig();
    Channel ch(cfg, 0);
    DramCoord a{0, 0, 0, 5, 0};
    ch.serve(a, false, 0.0); // opens the row
    unsigned conflicts = 0;
    double t = 1000.0;
    for (int i = 0; i < 12; ++i) {
        const DramCompletion c = ch.serve(a, false, t);
        conflicts += c.outcome == RowOutcome::Conflict;
        t = c.done_ns;
    }
    // cap = 4: roughly every 5th access is forced to the conflict path.
    EXPECT_GE(conflicts, 2u);
    EXPECT_LE(conflicts, 4u);
}

TEST(Ddr4, StatsAggregateAcrossAccesses)
{
    Ddr4 dram(quietConfig());
    double t = 0.0;
    for (int i = 0; i < 100; ++i)
        t = dram.access(static_cast<Addr>(i) * 64, i % 2 == 0, t).done_ns;
    EXPECT_EQ(dram.totalAccesses(), 100u);
    const ChannelStats s = dram.aggregateStats();
    EXPECT_EQ(s.reads, 50u);
    EXPECT_EQ(s.writes, 50u);
    EXPECT_NEAR(s.bus_busy_ns, 100 * dram.config().burstNs(), 1e-6);
}

TEST(Ddr4, CompletionTimesMonotonicPerBank)
{
    Ddr4 dram(quietConfig());
    double prev = 0.0;
    for (int i = 0; i < 50; ++i) {
        const DramCompletion c = dram.access(0, false, prev);
        EXPECT_GT(c.done_ns, prev);
        prev = c.done_ns;
    }
}

TEST(Ddr4, SequentialBeatsRandomLatency)
{
    Ddr4 seq(quietConfig()), rnd(quietConfig());
    double t = 0.0, seq_total = 0.0;
    for (int i = 0; i < 200; ++i) {
        const auto c = seq.access(static_cast<Addr>(i) * 64, false, t);
        seq_total += c.done_ns - t;
        t = c.done_ns;
    }
    std::uint64_t x = 123456789;
    t = 0.0;
    double rnd_total = 0.0;
    for (int i = 0; i < 200; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const auto c = rnd.access((x % (1ULL << 28)) & ~63ULL, false, t);
        rnd_total += c.done_ns - t;
        t = c.done_ns;
    }
    EXPECT_LT(seq_total, rnd_total);
}
