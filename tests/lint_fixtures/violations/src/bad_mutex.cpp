// Violates rule(mutex-guard): a naked std::mutex member invisible to
// the thread-safety analysis.
#include <mutex>

class Counter
{
  public:
    void bump()
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++n_;
    }

  private:
    std::mutex mu_;
    long n_ = 0;
};
