// Violates rule(mutex-guard) the other way: a util::Mutex exists but
// no member is RMCC_GUARDED_BY it, so the analysis proves nothing.
namespace rmcc::util
{
class Mutex;
}

struct Registry
{
    rmcc::util::Mutex *mu_unused;
    long value = 0; // raced: nothing ties it to the mutex
};

util::Mutex g_lonely_mutex;
