// Violates rule(determinism): unseeded randomness and wall clock.
#include <cstdlib>
#include <ctime>
#include <random>

unsigned
entropySoup()
{
    std::srand(static_cast<unsigned>(std::time(nullptr)));
    std::random_device rd;
    return static_cast<unsigned>(std::rand()) + rd();
}
