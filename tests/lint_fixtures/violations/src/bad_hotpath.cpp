// Violates rule(hot-path): allocation and iostream output inside a
// function marked hot.  The std::string parameter in the signature of
// coldHelper() below must NOT fire — only marked bodies are scanned.
#include <iostream>
#include <string>

// rmcc-lint: hot-path
int
hotLoop(int n)
{
    int *scratch = new int[8];
    std::string label = "hot";
    std::cout << label << n;
    int r = scratch[0];
    delete[] scratch;
    return r;
}

int
coldHelper(const std::string &name)
{
    // Unmarked function: std::string here is fine.
    return static_cast<int>(name.size());
}
