// Violates rule(getenv): raw std::getenv outside src/util/env.cpp.
#include <cstdlib>

const char *
readKnob()
{
    return std::getenv("RMCC_FIXTURE_OK");
}
