// Violates rule(env-docs): names an RMCC_* variable no doc mentions.
#include <string>

std::string
undocumentedKnobName()
{
    return "RMCC_NOT_IN_DOCS";
}
