// rule(determinism) violations suppressed by allow escapes.  Each
// banned token shares a line with its escape — allow() is line-scoped.
#include <cstdlib>
#include <ctime>
#include <random>

unsigned
entropySoup()
{
    std::srand(1u);                           // rmcc-lint: allow(determinism)
    const std::time_t t = std::time(nullptr); // rmcc-lint: allow(determinism)
    std::random_device rd;                    // rmcc-lint: allow(determinism)
    const unsigned r = std::rand();           // rmcc-lint: allow(determinism)
    return r + static_cast<unsigned>(t) + rd();
}
