// File-level rule(mutex-guard) finding (util::Mutex with no
// RMCC_GUARDED_BY) suppressed by an allow escape on the first
// util::Mutex line.
namespace rmcc::util
{
class Mutex;
}

struct Registry
{
    rmcc::util::Mutex *mu_unused; // rmcc-lint: allow(mutex-guard)
    long value = 0;
};
