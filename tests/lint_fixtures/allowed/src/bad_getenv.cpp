// rule(getenv) violation suppressed by an allow escape.
#include <cstdlib>

const char *
readKnob()
{
    return std::getenv("RMCC_FIXTURE_OK"); // rmcc-lint: allow(getenv)
}
