// rule(mutex-guard) violations suppressed by allow escapes.
#include <mutex>

class Counter
{
  public:
    void bump()
    {
        std::lock_guard<std::mutex> lk(mu_); // rmcc-lint: allow(mutex-guard)
        ++n_;
    }

  private:
    std::mutex mu_; // rmcc-lint: allow(mutex-guard)
    long n_ = 0;
};
