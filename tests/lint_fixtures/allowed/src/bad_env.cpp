// rule(env-docs) violation suppressed by an allow escape.
#include <string>

std::string
undocumentedKnobName()
{
    return "RMCC_NOT_IN_DOCS"; // rmcc-lint: allow(env-docs)
}
