// rule(hot-path) violations suppressed by allow escapes.
#include <iostream>
#include <string>

// rmcc-lint: hot-path
int
hotLoop(int n)
{
    int *scratch = new int[8];      // rmcc-lint: allow(hot-path)
    std::string label = "hot";      // rmcc-lint: allow(hot-path)
    std::cout << label << n;        // rmcc-lint: allow(hot-path)
    int r = scratch[0];
    delete[] scratch;
    return r;
}
