// The one sanctioned home for raw std::getenv in a scanned tree.
#include <cstdlib>

const char *
cleanKnob()
{
    return std::getenv("RMCC_CLEAN_VAR");
}
