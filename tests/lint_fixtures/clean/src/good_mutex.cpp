// A util::Mutex paired with RMCC_GUARDED_BY state: no finding.
#define RMCC_GUARDED_BY(x)

namespace rmcc::util
{
class Mutex;
}

struct Guarded
{
    rmcc::util::Mutex *mu;
    long value RMCC_GUARDED_BY(mu) = 0;
};
