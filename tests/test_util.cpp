/**
 * @file
 * Unit tests for the util module: RNG determinism and distributions,
 * statistics, bit packing, table rendering, and the thread pool.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/bitvec.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace rmcc::util;

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(pool, n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleThreadRunsInlineInOrder)
{
    ThreadPool pool(1);
    std::vector<std::size_t> order;
    parallelFor(pool, 8, [&](std::size_t i) { order.push_back(i); });
    std::vector<std::size_t> expected(8);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ReusableAcrossPhases)
{
    ThreadPool pool(3);
    std::atomic<int> total{0};
    for (int phase = 0; phase < 4; ++phase)
        parallelFor(pool, 50, [&](std::size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, WaitRethrowsFirstJobException)
{
    ThreadPool pool(2);
    EXPECT_THROW(parallelFor(pool, 16,
                             [&](std::size_t i) {
                                 if (i == 7)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    // The pool must still be usable after an exception.
    std::atomic<int> ran{0};
    parallelFor(pool, 4, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, EnvJobsParsesRmccJobs)
{
    setenv("RMCC_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::envJobs(), 3u);
    setenv("RMCC_JOBS", "1", 1);
    EXPECT_EQ(ThreadPool::envJobs(), 1u);
    // Garbage or non-positive values are rejected loudly: a typo used to
    // silently fall back to hardware concurrency and run at a surprise
    // width for hours.
    setenv("RMCC_JOBS", "banana", 1);
    EXPECT_THROW(ThreadPool::envJobs(), std::runtime_error);
    setenv("RMCC_JOBS", "0", 1);
    EXPECT_THROW(ThreadPool::envJobs(), std::runtime_error);
    setenv("RMCC_JOBS", "-2", 1);
    EXPECT_THROW(ThreadPool::envJobs(), std::runtime_error);
    setenv("RMCC_JOBS", "3x", 1);
    EXPECT_THROW(ThreadPool::envJobs(), std::runtime_error);
    unsetenv("RMCC_JOBS");
    EXPECT_GE(ThreadPool::envJobs(), 1u);
}

TEST(ThreadPool, TakeErrorsCapturesEveryFailure)
{
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&ran, i] {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (i % 3 == 0)
                throw std::runtime_error("job " + std::to_string(i));
        });
    pool.waitAll(); // must not throw
    EXPECT_EQ(ran.load(), 10) << "failing jobs must not cancel the rest";
    auto errs = pool.takeErrors();
    EXPECT_EQ(errs.size(), 4u); // i = 0, 3, 6, 9
    for (const std::exception_ptr &e : errs)
        EXPECT_THROW(std::rethrow_exception(e), std::runtime_error);
    // The list is cleared by takeErrors and stays empty after clean work.
    EXPECT_TRUE(pool.takeErrors().empty());
    pool.submit([] {});
    pool.waitAll();
    EXPECT_TRUE(pool.takeErrors().empty());
}

TEST(EnvParse, UnsignedAcceptsPlainDecimalOnly)
{
    setenv("RMCC_TEST_ENV", "42", 1);
    EXPECT_EQ(envUnsigned("RMCC_TEST_ENV"), 42u);
    EXPECT_EQ(envUnsignedOr("RMCC_TEST_ENV", 7), 42u);
    setenv("RMCC_TEST_ENV", "0", 1);
    EXPECT_EQ(envUnsigned("RMCC_TEST_ENV"), 0u);
    EXPECT_THROW(envPositive("RMCC_TEST_ENV"), std::runtime_error);
    unsetenv("RMCC_TEST_ENV");
    EXPECT_EQ(envUnsigned("RMCC_TEST_ENV"), std::nullopt);
    EXPECT_EQ(envUnsignedOr("RMCC_TEST_ENV", 7), 7u);
    EXPECT_EQ(envPositive("RMCC_TEST_ENV"), std::nullopt);
    setenv("RMCC_TEST_ENV", "", 1);
    EXPECT_EQ(envUnsigned("RMCC_TEST_ENV"), std::nullopt);

    for (const char *bad :
         {"banana", "12banana", " 12", "12 ", "+5", "-5", "0x10",
          "99999999999999999999999999"}) {
        setenv("RMCC_TEST_ENV", bad, 1);
        EXPECT_THROW(envUnsigned("RMCC_TEST_ENV"), std::runtime_error)
            << "value '" << bad << "' should be rejected";
        EXPECT_THROW(envUnsignedOr("RMCC_TEST_ENV", 7), std::runtime_error)
            << "fallback must not mask garbage '" << bad << "'";
    }
    unsetenv("RMCC_TEST_ENV");
}

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000003ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(11);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.nextInRange(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        hit_lo |= v == 10;
        hit_hi |= v == 13;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(17);
    int heads = 0;
    for (int i = 0; i < 20000; ++i)
        heads += rng.nextBool(0.3);
    EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanApproximatelyCorrect)
{
    Rng rng(19);
    double sum = 0;
    for (int i = 0; i < 20000; ++i)
        sum += rng.nextGeometric(5.0);
    EXPECT_NEAR(sum / 20000.0, 5.0, 0.5);
}

TEST(Rng, ForkIndependence)
{
    Rng a(23);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Zipf, RankZeroMostPopular)
{
    Rng rng(29);
    ZipfSampler zipf(1000, 1.0);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[500]);
}

TEST(Zipf, AllRanksReachable)
{
    Rng rng(31);
    ZipfSampler zipf(4, 0.5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 5000; ++i)
        seen.insert(zipf(rng));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStat, EmptyIsSafe)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndQuantiles)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.bucketCount(0), 10u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 10.0);
}

TEST(Histogram, OutOfRangeCounted)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 2u);
}

TEST(Stats, GeomeanOfPowers)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Stats, GeomeanSkipsZeros)
{
    EXPECT_NEAR(geomean({0.0, 4.0, 4.0}), 4.0, 1e-9);
}

TEST(StatSet, IncSetGetRatio)
{
    StatSet s;
    s.inc("a");
    s.inc("a", 2.0);
    s.set("b", 6.0);
    EXPECT_DOUBLE_EQ(s.get("a"), 3.0);
    EXPECT_DOUBLE_EQ(s.ratio("a", "b"), 0.5);
    EXPECT_DOUBLE_EQ(s.ratio("a", "missing"), 0.0);
    EXPECT_DOUBLE_EQ(s.get("missing"), 0.0);
}

TEST(StatSet, DiffIsWindowed)
{
    StatSet s;
    s.inc("x", 5);
    StatSet snap = s;
    s.inc("x", 7);
    s.inc("y", 2);
    StatSet d = s.diff(snap);
    EXPECT_DOUBLE_EQ(d.get("x"), 7.0);
    EXPECT_DOUBLE_EQ(d.get("y"), 2.0);
}

TEST(StatSet, HandleAndStringApiProduceIdenticalOutput)
{
    StatSet via_handle, via_string;
    StatHandle hx = via_handle.handle("x.count");
    StatHandle hy = via_handle.handle("y.sum");
    EXPECT_TRUE(hx.valid());
    via_handle.inc(hx);
    via_handle.inc(hx, 2.5);
    via_handle.set(hy, 7.0);
    via_string.inc("x.count");
    via_string.inc("x.count", 2.5);
    via_string.set("y.sum", 7.0);
    EXPECT_EQ(via_handle.all(), via_string.all());
    EXPECT_DOUBLE_EQ(via_handle.get(hx), via_string.get("x.count"));
    EXPECT_DOUBLE_EQ(via_handle.ratio("x.count", "y.sum"),
                     via_string.ratio("x.count", "y.sum"));
    StatSet d = via_handle.diff(via_string);
    EXPECT_DOUBLE_EQ(d.get("x.count"), 0.0);
}

TEST(StatSet, RegisteredButUnwrittenSlotsStayInvisible)
{
    // Pre-resolving handles must not change reported results: a slot only
    // appears in all()/merge()/diff() once inc()/set() touched it.
    StatSet s;
    s.handle("never.written");
    s.inc("real", 3.0);
    EXPECT_EQ(s.all().size(), 1u);
    EXPECT_EQ(s.all().count("never.written"), 0u);
    StatSet other;
    other.merge(s);
    EXPECT_EQ(other.all().size(), 1u);
    StatSet d = s.diff(StatSet{});
    EXPECT_EQ(d.all().size(), 1u);
}

TEST(StatSet, HandleOpsPerformNoStringLookups)
{
    StatSet s;
    const StatHandle h = s.handle("hot.counter");
    const std::uint64_t before = StatSet::stringLookups();
    for (int i = 0; i < 1000; ++i)
        s.inc(h);
    s.set(h, 5.0);
    (void)s.get(h);
    EXPECT_EQ(StatSet::stringLookups(), before);
    s.inc("hot.counter");
    EXPECT_GT(StatSet::stringLookups(), before);
}

TEST(EnvParse, ChoiceAcceptsListedValuesOnly)
{
    const std::vector<std::string> choices = {"auto", "hw", "sw"};
    unsetenv("RMCC_TEST_CHOICE");
    EXPECT_EQ(envChoice("RMCC_TEST_CHOICE", choices, "auto"), "auto");
    setenv("RMCC_TEST_CHOICE", "", 1);
    EXPECT_EQ(envChoice("RMCC_TEST_CHOICE", choices, "auto"), "auto");
    for (const char *good : {"auto", "hw", "sw"}) {
        setenv("RMCC_TEST_CHOICE", good, 1);
        EXPECT_EQ(envChoice("RMCC_TEST_CHOICE", choices, "auto"), good);
    }
    for (const char *bad : {"HW", " hw", "hw ", "banana", "auto,hw"}) {
        setenv("RMCC_TEST_CHOICE", bad, 1);
        EXPECT_THROW(envChoice("RMCC_TEST_CHOICE", choices, "auto"),
                     std::runtime_error)
            << "value '" << bad << "' should be rejected";
    }
    unsetenv("RMCC_TEST_CHOICE");
}

TEST(BitVec, RoundTripVariousWidths)
{
    BitVec512 bits;
    bits.set(0, 56, 0x00ffeeddccbbaaULL);
    bits.set(56, 8, 0xa5);
    bits.set(64, 3, 5);
    bits.set(509, 3, 7);
    EXPECT_EQ(bits.get(0, 56), 0x00ffeeddccbbaaULL);
    EXPECT_EQ(bits.get(56, 8), 0xa5u);
    EXPECT_EQ(bits.get(64, 3), 5u);
    EXPECT_EQ(bits.get(509, 3), 7u);
}

TEST(BitVec, CrossWordBoundary)
{
    BitVec512 bits;
    bits.set(60, 20, 0xabcde);
    EXPECT_EQ(bits.get(60, 20), 0xabcdeu);
    // Neighbours untouched.
    EXPECT_EQ(bits.get(0, 60), 0u);
    EXPECT_EQ(bits.get(80, 64), 0u);
}

TEST(BitVec, OverwriteClearsOldBits)
{
    BitVec512 bits;
    bits.set(10, 8, 0xff);
    bits.set(10, 8, 0x01);
    EXPECT_EQ(bits.get(10, 8), 0x01u);
    EXPECT_EQ(bits.popcount(), 1u);
}

TEST(BitVec, FullWidthField)
{
    BitVec512 bits;
    bits.set(64, 64, ~0ULL);
    EXPECT_EQ(bits.get(64, 64), ~0ULL);
    EXPECT_EQ(bits.popcount(), 64u);
}

TEST(BitWidth, Values)
{
    EXPECT_EQ(bitWidth(0), 0u);
    EXPECT_EQ(bitWidth(1), 1u);
    EXPECT_EQ(bitWidth(7), 3u);
    EXPECT_EQ(bitWidth(8), 4u);
}

TEST(Table, TextAndCsvRendering)
{
    Table t("demo", {"name", "v1", "v2"});
    t.addRow("row", {1.25, 2.5}, 2);
    const std::string text = t.toText();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("1.25"), std::string::npos);
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("name,v1,v2"), std::string::npos);
    EXPECT_NE(csv.find("row,1.25,2.50"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtPercent(0.923, 1), "92.3%");
}

TEST(Zipf, DeterministicForEqualSeeds)
{
    // The sampler is pure (the Rng carries all the state): equal seeds
    // must give identical rank streams — the property the tenant mixer's
    // reproducibility rests on.
    ZipfSampler zipf(1 << 20, 0.99);
    Rng a(42), b(42), c(43);
    bool diverged = false;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t ra = zipf(a);
        EXPECT_EQ(ra, zipf(b));
        diverged |= ra != zipf(c);
    }
    EXPECT_TRUE(diverged);
}

TEST(Zipf, MassSumsToOneAndSteepensWithSkew)
{
    const ZipfSampler flat(64, 0.5), steep(64, 2.0);
    double total = 0.0;
    for (std::uint64_t r = 0; r < 64; ++r)
        total += flat.mass(r);
    EXPECT_NEAR(total, 1.0, 1e-9);
    // A larger exponent concentrates mass on the low ranks.
    EXPECT_GT(steep.mass(0), flat.mass(0));
    EXPECT_LT(steep.mass(63), flat.mass(63));
    EXPECT_GT(flat.mass(0), flat.mass(1));
}

TEST(EnvParse, DoubleAcceptsPlainNumbersOnly)
{
    setenv("RMCC_TEST_ENV", "0.99", 1);
    EXPECT_DOUBLE_EQ(*envDouble("RMCC_TEST_ENV"), 0.99);
    EXPECT_DOUBLE_EQ(envDoubleOr("RMCC_TEST_ENV", 7.0), 0.99);
    setenv("RMCC_TEST_ENV", "2", 1);
    EXPECT_DOUBLE_EQ(*envDouble("RMCC_TEST_ENV"), 2.0);
    unsetenv("RMCC_TEST_ENV");
    EXPECT_EQ(envDouble("RMCC_TEST_ENV"), std::nullopt);
    EXPECT_DOUBLE_EQ(envDoubleOr("RMCC_TEST_ENV", 7.0), 7.0);

    for (const char *bad :
         {"banana", "1.2banana", " 1.2", "-0.5", "+1", "inf", "nan"}) {
        setenv("RMCC_TEST_ENV", bad, 1);
        EXPECT_THROW(envDouble("RMCC_TEST_ENV"), std::runtime_error)
            << "value '" << bad << "' should be rejected";
        EXPECT_THROW(envDoubleOr("RMCC_TEST_ENV", 7.0),
                     std::runtime_error)
            << "fallback must not mask garbage '" << bad << "'";
    }
    unsetenv("RMCC_TEST_ENV");
}
