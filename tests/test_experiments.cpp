/**
 * @file
 * Experiment-harness tests: the standard configuration builders, derived
 * metrics of SimResult, the RMCC_FAST scaler, and the suite runner's
 * trace sharing.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "cache/set_assoc.hpp"
#include "crypto/dispatch.hpp"
#include "sim/experiments.hpp"
#include "util/cancel.hpp"

using namespace rmcc;
using namespace rmcc::sim;

TEST(Configs, NonSecureDisablesProtection)
{
    const NamedConfig nc = nonSecureConfig(SimMode::Timing);
    EXPECT_FALSE(nc.cfg.secure);
    EXPECT_EQ(nc.label, "non-secure");
    EXPECT_EQ(nc.cfg.mode, SimMode::Timing);
}

TEST(Configs, BaselineCarriesSchemeName)
{
    const NamedConfig nc =
        baselineConfig(SimMode::Functional, ctr::SchemeKind::SC64);
    EXPECT_TRUE(nc.cfg.secure);
    EXPECT_FALSE(nc.cfg.rmcc);
    EXPECT_EQ(nc.label, "SC-64");
    EXPECT_EQ(nc.cfg.mode, SimMode::Functional);
}

TEST(Configs, RmccOnTopOfMorphable)
{
    const NamedConfig nc = rmccConfig(SimMode::Timing);
    EXPECT_TRUE(nc.cfg.rmcc);
    EXPECT_EQ(nc.cfg.scheme, ctr::SchemeKind::Morphable);
    EXPECT_EQ(nc.label, "RMCC");
}

TEST(Configs, PresetsDifferAsInPaper)
{
    const SystemConfig timing = SystemConfig::timingDefault();
    const SystemConfig pintool = SystemConfig::functionalDefault();
    EXPECT_EQ(timing.counter_cache_bytes, 128u * 1024);
    EXPECT_EQ(pintool.counter_cache_bytes, 32u * 1024);
    EXPECT_EQ(timing.llc.size_bytes, 8ULL * 1024 * 1024);
    EXPECT_EQ(pintool.llc.size_bytes, 2ULL * 1024 * 1024);
    EXPECT_DOUBLE_EQ(timing.lat.aes_ns, 15.0);
    EXPECT_DOUBLE_EQ(mc::LatencyConfig::aes256().aes_ns, 22.0);
}

TEST(Configs, FastEnvScalesTraces)
{
    std::vector<NamedConfig> configs = {rmccConfig(SimMode::Timing)};
    const std::size_t before = configs[0].cfg.trace_records;
    setenv("RMCC_FAST", "1", 1);
    applyFastEnv(configs);
    unsetenv("RMCC_FAST");
    EXPECT_EQ(configs[0].cfg.trace_records, before / 8);
}

TEST(Configs, FastEnvOffByDefault)
{
    unsetenv("RMCC_FAST");
    std::vector<NamedConfig> configs = {rmccConfig(SimMode::Timing)};
    const std::size_t before = configs[0].cfg.trace_records;
    applyFastEnv(configs);
    EXPECT_EQ(configs[0].cfg.trace_records, before);
}

TEST(SimResultT, DerivedMetrics)
{
    SimResult r;
    r.instructions = 1000;
    r.elapsed_ns = 500.0;
    r.stats.set("ctr.l0_miss", 30);
    r.stats.set("mc.reads", 100);
    r.stats.set("lat.read_sum_ns", 5000);
    r.stats.set("memo.l0_hit_on_miss", 24);
    r.stats.set("memo.l0_lookups_on_miss", 30);
    r.stats.set("memo.accelerated_misses", 27);
    r.stats.set("dram.total", 250);
    r.stats.set("tlb.misses", 10);
    EXPECT_DOUBLE_EQ(r.perf(), 2.0);
    EXPECT_DOUBLE_EQ(r.counterMissRate(), 0.3);
    EXPECT_DOUBLE_EQ(r.avgReadLatencyNs(), 50.0);
    EXPECT_DOUBLE_EQ(r.memoHitRateOnMiss(), 0.8);
    EXPECT_DOUBLE_EQ(r.acceleratedMissRate(), 0.9);
    EXPECT_DOUBLE_EQ(r.dramAccesses(), 250.0);
    EXPECT_DOUBLE_EQ(r.tlbMissPerLlcMiss(), 0.1);
}

TEST(SimResultT, EmptyResultIsSafe)
{
    const SimResult r;
    EXPECT_DOUBLE_EQ(r.perf(), 0.0);
    EXPECT_DOUBLE_EQ(r.counterMissRate(), 0.0);
    EXPECT_DOUBLE_EQ(r.memoHitRateAll(), 0.0);
}

TEST(SuiteRunner, MismatchedTraceShapeThrows)
{
    // A silent trace_records/seed mismatch used to make every config
    // after the first simulate a trace it did not ask for.
    std::vector<NamedConfig> configs = {
        nonSecureConfig(SimMode::Timing),
        rmccConfig(SimMode::Timing),
    };
    configs[1].cfg.trace_records = configs[0].cfg.trace_records / 2;
    const auto *w = wl::findWorkload("omnetpp");
    EXPECT_THROW(runWorkload(*w, configs), std::invalid_argument);
    EXPECT_THROW(runSuite(configs), std::invalid_argument);

    configs[1].cfg.trace_records = configs[0].cfg.trace_records;
    configs[1].cfg.seed = configs[0].cfg.seed + 1;
    EXPECT_THROW(runWorkload(*w, configs), std::invalid_argument);

    EXPECT_THROW(runSuite({}), std::invalid_argument);
}

TEST(SuiteRunner, ParallelMatchesSerialBitForBit)
{
    // The whole point of the parallel runner: RMCC_JOBS only changes
    // wall-clock, never results.  Every stat of every (workload, config)
    // cell must agree between a 4-job and a 1-job run.
    std::vector<NamedConfig> configs = {
        nonSecureConfig(SimMode::Timing),
        rmccConfig(SimMode::Timing),
    };
    for (auto &nc : configs) {
        nc.cfg.trace_records = 20000;
        nc.cfg.warmup_records = 10000;
    }

    setenv("RMCC_JOBS", "4", 1);
    EXPECT_EQ(suiteJobs(), 4u);
    const std::vector<SuiteRow> parallel = runSuite(configs);
    setenv("RMCC_JOBS", "1", 1);
    EXPECT_EQ(suiteJobs(), 1u);
    const std::vector<SuiteRow> serial = runSuite(configs);
    unsetenv("RMCC_JOBS");

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t w = 0; w < serial.size(); ++w) {
        EXPECT_EQ(parallel[w].workload, serial[w].workload);
        ASSERT_EQ(parallel[w].results.size(), serial[w].results.size());
        for (std::size_t c = 0; c < serial[w].results.size(); ++c) {
            const SimResult &p = parallel[w].results[c];
            const SimResult &s = serial[w].results[c];
            EXPECT_EQ(p.config_label, s.config_label);
            EXPECT_EQ(p.instructions, s.instructions);
            EXPECT_EQ(p.elapsed_ns, s.elapsed_ns);
            EXPECT_EQ(p.stats.all(), s.stats.all())
                << parallel[w].workload << " / " << p.config_label;
        }
    }
}

TEST(SuiteRunner, BatchAndSimdPathsAreBitIdentical)
{
    // The guard behind every fig03-fig22 / secIV CSV: the batched crypto
    // pipeline and the AVX2 cache probes are throughput-only — the same
    // cells replayed with both accelerations disabled must produce every
    // stat, instruction count, and cycle count bit for bit.
    std::vector<NamedConfig> configs = {
        nonSecureConfig(SimMode::Timing),
        rmccConfig(SimMode::Timing),
    };
    for (auto &nc : configs) {
        nc.cfg.trace_records = 20000;
        nc.cfg.warmup_records = 10000;
    }
    const auto *w = wl::findWorkload("omnetpp");

    const char *prev_batch = std::getenv("RMCC_CRYPTO_BATCH");
    const std::string saved = prev_batch != nullptr ? prev_batch : "";

    setenv("RMCC_CRYPTO_BATCH", "off", 1);
    crypto::reresolveCryptoDispatch();
    cache::SetAssocCache::setSimdProbes(false);
    const SuiteRow scalar = runWorkload(*w, configs);

    if (prev_batch != nullptr)
        setenv("RMCC_CRYPTO_BATCH", saved.c_str(), 1);
    else
        unsetenv("RMCC_CRYPTO_BATCH");
    crypto::reresolveCryptoDispatch();
    cache::SetAssocCache::setSimdProbes(
        crypto::detectCpuFeatures().avx2);
    const SuiteRow fast = runWorkload(*w, configs);

    ASSERT_EQ(fast.results.size(), scalar.results.size());
    for (std::size_t c = 0; c < scalar.results.size(); ++c) {
        const SimResult &f = fast.results[c];
        const SimResult &s = scalar.results[c];
        EXPECT_EQ(f.config_label, s.config_label);
        EXPECT_EQ(f.instructions, s.instructions);
        EXPECT_EQ(f.elapsed_ns, s.elapsed_ns);
        EXPECT_EQ(f.stats.all(), s.stats.all()) << f.config_label;
    }
}

TEST(SuiteRunner, ProgressReportsEveryWorkloadOnce)
{
    std::vector<NamedConfig> configs = {nonSecureConfig(SimMode::Timing)};
    configs[0].cfg.trace_records = 5000;
    configs[0].cfg.warmup_records = 2500;
    setenv("RMCC_JOBS", "4", 1);
    std::mutex mutex;
    std::vector<std::string> reported;
    runSuite(configs, [&](const std::string &w) {
        std::lock_guard<std::mutex> lock(mutex);
        reported.push_back(w);
    });
    unsetenv("RMCC_JOBS");
    std::vector<std::string> expected;
    for (const auto &w : wl::workloadSuite())
        expected.push_back(w.name);
    std::sort(reported.begin(), reported.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(reported, expected);
}

namespace
{

/** RAII installer for the per-cell fault hook (always restores empty). */
struct HookGuard
{
    explicit HookGuard(
        std::function<void(const std::string &, const std::string &)> h)
    {
        detail::cell_fault_hook = std::move(h);
    }
    ~HookGuard() { detail::cell_fault_hook = nullptr; }
};

std::vector<NamedConfig>
tinyConfigs()
{
    std::vector<NamedConfig> configs = {
        nonSecureConfig(SimMode::Timing),
        rmccConfig(SimMode::Timing),
    };
    for (auto &nc : configs) {
        nc.cfg.trace_records = 5000;
        nc.cfg.warmup_records = 2500;
    }
    return configs;
}

} // namespace

TEST(SuiteRunner, FailingCellIsIsolatedAndRecorded)
{
    // One (workload, config) cell that always throws must not take the
    // suite down: every other cell still produces results, and the
    // broken cell's status carries the error and the attempt count.
    setenv("RMCC_CELL_RETRIES", "2", 1);
    const std::vector<NamedConfig> configs = tinyConfigs();
    HookGuard guard([](const std::string &w, const std::string &label) {
        if (w == "omnetpp" && label == "RMCC")
            throw std::runtime_error("induced cell fault");
    });
    for (unsigned jobs : {1u, 4u}) {
        setenv("RMCC_JOBS", std::to_string(jobs).c_str(), 1);
        const std::vector<SuiteRow> rows = runSuite(configs);
        ASSERT_EQ(rows.size(), wl::workloadSuite().size());
        std::size_t failed = 0;
        for (const SuiteRow &row : rows) {
            ASSERT_EQ(row.statuses.size(), configs.size());
            for (std::size_t c = 0; c < configs.size(); ++c) {
                const CellStatus &st = row.statuses[c];
                if (row.workload == "omnetpp" &&
                    configs[c].label == "RMCC") {
                    ++failed;
                    EXPECT_EQ(st.state, CellState::Failed);
                    EXPECT_EQ(st.attempts, 3u); // 1 + RMCC_CELL_RETRIES
                    EXPECT_NE(st.error.find("induced cell fault"),
                              std::string::npos);
                    EXPECT_FALSE(row.allOk());
                    // The placeholder result keeps the grid rectangular.
                    EXPECT_EQ(row.results[c].config_label, "RMCC");
                    EXPECT_EQ(row.results[c].instructions, 0u);
                } else {
                    EXPECT_TRUE(st.ok())
                        << row.workload << "/" << configs[c].label
                        << ": " << st.error;
                    EXPECT_EQ(st.attempts, 1u);
                    EXPECT_GT(row.results[c].instructions, 0u);
                }
            }
        }
        EXPECT_EQ(failed, 1u) << "jobs=" << jobs;
    }
    unsetenv("RMCC_JOBS");
    unsetenv("RMCC_CELL_RETRIES");
}

TEST(SuiteRunner, TransientCellFaultIsRetriedToSuccess)
{
    setenv("RMCC_CELL_RETRIES", "3", 1);
    setenv("RMCC_JOBS", "1", 1); // serial: the hook counter is unguarded
    const std::vector<NamedConfig> configs = tinyConfigs();
    int throws_left = 2;
    HookGuard guard([&](const std::string &, const std::string &) {
        if (throws_left > 0) {
            --throws_left;
            throw std::runtime_error("transient");
        }
    });
    const auto *w = wl::findWorkload("omnetpp");
    const SuiteRow row = runWorkload(*w, configs);
    ASSERT_EQ(row.statuses.size(), 2u);
    // With jobs unset the serial path runs cells in order: the first
    // cell eats both transient faults.
    EXPECT_TRUE(row.allOk());
    const unsigned total_attempts =
        row.statuses[0].attempts + row.statuses[1].attempts;
    EXPECT_EQ(total_attempts, 4u); // 2 wasted + 2 productive
    EXPECT_TRUE(row.statuses[0].retried() || row.statuses[1].retried());
    for (std::size_t c = 0; c < 2; ++c)
        EXPECT_GT(row.results[c].instructions, 0u);
    unsetenv("RMCC_JOBS");
    unsetenv("RMCC_CELL_RETRIES");
}

TEST(SuiteRunner, ZeroRetriesFailsFast)
{
    setenv("RMCC_CELL_RETRIES", "0", 1);
    const std::vector<NamedConfig> configs = tinyConfigs();
    HookGuard guard([](const std::string &, const std::string &) {
        throw std::runtime_error("always");
    });
    const auto *w = wl::findWorkload("omnetpp");
    const SuiteRow row = runWorkload(*w, configs);
    for (const CellStatus &st : row.statuses) {
        EXPECT_EQ(st.state, CellState::Failed);
        EXPECT_EQ(st.attempts, 1u);
        EXPECT_FALSE(st.retried());
    }
    unsetenv("RMCC_CELL_RETRIES");
}

TEST(SuiteRunner, GarbageCellRetriesEnvThrows)
{
    // Runner knobs are caller contract, not cell behavior: garbage must
    // abort loudly instead of being swallowed as a cell failure.
    setenv("RMCC_CELL_RETRIES", "banana", 1);
    const std::vector<NamedConfig> configs = tinyConfigs();
    const auto *w = wl::findWorkload("omnetpp");
    EXPECT_THROW(runWorkload(*w, configs), std::runtime_error);
    unsetenv("RMCC_CELL_RETRIES");
}

TEST(SuiteRunner, TimeoutAbortsCellCooperatively)
{
    // RMCC_CELL_TIMEOUT_MS is enforced, not advisory: the simulators poll
    // the cell's cancellation token between records, so an overrunning
    // cell is aborted mid-flight (placeholder result), flagged TimedOut,
    // and never retried.  The hook burns the whole budget and then polls
    // once — exactly what the record loops do — so the abort fires
    // deterministically regardless of how fast the cell would have run.
    setenv("RMCC_CELL_TIMEOUT_MS", "5", 1);
    setenv("RMCC_CELL_RETRIES", "3", 1);
    const std::vector<NamedConfig> configs = tinyConfigs();
    HookGuard guard([](const std::string &, const std::string &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        util::pollCancel();
    });
    const auto *w = wl::findWorkload("omnetpp");
    const SuiteRow row = runWorkload(*w, configs);
    unsetenv("RMCC_CELL_RETRIES");
    unsetenv("RMCC_CELL_TIMEOUT_MS");
    for (std::size_t c = 0; c < row.statuses.size(); ++c) {
        EXPECT_EQ(row.statuses[c].state, CellState::TimedOut);
        // A timeout is not retried: rerunning only doubles the overrun.
        EXPECT_EQ(row.statuses[c].attempts, 1u);
        EXPECT_EQ(row.results[c].instructions, 0u); // aborted: placeholder
        EXPECT_NE(row.statuses[c].error.find("RMCC_CELL_TIMEOUT_MS"),
                  std::string::npos);
        ASSERT_EQ(row.statuses[c].attempt_errors.size(), 1u);
        EXPECT_EQ(row.statuses[c].attempt_errors[0],
                  row.statuses[c].error);
    }
    EXPECT_FALSE(row.allOk());
    EXPECT_STREQ(cellStateName(row.statuses[0].state), "timed-out");
}

TEST(SuiteRunner, StatusesReportCleanRuns)
{
    const std::vector<NamedConfig> configs = tinyConfigs();
    const auto *w = wl::findWorkload("omnetpp");
    const SuiteRow row = runWorkload(*w, configs);
    ASSERT_EQ(row.statuses.size(), configs.size());
    EXPECT_TRUE(row.allOk());
    for (const CellStatus &st : row.statuses) {
        EXPECT_STREQ(cellStateName(st.state), "ok");
        EXPECT_EQ(st.attempts, 1u);
        EXPECT_TRUE(st.error.empty());
        EXPECT_GT(st.elapsed_ms, 0.0);
    }
}

TEST(SuiteRunner, SharedTraceAcrossConfigs)
{
    // runWorkload generates one trace and feeds every configuration the
    // same instruction stream, so normalized comparisons are apples to
    // apples: instruction counts must agree across configs.
    std::vector<NamedConfig> configs = {
        nonSecureConfig(SimMode::Timing),
        rmccConfig(SimMode::Timing),
    };
    for (auto &nc : configs) {
        nc.cfg.trace_records = 60000;
        nc.cfg.warmup_records = 30000;
    }
    const auto *w = wl::findWorkload("omnetpp");
    const SuiteRow row = runWorkload(*w, configs);
    ASSERT_EQ(row.results.size(), 2u);
    EXPECT_EQ(row.results[0].instructions, row.results[1].instructions);
    EXPECT_EQ(row.workload, "omnetpp");
    EXPECT_EQ(row.results[0].config_label, "non-secure");
    EXPECT_EQ(row.results[1].config_label, "RMCC");
}
