/**
 * @file
 * Fault-injection subsystem tests: the plan vocabulary, fault-free
 * oracle round trips, the detection matrix (zero silent corruptions
 * across schemes and OTP constructions), the deliberately weakened
 * oracle (nonzero silent — the harness can fail), counter-overflow
 * edges verified through the oracle, and the functional-sim
 * integration path.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "crypto/dispatch.hpp"
#include "dram/ddr4.hpp"
#include "fault/campaign.hpp"
#include "mc/secure_mc.hpp"
#include "sim/functional_sim.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"
#include "workloads/registry.hpp"

using namespace rmcc;
using namespace rmcc::fault;

TEST(FaultPlan, ComboValidityMatchesThreatModel)
{
    // Ciphertext has no ordered value: rollback is meaningless there.
    EXPECT_FALSE(comboValid(FaultSite::DataCiphertext,
                            FaultKind::CounterRollback));
    // A stored MAC can only be flipped (it is replaced wholesale with
    // its block on replay, which the data-site replay already covers).
    EXPECT_TRUE(comboValid(FaultSite::DataMac, FaultKind::BitFlip));
    EXPECT_FALSE(comboValid(FaultSite::DataMac, FaultKind::StaleReplay));
    // Counter sites admit the full kind set.
    for (FaultKind k : {FaultKind::BitFlip, FaultKind::BurstFlip,
                        FaultKind::CounterRollback, FaultKind::StaleReplay}) {
        EXPECT_TRUE(comboValid(FaultSite::L0Counter, k));
        EXPECT_TRUE(comboValid(FaultSite::TreeNode, k));
    }
    // Memo entries are single values consulted on a hit.
    EXPECT_TRUE(comboValid(FaultSite::MemoEntry, FaultKind::BitFlip));
    EXPECT_FALSE(comboValid(FaultSite::MemoEntry, FaultKind::StaleReplay));

    const std::vector<FaultCombo> combos = allCombos();
    EXPECT_GE(combos.size(), 12u);
    for (const FaultCombo &c : combos)
        EXPECT_TRUE(comboValid(c.site, c.kind));
}

TEST(FaultPlan, StatsAggregateByOutcome)
{
    FaultStats s;
    FaultRecord r;
    r.combo = {FaultSite::L0Counter, FaultKind::BitFlip};
    r.outcome = FaultOutcome::Detected;
    s.add(r);
    s.add(r);
    r.outcome = FaultOutcome::Masked;
    s.add(r);
    EXPECT_EQ(s.injected, 3u);
    EXPECT_EQ(s.detected(), 2u);
    EXPECT_EQ(s.masked(), 1u);
    EXPECT_EQ(s.silent(), 0u);

    FaultStats other;
    r.outcome = FaultOutcome::Silent;
    other.add(r);
    s.merge(other);
    EXPECT_EQ(s.injected, 4u);
    EXPECT_EQ(s.silent(), 1u);
}

namespace
{

/**
 * Drive a seeded Zipf read/write stream through a freshly built secure
 * stack with the campaign attached — the inline equivalent of
 * runFaultSweep() that also exposes the tree for overflow assertions.
 */
FaultStats
driveSweep(ctr::SchemeKind scheme, const FaultPlan &plan,
           const SweepConfig &cfg, ctr::IntegrityTree &tree)
{
    util::Rng rng(cfg.seed);
    if (cfg.init_mean > 0)
        tree.randomInit(rng, cfg.init_mean);
    core::RmccConfig rc;
    rc.enabled = cfg.rmcc;
    core::RmccEngine engine(rc, tree);
    dram::Ddr4 dram;
    mc::McConfig mc_cfg;
    mc_cfg.counter_cache_bytes = cfg.counter_cache_bytes;
    mc::SecureMc mc(mc_cfg, tree, engine, dram);

    OracleConfig ocfg;
    ocfg.split_otp = cfg.split_otp;
    ocfg.mac_bits = cfg.mac_bits;
    FaultCampaign campaign(plan, ocfg);
    campaign.bind(tree, &engine);
    mc.attachObserver(campaign.oracle());

    const util::ZipfSampler zipf(cfg.hot_blocks, 0.8);
    double now = 0.0;
    std::uint64_t budget =
        plan.injections * std::max<std::uint64_t>(1, plan.gap_records) * 4 +
        4096;
    while (!campaign.done() && budget-- > 0) {
        const addr::BlockId blk = zipf(rng);
        const bool write = campaign.oracle()->writtenBlocks().empty() ||
                           rng.nextBool(cfg.write_fraction);
        if (write)
            now = std::max(now, mc.write(addr::blockBase(blk), now));
        else
            mc.read(addr::blockBase(blk), now);
        now += 10.0;
        campaign.afterRecord();
    }
    mc.attachObserver(nullptr);
    (void)scheme;
    return campaign.stats();
}

} // namespace

TEST(DetectionOracle, FaultFreeTrafficAlwaysVerifies)
{
    // No injector: every read must re-derive a clean verdict even as
    // counters overflow, relevel, and memo hits serve reads.
    ctr::IntegrityTree tree(ctr::SchemeKind::Morphable, 1 << 12);
    util::Rng rng(7);
    tree.randomInit(rng, 64);
    core::RmccConfig rc;
    rc.enabled = true;
    core::RmccEngine engine(rc, tree);
    dram::Ddr4 dram;
    mc::McConfig mc_cfg;
    mc_cfg.counter_cache_bytes = 2048;
    mc::SecureMc mc(mc_cfg, tree, engine, dram);

    OracleConfig ocfg;
    DetectionOracle oracle(ocfg, tree);
    mc.attachObserver(&oracle);
    const util::ZipfSampler zipf(1 << 10, 0.8);
    double now = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const addr::BlockId blk = zipf(rng);
        if (oracle.writtenBlocks().empty() || rng.nextBool(0.4))
            now = std::max(now, mc.write(addr::blockBase(blk), now));
        else
            mc.read(addr::blockBase(blk), now);
        now += 10.0;
    }
    mc.attachObserver(nullptr);
    EXPECT_GT(oracle.stats().reads_verified, 1000u);
    EXPECT_EQ(oracle.stats().unexpected_failures, 0u);
}

TEST(DetectionOracle, MutatorsRejectNoOpRequests)
{
    ctr::IntegrityTree tree(ctr::SchemeKind::SgxMonolithic, 1 << 10);
    OracleConfig ocfg;
    DetectionOracle oracle(ocfg, tree);
    // Nothing written yet: nothing to perturb or replay.
    EXPECT_FALSE(oracle.flipCiphertext(5, 0, 1));
    EXPECT_FALSE(oracle.flipMac(5, 0, 1));
    EXPECT_FALSE(oracle.replayData(5));
    EXPECT_FALSE(oracle.hasDistinctPrevData(5));
}

TEST(FaultSweep, DetectionMatrixHasZeroSilentCorruptions)
{
    // The acceptance sweep: >= 10,000 seeded injections across
    // {SGX monolithic, SC-64, Morphable} x {baseline OTP, split OTP},
    // memoization live, must classify every fault as detected or
    // (honestly) masked — never silent, never an unexpected failure.
    const ctr::SchemeKind schemes[] = {ctr::SchemeKind::SgxMonolithic,
                                       ctr::SchemeKind::SC64,
                                       ctr::SchemeKind::Morphable};
    FaultStats total;
    for (ctr::SchemeKind scheme : schemes) {
        for (bool split : {false, true}) {
            FaultPlan plan;
            plan.injections = 1700;
            plan.seed = 0x5eed ^ (static_cast<unsigned>(scheme) << 8) ^
                        (split ? 1 : 0);
            plan.gap_records = 4;
            SweepConfig cfg;
            cfg.scheme = scheme;
            cfg.split_otp = split;
            cfg.seed = 11 + static_cast<unsigned>(scheme);
            const FaultStats s = runFaultSweep(plan, cfg);
            EXPECT_EQ(s.injected, plan.injections);
            EXPECT_EQ(s.silent(), 0u)
                << "silent corruption under scheme "
                << ctr::schemeKindName(scheme)
                << (split ? " split OTP" : " baseline OTP");
            EXPECT_EQ(s.unexpected_failures, 0u);
            EXPECT_GT(s.detected(), s.injected / 2);
            total.merge(s);
        }
    }
    EXPECT_GE(total.injected, 10000u);
    EXPECT_EQ(total.silent(), 0u);
}

TEST(FaultSweep, WeakenedOracleReportsSilentCorruptions)
{
    // Truncate the compared MAC to 8 bits: flips now collide with
    // probability ~2^-8, so a correct harness MUST report nonzero
    // silent corruptions — proving the zero above is a measurement,
    // not a tautology.
    FaultPlan plan;
    plan.injections = 2000;
    plan.gap_records = 4;
    SweepConfig cfg;
    cfg.mac_bits = 8;
    const FaultStats s = runFaultSweep(plan, cfg);
    EXPECT_EQ(s.injected, plan.injections);
    EXPECT_GT(s.silent(), 0u)
        << "an 8-bit MAC cannot catch everything; the harness is "
           "not actually measuring detection";
}

TEST(FaultSweep, Sc64MinorSaturationStaysDetected)
{
    // Hammer a tiny hot set so 7-bit SC-64 minors saturate and force
    // relevels mid-campaign; verification must ride through every
    // rebase with zero silent and zero unexpected failures.
    FaultPlan plan;
    plan.injections = 400;
    plan.gap_records = 4;
    SweepConfig cfg;
    cfg.scheme = ctr::SchemeKind::SC64;
    cfg.hot_blocks = 64;
    cfg.write_fraction = 0.9;
    cfg.init_mean = 120; // minors start near the 7-bit bound
    ctr::IntegrityTree tree(cfg.scheme, cfg.data_blocks);
    const FaultStats s = driveSweep(cfg.scheme, plan, cfg, tree);
    EXPECT_GT(tree.totalOverflows(), 0u)
        << "traffic never saturated a minor; the edge was not exercised";
    EXPECT_EQ(s.silent(), 0u);
    EXPECT_EQ(s.unexpected_failures, 0u);
    EXPECT_GT(s.detected(), 0u);
}

TEST(FaultSweep, MorphableRebaseAtMorphBoundaryStaysDetected)
{
    // Spread writes over a whole morphable block's 128 entities: the
    // non-zero-minor count outgrows every bitmap format, forcing
    // rebases exactly at the morph boundary.
    FaultPlan plan;
    plan.injections = 400;
    plan.gap_records = 4;
    SweepConfig cfg;
    cfg.scheme = ctr::SchemeKind::Morphable;
    cfg.hot_blocks = 128;
    cfg.write_fraction = 0.9;
    cfg.init_mean = 48;
    ctr::IntegrityTree tree(cfg.scheme, cfg.data_blocks);
    const FaultStats s = driveSweep(cfg.scheme, plan, cfg, tree);
    EXPECT_GT(tree.totalOverflows(), 0u)
        << "traffic never forced a rebase; the edge was not exercised";
    EXPECT_EQ(s.silent(), 0u);
    EXPECT_EQ(s.unexpected_failures, 0u);
    EXPECT_GT(s.detected(), 0u);
}

TEST(FaultSweep, FunctionalSimIntegration)
{
    // The 4-arg runFunctional threads the campaign through a full
    // simulated system (TLB, cache hierarchy, preconditioning): the
    // oracle sees only genuine LLC-miss traffic and still classifies
    // every injected fault with zero silent.
    // canneal is write-heavy, so LLC writebacks (the oracle's tracked
    // blocks) start early; mcf's read-streaming pricing pass would give
    // the campaign nothing to perturb in a trace this short.
    const wl::Workload *w = wl::findWorkload("canneal");
    ASSERT_NE(w, nullptr);
    sim::SystemConfig cfg = sim::SystemConfig::functionalDefault();
    cfg.trace_records = 30000;
    cfg.warmup_records = 5000;
    cfg.rmcc = true;
    // Shrink the hierarchy so this short trace actually spills to the
    // memory controller — no LLC misses, nothing for the oracle to see.
    cfg.l1 = {16 * 1024, 8, 2.0};
    cfg.l2 = {32 * 1024, 8, 4.0};
    cfg.llc = {64 * 1024, 16, 17.0};
    const trace::TraceBuffer trace = wl::generateTrace(*w, cfg.trace_records, 1);

    FaultPlan plan;
    plan.injections = 150;
    plan.gap_records = 16;
    OracleConfig ocfg;
    FaultCampaign campaign(plan, ocfg);
    const sim::SimResult res =
        sim::runFunctional(w->name, trace, cfg, &campaign);
    EXPECT_GT(res.instructions, 0u);
    const FaultStats &s = campaign.stats();
    EXPECT_EQ(s.injected, plan.injections);
    EXPECT_GT(s.reads_verified, 0u);
    EXPECT_EQ(s.silent(), 0u);
    EXPECT_EQ(s.unexpected_failures, 0u);
    EXPECT_GT(s.detected(), 0u);
    // Stats survive the rig teardown (the campaign outlives the stack).
    EXPECT_EQ(campaign.stats().injected, plan.injections);
}

TEST(FaultSweep, HwBatchCryptoClassifiesMatrixIdentically)
{
    // Detection verdicts are a crypto-functional property: routing the
    // MAC/OTP kernels through the pipelined AES-NI / PCLMULQDQ batch
    // path must classify the injection matrix cell for cell like the
    // scalar software kernels — same (site, kind, outcome) counts, not
    // just the same aggregates.
    const crypto::CpuFeatures feat = crypto::detectCpuFeatures();
    if (!feat.aesni || !feat.pclmul)
        GTEST_SKIP() << "no AES-NI/PCLMULQDQ on this host";

    FaultPlan plan;
    plan.injections = 1500;
    plan.gap_records = 4;
    plan.seed = 0x5eed;
    SweepConfig cfg;
    cfg.seed = 23;

    const char *prev_impl = std::getenv("RMCC_CRYPTO_IMPL");
    const char *prev_batch = std::getenv("RMCC_CRYPTO_BATCH");
    const std::string saved_impl = prev_impl != nullptr ? prev_impl : "";
    const std::string saved_batch = prev_batch != nullptr ? prev_batch : "";

    setenv("RMCC_CRYPTO_IMPL", "sw", 1);
    setenv("RMCC_CRYPTO_BATCH", "off", 1);
    crypto::reresolveCryptoDispatch();
    const FaultStats scalar = runFaultSweep(plan, cfg);

    setenv("RMCC_CRYPTO_IMPL", "hw", 1);
    setenv("RMCC_CRYPTO_BATCH", "on", 1);
    crypto::reresolveCryptoDispatch();
    const FaultStats hw = runFaultSweep(plan, cfg);

    if (prev_impl != nullptr)
        setenv("RMCC_CRYPTO_IMPL", saved_impl.c_str(), 1);
    else
        unsetenv("RMCC_CRYPTO_IMPL");
    if (prev_batch != nullptr)
        setenv("RMCC_CRYPTO_BATCH", saved_batch.c_str(), 1);
    else
        unsetenv("RMCC_CRYPTO_BATCH");
    crypto::reresolveCryptoDispatch();

    EXPECT_EQ(hw.injected, scalar.injected);
    EXPECT_EQ(hw.reads_verified, scalar.reads_verified);
    EXPECT_EQ(hw.unexpected_failures, scalar.unexpected_failures);
    EXPECT_EQ(scalar.silent(), 0u);
    EXPECT_EQ(hw.silent(), 0u);
    for (unsigned si = 0; si < kSiteCount; ++si)
        for (unsigned ki = 0; ki < kKindCount; ++ki)
            for (unsigned o = 0; o < 3; ++o)
                EXPECT_EQ(hw.counts[si][ki][o], scalar.counts[si][ki][o])
                    << siteName(static_cast<FaultSite>(si)) << "/"
                    << kindName(static_cast<FaultKind>(ki))
                    << " outcome " << o;
}
