/**
 * @file
 * Out-of-core trace engine tests: on-disk round-trip and validation
 * (header checksum, truncation, corruption, fingerprint), windowed
 * replay equivalence against the in-RAM buffer for every workload
 * generator, the spill cache's reuse/regenerate behavior, and the
 * spill + journal/resume interaction (a partially journaled spilled
 * suite must resume bit-identical to an uninterrupted in-RAM run).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/experiments.hpp"
#include "sim/functional_sim.hpp"
#include "sim/timing_sim.hpp"
#include "trace/trace_buffer.hpp"
#include "trace/trace_file.hpp"
#include "trace/trace_plan.hpp"
#include "trace/trace_reader.hpp"
#include "workloads/registry.hpp"

using namespace rmcc;

namespace
{

/** Fresh per-test file path under the gtest temp dir. */
std::string
tmpPath(const std::string &leaf)
{
    const std::string p = testing::TempDir() + leaf;
    std::remove(p.c_str());
    return p;
}

/** Stream one workload into a finalized trace file; returns its path. */
std::string
writeWorkloadFile(const wl::Workload &w, std::uint64_t records,
                  std::uint64_t seed, const std::string &leaf,
                  std::uint64_t chunk_records = trace::kTraceChunkRecords)
{
    const std::string path = tmpPath(leaf);
    trace::TraceFileWriter writer(
        path, records, trace::traceFingerprint(w.name, records, seed),
        chunk_records);
    w.generate(writer, seed);
    writer.finalize();
    return path;
}

/** Concatenate every window a source serves. */
std::vector<trace::Record>
drain(const trace::TraceSource &src)
{
    std::vector<trace::Record> out;
    const auto cur = src.cursor();
    for (trace::TraceWindow w = cur->next(); w.count != 0; w = cur->next())
        out.insert(out.end(), w.data, w.data + w.count);
    return out;
}

/** Bit-exact record-stream equality. */
void
expectSameStream(const std::vector<trace::Record> &a,
                 const std::vector<trace::Record> &b)
{
    ASSERT_EQ(a.size(), b.size());
    if (!a.empty()) {
        EXPECT_EQ(std::memcmp(a.data(), b.data(),
                              a.size() * sizeof(trace::Record)),
                  0);
    }
}

/** XOR one byte of a file in place. */
void
flipByte(const std::string &path, std::uint64_t offset)
{
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << path;
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
}

/** RAII env-var setter that restores the prior value. */
struct EnvGuard
{
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        old_ = had_ ? old : "";
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~EnvGuard()
    {
        if (had_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }
    std::string name_, old_;
    bool had_ = false;
};

/** Small two-config timing grid (as the journal tests use). */
std::vector<sim::NamedConfig>
spillSuiteConfigs()
{
    std::vector<sim::NamedConfig> configs = {
        sim::nonSecureConfig(sim::SimMode::Timing),
        sim::rmccConfig(sim::SimMode::Timing),
    };
    for (auto &nc : configs) {
        nc.cfg.trace_records = 5000;
        nc.cfg.warmup_records = 2500;
    }
    return configs;
}

/** RAII installer for the per-cell fault hook (always restores empty). */
struct HookGuard
{
    explicit HookGuard(
        std::function<void(const std::string &, const std::string &)> h)
    {
        sim::detail::cell_fault_hook = std::move(h);
    }
    ~HookGuard() { sim::detail::cell_fault_hook = nullptr; }
};

} // namespace

TEST(SpillEnv, StrictParsing)
{
    {
        EnvGuard g1("RMCC_TRACE_SPILL", nullptr);
        EnvGuard g2("RMCC_TRACE_DIR", nullptr);
        const trace::SpillConfig sc = trace::spillConfigFromEnv();
        EXPECT_EQ(sc.mode, trace::SpillConfig::Mode::Off);
        EXPECT_FALSE(sc.shouldSpill(1ULL << 40));
    }
    {
        EnvGuard g("RMCC_TRACE_SPILL", "on");
        EXPECT_EQ(trace::spillConfigFromEnv().mode,
                  trace::SpillConfig::Mode::On);
    }
    {
        EnvGuard g("RMCC_TRACE_SPILL", "sometimes");
        EXPECT_THROW(trace::spillConfigFromEnv(), std::runtime_error);
    }
    {
        EnvGuard g1("RMCC_TRACE_SPILL", "auto");
        EnvGuard g2("RMCC_TRACE_WINDOW_RECORDS", "banana");
        EXPECT_THROW(trace::spillConfigFromEnv(), std::runtime_error);
    }
}

TEST(TraceFile, RoundTripPreservesRecordsAndTotals)
{
    const wl::Workload &w = wl::workloadSuite().front();
    constexpr std::uint64_t kRecords = 5000, kSeed = 7;
    const trace::TraceBuffer ram = wl::generateTrace(w, kRecords, kSeed);
    const std::string path =
        writeWorkloadFile(w, kRecords, kSeed, "rmcc_trc_roundtrip");

    const trace::TraceFileReader reader(
        path, 0, trace::traceFingerprint(w.name, kRecords, kSeed));
    EXPECT_EQ(reader.size(), ram.size());
    EXPECT_EQ(reader.totalInstructions(), ram.totalInstructions());
    EXPECT_EQ(reader.writes(), ram.writes());
    EXPECT_EQ(reader.dropped(), ram.dropped());
    EXPECT_EQ(reader.distinctBlocks(), ram.distinctBlocks());
    expectSameStream(drain(reader), drain(ram));
    std::remove(path.c_str());
}

TEST(TraceFile, WindowedCursorServesLookaheadAcrossBoundaries)
{
    const wl::Workload &w = wl::workloadSuite().front();
    constexpr std::uint64_t kRecords = 5000, kSeed = 7, kWindow = 700;
    const std::string path =
        writeWorkloadFile(w, kRecords, kSeed, "rmcc_trc_windows");
    const trace::TraceFileReader reader(path, kWindow);
    EXPECT_EQ(reader.windowRecords(), kWindow);
    EXPECT_EQ(reader.windowCount(), (kRecords + kWindow - 1) / kWindow);

    const auto cur = reader.cursor();
    std::uint64_t expect_first = 0;
    std::vector<trace::Record> seen;
    for (trace::TraceWindow win = cur->next(); win.count != 0;
         win = cur->next()) {
        EXPECT_EQ(win.first, expect_first);
        const bool last = win.first + win.count == kRecords;
        EXPECT_EQ(win.count, last ? kRecords - win.first : kWindow);
        if (last) {
            EXPECT_EQ(win.ahead, nullptr);
        } else {
            // `ahead` must be the first record of the next window.
            ASSERT_NE(win.ahead, nullptr);
            EXPECT_EQ(std::memcmp(win.ahead, win.data + win.count,
                                  sizeof(trace::Record)),
                      0);
        }
        seen.insert(seen.end(), win.data, win.data + win.count);
        expect_first += win.count;
    }
    const trace::TraceBuffer ram = wl::generateTrace(w, kRecords, kSeed);
    expectSameStream(seen, drain(ram));

    // The reader's cursor reports I/O stats; the buffer's does not.
    EXPECT_NE(reader.cursor()->ioStats(), nullptr);
    EXPECT_EQ(ram.cursor()->ioStats(), nullptr);
    std::remove(path.c_str());
}

TEST(TraceFile, AbandonedWriterLeavesNoFile)
{
    const std::string path = tmpPath("rmcc_trc_abandoned");
    {
        trace::TraceFileWriter writer(path, 100, 1);
        writer.append(0x1000, false, 3);
        // No finalize(): destructor must unlink the temporary.
    }
    EXPECT_FALSE(std::filesystem::exists(path));
    bool tmp_left = false;
    for (const auto &e :
         std::filesystem::directory_iterator(testing::TempDir()))
        if (e.path().string().find("rmcc_trc_abandoned.tmp.") !=
            std::string::npos)
            tmp_left = true;
    EXPECT_FALSE(tmp_left);
}

TEST(TraceFile, TruncatedFileRejected)
{
    const wl::Workload &w = wl::workloadSuite().front();
    const std::string path =
        writeWorkloadFile(w, 3000, 11, "rmcc_trc_truncated");
    const auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full - 8);
    EXPECT_THROW(trace::TraceFileReader{path}, std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFile, CorruptHeaderRejected)
{
    const wl::Workload &w = wl::workloadSuite().front();
    const std::string path =
        writeWorkloadFile(w, 3000, 11, "rmcc_trc_badheader");
    flipByte(path, offsetof(trace::FileHeader, record_count));
    EXPECT_THROW(trace::TraceFileReader{path}, std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFile, CorruptRecordPayloadRejected)
{
    const wl::Workload &w = wl::workloadSuite().front();
    const std::string path =
        writeWorkloadFile(w, 3000, 11, "rmcc_trc_badrecord");
    // One bit anywhere in the record stream must fail a chunk checksum.
    flipByte(path, sizeof(trace::FileHeader) + 1500 * 8 + 3);
    EXPECT_THROW(trace::TraceFileReader{path}, std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFile, WrongFingerprintRejected)
{
    const wl::Workload &w = wl::workloadSuite().front();
    constexpr std::uint64_t kRecords = 3000, kSeed = 11;
    const std::string path =
        writeWorkloadFile(w, kRecords, kSeed, "rmcc_trc_badfp");
    const std::uint64_t fp =
        trace::traceFingerprint(w.name, kRecords, kSeed);
    EXPECT_NO_THROW(trace::TraceFileReader(path, 0, fp));
    EXPECT_THROW(trace::TraceFileReader(path, 0, fp + 1),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFile, PlanTotalsMatchStreamTotals)
{
    const wl::Workload &w = wl::workloadSuite().front();
    constexpr std::uint64_t kRecords = 5000, kSeed = 7, kWindow = 900;
    const std::string path =
        writeWorkloadFile(w, kRecords, kSeed, "rmcc_trc_plan");
    const trace::TraceFileReader reader(path, kWindow);
    const trace::TracePlan *plan = reader.plan();
    ASSERT_NE(plan, nullptr);
    EXPECT_EQ(plan->total_records, kRecords);
    EXPECT_EQ(plan->window_records, kWindow);
    EXPECT_EQ(plan->distinct_blocks, reader.distinctBlocks());
    ASSERT_EQ(plan->windows.size(), reader.windowCount());

    // The per-window first-touch lists partition the global page set.
    std::uint64_t new_pages = 0, list_len = 0;
    for (const trace::WindowPlan &wp : plan->windows) {
        EXPECT_EQ(wp.new_pages, wp.page_list_len);
        EXPECT_EQ(wp.page_list_off, list_len);
        new_pages += wp.new_pages;
        list_len += wp.page_list_len;
    }
    EXPECT_EQ(new_pages, plan->distinct_pages);
    EXPECT_EQ(list_len, plan->first_touch_vaddrs.size());
    std::remove(path.c_str());
}

TEST(TraceFile, FunctionalReplayEquivalentForEveryWorkload)
{
    // Window chosen to NOT divide the trace: several boundary crossings
    // plus a short final window per workload.
    constexpr std::uint64_t kRecords = 4000, kSeed = 3, kWindow = 900;
    sim::NamedConfig nc = sim::rmccConfig(sim::SimMode::Functional);
    nc.cfg.trace_records = kRecords;
    nc.cfg.warmup_records = kRecords / 2;
    for (const wl::Workload &w : wl::workloadSuite()) {
        const trace::TraceBuffer ram =
            wl::generateTrace(w, kRecords, kSeed);
        const std::string path = writeWorkloadFile(
            w, kRecords, kSeed, "rmcc_trc_eq_" + w.name);
        const trace::TraceFileReader reader(path, kWindow);
        const sim::SimResult a = sim::runFunctional(w.name, ram, nc.cfg);
        const sim::SimResult b =
            sim::runFunctional(w.name, reader, nc.cfg);
        EXPECT_EQ(a.stats.all(), b.stats.all()) << w.name;
        std::remove(path.c_str());
    }
}

TEST(TraceFile, TimingReplayEquivalentAcrossWindows)
{
    constexpr std::uint64_t kRecords = 5000, kSeed = 3, kWindow = 1100;
    sim::NamedConfig nc = sim::rmccConfig(sim::SimMode::Timing);
    nc.cfg.trace_records = kRecords;
    nc.cfg.warmup_records = kRecords / 2;
    const wl::Workload &w = wl::workloadSuite().front();
    const trace::TraceBuffer ram = wl::generateTrace(w, kRecords, kSeed);
    const std::string path =
        writeWorkloadFile(w, kRecords, kSeed, "rmcc_trc_timing_eq");
    const trace::TraceFileReader reader(path, kWindow);
    const sim::SimResult a = sim::runTiming(w.name, ram, nc.cfg);
    const sim::SimResult b = sim::runTiming(w.name, reader, nc.cfg);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.elapsed_ns, b.elapsed_ns);
    EXPECT_EQ(a.stats.all(), b.stats.all());
    std::remove(path.c_str());
}

TEST(SpillCache, ReusesValidFileAndRegeneratesCorruptOne)
{
    const std::string dir = tmpPath("rmcc_spill_cache");
    EnvGuard g1("RMCC_TRACE_SPILL", "on");
    EnvGuard g2("RMCC_TRACE_DIR", dir.c_str());
    const wl::Workload &w = wl::workloadSuite().front();
    constexpr std::uint64_t kRecords = 3000, kSeed = 5;

    std::string path;
    std::filesystem::file_time_type first_mtime;
    {
        const wl::TraceHandle h =
            wl::generateTraceHandle(w, kRecords, kSeed);
        ASSERT_TRUE(h.spilled());
        path = h.path();
        ASSERT_TRUE(std::filesystem::exists(path));
        first_mtime = std::filesystem::last_write_time(path);
    }
    {
        // Second generation must reuse the cached file, not rewrite it.
        const wl::TraceHandle h =
            wl::generateTraceHandle(w, kRecords, kSeed);
        ASSERT_TRUE(h.spilled());
        EXPECT_EQ(h.path(), path);
        EXPECT_EQ(std::filesystem::last_write_time(path), first_mtime);
    }
    // A corrupted cache entry must be rejected and regenerated, and the
    // regenerated trace must replay identically to the in-RAM stream.
    flipByte(path, sizeof(trace::FileHeader) + 100 * 8);
    {
        const wl::TraceHandle h =
            wl::generateTraceHandle(w, kRecords, kSeed);
        ASSERT_TRUE(h.spilled());
        const trace::TraceBuffer ram =
            wl::generateTrace(w, kRecords, kSeed);
        expectSameStream(drain(h.source()), drain(ram));
    }
    std::filesystem::remove_all(dir);
}

TEST(SpillJournal, ResumedSpilledSuiteMatchesInRamRun)
{
    // Spill + crash-safety interaction: journal a spilled suite whose
    // last workload's cells all fail (standing in for cells lost to a
    // mid-run SIGTERM — either way they are absent from the journal),
    // then resume with spill still on.  Journaled cells are served
    // bit-exact; missing ones rerun from the cached spill files; the
    // whole grid must equal an uninterrupted *in-RAM* reference run.
    const std::string dir = tmpPath("rmcc_spill_journal_dir");
    const std::string base = tmpPath("rmcc_spill_journal");
    std::remove((base + ".1").c_str());
    const std::vector<sim::NamedConfig> configs = spillSuiteConfigs();
    EnvGuard jobs("RMCC_JOBS", "1");

    std::vector<sim::SuiteRow> reference;
    {
        EnvGuard off("RMCC_TRACE_SPILL", nullptr);
        reference = sim::runSuite(configs);
    }
    for (const sim::SuiteRow &row : reference)
        ASSERT_TRUE(row.allOk()) << row.workload;

    EnvGuard spill("RMCC_TRACE_SPILL", "on");
    EnvGuard spill_dir("RMCC_TRACE_DIR", dir.c_str());
    EnvGuard journal("RMCC_SUITE_JOURNAL", base.c_str());
    const std::string victim = wl::workloadSuite().back().name;
    {
        EnvGuard retries("RMCC_CELL_RETRIES", "0");
        HookGuard guard([&victim](const std::string &w,
                                  const std::string &) {
            if (w == victim)
                throw std::runtime_error("injected crash");
        });
        const std::vector<sim::SuiteRow> partial = sim::runSuite(configs);
        bool victim_failed = false;
        for (const sim::SuiteRow &row : partial)
            if (row.workload == victim && !row.allOk())
                victim_failed = true;
        ASSERT_TRUE(victim_failed) << "hook did not bite";
    }

    // Stage the manifest where this process's next journaled runSuite()
    // will look (invocation-order suffixing), then resume.
    {
        std::ifstream in(base, std::ios::binary);
        ASSERT_TRUE(in.good()) << "journal was not written";
        std::ofstream out(base + ".1", std::ios::binary);
        out << in.rdbuf();
    }
    EnvGuard resume("RMCC_SUITE_RESUME", "1");
    const std::vector<sim::SuiteRow> resumed = sim::runSuite(configs);

    ASSERT_EQ(resumed.size(), reference.size());
    for (std::size_t w = 0; w < reference.size(); ++w) {
        EXPECT_EQ(resumed[w].workload, reference[w].workload);
        ASSERT_TRUE(resumed[w].allOk()) << resumed[w].workload;
        ASSERT_EQ(resumed[w].results.size(),
                  reference[w].results.size());
        for (std::size_t c = 0; c < reference[w].results.size(); ++c) {
            const sim::SimResult &a = reference[w].results[c];
            const sim::SimResult &b = resumed[w].results[c];
            EXPECT_EQ(b.instructions, a.instructions);
            EXPECT_EQ(b.elapsed_ns, a.elapsed_ns);
            EXPECT_EQ(b.stats.all(), a.stats.all())
                << reference[w].workload << " / " << a.config_label;
        }
    }
    std::remove(base.c_str());
    std::remove((base + ".1").c_str());
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Delta-compressed chunks (format v2, RMCC_TRACE_COMPRESS=delta)
// ---------------------------------------------------------------------

TEST(TraceDelta, RoundTripBitIdenticalToRamAndV1)
{
    const wl::Workload &w = wl::workloadSuite().front();
    constexpr std::uint64_t kRecords = 5000, kSeed = 7;
    const trace::TraceBuffer ram = wl::generateTrace(w, kRecords, kSeed);
    const std::uint64_t fp =
        trace::traceFingerprint(w.name, kRecords, kSeed);

    const std::string v1 =
        writeWorkloadFile(w, kRecords, kSeed, "rmcc_trc_delta_v1");
    const std::string v2 = tmpPath("rmcc_trc_delta_v2");
    {
        trace::TraceFileWriter writer(v2, kRecords, fp,
                                      trace::kTraceChunkRecords, true);
        w.generate(writer, kSeed);
        writer.finalize();
    }

    const trace::TraceFileReader plain(v1, 0, fp);
    const trace::TraceFileReader delta(v2, 0, fp);
    EXPECT_EQ(delta.size(), ram.size());
    EXPECT_EQ(delta.totalInstructions(), ram.totalInstructions());
    EXPECT_EQ(delta.writes(), ram.writes());
    EXPECT_EQ(delta.distinctBlocks(), ram.distinctBlocks());
    expectSameStream(drain(delta), drain(ram));
    expectSameStream(drain(delta), drain(plain));
    std::remove(v1.c_str());
    std::remove(v2.c_str());
}

TEST(TraceDelta, WindowedReplayCrossesChunkBoundaries)
{
    // Windows smaller than chunks force the cursor to decode one chunk
    // and serve it across several windows, lookahead included.
    const wl::Workload &w = wl::workloadSuite().front();
    constexpr std::uint64_t kRecords = 5000, kSeed = 7, kWindow = 700;
    const trace::TraceBuffer ram = wl::generateTrace(w, kRecords, kSeed);
    const std::string path = tmpPath("rmcc_trc_delta_windows");
    {
        trace::TraceFileWriter writer(
            path, kRecords,
            trace::traceFingerprint(w.name, kRecords, kSeed), 1024, true);
        w.generate(writer, kSeed);
        writer.finalize();
    }
    const trace::TraceFileReader reader(path, kWindow);
    expectSameStream(drain(reader), drain(ram));
    std::remove(path.c_str());
}

TEST(TraceDelta, SequentialStreamShrinksOnDisk)
{
    // A sequential sweep is the delta encoder's best case: vaddr deltas
    // are one varint byte instead of eight fixed bytes.  The property
    // asserted is the point of the format — the file gets materially
    // smaller, checksums and all.
    constexpr std::uint64_t kRecords = 20000;
    const auto sequential = [](trace::TraceSink &sink) {
        for (std::uint64_t i = 0; i < kRecords; ++i)
            sink.append(0x10000 + i * 64, (i & 7) == 0, 3);
    };
    const std::string v1 = tmpPath("rmcc_trc_seq_v1");
    {
        trace::TraceFileWriter writer(v1, kRecords, 1);
        sequential(writer);
        writer.finalize();
    }
    const std::string v2 = tmpPath("rmcc_trc_seq_v2");
    {
        trace::TraceFileWriter writer(v2, kRecords, 1,
                                      trace::kTraceChunkRecords, true);
        sequential(writer);
        writer.finalize();
    }
    const auto v1_size = std::filesystem::file_size(v1);
    const auto v2_size = std::filesystem::file_size(v2);
    EXPECT_LT(v2_size * 2, v1_size)
        << "delta file " << v2_size << " B vs fixed " << v1_size << " B";
    expectSameStream(drain(trace::TraceFileReader(v2, 0, 1)),
                     drain(trace::TraceFileReader(v1, 0, 1)));
    std::remove(v1.c_str());
    std::remove(v2.c_str());
}

TEST(TraceDelta, CorruptEncodedPayloadRejected)
{
    const wl::Workload &w = wl::workloadSuite().front();
    constexpr std::uint64_t kRecords = 3000, kSeed = 11;
    const std::string path = tmpPath("rmcc_trc_delta_bad");
    {
        trace::TraceFileWriter writer(
            path, kRecords,
            trace::traceFingerprint(w.name, kRecords, kSeed),
            trace::kTraceChunkRecords, true);
        w.generate(writer, kSeed);
        writer.finalize();
    }
    // The chunk checksums cover the ENCODED bytes, so one flipped bit in
    // the varint stream must be caught before any record is decoded.
    flipByte(path, sizeof(trace::FileHeader) + 257);
    EXPECT_THROW(
        {
            const trace::TraceFileReader reader(path);
            drain(reader);
        },
        std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceDelta, CompressEnvStrictParsing)
{
    {
        EnvGuard g("RMCC_TRACE_COMPRESS", nullptr);
        EXPECT_EQ(trace::spillConfigFromEnv().compress,
                  trace::SpillConfig::Compress::Off);
    }
    {
        EnvGuard g("RMCC_TRACE_COMPRESS", "delta");
        EXPECT_EQ(trace::spillConfigFromEnv().compress,
                  trace::SpillConfig::Compress::Delta);
    }
    {
        EnvGuard g("RMCC_TRACE_COMPRESS", "zstd");
        EXPECT_THROW(trace::spillConfigFromEnv(), std::runtime_error);
    }
}

TEST(TraceDelta, FunctionalReplayMatchesRam)
{
    // End to end: a functional run replayed from a delta-compressed
    // spill file must produce the exact counters of the in-RAM run.
    const wl::Workload &w = wl::workloadSuite().front();
    sim::NamedConfig nc = sim::rmccConfig(sim::SimMode::Functional);
    nc.cfg.trace_records = 20000;
    nc.cfg.warmup_records = 10000;
    const trace::TraceBuffer ram =
        wl::generateTrace(w, nc.cfg.trace_records, nc.cfg.seed);
    const std::string path = tmpPath("rmcc_trc_delta_replay");
    {
        trace::TraceFileWriter writer(
            path, nc.cfg.trace_records,
            trace::traceFingerprint(w.name, nc.cfg.trace_records,
                                    nc.cfg.seed),
            4096, true);
        w.generate(writer, nc.cfg.seed);
        writer.finalize();
    }
    const trace::TraceFileReader reader(path, 4096);
    const sim::SimResult a = sim::runFunctional(w.name, ram, nc.cfg);
    const sim::SimResult b = sim::runFunctional(w.name, reader, nc.cfg);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.stats.all(), b.stats.all());
    std::remove(path.c_str());
}
