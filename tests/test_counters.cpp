/**
 * @file
 * Counter-scheme tests: monolithic/SC-64/Morphable semantics, overflow
 * and releveling, min-shift re-encoding, 512-bit packing round trips,
 * the integrity tree, and cross-scheme invariants.
 */
#include <gtest/gtest.h>

#include "counters/monolithic.hpp"
#include "counters/morphable.hpp"
#include "counters/sc64.hpp"
#include "counters/tree.hpp"

using namespace rmcc::ctr;
using rmcc::addr::CounterValue;

TEST(Monolithic, BasicIncrementsNeverOverflow)
{
    MonolithicScheme s(64);
    for (CounterValue v = 1; v <= 100; ++v) {
        const WriteResult r = s.write(7, v);
        EXPECT_FALSE(r.overflow);
        EXPECT_EQ(r.new_value, v);
    }
    EXPECT_EQ(s.read(7), 100u);
    EXPECT_EQ(s.overflows(), 0u);
}

TEST(Monolithic, CoverageIsEight)
{
    MonolithicScheme s(64);
    EXPECT_EQ(s.coverage(), 8u);
    EXPECT_EQ(s.blockOf(7), 0u);
    EXPECT_EQ(s.blockOf(8), 1u);
}

TEST(Sc64, EncodableWithinMinorRange)
{
    Sc64Scheme s(128);
    EXPECT_TRUE(s.encodable(0, 127));
    EXPECT_FALSE(s.encodable(0, 128));
}

TEST(Sc64, OverflowRelevelsWholeBlockToMax)
{
    Sc64Scheme s(128);
    s.write(0, 100);
    s.write(1, 50);
    const WriteResult r = s.write(2, 130); // exceeds 7-bit minor
    EXPECT_TRUE(r.overflow);
    EXPECT_EQ(r.new_value, 130u);
    EXPECT_EQ(r.reencrypt_blocks, 64u);
    // Every counter in the block releveled to the max.
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(s.read(i), 130u);
    // Counter 64 is in the next block: untouched.
    EXPECT_EQ(s.read(64), 0u);
    EXPECT_EQ(s.major(0), 130u);
    EXPECT_EQ(s.overflows(), 1u);
}

TEST(Sc64, PostRelevelWritesEncodeAgain)
{
    Sc64Scheme s(128);
    s.write(0, 200); // overflow -> relevel to 200
    const WriteResult r = s.write(1, 201);
    EXPECT_FALSE(r.overflow);
}

TEST(Morphable, CoverageIs128)
{
    MorphableScheme s(256);
    EXPECT_EQ(s.coverage(), 128u);
}

TEST(Morphable, FormatProgression)
{
    MorphableScheme s(128);
    EXPECT_EQ(s.format(0), MorphFormat::Uniform3);
    s.write(0, 5); // offset 5: still uniform
    EXPECT_EQ(s.format(0), MorphFormat::Uniform3);
    s.write(1, 100); // one big offset: exception slot
    EXPECT_EQ(s.format(0), MorphFormat::Uniform3X);
    s.write(2, 5000); // very large: still within 13-bit exceptions
    EXPECT_EQ(s.format(0), MorphFormat::Uniform3X);
    s.write(3, 40000); // 16-bit offsets: index-list format
    EXPECT_EQ(s.format(0), MorphFormat::Index16);
    EXPECT_EQ(s.overflows(), 0u);
}

TEST(Morphable, BitmapFormatForManyMediumOffsets)
{
    MorphableScheme s(128);
    for (std::uint64_t i = 0; i < 20; ++i)
        s.write(i, 40); // 20 non-zero offsets < 64
    EXPECT_EQ(s.format(0), MorphFormat::Bitmap6);
    EXPECT_EQ(s.overflows(), 0u);
}

TEST(Morphable, MinShiftReencodesWithoutOverflow)
{
    // All counters drift upward together: the major slides, no rebase.
    MorphableScheme s(128);
    for (CounterValue round = 1; round <= 40; ++round)
        for (std::uint64_t i = 0; i < 128; ++i)
            s.write(i, round);
    EXPECT_EQ(s.overflows(), 0u);
    EXPECT_EQ(s.read(0), 40u);
    EXPECT_GT(s.major(0), 0u); // major slid upward
    EXPECT_GT(s.morphs(), 0u);
}

TEST(Morphable, DivergentSpreadForcesRebase)
{
    MorphableScheme s(128);
    // >3 counters far above while many small non-zeros exist.
    for (std::uint64_t i = 0; i < 60; ++i)
        s.write(i, 1 + i % 7);
    std::uint64_t before = s.overflows();
    for (std::uint64_t i = 0; i < 5; ++i)
        s.write(i, 70000 + i);
    EXPECT_GT(s.overflows(), before);
    // The first divergent write rebased the block: every counter was
    // releveled to at least that write's value.
    for (std::uint64_t i = 0; i < 128; ++i)
        EXPECT_GE(s.read(i), 70000u);
    EXPECT_EQ(s.read(127), 70000u);
    EXPECT_EQ(s.read(4), 70004u); // later writes encode in place
}

TEST(Morphable, RelevelBlockSetsAllEqual)
{
    MorphableScheme s(128);
    s.write(0, 3);
    s.write(1, 7);
    const WriteResult r = s.relevelBlock(0, 500);
    EXPECT_EQ(r.reencrypt_blocks, 128u);
    for (std::uint64_t i = 0; i < 128; ++i)
        EXPECT_EQ(s.read(i), 500u);
    EXPECT_EQ(s.major(0), 500u);
    EXPECT_EQ(s.format(0), MorphFormat::Uniform3);
}

TEST(Morphable, CheaplyEncodableIsDenseRange)
{
    MorphableScheme s(128);
    s.relevelBlock(0, 100);
    EXPECT_TRUE(s.cheaplyEncodable(0, 105));
    EXPECT_FALSE(s.cheaplyEncodable(0, 109)); // span 9 >= 8
}

TEST(Morphable, PackUnpackRoundTripAllFormats)
{
    MorphableScheme s(128);
    auto roundtrip = [&]() {
        const auto bits = s.packBlock(0);
        const auto [major, offsets] = MorphableScheme::unpackBlock(bits);
        EXPECT_EQ(major, s.major(0));
        for (std::uint64_t i = 0; i < 128; ++i)
            EXPECT_EQ(major + offsets[i], s.read(i))
                << "mismatch at " << i << " fmt "
                << static_cast<int>(s.format(0));
    };
    roundtrip(); // Uniform3 (all zero)
    s.write(0, 5);
    roundtrip(); // Uniform3
    s.write(1, 100);
    roundtrip(); // Uniform3X
    s.write(2, 50);
    s.write(3, 40);
    s.write(4, 30);
    roundtrip(); // Bitmap6 territory
    s.write(5, 200);
    roundtrip(); // Bitmap8
    s.write(6, 30000);
    roundtrip(); // Index16 (if it still fits) or post-rebase Uniform3
}

TEST(Morphable, PayloadsFitIn64Bytes)
{
    for (const MorphFormatInfo &fmt : morphFormats())
        EXPECT_LE(fmt.payload_bits, 448u) << static_cast<int>(fmt.id);
}

TEST(SchemeFactory, KindsAndCoverage)
{
    EXPECT_EQ(schemeCoverage(SchemeKind::SgxMonolithic), 8u);
    EXPECT_EQ(schemeCoverage(SchemeKind::SC64), 64u);
    EXPECT_EQ(schemeCoverage(SchemeKind::Morphable), 128u);
    EXPECT_EQ(makeScheme(SchemeKind::SC64, 64)->name(), "SC-64");
}

/** Cross-scheme invariants under random monotone write streams. */
class SchemeInvariants : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(SchemeInvariants, CountersNeverDecreaseAndNeverRepeat)
{
    auto s = makeScheme(GetParam(), 512);
    rmcc::util::Rng rng(42);
    std::vector<CounterValue> last(512, 0);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t idx = rng.nextBelow(512);
        const CounterValue cur = s->read(idx);
        const WriteResult r = s->write(idx, cur + 1);
        // The value actually assigned never decreases and strictly
        // exceeds the previous value of this entity (no counter reuse:
        // the counter-mode security invariant).
        EXPECT_GT(r.new_value, last[idx]);
        for (std::uint64_t j = 0; j < 512; ++j) {
            EXPECT_GE(s->read(j), last[j]) << "decreased at " << j;
            last[j] = s->read(j);
        }
        if (i == 100)
            break; // full scan is quadratic; spot-check the prefix
    }
    // Longer run with lighter checking.
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t idx = rng.nextBelow(512);
        const CounterValue cur = s->read(idx);
        const WriteResult r = s->write(idx, cur + 1);
        EXPECT_GT(r.new_value, cur);
    }
}

TEST_P(SchemeInvariants, RandomInitEncodableAndBounded)
{
    auto s = makeScheme(GetParam(), 1024);
    rmcc::util::Rng rng(7);
    s->randomInit(rng, 100000);
    for (std::uint64_t i = 0; i < 1024; ++i) {
        EXPECT_GE(s->read(i), 100000u / 2);
        EXPECT_LT(s->read(i), 100000u * 2);
    }
    // Post-init, +1 writes should be mostly encodable.
    std::uint64_t overflows = 0;
    for (std::uint64_t i = 0; i < 1024; ++i)
        overflows += s->write(i, s->read(i) + 1).overflow;
    EXPECT_LT(overflows, 20u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeInvariants,
                         ::testing::Values(SchemeKind::SgxMonolithic,
                                           SchemeKind::SC64,
                                           SchemeKind::Morphable));

// The AVX2 block-scan kernels must agree with the scalar oracle on every
// observable decision: drive two identically-seeded schemes through the
// same mixed write/query workload with the vector kernels forced on in
// one and off in the other, comparing every result and the full final
// state.  (On hosts without AVX2 both sides take the scalar path and the
// test degenerates to a determinism check — still valid, never failing.)
TEST(Morphable, SimdScanMatchesScalarOracle)
{
    const bool prior = MorphableScheme::simdScanActive();
    MorphableScheme simd(4096), scalar(4096);
    {
        rmcc::util::Rng r1(99), r2(99);
        MorphableScheme::setSimdScan(true);
        simd.randomInit(r1, 50000);
        MorphableScheme::setSimdScan(false);
        scalar.randomInit(r2, 50000);
    }
    rmcc::util::Rng rng(1234);
    for (int step = 0; step < 30000; ++step) {
        const std::uint64_t idx = rng.nextBelow(4096);
        // Mix small drifts (dense-path summaries), medium jumps
        // (min-shift scans), and rare large jumps (rebase scans).
        const std::uint64_t bump =
            1 + rng.nextBelow(step % 97 == 0 ? 5000 : 12);
        const CounterValue v = simd.read(idx) + bump;

        MorphableScheme::setSimdScan(true);
        const bool enc_v = simd.encodable(idx, v);
        const bool cheap_v = simd.cheaplyEncodable(idx, v);
        MorphableScheme::setSimdScan(false);
        const bool enc_s = scalar.encodable(idx, v);
        const bool cheap_s = scalar.cheaplyEncodable(idx, v);
        ASSERT_EQ(enc_v, enc_s) << "encodable diverged at step " << step;
        ASSERT_EQ(cheap_v, cheap_s)
            << "cheaplyEncodable diverged at step " << step;

        MorphableScheme::setSimdScan(true);
        const WriteResult w_v = simd.write(idx, v);
        MorphableScheme::setSimdScan(false);
        const WriteResult w_s = scalar.write(idx, v);
        ASSERT_EQ(w_v.new_value, w_s.new_value) << "step " << step;
        ASSERT_EQ(w_v.overflow, w_s.overflow) << "step " << step;
        ASSERT_EQ(w_v.reencrypt_blocks, w_s.reencrypt_blocks)
            << "step " << step;
    }
    ASSERT_EQ(simd.morphs(), scalar.morphs());
    ASSERT_EQ(simd.observedMax(), scalar.observedMax());
    for (std::uint64_t i = 0; i < 4096; ++i)
        ASSERT_EQ(simd.read(i), scalar.read(i)) << "value " << i;
    for (std::uint64_t cb = 0; cb < 4096 / 128; ++cb) {
        ASSERT_EQ(simd.major(cb), scalar.major(cb)) << "block " << cb;
        ASSERT_EQ(simd.format(cb), scalar.format(cb)) << "block " << cb;
    }
    MorphableScheme::setSimdScan(prior);
}

TEST(Tree, LevelsAndEntities)
{
    IntegrityTree tree(SchemeKind::Morphable, 128 * 128 * 4);
    // The 4 L1 counter blocks' own counters live in the on-chip root.
    EXPECT_EQ(tree.levels(), 2u);
    EXPECT_EQ(tree.level(0).entities(), 128u * 128 * 4);
    EXPECT_EQ(tree.level(1).entities(), 128u * 4);
    EXPECT_EQ(tree.blocksAt(1), 4u);
}

TEST(Tree, BlockAddressesMatchLayout)
{
    IntegrityTree tree(SchemeKind::Morphable, 128 * 128);
    const auto a0 = tree.blockAddr(0, 0);
    EXPECT_EQ(a0, tree.layout().counterBlockAddr(0, 0));
    EXPECT_GT(tree.blockAddr(1, 0), tree.blockAddr(0, 127));
}

TEST(Tree, ObservedMaxTracksAllLevels)
{
    IntegrityTree tree(SchemeKind::SgxMonolithic, 8 * 8 * 16);
    tree.level(1).write(0, 777);
    EXPECT_EQ(tree.observedMax(), 777u);
}

TEST(Tree, RandomInitAllLevels)
{
    IntegrityTree tree(SchemeKind::Morphable, 128 * 128);
    rmcc::util::Rng rng(3);
    tree.randomInit(rng, 5000);
    EXPECT_GE(tree.level(0).read(0), 2500u);
    EXPECT_GE(tree.level(1).read(0), 2500u);
    EXPECT_GE(tree.observedMax(), 5000u / 2);
}
