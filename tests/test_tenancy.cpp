/**
 * @file
 * Tenancy subsystem tests: strict env parsing, the tenant address tag,
 * mixer determinism and traffic shares, per-tenant accounting, and the
 * isolation invariants — two tenants touching the same component
 * virtual address must never share physical frames, memoized counter
 * values, or data-plane OTPs under strict isolation, and the inert
 * single-tenant shape must leave simulation results bit-identical.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>
#include <stdexcept>

#include "address/page_mapper.hpp"
#include "core/memo_table.hpp"
#include "crypto/otp.hpp"
#include "sim/functional_sim.hpp"
#include "tenancy/mixer.hpp"
#include "tenancy/stats.hpp"
#include "tenancy/tenancy.hpp"
#include "trace/trace_buffer.hpp"
#include "workloads/registry.hpp"

using namespace rmcc;
using namespace rmcc::tenancy;

namespace
{

/** RAII env-var setter that restores the prior value. */
struct EnvGuard
{
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        old_ = had_ ? old : "";
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~EnvGuard()
    {
        if (had_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }
    std::string name_, old_;
    bool had_ = false;
};

/** Two-tenant strict mix spec over cheap non-graph workloads. */
MixSpec
smallSpec(std::uint64_t tenants, double storm = 0.0)
{
    MixSpec spec;
    spec.cfg.tenants = tenants;
    spec.cfg.skew = 0.99;
    spec.cfg.isolation = IsolationMode::Strict;
    spec.archetypes = {wl::findWorkload("canneal"),
                       wl::findWorkload("mcf")};
    spec.records = 20000;
    spec.component_records = 10000;
    spec.seed = 13;
    spec.storm_share = storm;
    return spec;
}

} // namespace

// --- env parsing ------------------------------------------------------

TEST(TenancyEnv, DefaultsWhenUnset)
{
    EnvGuard g1("RMCC_TENANTS", nullptr);
    EnvGuard g2("RMCC_TENANT_SKEW", nullptr);
    EnvGuard g3("RMCC_TENANT_ISOLATION", nullptr);
    EnvGuard g4("RMCC_TENANT_MEMO_QUOTA", nullptr);
    const TenancyConfig cfg = tenancyConfigFromEnv();
    EXPECT_EQ(cfg.tenants, 1u);
    EXPECT_DOUBLE_EQ(cfg.skew, 0.99);
    EXPECT_EQ(cfg.isolation, IsolationMode::Strict);
    EXPECT_EQ(cfg.memo_quota, 0u);
    EXPECT_FALSE(cfg.active());
}

TEST(TenancyEnv, ParsesAllKnobs)
{
    EnvGuard g1("RMCC_TENANTS", "12");
    EnvGuard g2("RMCC_TENANT_SKEW", "1.5");
    EnvGuard g3("RMCC_TENANT_ISOLATION", "shared");
    EnvGuard g4("RMCC_TENANT_MEMO_QUOTA", "4");
    const TenancyConfig cfg = tenancyConfigFromEnv();
    EXPECT_EQ(cfg.tenants, 12u);
    EXPECT_DOUBLE_EQ(cfg.skew, 1.5);
    EXPECT_EQ(cfg.isolation, IsolationMode::Shared);
    EXPECT_EQ(cfg.memo_quota, 4u);
    EXPECT_TRUE(cfg.active());
}

TEST(TenancyEnv, GarbageIsRejectedNotDefaulted)
{
    {
        EnvGuard g("RMCC_TENANTS", "many");
        EXPECT_THROW(tenancyConfigFromEnv(), std::runtime_error);
    }
    {
        EnvGuard g("RMCC_TENANTS", "0");
        EXPECT_THROW(tenancyConfigFromEnv(), std::runtime_error);
    }
    {
        EnvGuard g("RMCC_TENANT_SKEW", "steep");
        EXPECT_THROW(tenancyConfigFromEnv(), std::runtime_error);
    }
    {
        // Zipf needs s > 0: an explicit zero is garbage, not a default.
        EnvGuard g("RMCC_TENANT_SKEW", "0");
        EXPECT_THROW(tenancyConfigFromEnv(), std::runtime_error);
    }
    {
        EnvGuard g("RMCC_TENANT_ISOLATION", "porous");
        EXPECT_THROW(tenancyConfigFromEnv(), std::runtime_error);
    }
    {
        EnvGuard g("RMCC_TENANT_MEMO_QUOTA", "lots");
        EXPECT_THROW(tenancyConfigFromEnv(), std::runtime_error);
    }
}

// --- the tenant address tag -------------------------------------------

TEST(TenantAddressMap, ShiftClearsFootprintWithHugePageFloor)
{
    // Tiny footprints still get the 2 MB floor (no huge page may span
    // tenants); big footprints push the tag above their highest bit.
    const TenantAddressMap small(4, 0xfff);
    EXPECT_EQ(small.tagShift(), TenantAddressMap::kMinTagShift);
    const TenantAddressMap big(4, (1ULL << 30) - 1);
    EXPECT_EQ(big.tagShift(), 30u);
}

TEST(TenantAddressMap, TagRoundTripsTenantAndOffset)
{
    const TenantAddressMap map(8, (1ULL << 24) - 1);
    for (std::uint64_t t = 0; t < 8; ++t) {
        const addr::Addr tagged = map.tag(t, 0xabcdef);
        EXPECT_EQ(map.tenantOf(tagged), t);
        EXPECT_EQ(tagged & ((1ULL << map.tagShift()) - 1), 0xabcdefu);
    }
    // Distinct tenants, same component vaddr -> distinct tagged vaddrs.
    EXPECT_NE(map.tag(0, 0x1000), map.tag(1, 0x1000));
}

// --- mixer ------------------------------------------------------------

TEST(TenantMixer, DeterministicForEqualSpecs)
{
    const MixSpec spec = smallSpec(4);
    trace::TraceBuffer a(spec.records), b(spec.records);
    TenantMixer(spec).generate(a);
    TenantMixer(spec).generate(b);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.records().data(), b.records().data(),
                          a.size() * sizeof(trace::Record)),
              0);
}

TEST(TenantMixer, SharesFollowZipfAndStorm)
{
    const TenantMixer plain(smallSpec(8));
    double total = 0.0;
    for (std::uint64_t t = 0; t < 8; ++t)
        total += plain.expectedShare(t);
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GT(plain.expectedShare(0), plain.expectedShare(1));
    EXPECT_GT(plain.expectedShare(1), plain.expectedShare(7));

    const TenantMixer storm(smallSpec(8, 0.5));
    EXPECT_GT(storm.expectedShare(0), plain.expectedShare(0) + 0.3);

    // Observed draws track the expectation: count tenant tags in the
    // generated stream.
    const MixSpec spec = smallSpec(8, 0.5);
    trace::TraceBuffer buf(spec.records);
    const TenantMixer mixer(spec);
    mixer.generate(buf);
    std::uint64_t hot = 0;
    for (const trace::Record &r : buf.records())
        hot += mixer.addressMap().tenantOf(
                   static_cast<addr::Addr>(r.vaddr)) == 0;
    const double observed =
        static_cast<double>(hot) / static_cast<double>(buf.size());
    EXPECT_NEAR(observed, mixer.expectedShare(0), 0.05);
}

TEST(TenantMixer, TenantsSharingAnArchetypeAreDecorrelated)
{
    // Tenants 0 and 2 both run canneal but from different phase offsets:
    // their untagged component streams must not be identical.
    const MixSpec spec = smallSpec(4);
    trace::TraceBuffer buf(spec.records);
    const TenantMixer mixer(spec);
    mixer.generate(buf);
    std::vector<addr::Addr> t0, t2;
    for (const trace::Record &r : buf.records()) {
        const auto v = static_cast<addr::Addr>(r.vaddr);
        const std::uint64_t t = mixer.addressMap().tenantOf(v);
        const addr::Addr untagged =
            v & ((1ULL << mixer.addressMap().tagShift()) - 1);
        if (t == 0 && t0.size() < 64)
            t0.push_back(untagged);
        else if (t == 2 && t2.size() < 64)
            t2.push_back(untagged);
    }
    ASSERT_GE(t0.size(), 32u);
    ASSERT_GE(t2.size(), 32u);
    const std::size_t n = std::min(t0.size(), t2.size());
    bool differ = false;
    for (std::size_t i = 0; i < n; ++i)
        differ |= t0[i] != t2[i];
    EXPECT_TRUE(differ);
}

// --- isolation invariants ---------------------------------------------

TEST(TenantIsolation, ArenasNeverShareFramesForTheSameVaddr)
{
    // 4 KB fragmented mode, 64 MB pool, 4 tenants: every tenant's frames
    // must come from its own quarter, so the same component vaddr lands
    // in four disjoint physical ranges.
    constexpr std::uint64_t kPhys = 64ULL << 20;
    addr::PageMapper mapper(addr::PageMode::Small4K, kPhys, 3);
    mapper.partitionByTenant(21, 4);
    ASSERT_TRUE(mapper.partitioned());
    const std::uint64_t arena = mapper.arenaBytes();
    ASSERT_GT(arena, 0u);
    std::set<std::uint64_t> arenas_hit;
    for (std::uint64_t t = 0; t < 4; ++t) {
        for (addr::Addr v : {addr::Addr(0x1000), addr::Addr(0x42040)}) {
            const addr::Addr tagged = (t << 21) | v;
            const addr::Addr paddr = mapper.translate(tagged);
            EXPECT_EQ(paddr / arena, t)
                << "tenant " << t << " vaddr " << v
                << " left its arena";
        }
        arenas_hit.insert(t);
    }
    EXPECT_EQ(arenas_hit.size(), 4u);
    // Same component vaddr, different tenants: distinct frames, hence
    // distinct counter blocks and counter groups at every tree level.
    EXPECT_NE(mapper.translate(0x1000), mapper.translate((1ULL << 21) | 0x1000));
}

TEST(TenantIsolation, MemoDomainsNeverLeakValues)
{
    core::MemoConfig mcfg;
    mcfg.domains = 2;
    core::MemoTable table(mcfg);
    table.setActiveDomain(0);
    table.insertGroup(1000);
    EXPECT_TRUE(table.inGroups(1000));
    EXPECT_EQ(table.validGroupsOf(0), 1u);

    // The same counter value is invisible from the other tenant's
    // domain: no lookup, nearest-above, or max may cross tenants.
    table.setActiveDomain(1);
    EXPECT_FALSE(table.contains(1000));
    EXPECT_FALSE(table.inGroups(1000));
    EXPECT_EQ(table.nearestAbove(999), std::nullopt);
    EXPECT_EQ(table.maxInTable(), 0u);
    EXPECT_EQ(table.validGroupsOf(1), 0u);

    // And the reverse direction still sees its own state.
    table.setActiveDomain(0);
    EXPECT_TRUE(table.inGroups(1000));
    EXPECT_EQ(table.nearestAbove(0).value_or(0), 1000u);
    EXPECT_GE(table.maxInTable(), 1000u); // group top = start + span - 1
}

TEST(TenantIsolation, MemoQuotaEvictsOwnDomainOnly)
{
    core::MemoConfig mcfg;
    mcfg.domains = 2;
    mcfg.quota_groups = 2;
    core::MemoTable table(mcfg);
    table.setActiveDomain(0);
    table.insertGroup(100);
    table.insertGroup(200);
    table.setActiveDomain(1);
    table.insertGroup(300);
    // Domain 0 is at quota: its next insert must evict a domain-0 group,
    // leaving domain 1 untouched.
    table.setActiveDomain(0);
    table.insertGroup(400);
    EXPECT_LE(table.validGroupsOf(0), 2u);
    EXPECT_EQ(table.validGroupsOf(1), 1u);
    table.setActiveDomain(1);
    EXPECT_TRUE(table.inGroups(300));
}

TEST(TenantIsolation, KeyDomainsDeriveDisjointOtps)
{
    const std::uint64_t seed = 0xfa177;
    const crypto::DomainKeys k0 = crypto::deriveDomainKeys(seed, 0);
    const crypto::DomainKeys k1 = crypto::deriveDomainKeys(seed, 1);
    const crypto::RmccOtpEngine e0(k0.enc, k0.mac);
    const crypto::RmccOtpEngine e1(k1.enc, k1.mac);
    const crypto::RmccOtpEngine platform(
        crypto::Aes::fromSeed(seed),
        crypto::Aes::fromSeed(seed + 0x9e3779b9));
    for (std::uint64_t a = 0; a < 16; ++a) {
        const std::uint64_t addr = 0x2000 + 64 * a;
        // Same (address, counter), different tenants: every pad differs.
        EXPECT_NE(e0.encryptionOtp(addr, 0, 9),
                  e1.encryptionOtp(addr, 0, 9));
        EXPECT_NE(e0.macOtp(addr, 9), e1.macOtp(addr, 9));
        // And a tenant domain is never the platform schedule.
        EXPECT_NE(e0.encryptionOtp(addr, 0, 9),
                  platform.encryptionOtp(addr, 0, 9));
    }
    // Determinism: the same (seed, domain) re-derives the same keys.
    const crypto::DomainKeys again = crypto::deriveDomainKeys(seed, 1);
    const crypto::RmccOtpEngine e1b(again.enc, again.mac);
    EXPECT_EQ(e1.encryptionOtp(0x2000, 0, 9),
              e1b.encryptionOtp(0x2000, 0, 9));
}

// --- shape plumbing ---------------------------------------------------

TEST(TenancyShape, ArenaBlocksMirrorsMapperAndSetsKeyShift)
{
    sim::SystemConfig cfg = sim::SystemConfig::functionalDefault();
    cfg.tenancy.tenants = 4;
    cfg.tenancy.tag_shift = 26;
    cfg.tenancy.strict = true;
    const std::uint64_t blocks = arenaBlocks(cfg);
    ASSERT_GT(blocks, 0u);
    // Power of two, and exactly what the mapper will carve.
    EXPECT_EQ(blocks & (blocks - 1), 0u);
    const std::uint64_t page = cfg.page_mode == addr::PageMode::Huge2M
                                   ? addr::kHugePageSize
                                   : addr::kSmallPageSize;
    EXPECT_EQ(blocks,
              addr::PageMapper::arenaFramesFor(cfg.page_mode,
                                               cfg.phys_bytes, 4) *
                  (page / addr::kBlockSize));
    EXPECT_EQ(1ULL << keyDomainShift(cfg), blocks);

    // Inert shapes carve nothing and keep the single key domain.
    cfg.tenancy.strict = false;
    EXPECT_EQ(arenaBlocks(cfg), 0u);
    EXPECT_EQ(keyDomainShift(cfg), 0u);
    cfg.tenancy.strict = true;
    cfg.tenancy.tenants = 1;
    EXPECT_EQ(arenaBlocks(cfg), 0u);
}

// --- per-tenant accounting --------------------------------------------

TEST(TenantAccountant, RoutesByTagWithOverflowSlot)
{
    sim::TenancyShape shape;
    shape.tenants = 100; // beyond kMaxTracked: overflow pools in "other"
    shape.tag_shift = 21;
    TenantAccountant acct(shape, 0);
    EXPECT_EQ(acct.tracked(), TenantAccountant::kMaxTracked);
    EXPECT_TRUE(acct.hasOverflow());

    mc::McReadResult miss;
    miss.counter_miss = true;
    miss.memo_hit = true;
    acct.onRead(addr::Addr(0) << 21 | 0x10, miss, 100.0);
    acct.onRead(addr::Addr(1) << 21 | 0x10, mc::McReadResult{}, 50.0);
    acct.onRead(addr::Addr(70) << 21 | 0x10, mc::McReadResult{}, 25.0);
    acct.onWrite(addr::Addr(1) << 21 | 0x20);

    EXPECT_EQ(acct.tenant(0).reads, 1u);
    EXPECT_EQ(acct.tenant(0).counter_misses, 1u);
    EXPECT_EQ(acct.tenant(0).memo_hits, 1u);
    EXPECT_EQ(acct.tenant(1).reads, 1u);
    EXPECT_EQ(acct.tenant(1).writes, 1u);
    EXPECT_EQ(acct.other().reads, 1u); // tenant 70 pooled
    EXPECT_EQ(acct.tenant(2).reads, 0u);

    std::ostringstream csv;
    acct.writeCsv(csv, "cell", true);
    std::size_t lines = 0;
    std::string line;
    std::istringstream in(csv.str());
    while (std::getline(in, line))
        ++lines;
    // Header + 64 tracked + "other".
    EXPECT_EQ(lines, 1 + TenantAccountant::kMaxTracked + 1);
}

TEST(TenantAccountant, JainFairnessBounds)
{
    sim::TenancyShape shape;
    shape.tenants = 2;
    shape.tag_shift = 21;
    TenantAccountant even(shape, 0);
    even.onRead(0x10, mc::McReadResult{}, 100.0);
    even.onRead((1ULL << 21) | 0x10, mc::McReadResult{}, 100.0);
    EXPECT_DOUBLE_EQ(even.jainFairness(), 1.0);

    TenantAccountant skewed(shape, 0);
    skewed.onRead(0x10, mc::McReadResult{}, 1000.0);
    skewed.onRead((1ULL << 21) | 0x10, mc::McReadResult{}, 10.0);
    EXPECT_LT(skewed.jainFairness(), 1.0);
    EXPECT_GE(skewed.jainFairness(), 0.5); // 1/n floor for n = 2
}

// --- end to end -------------------------------------------------------

TEST(TenancyEndToEnd, StrictMixServesAllTenantsWithIsolationActive)
{
    const MixSpec spec = smallSpec(2);
    const TenantMix mix = generateMixHandle(spec);

    sim::SystemConfig cfg = sim::SystemConfig::functionalDefault();
    cfg.rmcc = true;
    cfg.trace_records = spec.records;
    cfg.warmup_records = spec.records / 4;
    cfg.l1 = {16 * 1024, 8, 2.0};
    cfg.l2 = {32 * 1024, 8, 4.0};
    cfg.llc = {64 * 1024, 16, 17.0};
    cfg.tenancy.tenants = spec.cfg.tenants;
    cfg.tenancy.tag_shift = mix.tag_shift;
    cfg.tenancy.strict = true;

    TenantAccountant acct(cfg.tenancy, arenaBlocks(cfg));
    const sim::SimResult res = sim::runFunctional(
        "tenancy-e2e", mix.handle.source(), cfg, nullptr, &acct);
    EXPECT_GT(res.instructions, 0u);
    // Both tenants reached the controller and took counter misses.
    EXPECT_GT(acct.tenant(0).reads, 0u);
    EXPECT_GT(acct.tenant(1).reads, 0u);
    EXPECT_GT(acct.tenant(0).counter_misses, 0u);
    EXPECT_GT(acct.tenant(1).counter_misses, 0u);
    EXPECT_EQ(acct.other().reads, 0u);
    const double jain = acct.jainFairness();
    EXPECT_GT(jain, 0.0);
    EXPECT_LE(jain, 1.0);
}

TEST(TenancyEndToEnd, InertShapeIsBitIdenticalToDefault)
{
    // The whole contract of the default path: a TenancyShape with
    // tenants == 1 must not perturb a single counter, whatever the
    // other shape fields say.
    const wl::Workload *w = wl::findWorkload("canneal");
    ASSERT_NE(w, nullptr);
    sim::SystemConfig cfg = sim::SystemConfig::functionalDefault();
    cfg.rmcc = true;
    cfg.trace_records = 20000;
    cfg.warmup_records = 5000;
    const trace::TraceBuffer trace =
        wl::generateTrace(*w, cfg.trace_records, cfg.seed);

    const sim::SimResult base = sim::runFunctional(w->name, trace, cfg);
    sim::SystemConfig shaped = cfg;
    shaped.tenancy.tenants = 1;
    shaped.tenancy.tag_shift = 30;
    shaped.tenancy.strict = true;
    shaped.tenancy.memo_quota = 8;
    const sim::SimResult same =
        sim::runFunctional(w->name, trace, shaped);
    EXPECT_EQ(base.instructions, same.instructions);
    EXPECT_EQ(base.stats.all(), same.stats.all());
}
