/**
 * @file
 * Observability subsystem tests: log2-histogram math, Chrome-trace JSON
 * output (validated by a tiny in-test checker), epoch CSV determinism,
 * the RMCC_OBS=off bit-identity guarantee, strict env parsing, trace
 * buffer drop accounting, and leveled logging.
 */
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/trace_writer.hpp"
#include "sim/experiments.hpp"
#include "sim/obs_wiring.hpp"
#include "trace/trace_buffer.hpp"
#include "util/log.hpp"

using namespace rmcc;
namespace fs = std::filesystem;

namespace
{

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/** Fresh unique directory under the test temp root. */
std::string
freshDir(const std::string &tag)
{
    static int n = 0;
    const std::string d =
        ::testing::TempDir() + "rmcc_obs_" + tag + "_" + std::to_string(n++);
    fs::remove_all(d);
    return d;
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

std::size_t
fileCount(const std::string &dir)
{
    if (!fs::is_directory(dir))
        return 0;
    std::size_t n = 0;
    for ([[maybe_unused]] const auto &e : fs::directory_iterator(dir))
        ++n;
    return n;
}

/** Clears every RMCC_OBS* variable and resets the cached session. */
void
clearObsEnv()
{
    unsetenv("RMCC_OBS");
    unsetenv("RMCC_OBS_DIR");
    unsetenv("RMCC_OBS_EPOCH_RECORDS");
    unsetenv("RMCC_OBS_MAX_EPOCHS");
    obs::reresolveObs();
}

/** Scoped obs environment: set → reresolve → restore on destruction. */
class ObsEnv
{
  public:
    ObsEnv(const char *mode, const std::string &dir,
           const char *epoch_records = nullptr)
    {
        setenv("RMCC_OBS", mode, 1);
        setenv("RMCC_OBS_DIR", dir.c_str(), 1);
        if (epoch_records)
            setenv("RMCC_OBS_EPOCH_RECORDS", epoch_records, 1);
        obs::reresolveObs();
    }
    ~ObsEnv() { clearObsEnv(); }
};

/**
 * Tiny Chrome-trace checker: a full JSON syntax walk (strings with
 * escapes, numbers, literals, nested containers) plus the trace-event
 * shape requirements — top-level object with a "traceEvents" array whose
 * every element carries name/ph/pid/tid, ph one of X/i/M.
 */
class JsonSyntax
{
  public:
    explicit JsonSyntax(const std::string &text) : s_(text) {}

    bool valid()
    {
        ws();
        if (!value())
            return false;
        ws();
        return i_ == s_.size();
    }

  private:
    void ws()
    {
        while (i_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[i_])))
            ++i_;
    }
    bool lit(const char *l)
    {
        const std::size_t n = std::strlen(l);
        if (s_.compare(i_, n, l) == 0) {
            i_ += n;
            return true;
        }
        return false;
    }
    bool string()
    {
        if (i_ >= s_.size() || s_[i_] != '"')
            return false;
        ++i_;
        while (i_ < s_.size()) {
            const char c = s_[i_];
            if (c == '\\') {
                i_ += 2;
                continue;
            }
            ++i_;
            if (c == '"')
                return true;
        }
        return false;
    }
    bool number()
    {
        const std::size_t start = i_;
        auto digit = [&] {
            return i_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[i_]));
        };
        if (i_ < s_.size() && s_[i_] == '-')
            ++i_;
        while (digit())
            ++i_;
        if (i_ < s_.size() && s_[i_] == '.') {
            ++i_;
            while (digit())
                ++i_;
        }
        if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
            ++i_;
            if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-'))
                ++i_;
            while (digit())
                ++i_;
        }
        return i_ > start;
    }
    bool object()
    {
        if (s_[i_] != '{')
            return false;
        ++i_;
        ws();
        if (i_ < s_.size() && s_[i_] == '}') {
            ++i_;
            return true;
        }
        for (;;) {
            ws();
            if (!string())
                return false;
            ws();
            if (i_ >= s_.size() || s_[i_] != ':')
                return false;
            ++i_;
            ws();
            if (!value())
                return false;
            ws();
            if (i_ < s_.size() && s_[i_] == ',') {
                ++i_;
                continue;
            }
            break;
        }
        if (i_ >= s_.size() || s_[i_] != '}')
            return false;
        ++i_;
        return true;
    }
    bool array()
    {
        if (s_[i_] != '[')
            return false;
        ++i_;
        ws();
        if (i_ < s_.size() && s_[i_] == ']') {
            ++i_;
            return true;
        }
        for (;;) {
            ws();
            if (!value())
                return false;
            ws();
            if (i_ < s_.size() && s_[i_] == ',') {
                ++i_;
                continue;
            }
            break;
        }
        if (i_ >= s_.size() || s_[i_] != ']')
            return false;
        ++i_;
        return true;
    }
    bool value()
    {
        if (i_ >= s_.size())
            return false;
        switch (s_[i_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return lit("true");
        case 'f': return lit("false");
        case 'n': return lit("null");
        default: return number();
        }
    }

    const std::string &s_;
    std::size_t i_ = 0;
};

/** Asserts the document is a well-formed Chrome trace; returns it. */
std::string
expectValidChromeTrace(const std::string &path)
{
    const std::string doc = slurp(path);
    EXPECT_FALSE(doc.empty()) << path;
    EXPECT_TRUE(JsonSyntax(doc).valid()) << path;
    EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
    // Every event object line carries the required keys with a legal ph.
    std::istringstream lines(doc);
    std::string line;
    std::size_t events = 0;
    while (std::getline(lines, line)) {
        const std::size_t brace = line.find('{');
        if (brace == std::string::npos ||
            line.find("\"name\"") == std::string::npos)
            continue;
        ++events;
        EXPECT_NE(line.find("\"ph\":\""), std::string::npos) << line;
        EXPECT_NE(line.find("\"pid\":"), std::string::npos) << line;
        EXPECT_NE(line.find("\"tid\":"), std::string::npos) << line;
        const std::size_t ph = line.find("\"ph\":\"");
        const char kind = line[ph + 6];
        EXPECT_TRUE(kind == 'X' || kind == 'i' || kind == 'M') << line;
        if (kind != 'M') {
            EXPECT_NE(line.find("\"ts\":"), std::string::npos) << line;
        }
    }
    EXPECT_GT(events, 0u) << path;
    return doc;
}

/** Parse a CSV column by header name; returns the values top to bottom. */
std::vector<double>
csvColumn(const std::string &csv, const std::string &name)
{
    std::istringstream in(csv);
    std::string line;
    std::vector<double> out;
    if (!std::getline(in, line))
        return out;
    std::ptrdiff_t col = -1, c = 0;
    std::istringstream hdr(line);
    std::string cell;
    while (std::getline(hdr, cell, ',')) {
        if (cell == name)
            col = c;
        ++c;
    }
    if (col < 0)
        return out;
    while (std::getline(in, line)) {
        std::istringstream row(line);
        c = 0;
        while (std::getline(row, cell, ',')) {
            if (c++ == col)
                out.push_back(std::strtod(cell.c_str(), nullptr));
        }
    }
    return out;
}

/** Miniature experiment shape for real-simulation tests. */
void
shrink(sim::SystemConfig &cfg)
{
    cfg.trace_records = 50000;
    cfg.warmup_records = 25000;
    cfg.precondition_budget_fraction = 30.0;
}

} // namespace

// ---------------------------------------------------------------------------
// Log2Histogram
// ---------------------------------------------------------------------------

TEST(Log2Histogram, BucketEdges)
{
    using H = obs::Log2Histogram;
    EXPECT_EQ(H::bucketOf(0.0), 0u);
    EXPECT_EQ(H::bucketOf(0.5), 0u);
    EXPECT_EQ(H::bucketOf(0.999), 0u);
    EXPECT_EQ(H::bucketOf(1.0), 1u);
    EXPECT_EQ(H::bucketOf(1.999), 1u);
    EXPECT_EQ(H::bucketOf(2.0), 2u);
    EXPECT_EQ(H::bucketOf(3.999), 2u);
    EXPECT_EQ(H::bucketOf(4.0), 3u);
    // Bucket i covers [bucketLow, bucketHigh).
    for (std::size_t i = 1; i < 40; ++i) {
        EXPECT_EQ(H::bucketOf(H::bucketLow(i)), i);
        EXPECT_EQ(H::bucketOf(std::nextafter(H::bucketHigh(i), 0.0)), i);
    }
    EXPECT_DOUBLE_EQ(H::bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(H::bucketHigh(0), 1.0);
    EXPECT_DOUBLE_EQ(H::bucketLow(5), 16.0);
    EXPECT_DOUBLE_EQ(H::bucketHigh(5), 32.0);
    // Values beyond the last bucket edge saturate into the last bucket.
    EXPECT_EQ(H::bucketOf(1e300), H::kBuckets - 1);
}

TEST(Log2Histogram, ExactWhenAllSamplesEqual)
{
    obs::Log2Histogram h;
    for (int i = 0; i < 100; ++i)
        h.add(7.0);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 7.0);
    EXPECT_DOUBLE_EQ(h.max(), 7.0);
    // The quantile clamps the bucket upper edge (8) to the exact max.
    EXPECT_DOUBLE_EQ(h.quantile(0.50), 7.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 7.0);
    const obs::HistSummary s = h.summary();
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.p50, 7.0);
    EXPECT_DOUBLE_EQ(s.p99, 7.0);
    EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(Log2Histogram, QuantilesAreConservativeUpperBounds)
{
    obs::Log2Histogram h;
    const double samples[] = {1.0, 2.0, 3.0, 4.0, 100.0};
    for (const double v : samples)
        h.add(v);
    // True p50 is 3; the reported one must bound it from above without
    // exceeding the observed max.
    EXPECT_GE(h.quantile(0.50), 3.0);
    EXPECT_LE(h.quantile(0.50), 100.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
    // Monotone in p.
    double prev = 0.0;
    for (double p = 0.1; p <= 1.0; p += 0.1) {
        EXPECT_GE(h.quantile(p), prev);
        prev = h.quantile(p);
    }
}

TEST(Log2Histogram, SmallExactCases)
{
    obs::Log2Histogram h;
    h.add(2.0); // bucket 2 = [2,4)
    h.add(2.0);
    // rank(0.5 * 2) = 1 -> bucket 2 -> min(4, max=2) = 2: exact.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
    h.add(1024.0); // bucket 11 = [1024, 2048)
    // p99 rank = ceil(.99*3) = 3 -> bucket 11 -> min(2048, 1024) = 1024.
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 1024.0);
}

TEST(Log2Histogram, EmptyAndReset)
{
    obs::Log2Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
    h.add(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Log2Histogram, NegativeAndNanClampToBucketZero)
{
    obs::Log2Histogram h;
    h.add(-123.0);
    h.add(std::nan(""));
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

// ---------------------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------------------

TEST(TraceWriter, CapCountsDrops)
{
    obs::TraceWriter tw(2);
    tw.instant("a", 0);
    tw.instant("b", 0);
    tw.instant("c", 0);
    EXPECT_EQ(tw.size(), 2u);
    EXPECT_EQ(tw.dropped(), 1u);
}

TEST(TraceWriter, JsonEscape)
{
    EXPECT_EQ(obs::TraceWriter::jsonEscape("a\"b\\c\nd"),
              "a\\\"b\\\\c\\nd");
    EXPECT_EQ(obs::TraceWriter::jsonEscape(std::string(1, '\x01')),
              "\\u0001");
    EXPECT_EQ(obs::TraceWriter::jsonEscape("plain"), "plain");
}

TEST(TraceWriter, WritesValidChromeTraceJson)
{
    const std::string dir = freshDir("tw");
    fs::create_directories(dir);
    obs::TraceWriter tw;
    tw.complete("cell:one", 0.0, 1500.0, 0, "{\"records\":42}");
    tw.complete("cell:two \"quoted\"", 100.0, 2.5, 1);
    tw.instant("overflow", 2);
    const std::string path = dir + "/trace.json";
    ASSERT_TRUE(tw.writeJson(path));
    const std::string doc = expectValidChromeTrace(path);
    // Lane metadata for every tid seen, with the worker naming scheme.
    EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"main\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"worker-0\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"worker-1\""), std::string::npos);
    EXPECT_NE(doc.find("\"dur\":1500.000"), std::string::npos);
    EXPECT_NE(doc.find("\"s\":\"t\""), std::string::npos);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Env parsing and cell naming
// ---------------------------------------------------------------------------

TEST(ObsEnvParse, ModesAndDefaults)
{
    clearObsEnv();
    obs::ObsConfig cfg = obs::obsConfigFromEnv();
    EXPECT_EQ(cfg.mode, obs::ObsMode::Off);
    EXPECT_EQ(cfg.dir, "rmcc-obs");
    EXPECT_EQ(cfg.epoch_records, 10000u);
    EXPECT_EQ(cfg.max_epochs, 4096u);

    setenv("RMCC_OBS", "epochs", 1);
    setenv("RMCC_OBS_DIR", "/tmp/somewhere", 1);
    setenv("RMCC_OBS_EPOCH_RECORDS", "500", 1);
    setenv("RMCC_OBS_MAX_EPOCHS", "16", 1);
    cfg = obs::obsConfigFromEnv();
    EXPECT_EQ(cfg.mode, obs::ObsMode::Epochs);
    EXPECT_EQ(cfg.dir, "/tmp/somewhere");
    EXPECT_EQ(cfg.epoch_records, 500u);
    EXPECT_EQ(cfg.max_epochs, 16u);

    setenv("RMCC_OBS", "full", 1);
    EXPECT_EQ(obs::obsConfigFromEnv().mode, obs::ObsMode::Full);
    clearObsEnv();
}

TEST(ObsEnvParse, GarbageIsRejectedLoudly)
{
    clearObsEnv();
    setenv("RMCC_OBS", "banana", 1);
    EXPECT_THROW(obs::obsConfigFromEnv(), std::runtime_error);
    setenv("RMCC_OBS", "off", 1);
    setenv("RMCC_OBS_EPOCH_RECORDS", "0", 1);
    EXPECT_THROW(obs::obsConfigFromEnv(), std::runtime_error);
    setenv("RMCC_OBS_EPOCH_RECORDS", "12x", 1);
    EXPECT_THROW(obs::obsConfigFromEnv(), std::runtime_error);
    unsetenv("RMCC_OBS_EPOCH_RECORDS");
    setenv("RMCC_OBS_MAX_EPOCHS", "-3", 1);
    EXPECT_THROW(obs::obsConfigFromEnv(), std::runtime_error);
    clearObsEnv();
}

TEST(ObsEnvParse, OffProducesNoRegistry)
{
    clearObsEnv();
    EXPECT_EQ(obs::makeRunRegistry("anything"), nullptr);
    setenv("RMCC_OBS", "off", 1);
    obs::reresolveObs();
    EXPECT_EQ(obs::makeRunRegistry("anything"), nullptr);
    clearObsEnv();
}

TEST(ObsCellName, SanitizesAndDisambiguates)
{
    EXPECT_EQ(obs::sanitizeCellName("a b/c:d"), "a-b-c-d");
    EXPECT_EQ(obs::sanitizeCellName("ok_name-1.2+x"), "ok_name-1.2+x");

    sim::SystemConfig a = sim::SystemConfig::timingDefault();
    sim::SystemConfig b = a;
    const std::string na = sim::detail::cellName("mcf", a);
    EXPECT_EQ(na, sim::detail::cellName("mcf", b)); // deterministic
    // Fields describe() omits still distinguish the cell.
    b.precondition_budget_fraction = 7.0;
    EXPECT_NE(na, sim::detail::cellName("mcf", b));
    b = a;
    b.seed = 43;
    EXPECT_NE(na, sim::detail::cellName("mcf", b));
    // And the readable prefix reflects the scheme stack.
    EXPECT_NE(na.find("mcf-timing-morphable"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Registry: epoch CSV and histograms
// ---------------------------------------------------------------------------

TEST(ObsRegistry, EpochCsvMatchesGolden)
{
    const std::string dir = freshDir("golden");
    ObsEnv env("epochs", dir, "10");

    std::uint64_t steps = 0;
    {
        auto reg = obs::makeRunRegistry("golden cell");
        ASSERT_NE(reg, nullptr);
        EXPECT_EQ(reg->cell(), "golden-cell");
        reg->addProbe("ticks", [&] { return double(steps); });
        reg->addProbe("twice", [&] { return double(2 * steps); });
        reg->addRate("rate", "twice", "ticks");
        for (int i = 0; i < 25; ++i) {
            ++steps;
            reg->tick();
        }
        reg->recordLatency(obs::LatencyHist::McRead, 100.0);
        reg->recordLatency(obs::LatencyHist::McRead, 100.0);
        reg->recordLatency(obs::LatencyHist::McRead, 100.0);
        reg->recordLatency(obs::LatencyHist::McRead, 100.0);
        reg->finish();
    }

    const std::string csv = slurp(dir + "/epochs-golden-cell.csv");
    EXPECT_EQ(csv, "records,ticks,twice,rate\n"
                   "10,10,20,2\n"
                   "20,20,40,2\n"
                   "25,25,50,2\n");

    const std::string hists = slurp(dir + "/hists-golden-cell.csv");
    EXPECT_EQ(hists.rfind("hist,count,mean,p50,p95,p99,max,b0", 0), 0u);
    EXPECT_NE(hists.find("mc_read_ns,4,100,100,100,100,100"),
              std::string::npos);
    EXPECT_NE(hists.find("dram_access_ns,0,0,0,0,0,0"), std::string::npos);
    fs::remove_all(dir);
}

TEST(ObsRegistry, RingKeepsMostRecentEpochs)
{
    const std::string dir = freshDir("ring");
    setenv("RMCC_OBS_MAX_EPOCHS", "2", 1);
    ObsEnv env("epochs", dir, "10");

    std::uint64_t steps = 0;
    {
        auto reg = obs::makeRunRegistry("ring");
        ASSERT_NE(reg, nullptr);
        reg->addProbe("ticks", [&] { return double(steps); });
        for (int i = 0; i < 40; ++i) {
            ++steps;
            reg->tick();
        }
        EXPECT_EQ(reg->epochsDropped(), 2u);
        reg->finish();
    }
    const std::vector<double> rows =
        csvColumn(slurp(dir + "/epochs-ring.csv"), "records");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_DOUBLE_EQ(rows[0], 30.0);
    EXPECT_DOUBLE_EQ(rows[1], 40.0);
    fs::remove_all(dir);
}

TEST(ObsRegistry, RateIsPerEpochDelta)
{
    const std::string dir = freshDir("rate");
    ObsEnv env("epochs", dir, "10");
    std::uint64_t steps = 0, hits = 0;
    {
        auto reg = obs::makeRunRegistry("rate");
        ASSERT_NE(reg, nullptr);
        reg->addProbe("hits", [&] { return double(hits); });
        reg->addProbe("lookups", [&] { return double(steps); });
        reg->addRate("hit_rate", "hits", "lookups");
        for (int i = 0; i < 20; ++i) {
            ++steps;
            hits += (i < 10) ? 0 : 1; // all hits in the second epoch
            reg->tick();
        }
        reg->finish();
    }
    const std::vector<double> rate =
        csvColumn(slurp(dir + "/epochs-rate.csv"), "hit_rate");
    ASSERT_EQ(rate.size(), 2u);
    EXPECT_DOUBLE_EQ(rate[0], 0.0); // first epoch: 0/10
    EXPECT_DOUBLE_EQ(rate[1], 1.0); // second epoch delta: 10/10
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// End-to-end: simulators under RMCC_OBS
// ---------------------------------------------------------------------------

TEST(ObsEndToEnd, EpochSeriesShowsRmccHitRate)
{
    const std::string dir = freshDir("e2e");
    ObsEnv env("epochs", dir, "5000");

    sim::NamedConfig nc = sim::rmccConfig(sim::SimMode::Functional);
    shrink(nc.cfg);
    const auto *w = wl::findWorkload("canneal");
    const auto trace = wl::generateTrace(*w, nc.cfg.trace_records, 42);
    (void)sim::runOne(w->name, trace, nc);

    // Exactly one epochs CSV + one hists CSV for the single cell.
    ASSERT_TRUE(fs::is_directory(dir));
    std::string epochs_path, hists_path;
    for (const auto &e : fs::directory_iterator(dir)) {
        const std::string name = e.path().filename().string();
        if (name.rfind("epochs-", 0) == 0)
            epochs_path = e.path().string();
        if (name.rfind("hists-", 0) == 0)
            hists_path = e.path().string();
    }
    ASSERT_FALSE(epochs_path.empty());
    ASSERT_FALSE(hists_path.empty());
    EXPECT_NE(epochs_path.find("canneal-functional-morphable-rmcc"),
              std::string::npos);

    const std::string csv = slurp(epochs_path);
    const std::vector<double> lookups = csvColumn(csv, "memo.lookups");
    const std::vector<double> hits = csvColumn(csv, "memo.hits");
    const std::vector<double> rate = csvColumn(csv, "memo.hit_rate");
    ASSERT_GE(lookups.size(), 2u);
    ASSERT_EQ(hits.size(), lookups.size());
    ASSERT_EQ(rate.size(), lookups.size());
    // Cumulative counters rise; the memo table is live and hitting.
    EXPECT_GT(lookups.back(), lookups.front());
    EXPECT_GT(hits.back(), 0.0);
    EXPECT_GT(hits.back(), hits.front());
    for (const double r : rate) {
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, 1.0);
    }
    // The MC latency histograms saw real traffic.
    const std::string hists = slurp(hists_path);
    const std::vector<double> counts = csvColumn(hists, "count");
    // mc_read, dram, mac_verify, recovery, trace_io
    ASSERT_EQ(counts.size(), 5u);
    EXPECT_GT(counts[0], 0.0);
    EXPECT_GT(counts[1], 0.0);
    // No faults injected: the recovery histogram exists but stays empty.
    EXPECT_DOUBLE_EQ(counts[3], 0.0);
    // In-RAM trace: no spill I/O was timed.
    EXPECT_DOUBLE_EQ(counts[4], 0.0);
    fs::remove_all(dir);
}

TEST(ObsEndToEnd, FullModeWritesLoadableTraceJson)
{
    const std::string dir = freshDir("full");
    ObsEnv env("full", dir, "5000");

    sim::NamedConfig nc = sim::rmccConfig(sim::SimMode::Functional);
    shrink(nc.cfg);
    nc.cfg.trace_records = 30000;
    nc.cfg.warmup_records = 15000;
    const auto *w = wl::findWorkload("mcf");
    const auto trace = wl::generateTrace(*w, nc.cfg.trace_records, 42);
    (void)sim::runOne(w->name, trace, nc);

    obs::reresolveObs(); // flushes trace.json
    const std::string doc = expectValidChromeTrace(dir + "/trace.json");
    EXPECT_NE(doc.find("\"cell:mcf-functional-morphable-rmcc"),
              std::string::npos);
    EXPECT_NE(doc.find("\"records\":30000"), std::string::npos);
    clearObsEnv();
    fs::remove_all(dir);
}

TEST(ObsEndToEnd, OffIsBitIdenticalAndWritesNothing)
{
    clearObsEnv();

    // One fig03-style cell (functional Morphable baseline) and one
    // fig13-style cell (timing RMCC); both shrunk.
    std::vector<sim::NamedConfig> cells = {
        sim::baselineConfig(sim::SimMode::Functional,
                            ctr::SchemeKind::Morphable),
        sim::rmccConfig(sim::SimMode::Timing),
    };
    for (auto &nc : cells) {
        shrink(nc.cfg);
        nc.cfg.trace_records = 40000;
        nc.cfg.warmup_records = 20000;
    }
    const auto *w = wl::findWorkload("canneal");
    const auto trace = wl::generateTrace(*w, 40000, 42);

    for (const sim::NamedConfig &nc : cells) {
        const sim::SimResult baseline = sim::runOne(w->name, trace, nc);

        const std::string dir = freshDir("off");
        {
            ObsEnv env("off", dir);
            const sim::SimResult off = sim::runOne(w->name, trace, nc);
            EXPECT_EQ(off.stats.all(), baseline.stats.all()) << nc.label;
            EXPECT_EQ(off.instructions, baseline.instructions);
            EXPECT_DOUBLE_EQ(off.elapsed_ns, baseline.elapsed_ns);
            EXPECT_EQ(fileCount(dir), 0u) << "RMCC_OBS=off wrote files";
        }
        {
            // Sampling must only read: epochs/full modes report the
            // exact same simulated numbers.
            const std::string dir2 = freshDir("epochs_identity");
            ObsEnv env("epochs", dir2);
            const sim::SimResult on = sim::runOne(w->name, trace, nc);
            EXPECT_EQ(on.stats.all(), baseline.stats.all()) << nc.label;
            EXPECT_DOUBLE_EQ(on.elapsed_ns, baseline.elapsed_ns);
            EXPECT_GT(fileCount(dir2), 0u);
            fs::remove_all(dir2);
        }
        fs::remove_all(dir);
    }
}

// ---------------------------------------------------------------------------
// TraceBuffer drop accounting
// ---------------------------------------------------------------------------

TEST(TraceBufferDrops, MoveTransfersDropCounter)
{
    trace::TraceBuffer a(2);
    a.append(0x1000, false, 0);
    a.append(0x2000, false, 0);
    a.append(0x3000, false, 0);
    a.append(0x4000, false, 0);
    EXPECT_EQ(a.dropped(), 2u);
    EXPECT_EQ(a.size(), 2u);

    trace::TraceBuffer b = std::move(a);
    EXPECT_EQ(b.dropped(), 2u);
    EXPECT_EQ(a.dropped(), 0u); // source no longer owns the count
    EXPECT_EQ(b.size(), 2u);

    trace::TraceBuffer c(1);
    c = std::move(b);
    EXPECT_EQ(c.dropped(), 2u);
    EXPECT_EQ(b.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Leveled logging
// ---------------------------------------------------------------------------

TEST(LogLevel, ParsesAllSpellings)
{
    using util::LogLevel;
    EXPECT_EQ(util::logLevelFromString("debug"), LogLevel::Debug);
    EXPECT_EQ(util::logLevelFromString("info"), LogLevel::Info);
    EXPECT_EQ(util::logLevelFromString("warn"), LogLevel::Warn);
    EXPECT_EQ(util::logLevelFromString("error"), LogLevel::Error);
    EXPECT_EQ(util::logLevelFromString("silent"), LogLevel::Silent);
    EXPECT_THROW(util::logLevelFromString("verbose"), std::runtime_error);
    EXPECT_THROW(util::logLevelFromString("WARN"), std::runtime_error);
}

TEST(LogLevel, EnvControlsFiltering)
{
    setenv("RMCC_LOG_LEVEL", "error", 1);
    util::resetLogLevelForTest();
    EXPECT_EQ(util::logLevel(), util::LogLevel::Error);
    EXPECT_FALSE(util::logEnabled(util::LogLevel::Warn));
    EXPECT_FALSE(util::logEnabled(util::LogLevel::Info));
    EXPECT_TRUE(util::logEnabled(util::LogLevel::Error));

    setenv("RMCC_LOG_LEVEL", "debug", 1);
    util::resetLogLevelForTest();
    EXPECT_TRUE(util::logEnabled(util::LogLevel::Debug));

    unsetenv("RMCC_LOG_LEVEL");
    util::resetLogLevelForTest();
    EXPECT_EQ(util::logLevel(), util::LogLevel::Info); // default
    EXPECT_FALSE(util::logEnabled(util::LogLevel::Debug));
    EXPECT_TRUE(util::logEnabled(util::LogLevel::Warn));
}
