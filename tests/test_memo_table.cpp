/**
 * @file
 * Memoization-table tests: group lookup, LFU insertion/eviction, shadow
 * groups, MRU evicted values, nearest-above queries, and end-of-epoch
 * reselection (Sec IV-C3/C4).
 */
#include <gtest/gtest.h>

#include "core/memo_table.hpp"

using namespace rmcc::core;

TEST(MemoTable, EmptyTableMissesEverything)
{
    MemoTable t;
    EXPECT_EQ(t.lookupRead(5), MemoHit::Miss);
    EXPECT_FALSE(t.contains(5));
    EXPECT_FALSE(t.nearestAbove(0).has_value());
    EXPECT_EQ(t.maxInTable(), 0u);
    EXPECT_EQ(t.validGroups(), 0u);
}

TEST(MemoTable, GroupCoversConsecutiveValues)
{
    MemoTable t;
    t.insertGroup(100);
    for (rmcc::addr::CounterValue v = 100; v < 108; ++v)
        EXPECT_EQ(t.lookupRead(v), MemoHit::GroupHit) << v;
    EXPECT_EQ(t.lookupRead(99), MemoHit::Miss);
    EXPECT_EQ(t.lookupRead(108), MemoHit::Miss);
    EXPECT_EQ(t.groupHits(), 8u);
    EXPECT_EQ(t.misses(), 2u);
}

TEST(MemoTable, NearestAboveWithinAndAcrossGroups)
{
    MemoTable t;
    t.insertGroup(100);
    t.insertGroup(200);
    EXPECT_EQ(t.nearestAbove(50).value(), 100u);
    EXPECT_EQ(t.nearestAbove(100).value(), 101u);
    EXPECT_EQ(t.nearestAbove(106).value(), 107u);
    EXPECT_EQ(t.nearestAbove(107).value(), 200u); // group end -> next
    EXPECT_EQ(t.nearestAbove(206).value(), 207u);
    EXPECT_FALSE(t.nearestAbove(207).has_value());
    EXPECT_EQ(t.maxInTable(), 207u);
}

TEST(MemoTable, ConfigEntriesMatchPaper)
{
    const MemoConfig cfg;
    EXPECT_EQ(cfg.entries(), 128u);
    EXPECT_EQ(cfg.groups, 16u);
    EXPECT_EQ(cfg.group_size, 8u);
}

TEST(MemoTable, LfuInsertionEvictsColdestGroup)
{
    MemoConfig cfg;
    cfg.groups = 2;
    MemoTable t(cfg);
    t.insertGroup(100);
    t.insertGroup(200);
    t.lookupRead(100); // heat group 100
    t.lookupRead(101);
    t.lookupRead(200); // group 200 colder
    t.insertGroup(300); // evicts 200 (LFU); 100 stays
    EXPECT_TRUE(t.inGroups(100));
    EXPECT_FALSE(t.inGroups(200));
    EXPECT_TRUE(t.inGroups(300));
}

TEST(MemoTable, EvictedGroupValuesBecomeRecentOnUse)
{
    MemoConfig cfg;
    cfg.groups = 1;
    MemoTable t(cfg);
    t.insertGroup(100);
    t.insertGroup(200); // 100 -> shadow
    // First use of an evicted-group value misses but gets memoized.
    EXPECT_EQ(t.lookupRead(103), MemoHit::Miss);
    EXPECT_EQ(t.lookupRead(103), MemoHit::RecentHit);
    EXPECT_TRUE(t.contains(103));
}

TEST(MemoTable, RecentListIsMruBounded)
{
    MemoConfig cfg;
    cfg.groups = 1;
    cfg.recent_values = 2;
    MemoTable t(cfg);
    t.insertGroup(100);
    t.insertGroup(200); // 100..107 now shadow
    t.lookupRead(101);  // -> recent
    t.lookupRead(102);  // -> recent (full)
    t.lookupRead(103);  // -> pushes out 101
    EXPECT_EQ(t.lookupRead(102), MemoHit::RecentHit);
    EXPECT_EQ(t.lookupRead(103), MemoHit::RecentHit);
    EXPECT_EQ(t.lookupRead(101), MemoHit::Miss);
}

TEST(MemoTable, UpdatePolicyIgnoresRecentValues)
{
    // nearestAbove only targets groups: the MRU evicted values change
    // with every access, so the update policy must not chase them.
    MemoConfig cfg;
    cfg.groups = 1;
    MemoTable t(cfg);
    t.insertGroup(100);
    t.insertGroup(300);
    t.lookupRead(105); // 105 now memoized as recent value
    EXPECT_TRUE(t.contains(105));
    EXPECT_EQ(t.nearestAbove(104).value(), 300u);
}

TEST(MemoTable, EndOfEpochKeepsHottestOf32)
{
    MemoConfig cfg;
    cfg.groups = 2;
    cfg.shadow_groups = 2;
    MemoTable t(cfg);
    t.insertGroup(100);
    t.insertGroup(200);
    t.insertGroup(300); // one of {100,200} moves to shadow (LFU: 100)
    // Heat the shadowed group heavily: shadow freq counters learn.
    for (int i = 0; i < 50; ++i)
        t.lookupRead(100);
    for (int i = 0; i < 5; ++i)
        t.lookupRead(200);
    t.endOfEpoch();
    // The shadow group 100 out-scored a current group and is re-memoized.
    EXPECT_TRUE(t.inGroups(100));
}

TEST(MemoTable, EndOfEpochProtectsNewInsertion)
{
    MemoConfig cfg;
    cfg.groups = 2;
    MemoTable t(cfg);
    t.insertGroup(100);
    t.insertGroup(200);
    for (int i = 0; i < 50; ++i) {
        t.lookupRead(100);
        t.lookupRead(200);
    }
    t.insertGroup(900); // brand new, zero frequency, protected
    t.endOfEpoch();
    EXPECT_TRUE(t.inGroups(900));
}

TEST(MemoTable, FrequencyAgingHalvesAtEpoch)
{
    MemoConfig cfg;
    cfg.groups = 2;
    MemoTable t(cfg);
    t.insertGroup(100);
    for (int i = 0; i < 100; ++i)
        t.lookupRead(100);
    t.endOfEpoch();
    t.insertGroup(200);
    for (int i = 0; i < 60; ++i)
        t.lookupRead(200);
    t.endOfEpoch();
    // 100's aged frequency (50) < 200's (60): both kept (2 slots), but a
    // third hot insertion must now displace 100 first.
    t.insertGroup(300);
    EXPECT_TRUE(t.inGroups(200));
    EXPECT_FALSE(t.inGroups(100));
}

/** Parameterized group-size sweep (Fig 21/22 ablation machinery). */
class MemoGroupSize : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MemoGroupSize, EntriesConstantCoverageVaries)
{
    MemoConfig cfg;
    cfg.group_size = GetParam();
    cfg.groups = 128 / GetParam();
    EXPECT_EQ(cfg.entries(), 128u);
    MemoTable t(cfg);
    t.insertGroup(1000);
    for (unsigned k = 0; k < GetParam(); ++k)
        EXPECT_EQ(t.lookupRead(1000 + k), MemoHit::GroupHit);
    EXPECT_EQ(t.lookupRead(1000 + GetParam()), MemoHit::Miss);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MemoGroupSize,
                         ::testing::Values(4u, 8u, 16u));
