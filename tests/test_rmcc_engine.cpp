/**
 * @file
 * RMCC-engine tests: per-level tables, monitor-driven group insertion
 * with the Observed-System-Max cap, epoch machinery, read consults, and
 * coverage accounting (Sec IV, Fig 8).
 */
#include <gtest/gtest.h>

#include "core/rmcc_engine.hpp"

using namespace rmcc::core;
using namespace rmcc::ctr;

namespace
{

RmccConfig
testConfig()
{
    RmccConfig cfg;
    cfg.monitor.trigger_reads = 50; // fast triggers for tests
    cfg.budget.epoch_accesses = 1000;
    cfg.budget.initial_pool_accesses = 1e6;
    return cfg;
}

} // namespace

TEST(Engine, DisabledEngineIsTransparent)
{
    IntegrityTree tree(SchemeKind::Morphable, 1024);
    RmccConfig cfg = testConfig();
    cfg.enabled = false;
    RmccEngine engine(cfg, tree);
    const ReadConsult c = engine.onReadCounterUse(0, 5);
    EXPECT_EQ(c.hit, MemoHit::Miss);
    EXPECT_FALSE(c.releveled);
    const UpdateOutcome out = engine.onWriteCounter(0, 5);
    EXPECT_EQ(out.value, 1u);
    EXPECT_FALSE(out.used_memo_target);
}

TEST(Engine, MemoLevelsMatchConfig)
{
    IntegrityTree tree(SchemeKind::Morphable, 128 * 128 * 2);
    RmccConfig cfg = testConfig();
    cfg.memo_levels = 2;
    RmccEngine engine(cfg, tree);
    EXPECT_EQ(engine.memoLevels(), 2u);
}

TEST(Engine, HighReadsTriggerGroupInsertion)
{
    IntegrityTree tree(SchemeKind::Morphable, 1024);
    rmcc::util::Rng rng(1);
    tree.randomInit(rng, 1000);
    RmccEngine engine(testConfig(), tree);
    EXPECT_EQ(engine.table(0).validGroups(), 0u);
    for (int i = 0; i < 100; ++i)
        engine.onReadCounterUse(0, static_cast<std::uint64_t>(i) % 1024);
    EXPECT_EQ(engine.groupInsertions(0), 1u);
    EXPECT_GE(engine.table(0).validGroups(), 1u);
}

TEST(Engine, GroupStartCappedBySystemMax)
{
    // Sec IV-D2: new groups start at or below Observed-System-Max so the
    // largest counter only advances by one per writeback.
    IntegrityTree tree(SchemeKind::Morphable, 1024);
    rmcc::util::Rng rng(1);
    tree.randomInit(rng, 1000);
    RmccEngine engine(testConfig(), tree);
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 200; ++i)
            engine.onReadCounterUse(0,
                                    static_cast<std::uint64_t>(i) % 1024);
        for (int i = 0; i < 1100; ++i)
            engine.onDramAccess(); // close an epoch, re-arm the monitor
        EXPECT_LE(engine.table(0).maxInTable(),
                  tree.observedMax() +
                      engine.config().memo.group_size)
            << "round " << round;
    }
}

TEST(Engine, AtMostOneInsertionPerEpoch)
{
    IntegrityTree tree(SchemeKind::Morphable, 1024);
    rmcc::util::Rng rng(1);
    tree.randomInit(rng, 1000);
    RmccConfig cfg = testConfig();
    cfg.budget.epoch_accesses = 1000000; // one long epoch
    RmccEngine engine(cfg, tree);
    for (int i = 0; i < 5000; ++i)
        engine.onReadCounterUse(0, static_cast<std::uint64_t>(i) % 1024);
    EXPECT_EQ(engine.groupInsertions(0), 1u);
}

TEST(Engine, ReadConsultHitsAfterConvergence)
{
    IntegrityTree tree(SchemeKind::Morphable, 1024);
    rmcc::util::Rng rng(1);
    tree.randomInit(rng, 1000);
    RmccEngine engine(testConfig(), tree);
    // Trigger insertion, then relevel through reads, then expect hits.
    for (int pass = 0; pass < 4; ++pass)
        for (std::uint64_t i = 0; i < 1024; ++i)
            engine.onReadCounterUse(0, i);
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < 1024; ++i)
        hits += engine.onReadCounterUse(0, i).hit != MemoHit::Miss;
    EXPECT_GT(hits, 900u);
}

TEST(Engine, WritesWalkIntoMemoizedValues)
{
    IntegrityTree tree(SchemeKind::Morphable, 1024);
    rmcc::util::Rng rng(1);
    tree.randomInit(rng, 1000);
    RmccEngine engine(testConfig(), tree);
    for (std::uint64_t i = 0; i < 1024; ++i)
        engine.onReadCounterUse(0, i); // seeds the table via the monitor
    std::uint64_t memo_writes = 0;
    for (std::uint64_t i = 0; i < 1024; ++i)
        memo_writes += engine.onWriteCounter(0, i).used_memo_target;
    EXPECT_GT(memo_writes, 512u);
}

TEST(Engine, EpochEndReselectsAndRearms)
{
    IntegrityTree tree(SchemeKind::Morphable, 1024);
    rmcc::util::Rng rng(1);
    tree.randomInit(rng, 1000);
    RmccEngine engine(testConfig(), tree);
    for (int i = 0; i < 100; ++i)
        engine.onReadCounterUse(0, static_cast<std::uint64_t>(i));
    const std::uint64_t insertions_before = engine.groupInsertions(0);
    for (int i = 0; i < 1000; ++i)
        engine.onDramAccess(); // epoch boundary
    for (int i = 0; i < 100; ++i)
        engine.onReadCounterUse(0, static_cast<std::uint64_t>(i));
    // A fresh epoch allows a fresh insertion if counters are above max.
    EXPECT_GE(engine.groupInsertions(0), insertions_before);
}

TEST(Engine, AverageCoverageCountsConformingCounters)
{
    IntegrityTree tree(SchemeKind::Morphable, 1024);
    RmccEngine engine(testConfig(), tree);
    engine.table(0).insertGroup(100);
    tree.level(0).relevelBlock(0, 103);   // 128 counters at 103
    tree.level(0).relevelBlock(128, 105); // 128 counters at 105
    // 256 covered counters over 8 memoized values = 32 per value.
    EXPECT_NEAR(engine.averageCoverage(0), 256.0 / 8.0, 1e-9);
}

TEST(Engine, BudgetsAreIndependentPerLevel)
{
    IntegrityTree tree(SchemeKind::Morphable, 128 * 128 * 2);
    RmccConfig cfg = testConfig();
    cfg.budget.initial_pool_accesses = 0;
    RmccEngine engine(cfg, tree);
    engine.setBudgetPools(100.0);
    EXPECT_DOUBLE_EQ(engine.budget(0).available(), 100.0);
    EXPECT_DOUBLE_EQ(engine.budget(1).available(), 100.0);
}
