/**
 * @file
 * Trace-layer tests: buffer bounds and statistics, traced-heap address
 * assignment, and recorded load/store streams.
 */
#include <gtest/gtest.h>

#include "trace/trace_buffer.hpp"
#include "trace/traced_memory.hpp"

using namespace rmcc::trace;
using rmcc::addr::kHugePageSize;

TEST(TraceBuffer, CapacityEnforced)
{
    TraceBuffer buf(3);
    for (int i = 0; i < 10; ++i)
        buf.append(64 * static_cast<std::uint64_t>(i), false, 0);
    EXPECT_TRUE(buf.full());
    EXPECT_EQ(buf.size(), 3u);
}

TEST(TraceBuffer, StatsTrackWritesAndInstructions)
{
    TraceBuffer buf(10);
    buf.append(0, false, 4);
    buf.append(64, true, 9);
    EXPECT_EQ(buf.writes(), 1u);
    EXPECT_EQ(buf.totalInstructions(), 2u + 4 + 9);
}

TEST(TraceBuffer, DistinctBlocks)
{
    TraceBuffer buf(10);
    buf.append(0, false, 0);
    buf.append(32, false, 0);  // same 64 B block
    buf.append(64, false, 0);  // next block
    buf.append(200, true, 0);  // third block
    EXPECT_EQ(buf.distinctBlocks(), 3u);
}

TEST(TracedHeap, AllocationsAreHugePageAlignedAndDisjoint)
{
    TraceBuffer buf(10);
    TracedHeap heap(buf, 0.0, 1);
    const auto a = heap.allocate(1000, 8, "a");
    const auto b = heap.allocate(1000, 8, "b");
    EXPECT_EQ(a % kHugePageSize, 0u);
    EXPECT_EQ(b % kHugePageSize, 0u);
    EXPECT_GE(b, a + 8000);
}

TEST(TracedArray, RecordsAccessesAtElementAddresses)
{
    TraceBuffer buf(100);
    TracedHeap heap(buf, 0.0, 1);
    TracedArray<std::uint64_t> arr(heap, 64, "arr");
    arr.set(3, 42);
    EXPECT_EQ(arr.get(3), 42u);
    ASSERT_EQ(buf.size(), 2u);
    EXPECT_TRUE(buf.records()[0].is_write);
    EXPECT_FALSE(buf.records()[1].is_write);
    EXPECT_EQ(buf.records()[0].vaddr, arr.base() + 3 * 8);
    EXPECT_EQ(buf.records()[1].vaddr, buf.records()[0].vaddr);
}

TEST(TracedArray, RawAccessIsUntraced)
{
    TraceBuffer buf(100);
    TracedHeap heap(buf, 0.0, 1);
    TracedArray<int> arr(heap, 8, "arr");
    arr.raw(2) = 7;
    EXPECT_EQ(arr.raw(2), 7);
    EXPECT_EQ(buf.size(), 0u);
}

TEST(TracedHeap, DoneWhenBufferFull)
{
    TraceBuffer buf(2);
    TracedHeap heap(buf, 0.0, 1);
    TracedArray<int> arr(heap, 8, "arr");
    EXPECT_FALSE(heap.done());
    arr.set(0, 1);
    arr.set(1, 2);
    EXPECT_TRUE(heap.done());
}

TEST(TracedHeap, InstructionGapsFollowDensity)
{
    TraceBuffer buf(5000);
    TracedHeap heap(buf, 6.0, 99);
    TracedArray<int> arr(heap, 64, "arr");
    for (int i = 0; i < 5000 && !heap.done(); ++i)
        arr.set(static_cast<std::uint64_t>(i) % 64, i);
    const double mean =
        static_cast<double>(buf.totalInstructions() - buf.size()) /
        static_cast<double>(buf.size());
    EXPECT_NEAR(mean, 6.0, 1.0);
}

TEST(TraceBuffer, DroppedCountsOverflowAppends)
{
    TraceBuffer buf(3);
    EXPECT_EQ(buf.dropped(), 0u);
    for (int i = 0; i < 10; ++i)
        buf.append(64 * static_cast<std::uint64_t>(i), false, 0);
    EXPECT_EQ(buf.size(), 3u);
    EXPECT_EQ(buf.dropped(), 7u);
    // Stats cover only retained records.
    EXPECT_EQ(buf.totalInstructions(), 3u);
    EXPECT_EQ(buf.writes(), 0u);
}

TEST(TraceBuffer, DistinctBlocksCacheInvalidatedByAppend)
{
    TraceBuffer buf(10);
    buf.append(0, false, 0);
    EXPECT_EQ(buf.distinctBlocks(), 1u);
    EXPECT_EQ(buf.distinctBlocks(), 1u); // cached answer
    buf.append(64, false, 0);            // append must invalidate it
    EXPECT_EQ(buf.distinctBlocks(), 2u);
    buf.append(96, true, 0); // same 64 B block as the previous record
    EXPECT_EQ(buf.distinctBlocks(), 2u);
}

TEST(TraceRecord, PacksIntoEightBytes)
{
    static_assert(sizeof(Record) == 8);
    TraceBuffer buf(2);
    buf.append(kMaxRecordVaddr, true, kMaxRecordGap);
    buf.append(0, false, 0);
    EXPECT_EQ(buf.records()[0].vaddr, kMaxRecordVaddr);
    EXPECT_EQ(buf.records()[0].inst_gap, kMaxRecordGap);
    EXPECT_TRUE(buf.records()[0].is_write);
    EXPECT_EQ(buf.records()[1].vaddr, 0u);
    EXPECT_FALSE(buf.records()[1].is_write);
}
