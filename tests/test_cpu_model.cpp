/**
 * @file
 * OoO CPU-proxy tests: retire bandwidth, window-limited overlap, MSHR
 * limits, and stall semantics.
 */
#include <gtest/gtest.h>

#include "sim/cpu_model.hpp"

using namespace rmcc::sim;

TEST(Cpu, PeakRetireRate)
{
    CpuModel cpu; // 3.2 GHz x 4-wide = 12.8 inst/ns
    for (int i = 0; i < 1280; ++i)
        cpu.advance(0);
    EXPECT_NEAR(cpu.now(), 1280.0 / 12.8, 1e-6);
    EXPECT_EQ(cpu.instructions(), 1280u);
}

TEST(Cpu, InstructionGapsAccumulate)
{
    CpuModel cpu;
    cpu.advance(9); // 10 instructions total
    EXPECT_EQ(cpu.instructions(), 10u);
}

TEST(Cpu, IndependentMissesOverlap)
{
    // Two misses of 100 ns each, close together: the window lets them
    // overlap, so total time is ~100 ns, not 200.
    CpuModel cpu;
    const double t1 = cpu.advance(0);
    cpu.recordLongLatency(t1 + 100.0);
    const double t2 = cpu.advance(0);
    cpu.recordLongLatency(t2 + 100.0);
    for (int i = 0; i < 50; ++i)
        cpu.advance(0);
    const double end = cpu.finish();
    EXPECT_LT(end, 120.0);
}

TEST(Cpu, WindowLimitSerializesDistantMisses)
{
    // A miss issued, then > ROB instructions, then the clock must have
    // waited for the miss before retiring the younger instructions.
    CpuConfig cfg;
    CpuModel cpu(cfg);
    const double t1 = cpu.advance(0);
    cpu.recordLongLatency(t1 + 500.0);
    // Advance well past the 192-entry window.
    for (unsigned i = 0; i < cfg.rob + 8; ++i)
        cpu.advance(0);
    EXPECT_GE(cpu.now(), t1 + 500.0);
}

TEST(Cpu, MshrLimitBoundsOutstanding)
{
    CpuConfig cfg;
    cfg.mshrs = 2;
    cfg.rob = 10000; // window never binds in this test
    CpuModel cpu(cfg);
    // Three long misses back-to-back: the third must wait for the first.
    cpu.recordLongLatency(1000.0);
    cpu.recordLongLatency(1000.0);
    cpu.advance(0);
    EXPECT_GE(cpu.now(), 1000.0);
}

TEST(Cpu, StallUntilMovesClockForwardOnly)
{
    CpuModel cpu;
    cpu.stallUntil(50.0);
    EXPECT_DOUBLE_EQ(cpu.now(), 50.0);
    cpu.stallUntil(10.0);
    EXPECT_DOUBLE_EQ(cpu.now(), 50.0);
}

TEST(Cpu, FinishDrainsAllOutstanding)
{
    CpuModel cpu;
    cpu.advance(0);
    cpu.recordLongLatency(300.0);
    cpu.recordLongLatency(700.0);
    EXPECT_DOUBLE_EQ(cpu.finish(), 700.0);
}

TEST(Cpu, MemoryBoundSlowerThanComputeBound)
{
    CpuModel compute, memory;
    for (int i = 0; i < 1000; ++i) {
        compute.advance(20);
        const double t = memory.advance(20);
        memory.recordLongLatency(t + 80.0);
    }
    EXPECT_GT(memory.finish(), compute.finish());
}
