/**
 * @file
 * Candidate-monitor tests: the X+1+8i / X+129+2^j ladder, the 2 K
 * high-read trigger, and the 98% selection rule (Sec IV-C3).
 */
#include <gtest/gtest.h>

#include "core/candidate_monitor.hpp"

using namespace rmcc::core;

TEST(Monitor, CandidateLadderShape)
{
    CandidateMonitor m;
    m.arm(1000);
    const auto &c = m.candidates();
    ASSERT_EQ(c.size(), 17u + 14u);
    // Fine rungs X+1+8i, i = 0..16.
    for (unsigned i = 0; i <= 16; ++i)
        EXPECT_EQ(c[i], 1000u + 1 + 8 * i);
    // Exponential rungs X+129+2^j, j = 4..17.
    for (unsigned j = 4; j <= 17; ++j)
        EXPECT_EQ(c[17 + j - 4], 1000u + 129 + (1ULL << j));
    // Ladder is strictly ascending.
    for (std::size_t i = 1; i < c.size(); ++i)
        EXPECT_GT(c[i], c[i - 1]);
}

TEST(Monitor, NoSelectionBeforeTrigger)
{
    MonitorConfig cfg;
    cfg.trigger_reads = 100;
    CandidateMonitor m(cfg);
    m.arm(0);
    for (int i = 0; i < 99; ++i)
        m.observeRead(50); // all above X=0
    EXPECT_FALSE(m.takeSelection().has_value());
    m.observeRead(50);
    EXPECT_TRUE(m.takeSelection().has_value());
}

TEST(Monitor, ReadsBelowArmedMaxDontTrigger)
{
    MonitorConfig cfg;
    cfg.trigger_reads = 10;
    CandidateMonitor m(cfg);
    m.arm(1000);
    for (int i = 0; i < 100; ++i)
        m.observeRead(500); // below X
    EXPECT_EQ(m.highReads(), 0u);
    EXPECT_FALSE(m.takeSelection().has_value());
}

TEST(Monitor, SelectsSmallestCandidateCovering98Percent)
{
    MonitorConfig cfg;
    cfg.trigger_reads = 100;
    CandidateMonitor m(cfg);
    m.arm(1000);
    // All reads at 1040: the smallest candidate above 1040 covers 100%.
    for (int i = 0; i < 200; ++i)
        m.observeRead(1040);
    const auto sel = m.takeSelection();
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(*sel, 1041u); // 1000+1+8*5
}

TEST(Monitor, TwoPercentOutliersIgnored)
{
    MonitorConfig cfg;
    cfg.trigger_reads = 100;
    cfg.coverage_goal = 0.98;
    CandidateMonitor m(cfg);
    m.arm(1000);
    // 99% of reads at 1010, 1% far above: the selection tracks the bulk.
    for (int i = 0; i < 990; ++i)
        m.observeRead(1010);
    for (int i = 0; i < 10; ++i)
        m.observeRead(900000);
    const auto sel = m.takeSelection();
    ASSERT_TRUE(sel.has_value());
    EXPECT_LE(*sel, 1000u + 129 + (1ULL << 17));
    EXPECT_LE(*sel, 1017u + 8);
}

TEST(Monitor, FarReadsPickTopRungAndRatchet)
{
    MonitorConfig cfg;
    cfg.trigger_reads = 10;
    CandidateMonitor m(cfg);
    m.arm(0);
    // Reads far above every rung: even the top rung covers < 98%, so the
    // monitor returns the top rung and the ladder ratchets upward on the
    // next arming.
    for (int i = 0; i < 20; ++i)
        m.observeRead(10000000);
    const auto sel = m.takeSelection();
    ASSERT_TRUE(sel.has_value());
    EXPECT_EQ(*sel, 129u + (1ULL << 17));
}

TEST(Monitor, RearmResetsCounts)
{
    MonitorConfig cfg;
    cfg.trigger_reads = 10;
    CandidateMonitor m(cfg);
    m.arm(0);
    for (int i = 0; i < 20; ++i)
        m.observeRead(5);
    EXPECT_TRUE(m.takeSelection().has_value());
    m.arm(100);
    EXPECT_EQ(m.highReads(), 0u);
    EXPECT_FALSE(m.takeSelection().has_value());
}
