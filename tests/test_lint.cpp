/**
 * @file
 * End-to-end tests for rmcc-lint (tools/lint/rmcc_lint.cpp).
 *
 * Drives the installed binary over the real source tree and over the
 * fixture trees in tests/lint_fixtures/: every rule must fire on the
 * seeded violations, every allow() escape must suppress it, and the
 * real tree must scan clean — making lint cleanliness a tier-1
 * guarantee enforced by ctest, not just by CI.
 *
 * RMCC_LINT_BIN / RMCC_LINT_ROOT are compile definitions injected by
 * tests/CMakeLists.txt.
 */

#include <cstdio>
#include <string>

#include <sys/wait.h>

#include <gtest/gtest.h>

namespace
{

struct LintRun
{
    int exit_code = -1;
    std::string output; // stdout only; findings go to stdout
};

LintRun
runLint(const std::string &tree)
{
    const std::string cmd =
        std::string(RMCC_LINT_BIN) + " " + tree + " 2>/dev/null";
    LintRun r;
    FILE *p = ::popen(cmd.c_str(), "r");
    if (p == nullptr)
        return r;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, p)) > 0)
        r.output.append(buf, n);
    const int status = ::pclose(p);
    if (WIFEXITED(status))
        r.exit_code = WEXITSTATUS(status);
    return r;
}

std::string
fixture(const char *name)
{
    return std::string(RMCC_LINT_ROOT) + "/tests/lint_fixtures/" + name;
}

} // namespace

//! The shipped tree must be lint-clean: rules are invariants, not
//! aspirations.
TEST(Lint, RealTreeIsClean)
{
    const LintRun r = runLint(RMCC_LINT_ROOT);
    EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Lint, FixtureCleanPasses)
{
    const LintRun r = runLint(fixture("clean"));
    EXPECT_EQ(r.exit_code, 0) << r.output;
}

//! Each rule must fire at least once on its seeded violation, and the
//! process must fail — this is what makes the CI gate demonstrably
//! capable of rejecting a bad change.
TEST(Lint, SeededViolationsFailNonzero)
{
    const LintRun r = runLint(fixture("violations"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("rule(getenv)"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("rule(determinism)"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("rule(hot-path)"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("rule(mutex-guard)"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("rule(env-docs)"), std::string::npos)
        << r.output;
    // Both directions of env-docs: undocumented use and stale docs.
    EXPECT_NE(r.output.find("RMCC_NOT_IN_DOCS"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("RMCC_STALE_VAR"), std::string::npos)
        << r.output;
    // The file-level unguarded-mutex form fires too.
    EXPECT_NE(r.output.find("unguarded_mutex.cpp"), std::string::npos)
        << r.output;
}

//! The same violations with line-scoped allow() escapes scan clean.
TEST(Lint, AllowSuppressesEveryRule)
{
    const LintRun r = runLint(fixture("allowed"));
    EXPECT_EQ(r.exit_code, 0) << r.output;
}

//! A nonexistent root is a usage error (exit 2), distinct from
//! findings (exit 1) — CI depends on the distinction.
TEST(Lint, MissingRootIsUsageError)
{
    const LintRun r = runLint(fixture("no_such_tree"));
    EXPECT_EQ(r.exit_code, 2) << r.output;
}
