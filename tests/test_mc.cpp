/**
 * @file
 * Secure-MC tests: read/write path latencies for cached vs missing
 * counters with and without memoization, verification chains, overflow
 * engine caps, and the Fig 5 latency anatomy.
 */
#include <gtest/gtest.h>

#include "mc/latency.hpp"
#include "mc/overflow_engine.hpp"
#include "mc/secure_mc.hpp"

using namespace rmcc;
using namespace rmcc::mc;

namespace
{

struct McRig
{
    ctr::IntegrityTree tree;
    core::RmccEngine engine;
    dram::Ddr4 dram;
    SecureMc mc;

    explicit McRig(bool secure, bool rmcc,
                   std::uint64_t data_blocks = 128 * 128 * 4)
        : tree(ctr::SchemeKind::Morphable, data_blocks),
          engine(makeCfg(rmcc), tree),
          dram(quietDram()),
          mc(McConfig{secure, 128 * 1024, 32, LatencyConfig()}, tree,
             engine, dram)
    {
    }

    static core::RmccConfig makeCfg(bool rmcc)
    {
        core::RmccConfig cfg;
        cfg.enabled = rmcc;
        cfg.budget.initial_pool_accesses = 1e6;
        // These microtests control counter state explicitly; background
        // read-releveling would add DRAM drain traffic between probes.
        cfg.read_update = false;
        return cfg;
    }

    static dram::DramConfig quietDram()
    {
        dram::DramConfig cfg;
        cfg.tREFI_ns = 1e12;
        return cfg;
    }
};

} // namespace

TEST(SecureMc, NonSecureReadIsJustDram)
{
    McRig rig(false, false);
    const McReadResult r = rig.mc.read(0x1000, 0.0);
    EXPECT_FALSE(r.counter_miss);
    EXPECT_LT(r.done_ns, 50.0);
    EXPECT_DOUBLE_EQ(rig.mc.stats().get("dram.total"), 1.0);
}

TEST(SecureMc, FirstSecureReadWalksTheTree)
{
    McRig rig(true, false);
    const McReadResult r = rig.mc.read(0x1000, 0.0);
    EXPECT_TRUE(r.counter_miss);
    // L0 + L1 counter blocks fetched (the level above lives on-chip).
    EXPECT_DOUBLE_EQ(rig.mc.stats().get("dram.ctr_read"), 2.0);
    EXPECT_GT(r.done_ns, 40.0);
}

TEST(SecureMc, CounterHitHidesAesUnderDataFetch)
{
    McRig rig(true, false);
    rig.mc.read(0x1000, 0.0); // warm the counter cache
    const double t = 1000.0;
    const McReadResult hit = rig.mc.read(0x1040, t); // same counter block
    EXPECT_FALSE(hit.counter_miss);
    // AES (15 ns) + decode start immediately and mostly hide under the
    // ~row-miss DRAM access.
    EXPECT_LT(hit.done_ns - t, 55.0);
}

TEST(SecureMc, CounterMissSerializesAesWithoutRmcc)
{
    McRig rig(true, false);
    const double t = 1000.0;
    const McReadResult miss = rig.mc.read(0x200000, t);
    EXPECT_TRUE(miss.counter_miss);
    // Counter fetch (parallel with data) + decode + AES serialize on top.
    EXPECT_GT(miss.done_ns - t, 45.0);
}

TEST(SecureMc, MemoHitShavesAesLatencyOnCounterMiss)
{
    McRig baseline(true, false);
    McRig rmcc(true, true);
    // Converge the RMCC table on the counters this block will use.
    rmcc.engine.table(0).insertGroup(100);
    rmcc.tree.level(0).relevelBlock(addr::blockOf(0x200000), 103);
    // Warm the upper tree levels (steady state: they are tiny and hot);
    // 0x210000 shares L1 with 0x200000 but uses a different L0 block.
    baseline.mc.read(0x210000, 0.0);
    rmcc.mc.read(0x210000, 0.0);

    const double t = 1000.0;
    const McReadResult b = baseline.mc.read(0x200000, t);
    const McReadResult r = rmcc.mc.read(0x200000, t);
    ASSERT_TRUE(b.counter_miss);
    ASSERT_TRUE(r.counter_miss);
    EXPECT_TRUE(r.memo_hit);
    EXPECT_TRUE(r.accelerated);
    // The memoized path saves roughly AES - CLMUL = 14 ns.
    EXPECT_LT(r.done_ns, b.done_ns - 8.0);
}

TEST(SecureMc, WritePathUpdatesCounterAndWritesData)
{
    McRig rig(true, false);
    rig.mc.write(0x3000, 0.0);
    const addr::BlockId blk = addr::blockOf(0x3000);
    EXPECT_EQ(rig.tree.level(0).read(blk), 1u);
    EXPECT_DOUBLE_EQ(rig.mc.stats().get("dram.data_write"), 1.0);
    // Counter block was fetched for the read-modify-write.
    EXPECT_GE(rig.mc.stats().get("dram.ctr_read"), 1.0);
}

TEST(SecureMc, RepeatedWritesIncrementByOneBaseline)
{
    McRig rig(true, false);
    const addr::BlockId blk = addr::blockOf(0x3000);
    for (int i = 0; i < 5; ++i)
        rig.mc.write(0x3000, static_cast<double>(i) * 100);
    EXPECT_EQ(rig.tree.level(0).read(blk), 5u);
}

TEST(SecureMc, StatsConservation)
{
    McRig rig(true, true);
    double t = 0.0;
    for (int i = 0; i < 300; ++i) {
        rig.mc.read(static_cast<addr::Addr>(i) * 8192, t);
        t += 30.0;
        if (i % 3 == 0)
            rig.mc.write(static_cast<addr::Addr>(i) * 8192, t);
    }
    const auto &s = rig.mc.stats();
    EXPECT_DOUBLE_EQ(s.get("ctr.l0_hit") + s.get("ctr.l0_miss"),
                     s.get("mc.reads"));
    EXPECT_DOUBLE_EQ(s.get("memo.l0_lookups_all"), s.get("mc.reads"));
    EXPECT_LE(s.get("memo.l0_hit_on_miss"),
              s.get("memo.l0_lookups_on_miss"));
    // Every DRAM category sums to the total.
    double cat = 0.0;
    for (const char *c : {"dram.data_read", "dram.data_write",
                          "dram.ctr_read", "dram.ctr_write", "dram.ovf0",
                          "dram.ovf_hi", "dram.update"})
        cat += s.get(c);
    EXPECT_DOUBLE_EQ(cat, s.get("dram.total"));
}

TEST(OverflowEngine, CapStallsThirdOverflow)
{
    dram::Ddr4 dram(McRig::quietDram());
    OverflowEngine ovf(dram, 2);
    const OverflowIssue a = ovf.schedule(0, 64, 0.0);
    const OverflowIssue b = ovf.schedule(1 << 20, 64, 0.0);
    EXPECT_DOUBLE_EQ(a.stall_until_ns, 0.0);
    EXPECT_DOUBLE_EQ(b.stall_until_ns, 0.0);
    // Third overflow while two are in flight: the core stalls.
    const OverflowIssue c = ovf.schedule(2 << 20, 64, 0.0);
    EXPECT_GT(c.stall_until_ns, 0.0);
    EXPECT_GT(ovf.totalStallNs(), 0.0);
    EXPECT_EQ(ovf.overflowCount(), 3u);
    EXPECT_EQ(ovf.totalAccesses(), 3u * 128);
}

TEST(OverflowEngine, NoStallAfterDrain)
{
    dram::Ddr4 dram(McRig::quietDram());
    OverflowEngine ovf(dram, 2);
    const OverflowIssue a = ovf.schedule(0, 64, 0.0);
    ovf.schedule(1 << 20, 64, 0.0);
    const OverflowIssue c =
        ovf.schedule(2 << 20, 64, a.drain_done_ns + 10000.0);
    EXPECT_DOUBLE_EQ(c.stall_until_ns, a.drain_done_ns + 10000.0);
}

TEST(Fig5Anatomy, MemoizationSavesAesMinusClmul)
{
    const LatencyConfig lat;
    const ReadAnatomy base = fig5Anatomy(45.0, 45.0, 3.0, lat, false);
    const ReadAnatomy memo = fig5Anatomy(45.0, 45.0, 3.0, lat, true);
    // Baseline: counter at 48, + AES 15 -> OTP at 63.
    EXPECT_NEAR(base.otp_ready_ns, 63.0, 1e-9);
    EXPECT_NEAR(memo.otp_ready_ns, 49.0, 1e-9);
    EXPECT_NEAR(base.done_ns - memo.done_ns, 14.0, 1e-9);
}

TEST(Fig5Anatomy, AddressAesBoundsTheFastPath)
{
    // With an instant counter, the address-only AES (started at t=0)
    // bounds OTP readiness.
    const LatencyConfig lat;
    const ReadAnatomy a = fig5Anatomy(45.0, 0.0, 0.0, lat, true);
    EXPECT_NEAR(a.otp_ready_ns, lat.aes_ns, 1e-9);
}
