/**
 * @file
 * Workload-model tests: graph construction, kernel trace properties
 * (footprints, write ratios, irregularity ordering), registry coverage
 * of the paper's 11-benchmark suite, and determinism.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <unistd.h>

#include "workloads/registry.hpp"

using namespace rmcc;
using namespace rmcc::wl;

TEST(Graph, PowerLawShape)
{
    const Graph g = Graph::powerLaw(10000, 80000, 0.8, 1);
    EXPECT_EQ(g.num_vertices, 10000u);
    EXPECT_EQ(g.numEdges(), 80000u);
    EXPECT_EQ(g.offsets.front(), 0u);
    EXPECT_EQ(g.offsets.back(), 80000u);
    // Degree skew: the max degree far exceeds the mean.
    std::uint64_t max_deg = 0;
    for (std::uint64_t v = 0; v < g.num_vertices; ++v)
        max_deg = std::max(max_deg, g.degree(v));
    EXPECT_GT(max_deg, 8u * (80000 / 10000));
}

TEST(Graph, DegreeCapBoundsHubs)
{
    const Graph g = Graph::powerLaw(10000, 80000, 0.8, 1);
    const std::uint64_t cap =
        std::max<std::uint64_t>(64, 64 * 80000 / 10000);
    for (std::uint64_t v = 0; v < g.num_vertices; ++v)
        EXPECT_LE(g.degree(v), cap + 1);
}

TEST(Graph, HubsAreScatteredAcrossIdSpace)
{
    const Graph g = Graph::powerLaw(16384, 131072, 0.8, 2);
    // Collect the 32 highest-degree vertices; they must not cluster in a
    // contiguous id prefix (realistic graphs have scattered hub ids).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> deg;
    for (std::uint64_t v = 0; v < g.num_vertices; ++v)
        deg.emplace_back(g.degree(v), v);
    std::sort(deg.rbegin(), deg.rend());
    std::uint64_t in_prefix = 0;
    for (int i = 0; i < 32; ++i)
        in_prefix += deg[static_cast<std::size_t>(i)].second < 1024;
    EXPECT_LT(in_prefix, 8u);
}

TEST(Graph, AdjacencySortedPerVertex)
{
    const Graph g = Graph::powerLaw(4096, 32768, 0.8, 3);
    for (std::uint64_t v = 0; v < g.num_vertices; ++v)
        EXPECT_TRUE(std::is_sorted(g.edges.begin() + g.offsets[v],
                                   g.edges.begin() + g.offsets[v + 1]));
}

TEST(Graph, DeterministicForSeed)
{
    const Graph a = Graph::powerLaw(1000, 8000, 0.8, 9);
    const Graph b = Graph::powerLaw(1000, 8000, 0.8, 9);
    EXPECT_EQ(a.edges, b.edges);
    EXPECT_EQ(a.offsets, b.offsets);
}

TEST(Graph, DiskCacheRoundTripsAndSurvivesCorruption)
{
    // Point the cache at a scratch dir so this test owns its files.
    // The filename pins the on-disk naming scheme (0.8 == 0x3fe99...9a).
    const std::string dir =
        ::testing::TempDir() + "rmcc_graph_cache_test";
    const std::string cache_file =
        dir + "/rmcc_graph_v1_3e8_1f40_3fe999999999999a_9.bin";
    ASSERT_EQ(setenv("RMCC_GRAPH_CACHE_DIR", dir.c_str(), 1), 0);
    ASSERT_EQ(system(("rm -rf '" + dir + "'").c_str()), 0);

    // Nonexistent dir: save fails silently, build still succeeds.
    const Graph base = Graph::powerLaw(1000, 8000, 0.8, 9);
    const Graph nodir = Graph::powerLawCached(1000, 8000, 0.8, 9);
    EXPECT_EQ(nodir.offsets, base.offsets);
    EXPECT_EQ(nodir.edges, base.edges);

    // Cold miss populates the cache; warm hit returns the same bytes.
    ASSERT_EQ(system(("mkdir -p '" + dir + "'").c_str()), 0);
    const Graph cold = Graph::powerLawCached(1000, 8000, 0.8, 9);
    EXPECT_EQ(cold.offsets, base.offsets);
    EXPECT_EQ(cold.edges, base.edges);
    ASSERT_TRUE(std::ifstream(cache_file).good())
        << "cache file not created where expected: " << cache_file;
    const Graph warm = Graph::powerLawCached(1000, 8000, 0.8, 9);
    EXPECT_EQ(warm.offsets, base.offsets);
    EXPECT_EQ(warm.edges, base.edges);

    // Corrupt the payload: the checksum must reject it and rebuild.
    {
        std::fstream f(cache_file,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(200);
        const int orig = f.get();
        ASSERT_NE(orig, EOF);
        f.seekp(200);
        f.put(static_cast<char>(orig ^ 0x7f));
    }
    const Graph rebuilt = Graph::powerLawCached(1000, 8000, 0.8, 9);
    EXPECT_EQ(rebuilt.offsets, base.offsets);
    EXPECT_EQ(rebuilt.edges, base.edges);

    // RMCC_GRAPH_CACHE=0 bypasses the cache entirely.
    ASSERT_EQ(setenv("RMCC_GRAPH_CACHE", "0", 1), 0);
    const Graph off = Graph::powerLawCached(1000, 8000, 0.8, 9);
    EXPECT_EQ(off.offsets, base.offsets);
    EXPECT_EQ(off.edges, base.edges);
    unsetenv("RMCC_GRAPH_CACHE");
    unsetenv("RMCC_GRAPH_CACHE_DIR");
}

TEST(Graph, DiskCacheRejectsTornWritesAndBadChecksums)
{
    const std::string dir =
        ::testing::TempDir() + "rmcc_graph_torn_test";
    const std::string cache_file =
        dir + "/rmcc_graph_v1_3e8_1f40_3fe999999999999a_9.bin";
    ASSERT_EQ(system(("rm -rf '" + dir + "' && mkdir -p '" + dir + "'")
                         .c_str()),
              0);
    ASSERT_EQ(setenv("RMCC_GRAPH_CACHE_DIR", dir.c_str(), 1), 0);

    const Graph base = Graph::powerLaw(1000, 8000, 0.8, 9);
    (void)Graph::powerLawCached(1000, 8000, 0.8, 9); // populate
    std::ifstream probe(cache_file, std::ios::binary | std::ios::ate);
    ASSERT_TRUE(probe.good());
    const std::streamoff full_size = probe.tellg();
    probe.close();

    // Torn write: a crash mid-save leaves the CSR payload cut short.
    // The loader must notice the missing bytes and rebuild.
    ASSERT_EQ(truncate(cache_file.c_str(),
                       static_cast<off_t>(full_size / 2)),
              0);
    const Graph torn = Graph::powerLawCached(1000, 8000, 0.8, 9);
    EXPECT_EQ(torn.offsets, base.offsets);
    EXPECT_EQ(torn.edges, base.edges);

    // The rebuild above re-populated the cache; now flip one byte of the
    // stored checksum (last header field) so header and payload disagree.
    {
        std::fstream f(cache_file,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        const std::streamoff checksum_off = 7 * 8; // 8th u64 field
        f.seekg(checksum_off);
        const int orig = f.get();
        ASSERT_NE(orig, EOF);
        f.seekp(checksum_off);
        f.put(static_cast<char>(orig ^ 0x01));
    }
    const Graph badsum = Graph::powerLawCached(1000, 8000, 0.8, 9);
    EXPECT_EQ(badsum.offsets, base.offsets);
    EXPECT_EQ(badsum.edges, base.edges);

    // A cache dir that is not a directory disables caching but must not
    // break graph construction.
    ASSERT_EQ(setenv("RMCC_GRAPH_CACHE_DIR",
                     (dir + "/no/such/dir").c_str(), 1),
              0);
    const Graph nodir = Graph::powerLawCached(1000, 8000, 0.8, 9);
    EXPECT_EQ(nodir.offsets, base.offsets);
    EXPECT_EQ(nodir.edges, base.edges);
    unsetenv("RMCC_GRAPH_CACHE_DIR");
}

TEST(Registry, PaperSuiteComplete)
{
    const auto &suite = workloadSuite();
    ASSERT_EQ(suite.size(), 11u);
    const char *expected[] = {
        "pageRank",      "graphColoring", "connectedComp", "degreeCentr",
        "DFS",           "BFS",           "triangleCount", "shortestPath",
        "canneal",       "omnetpp",       "mcf"};
    for (std::size_t i = 0; i < 11; ++i)
        EXPECT_EQ(suite[i].name, expected[i]);
    EXPECT_NE(findWorkload("canneal"), nullptr);
    EXPECT_EQ(findWorkload("nosuch"), nullptr);
}

/** Each workload generates full traces with sane shapes. */
class WorkloadTraces : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadTraces, GeneratesFullDeterministicTrace)
{
    const Workload *w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    const auto t1 = generateTrace(*w, 50000, 42);
    EXPECT_EQ(t1.size(), 50000u);
    EXPECT_GT(t1.totalInstructions(), t1.size());
    // Some workloads are read-only in steady state; all must read.
    EXPECT_LT(t1.writes(), t1.size());
    const auto t2 = generateTrace(*w, 50000, 42);
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_EQ(t1.records()[i].vaddr, t2.records()[i].vaddr);
        EXPECT_EQ(t1.records()[i].is_write, t2.records()[i].is_write);
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadTraces,
                         ::testing::Values("pageRank", "graphColoring",
                                           "connectedComp", "degreeCentr",
                                           "DFS", "BFS", "triangleCount",
                                           "shortestPath", "canneal",
                                           "omnetpp", "mcf"));

TEST(WorkloadCharacter, CannealIsMoreIrregularThanMcf)
{
    // Distinct-blocks-per-access separates the suite's extremes: canneal
    // scatters, mcf streams with reuse across passes.
    const auto canneal = generateTrace(*findWorkload("canneal"), 60000, 1);
    const auto mcf = generateTrace(*findWorkload("mcf"), 60000, 1);
    const double c = static_cast<double>(canneal.distinctBlocks()) /
                     static_cast<double>(canneal.size());
    const double m = static_cast<double>(mcf.distinctBlocks()) /
                     static_cast<double>(mcf.size());
    EXPECT_GT(c, m);
}

TEST(WorkloadCharacter, WriteIntensityVaries)
{
    const auto pr = generateTrace(*findWorkload("pageRank"), 60000, 1);
    const auto tc = generateTrace(*findWorkload("triangleCount"), 60000, 1);
    // PageRank pushes (writes); triangle counting only reads adjacency.
    EXPECT_GT(pr.writes() * 10, pr.size());
    EXPECT_LT(tc.writes() * 10, tc.size());
}
