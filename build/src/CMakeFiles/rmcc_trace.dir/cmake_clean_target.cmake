file(REMOVE_RECURSE
  "librmcc_trace.a"
)
