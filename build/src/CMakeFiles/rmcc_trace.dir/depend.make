# Empty dependencies file for rmcc_trace.
# This may be replaced when dependencies are built.
