file(REMOVE_RECURSE
  "CMakeFiles/rmcc_trace.dir/trace/trace_buffer.cpp.o"
  "CMakeFiles/rmcc_trace.dir/trace/trace_buffer.cpp.o.d"
  "CMakeFiles/rmcc_trace.dir/trace/traced_memory.cpp.o"
  "CMakeFiles/rmcc_trace.dir/trace/traced_memory.cpp.o.d"
  "librmcc_trace.a"
  "librmcc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
