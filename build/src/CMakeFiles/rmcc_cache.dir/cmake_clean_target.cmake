file(REMOVE_RECURSE
  "librmcc_cache.a"
)
