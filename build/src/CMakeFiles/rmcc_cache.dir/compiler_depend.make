# Empty compiler generated dependencies file for rmcc_cache.
# This may be replaced when dependencies are built.
