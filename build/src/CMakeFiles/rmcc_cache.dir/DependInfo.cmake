
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/hierarchy.cpp" "src/CMakeFiles/rmcc_cache.dir/cache/hierarchy.cpp.o" "gcc" "src/CMakeFiles/rmcc_cache.dir/cache/hierarchy.cpp.o.d"
  "/root/repo/src/cache/set_assoc.cpp" "src/CMakeFiles/rmcc_cache.dir/cache/set_assoc.cpp.o" "gcc" "src/CMakeFiles/rmcc_cache.dir/cache/set_assoc.cpp.o.d"
  "/root/repo/src/cache/tlb.cpp" "src/CMakeFiles/rmcc_cache.dir/cache/tlb.cpp.o" "gcc" "src/CMakeFiles/rmcc_cache.dir/cache/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rmcc_address.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
