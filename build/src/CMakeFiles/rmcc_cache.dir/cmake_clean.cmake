file(REMOVE_RECURSE
  "CMakeFiles/rmcc_cache.dir/cache/hierarchy.cpp.o"
  "CMakeFiles/rmcc_cache.dir/cache/hierarchy.cpp.o.d"
  "CMakeFiles/rmcc_cache.dir/cache/set_assoc.cpp.o"
  "CMakeFiles/rmcc_cache.dir/cache/set_assoc.cpp.o.d"
  "CMakeFiles/rmcc_cache.dir/cache/tlb.cpp.o"
  "CMakeFiles/rmcc_cache.dir/cache/tlb.cpp.o.d"
  "librmcc_cache.a"
  "librmcc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
