file(REMOVE_RECURSE
  "CMakeFiles/rmcc_counters.dir/counters/monolithic.cpp.o"
  "CMakeFiles/rmcc_counters.dir/counters/monolithic.cpp.o.d"
  "CMakeFiles/rmcc_counters.dir/counters/morphable.cpp.o"
  "CMakeFiles/rmcc_counters.dir/counters/morphable.cpp.o.d"
  "CMakeFiles/rmcc_counters.dir/counters/sc64.cpp.o"
  "CMakeFiles/rmcc_counters.dir/counters/sc64.cpp.o.d"
  "CMakeFiles/rmcc_counters.dir/counters/store.cpp.o"
  "CMakeFiles/rmcc_counters.dir/counters/store.cpp.o.d"
  "CMakeFiles/rmcc_counters.dir/counters/tree.cpp.o"
  "CMakeFiles/rmcc_counters.dir/counters/tree.cpp.o.d"
  "librmcc_counters.a"
  "librmcc_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcc_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
