
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/counters/monolithic.cpp" "src/CMakeFiles/rmcc_counters.dir/counters/monolithic.cpp.o" "gcc" "src/CMakeFiles/rmcc_counters.dir/counters/monolithic.cpp.o.d"
  "/root/repo/src/counters/morphable.cpp" "src/CMakeFiles/rmcc_counters.dir/counters/morphable.cpp.o" "gcc" "src/CMakeFiles/rmcc_counters.dir/counters/morphable.cpp.o.d"
  "/root/repo/src/counters/sc64.cpp" "src/CMakeFiles/rmcc_counters.dir/counters/sc64.cpp.o" "gcc" "src/CMakeFiles/rmcc_counters.dir/counters/sc64.cpp.o.d"
  "/root/repo/src/counters/store.cpp" "src/CMakeFiles/rmcc_counters.dir/counters/store.cpp.o" "gcc" "src/CMakeFiles/rmcc_counters.dir/counters/store.cpp.o.d"
  "/root/repo/src/counters/tree.cpp" "src/CMakeFiles/rmcc_counters.dir/counters/tree.cpp.o" "gcc" "src/CMakeFiles/rmcc_counters.dir/counters/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rmcc_address.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
