file(REMOVE_RECURSE
  "librmcc_counters.a"
)
