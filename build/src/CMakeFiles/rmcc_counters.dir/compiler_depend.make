# Empty compiler generated dependencies file for rmcc_counters.
# This may be replaced when dependencies are built.
