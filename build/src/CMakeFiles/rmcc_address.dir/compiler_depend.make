# Empty compiler generated dependencies file for rmcc_address.
# This may be replaced when dependencies are built.
