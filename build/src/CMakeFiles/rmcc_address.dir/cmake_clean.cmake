file(REMOVE_RECURSE
  "CMakeFiles/rmcc_address.dir/address/layout.cpp.o"
  "CMakeFiles/rmcc_address.dir/address/layout.cpp.o.d"
  "CMakeFiles/rmcc_address.dir/address/page_mapper.cpp.o"
  "CMakeFiles/rmcc_address.dir/address/page_mapper.cpp.o.d"
  "librmcc_address.a"
  "librmcc_address.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcc_address.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
