file(REMOVE_RECURSE
  "librmcc_address.a"
)
