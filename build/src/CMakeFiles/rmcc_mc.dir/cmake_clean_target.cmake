file(REMOVE_RECURSE
  "librmcc_mc.a"
)
