# Empty compiler generated dependencies file for rmcc_mc.
# This may be replaced when dependencies are built.
