file(REMOVE_RECURSE
  "CMakeFiles/rmcc_mc.dir/mc/latency.cpp.o"
  "CMakeFiles/rmcc_mc.dir/mc/latency.cpp.o.d"
  "CMakeFiles/rmcc_mc.dir/mc/overflow_engine.cpp.o"
  "CMakeFiles/rmcc_mc.dir/mc/overflow_engine.cpp.o.d"
  "CMakeFiles/rmcc_mc.dir/mc/secure_mc.cpp.o"
  "CMakeFiles/rmcc_mc.dir/mc/secure_mc.cpp.o.d"
  "librmcc_mc.a"
  "librmcc_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcc_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
