file(REMOVE_RECURSE
  "CMakeFiles/rmcc_util.dir/util/bitvec.cpp.o"
  "CMakeFiles/rmcc_util.dir/util/bitvec.cpp.o.d"
  "CMakeFiles/rmcc_util.dir/util/rng.cpp.o"
  "CMakeFiles/rmcc_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/rmcc_util.dir/util/stats.cpp.o"
  "CMakeFiles/rmcc_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/rmcc_util.dir/util/table.cpp.o"
  "CMakeFiles/rmcc_util.dir/util/table.cpp.o.d"
  "librmcc_util.a"
  "librmcc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
