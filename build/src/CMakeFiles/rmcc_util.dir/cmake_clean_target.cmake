file(REMOVE_RECURSE
  "librmcc_util.a"
)
