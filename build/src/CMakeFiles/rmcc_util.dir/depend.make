# Empty dependencies file for rmcc_util.
# This may be replaced when dependencies are built.
