file(REMOVE_RECURSE
  "librmcc_dram.a"
)
