# Empty compiler generated dependencies file for rmcc_dram.
# This may be replaced when dependencies are built.
