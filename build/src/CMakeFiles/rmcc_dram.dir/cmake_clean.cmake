file(REMOVE_RECURSE
  "CMakeFiles/rmcc_dram.dir/dram/bank.cpp.o"
  "CMakeFiles/rmcc_dram.dir/dram/bank.cpp.o.d"
  "CMakeFiles/rmcc_dram.dir/dram/channel.cpp.o"
  "CMakeFiles/rmcc_dram.dir/dram/channel.cpp.o.d"
  "CMakeFiles/rmcc_dram.dir/dram/ddr4.cpp.o"
  "CMakeFiles/rmcc_dram.dir/dram/ddr4.cpp.o.d"
  "CMakeFiles/rmcc_dram.dir/dram/mapping.cpp.o"
  "CMakeFiles/rmcc_dram.dir/dram/mapping.cpp.o.d"
  "librmcc_dram.a"
  "librmcc_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcc_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
