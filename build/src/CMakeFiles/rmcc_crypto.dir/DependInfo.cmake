
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/CMakeFiles/rmcc_crypto.dir/crypto/aes.cpp.o" "gcc" "src/CMakeFiles/rmcc_crypto.dir/crypto/aes.cpp.o.d"
  "/root/repo/src/crypto/clmul.cpp" "src/CMakeFiles/rmcc_crypto.dir/crypto/clmul.cpp.o" "gcc" "src/CMakeFiles/rmcc_crypto.dir/crypto/clmul.cpp.o.d"
  "/root/repo/src/crypto/mac.cpp" "src/CMakeFiles/rmcc_crypto.dir/crypto/mac.cpp.o" "gcc" "src/CMakeFiles/rmcc_crypto.dir/crypto/mac.cpp.o.d"
  "/root/repo/src/crypto/nist.cpp" "src/CMakeFiles/rmcc_crypto.dir/crypto/nist.cpp.o" "gcc" "src/CMakeFiles/rmcc_crypto.dir/crypto/nist.cpp.o.d"
  "/root/repo/src/crypto/otp.cpp" "src/CMakeFiles/rmcc_crypto.dir/crypto/otp.cpp.o" "gcc" "src/CMakeFiles/rmcc_crypto.dir/crypto/otp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rmcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
