file(REMOVE_RECURSE
  "librmcc_crypto.a"
)
