file(REMOVE_RECURSE
  "CMakeFiles/rmcc_crypto.dir/crypto/aes.cpp.o"
  "CMakeFiles/rmcc_crypto.dir/crypto/aes.cpp.o.d"
  "CMakeFiles/rmcc_crypto.dir/crypto/clmul.cpp.o"
  "CMakeFiles/rmcc_crypto.dir/crypto/clmul.cpp.o.d"
  "CMakeFiles/rmcc_crypto.dir/crypto/mac.cpp.o"
  "CMakeFiles/rmcc_crypto.dir/crypto/mac.cpp.o.d"
  "CMakeFiles/rmcc_crypto.dir/crypto/nist.cpp.o"
  "CMakeFiles/rmcc_crypto.dir/crypto/nist.cpp.o.d"
  "CMakeFiles/rmcc_crypto.dir/crypto/otp.cpp.o"
  "CMakeFiles/rmcc_crypto.dir/crypto/otp.cpp.o.d"
  "librmcc_crypto.a"
  "librmcc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcc_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
