# Empty dependencies file for rmcc_crypto.
# This may be replaced when dependencies are built.
