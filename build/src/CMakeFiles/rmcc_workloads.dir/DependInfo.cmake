
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/canneal.cpp" "src/CMakeFiles/rmcc_workloads.dir/workloads/canneal.cpp.o" "gcc" "src/CMakeFiles/rmcc_workloads.dir/workloads/canneal.cpp.o.d"
  "/root/repo/src/workloads/graph.cpp" "src/CMakeFiles/rmcc_workloads.dir/workloads/graph.cpp.o" "gcc" "src/CMakeFiles/rmcc_workloads.dir/workloads/graph.cpp.o.d"
  "/root/repo/src/workloads/graphbig.cpp" "src/CMakeFiles/rmcc_workloads.dir/workloads/graphbig.cpp.o" "gcc" "src/CMakeFiles/rmcc_workloads.dir/workloads/graphbig.cpp.o.d"
  "/root/repo/src/workloads/mcf.cpp" "src/CMakeFiles/rmcc_workloads.dir/workloads/mcf.cpp.o" "gcc" "src/CMakeFiles/rmcc_workloads.dir/workloads/mcf.cpp.o.d"
  "/root/repo/src/workloads/omnetpp.cpp" "src/CMakeFiles/rmcc_workloads.dir/workloads/omnetpp.cpp.o" "gcc" "src/CMakeFiles/rmcc_workloads.dir/workloads/omnetpp.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/rmcc_workloads.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/rmcc_workloads.dir/workloads/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rmcc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_address.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
