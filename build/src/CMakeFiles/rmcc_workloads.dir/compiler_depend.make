# Empty compiler generated dependencies file for rmcc_workloads.
# This may be replaced when dependencies are built.
