file(REMOVE_RECURSE
  "CMakeFiles/rmcc_workloads.dir/workloads/canneal.cpp.o"
  "CMakeFiles/rmcc_workloads.dir/workloads/canneal.cpp.o.d"
  "CMakeFiles/rmcc_workloads.dir/workloads/graph.cpp.o"
  "CMakeFiles/rmcc_workloads.dir/workloads/graph.cpp.o.d"
  "CMakeFiles/rmcc_workloads.dir/workloads/graphbig.cpp.o"
  "CMakeFiles/rmcc_workloads.dir/workloads/graphbig.cpp.o.d"
  "CMakeFiles/rmcc_workloads.dir/workloads/mcf.cpp.o"
  "CMakeFiles/rmcc_workloads.dir/workloads/mcf.cpp.o.d"
  "CMakeFiles/rmcc_workloads.dir/workloads/omnetpp.cpp.o"
  "CMakeFiles/rmcc_workloads.dir/workloads/omnetpp.cpp.o.d"
  "CMakeFiles/rmcc_workloads.dir/workloads/registry.cpp.o"
  "CMakeFiles/rmcc_workloads.dir/workloads/registry.cpp.o.d"
  "librmcc_workloads.a"
  "librmcc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
