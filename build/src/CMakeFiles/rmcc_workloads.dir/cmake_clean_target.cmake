file(REMOVE_RECURSE
  "librmcc_workloads.a"
)
