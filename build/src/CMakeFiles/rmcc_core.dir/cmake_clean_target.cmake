file(REMOVE_RECURSE
  "librmcc_core.a"
)
