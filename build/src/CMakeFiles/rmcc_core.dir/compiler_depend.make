# Empty compiler generated dependencies file for rmcc_core.
# This may be replaced when dependencies are built.
