file(REMOVE_RECURSE
  "CMakeFiles/rmcc_core.dir/core/area.cpp.o"
  "CMakeFiles/rmcc_core.dir/core/area.cpp.o.d"
  "CMakeFiles/rmcc_core.dir/core/budget.cpp.o"
  "CMakeFiles/rmcc_core.dir/core/budget.cpp.o.d"
  "CMakeFiles/rmcc_core.dir/core/candidate_monitor.cpp.o"
  "CMakeFiles/rmcc_core.dir/core/candidate_monitor.cpp.o.d"
  "CMakeFiles/rmcc_core.dir/core/memo_table.cpp.o"
  "CMakeFiles/rmcc_core.dir/core/memo_table.cpp.o.d"
  "CMakeFiles/rmcc_core.dir/core/rmcc_engine.cpp.o"
  "CMakeFiles/rmcc_core.dir/core/rmcc_engine.cpp.o.d"
  "CMakeFiles/rmcc_core.dir/core/update_policy.cpp.o"
  "CMakeFiles/rmcc_core.dir/core/update_policy.cpp.o.d"
  "librmcc_core.a"
  "librmcc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
