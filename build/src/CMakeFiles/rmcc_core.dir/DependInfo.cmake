
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/area.cpp" "src/CMakeFiles/rmcc_core.dir/core/area.cpp.o" "gcc" "src/CMakeFiles/rmcc_core.dir/core/area.cpp.o.d"
  "/root/repo/src/core/budget.cpp" "src/CMakeFiles/rmcc_core.dir/core/budget.cpp.o" "gcc" "src/CMakeFiles/rmcc_core.dir/core/budget.cpp.o.d"
  "/root/repo/src/core/candidate_monitor.cpp" "src/CMakeFiles/rmcc_core.dir/core/candidate_monitor.cpp.o" "gcc" "src/CMakeFiles/rmcc_core.dir/core/candidate_monitor.cpp.o.d"
  "/root/repo/src/core/memo_table.cpp" "src/CMakeFiles/rmcc_core.dir/core/memo_table.cpp.o" "gcc" "src/CMakeFiles/rmcc_core.dir/core/memo_table.cpp.o.d"
  "/root/repo/src/core/rmcc_engine.cpp" "src/CMakeFiles/rmcc_core.dir/core/rmcc_engine.cpp.o" "gcc" "src/CMakeFiles/rmcc_core.dir/core/rmcc_engine.cpp.o.d"
  "/root/repo/src/core/update_policy.cpp" "src/CMakeFiles/rmcc_core.dir/core/update_policy.cpp.o" "gcc" "src/CMakeFiles/rmcc_core.dir/core/update_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rmcc_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_address.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
