file(REMOVE_RECURSE
  "CMakeFiles/rmcc_sim.dir/sim/cpu_model.cpp.o"
  "CMakeFiles/rmcc_sim.dir/sim/cpu_model.cpp.o.d"
  "CMakeFiles/rmcc_sim.dir/sim/experiments.cpp.o"
  "CMakeFiles/rmcc_sim.dir/sim/experiments.cpp.o.d"
  "CMakeFiles/rmcc_sim.dir/sim/functional_sim.cpp.o"
  "CMakeFiles/rmcc_sim.dir/sim/functional_sim.cpp.o.d"
  "CMakeFiles/rmcc_sim.dir/sim/report.cpp.o"
  "CMakeFiles/rmcc_sim.dir/sim/report.cpp.o.d"
  "CMakeFiles/rmcc_sim.dir/sim/system_config.cpp.o"
  "CMakeFiles/rmcc_sim.dir/sim/system_config.cpp.o.d"
  "CMakeFiles/rmcc_sim.dir/sim/timing_sim.cpp.o"
  "CMakeFiles/rmcc_sim.dir/sim/timing_sim.cpp.o.d"
  "librmcc_sim.a"
  "librmcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
