file(REMOVE_RECURSE
  "librmcc_sim.a"
)
