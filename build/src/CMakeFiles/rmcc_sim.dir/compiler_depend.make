# Empty compiler generated dependencies file for rmcc_sim.
# This may be replaced when dependencies are built.
