# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_nist[1]_include.cmake")
include("/root/repo/build/tests/test_address[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_counters[1]_include.cmake")
include("/root/repo/build/tests/test_memo_table[1]_include.cmake")
include("/root/repo/build/tests/test_candidate_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_budget[1]_include.cmake")
include("/root/repo/build/tests/test_update_policy[1]_include.cmake")
include("/root/repo/build/tests/test_rmcc_engine[1]_include.cmake")
include("/root/repo/build/tests/test_mc[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_model[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_experiments[1]_include.cmake")
include("/root/repo/build/tests/test_sim_integration[1]_include.cmake")
