
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim_integration.cpp" "tests/CMakeFiles/test_sim_integration.dir/test_sim_integration.cpp.o" "gcc" "tests/CMakeFiles/test_sim_integration.dir/test_sim_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rmcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_address.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
