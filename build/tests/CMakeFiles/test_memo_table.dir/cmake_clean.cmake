file(REMOVE_RECURSE
  "CMakeFiles/test_memo_table.dir/test_memo_table.cpp.o"
  "CMakeFiles/test_memo_table.dir/test_memo_table.cpp.o.d"
  "test_memo_table"
  "test_memo_table.pdb"
  "test_memo_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memo_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
