file(REMOVE_RECURSE
  "CMakeFiles/test_candidate_monitor.dir/test_candidate_monitor.cpp.o"
  "CMakeFiles/test_candidate_monitor.dir/test_candidate_monitor.cpp.o.d"
  "test_candidate_monitor"
  "test_candidate_monitor.pdb"
  "test_candidate_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_candidate_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
