# Empty dependencies file for test_candidate_monitor.
# This may be replaced when dependencies are built.
