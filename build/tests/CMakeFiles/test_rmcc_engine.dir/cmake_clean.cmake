file(REMOVE_RECURSE
  "CMakeFiles/test_rmcc_engine.dir/test_rmcc_engine.cpp.o"
  "CMakeFiles/test_rmcc_engine.dir/test_rmcc_engine.cpp.o.d"
  "test_rmcc_engine"
  "test_rmcc_engine.pdb"
  "test_rmcc_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rmcc_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
