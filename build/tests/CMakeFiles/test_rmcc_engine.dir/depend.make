# Empty dependencies file for test_rmcc_engine.
# This may be replaced when dependencies are built.
