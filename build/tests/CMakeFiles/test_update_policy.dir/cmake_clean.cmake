file(REMOVE_RECURSE
  "CMakeFiles/test_update_policy.dir/test_update_policy.cpp.o"
  "CMakeFiles/test_update_policy.dir/test_update_policy.cpp.o.d"
  "test_update_policy"
  "test_update_policy.pdb"
  "test_update_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_update_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
