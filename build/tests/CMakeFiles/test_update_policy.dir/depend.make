# Empty dependencies file for test_update_policy.
# This may be replaced when dependencies are built.
