# Empty dependencies file for bench_fig04_tlb_miss.
# This may be replaced when dependencies are built.
