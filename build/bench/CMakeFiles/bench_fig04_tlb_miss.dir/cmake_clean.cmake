file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_tlb_miss.dir/bench_fig04_tlb_miss.cpp.o"
  "CMakeFiles/bench_fig04_tlb_miss.dir/bench_fig04_tlb_miss.cpp.o.d"
  "bench_fig04_tlb_miss"
  "bench_fig04_tlb_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_tlb_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
