# Empty dependencies file for bench_fig20_budget_traffic.
# This may be replaced when dependencies are built.
