# Empty compiler generated dependencies file for bench_fig03_counter_miss.
# This may be replaced when dependencies are built.
