file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_counter_miss.dir/bench_fig03_counter_miss.cpp.o"
  "CMakeFiles/bench_fig03_counter_miss.dir/bench_fig03_counter_miss.cpp.o.d"
  "bench_fig03_counter_miss"
  "bench_fig03_counter_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_counter_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
