file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_memo_hit_split.dir/bench_fig10_memo_hit_split.cpp.o"
  "CMakeFiles/bench_fig10_memo_hit_split.dir/bench_fig10_memo_hit_split.cpp.o.d"
  "bench_fig10_memo_hit_split"
  "bench_fig10_memo_hit_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_memo_hit_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
