# Empty dependencies file for bench_fig10_memo_hit_split.
# This may be replaced when dependencies are built.
