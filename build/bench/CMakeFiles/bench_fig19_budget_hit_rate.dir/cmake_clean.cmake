file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_budget_hit_rate.dir/bench_fig19_budget_hit_rate.cpp.o"
  "CMakeFiles/bench_fig19_budget_hit_rate.dir/bench_fig19_budget_hit_rate.cpp.o.d"
  "bench_fig19_budget_hit_rate"
  "bench_fig19_budget_hit_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_budget_hit_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
