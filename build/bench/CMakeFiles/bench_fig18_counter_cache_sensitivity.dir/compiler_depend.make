# Empty compiler generated dependencies file for bench_fig18_counter_cache_sensitivity.
# This may be replaced when dependencies are built.
