# Empty dependencies file for bench_fig22_group_size_traffic.
# This may be replaced when dependencies are built.
