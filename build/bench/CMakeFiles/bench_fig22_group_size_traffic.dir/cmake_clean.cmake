file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_group_size_traffic.dir/bench_fig22_group_size_traffic.cpp.o"
  "CMakeFiles/bench_fig22_group_size_traffic.dir/bench_fig22_group_size_traffic.cpp.o.d"
  "bench_fig22_group_size_traffic"
  "bench_fig22_group_size_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_group_size_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
