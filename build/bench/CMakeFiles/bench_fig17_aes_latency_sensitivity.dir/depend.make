# Empty dependencies file for bench_fig17_aes_latency_sensitivity.
# This may be replaced when dependencies are built.
