file(REMOVE_RECURSE
  "CMakeFiles/bench_secIVE_area.dir/bench_secIVE_area.cpp.o"
  "CMakeFiles/bench_secIVE_area.dir/bench_secIVE_area.cpp.o.d"
  "bench_secIVE_area"
  "bench_secIVE_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secIVE_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
