# Empty dependencies file for bench_secIVE_area.
# This may be replaced when dependencies are built.
