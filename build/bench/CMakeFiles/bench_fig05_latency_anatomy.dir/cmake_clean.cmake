file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_latency_anatomy.dir/bench_fig05_latency_anatomy.cpp.o"
  "CMakeFiles/bench_fig05_latency_anatomy.dir/bench_fig05_latency_anatomy.cpp.o.d"
  "bench_fig05_latency_anatomy"
  "bench_fig05_latency_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_latency_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
