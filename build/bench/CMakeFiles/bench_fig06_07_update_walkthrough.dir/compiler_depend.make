# Empty compiler generated dependencies file for bench_fig06_07_update_walkthrough.
# This may be replaced when dependencies are built.
