# Empty dependencies file for bench_micro_memo.
# This may be replaced when dependencies are built.
