file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_memo.dir/bench_micro_memo.cpp.o"
  "CMakeFiles/bench_micro_memo.dir/bench_micro_memo.cpp.o.d"
  "bench_micro_memo"
  "bench_micro_memo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_memo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
