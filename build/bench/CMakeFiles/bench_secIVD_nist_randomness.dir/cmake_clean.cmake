file(REMOVE_RECURSE
  "CMakeFiles/bench_secIVD_nist_randomness.dir/bench_secIVD_nist_randomness.cpp.o"
  "CMakeFiles/bench_secIVD_nist_randomness.dir/bench_secIVD_nist_randomness.cpp.o.d"
  "bench_secIVD_nist_randomness"
  "bench_secIVD_nist_randomness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secIVD_nist_randomness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
