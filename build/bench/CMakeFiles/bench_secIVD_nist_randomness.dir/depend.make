# Empty dependencies file for bench_secIVD_nist_randomness.
# This may be replaced when dependencies are built.
