# Empty compiler generated dependencies file for bench_fig21_group_size_hit_rate.
# This may be replaced when dependencies are built.
