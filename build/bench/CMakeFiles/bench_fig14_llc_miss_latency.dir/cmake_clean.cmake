file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_llc_miss_latency.dir/bench_fig14_llc_miss_latency.cpp.o"
  "CMakeFiles/bench_fig14_llc_miss_latency.dir/bench_fig14_llc_miss_latency.cpp.o.d"
  "bench_fig14_llc_miss_latency"
  "bench_fig14_llc_miss_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_llc_miss_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
