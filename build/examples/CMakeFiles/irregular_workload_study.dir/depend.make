# Empty dependencies file for irregular_workload_study.
# This may be replaced when dependencies are built.
