file(REMOVE_RECURSE
  "CMakeFiles/irregular_workload_study.dir/irregular_workload_study.cpp.o"
  "CMakeFiles/irregular_workload_study.dir/irregular_workload_study.cpp.o.d"
  "irregular_workload_study"
  "irregular_workload_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_workload_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
