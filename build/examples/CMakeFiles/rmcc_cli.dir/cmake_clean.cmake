file(REMOVE_RECURSE
  "CMakeFiles/rmcc_cli.dir/rmcc_sim.cpp.o"
  "CMakeFiles/rmcc_cli.dir/rmcc_sim.cpp.o.d"
  "rmcc_sim"
  "rmcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
