# Empty dependencies file for rmcc_cli.
# This may be replaced when dependencies are built.
