# Empty dependencies file for secure_memory_walkthrough.
# This may be replaced when dependencies are built.
