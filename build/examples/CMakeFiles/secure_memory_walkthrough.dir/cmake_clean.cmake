file(REMOVE_RECURSE
  "CMakeFiles/secure_memory_walkthrough.dir/secure_memory_walkthrough.cpp.o"
  "CMakeFiles/secure_memory_walkthrough.dir/secure_memory_walkthrough.cpp.o.d"
  "secure_memory_walkthrough"
  "secure_memory_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_memory_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
