# Empty compiler generated dependencies file for attack_surface_analysis.
# This may be replaced when dependencies are built.
