file(REMOVE_RECURSE
  "CMakeFiles/attack_surface_analysis.dir/attack_surface_analysis.cpp.o"
  "CMakeFiles/attack_surface_analysis.dir/attack_surface_analysis.cpp.o.d"
  "attack_surface_analysis"
  "attack_surface_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_surface_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
