/**
 * @file
 * Multi-tenant configuration and the tenant address-space tag.
 *
 * The tenancy subsystem interleaves N tenants — a handful to millions —
 * onto ONE shared secure memory controller, counter cache, and RMCC memo
 * table.  A tenant is an address-space domain: the mixer tags every
 * virtual address with the issuing tenant's id (at a bit position above
 * any component workload's footprint), and the rig then derives every
 * per-tenant boundary from that tag:
 *
 *  - physical frames come from per-tenant power-of-two arenas
 *    (addr::PageMapper::partitionByTenant), so no counter block or
 *    integrity-tree entity ever spans two tenants;
 *  - memo-table groups carry the owning tenant's domain
 *    (core::MemoConfig::domains), so memoized counter values never leak
 *    across tenants and an optional quota caps any one tenant's share;
 *  - the detection oracle's data plane runs under per-tenant AES
 *    schedules (crypto::deriveDomainKeys via OracleConfig
 *    key_domain_shift).
 *
 * Everything is driven by the strict-parsed RMCC_TENANT* environment
 * knobs; the default (RMCC_TENANTS=1) leaves every layer untouched and
 * bit-identical to the single-tenant simulator.
 */
#ifndef RMCC_TENANCY_TENANCY_HPP
#define RMCC_TENANCY_TENANCY_HPP

#include <cstdint>

#include "address/types.hpp"
#include "sim/system_config.hpp"

namespace rmcc::tenancy
{

/** How hard the rig separates tenants sharing the controller. */
enum class IsolationMode
{
    //! Per-tenant frame arenas + memo domains + data-plane key domains.
    Strict,
    //! Tenants share the physical pool, memo table, and platform keys;
    //! only traffic accounting is per-tenant.  The adversarial baseline.
    Shared,
};

/** Parsed multi-tenant knobs. */
struct TenancyConfig
{
    std::uint64_t tenants = 1;  //!< RMCC_TENANTS (>= 1).
    double skew = 0.99;         //!< RMCC_TENANT_SKEW (Zipf exponent, > 0).
    IsolationMode isolation = IsolationMode::Strict; //!< RMCC_TENANT_ISOLATION.
    unsigned memo_quota = 0;    //!< RMCC_TENANT_MEMO_QUOTA (groups, 0 = off).

    /** True when the run is actually multi-tenant. */
    bool active() const { return tenants > 1; }
};

/**
 * Read RMCC_TENANTS / RMCC_TENANT_SKEW / RMCC_TENANT_ISOLATION /
 * RMCC_TENANT_MEMO_QUOTA with strict parsing.
 * @throws std::runtime_error on malformed values (util::env semantics);
 *         a zero skew is rejected like garbage (Zipf needs s > 0).
 */
TenancyConfig tenancyConfigFromEnv();

/**
 * The tenant address-space tag: tagged vaddr = (tenant << shift) | vaddr.
 *
 * The shift clears every component workload's footprint (and never drops
 * below 2 MB so a huge page cannot span tenants); construction is fatal
 * when tenants * tag span would overflow the packed trace Record's
 * 47-bit vaddr field — the capacity bound that decides how many tenants
 * one trace can carry.
 */
class TenantAddressMap
{
  public:
    //! Floor on the tag position: 2 MB (one huge page) per tenant
    //! minimum, so no page of any mode can hold two tenants' data.
    static constexpr unsigned kMinTagShift = 21;

    /**
     * @param tenants number of address-space domains (>= 1).
     * @param max_component_vaddr largest untagged vaddr any component
     *        trace contains.
     */
    TenantAddressMap(std::uint64_t tenants, addr::Addr max_component_vaddr);

    /** Tag a component vaddr with its tenant id. */
    addr::Addr tag(std::uint64_t tenant, addr::Addr vaddr) const
    {
        return (tenant << shift_) | vaddr;
    }

    /** Tenant id a tagged vaddr belongs to. */
    std::uint64_t tenantOf(addr::Addr tagged) const
    {
        return tagged >> shift_;
    }

    /** Bit position of the tenant id. */
    unsigned tagShift() const { return shift_; }

    std::uint64_t tenants() const { return tenants_; }

  private:
    std::uint64_t tenants_;
    unsigned shift_;
};

/**
 * Fill a SystemConfig's TenancyShape from the parsed knobs and the mix's
 * address map (inert when cfg.tenants == 1).
 */
sim::TenancyShape makeShape(const TenancyConfig &cfg,
                            const TenantAddressMap &map);

/**
 * 64 B blocks per tenant arena for a system configuration, mirroring
 * exactly what the rig's PageMapper will carve (0 when the run is not
 * strict multi-tenant or the arenas would not fit).  log2 of this is the
 * oracle's key_domain_shift; tenant t's L0 blocks are
 * [t * arenaBlocks, (t+1) * arenaBlocks).
 */
std::uint64_t arenaBlocks(const sim::SystemConfig &cfg);

/**
 * OracleConfig::key_domain_shift for a strict multi-tenant run: log2 of
 * arenaBlocks(cfg), so the oracle's per-domain data keys split exactly
 * along arena boundaries.  0 (single key domain) when inert.
 */
unsigned keyDomainShift(const sim::SystemConfig &cfg);

} // namespace rmcc::tenancy

#endif // RMCC_TENANCY_TENANCY_HPP
