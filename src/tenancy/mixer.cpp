#include "tenancy/mixer.hpp"

#include <cstdio>
#include <unordered_map>

#include <sys/stat.h>

#include "trace/trace_file.hpp"
#include "trace/trace_reader.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace rmcc::tenancy
{

namespace
{

/** SplitMix64 finalizer: per-tenant phase offsets. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

TenantMixer::TenantMixer(const MixSpec &spec)
    : spec_(spec),
      bases_([&spec] {
          if (spec.archetypes.empty())
              util::fatal("TenantMixer: no archetype workloads");
          if (spec.records == 0 || spec.component_records == 0)
              util::fatal("TenantMixer: zero-length mix or component");
          std::vector<trace::TraceBuffer> v;
          v.reserve(spec.archetypes.size());
          for (std::size_t a = 0; a < spec.archetypes.size(); ++a)
              v.push_back(wl::generateTrace(*spec.archetypes[a],
                                            spec.component_records,
                                            spec.seed + a));
          return v;
      }()),
      map_(spec.cfg.tenants, [this] {
          addr::Addr max_vaddr = 0;
          for (const trace::TraceBuffer &b : bases_)
              for (const trace::Record &r : b.records())
                  if (r.vaddr > max_vaddr)
                      max_vaddr = static_cast<addr::Addr>(r.vaddr);
          return max_vaddr;
      }())
{
    for (std::size_t a = 0; a < bases_.size(); ++a)
        if (bases_[a].size() == 0)
            util::fatal("TenantMixer: archetype '%s' produced an empty "
                        "trace",
                        spec_.archetypes[a]->name.c_str());
}

void
TenantMixer::generate(trace::TraceSink &sink) const
{
    util::Rng rng(spec_.seed ^ 0x7e7a);
    util::ZipfSampler zipf(spec_.cfg.tenants, spec_.cfg.skew);
    // Per-tenant replay positions, lazily seeded with a per-tenant phase
    // offset so tenants sharing an archetype are decorrelated.  A hash
    // map because the tenant count may be in the millions while only the
    // drawn tenants ever materialize.
    std::unordered_map<std::uint64_t, std::uint64_t> pos;
    for (std::size_t i = 0; i < spec_.records && !sink.full(); ++i) {
        std::uint64_t t = zipf(rng);
        if (spec_.storm_share > 0.0 && rng.nextBool(spec_.storm_share))
            t = 0; // the storm rides on top of the Zipf draw
        const trace::TraceBuffer &base =
            bases_[t % bases_.size()];
        auto it = pos.find(t);
        if (it == pos.end())
            it = pos.emplace(t, mix64(spec_.seed ^ t) % base.size())
                     .first;
        const trace::Record &rec = base.records()[it->second];
        it->second = (it->second + 1) % base.size();
        sink.append(map_.tag(t, static_cast<addr::Addr>(rec.vaddr)),
                    rec.is_write != 0,
                    static_cast<std::uint32_t>(rec.inst_gap));
    }
}

double
TenantMixer::expectedShare(std::uint64_t tenant) const
{
    util::ZipfSampler zipf(spec_.cfg.tenants, spec_.cfg.skew);
    const double base = zipf.mass(tenant);
    // A storm draw replaces the Zipf draw with tenant 0.
    const double kept = base * (1.0 - spec_.storm_share);
    return tenant == 0 ? kept + spec_.storm_share : kept;
}

std::string
TenantMixer::label() const
{
    char buf[128];
    std::snprintf(buf, sizeof buf, "mix%llut-z%.3f-%s-s%.2f",
                  static_cast<unsigned long long>(spec_.cfg.tenants),
                  spec_.cfg.skew,
                  spec_.cfg.isolation == IsolationMode::Strict ? "strict"
                                                               : "shared",
                  spec_.storm_share);
    std::string name(buf);
    for (const wl::Workload *w : spec_.archetypes)
        name += "-" + w->name;
    return name;
}

TenantMix
generateMixHandle(const MixSpec &spec)
{
    TenantMixer mixer(spec);
    const unsigned tag_shift = mixer.addressMap().tagShift();
    const trace::SpillConfig sc = trace::spillConfigFromEnv();
    if (!sc.shouldSpill(spec.records)) {
        trace::TraceBuffer buf(spec.records);
        mixer.generate(buf);
        return {wl::TraceHandle(std::move(buf)), tag_shift};
    }

    // Same spill-cache discipline as wl::generateTraceHandle: files are
    // keyed by the mix label + length + seed, validated on open, and
    // regenerated in place on any mismatch.
    const std::string label = mixer.label();
    const std::uint64_t fp =
        trace::traceFingerprint(label, spec.records, spec.seed);
    trace::ensureTraceDir(sc.dir);
    char fphex[20];
    std::snprintf(fphex, sizeof fphex, "%016llx",
                  static_cast<unsigned long long>(fp));
    const std::string path = sc.dir + "/" + label + "-" + fphex +
                             ".rmcctrc";

    struct stat st{};
    if (::stat(path.c_str(), &st) == 0) {
        try {
            auto rd = std::make_unique<trace::TraceFileReader>(
                path, sc.window_records, fp);
            util::logDebug("tenant mix: reusing cached '%s'",
                           path.c_str());
            return {wl::TraceHandle(std::move(rd)), tag_shift};
        } catch (const std::exception &e) {
            util::warn("tenant mix: cached '%s' rejected (%s); "
                       "regenerating",
                       path.c_str(), e.what());
        }
    }

    {
        trace::TraceFileWriter writer(
            path, spec.records, fp, trace::kTraceChunkRecords,
            sc.compress == trace::SpillConfig::Compress::Delta);
        mixer.generate(writer);
        writer.finalize();
    }
    return {wl::TraceHandle(std::make_unique<trace::TraceFileReader>(
                path, sc.window_records, fp)),
            tag_shift};
}

} // namespace rmcc::tenancy
