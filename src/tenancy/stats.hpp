/**
 * @file
 * Per-tenant accounting over a shared controller: the observability view
 * the tenancy benchmarks emit.
 *
 * A TenantAccountant rides the functional simulator's ReplayObserver
 * hooks and splits every memory-side event by the tenant tag in the
 * record's virtual address: read/write counts, read-latency log2
 * histograms (p50/p95/p99 per tenant), the memo lookup/hit split, and —
 * under strict isolation — each tenant's resident share of the shared
 * counter cache at end of replay.  Tracking is capped at kMaxTracked
 * tenants plus one aggregate "other" slot so million-tenant mixes stay
 * O(1) per event and bounded in memory; the hottest tenants are the low
 * ids by construction (Zipf rank order), so the cap keeps exactly the
 * tenants worth charting.
 */
#ifndef RMCC_TENANCY_STATS_HPP
#define RMCC_TENANCY_STATS_HPP

#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/histogram.hpp"
#include "sim/functional_sim.hpp"
#include "tenancy/tenancy.hpp"

namespace rmcc::tenancy
{

/** One tenant's (or the "other" aggregate's) view of the shared rig. */
struct TenantStats
{
    std::uint64_t reads = 0;          //!< LLC-miss reads served.
    std::uint64_t writes = 0;         //!< Writebacks attributed.
    std::uint64_t counter_misses = 0; //!< Reads whose L0 counter missed.
    std::uint64_t memo_hits = 0;      //!< Counter misses memo-served.
    std::uint64_t accelerated = 0;    //!< Misses fully served by RMCC.
    std::uint64_t ctr_lines_resident = 0; //!< Counter-cache lines at end.
    obs::Log2Histogram read_latency;  //!< Read service latency, ns.
};

/**
 * ReplayObserver splitting controller events per tenant.
 */
class TenantAccountant final : public sim::ReplayObserver
{
  public:
    //! Tenants tracked individually; the rest pool into an "other" slot.
    static constexpr std::size_t kMaxTracked = 64;

    /**
     * @param shape the run's tenancy shape (tag_shift keys the split).
     * @param arena_blocks 64 B blocks per tenant arena (tenancy::
     *        arenaBlocks); 0 disables the occupancy snapshot (shared
     *        isolation has no per-tenant physical ranges).
     */
    TenantAccountant(const sim::TenancyShape &shape,
                     std::uint64_t arena_blocks);

    void onRead(addr::Addr vaddr, const mc::McReadResult &res,
                double latency_ns) override;
    void onWrite(addr::Addr vaddr) override;
    void onFinish(const mc::SecureMc &mc,
                  const ctr::IntegrityTree &tree) override;

    /** Individually tracked tenants (excludes the "other" slot). */
    std::size_t tracked() const { return tracked_; }

    /** True when tenants beyond kMaxTracked pooled into "other". */
    bool hasOverflow() const { return tenants_ > tracked_; }

    /** Stats of tracked tenant t (t < tracked()). */
    const TenantStats &tenant(std::size_t t) const { return slots_[t]; }

    /** The aggregate slot (zeroed when !hasOverflow()). */
    const TenantStats &other() const { return slots_.back(); }

    /**
     * Jain fairness index over the mean read latency of tracked tenants
     * that served reads: 1.0 = perfectly even service quality, 1/n =
     * one tenant absorbing all the latency.  1.0 when fewer than two
     * tenants read.
     */
    double jainFairness() const;

    /**
     * Emit one CSV row per tracked tenant (plus "other"):
     * cell,tenant,reads,writes,counter_misses,memo_hits,accelerated,
     * ctr_lines_resident,lat_p50,lat_p95,lat_p99,lat_mean.
     * @param header also emit the column-name row first.
     */
    void writeCsv(std::ostream &out, const std::string &cell,
                  bool header) const;

  private:
    TenantStats &slotOf(addr::Addr vaddr);

    unsigned tag_shift_;
    std::uint64_t tenants_;
    std::uint64_t arena_blocks_;
    std::size_t tracked_;
    std::vector<TenantStats> slots_; //!< tracked_ + 1 (last = "other").
};

} // namespace rmcc::tenancy

#endif // RMCC_TENANCY_STATS_HPP
