#include "tenancy/stats.hpp"

#include "counters/tree.hpp"
#include "mc/secure_mc.hpp"

namespace rmcc::tenancy
{

TenantAccountant::TenantAccountant(const sim::TenancyShape &shape,
                                   std::uint64_t arena_blocks)
    : tag_shift_(shape.tag_shift),
      tenants_(shape.tenants),
      arena_blocks_(arena_blocks),
      tracked_(static_cast<std::size_t>(
          shape.tenants < kMaxTracked ? shape.tenants : kMaxTracked)),
      slots_(tracked_ + 1)
{
}

TenantStats &
TenantAccountant::slotOf(addr::Addr vaddr)
{
    const std::uint64_t t = vaddr >> tag_shift_;
    return t < tracked_ ? slots_[static_cast<std::size_t>(t)]
                        : slots_.back();
}

void
TenantAccountant::onRead(addr::Addr vaddr, const mc::McReadResult &res,
                         double latency_ns)
{
    TenantStats &s = slotOf(vaddr);
    ++s.reads;
    s.read_latency.add(latency_ns);
    if (res.counter_miss) {
        ++s.counter_misses;
        if (res.memo_hit)
            ++s.memo_hits;
        if (res.accelerated)
            ++s.accelerated;
    }
}

void
TenantAccountant::onWrite(addr::Addr vaddr)
{
    ++slotOf(vaddr).writes;
}

void
TenantAccountant::onFinish(const mc::SecureMc &mc,
                           const ctr::IntegrityTree &tree)
{
    if (arena_blocks_ == 0 || tree.levels() == 0)
        return;
    // Tenant t's L0 counter blocks cover exactly its arena's data
    // blocks: both spans are powers of two and the arena floor exceeds
    // the widest coverage, so the division is exact.
    const unsigned cov0 = tree.level(0).coverage();
    const std::uint64_t cbs_per_tenant = arena_blocks_ / cov0;
    for (std::size_t t = 0; t < tracked_; ++t)
        slots_[t].ctr_lines_resident = mc.counterLinesResident(
            0, static_cast<addr::CounterBlockId>(t) * cbs_per_tenant,
            cbs_per_tenant);
}

double
TenantAccountant::jainFairness() const
{
    double sum = 0.0, sum_sq = 0.0;
    std::size_t n = 0;
    for (std::size_t t = 0; t < tracked_; ++t) {
        const TenantStats &s = slots_[t];
        if (s.reads == 0)
            continue;
        const double x = s.read_latency.mean();
        sum += x;
        sum_sq += x * x;
        ++n;
    }
    if (n < 2 || sum_sq == 0.0)
        return 1.0;
    return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

void
TenantAccountant::writeCsv(std::ostream &out, const std::string &cell,
                           bool header) const
{
    if (header)
        out << "cell,tenant,reads,writes,counter_misses,memo_hits,"
               "accelerated,ctr_lines_resident,lat_p50,lat_p95,lat_p99,"
               "lat_mean\n";
    const auto row = [&](const std::string &id, const TenantStats &s) {
        const obs::HistSummary h = s.read_latency.summary();
        out << cell << ',' << id << ',' << s.reads << ',' << s.writes
            << ',' << s.counter_misses << ',' << s.memo_hits << ','
            << s.accelerated << ',' << s.ctr_lines_resident << ','
            << h.p50 << ',' << h.p95 << ',' << h.p99 << ',' << h.mean
            << '\n';
    };
    for (std::size_t t = 0; t < tracked_; ++t)
        row(std::to_string(t), slots_[t]);
    if (hasOverflow())
        row("other", slots_.back());
}

} // namespace rmcc::tenancy
