/**
 * @file
 * The tenant traffic mixer: composes per-workload trace sources into one
 * interleaved, tenant-tagged stream.
 *
 * Each tenant runs one archetype workload (assigned round-robin from the
 * spec's archetype list) but replays it from its own phase offset, so two
 * tenants sharing an archetype never issue the same access at the same
 * step.  Traffic share across tenants is Zipf-distributed (tenant 0 is
 * the hottest; RMCC_TENANT_SKEW is the exponent), with an optional
 * hot-tenant storm that forces an extra fraction of all draws onto
 * tenant 0 — the adversarial mix the interference benchmarks measure.
 *
 * The mix streams through the ordinary TraceSink interface, so it is
 * spill-aware end to end: generateMixHandle() mirrors the workload
 * registry's spill-cache flow (RMCC_TRACE_SPILL / RMCC_TRACE_COMPRESS)
 * and 20 M+-record mixes land on disk as checksummed, optionally
 * delta-compressed trace files instead of in RAM.
 */
#ifndef RMCC_TENANCY_MIXER_HPP
#define RMCC_TENANCY_MIXER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "tenancy/tenancy.hpp"
#include "trace/trace_buffer.hpp"
#include "workloads/registry.hpp"

namespace rmcc::tenancy
{

/** Everything that determines one mixed trace (the mix fingerprint). */
struct MixSpec
{
    TenancyConfig cfg;
    //! Component workloads; tenant t runs archetypes[t % size()].
    std::vector<const wl::Workload *> archetypes;
    std::size_t records = 0;           //!< Mixed-trace length.
    std::size_t component_records = 0; //!< Base trace length per archetype.
    std::uint64_t seed = 42;
    //! Hot-tenant storm: fraction of all draws forced onto tenant 0 on
    //! top of its Zipf share (0 = no storm).
    double storm_share = 0.0;
};

/**
 * Deterministic interleaver over in-RAM component traces.  Construction
 * generates the component traces and derives the tenant address map from
 * their combined footprint; generate() streams the mix.
 */
class TenantMixer
{
  public:
    /** @throws nothing; malformed specs are fatal (user error). */
    explicit TenantMixer(const MixSpec &spec);

    /** The tag layout every consumer of the mix needs. */
    const TenantAddressMap &addressMap() const { return map_; }

    /**
     * Stream the full mix into a sink.  Deterministic: equal specs give
     * bit-identical streams regardless of sink type (RAM or spill file).
     */
    void generate(trace::TraceSink &sink) const;

    /** Expected long-run traffic share of a tenant under the spec. */
    double expectedShare(std::uint64_t tenant) const;

    const MixSpec &spec() const { return spec_; }

    /** Stable label encoding the spec (cache file and cell names). */
    std::string label() const;

  private:
    MixSpec spec_;
    std::vector<trace::TraceBuffer> bases_;
    TenantAddressMap map_;
};

/** A mixed trace plus the tag layout its consumers need. */
struct TenantMix
{
    wl::TraceHandle handle;
    unsigned tag_shift;
};

/**
 * Generate a mix honoring the RMCC_TRACE_SPILL policy, mirroring
 * wl::generateTraceHandle: in-RAM by default, streamed to a cached
 * checksummed file keyed by the mix fingerprint when spilling is on.
 */
TenantMix generateMixHandle(const MixSpec &spec);

} // namespace rmcc::tenancy

#endif // RMCC_TENANCY_MIXER_HPP
