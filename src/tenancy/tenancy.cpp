#include "tenancy/tenancy.hpp"

#include <bit>
#include <stdexcept>
#include <string>

#include "address/page_mapper.hpp"
#include "trace/record.hpp"
#include "util/env.hpp"
#include "util/log.hpp"

namespace rmcc::tenancy
{

TenancyConfig
tenancyConfigFromEnv()
{
    TenancyConfig cfg;
    cfg.tenants = util::envPositive("RMCC_TENANTS").value_or(1);
    cfg.skew = util::envDoubleOr("RMCC_TENANT_SKEW", 0.99);
    if (cfg.skew <= 0.0)
        throw std::runtime_error(
            "RMCC_TENANT_SKEW must be a positive Zipf exponent, got \"" +
            std::to_string(cfg.skew) + "\"");
    const std::string iso =
        util::envChoice("RMCC_TENANT_ISOLATION", {"strict", "shared"},
                        "strict");
    cfg.isolation =
        iso == "strict" ? IsolationMode::Strict : IsolationMode::Shared;
    cfg.memo_quota = static_cast<unsigned>(
        util::envUnsignedOr("RMCC_TENANT_MEMO_QUOTA", 0));
    return cfg;
}

TenantAddressMap::TenantAddressMap(std::uint64_t tenants,
                                   addr::Addr max_component_vaddr)
    : tenants_(tenants)
{
    if (tenants == 0)
        util::fatal("TenantAddressMap: zero tenants");
    const unsigned span =
        static_cast<unsigned>(std::bit_width(max_component_vaddr));
    shift_ = span > kMinTagShift ? span : kMinTagShift;
    const unsigned id_bits =
        static_cast<unsigned>(std::bit_width(tenants - 1));
    // The packed trace Record holds 47-bit vaddrs; tag + footprint must
    // fit or tagging would silently alias tenants.
    if (shift_ + id_bits > 47)
        util::fatal("TenantAddressMap: %llu tenants x %u-bit footprints "
                    "overflow the 47-bit trace vaddr (max %llx)",
                    static_cast<unsigned long long>(tenants), shift_,
                    static_cast<unsigned long long>(trace::kMaxRecordVaddr));
}

sim::TenancyShape
makeShape(const TenancyConfig &cfg, const TenantAddressMap &map)
{
    sim::TenancyShape shape;
    shape.tenants = cfg.tenants;
    shape.tag_shift = map.tagShift();
    shape.strict = cfg.isolation == IsolationMode::Strict;
    shape.memo_quota = cfg.memo_quota;
    return shape;
}

std::uint64_t
arenaBlocks(const sim::SystemConfig &cfg)
{
    if (!(cfg.secure && cfg.tenancy.strict && cfg.tenancy.tenants > 1))
        return 0;
    const std::uint64_t frames = addr::PageMapper::arenaFramesFor(
        cfg.page_mode, cfg.phys_bytes, cfg.tenancy.tenants);
    const std::uint64_t page = cfg.page_mode == addr::PageMode::Huge2M
                                   ? addr::kHugePageSize
                                   : addr::kSmallPageSize;
    return frames * (page / addr::kBlockSize);
}

unsigned
keyDomainShift(const sim::SystemConfig &cfg)
{
    const std::uint64_t blocks = arenaBlocks(cfg);
    // Arena blocks are a power of two by construction (power-of-two frame
    // count times power-of-two page size).
    return blocks == 0
               ? 0
               : static_cast<unsigned>(std::countr_zero(blocks));
}

} // namespace rmcc::tenancy
