/**
 * @file
 * The two sides of the out-of-core trace engine:
 *
 *  - TraceSink: what workload generators write into.  Implemented by the
 *    in-RAM TraceBuffer and by the spilling TraceFileWriter, so a
 *    generator streams records without knowing whether they land in a
 *    vector or on disk.
 *  - TraceSource: what the simulators replay from, as a sequence of
 *    contiguous record windows.  Implemented by TraceBuffer (one window
 *    covering the whole vector — the pre-PR-8 fast path, bit-identical)
 *    and by the windowed mmap TraceFileReader (epoch-sized windows with
 *    the next one prefetched while the current drains).
 *
 * Virtual dispatch happens once per *window*, never per record: the
 * replay loops iterate raw `const Record *` spans inside a window, so the
 * in-RAM path compiles to the same inner loop as before the abstraction.
 */
#ifndef RMCC_TRACE_TRACE_SOURCE_HPP
#define RMCC_TRACE_TRACE_SOURCE_HPP

#include <cstdint>
#include <memory>

#include "trace/record.hpp"

namespace rmcc::trace
{

struct TracePlan;

/** Destination of a workload generator's record stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /**
     * Append a load/store.  Out-of-range values (vaddr above 47 bits,
     * gap above 16) are fatal: the packed Record cannot represent them
     * and truncation would silently corrupt the trace.  Appends past the
     * sink's capacity are counted as dropped, not stored.
     */
    virtual void append(addr::Addr vaddr, bool is_write,
                        std::uint32_t inst_gap) = 0;

    /** True once the capacity is reached; generators should stop. */
    virtual bool full() const = 0;
};

/**
 * Replay-side I/O counters a spilling source maintains (all zero /
 * absent for the in-RAM path).  Exposed through TraceCursor::ioStats()
 * so the observability layer can chart window traffic per run.
 */
struct TraceIoStats
{
    std::uint64_t windows_served = 0;   //!< next() calls returning data.
    std::uint64_t prefetches = 0;       //!< madvise(WILLNEED) issued.
    std::uint64_t windows_dropped = 0;  //!< madvise(DONTNEED) issued.
    std::uint64_t wait_ns = 0;          //!< Host time blocked in next().
};

/**
 * One contiguous span of records handed to a replay loop.
 *
 * `ahead` points at the record that follows the window (the first record
 * of the next window) so the simulators' one-record lookahead works
 * across window boundaries; nullptr at end of trace.  The span and
 * `ahead` stay valid until the next TraceCursor::next() call.
 */
struct TraceWindow
{
    const Record *data = nullptr;
    std::size_t count = 0;
    std::uint64_t first = 0; //!< Global index of data[0].
    const Record *ahead = nullptr;
};

/**
 * Forward iteration over a source's windows.  Cursors are independent:
 * a source can serve several (the precondition pass and the measured
 * pass each take their own).
 */
class TraceCursor
{
  public:
    virtual ~TraceCursor() = default;

    /** Advance to the next window; count == 0 at end of trace. */
    virtual TraceWindow next() = 0;

    /** I/O counters for this cursor; nullptr for in-RAM sources. */
    virtual const TraceIoStats *ioStats() const { return nullptr; }
};

/**
 * A finished trace the simulators can replay.  The summary statistics
 * are totals over the whole stream (used by trace-shape validation and
 * reporting) and must be O(1) — sources compute them during generation
 * or during the planning pass, never by re-reading records.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Recorded operations. */
    virtual std::size_t size() const = 0;

    /** Total instructions represented (memory ops + gaps). */
    virtual std::uint64_t totalInstructions() const = 0;

    /** Number of writes recorded. */
    virtual std::uint64_t writes() const = 0;

    /** Appends refused because the sink was already full. */
    virtual std::uint64_t dropped() const = 0;

    /** Distinct 64 B blocks touched (exact). */
    virtual std::uint64_t distinctBlocks() const = 0;

    /** Begin a fresh pass over the records. */
    virtual std::unique_ptr<TraceCursor> cursor() const = 0;

    /**
     * Per-window working sets from the planning pass, when the source
     * ran one (the spilling reader does at open; in-RAM sources return
     * nullptr).  Replay uses it to pre-warm the page mapper at window
     * boundaries — see trace_plan.hpp for why that is bit-identical.
     */
    virtual const TracePlan *plan() const { return nullptr; }
};

} // namespace rmcc::trace

#endif // RMCC_TRACE_TRACE_SOURCE_HPP
