#include "trace/trace_buffer.hpp"

#include <algorithm>
#include <utility>

#include "trace/block_set.hpp"
#include "util/log.hpp"

namespace rmcc::trace
{

namespace
{

/** The whole vector as one window; ahead is always null (nothing follows). */
class BufferCursor final : public TraceCursor
{
  public:
    explicit BufferCursor(const std::vector<Record> &records)
        : records_(records)
    {
    }

    TraceWindow next() override
    {
        if (done_)
            return {};
        done_ = true;
        return {records_.data(), records_.size(), 0, nullptr};
    }

  private:
    const std::vector<Record> &records_;
    bool done_ = false;
};

} // namespace

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity)
{
    records_.reserve(std::min<std::size_t>(capacity, 1 << 22));
}

TraceBuffer::~TraceBuffer()
{
    if (dropped_ > 0)
        util::warn("trace buffer dropped %llu append(s) total "
                   "(capacity %zu); the generator overran the buffer",
                   static_cast<unsigned long long>(dropped_), capacity_);
}

TraceBuffer::TraceBuffer(TraceBuffer &&other) noexcept
    : capacity_(other.capacity_),
      records_(std::move(other.records_)),
      total_insts_(other.total_insts_),
      writes_(other.writes_),
      dropped_(other.dropped_),
      distinct_cache_(other.distinct_cache_),
      distinct_valid_(other.distinct_valid_)
{
    other.dropped_ = 0;
}

TraceBuffer &
TraceBuffer::operator=(TraceBuffer &&other) noexcept
{
    if (this != &other) {
        capacity_ = other.capacity_;
        records_ = std::move(other.records_);
        total_insts_ = other.total_insts_;
        writes_ = other.writes_;
        dropped_ = other.dropped_;
        distinct_cache_ = other.distinct_cache_;
        distinct_valid_ = other.distinct_valid_;
        other.dropped_ = 0;
    }
    return *this;
}

void
TraceBuffer::append(addr::Addr vaddr, bool is_write, std::uint32_t inst_gap)
{
    if (full()) {
        if (dropped_++ == 0)
            util::warn("trace buffer full (configured capacity %zu "
                       "records): dropping further appends; set "
                       "RMCC_TRACE_SPILL=on to stream traces larger than "
                       "RAM to disk instead",
                       capacity_);
        return;
    }
    if (vaddr > kMaxRecordVaddr)
        util::fatal("trace record vaddr 0x%llx exceeds 47 bits",
                    static_cast<unsigned long long>(vaddr));
    if (inst_gap > kMaxRecordGap)
        util::fatal("trace record inst_gap %u exceeds 16 bits", inst_gap);
    Record r{};
    r.vaddr = vaddr;
    r.inst_gap = inst_gap;
    r.is_write = is_write;
    records_.push_back(r);
    total_insts_ += 1 + inst_gap;
    writes_ += is_write ? 1 : 0;
    distinct_valid_ = false;
}

std::uint64_t
TraceBuffer::distinctBlocks() const
{
    if (distinct_valid_)
        return distinct_cache_;
    // One streaming pass through a hash set: O(n) expected time and
    // O(distinct) space, versus the old sort|unique's O(n log n) time
    // over an O(n) copy of the whole trace.
    BlockSet blocks(records_.size() / 8 + 16);
    for (const auto &r : records_)
        blocks.insert(addr::blockOf(r.vaddr));
    distinct_cache_ = blocks.size();
    distinct_valid_ = true;
    return distinct_cache_;
}

std::unique_ptr<TraceCursor>
TraceBuffer::cursor() const
{
    return std::make_unique<BufferCursor>(records_);
}

} // namespace rmcc::trace
