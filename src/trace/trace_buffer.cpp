#include "trace/trace_buffer.hpp"

#include <algorithm>

namespace rmcc::trace
{

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity)
{
    records_.reserve(std::min<std::size_t>(capacity, 1 << 22));
}

void
TraceBuffer::append(addr::Addr vaddr, bool is_write, std::uint32_t inst_gap)
{
    if (full())
        return;
    records_.push_back({vaddr, inst_gap, is_write});
    total_insts_ += 1 + inst_gap;
    writes_ += is_write ? 1 : 0;
}

std::uint64_t
TraceBuffer::distinctBlocks() const
{
    std::vector<addr::BlockId> blocks;
    blocks.reserve(records_.size());
    for (const auto &r : records_)
        blocks.push_back(addr::blockOf(r.vaddr));
    std::sort(blocks.begin(), blocks.end());
    blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
    return blocks.size();
}

} // namespace rmcc::trace
