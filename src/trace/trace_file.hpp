/**
 * @file
 * Spillable columnar trace file: the on-disk format and its streaming
 * writer.
 *
 * Layout (little-endian, x86-64 host order):
 *
 *     [FileHeader: 128 B]
 *     [records: record_count x 8 B packed trace::Record]
 *     [chunk checksums: ceil(record_count / chunk_records) x 8 B]
 *     [index checksum: 8 B]
 *
 * The header carries the stream totals (record count, instructions,
 * writes, drops, distinct blocks), the chunk geometry, a workload
 * fingerprint (name/length/seed/generator-version hash) so a cached file
 * is never replayed for the wrong workload, and an FNV-1a checksum of
 * itself.  Each fixed-size record chunk gets its own FNV-1a checksum so
 * truncation or corruption anywhere in a multi-GB file is caught by the
 * reader's opening pass without trusting the data.
 *
 * Generation streams through TraceFileWriter: the generator fills one
 * in-RAM chunk while a background thread writes the previous one, so
 * trace size is unbounded by host memory and generation overlaps I/O.
 * The writer targets `<path>.tmp.<pid>` and renames into place only in
 * finalize() — a crashed or SIGTERM'd generation can never leave a
 * half-written file that passes validation (same discipline as the
 * shared-graph cache and the suite journal).
 */
#ifndef RMCC_TRACE_TRACE_FILE_HPP
#define RMCC_TRACE_TRACE_FILE_HPP

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "trace/block_set.hpp"
#include "trace/trace_source.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace rmcc::trace
{

/** Bump when the record layout or header semantics change. */
inline constexpr std::uint32_t kTraceFormatVersion = 1;

/**
 * Format version for delta-compressed files.  Same 128 B header, but the
 * record region holds variable-length chunks: the first record of each
 * chunk raw (8 B), then per record a zigzag-varint vaddr delta followed
 * by a varint of (inst_gap << 1 | is_write).  The tail index stores
 * {byte_len, checksum} per chunk (checksum over the *encoded* bytes, so
 * corruption detection is as tight as v1) plus the index checksum.
 */
inline constexpr std::uint32_t kTraceFormatVersionDelta = 2;

/** Endianness marker as written by the producing host. */
inline constexpr std::uint32_t kTraceEndianMarker = 0x01020304;

/** Records per chunk (and default replay window): 1 M = 8 MB. */
inline constexpr std::uint64_t kTraceChunkRecords = 1ULL << 20;

/** FNV-1a over a byte range (chunk and header checksums). */
std::uint64_t fnv1aBytes(const void *data, std::size_t len,
                         std::uint64_t seed = 1469598103934665603ULL);

/**
 * Delta-encode one chunk of records (v2 format): first record raw, then
 * zigzag-varint vaddr deltas + varint (inst_gap << 1 | is_write).
 * Appends to `out` (cleared first).
 */
void deltaEncodeChunk(const Record *recs, std::size_t n,
                      std::vector<std::uint8_t> &out);

/**
 * Decode a delta-encoded chunk into `out` (up to max_records).
 * @return number of records decoded.
 * @throws std::runtime_error on truncated/malformed encoding or when the
 *         chunk holds more than max_records.
 */
std::size_t deltaDecodeChunk(const std::uint8_t *data, std::size_t len,
                             Record *out, std::size_t max_records);

/** On-disk file header; trivially copyable, 128 bytes. */
struct FileHeader
{
    char magic[8];                //!< "RMCCTRC\x01"
    std::uint32_t version;        //!< kTraceFormatVersion
    std::uint32_t endian;         //!< kTraceEndianMarker
    std::uint64_t record_count;
    std::uint64_t total_insts;
    std::uint64_t writes;
    std::uint64_t dropped;
    std::uint64_t distinct_blocks;
    std::uint64_t chunk_records;
    std::uint64_t fingerprint;
    std::uint64_t capacity;       //!< Configured generation cap.
    std::uint32_t record_bytes;   //!< sizeof(Record) == 8
    std::uint32_t block_bytes;    //!< addr::kBlockSize == 64
    std::uint8_t reserved[32];
    std::uint64_t header_checksum; //!< FNV-1a of this struct, field zeroed.
};

static_assert(sizeof(FileHeader) == 128, "fixed header size");

/** Magic value for FileHeader::magic. */
inline constexpr char kTraceMagic[8] = {'R', 'M', 'C', 'C',
                                        'T', 'R', 'C', '\x01'};

/**
 * Workload fingerprint stored in the header: identifies (generator
 * version, workload name, trace length, seed) so the spill cache can
 * reuse files across runs but never across a generator change.
 */
std::uint64_t traceFingerprint(const std::string &workload_name,
                               std::uint64_t records, std::uint64_t seed);

/** How trace spilling was requested (strict-parsed RMCC_* knobs). */
struct SpillConfig
{
    enum class Mode
    {
        Off,  //!< In-RAM TraceBuffer (default; bit-identical to pre-spill).
        Auto, //!< Spill only traces at/above threshold_records.
        On,   //!< Spill every trace.
    };
    enum class Compress
    {
        Off,   //!< Fixed 8 B records (format v1).
        Delta, //!< Zigzag-varint vaddr deltas per chunk (format v2).
    };
    Mode mode = Mode::Off;
    Compress compress = Compress::Off;  //!< RMCC_TRACE_COMPRESS.
    std::string dir;                    //!< Spill/cache directory.
    std::uint64_t window_records = kTraceChunkRecords;
    std::uint64_t threshold_records = 8ULL << 20; //!< Auto-mode cutoff.

    /** Should a trace of this many records go to disk? */
    bool shouldSpill(std::uint64_t records) const
    {
        return mode == Mode::On ||
               (mode == Mode::Auto && records >= threshold_records);
    }
};

/**
 * Parse RMCC_TRACE_SPILL / RMCC_TRACE_DIR / RMCC_TRACE_WINDOW_RECORDS /
 * RMCC_TRACE_SPILL_THRESHOLD / RMCC_TRACE_COMPRESS.  Garbage values
 * throw (std::runtime_error naming the variable), matching every other
 * RMCC_* knob.
 */
SpillConfig spillConfigFromEnv();

/**
 * Create the spill/cache directory (and parents) if missing.
 * @throws std::runtime_error when a component cannot be created.
 */
void ensureTraceDir(const std::string &dir);

/**
 * Streaming trace writer: a TraceSink backed by a double-buffered
 * background I/O thread.  append() fills the active chunk; when it is
 * full the chunk is handed to the writer thread and generation continues
 * into the other buffer.  Call finalize() to flush, write the checksum
 * index and header, fsync, and atomically rename into place.
 */
class TraceFileWriter final : public TraceSink
{
  public:
    /**
     * @param path final file path (written as path.tmp.<pid> until
     *        finalize()).
     * @param capacity generation cap, as TraceBuffer's constructor.
     * @param fingerprint workload identity (traceFingerprint()).
     * @param chunk_records records per chunk/checksum unit.
     * @param delta write delta-compressed chunks (format v2).
     * @throws std::runtime_error when the file cannot be created.
     */
    TraceFileWriter(std::string path, std::uint64_t capacity,
                    std::uint64_t fingerprint,
                    std::uint64_t chunk_records = kTraceChunkRecords,
                    bool delta = false);

    /** Abandons (unlinks) the temporary file unless finalize() ran. */
    ~TraceFileWriter() override;

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void append(addr::Addr vaddr, bool is_write,
                std::uint32_t inst_gap) override;

    bool full() const override { return count_ >= capacity_; }

    /** Records accepted so far. */
    std::uint64_t size() const { return count_; }

    /** Appends refused at capacity. */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Flush everything, write the index + header, fsync, and rename the
     * temporary into the final path.  Idempotent; must be called before
     * the file is opened for replay.
     * @throws std::runtime_error on any I/O failure (the temporary is
     *         removed; the final path is untouched).
     */
    void finalize();

    /** Final path the finalized file lives at. */
    const std::string &path() const { return path_; }

  private:
    void flushChunk();
    void writerLoop();
    void throwIfIoFailed();

    // Generation-thread-only state: touched by append()/finalize() and
    // the ctor/dtor, never by the background writer.
    std::string path_;
    std::string tmp_path_;
    int fd_ = -1; //!< Written by the writer thread only between
                  //!< ctor and join() (writeAll), owned here otherwise.
    std::uint64_t capacity_;
    std::uint64_t fingerprint_;
    std::uint64_t chunk_records_;
    bool delta_;
    std::uint64_t count_ = 0;
    std::uint64_t total_insts_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t dropped_ = 0;
    BlockSet distinct_;
    bool finalized_ = false;

    // Double buffering: generation fills active_, the background thread
    // drains pending_.  A single pending slot is enough — generation
    // blocks only when it outruns the disk by a full chunk.
    std::vector<Record> active_; //!< Generation-thread-only.
    util::Mutex mu_;
    util::CondVar cv_;
    std::vector<Record> pending_ RMCC_GUARDED_BY(mu_);
    bool pending_valid_ RMCC_GUARDED_BY(mu_) = false;
    bool stop_ RMCC_GUARDED_BY(mu_) = false;
    std::string io_error_ RMCC_GUARDED_BY(mu_);
    std::uint64_t bytes_written_ RMCC_GUARDED_BY(mu_) = 0;
    std::vector<std::uint64_t> chunk_checksums_ RMCC_GUARDED_BY(mu_);
    //!< v2 only: encoded byte length per chunk, parallel to checksums.
    std::vector<std::uint64_t> chunk_byte_lens_ RMCC_GUARDED_BY(mu_);
    std::thread writer_;
};

} // namespace rmcc::trace

#endif // RMCC_TRACE_TRACE_FILE_HPP
