/**
 * @file
 * Trace planning pass: one streaming read over a record span computing
 * per-window working sets before replay starts.
 *
 * Our access streams are *oblivious* — the whole trace exists before
 * simulation begins (the property MAGE, OSDI 2021, exploits for
 * out-of-core execution) — so instead of letting the replay loop fault
 * pages and discover footprints reactively, a single pass computes, per
 * replay window:
 *
 *   - distinct 64 B blocks and distinct 4 KB pages touched,
 *   - the counter-group footprint (64-block groups, the L0 granularity
 *     of the 64-ary schemes; an upper bound for Morphable's 128),
 *   - the list of pages FIRST touched in that window, in first-touch
 *     order.
 *
 * The first-touch lists let replay pre-warm the demand-allocation page
 * mapper at each window boundary: PageMapper::translate() assigns frames
 * in first-touch order, and the concatenated per-window lists reproduce
 * exactly that order (a page's first 4 KB touch is also its first touch
 * at any coarser page size), so pre-warming changes *when* frames are
 * assigned but never *which* frame a page gets — replay results stay
 * bit-identical while page faults migrate out of the measured window
 * loop.  The same pass is the streaming replacement for the old
 * O(n log n) sort in distinctBlocks().
 */
#ifndef RMCC_TRACE_TRACE_PLAN_HPP
#define RMCC_TRACE_TRACE_PLAN_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "trace/block_set.hpp"
#include "trace/record.hpp"

namespace rmcc::trace
{

/** Working set of one replay window. */
struct WindowPlan
{
    std::uint64_t first = 0;           //!< Global index of first record.
    std::uint64_t records = 0;
    std::uint64_t writes = 0;
    std::uint64_t distinct_blocks = 0; //!< Distinct blocks in window.
    std::uint64_t distinct_pages = 0;  //!< Distinct 4 KB pages in window.
    std::uint64_t counter_groups = 0;  //!< Distinct 64-block groups.
    std::uint64_t new_pages = 0;       //!< Pages first touched here.
    //! Slice of TracePlan::first_touch_vaddrs for this window.
    std::uint64_t page_list_off = 0;
    std::uint64_t page_list_len = 0;
};

/** Whole-trace plan: per-window working sets + global totals. */
struct TracePlan
{
    std::uint64_t window_records = 0;
    std::uint64_t total_records = 0;
    std::uint64_t distinct_blocks = 0;
    std::uint64_t distinct_pages = 0;
    std::uint64_t counter_groups = 0;
    std::vector<WindowPlan> windows;
    //! One representative vaddr per 4 KB page, in global first-touch
    //! order; windows slice it via page_list_off/len.
    std::vector<addr::Addr> first_touch_vaddrs;

    /** First-touch vaddr list of the window containing global record
     *  index `first` (as reported in TraceWindow::first). */
    const std::vector<WindowPlan> &windowPlans() const { return windows; }

    /** Slice of first-touch vaddrs for window index w. */
    std::pair<const addr::Addr *, std::size_t>
    pageSpan(std::size_t w) const
    {
        if (w >= windows.size())
            return {nullptr, 0};
        const WindowPlan &wp = windows[w];
        return {first_touch_vaddrs.data() + wp.page_list_off,
                static_cast<std::size_t>(wp.page_list_len)};
    }

    /** Window index of the window whose first record is `first`. */
    std::size_t windowIndexOf(std::uint64_t first) const
    {
        return window_records == 0
                   ? 0
                   : static_cast<std::size_t>(first / window_records);
    }
};

/**
 * Incremental plan construction: the mmap reader feeds one window-sized
 * span at a time so it can madvise(DONTNEED) each span right after
 * scanning it — the planning pass itself then never holds more than one
 * window resident, the same bound the replay loop honors.
 */
class TracePlanBuilder
{
  public:
    explicit TracePlanBuilder(std::uint64_t window_records);

    /** Scan the next window span (spans must arrive in trace order). */
    void addWindow(const Record *data, std::uint64_t count);

    /** Totals accumulated so far (for validation against a header). */
    std::uint64_t records() const { return plan_.total_records; }
    std::uint64_t writes() const { return total_writes_; }
    std::uint64_t totalInstructions() const { return total_insts_; }
    std::uint64_t distinctBlocks() const;

    /** Finish and take the plan; the builder is spent afterwards. */
    TracePlan finish();

  private:
    TracePlan plan_;
    std::uint64_t total_writes_ = 0;
    std::uint64_t total_insts_ = 0;
    BlockSet global_blocks_;
    BlockSet global_pages_;
    BlockSet global_groups_;
};

/**
 * Build a plan over a contiguous record span (one streaming pass).
 * Used over in-RAM vectors for tests and benchmarks; the mmap reader
 * uses TracePlanBuilder window by window instead.
 */
TracePlan buildTracePlan(const Record *records, std::uint64_t count,
                         std::uint64_t window_records);

} // namespace rmcc::trace

#endif // RMCC_TRACE_TRACE_PLAN_HPP
