#include "trace/trace_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "address/types.hpp"
#include "util/env.hpp"
#include "util/log.hpp"

namespace rmcc::trace
{

namespace
{

[[noreturn]] void
throwErrno(const std::string &what, const std::string &path)
{
    throw std::runtime_error("trace file: " + what + " '" + path +
                             "': " + std::strerror(errno));
}

/** write() the whole buffer, resuming on short writes / EINTR. */
void
writeAll(int fd, const void *data, std::size_t len, const std::string &path)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        const ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("write to", path);
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
}

/** Append a LEB128 varint. */
void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/** Read a LEB128 varint; returns false on truncation/overlong input. */
bool
getVarint(const std::uint8_t *data, std::size_t len, std::size_t &pos,
          std::uint64_t &v)
{
    v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (pos >= len)
            return false;
        const std::uint8_t b = data[pos++];
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return true;
    }
    return false;
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

} // namespace

std::uint64_t
fnv1aBytes(const void *data, std::size_t len, std::uint64_t seed)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

void
deltaEncodeChunk(const Record *recs, std::size_t n,
                 std::vector<std::uint8_t> &out)
{
    out.clear();
    if (n == 0)
        return;
    // First record raw: the decoder (and TraceWindow::ahead) can read it
    // without unwinding any delta chain.
    out.resize(sizeof(Record));
    std::memcpy(out.data(), &recs[0], sizeof(Record));
    std::uint64_t prev = recs[0].vaddr;
    for (std::size_t i = 1; i < n; ++i) {
        const std::uint64_t cur = recs[i].vaddr;
        putVarint(out, zigzag(static_cast<std::int64_t>(cur) -
                              static_cast<std::int64_t>(prev)));
        putVarint(out, (static_cast<std::uint64_t>(recs[i].inst_gap) << 1) |
                           recs[i].is_write);
        prev = cur;
    }
}

std::size_t
deltaDecodeChunk(const std::uint8_t *data, std::size_t len, Record *out,
                 std::size_t max_records)
{
    if (len == 0)
        return 0;
    if (len < sizeof(Record) || max_records == 0)
        throw std::runtime_error(
            "trace file: delta chunk shorter than one record");
    std::memcpy(&out[0], data, sizeof(Record));
    std::size_t n = 1;
    std::size_t pos = sizeof(Record);
    std::uint64_t prev = out[0].vaddr;
    while (pos < len) {
        std::uint64_t dv = 0, meta = 0;
        if (!getVarint(data, len, pos, dv) ||
            !getVarint(data, len, pos, meta))
            throw std::runtime_error(
                "trace file: truncated varint in delta chunk");
        if (n >= max_records)
            throw std::runtime_error(
                "trace file: delta chunk overflows its record budget");
        const std::uint64_t vaddr =
            static_cast<std::uint64_t>(static_cast<std::int64_t>(prev) +
                                       unzigzag(dv));
        const std::uint64_t gap = meta >> 1;
        if (vaddr > kMaxRecordVaddr || gap > kMaxRecordGap)
            throw std::runtime_error(
                "trace file: out-of-range field in delta chunk");
        out[n].vaddr = vaddr;
        out[n].inst_gap = gap;
        out[n].is_write = meta & 1;
        prev = vaddr;
        ++n;
    }
    return n;
}

std::uint64_t
traceFingerprint(const std::string &workload_name, std::uint64_t records,
                 std::uint64_t seed)
{
    std::string key = workload_name;
    key += '|';
    key += std::to_string(records);
    key += '|';
    key += std::to_string(seed);
    key += "|gen";
    key += std::to_string(kTraceFormatVersion);
    return fnv1aBytes(key.data(), key.size());
}

SpillConfig
spillConfigFromEnv()
{
    SpillConfig sc;
    const std::string mode =
        util::envChoice("RMCC_TRACE_SPILL", {"off", "auto", "on"}, "off");
    sc.mode = mode == "on"    ? SpillConfig::Mode::On
              : mode == "auto" ? SpillConfig::Mode::Auto
                               : SpillConfig::Mode::Off;
    sc.compress = util::envChoice("RMCC_TRACE_COMPRESS", {"off", "delta"},
                                  "off") == "delta"
                      ? SpillConfig::Compress::Delta
                      : SpillConfig::Compress::Off;
    sc.dir = util::envStringOr("RMCC_TRACE_DIR", "/tmp/rmcc_traces");
    if (const auto w = util::envPositive("RMCC_TRACE_WINDOW_RECORDS"))
        sc.window_records = *w;
    if (const auto t = util::envPositive("RMCC_TRACE_SPILL_THRESHOLD"))
        sc.threshold_records = *t;
    return sc;
}

void
ensureTraceDir(const std::string &dir)
{
    if (dir.empty())
        throw std::runtime_error("trace file: empty spill directory");
    // mkdir -p: create each component, tolerating ones that exist.
    std::string sofar;
    std::size_t pos = 0;
    while (pos <= dir.size()) {
        const std::size_t slash = dir.find('/', pos);
        const std::size_t end = slash == std::string::npos ? dir.size()
                                                           : slash;
        sofar.assign(dir, 0, end);
        pos = end + 1;
        if (sofar.empty())
            continue; // leading '/'
        if (::mkdir(sofar.c_str(), 0755) != 0 && errno != EEXIST)
            throwErrno("create directory", sofar);
    }
    struct stat st{};
    if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        throw std::runtime_error("trace file: '" + dir +
                                 "' is not a directory");
}

TraceFileWriter::TraceFileWriter(std::string path, std::uint64_t capacity,
                                 std::uint64_t fingerprint,
                                 std::uint64_t chunk_records, bool delta)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp." + std::to_string(::getpid())),
      capacity_(capacity),
      fingerprint_(fingerprint),
      chunk_records_(chunk_records == 0 ? kTraceChunkRecords
                                        : chunk_records),
      delta_(delta),
      distinct_(1 << 12)
{
    fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0)
        throwErrno("create", tmp_path_);
    // Reserve the header slot; the real header is pwritten in finalize()
    // once the totals are known.
    const FileHeader zero{};
    writeAll(fd_, &zero, sizeof zero, tmp_path_);
    bytes_written_ = sizeof zero;
    active_.reserve(chunk_records_);
    pending_.reserve(chunk_records_);
    writer_ = std::thread([this] { writerLoop(); });
}

TraceFileWriter::~TraceFileWriter()
{
    {
        util::MutexLock lk(mu_);
        stop_ = true;
        cv_.notify_all();
    }
    if (writer_.joinable())
        writer_.join();
    if (fd_ >= 0)
        ::close(fd_);
    if (!finalized_)
        ::unlink(tmp_path_.c_str()); // never leave a half-written temp
    if (dropped_ > 0)
        util::warn("trace file writer dropped %llu append(s) total "
                   "(configured capacity %llu); the generator overran "
                   "the trace budget",
                   static_cast<unsigned long long>(dropped_),
                   static_cast<unsigned long long>(capacity_));
}

void
TraceFileWriter::append(addr::Addr vaddr, bool is_write,
                        std::uint32_t inst_gap)
{
    if (full()) {
        if (dropped_++ == 0)
            util::warn("trace file full (configured capacity %llu "
                       "records): dropping further appends",
                       static_cast<unsigned long long>(capacity_));
        return;
    }
    if (vaddr > kMaxRecordVaddr)
        util::fatal("trace record vaddr 0x%llx exceeds 47 bits",
                    static_cast<unsigned long long>(vaddr));
    if (inst_gap > kMaxRecordGap)
        util::fatal("trace record inst_gap %u exceeds 16 bits", inst_gap);
    Record r{};
    r.vaddr = vaddr;
    r.inst_gap = inst_gap;
    r.is_write = is_write;
    active_.push_back(r);
    ++count_;
    total_insts_ += 1 + inst_gap;
    writes_ += is_write ? 1 : 0;
    distinct_.insert(addr::blockOf(vaddr));
    if (active_.size() >= chunk_records_)
        flushChunk();
}

void
TraceFileWriter::flushChunk()
{
    if (active_.empty())
        return;
    util::MutexLock lk(mu_);
    // Double buffering: wait until the background thread has drained the
    // previous chunk, then swap ours in.
    cv_.wait(lk, [this]() RMCC_REQUIRES(mu_) {
        return !pending_valid_ || !io_error_.empty();
    });
    if (!io_error_.empty())
        throw std::runtime_error("trace file: background write to '" +
                                 tmp_path_ + "' failed: " + io_error_);
    pending_.swap(active_);
    pending_valid_ = true;
    active_.clear();
    cv_.notify_all();
}

void
TraceFileWriter::writerLoop()
{
    std::vector<Record> chunk;
    std::vector<std::uint8_t> encoded;
    for (;;) {
        {
            util::MutexLock lk(mu_);
            cv_.wait(lk, [this]() RMCC_REQUIRES(mu_) {
                return pending_valid_ || stop_;
            });
            if (!pending_valid_ && stop_)
                return;
            chunk.swap(pending_);
            pending_valid_ = false;
            cv_.notify_all();
        }
        // v2 checksums cover the encoded bytes — what is actually on
        // disk — so corruption detection is as tight as v1's.
        const void *data = chunk.data();
        std::size_t bytes = chunk.size() * sizeof(Record);
        if (delta_) {
            deltaEncodeChunk(chunk.data(), chunk.size(), encoded);
            data = encoded.data();
            bytes = encoded.size();
        }
        try {
            writeAll(fd_, data, bytes, tmp_path_);
        } catch (const std::exception &e) {
            util::MutexLock lk(mu_);
            io_error_ = e.what();
            cv_.notify_all();
            return;
        }
        util::MutexLock lk(mu_);
        bytes_written_ += bytes;
        chunk_checksums_.push_back(fnv1aBytes(data, bytes));
        if (delta_)
            chunk_byte_lens_.push_back(bytes);
        chunk.clear();
    }
}

void
TraceFileWriter::throwIfIoFailed()
{
    util::MutexLock lk(mu_);
    if (!io_error_.empty())
        throw std::runtime_error("trace file: background write to '" +
                                 tmp_path_ + "' failed: " + io_error_);
}

void
TraceFileWriter::finalize()
{
    if (finalized_)
        return;
    flushChunk(); // hand the partial tail chunk to the writer
    {
        util::MutexLock lk(mu_);
        cv_.wait(lk, [this]() RMCC_REQUIRES(mu_) {
            return (!pending_valid_) || !io_error_.empty();
        });
        stop_ = true;
        cv_.notify_all();
    }
    writer_.join();
    throwIfIoFailed();

    // Checksum index: one FNV-1a per chunk, then a checksum over the
    // index itself, so the reader can localize corruption.  The writer
    // thread is joined, but chunk_checksums_ is lock-protected state —
    // take mu_ so the discipline is uniform (and provable to the
    // thread-safety analysis) rather than relying on the join barrier.
    std::size_t n_chunks = 0;
    {
        util::MutexLock lk(mu_);
        n_chunks = chunk_checksums_.size();
        if (delta_) {
            // v2 index: {byte_len, checksum} per chunk — offsets are
            // prefix sums, so lengths are enough to locate every chunk.
            std::vector<std::uint64_t> index;
            index.reserve(n_chunks * 2);
            for (std::size_t c = 0; c < n_chunks; ++c) {
                index.push_back(chunk_byte_lens_[c]);
                index.push_back(chunk_checksums_[c]);
            }
            const std::size_t index_bytes =
                index.size() * sizeof(std::uint64_t);
            writeAll(fd_, index.data(), index_bytes, tmp_path_);
            const std::uint64_t index_sum =
                fnv1aBytes(index.data(), index_bytes);
            writeAll(fd_, &index_sum, sizeof index_sum, tmp_path_);
        } else {
            const std::size_t index_bytes =
                n_chunks * sizeof(std::uint64_t);
            writeAll(fd_, chunk_checksums_.data(), index_bytes, tmp_path_);
            const std::uint64_t index_sum =
                fnv1aBytes(chunk_checksums_.data(), index_bytes);
            writeAll(fd_, &index_sum, sizeof index_sum, tmp_path_);
        }
    }

    FileHeader h{};
    std::memcpy(h.magic, kTraceMagic, sizeof h.magic);
    h.version = delta_ ? kTraceFormatVersionDelta : kTraceFormatVersion;
    h.endian = kTraceEndianMarker;
    h.record_count = count_;
    h.total_insts = total_insts_;
    h.writes = writes_;
    h.dropped = dropped_;
    h.distinct_blocks = distinct_.size();
    h.chunk_records = chunk_records_;
    h.fingerprint = fingerprint_;
    h.capacity = capacity_;
    h.record_bytes = sizeof(Record);
    h.block_bytes = addr::kBlockSize;
    h.header_checksum = 0;
    h.header_checksum = fnv1aBytes(&h, sizeof h);
    if (::pwrite(fd_, &h, sizeof h, 0) !=
        static_cast<ssize_t>(sizeof h))
        throwErrno("write header of", tmp_path_);

    if (::fsync(fd_) != 0)
        throwErrno("fsync", tmp_path_);
    ::close(fd_);
    fd_ = -1;
    if (::rename(tmp_path_.c_str(), path_.c_str()) != 0)
        throwErrno("rename into place", path_);
    finalized_ = true;
    util::logDebug("trace file: finalized %s (%llu records, %llu chunks)",
                   path_.c_str(),
                   static_cast<unsigned long long>(count_),
                   static_cast<unsigned long long>(n_chunks));
}

} // namespace rmcc::trace
