/**
 * @file
 * Streaming distinct-key counting: an open-addressing uint64 hash set.
 *
 * Both TraceBuffer::distinctBlocks() and the trace planning pass need
 * "how many distinct blocks/pages does this record stream touch?" over
 * streams that may never fit in RAM at once.  A sort|unique over a
 * materialized copy (the pre-PR-8 implementation) is O(n log n) time and
 * O(n) extra space in the *record count*; this set is O(n) expected time
 * and O(distinct) space, which for memory traces is orders of magnitude
 * smaller than the stream itself.
 */
#ifndef RMCC_TRACE_BLOCK_SET_HPP
#define RMCC_TRACE_BLOCK_SET_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rmcc::trace
{

/**
 * Open-addressing hash set of uint64 keys with linear probing.
 *
 * Any key value is accepted (the empty-slot sentinel is handled out of
 * band), capacity grows at ~0.7 load, and insert() reports whether the
 * key was new — the planner counts "first touches" with that bit.
 */
class BlockSet
{
  public:
    explicit BlockSet(std::size_t expected = 64)
    {
        std::size_t cap = 16;
        while (cap < expected * 2)
            cap <<= 1;
        slots_.assign(cap, kEmpty);
    }

    /** Insert a key; true when it was not already present. */
    bool insert(std::uint64_t key)
    {
        if (key == kEmpty) {
            if (has_empty_key_)
                return false;
            has_empty_key_ = true;
            ++size_;
            return true;
        }
        if ((size_ + 1) * 10 >= slots_.size() * 7)
            grow();
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = mix(key) & mask;
        while (slots_[i] != kEmpty) {
            if (slots_[i] == key)
                return false;
            i = (i + 1) & mask;
        }
        slots_[i] = key;
        ++size_;
        return true;
    }

    /** True when the key has been inserted. */
    bool contains(std::uint64_t key) const
    {
        if (key == kEmpty)
            return has_empty_key_;
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = mix(key) & mask;
        while (slots_[i] != kEmpty) {
            if (slots_[i] == key)
                return true;
            i = (i + 1) & mask;
        }
        return false;
    }

    /** Number of distinct keys inserted. */
    std::uint64_t size() const { return size_; }

    void clear()
    {
        std::fill(slots_.begin(), slots_.end(), kEmpty);
        has_empty_key_ = false;
        size_ = 0;
    }

  private:
    static constexpr std::uint64_t kEmpty = ~0ULL;

    /** splitmix64 finalizer: block ids are low-entropy in the low bits. */
    static std::uint64_t mix(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    void grow()
    {
        std::vector<std::uint64_t> old = std::move(slots_);
        slots_.assign(old.size() * 2, kEmpty);
        const std::size_t mask = slots_.size() - 1;
        for (const std::uint64_t key : old) {
            if (key == kEmpty)
                continue;
            std::size_t i = mix(key) & mask;
            while (slots_[i] != kEmpty)
                i = (i + 1) & mask;
            slots_[i] = key;
        }
    }

    std::vector<std::uint64_t> slots_;
    bool has_empty_key_ = false;
    std::uint64_t size_ = 0;
};

} // namespace rmcc::trace

#endif // RMCC_TRACE_BLOCK_SET_HPP
