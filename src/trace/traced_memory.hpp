/**
 * @file
 * A traced simulated heap: workload kernels allocate arrays from it and
 * every element access is recorded into a TraceSink (an in-RAM
 * TraceBuffer or a spilling TraceFileWriter), playing the role of Pin
 * instrumentation over a native binary.
 *
 * The heap hands out *virtual* address ranges; values live in ordinary host
 * vectors so the kernels are real executable algorithms, not statistical
 * address generators.
 */
#ifndef RMCC_TRACE_TRACED_MEMORY_HPP
#define RMCC_TRACE_TRACED_MEMORY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_source.hpp"
#include "util/rng.hpp"

namespace rmcc::trace
{

/**
 * Allocator + recorder for simulated virtual memory.
 */
class TracedHeap
{
  public:
    /**
     * @param sink destination trace (borrowed; must outlive the heap).
     * @param mean_inst_gap mean non-memory instructions between recorded
     *        memory operations (workload "compute density").
     * @param seed RNG seed for gap jitter.
     */
    TracedHeap(TraceSink &sink, double mean_inst_gap, std::uint64_t seed);

    /** Reserve a virtual range of n elements of size elem_bytes. */
    addr::Addr allocate(std::uint64_t n, std::uint64_t elem_bytes,
                        const std::string &label);

    /** Record a load of element index i of a range. */
    void load(addr::Addr base, std::uint64_t index,
              std::uint64_t elem_bytes);

    /** Record a store to element index i of a range. */
    void store(addr::Addr base, std::uint64_t index,
               std::uint64_t elem_bytes);

    /** Total bytes allocated. */
    std::uint64_t allocatedBytes() const { return brk_; }

    /** The underlying sink. */
    TraceSink &sink() { return sink_; }

    /** True once the trace budget is exhausted; kernels should stop. */
    bool done() const { return sink_.full(); }

  private:
    TraceSink &sink_;
    double mean_gap_;
    util::Rng rng_;
    addr::Addr brk_ = 1ULL << 20; // leave a guard gap below the heap
};

/**
 * A typed array living in a TracedHeap.  Reads/writes go to a host vector
 * (so algorithms really run) and are simultaneously recorded as loads and
 * stores at the array's simulated virtual addresses.
 */
template <typename T>
class TracedArray
{
  public:
    /** Allocate n elements, default-initialized. */
    TracedArray(TracedHeap &heap, std::uint64_t n, const std::string &label)
        : heap_(&heap), data_(n),
          base_(heap.allocate(n, sizeof(T), label))
    {
    }

    /** Recorded element read. */
    T get(std::uint64_t i)
    {
        heap_->load(base_, i, sizeof(T));
        return data_[i];
    }

    /** Recorded element write. */
    void set(std::uint64_t i, const T &v)
    {
        heap_->store(base_, i, sizeof(T));
        data_[i] = v;
    }

    /** Unrecorded access for setup/teardown phases. */
    T &raw(std::uint64_t i) { return data_[i]; }
    const T &raw(std::uint64_t i) const { return data_[i]; }

    std::uint64_t size() const { return data_.size(); }

    /** Base simulated virtual address. */
    addr::Addr base() const { return base_; }

  private:
    TracedHeap *heap_;
    std::vector<T> data_;
    addr::Addr base_;
};

} // namespace rmcc::trace

#endif // RMCC_TRACE_TRACED_MEMORY_HPP
