#include "trace/trace_plan.hpp"

namespace rmcc::trace
{

TracePlanBuilder::TracePlanBuilder(std::uint64_t window_records)
    : global_blocks_(1 << 12), global_pages_(1 << 10),
      global_groups_(1 << 10)
{
    plan_.window_records = window_records;
}

void
TracePlanBuilder::addWindow(const Record *data, std::uint64_t count)
{
    WindowPlan wp;
    wp.first = plan_.total_records;
    wp.records = count;
    wp.page_list_off = plan_.first_touch_vaddrs.size();

    BlockSet win_blocks(1 << 10);
    BlockSet win_pages(1 << 8);
    BlockSet win_groups(1 << 8);
    for (std::uint64_t i = 0; i < count; ++i) {
        const Record &r = data[i];
        const addr::Addr vaddr = r.vaddr;
        const std::uint64_t block = addr::blockOf(vaddr);
        const std::uint64_t page4k = vaddr >> 12;
        const std::uint64_t group = block >> 6;
        wp.writes += r.is_write ? 1 : 0;
        total_insts_ += 1 + r.inst_gap;
        if (win_blocks.insert(block))
            ++wp.distinct_blocks;
        if (win_pages.insert(page4k))
            ++wp.distinct_pages;
        if (win_groups.insert(group))
            ++wp.counter_groups;
        global_blocks_.insert(block);
        global_groups_.insert(group);
        if (global_pages_.insert(page4k)) {
            ++wp.new_pages;
            plan_.first_touch_vaddrs.push_back(vaddr);
        }
    }
    wp.page_list_len = plan_.first_touch_vaddrs.size() - wp.page_list_off;
    total_writes_ += wp.writes;
    plan_.total_records += count;
    plan_.windows.push_back(wp);
}

std::uint64_t
TracePlanBuilder::distinctBlocks() const
{
    return global_blocks_.size();
}

TracePlan
TracePlanBuilder::finish()
{
    plan_.distinct_blocks = global_blocks_.size();
    plan_.distinct_pages = global_pages_.size();
    plan_.counter_groups = global_groups_.size();
    return std::move(plan_);
}

TracePlan
buildTracePlan(const Record *records, std::uint64_t count,
               std::uint64_t window_records)
{
    const std::uint64_t w =
        window_records == 0 ? (count == 0 ? 1 : count) : window_records;
    TracePlanBuilder b(w);
    if (count == 0) {
        b.addWindow(records, 0);
    } else {
        for (std::uint64_t start = 0; start < count; start += w)
            b.addWindow(records + start,
                        count - start < w ? count - start : w);
    }
    return b.finish();
}

} // namespace rmcc::trace
