/**
 * @file
 * Memory-trace record: the interchange format between workload models and
 * the simulators (the role Pin traces / gem5 probes play in the paper).
 */
#ifndef RMCC_TRACE_RECORD_HPP
#define RMCC_TRACE_RECORD_HPP

#include <cstdint>

#include "address/types.hpp"

namespace rmcc::trace
{

/** One memory operation observed at the core. */
struct Record
{
    addr::Addr vaddr;        //!< Virtual byte address.
    std::uint32_t inst_gap;  //!< Non-memory instructions since previous op.
    bool is_write;           //!< Store (true) or load (false).
};

static_assert(sizeof(Record) <= 16, "keep traces compact");

} // namespace rmcc::trace

#endif // RMCC_TRACE_RECORD_HPP
