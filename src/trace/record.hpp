/**
 * @file
 * Memory-trace record: the interchange format between workload models and
 * the simulators (the role Pin traces / gem5 probes play in the paper).
 */
#ifndef RMCC_TRACE_RECORD_HPP
#define RMCC_TRACE_RECORD_HPP

#include <cstdint>

#include "address/types.hpp"

namespace rmcc::trace
{

/**
 * One memory operation observed at the core, packed into 8 bytes so a
 * 100M-record trace streams through the simulators at cache speed.
 *
 * Field widths: 47 bits of virtual address cover the canonical x86-64
 * user half; 16 bits of instruction gap exceed any gap the geometric
 * workload models emit by orders of magnitude.  TraceBuffer::append
 * rejects out-of-range values loudly rather than truncating.
 */
struct Record
{
    std::uint64_t vaddr : 47;    //!< Virtual byte address.
    std::uint64_t inst_gap : 16; //!< Non-memory instructions since
                                 //!< previous op.
    std::uint64_t is_write : 1;  //!< Store (1) or load (0).
};

static_assert(sizeof(Record) == 8, "keep traces compact");

/** Largest virtual address a Record can carry. */
inline constexpr std::uint64_t kMaxRecordVaddr = (1ULL << 47) - 1;

/** Largest instruction gap a Record can carry. */
inline constexpr std::uint32_t kMaxRecordGap = (1U << 16) - 1;

} // namespace rmcc::trace

#endif // RMCC_TRACE_RECORD_HPP
