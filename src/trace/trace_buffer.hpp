/**
 * @file
 * In-memory trace container with summary statistics.
 */
#ifndef RMCC_TRACE_TRACE_BUFFER_HPP
#define RMCC_TRACE_TRACE_BUFFER_HPP

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace rmcc::trace
{

/**
 * A bounded trace of memory operations.
 *
 * Workload models append to the buffer; generation stops automatically once
 * the configured capacity is reached (checked by the workload's isDone()
 * via full()).  Appends past capacity are counted in dropped() and warned
 * about once — a workload that keeps generating after full() indicates a
 * miswired loop, not data to discard silently.
 */
class TraceBuffer
{
  public:
    /** Create a buffer that accepts up to capacity records. */
    explicit TraceBuffer(std::size_t capacity);

    /**
     * Reports the FINAL dropped count if any appends were refused — the
     * one-shot warning at first drop only knows the count so far, so a
     * generator that keeps running long past full() would otherwise
     * under-report by orders of magnitude.
     */
    ~TraceBuffer();

    //! Moves transfer the drop counter (the source stops owning it), so
    //! a moved-from temporary's destructor does not double-report.
    TraceBuffer(TraceBuffer &&other) noexcept;
    TraceBuffer &operator=(TraceBuffer &&other) noexcept;
    TraceBuffer(const TraceBuffer &) = default;
    TraceBuffer &operator=(const TraceBuffer &) = default;

    /**
     * Append a load/store.  Once full, the record is counted as dropped
     * (with a one-time warning) instead of being stored.  Out-of-range
     * values (vaddr above 47 bits, gap above 16) are fatal: the packed
     * Record cannot represent them and truncation would silently corrupt
     * the trace.
     */
    void append(addr::Addr vaddr, bool is_write, std::uint32_t inst_gap);

    /** True once capacity records have been recorded. */
    bool full() const { return records_.size() >= capacity_; }

    /** Recorded operations. */
    const std::vector<Record> &records() const { return records_; }

    std::size_t size() const { return records_.size(); }

    /** Total instructions represented (memory ops + gaps). */
    std::uint64_t totalInstructions() const { return total_insts_; }

    /** Number of writes recorded. */
    std::uint64_t writes() const { return writes_; }

    /** Appends refused because the buffer was already full. */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Distinct 64 B blocks touched (exact).  Computed on first call and
     * cached; appending invalidates the cache.
     */
    std::uint64_t distinctBlocks() const;

  private:
    std::size_t capacity_;
    std::vector<Record> records_;
    std::uint64_t total_insts_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t dropped_ = 0;
    //! distinctBlocks() is O(n log n); reporting code calls it repeatedly
    //! on a finished trace, so the result is memoized until an append.
    mutable std::uint64_t distinct_cache_ = 0;
    mutable bool distinct_valid_ = false;
};

} // namespace rmcc::trace

#endif // RMCC_TRACE_TRACE_BUFFER_HPP
