/**
 * @file
 * In-memory trace container with summary statistics.
 */
#ifndef RMCC_TRACE_TRACE_BUFFER_HPP
#define RMCC_TRACE_TRACE_BUFFER_HPP

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace rmcc::trace
{

/**
 * A bounded trace of memory operations.
 *
 * Workload models append to the buffer; generation stops automatically once
 * the configured capacity is reached (checked by the workload's isDone()
 * via full()).
 */
class TraceBuffer
{
  public:
    /** Create a buffer that accepts up to capacity records. */
    explicit TraceBuffer(std::size_t capacity);

    /** Append a load/store; silently dropped once full. */
    void append(addr::Addr vaddr, bool is_write, std::uint32_t inst_gap);

    /** True once capacity records have been recorded. */
    bool full() const { return records_.size() >= capacity_; }

    /** Recorded operations. */
    const std::vector<Record> &records() const { return records_; }

    std::size_t size() const { return records_.size(); }

    /** Total instructions represented (memory ops + gaps). */
    std::uint64_t totalInstructions() const { return total_insts_; }

    /** Number of writes recorded. */
    std::uint64_t writes() const { return writes_; }

    /** Distinct 64 B blocks touched (exact, via sorted scan). */
    std::uint64_t distinctBlocks() const;

  private:
    std::size_t capacity_;
    std::vector<Record> records_;
    std::uint64_t total_insts_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace rmcc::trace

#endif // RMCC_TRACE_TRACE_BUFFER_HPP
