/**
 * @file
 * In-memory trace container with summary statistics.
 */
#ifndef RMCC_TRACE_TRACE_BUFFER_HPP
#define RMCC_TRACE_TRACE_BUFFER_HPP

#include <cstdint>
#include <vector>

#include "trace/record.hpp"
#include "trace/trace_source.hpp"

namespace rmcc::trace
{

/**
 * A bounded trace of memory operations.
 *
 * Workload models append to the buffer; generation stops automatically once
 * the configured capacity is reached (checked by the workload's isDone()
 * via full()).  Appends past capacity are counted in dropped() and warned
 * about once — a workload that keeps generating after full() indicates a
 * miswired loop, not data to discard silently.
 *
 * The buffer is both a TraceSink (generators stream into it) and a
 * TraceSource (the simulators replay from it as a single window covering
 * the whole vector).  Traces too large for RAM go through the spilling
 * TraceFileWriter / TraceFileReader pair instead (RMCC_TRACE_SPILL).
 */
class TraceBuffer : public TraceSink, public TraceSource
{
  public:
    /** Create a buffer that accepts up to capacity records. */
    explicit TraceBuffer(std::size_t capacity);

    /**
     * Reports the FINAL dropped count if any appends were refused — the
     * one-shot warning at first drop only knows the count so far, so a
     * generator that keeps running long past full() would otherwise
     * under-report by orders of magnitude.
     */
    ~TraceBuffer() override;

    //! Moves transfer the drop counter (the source stops owning it), so
    //! a moved-from temporary's destructor does not double-report.
    TraceBuffer(TraceBuffer &&other) noexcept;
    TraceBuffer &operator=(TraceBuffer &&other) noexcept;
    TraceBuffer(const TraceBuffer &) = default;
    TraceBuffer &operator=(const TraceBuffer &) = default;

    /**
     * Append a load/store.  Once full, the record is counted as dropped
     * (with a one-time warning) instead of being stored.  Out-of-range
     * values (vaddr above 47 bits, gap above 16) are fatal: the packed
     * Record cannot represent them and truncation would silently corrupt
     * the trace.
     */
    void append(addr::Addr vaddr, bool is_write,
                std::uint32_t inst_gap) override;

    /** True once capacity records have been recorded. */
    bool full() const override { return records_.size() >= capacity_; }

    /** Recorded operations. */
    const std::vector<Record> &records() const { return records_; }

    std::size_t size() const override { return records_.size(); }

    /** Total instructions represented (memory ops + gaps). */
    std::uint64_t totalInstructions() const override
    {
        return total_insts_;
    }

    /** Number of writes recorded. */
    std::uint64_t writes() const override { return writes_; }

    /** Appends refused because the buffer was already full. */
    std::uint64_t dropped() const override { return dropped_; }

    /**
     * Distinct 64 B blocks touched (exact).  Computed on first call and
     * cached; appending invalidates the cache.
     */
    std::uint64_t distinctBlocks() const override;

    /** One window spanning the whole vector (zero per-record overhead). */
    std::unique_ptr<TraceCursor> cursor() const override;

  private:
    std::size_t capacity_;
    std::vector<Record> records_;
    std::uint64_t total_insts_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t dropped_ = 0;
    //! Reporting code calls distinctBlocks() repeatedly on a finished
    //! trace, so the streaming hash-set count (one O(n) pass, no sort)
    //! is memoized until an append invalidates it.
    mutable std::uint64_t distinct_cache_ = 0;
    mutable bool distinct_valid_ = false;
};

} // namespace rmcc::trace

#endif // RMCC_TRACE_TRACE_BUFFER_HPP
