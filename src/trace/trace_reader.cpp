#include "trace/trace_reader.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "address/types.hpp"
#include "util/log.hpp"

namespace rmcc::trace
{

namespace
{

[[noreturn]] void
fail(const std::string &path, const std::string &why)
{
    throw std::runtime_error("trace file '" + path + "': " + why);
}

std::uint64_t
hostPageSize()
{
    static const std::uint64_t ps =
        static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
    return ps;
}

} // namespace

TraceFileReader::TraceFileReader(
    std::string path, std::uint64_t window_records,
    std::optional<std::uint64_t> expected_fingerprint)
    : path_(std::move(path))
{
    const int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0)
        fail(path_, std::string("open failed: ") + std::strerror(errno));
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        fail(path_, std::string("fstat failed: ") + std::strerror(err));
    }
    const std::uint64_t file_len = static_cast<std::uint64_t>(st.st_size);
    if (file_len < sizeof(FileHeader)) {
        ::close(fd);
        fail(path_, "shorter than the header");
    }
    map_len_ = file_len;
    map_ = ::mmap(nullptr, map_len_, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd); // the mapping keeps the file alive
    if (map_ == MAP_FAILED) {
        map_ = nullptr;
        fail(path_, std::string("mmap failed: ") + std::strerror(errno));
    }

    std::memcpy(&header_, map_, sizeof header_);
    if (std::memcmp(header_.magic, kTraceMagic, sizeof kTraceMagic) != 0)
        fail(path_, "bad magic (not a trace file, or torn write)");
    if (header_.version != kTraceFormatVersion &&
        header_.version != kTraceFormatVersionDelta)
        fail(path_, "format version " + std::to_string(header_.version) +
                        " not in {" +
                        std::to_string(kTraceFormatVersion) + ", " +
                        std::to_string(kTraceFormatVersionDelta) + "}");
    compressed_ = header_.version == kTraceFormatVersionDelta;
    if (header_.endian != kTraceEndianMarker)
        fail(path_, "foreign endianness");
    if (header_.record_bytes != sizeof(Record) ||
        header_.block_bytes != addr::kBlockSize)
        fail(path_, "record/block geometry mismatch");
    FileHeader check = header_;
    check.header_checksum = 0;
    if (fnv1aBytes(&check, sizeof check) != header_.header_checksum)
        fail(path_, "header checksum mismatch");
    if (expected_fingerprint &&
        header_.fingerprint != *expected_fingerprint)
        fail(path_, "workload fingerprint mismatch (stale cache entry)");
    if (header_.chunk_records == 0)
        fail(path_, "zero chunk size");

    if (compressed_) {
        // Variable-length chunks replay chunk-at-a-time: the decode
        // window is pinned to the chunk geometry.
        window_records_ = header_.chunk_records;
        validateAndPlanDelta();
        return;
    }

    const std::uint64_t n_chunks =
        (header_.record_count + header_.chunk_records - 1) /
        header_.chunk_records;
    const std::uint64_t want_len = sizeof(FileHeader) +
                                   header_.record_count * sizeof(Record) +
                                   n_chunks * sizeof(std::uint64_t) +
                                   sizeof(std::uint64_t);
    if (file_len != want_len)
        fail(path_, "truncated: " + std::to_string(file_len) +
                        " bytes, header implies " +
                        std::to_string(want_len));

    window_records_ =
        window_records == 0 ? header_.chunk_records : window_records;

    validateAndPlan();
}

TraceFileReader::~TraceFileReader()
{
    if (map_ != nullptr)
        ::munmap(map_, map_len_);
}

const Record *
TraceFileReader::recordAt(std::uint64_t i) const
{
    return reinterpret_cast<const Record *>(
               static_cast<const char *>(map_) + sizeof(FileHeader)) +
           i;
}

void
TraceFileReader::adviseRecords(std::uint64_t first, std::uint64_t count,
                               int advice) const
{
    if (count == 0)
        return;
    adviseBytes(sizeof(FileHeader) + first * sizeof(Record),
                sizeof(FileHeader) + (first + count) * sizeof(Record),
                advice);
}

void
TraceFileReader::adviseBytes(std::uint64_t lo, std::uint64_t hi,
                             int advice) const
{
    if (hi <= lo)
        return;
    const std::uint64_t ps = hostPageSize();
    if (advice == MADV_DONTNEED) {
        // Round inward: never drop a page shared with a neighboring
        // window that may still be (or become) live.
        lo = (lo + ps - 1) & ~(ps - 1);
        hi = hi & ~(ps - 1);
    } else {
        lo = lo & ~(ps - 1);
        hi = (hi + ps - 1) & ~(ps - 1);
    }
    if (hi <= lo)
        return;
    ::madvise(static_cast<char *>(map_) + lo, hi - lo, advice);
}

void
TraceFileReader::validateAndPlan()
{
    const std::uint64_t n = header_.record_count;
    const std::uint64_t chunk = header_.chunk_records;
    const std::uint64_t n_chunks = (n + chunk - 1) / chunk;

    // The checksum index sits right after the records.
    const char *base = static_cast<const char *>(map_);
    const std::uint64_t *index = reinterpret_cast<const std::uint64_t *>(
        base + sizeof(FileHeader) + n * sizeof(Record));
    const std::uint64_t index_sum_stored = index[n_chunks];
    if (fnv1aBytes(index, n_chunks * sizeof(std::uint64_t)) !=
        index_sum_stored)
        fail(path_, "checksum index corrupt");

    // Pass 1 — chunk integrity.  Stream in chunk spans, dropping each
    // behind us so validation itself stays within the RSS bound.
    for (std::uint64_t c = 0; c < n_chunks; ++c) {
        const std::uint64_t first = c * chunk;
        const std::uint64_t count = n - first < chunk ? n - first : chunk;
        const std::uint64_t sum =
            fnv1aBytes(recordAt(first), count * sizeof(Record));
        if (sum != index[c])
            fail(path_, "chunk " + std::to_string(c) +
                            " checksum mismatch (corrupt records)");
        adviseRecords(first, count, MADV_DONTNEED);
    }

    // Pass 2 — planning.  Same streaming discipline, window spans.
    TracePlanBuilder builder(window_records_);
    if (n == 0) {
        builder.addWindow(recordAt(0), 0);
    } else {
        for (std::uint64_t start = 0; start < n;
             start += window_records_) {
            const std::uint64_t count = n - start < window_records_
                                            ? n - start
                                            : window_records_;
            builder.addWindow(recordAt(start), count);
            adviseRecords(start, count, MADV_DONTNEED);
        }
    }

    // The recomputed totals must match the header's claims: a mismatch
    // means the file lies about itself even though per-chunk checksums
    // passed (e.g. a header from a different generation).
    if (builder.records() != header_.record_count ||
        builder.totalInstructions() != header_.total_insts ||
        builder.writes() != header_.writes ||
        builder.distinctBlocks() != header_.distinct_blocks)
        fail(path_, "stream totals disagree with header");
    plan_ = builder.finish();

    logOpened();
}

void
TraceFileReader::validateAndPlanDelta()
{
    const std::uint64_t n = header_.record_count;
    const std::uint64_t chunk = header_.chunk_records;
    const std::uint64_t n_chunks = n == 0 ? 0 : (n + chunk - 1) / chunk;

    // The {byte_len, checksum} index plus its own checksum sit at the
    // tail; chunk offsets are prefix sums from just after the header.
    const std::uint64_t index_bytes =
        n_chunks * 2 * sizeof(std::uint64_t) + sizeof(std::uint64_t);
    if (map_len_ < sizeof(FileHeader) + index_bytes)
        fail(path_, "truncated: no room for the chunk index");
    const char *base = static_cast<const char *>(map_);
    const std::uint64_t *index = reinterpret_cast<const std::uint64_t *>(
        base + map_len_ - index_bytes);
    const std::uint64_t index_sum_stored = index[n_chunks * 2];
    if (fnv1aBytes(index, n_chunks * 2 * sizeof(std::uint64_t)) !=
        index_sum_stored)
        fail(path_, "checksum index corrupt");

    chunk_off_.assign(n_chunks + 1, sizeof(FileHeader));
    for (std::uint64_t c = 0; c < n_chunks; ++c)
        chunk_off_[c + 1] = chunk_off_[c] + index[c * 2];
    if (chunk_off_[n_chunks] != map_len_ - index_bytes)
        fail(path_, "chunk byte lengths disagree with file length");

    // Single streaming pass: per-chunk checksum over the encoded bytes,
    // decode into a scratch window, feed the plan, drop the span behind.
    std::vector<Record> scratch(chunk ? chunk : 1);
    TracePlanBuilder builder(window_records_);
    if (n == 0)
        builder.addWindow(scratch.data(), 0);
    for (std::uint64_t c = 0; c < n_chunks; ++c) {
        const std::uint64_t len = chunk_off_[c + 1] - chunk_off_[c];
        const auto *data = reinterpret_cast<const std::uint8_t *>(
            base + chunk_off_[c]);
        if (fnv1aBytes(data, len) != index[c * 2 + 1])
            fail(path_, "chunk " + std::to_string(c) +
                            " checksum mismatch (corrupt records)");
        const std::uint64_t first = c * chunk;
        const std::uint64_t want = n - first < chunk ? n - first : chunk;
        std::size_t got = 0;
        try {
            got = deltaDecodeChunk(data, len, scratch.data(),
                                   scratch.size());
        } catch (const std::exception &e) {
            fail(path_, "chunk " + std::to_string(c) + ": " + e.what());
        }
        if (got != want)
            fail(path_, "chunk " + std::to_string(c) + " decodes to " +
                            std::to_string(got) + " records, expected " +
                            std::to_string(want));
        builder.addWindow(scratch.data(), want);
        adviseBytes(chunk_off_[c], chunk_off_[c + 1], MADV_DONTNEED);
    }

    if (builder.records() != header_.record_count ||
        builder.totalInstructions() != header_.total_insts ||
        builder.writes() != header_.writes ||
        builder.distinctBlocks() != header_.distinct_blocks)
        fail(path_, "stream totals disagree with header");
    plan_ = builder.finish();

    logOpened();
}

void
TraceFileReader::logOpened() const
{
    util::logDebug("trace file: opened %s (%llu records, %llu windows "
                   "of %llu, %llu distinct blocks)",
                   path_.c_str(),
                   static_cast<unsigned long long>(header_.record_count),
                   static_cast<unsigned long long>(windowCount()),
                   static_cast<unsigned long long>(window_records_),
                   static_cast<unsigned long long>(
                       header_.distinct_blocks));
}

std::uint64_t
TraceFileReader::windowCount() const
{
    const std::uint64_t n = header_.record_count;
    return n == 0 ? 1 : (n + window_records_ - 1) / window_records_;
}

/** Forward pass over a reader's windows with prefetch/drop advice. */
class FileCursor final : public TraceCursor
{
  public:
    explicit FileCursor(const TraceFileReader &reader)
        : reader_(reader), n_windows_(reader.windowCount())
    {
    }

    TraceWindow next() override
    {
        const auto t0 = std::chrono::steady_clock::now();
        if (idx_ > 0) {
            // The window we just finished will not be revisited.
            span(idx_ - 1, MADV_DONTNEED);
            ++stats_.windows_dropped;
        }
        if (idx_ >= n_windows_ ||
            (idx_ > 0 && firstOf(idx_) >= reader_.size()))
            return {};

        if (idx_ == 0) {
            span(0, MADV_WILLNEED);
            ++stats_.prefetches;
        }
        if (idx_ + 1 < n_windows_) {
            // Kernel readahead pulls the next window in asynchronously
            // while the simulator drains this one.
            span(idx_ + 1, MADV_WILLNEED);
            ++stats_.prefetches;
        }

        const std::uint64_t first = firstOf(idx_);
        const std::uint64_t count = countOf(idx_);
        TraceWindow w;
        w.data = reader_.size() == 0 ? nullptr : recordPtr(first);
        w.count = count;
        w.first = first;
        w.ahead = first + count < reader_.size()
                      ? recordPtr(first + count)
                      : nullptr;
        ++idx_;
        ++stats_.windows_served;
        stats_.wait_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        return w;
    }

    const TraceIoStats *ioStats() const override { return &stats_; }

  private:
    std::uint64_t firstOf(std::uint64_t w) const
    {
        return w * reader_.windowRecords();
    }
    std::uint64_t countOf(std::uint64_t w) const
    {
        const std::uint64_t n = reader_.size();
        const std::uint64_t first = firstOf(w);
        if (first >= n)
            return 0;
        const std::uint64_t rest = n - first;
        return rest < reader_.windowRecords() ? rest
                                              : reader_.windowRecords();
    }
    const Record *recordPtr(std::uint64_t i) const
    {
        return reader_.recordAt(i);
    }
    void span(std::uint64_t w, int advice) const
    {
        reader_.adviseRecords(firstOf(w), countOf(w), advice);
    }

    const TraceFileReader &reader_;
    std::uint64_t n_windows_;
    std::uint64_t idx_ = 0;
    TraceIoStats stats_;
};

/**
 * Forward pass over a delta-compressed reader: each next() decodes one
 * chunk into an owned window buffer (the mapping holds encoded bytes, so
 * the simulators never see them), with the same prefetch/drop advice
 * stream as FileCursor over the encoded byte spans.
 */
class DeltaCursor final : public TraceCursor
{
  public:
    explicit DeltaCursor(const TraceFileReader &reader)
        : reader_(reader),
          n_windows_(reader.size() == 0 ? 0
                                        : reader.windowCount()),
          buf_(reader.header().chunk_records
                   ? reader.header().chunk_records
                   : 1)
    {
    }

    TraceWindow next() override
    {
        const auto t0 = std::chrono::steady_clock::now();
        if (idx_ > 0) {
            span(idx_ - 1, MADV_DONTNEED);
            ++stats_.windows_dropped;
        }
        if (idx_ >= n_windows_)
            return {};

        if (idx_ == 0) {
            span(0, MADV_WILLNEED);
            ++stats_.prefetches;
        }
        if (idx_ + 1 < n_windows_) {
            span(idx_ + 1, MADV_WILLNEED);
            ++stats_.prefetches;
        }

        const std::uint64_t chunk = reader_.header().chunk_records;
        const std::uint64_t first = idx_ * chunk;
        const std::uint64_t count = decodeChunk(idx_);
        TraceWindow w;
        w.data = buf_.data();
        w.count = count;
        w.first = first;
        if (idx_ + 1 < n_windows_) {
            // The next chunk's first record is stored raw, so the
            // one-record lookahead needs no delta unwinding.
            std::memcpy(&ahead_rec_, base() + reader_.chunk_off_[idx_ + 1],
                        sizeof(Record));
            w.ahead = &ahead_rec_;
        }
        ++idx_;
        ++stats_.windows_served;
        stats_.wait_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        return w;
    }

    const TraceIoStats *ioStats() const override { return &stats_; }

  private:
    const char *base() const
    {
        return static_cast<const char *>(reader_.map_);
    }
    std::uint64_t decodeChunk(std::uint64_t c)
    {
        const std::uint64_t len =
            reader_.chunk_off_[c + 1] - reader_.chunk_off_[c];
        const auto *data = reinterpret_cast<const std::uint8_t *>(
            base() + reader_.chunk_off_[c]);
        // The opening pass already checksummed and size-checked every
        // chunk; decode failures here would mean the file changed
        // underneath us, which deltaDecodeChunk still throws on.
        return deltaDecodeChunk(data, len, buf_.data(), buf_.size());
    }
    void span(std::uint64_t c, int advice) const
    {
        reader_.adviseBytes(reader_.chunk_off_[c],
                            reader_.chunk_off_[c + 1], advice);
    }

    const TraceFileReader &reader_;
    std::uint64_t n_windows_;
    std::vector<Record> buf_;
    Record ahead_rec_{};
    std::uint64_t idx_ = 0;
    TraceIoStats stats_;
};

std::unique_ptr<TraceCursor>
TraceFileReader::cursor() const
{
    if (compressed_)
        return std::make_unique<DeltaCursor>(*this);
    return std::make_unique<FileCursor>(*this);
}

} // namespace rmcc::trace
