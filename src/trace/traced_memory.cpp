#include "trace/traced_memory.hpp"

namespace rmcc::trace
{

TracedHeap::TracedHeap(TraceSink &sink, double mean_inst_gap,
                       std::uint64_t seed)
    : sink_(sink), mean_gap_(mean_inst_gap), rng_(seed)
{
}

addr::Addr
TracedHeap::allocate(std::uint64_t n, std::uint64_t elem_bytes,
                     const std::string &label)
{
    (void)label; // labels are for debugging/tests only
    // Align each range to a huge-page boundary so distinct arrays never
    // share a page, as a real allocator's mmap would behave for large
    // arrays.
    const addr::Addr aligned =
        (brk_ + addr::kHugePageSize - 1) & ~(addr::kHugePageSize - 1);
    brk_ = aligned + n * elem_bytes;
    return aligned;
}

void
TracedHeap::load(addr::Addr base, std::uint64_t index,
                 std::uint64_t elem_bytes)
{
    sink_.append(base + index * elem_bytes, false,
                 rng_.nextGeometric(mean_gap_));
}

void
TracedHeap::store(addr::Addr base, std::uint64_t index,
                  std::uint64_t elem_bytes)
{
    sink_.append(base + index * elem_bytes, true,
                 rng_.nextGeometric(mean_gap_));
}

} // namespace rmcc::trace
