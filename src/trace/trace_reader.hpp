/**
 * @file
 * Windowed mmap replay reader for spilled trace files.
 *
 * The whole file is mapped read-only, but only ~one replay window of it
 * is ever resident: the opening validation + planning pass streams
 * through the mapping dropping each span behind itself
 * (madvise(MADV_DONTNEED)), and a replay cursor serving window w
 * prefetches window w+1 (madvise(MADV_WILLNEED), so the kernel reads it
 * back asynchronously while the simulator drains w) and drops window
 * w-1.  Peak RSS for a replay is therefore bounded by a couple of
 * windows regardless of trace size — the out-of-core property the
 * 100M+-record lifetime runs need.
 *
 * Opening validates everything before the first record is replayed:
 * header magic/version/endianness/checksum, file size against the
 * declared geometry, every chunk checksum, and the stream totals
 * (records, instructions, writes, distinct blocks) recomputed by the
 * planning pass against the header's claims.  A truncated, torn, or
 * bit-flipped file throws std::runtime_error; the spill cache reacts by
 * regenerating.
 */
#ifndef RMCC_TRACE_TRACE_READER_HPP
#define RMCC_TRACE_TRACE_READER_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace_file.hpp"
#include "trace/trace_plan.hpp"
#include "trace/trace_source.hpp"

namespace rmcc::trace
{

/** A finalized trace file opened for windowed replay. */
class TraceFileReader final : public TraceSource
{
  public:
    /**
     * Open, validate, and plan.
     *
     * @param path finalized trace file.
     * @param window_records replay window size (records); 0 means the
     *        file's chunk size.
     * @param expected_fingerprint when set, the header's workload
     *        fingerprint must match (cache-reuse safety).
     * @throws std::runtime_error on any validation failure.
     */
    explicit TraceFileReader(
        std::string path, std::uint64_t window_records = 0,
        std::optional<std::uint64_t> expected_fingerprint = std::nullopt);

    ~TraceFileReader() override;

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    std::size_t size() const override { return header_.record_count; }
    std::uint64_t totalInstructions() const override
    {
        return header_.total_insts;
    }
    std::uint64_t writes() const override { return header_.writes; }
    std::uint64_t dropped() const override { return header_.dropped; }
    std::uint64_t distinctBlocks() const override
    {
        return header_.distinct_blocks;
    }

    /**
     * Begin a windowed pass.  Cursors are independent; concurrent
     * cursors over one reader are safe (the mapping is immutable) but
     * each issues its own madvise stream, so pathological interleavings
     * only cost refaults, never correctness.
     */
    std::unique_ptr<TraceCursor> cursor() const override;

    const TracePlan *plan() const override { return &plan_; }

    /** The validated on-disk header. */
    const FileHeader &header() const { return header_; }

    /** Replay window size in records. */
    std::uint64_t windowRecords() const { return window_records_; }

    /** Number of replay windows. */
    std::uint64_t windowCount() const;

    const std::string &path() const { return path_; }

    /** Whether the file is delta-compressed (format v2). */
    bool compressed() const { return compressed_; }

  private:
    friend class FileCursor;
    friend class DeltaCursor;

    const Record *recordAt(std::uint64_t i) const;
    void validateAndPlan();
    void validateAndPlanDelta();
    void logOpened() const;
    /** madvise over the byte span of records [first, first+count). */
    void adviseRecords(std::uint64_t first, std::uint64_t count,
                       int advice) const;
    /** madvise over a raw byte span of the mapping. */
    void adviseBytes(std::uint64_t lo, std::uint64_t hi, int advice) const;

    std::string path_;
    FileHeader header_{};
    std::uint64_t window_records_ = 0;
    void *map_ = nullptr;
    std::size_t map_len_ = 0;
    TracePlan plan_;
    bool compressed_ = false;
    //!< v2 only: byte offset of each chunk, plus the end sentinel.
    std::vector<std::uint64_t> chunk_off_;
};

} // namespace rmcc::trace

#endif // RMCC_TRACE_TRACE_READER_HPP
