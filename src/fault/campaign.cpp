#include "fault/campaign.hpp"

#include <algorithm>

#include "dram/ddr4.hpp"
#include "mc/secure_mc.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace rmcc::fault
{

FaultCampaign::FaultCampaign(const FaultPlan &plan,
                             const OracleConfig &ocfg)
    : plan_(plan), ocfg_(ocfg)
{
}

void
FaultCampaign::bind(ctr::IntegrityTree &tree, core::RmccEngine *engine)
{
    engine_ = engine;
    const bool memo_live =
        engine_ != nullptr && engine_->enabled() && engine_->memoLevels() > 0;
    if (!memo_live)
        plan_.combos.erase(
            std::remove_if(plan_.combos.begin(), plan_.combos.end(),
                           [](const FaultCombo &c) {
                               return c.site == FaultSite::MemoEntry;
                           }),
            plan_.combos.end());
    oracle_ = std::make_unique<DetectionOracle>(ocfg_, tree);
    injector_ = std::make_unique<Injector>(*oracle_, plan_);
    if (memo_live)
        injector_->setMemoTable(&engine_->table(0));
}

bool
FaultCampaign::memoHitFor(addr::BlockId blk)
{
    if (engine_ == nullptr || !engine_->enabled() ||
        engine_->memoLevels() == 0)
        return false;
    return engine_->table(0).contains(oracle_->storedL0Value(blk));
}

void
FaultCampaign::afterRecord()
{
    ++records_seen_;
    if (done())
        return;
    const std::uint64_t gap = std::max<std::uint64_t>(1, plan_.gap_records);
    if (records_seen_ % gap != 0)
        return;
    if (injector_->injectOne())
        oracle_->classifyPending(
            memoHitFor(oracle_->pending().readback_block));
}

FaultStats
runFaultSweep(const FaultPlan &plan, const SweepConfig &cfg)
{
    ctr::IntegrityTree tree(cfg.scheme, cfg.data_blocks);
    util::Rng rng(cfg.seed);
    if (cfg.init_mean > 0)
        tree.randomInit(rng, cfg.init_mean);

    core::RmccConfig rc;
    rc.enabled = cfg.rmcc;
    core::RmccEngine engine(rc, tree);
    dram::Ddr4 dram;
    mc::McConfig mc_cfg;
    mc_cfg.counter_cache_bytes = cfg.counter_cache_bytes;
    mc::SecureMc mc(mc_cfg, tree, engine, dram);

    OracleConfig ocfg;
    ocfg.split_otp = cfg.split_otp;
    ocfg.mac_bits = cfg.mac_bits;
    ocfg.key_seed = cfg.seed ^ 0xfa177ULL;
    FaultCampaign campaign(plan, ocfg);
    campaign.bind(tree, &engine);
    mc.attachObserver(campaign.oracle());

    // Zipf-popular traffic over a hot working set: repeated writes climb
    // counters (driving SC-64 saturation, Morphable rebase, and RMCC
    // releveling mid-sweep), repeated reads keep memoized values in use.
    const std::uint64_t hot =
        std::max<std::uint64_t>(1,
                                std::min(cfg.hot_blocks, cfg.data_blocks));
    const util::ZipfSampler zipf(hot, 0.8);
    double now_ns = 0.0;
    // Masked-only injections (e.g. replay with no prior image early on)
    // still consume plan slots, so the record budget bounds the loop.
    std::uint64_t budget =
        plan.injections * std::max<std::uint64_t>(1, plan.gap_records) * 4 +
        4096;
    while (!campaign.done() && budget-- > 0) {
        const addr::BlockId blk = zipf(rng);
        const addr::Addr paddr = addr::blockBase(blk);
        const bool write = campaign.oracle()->writtenBlocks().empty() ||
                           rng.nextBool(cfg.write_fraction);
        if (write)
            now_ns = std::max(now_ns, mc.write(paddr, now_ns));
        else
            mc.read(paddr, now_ns);
        now_ns += 10.0;
        campaign.afterRecord();
    }
    mc.attachObserver(nullptr);
    FaultStats stats = campaign.stats();
    return stats;
}

} // namespace rmcc::fault
