/**
 * @file
 * Seeded fault injector: turns a declarative FaultPlan into concrete
 * perturbations of the oracle's stored images.
 *
 * Every choice — target block, tree level, entry, bit position, burst
 * length, rollback distance — comes from one util::Rng, so a campaign is
 * reproducible from its seed.  Targets are drawn from the oracle's
 * insertion-ordered written-block list, never from hash-map iteration
 * order, for the same reason.
 */
#ifndef RMCC_FAULT_INJECTOR_HPP
#define RMCC_FAULT_INJECTOR_HPP

#include <cstdint>

#include "core/memo_table.hpp"
#include "fault/oracle.hpp"
#include "fault/plan.hpp"
#include "util/rng.hpp"

namespace rmcc::fault
{

/**
 * Applies one planned fault at a time, cycling the plan's (site, kind)
 * combos round-robin.
 */
class Injector
{
  public:
    /** Oracle and plan are borrowed and must outlive the injector. */
    Injector(DetectionOracle &oracle, const FaultPlan &plan);

    /** Aim MemoEntry faults at this table (nullptr = skip that site). */
    void setMemoTable(const core::MemoTable *table) { memo_ = table; }

    /**
     * Inject the next planned fault.  Returns true when a fault was
     * armed in the oracle (classify it with classifyPending); false when
     * the fault could not perturb anything and was recorded immediately
     * as Masked with an explanatory note.
     */
    bool injectOne();

  private:
    /** Counter blocks on blk's path, bottom-up. */
    std::vector<addr::CounterBlockId> pathOf(addr::BlockId blk) const;
    /** The entry index of blk's path within the level-k path node. */
    unsigned onPathEntry(addr::BlockId blk,
                         const std::vector<addr::CounterBlockId> &path,
                         unsigned level) const;

    bool injectData(FaultRecord &rec);
    bool injectNode(FaultRecord &rec,
                    const std::vector<addr::CounterBlockId> &path);
    bool injectMemo(FaultRecord &rec);

    DetectionOracle &oracle_;
    const FaultPlan &plan_;
    const core::MemoTable *memo_ = nullptr;
    util::Rng rng_;
    std::uint64_t cursor_ = 0; //!< Round-robin position in plan combos.
};

} // namespace rmcc::fault

#endif // RMCC_FAULT_INJECTOR_HPP
