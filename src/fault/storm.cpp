#include "fault/storm.hpp"

#include <algorithm>
#include <cmath>

#include "core/rmcc_engine.hpp"
#include "dram/ddr4.hpp"
#include "fault/injector.hpp"
#include "fault/oracle.hpp"
#include "mc/secure_mc.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace rmcc::fault
{

namespace
{

/**
 * Geometric inter-arrival gap (ops until the next injection) for a
 * per-op arrival probability `rate` — the discrete Poisson process.
 */
std::uint64_t
nextArrivalGap(util::Rng &rng, double rate)
{
    if (rate <= 0.0)
        return ~0ULL; // never
    if (rate >= 1.0)
        return 1;
    const double u = rng.nextDouble();
    const double g = std::log1p(-u) / std::log1p(-rate);
    return 1 + static_cast<std::uint64_t>(std::max(0.0, g));
}

} // namespace

StormStats
runRecoveryStorm(const StormPlan &plan, const StormConfig &cfg,
                 obs::Registry *obs)
{
    ctr::IntegrityTree tree(cfg.scheme, cfg.data_blocks);
    util::Rng rng(cfg.seed);
    if (cfg.init_mean > 0)
        tree.randomInit(rng, cfg.init_mean);

    core::RmccConfig rc;
    rc.enabled = cfg.rmcc;
    core::RmccEngine engine(rc, tree);
    dram::Ddr4 dram;
    mc::McConfig mc_cfg;
    mc_cfg.counter_cache_bytes = cfg.counter_cache_bytes;
    mc_cfg.recovery = cfg.recovery;
    mc::SecureMc mc(mc_cfg, tree, engine, dram);

    OracleConfig ocfg;
    ocfg.split_otp = cfg.split_otp;
    ocfg.key_seed = cfg.seed ^ 0xfa177ULL;
    DetectionOracle oracle(ocfg, tree);

    const bool memo_live = engine.enabled() && engine.memoLevels() > 0;
    FaultPlan fplan;
    fplan.injections = ~0ULL; // the storm is bounded by ops, not a count
    fplan.seed = plan.seed ^ 0x1239ULL;
    fplan.combos = plan.combos;
    if (!memo_live)
        fplan.combos.erase(
            std::remove_if(fplan.combos.begin(), fplan.combos.end(),
                           [](const FaultCombo &c) {
                               return c.site == FaultSite::MemoEntry;
                           }),
            fplan.combos.end());
    Injector injector(oracle, fplan);
    if (memo_live)
        injector.setMemoTable(&engine.table(0));
    mc.attachObserver(&oracle);
    mc.attachObs(obs);

    const bool recovery_on = cfg.recovery.mode != mc::RecoveryMode::Off;
    const std::uint64_t hot = std::max<std::uint64_t>(
        1, std::min(cfg.hot_blocks, cfg.data_blocks));
    const util::ZipfSampler zipf(hot, 0.8);
    util::Rng traffic(plan.seed);

    StormStats out;
    double now_ns = 0.0;
    std::uint64_t until_inject = nextArrivalGap(traffic, plan.rate);
    for (std::uint64_t op = 0; op < plan.ops; ++op) {
        const addr::BlockId blk = zipf(traffic);
        const addr::Addr paddr = addr::blockBase(blk);
        const bool write = oracle.writtenBlocks().empty() ||
                           traffic.nextBool(plan.write_fraction);
        if (write) {
            now_ns = std::max(now_ns, mc.write(paddr, now_ns));
        } else {
            const mc::McReadResult r = mc.read(paddr, now_ns);
            ++out.reads;
            if (r.recovery.degraded)
                ++out.degraded_reads_served;
        }
        now_ns += 10.0;
        ++out.ops;

        if (--until_inject != 0)
            continue;
        until_inject = nextArrivalGap(traffic, plan.rate);
        if (!injector.injectOne())
            continue; // could not perturb: recorded Masked immediately

        // The transient/persistent draw precedes the readback so a
        // stage-1 re-fetch can observe the healed stored unit.
        if (traffic.nextBool(plan.transient_fraction))
            oracle.markPendingTransient();

        // Force the target back through the recovering controller; the
        // oracle latches the first integrity verdict for classification
        // (recovery heals the image before the fault is classified).
        const addr::BlockId target = oracle.pending().readback_block;
        const bool memo_now =
            memo_live && engine.table(0).contains(oracle.storedL0Value(target));
        const mc::McReadResult r =
            mc.read(addr::blockBase(target), now_ns);
        ++out.reads;
        ++out.forced_readbacks;
        if (r.recovery.degraded)
            ++out.degraded_reads_served;
        now_ns += 10.0;
        ++out.ops;

        if (oracle.hasPending()) {
            if (recovery_on)
                oracle.classifyPendingFromCheck();
            else
                oracle.classifyPending(memo_now);
        }
    }

    mc.attachObserver(nullptr);
    mc.attachObs(nullptr);
    out.faults = oracle.stats();
    out.recovery = mc.recovery().stats();
    return out;
}

} // namespace rmcc::fault
