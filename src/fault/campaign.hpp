/**
 * @file
 * FaultCampaign glues plan, oracle, and injector into the injection
 * loop a simulation drives: one afterRecord() call per trace record (or
 * per memory operation), injecting every gap_records and classifying
 * each fault on its forced readback immediately.
 *
 * runFaultSweep() is the standalone harness: it builds a full secure
 * stack (tree, RMCC engine, DRAM, SecureMc), attaches the oracle as the
 * controller's observer, and drives a seeded Zipf read/write stream
 * until the plan's injections are exhausted — the workhorse behind the
 * detection-matrix acceptance runs and the fault_sweep example.
 */
#ifndef RMCC_FAULT_CAMPAIGN_HPP
#define RMCC_FAULT_CAMPAIGN_HPP

#include <cstdint>
#include <memory>

#include "core/rmcc_engine.hpp"
#include "fault/injector.hpp"
#include "fault/oracle.hpp"
#include "fault/plan.hpp"

namespace rmcc::fault
{

/**
 * One injection campaign over a live secure-memory stack.
 *
 * Construction is cheap and tree-free so a campaign can be handed to a
 * simulator that builds its own component stack (runFunctional); bind()
 * attaches it to the live tree and engine before traffic flows.  After
 * the driven stack is torn down, stats() and the oracle's records stay
 * readable — only verification/injection entry points are off limits.
 */
class FaultCampaign
{
  public:
    FaultCampaign(const FaultPlan &plan, const OracleConfig &ocfg);

    /**
     * Create the oracle/injector over the live tree and aim MemoEntry
     * faults at the engine's L0 memo table.  With a null or disabled
     * engine those combos are dropped from the plan (they cannot
     * occur).  Call once, before driving traffic; the tree must outlive
     * all traffic.
     */
    void bind(ctr::IntegrityTree &tree, core::RmccEngine *engine);

    /** Bound yet? */
    bool bound() const { return oracle_ != nullptr; }

    /** The oracle, e.g. for SecureMc::attachObserver; null before bind. */
    DetectionOracle *oracle() { return oracle_.get(); }
    const DetectionOracle *oracle() const { return oracle_.get(); }

    /**
     * Advance the campaign by one observed record: every gap_records,
     * inject the next planned fault and classify it on a forced
     * readback of its target block.
     */
    void afterRecord();

    /** All planned injections performed? @pre bound() */
    bool done() const
    {
        return oracle_->stats().injected >= plan_.injections;
    }

    /** @pre bound() */
    const FaultStats &stats() const { return oracle_->stats(); }
    const FaultPlan &plan() const { return plan_; }

  private:
    /** Would a read of blk hit the memo table right now? */
    bool memoHitFor(addr::BlockId blk);

    FaultPlan plan_;
    OracleConfig ocfg_;
    std::unique_ptr<DetectionOracle> oracle_;
    std::unique_ptr<Injector> injector_;
    core::RmccEngine *engine_ = nullptr;
    std::uint64_t records_seen_ = 0;
};

/** Configuration of a standalone fault sweep. */
struct SweepConfig
{
    ctr::SchemeKind scheme = ctr::SchemeKind::SgxMonolithic;
    bool rmcc = true;      //!< RMCC engine enabled (memoization live).
    bool split_otp = true; //!< RMCC split OTP; false = baseline SGX OTP.
    unsigned mac_bits = 56; //!< Oracle compare width (< 56 weakens).
    std::uint64_t data_blocks = 1ULL << 14;
    //! Zipf working set; wide enough that its counter blocks overflow
    //! the (small) counter cache, so writebacks bump higher-level
    //! counters and re-store tree nodes mid-sweep.
    std::uint64_t hot_blocks = 1ULL << 12;
    std::uint64_t seed = 1;
    addr::CounterValue init_mean = 64; //!< randomInit mean; 0 = fresh.
    double write_fraction = 0.3;
    //! Deliberately small so counter blocks actually get evicted and
    //! written back: that is what bumps higher-level counters, creating
    //! the re-stored node images replay faults need.
    std::uint64_t counter_cache_bytes = 2048; //!< 32 lines (one set).
};

/**
 * Build a secure stack, drive traffic, inject the whole plan, and
 * return the classification counts.
 */
FaultStats runFaultSweep(const FaultPlan &plan, const SweepConfig &cfg);

} // namespace rmcc::fault

#endif // RMCC_FAULT_CAMPAIGN_HPP
