#include "fault/plan.hpp"

namespace rmcc::fault
{

const char *
siteName(FaultSite s)
{
    switch (s) {
    case FaultSite::DataCiphertext: return "data-ct";
    case FaultSite::DataMac: return "data-mac";
    case FaultSite::L0Counter: return "l0-ctr";
    case FaultSite::TreeNode: return "tree-node";
    case FaultSite::MemoEntry: return "memo-entry";
    }
    return "?";
}

const char *
kindName(FaultKind k)
{
    switch (k) {
    case FaultKind::BitFlip: return "bit-flip";
    case FaultKind::BurstFlip: return "burst";
    case FaultKind::CounterRollback: return "rollback";
    case FaultKind::StaleReplay: return "replay";
    }
    return "?";
}

const char *
outcomeName(FaultOutcome o)
{
    switch (o) {
    case FaultOutcome::Pending: return "pending";
    case FaultOutcome::Detected: return "detected";
    case FaultOutcome::Masked: return "masked";
    case FaultOutcome::Silent: return "SILENT";
    }
    return "?";
}

bool
comboValid(FaultSite site, FaultKind kind)
{
    switch (site) {
    case FaultSite::DataCiphertext:
        return kind != FaultKind::CounterRollback;
    case FaultSite::DataMac:
        return kind == FaultKind::BitFlip || kind == FaultKind::BurstFlip;
    case FaultSite::L0Counter:
    case FaultSite::TreeNode:
        return true;
    case FaultSite::MemoEntry:
        return kind == FaultKind::BitFlip;
    }
    return false;
}

std::vector<FaultCombo>
allCombos()
{
    std::vector<FaultCombo> combos;
    for (unsigned s = 0; s < kSiteCount; ++s)
        for (unsigned k = 0; k < kKindCount; ++k)
            if (comboValid(static_cast<FaultSite>(s),
                           static_cast<FaultKind>(k)))
                combos.push_back({static_cast<FaultSite>(s),
                                  static_cast<FaultKind>(k)});
    return combos;
}

void
FaultStats::add(const FaultRecord &rec)
{
    ++injected;
    if (rec.outcome == FaultOutcome::Pending)
        return; // callers classify before recording; guard anyway
    const auto s = static_cast<unsigned>(rec.combo.site);
    const auto k = static_cast<unsigned>(rec.combo.kind);
    const auto o = static_cast<unsigned>(rec.outcome) -
                   static_cast<unsigned>(FaultOutcome::Detected);
    ++counts[s][k][o];
}

std::uint64_t
FaultStats::total(FaultOutcome o) const
{
    const auto idx = static_cast<unsigned>(o) -
                     static_cast<unsigned>(FaultOutcome::Detected);
    std::uint64_t sum = 0;
    for (const auto &per_site : counts)
        for (const auto &per_kind : per_site)
            sum += per_kind[idx];
    return sum;
}

void
FaultStats::merge(const FaultStats &other)
{
    for (unsigned s = 0; s < kSiteCount; ++s)
        for (unsigned k = 0; k < kKindCount; ++k)
            for (unsigned o = 0; o < 3; ++o)
                counts[s][k][o] += other.counts[s][k][o];
    injected += other.injected;
    reads_verified += other.reads_verified;
    unexpected_failures += other.unexpected_failures;
}

} // namespace rmcc::fault
