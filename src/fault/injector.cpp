#include "fault/injector.hpp"

#include <algorithm>

namespace rmcc::fault
{

Injector::Injector(DetectionOracle &oracle, const FaultPlan &plan)
    : oracle_(oracle), plan_(plan), rng_(plan.seed)
{
}

std::vector<addr::CounterBlockId>
Injector::pathOf(addr::BlockId blk) const
{
    const ctr::IntegrityTree &tree = oracle_.tree();
    std::vector<addr::CounterBlockId> path;
    path.reserve(tree.levels());
    std::uint64_t entity = blk;
    for (unsigned k = 0; k < tree.levels(); ++k) {
        entity /= tree.level(k).coverage();
        path.push_back(entity);
    }
    return path;
}

unsigned
Injector::onPathEntry(addr::BlockId blk,
                      const std::vector<addr::CounterBlockId> &path,
                      unsigned level) const
{
    const ctr::IntegrityTree &tree = oracle_.tree();
    const std::uint64_t entity = level == 0 ? blk : path[level - 1];
    return static_cast<unsigned>(entity % tree.level(level).coverage());
}

bool
Injector::injectOne()
{
    if (plan_.combos.empty())
        return false;
    const FaultCombo combo =
        plan_.combos[cursor_++ % plan_.combos.size()];

    const auto &written = oracle_.writtenBlocks();
    FaultRecord rec;
    rec.combo = combo;
    if (written.empty()) {
        rec.outcome = FaultOutcome::Masked;
        rec.note = "no data block written yet";
        oracle_.recordImmediate(std::move(rec));
        return false;
    }
    rec.readback_block = written[rng_.nextBelow(written.size())];
    oracle_.materializePath(rec.readback_block);

    bool armed = false;
    switch (combo.site) {
    case FaultSite::DataCiphertext:
    case FaultSite::DataMac:
        armed = injectData(rec);
        break;
    case FaultSite::L0Counter:
    case FaultSite::TreeNode:
        armed = injectNode(rec, pathOf(rec.readback_block));
        break;
    case FaultSite::MemoEntry:
        armed = injectMemo(rec);
        break;
    }
    if (armed) {
        oracle_.armFault(rec);
        return true;
    }
    rec.outcome = FaultOutcome::Masked;
    if (rec.note.empty())
        rec.note = "perturbation had no effect";
    oracle_.recordImmediate(std::move(rec));
    return false;
}

bool
Injector::injectData(FaultRecord &rec)
{
    const addr::BlockId blk = rec.readback_block;
    rec.unit = blk;
    switch (rec.combo.kind) {
    case FaultKind::BitFlip: {
        const unsigned bits =
            rec.combo.site == FaultSite::DataCiphertext ? 512 : 56;
        const auto bit = static_cast<unsigned>(rng_.nextBelow(bits));
        rec.detail = bit;
        return rec.combo.site == FaultSite::DataCiphertext
                   ? oracle_.flipCiphertext(blk, bit, 1)
                   : oracle_.flipMac(blk, bit, 1);
    }
    case FaultKind::BurstFlip: {
        const unsigned bits =
            rec.combo.site == FaultSite::DataCiphertext ? 512 : 56;
        const auto len = static_cast<unsigned>(rng_.nextInRange(2, 8));
        const auto bit =
            static_cast<unsigned>(rng_.nextBelow(bits - len + 1));
        rec.detail = bit | (static_cast<std::uint64_t>(len) << 16);
        return rec.combo.site == FaultSite::DataCiphertext
                   ? oracle_.flipCiphertext(blk, bit, len)
                   : oracle_.flipMac(blk, bit, len);
    }
    case FaultKind::StaleReplay: {
        // Replays need a block that was genuinely re-stored (rewritten
        // or re-encrypted): sample for one with a distinct prior image.
        const auto &written = oracle_.writtenBlocks();
        addr::BlockId target = blk;
        for (unsigned attempt = 0;
             attempt < 64 && !oracle_.hasDistinctPrevData(target);
             ++attempt)
            target = written[rng_.nextBelow(written.size())];
        if (!oracle_.hasDistinctPrevData(target)) {
            rec.note = "no distinct previous image stored";
            return false;
        }
        rec.readback_block = target;
        rec.unit = target;
        return oracle_.replayData(target);
    }
    case FaultKind::CounterRollback:
        break; // not a data-site kind (comboValid excludes it)
    }
    return false;
}

bool
Injector::injectNode(FaultRecord &rec,
                     const std::vector<addr::CounterBlockId> &path)
{
    const ctr::IntegrityTree &tree = oracle_.tree();
    unsigned level = 0;
    if (rec.combo.site == FaultSite::TreeNode) {
        if (tree.levels() < 2) {
            rec.note = "integrity tree has a single in-memory level";
            return false;
        }
        level = 1 + static_cast<unsigned>(
                        rng_.nextBelow(tree.levels() - 1));
    }
    const addr::CounterBlockId cb = path[level];
    rec.level = level;
    rec.unit = cb;
    // Half the value perturbations land on the entry the readback path
    // actually decodes (exercising counter-as-OTP-input detection), half
    // on a random entry of the block (exercising whole-image MACing).
    const std::uint64_t entries = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(tree.level(level).coverage(),
                                   tree.level(level).entities() -
                                       cb * tree.level(level).coverage()));
    const unsigned entry =
        rng_.nextBool(0.5)
            ? onPathEntry(rec.readback_block, path, level)
            : static_cast<unsigned>(rng_.nextBelow(entries));

    switch (rec.combo.kind) {
    case FaultKind::BitFlip: {
        const auto bit = static_cast<unsigned>(rng_.nextBelow(56));
        rec.detail = bit | (static_cast<std::uint64_t>(entry) << 32);
        return oracle_.flipNodeValue(level, cb, entry, bit, 1);
    }
    case FaultKind::BurstFlip: {
        const auto len = static_cast<unsigned>(rng_.nextInRange(2, 8));
        const auto bit =
            static_cast<unsigned>(rng_.nextBelow(56 - len + 1));
        rec.detail = bit | (static_cast<std::uint64_t>(len) << 16) |
                     (static_cast<std::uint64_t>(entry) << 32);
        return oracle_.flipNodeValue(level, cb, entry, bit, len);
    }
    case FaultKind::CounterRollback: {
        const std::uint64_t delta = rng_.nextInRange(1, 4096);
        rec.detail = delta | (static_cast<std::uint64_t>(entry) << 32);
        if (!oracle_.rollbackNodeValue(level, cb, entry, delta)) {
            rec.note = "counter already at zero";
            return false;
        }
        return true;
    }
    case FaultKind::StaleReplay: {
        // Sample for a path node at this level that was genuinely
        // re-stored, then aim the readback at an entry the replay
        // staled (a read elsewhere in the block would honestly mask).
        const auto &written = oracle_.writtenBlocks();
        addr::BlockId target = rec.readback_block;
        addr::CounterBlockId rcb = cb;
        for (unsigned attempt = 0;
             attempt < 64 && !oracle_.hasDistinctPrevNode(level, rcb);
             ++attempt) {
            target = written[rng_.nextBelow(written.size())];
            oracle_.materializePath(target);
            rcb = pathOf(target)[level];
        }
        rec.unit = rcb;
        rec.readback_block = target;
        if (!oracle_.replayNode(level, rcb)) {
            rec.note = "no distinct previous image stored";
            return false;
        }
        if (const auto *stored = oracle_.storedNodeValues(level, rcb)) {
            const auto truth = tree.level(level).blockValues(rcb);
            const std::uint64_t n =
                std::min<std::uint64_t>(stored->size(), truth.size());
            const std::uint64_t off = n ? rng_.nextBelow(n) : 0;
            for (std::uint64_t i = 0; i < n; ++i) {
                const std::uint64_t slot = (off + i) % n;
                if ((*stored)[slot] == truth[slot])
                    continue;
                if (const auto b =
                        oracle_.coveredWrittenBlock(level, rcb, slot)) {
                    rec.readback_block = *b;
                    break;
                }
            }
        }
        return true;
    }
    }
    return false;
}

bool
Injector::injectMemo(FaultRecord &rec)
{
    if (memo_ == nullptr) {
        rec.note = "memoization disabled";
        return false;
    }
    // Find a written block whose stored L0 counter value is currently
    // memoized, so the readback actually consults the corrupted entry.
    const auto &written = oracle_.writtenBlocks();
    for (unsigned attempt = 0; attempt < 64; ++attempt) {
        const addr::BlockId blk =
            written[rng_.nextBelow(written.size())];
        const addr::CounterValue val = oracle_.storedL0Value(blk);
        if (!memo_->contains(val))
            continue;
        const auto bit = static_cast<unsigned>(rng_.nextBelow(56));
        const addr::CounterValue perturbed = val ^ (1ULL << bit);
        if (!oracle_.corruptMemoValue(val, perturbed))
            continue;
        rec.readback_block = blk;
        rec.unit = val;
        rec.detail = bit;
        return true;
    }
    rec.note = "no memoized counter value on any sampled path";
    return false;
}

} // namespace rmcc::fault
