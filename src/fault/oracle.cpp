#include "fault/oracle.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/registry.hpp"

namespace rmcc::fault
{

namespace
{

/** SplitMix64 finalizer: the plaintext-truth mixing function. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
rotl64(std::uint64_t x, unsigned r)
{
    return (x << r) | (x >> (64u - r));
}

/** XOR mask covering [bit, bit+len) clipped to `width` low bits. */
std::uint64_t
bitMask(unsigned bit, unsigned len, unsigned width)
{
    std::uint64_t mask = 0;
    for (unsigned i = bit; i < bit + len && i < width; ++i)
        mask |= 1ULL << i;
    return mask;
}

} // namespace

DetectionOracle::DetectionOracle(const OracleConfig &cfg,
                                 ctr::IntegrityTree &tree)
    : cfg_(cfg), tree_(tree), mac_(cfg.key_seed ^ 0x6d6163ULL)
{
    const crypto::Aes enc_key = crypto::Aes::fromSeed(cfg.key_seed);
    const crypto::Aes mac_key =
        crypto::Aes::fromSeed(cfg.key_seed + 0x9e3779b9ULL);
    if (cfg.split_otp)
        otp_ = std::make_unique<crypto::RmccOtpEngine>(enc_key, mac_key);
    else
        otp_ = std::make_unique<crypto::BaselineOtpEngine>(enc_key, mac_key);
    const unsigned bits = std::min(cfg.mac_bits, 56u);
    mac_compare_mask_ =
        bits >= 56 ? crypto::kMacMask : ((1ULL << bits) - 1);
}

crypto::DataBlock
DetectionOracle::plaintext(addr::BlockId blk, std::uint64_t version) const
{
    // Chained SplitMix64 stream keyed by (block, write generation): any
    // two generations of any block differ in every word w.h.p., so a
    // decrypt that reproduces the expected image proves the right
    // (address, counter, version) triple end to end.
    const std::uint64_t seed =
        mix64(mix64(blk ^ 0xb10cULL) ^ mix64(version ^ 0x5eedULL));
    crypto::DataBlock pt;
    for (unsigned w = 0; w < crypto::kWordsPerBlock; ++w)
        pt[w] = crypto::makeBlock(mix64(seed + 2 * w),
                                  mix64(seed + 2 * w + 1));
    return pt;
}

crypto::DataBlock
DetectionOracle::serializeValues(
    const std::vector<addr::CounterValue> &values)
{
    // Fold the logical counter values of a block into a 64 B image the
    // MAC engine can authenticate.  Real hardware MACs the compressed
    // physical encoding; this fold keeps the property that matters for
    // detection — any change to any value changes the image (the
    // multiply is bijective and the rotated index term separates lanes).
    std::array<std::uint64_t, 8> lanes{};
    for (std::size_t i = 0; i < values.size(); ++i)
        lanes[i % 8] ^= (values[i] ^ rotl64(i * 0x9e3779b97f4a7c15ULL, 13)) *
                        0x2545f4914f6cdd1dULL;
    crypto::DataBlock img;
    for (unsigned w = 0; w < crypto::kWordsPerBlock; ++w)
        img[w] = crypto::makeBlock(lanes[2 * w], lanes[2 * w + 1]);
    return img;
}

addr::CounterValue
DetectionOracle::parentTruth(unsigned level, addr::CounterBlockId cb) const
{
    // The counter of a level-k counter block lives at level k+1; above
    // the top in-memory level sits the on-chip root, which an attacker
    // cannot touch — a constant anchors the MAC chain there.
    if (level + 1 < tree_.levels())
        return tree_.level(level + 1).read(cb);
    return 0;
}

std::uint64_t
DetectionOracle::nodeMac(unsigned level, addr::CounterBlockId cb,
                         const std::vector<addr::CounterValue> &values,
                         addr::CounterValue parent) const
{
    const crypto::DataBlock img = serializeValues(values);
    return mac_.mac(img, otp_->macOtp(tree_.blockAddr(level, cb),
                                      parent & crypto::kCounterMask));
}

std::uint64_t
DetectionOracle::dataMac(addr::BlockId blk, const crypto::DataBlock &ct,
                         addr::CounterValue ctr) const
{
    return mac_.mac(ct, dataEngine(blk).macOtp(addr::blockBase(blk),
                                               ctr & crypto::kCounterMask));
}

const crypto::OtpEngine &
DetectionOracle::dataEngine(addr::BlockId blk) const
{
    if (cfg_.key_domain_shift == 0)
        return *otp_;
    const std::uint64_t domain = blk >> cfg_.key_domain_shift;
    auto it = domain_otp_.find(domain);
    if (it == domain_otp_.end()) {
        const crypto::DomainKeys keys =
            crypto::deriveDomainKeys(cfg_.key_seed, domain);
        std::unique_ptr<crypto::OtpEngine> eng;
        if (cfg_.split_otp)
            eng = std::make_unique<crypto::RmccOtpEngine>(keys.enc,
                                                          keys.mac);
        else
            eng = std::make_unique<crypto::BaselineOtpEngine>(keys.enc,
                                                              keys.mac);
        it = domain_otp_.emplace(domain, std::move(eng)).first;
    }
    return *it->second;
}

std::vector<addr::CounterBlockId>
DetectionOracle::pathOf(addr::BlockId blk) const
{
    std::vector<addr::CounterBlockId> path;
    path.reserve(tree_.levels());
    std::uint64_t entity = blk;
    for (unsigned k = 0; k < tree_.levels(); ++k) {
        entity /= tree_.level(k).coverage();
        path.push_back(entity);
    }
    return path;
}

bool
DetectionOracle::pinnedData(addr::BlockId blk) const
{
    if (!pending_)
        return false;
    const FaultSite s = pending_->combo.site;
    return (s == FaultSite::DataCiphertext || s == FaultSite::DataMac) &&
           pending_->unit == blk;
}

bool
DetectionOracle::pinnedNode(unsigned level, addr::CounterBlockId cb) const
{
    if (!pending_)
        return false;
    const FaultSite s = pending_->combo.site;
    if (s != FaultSite::L0Counter && s != FaultSite::TreeNode)
        return false;
    return pending_->level == level && pending_->unit == cb;
}

void
DetectionOracle::refreshData(addr::BlockId blk, bool force)
{
    const auto it = data_.find(blk);
    if (it == data_.end())
        return;
    if (!force && pinnedData(blk))
        return;
    DataEntry &e = it->second;
    const addr::CounterValue ctr =
        tree_.level(0).read(blk) & crypto::kCounterMask;
    const bool stale =
        e.cur.ctr != ctr || e.cur.version != e.truth_version;
    if (!stale && !force)
        return;
    // A genuine image change (writeback or re-encryption) retires the
    // old stored image to prev; a forced heal never does — the healed
    // cur may hold attacker garbage, not something memory ever held.
    if (stale && !force && e.cur.version != 0) {
        e.prev = e.cur;
        e.has_prev = true;
    }
    StoredData fresh;
    fresh.ctr = ctr;
    fresh.version = e.truth_version;
    const crypto::BlockCodec codec(dataEngine(blk));
    fresh.ct =
        codec.encode(plaintext(blk, e.truth_version), addr::blockBase(blk),
                     ctr);
    fresh.tag = dataMac(blk, fresh.ct, ctr);
    e.cur = fresh;
}

void
DetectionOracle::refreshNode(unsigned level, addr::CounterBlockId cb,
                             bool force)
{
    NodeEntry &e = nodes_[nodeKey(level, cb)];
    if (!force && pinnedNode(level, cb))
        return;
    std::vector<addr::CounterValue> values =
        tree_.level(level).blockValues(cb);
    const addr::CounterValue parent = parentTruth(level, cb);
    const bool stale = e.cur.values != values || e.cur.parent != parent;
    if (!stale && !force)
        return;
    if (stale && !force && !e.cur.values.empty()) {
        e.prev = e.cur;
        e.has_prev = true;
    }
    e.cur.tag = nodeMac(level, cb, values, parent);
    e.cur.values = std::move(values);
    e.cur.parent = parent;
}

void
DetectionOracle::materializePath(addr::BlockId blk)
{
    const auto path = pathOf(blk);
    for (unsigned k = 0; k < tree_.levels(); ++k)
        refreshNode(k, path[k]);
    refreshData(blk);
}

addr::CounterValue
DetectionOracle::storedL0Value(addr::BlockId blk)
{
    const addr::CounterBlockId cb = blk / tree_.level(0).coverage();
    refreshNode(0, cb);
    const NodeEntry &e = nodes_.at(nodeKey(0, cb));
    const std::uint64_t slot = blk % tree_.level(0).coverage();
    return slot < e.cur.values.size() ? e.cur.values[slot] : 0;
}

bool
DetectionOracle::hasDistinctPrevData(addr::BlockId blk) const
{
    const auto it = data_.find(blk);
    if (it == data_.end() || !it->second.has_prev)
        return false;
    const DataEntry &e = it->second;
    return e.prev.ctr != e.cur.ctr || e.prev.version != e.cur.version ||
           e.prev.ct != e.cur.ct;
}

const std::vector<addr::CounterValue> *
DetectionOracle::storedNodeValues(unsigned level,
                                  addr::CounterBlockId cb) const
{
    const auto it = nodes_.find(nodeKey(level, cb));
    return it == nodes_.end() ? nullptr : &it->second.cur.values;
}

std::optional<addr::BlockId>
DetectionOracle::coveredWrittenBlock(unsigned level,
                                     addr::CounterBlockId cb,
                                     std::uint64_t slot) const
{
    // The entity decoding slot s of node (level, cb) is cb*coverage+s: a
    // data block at level 0, a level-(level-1) counter block otherwise.
    // Walk the written list for a block whose path runs through it.
    const std::uint64_t entity = cb * tree_.level(level).coverage() + slot;
    for (const addr::BlockId blk : write_order_) {
        std::uint64_t e = blk;
        for (unsigned k = 0; k < level; ++k)
            e /= tree_.level(k).coverage();
        if (e == entity)
            return blk;
    }
    return std::nullopt;
}

bool
DetectionOracle::hasDistinctPrevNode(unsigned level,
                                     addr::CounterBlockId cb) const
{
    const auto it = nodes_.find(nodeKey(level, cb));
    if (it == nodes_.end() || !it->second.has_prev)
        return false;
    const NodeEntry &e = it->second;
    return e.prev.values != e.cur.values || e.prev.parent != e.cur.parent;
}

void
DetectionOracle::onDataWrite(addr::BlockId blk)
{
    DataEntry &e = data_[blk];
    if (e.truth_version == 0)
        write_order_.push_back(blk);
    ++e.truth_version;
    refreshData(blk);
}

void
DetectionOracle::onDataRead(addr::BlockId blk, bool memo_hit)
{
    if (data_.find(blk) == data_.end())
        return; // never written: nothing stored to verify
    ++stats_.reads_verified;
    const Verdict v = verifyRead(blk, memo_hit);
    if (v.pass && v.correct)
        return;
    // A failure is expected only while an armed fault sits on this
    // read's path; anything else is an oracle/model inconsistency.
    const addr::CounterValue l0 = storedL0Value(blk);
    if (!pendingOnPath(blk, memo_hit, l0))
        ++stats_.unexpected_failures;
}

bool
DetectionOracle::pendingOnPath(addr::BlockId blk, bool memo_hit,
                               addr::CounterValue l0_value) const
{
    if (memo_fault_ && memo_hit && l0_value == memo_fault_->first)
        return true;
    if (!pending_)
        return false;
    switch (pending_->combo.site) {
    case FaultSite::DataCiphertext:
    case FaultSite::DataMac:
        return pending_->unit == blk;
    case FaultSite::L0Counter:
    case FaultSite::TreeNode: {
        const auto path = pathOf(blk);
        return pending_->level < path.size() &&
               path[pending_->level] == pending_->unit;
    }
    case FaultSite::MemoEntry:
        return false; // handled by the memo_fault_ check above
    }
    return false;
}

Verdict
DetectionOracle::verifyRead(addr::BlockId blk, bool memo_hit)
{
    Verdict v;
    const auto dit = data_.find(blk);
    if (dit == data_.end())
        return v; // vacuously fine: nothing was ever stored
    const auto path = pathOf(blk);
    const unsigned levels = tree_.levels();
    for (unsigned k = 0; k < levels; ++k)
        refreshNode(k, path[k]);
    refreshData(blk);

    // Every MAC OTP the chain walk below needs is determined by the
    // refreshed stored state, so gather all (address, counter) pairs —
    // one per tree level plus the data block — and run them through a
    // single batched dispatch.  The independent AES streams of the whole
    // verify then pipeline through AES-NI instead of serializing level
    // by level.
    std::vector<std::uint64_t> otp_addrs(levels + 1);
    std::vector<std::uint64_t> otp_ctrs(levels + 1);
    for (unsigned ku = 0; ku < levels; ++ku) {
        addr::CounterValue parent_used;
        if (ku + 1 < levels) {
            const NodeEntry &pn = nodes_.at(nodeKey(ku + 1, path[ku + 1]));
            const std::uint64_t slot =
                path[ku] % tree_.level(ku + 1).coverage();
            parent_used =
                slot < pn.cur.values.size() ? pn.cur.values[slot] : 0;
        } else {
            parent_used = parentTruth(ku, path[ku]);
        }
        otp_addrs[ku] = tree_.blockAddr(ku, path[ku]);
        otp_ctrs[ku] = parent_used & crypto::kCounterMask;
    }

    // Counter the controller would use for the data block: the stored L0
    // value, or the (possibly corrupted) memoized value when the read
    // hits the memo table on it.
    const NodeEntry &n0 = nodes_.at(nodeKey(0, path[0]));
    const std::uint64_t slot0 = blk % tree_.level(0).coverage();
    addr::CounterValue ctr_used =
        slot0 < n0.cur.values.size() ? n0.cur.values[slot0] : 0;
    if (memo_fault_ && memo_hit && ctr_used == memo_fault_->first)
        ctr_used = memo_fault_->second;
    otp_addrs[levels] = addr::blockBase(blk);
    otp_ctrs[levels] = ctr_used & crypto::kCounterMask;

    std::vector<crypto::Block128> otps(levels + 1);
    if (cfg_.key_domain_shift == 0) {
        otp_->macOtps(otp_addrs.data(), otp_ctrs.data(), otps.data(),
                      levels + 1);
    } else {
        // Node MACs stay on the platform keys; the data slot's OTP comes
        // from the block's tenant key domain and cannot share the batch.
        otp_->macOtps(otp_addrs.data(), otp_ctrs.data(), otps.data(),
                      levels);
        otps[levels] = dataEngine(blk).macOtp(otp_addrs[levels],
                                              otp_ctrs[levels]);
    }

    // MAC chain, trust anchor downward: every node's tag is recomputed
    // over its *stored* values under the value its *stored* parent holds
    // (the on-chip root above the top level is incorruptible truth).  A
    // rollback or replay at level k either fails its own tag check or
    // surfaces one level down, where the child's tag no longer matches
    // under the perturbed parent value.
    for (int k = static_cast<int>(levels) - 1; k >= 0; --k) {
        const auto ku = static_cast<unsigned>(k);
        const NodeEntry &n = nodes_.at(nodeKey(ku, path[ku]));
        const crypto::DataBlock img = serializeValues(n.cur.values);
        if (macDiffers(mac_.mac(img, otps[ku]), n.cur.tag)) {
            v.pass = false;
            v.correct = false;
            v.fail_level = k;
            return v;
        }
    }

    const DataEntry &de = dit->second;
    if (macDiffers(mac_.mac(de.cur.ct, otps[levels]), de.cur.tag)) {
        v.pass = false;
        v.correct = false;
        v.fail_level = -1;
        return v;
    }
    const crypto::BlockCodec codec(dataEngine(blk));
    const crypto::DataBlock pt =
        codec.encode(de.cur.ct, addr::blockBase(blk),
                     ctr_used & crypto::kCounterMask);
    v.correct = pt == plaintext(blk, de.truth_version);
    return v;
}

bool
DetectionOracle::flipCiphertext(addr::BlockId blk, unsigned bit,
                                unsigned len)
{
    if (data_.find(blk) == data_.end())
        return false;
    refreshData(blk);
    DataEntry &e = data_.at(blk);
    bool flipped = false;
    for (unsigned i = bit; i < bit + len && i < 512; ++i) {
        const unsigned byte = i >> 3;
        e.cur.ct[byte >> 4][byte & 15] ^=
            static_cast<std::uint8_t>(1u << (i & 7));
        flipped = true;
    }
    return flipped;
}

bool
DetectionOracle::flipMac(addr::BlockId blk, unsigned bit, unsigned len)
{
    if (data_.find(blk) == data_.end())
        return false;
    refreshData(blk);
    const std::uint64_t mask = bitMask(bit, len, 56);
    if (mask == 0)
        return false;
    data_.at(blk).cur.tag ^= mask;
    return true;
}

bool
DetectionOracle::flipNodeValue(unsigned level, addr::CounterBlockId cb,
                               unsigned entry, unsigned bit, unsigned len)
{
    refreshNode(level, cb);
    NodeEntry &e = nodes_.at(nodeKey(level, cb));
    if (entry >= e.cur.values.size())
        return false;
    const std::uint64_t mask = bitMask(bit, len, 56);
    if (mask == 0)
        return false;
    e.cur.values[entry] ^= mask;
    return true;
}

bool
DetectionOracle::rollbackNodeValue(unsigned level, addr::CounterBlockId cb,
                                   unsigned entry, std::uint64_t delta)
{
    refreshNode(level, cb);
    NodeEntry &e = nodes_.at(nodeKey(level, cb));
    if (entry >= e.cur.values.size() || delta == 0)
        return false;
    const addr::CounterValue v = e.cur.values[entry];
    if (v == 0)
        return false;
    e.cur.values[entry] = v - std::min<std::uint64_t>(delta, v);
    return true;
}

bool
DetectionOracle::replayData(addr::BlockId blk)
{
    refreshData(blk);
    if (!hasDistinctPrevData(blk))
        return false;
    DataEntry &e = data_.at(blk);
    e.cur = e.prev;
    return true;
}

bool
DetectionOracle::replayNode(unsigned level, addr::CounterBlockId cb)
{
    refreshNode(level, cb);
    if (!hasDistinctPrevNode(level, cb))
        return false;
    NodeEntry &e = nodes_.at(nodeKey(level, cb));
    e.cur = e.prev;
    return true;
}

bool
DetectionOracle::corruptMemoValue(addr::CounterValue orig,
                                  addr::CounterValue perturbed)
{
    if (perturbed == orig)
        return false;
    memo_fault_ = std::make_pair(orig, perturbed);
    return true;
}

void
DetectionOracle::armFault(const FaultRecord &rec)
{
    pending_ = rec;
    first_check_.reset();
    pending_transient_ = false;
}

void
DetectionOracle::recordImmediate(FaultRecord rec)
{
    stats_.add(rec);
    records_.push_back(std::move(rec));
}

FaultOutcome
DetectionOracle::classifyPending(bool memo_hit)
{
    const Verdict v = verifyRead(pending_->readback_block, memo_hit);
    FaultOutcome out;
    if (!v.pass)
        out = FaultOutcome::Detected;
    else
        out = v.correct ? FaultOutcome::Masked : FaultOutcome::Silent;
    finalizePending(out, v);
    return out;
}

mc::McReadCheck
DetectionOracle::checkRead(addr::BlockId blk, bool memo_hit)
{
    const Verdict v = verifyRead(blk, memo_hit);
    if ((pending_ || memo_fault_) && !first_check_)
        first_check_ = v;
    mc::McReadCheck chk;
    chk.pass = v.pass;
    chk.fail_level = v.fail_level;
    return chk;
}

bool
DetectionOracle::onRefetch(addr::BlockId)
{
    if (!pending_transient_)
        return false;
    // Transient faults live in the transfer, not the stored cells: the
    // re-fetch reads the intact stored unit, so heal the perturbed image.
    // The record stays armed — classification uses the latched verdict.
    healPendingUnit();
    pending_transient_ = false;
    return true;
}

void
DetectionOracle::reconstructCounterPath(addr::BlockId blk)
{
    const auto path = pathOf(blk);
    for (unsigned k = 0; k < tree_.levels(); ++k)
        refreshNode(k, path[k], /*force=*/true);
}

void
DetectionOracle::healPendingUnit()
{
    if (pending_) {
        switch (pending_->combo.site) {
        case FaultSite::DataCiphertext:
        case FaultSite::DataMac:
            refreshData(pending_->unit, /*force=*/true);
            break;
        case FaultSite::L0Counter:
            refreshNode(0, pending_->unit, /*force=*/true);
            break;
        case FaultSite::TreeNode:
            refreshNode(pending_->level, pending_->unit, /*force=*/true);
            break;
        case FaultSite::MemoEntry:
            break;
        }
    }
    memo_fault_.reset();
}

FaultOutcome
DetectionOracle::classifyPendingFromCheck()
{
    const Verdict v =
        first_check_ ? *first_check_
                     : verifyRead(pending_->readback_block, false);
    FaultOutcome out;
    if (!v.pass)
        out = FaultOutcome::Detected;
    else
        out = v.correct ? FaultOutcome::Masked : FaultOutcome::Silent;
    finalizePending(out, v);
    return out;
}

void
DetectionOracle::finalizePending(FaultOutcome outcome, const Verdict &v)
{
    FaultRecord rec = *pending_;
    pending_.reset(); // un-pin so the heal below can refresh
    rec.outcome = outcome;
    if (outcome == FaultOutcome::Detected)
        rec.note = v.fail_level < 0
                       ? "data MAC mismatch"
                       : "node MAC mismatch at level " +
                             std::to_string(v.fail_level);
    else if (outcome == FaultOutcome::Silent)
        rec.note = "all checks passed, wrong plaintext delivered";

    switch (rec.combo.site) {
    case FaultSite::DataCiphertext:
    case FaultSite::DataMac:
        refreshData(rec.unit, /*force=*/true);
        break;
    case FaultSite::L0Counter:
        refreshNode(0, rec.unit, /*force=*/true);
        break;
    case FaultSite::TreeNode:
        refreshNode(rec.level, rec.unit, /*force=*/true);
        break;
    case FaultSite::MemoEntry:
        break;
    }
    memo_fault_.reset();
    first_check_.reset();
    pending_transient_ = false;
    if (outcome == FaultOutcome::Detected)
        obs::instantGlobal(obs::InstantKind::FaultDetected,
                           siteName(rec.combo.site));
    stats_.add(rec);
    records_.push_back(std::move(rec));
}

} // namespace rmcc::fault
