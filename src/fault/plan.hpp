/**
 * @file
 * Fault model vocabulary: where a fault lands (site), what it does
 * (kind), and how the detection layer classified it (outcome), plus the
 * declarative FaultPlan a campaign executes.
 *
 * The threat model is the SGX MEE's: everything off-chip — data
 * ciphertext, MACs, and stored counter blocks at every integrity-tree
 * level — may be corrupted, rolled back, or replayed by an attacker (or
 * by plain DRAM faults).  The memoization table is on-chip, but RMCC's
 * whole argument rests on memoized values being bit-equivalent to the
 * recomputed ones, so memo entries are a site too: a perturbed entry
 * must surface as a MAC mismatch, never as silently wrong plaintext.
 */
#ifndef RMCC_FAULT_PLAN_HPP
#define RMCC_FAULT_PLAN_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "address/types.hpp"

namespace rmcc::fault
{

/** Where the perturbation lands. */
enum class FaultSite : unsigned
{
    DataCiphertext, //!< Stored 64 B data ciphertext.
    DataMac,        //!< Stored 56-bit data MAC.
    L0Counter,      //!< A value in the level-0 counter block of the path.
    TreeNode,       //!< A value in a level>=1 counter block of the path.
    MemoEntry,      //!< A memoized counter value consulted on a hit.
};
constexpr unsigned kSiteCount = 5;

/** What the perturbation does. */
enum class FaultKind : unsigned
{
    BitFlip,         //!< Single-bit flip.
    BurstFlip,       //!< Contiguous multi-bit burst (2..8 bits).
    CounterRollback, //!< Stored counter value decreased.
    StaleReplay,     //!< Whole stored unit replaced by an older version.
};
constexpr unsigned kKindCount = 4;

/** How the detection layer classified an injected fault. */
enum class FaultOutcome : unsigned
{
    Pending,  //!< Injected, readback not performed yet.
    Detected, //!< A MAC/tree check along the readback path failed.
    Masked,   //!< Perturbation did not change any authenticated value.
    Silent,   //!< All checks passed but wrong plaintext was delivered.
};

const char *siteName(FaultSite s);
const char *kindName(FaultKind k);
const char *outcomeName(FaultOutcome o);

/** One (site, kind) cell of the fault matrix. */
struct FaultCombo
{
    FaultSite site = FaultSite::DataCiphertext;
    FaultKind kind = FaultKind::BitFlip;
};

/** Whether a kind is meaningful at a site (no rollback of ciphertext). */
bool comboValid(FaultSite site, FaultKind kind);

/** Every valid (site, kind) pair, in a fixed enumeration order. */
std::vector<FaultCombo> allCombos();

/** Declarative description of one injection campaign. */
struct FaultPlan
{
    std::uint64_t injections = 1000; //!< Faults to inject in total.
    std::uint64_t seed = 0x5eed;     //!< Drives every random choice.
    std::uint64_t gap_records = 8;   //!< Records between injections.
    std::vector<FaultCombo> combos = allCombos(); //!< Cycled round-robin.
};

/** One injected fault: what was perturbed and what came of it. */
struct FaultRecord
{
    FaultCombo combo;
    addr::BlockId readback_block = 0; //!< Data block whose read classifies.
    unsigned level = 0;               //!< Tree level for counter sites.
    std::uint64_t unit = 0;           //!< Perturbed block / node id.
    std::uint64_t detail = 0;         //!< Bit index, burst length, delta...
    FaultOutcome outcome = FaultOutcome::Pending;
    std::string note;                 //!< Why masked / where detected.
};

/** Aggregated campaign results, indexed by (site, kind, outcome). */
struct FaultStats
{
    //! counts[site][kind][outcome - Detected].
    std::array<std::array<std::array<std::uint64_t, 3>, kKindCount>,
               kSiteCount>
        counts{};
    std::uint64_t injected = 0;
    std::uint64_t reads_verified = 0; //!< Oracle verifications performed.
    //! Verification failures with no fault armed: an oracle/model bug.
    std::uint64_t unexpected_failures = 0;

    void add(const FaultRecord &rec);
    std::uint64_t total(FaultOutcome o) const;
    std::uint64_t detected() const { return total(FaultOutcome::Detected); }
    std::uint64_t masked() const { return total(FaultOutcome::Masked); }
    std::uint64_t silent() const { return total(FaultOutcome::Silent); }
    /** Fold another campaign's counts into this one. */
    void merge(const FaultStats &other);
};

} // namespace rmcc::fault

#endif // RMCC_FAULT_PLAN_HPP
