/**
 * @file
 * The detection oracle: a crypto-functional shadow of the off-chip
 * memory image, verified with the repository's real AES/CLMUL/Galois-MAC
 * substrate.
 *
 * The simulators model latency and traffic, not payloads, so nothing in
 * SecureMc ever actually encrypts a block — which means nothing ever
 * proves that the memoized OTP/MAC path rejects tampering the way the
 * baseline SGX construction does.  The oracle closes that gap.  It
 * observes the controller's data plane (McObserver) and maintains, for
 * every written data block and every integrity-tree node on a verified
 * path, the literal stored image an attacker could touch:
 *
 *  - data blocks: ciphertext under the block's current L0 counter
 *    (baseline or RMCC split OTP) plus the 56-bit Galois MAC;
 *  - counter nodes: the block's logical counter values serialized to a
 *    64 B image, MACed under the parent counter (the on-chip root is the
 *    trust anchor and cannot be perturbed).
 *
 * On every read the oracle re-derives the full verdict: each node MAC on
 * the path is recomputed under the value stored in its (possibly
 * tampered) parent, the data MAC under the stored (possibly tampered, or
 * memo-supplied) L0 value, and finally the plaintext is decrypted and
 * compared against what the writer actually wrote.  Every injected fault
 * is thereby classified as detected (some check failed), masked (no
 * authenticated value changed), or SILENT CORRUPTION (all checks passed,
 * wrong plaintext delivered) — the set that must be empty.
 *
 * Shadow images of unperturbed units are lazily refreshed from the
 * counter-tree truth before verification.  That models the legitimate
 * re-encryptions (writebacks, relevels, rebase-on-overflow) without
 * hooking every counter mutation; a unit pinned by a pending fault is
 * never refreshed, so the perturbed image is exactly what verification
 * sees.  The paper's construction truncates MACs to 56 bits; mac_bits
 * can shrink the compared width to prove the harness reports nonzero
 * silent corruptions for a deliberately weakened oracle.
 */
#ifndef RMCC_FAULT_ORACLE_HPP
#define RMCC_FAULT_ORACLE_HPP

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "counters/tree.hpp"
#include "crypto/mac.hpp"
#include "crypto/otp.hpp"
#include "fault/plan.hpp"
#include "mc/secure_mc.hpp"

namespace rmcc::fault
{

/** Oracle construction knobs. */
struct OracleConfig
{
    bool split_otp = true; //!< RMCC split OTP; false = SGX baseline OTP.
    unsigned mac_bits = 56; //!< Compared MAC width; < 56 weakens on purpose.
    std::uint64_t key_seed = 0xfa177; //!< Derives AES and MAC keys.
    /**
     * Tenant key domains: when nonzero, the data plane of block blk uses
     * AES schedules derived for domain (blk >> key_domain_shift) instead
     * of the platform keys (crypto::deriveDomainKeys).  Node MACs along
     * the counter tree always stay on the platform keys — the tree is a
     * shared platform structure.  0 = single key domain (bit-identical
     * to the pre-tenancy oracle).
     */
    unsigned key_domain_shift = 0;
};

/** Outcome of re-deriving the verdict of one read. */
struct Verdict
{
    bool pass = true;    //!< Every MAC check on the path verified.
    bool correct = true; //!< Delivered plaintext matches the written truth.
    int fail_level = -2; //!< -1 = data MAC, k >= 0 = node MAC at level k.
};

/**
 * Crypto-functional shadow memory + verification + fault bookkeeping.
 */
class DetectionOracle : public mc::McObserver
{
  public:
    /** The tree is borrowed and must outlive the oracle. */
    DetectionOracle(const OracleConfig &cfg, ctr::IntegrityTree &tree);

    // --- McObserver: the controller's data plane ------------------------
    void onDataWrite(addr::BlockId blk) override;
    void onDataRead(addr::BlockId blk, bool memo_hit) override;

    // --- McObserver: recovery hooks --------------------------------------

    /**
     * Re-derive the verdict for the recovering controller.  The FIRST
     * verdict derived while a fault is armed is latched for
     * classifyPendingFromCheck(): recovery heals the image before
     * classification, and classifying from a post-heal re-verify would
     * misreport a detected fault as masked.
     */
    mc::McReadCheck checkRead(addr::BlockId blk, bool memo_hit) override;

    /**
     * Stage-1 re-fetch: when the armed fault was marked transient (it
     * lived in the transfer, not the stored cells), the re-fetched image
     * is the intact stored unit — heal it and report success.
     */
    bool onRefetch(addr::BlockId blk) override;

    /**
     * Stage-2 reconstruction: the controller rebuilt every counter on
     * blk's path by walking the integrity tree from the on-chip root, so
     * stored node images revert to tree truth (data images are untouched
     * — there is no redundant copy of data to rebuild from).
     */
    void reconstructCounterPath(addr::BlockId blk) override;

    /**
     * Re-derive the full MAC/tree verdict for a read of blk and decrypt.
     * Refreshes unpinned shadow units first; a block never written is
     * vacuously fine.
     */
    Verdict verifyRead(addr::BlockId blk, bool memo_hit);

    // --- injection interface (used by the Injector) ---------------------
    // Each perturbs the stored image and returns false when the request
    // cannot change anything (the injector then records a Masked fault).

    /** Flip `len` ciphertext bits of blk starting at `bit` (of 512). */
    bool flipCiphertext(addr::BlockId blk, unsigned bit, unsigned len);
    /** Flip `len` stored-MAC bits of blk starting at `bit` (of 56). */
    bool flipMac(addr::BlockId blk, unsigned bit, unsigned len);
    /** Flip bits of stored counter value `entry` in node (level, cb). */
    bool flipNodeValue(unsigned level, addr::CounterBlockId cb,
                       unsigned entry, unsigned bit, unsigned len);
    /** Roll stored counter value `entry` in node (level, cb) back. */
    bool rollbackNodeValue(unsigned level, addr::CounterBlockId cb,
                           unsigned entry, std::uint64_t delta);
    /** Replace blk's stored image with its previous version. */
    bool replayData(addr::BlockId blk);
    /** Replace node (level, cb)'s stored image with its previous one. */
    bool replayNode(unsigned level, addr::CounterBlockId cb);
    /** Arm a memo-entry fault: value orig reads back as perturbed. */
    bool corruptMemoValue(addr::CounterValue orig,
                          addr::CounterValue perturbed);

    // --- fault lifecycle -------------------------------------------------

    /** Register rec as the pending fault (pins its unit). */
    void armFault(const FaultRecord &rec);
    /** Record a fault that could not be applied (outcome pre-set). */
    void recordImmediate(FaultRecord rec);
    /** Whether a fault is armed and awaiting classification. */
    bool hasPending() const { return pending_.has_value(); }
    const FaultRecord &pending() const { return *pending_; }
    /**
     * Force the pending fault's readback: verify its readback block,
     * classify (detected / masked / silent), heal the perturbed unit
     * back to truth, and append the finished record.
     */
    FaultOutcome classifyPending(bool memo_hit);

    /**
     * Mark the armed fault transient: a stage-1 re-fetch reads the intact
     * stored unit and heals it (storm campaigns draw the transient /
     * persistent split from their plan).
     */
    void markPendingTransient() { pending_transient_ = true; }

    /** Whether the armed fault is marked transient. */
    bool pendingTransient() const { return pending_transient_; }

    /**
     * Classify the pending fault from the verdict latched by the
     * recovering controller's first checkRead() — the image may have been
     * healed since.  Falls back to a fresh verifyRead() when no check ran
     * (recovery off).
     */
    FaultOutcome classifyPendingFromCheck();

    // --- injector/campaign queries ---------------------------------------

    /** Every data block ever written, in first-write order. */
    const std::vector<addr::BlockId> &writtenBlocks() const
    {
        return write_order_;
    }
    /** Stored L0 counter value a read of blk would decode (materializes). */
    addr::CounterValue storedL0Value(addr::BlockId blk);
    /** Materialize every node on blk's path (pre-injection snapshot). */
    void materializePath(addr::BlockId blk);
    /** Stored data/node images differ from their previous version? */
    bool hasDistinctPrevData(addr::BlockId blk) const;
    bool hasDistinctPrevNode(unsigned level, addr::CounterBlockId cb) const;
    /** Stored values of node (level, cb); nullptr if never materialized. */
    const std::vector<addr::CounterValue> *
    storedNodeValues(unsigned level, addr::CounterBlockId cb) const;
    /**
     * A written block whose readback decodes entry `slot` of node
     * (level, cb) — the block a replay of that node would mis-verify.
     */
    std::optional<addr::BlockId>
    coveredWrittenBlock(unsigned level, addr::CounterBlockId cb,
                        std::uint64_t slot) const;

    const ctr::IntegrityTree &tree() const { return tree_; }
    const OracleConfig &config() const { return cfg_; }
    const FaultStats &stats() const { return stats_; }
    FaultStats &stats() { return stats_; }
    /** Every classified fault, in injection order. */
    const std::vector<FaultRecord> &records() const { return records_; }

  private:
    /** A stored data-block image (what DRAM holds). */
    struct StoredData
    {
        crypto::DataBlock ct{};
        std::uint64_t tag = 0;        //!< Full 56-bit stored MAC.
        addr::CounterValue ctr = 0;   //!< Counter the image is under.
        std::uint64_t version = 0;    //!< Write generation encoded.
    };
    struct DataEntry
    {
        StoredData cur, prev;
        bool has_prev = false;
        std::uint64_t truth_version = 0; //!< Latest write generation.
    };
    /** A stored counter-node image. */
    struct StoredNode
    {
        std::vector<addr::CounterValue> values;
        std::uint64_t tag = 0;
        addr::CounterValue parent = 0; //!< Parent value the tag is under.
    };
    struct NodeEntry
    {
        StoredNode cur, prev;
        bool has_prev = false;
    };

    static std::uint64_t nodeKey(unsigned level, addr::CounterBlockId cb)
    {
        return (static_cast<std::uint64_t>(level) << 56) | cb;
    }

    /** Deterministic plaintext truth of (blk, version). */
    crypto::DataBlock plaintext(addr::BlockId blk,
                                std::uint64_t version) const;
    /** Serialize node counter values into a MAC-able 64 B image. */
    static crypto::DataBlock
    serializeValues(const std::vector<addr::CounterValue> &values);

    /** Parent counter truth of node (level, cb); on-chip root above top. */
    addr::CounterValue parentTruth(unsigned level,
                                   addr::CounterBlockId cb) const;
    /** MAC of a node image under a given parent value. */
    std::uint64_t nodeMac(unsigned level, addr::CounterBlockId cb,
                          const std::vector<addr::CounterValue> &values,
                          addr::CounterValue parent) const;
    /** MAC of a data image under a given counter value. */
    std::uint64_t dataMac(addr::BlockId blk, const crypto::DataBlock &ct,
                          addr::CounterValue ctr) const;

    /**
     * Data-plane OTP engine for blk's key domain.  The base engine when
     * key_domain_shift is 0; otherwise a lazily built per-domain engine
     * whose keys come from deriveDomainKeys(key_seed, domain).
     */
    const crypto::OtpEngine &dataEngine(addr::BlockId blk) const;

    /** Counter blocks on blk's path, bottom-up (size = tree levels). */
    std::vector<addr::CounterBlockId> pathOf(addr::BlockId blk) const;

    /** Refresh a unit from tree truth unless pinned by the pending fault. */
    void refreshData(addr::BlockId blk, bool force = false);
    void refreshNode(unsigned level, addr::CounterBlockId cb,
                     bool force = false);
    bool pinnedData(addr::BlockId blk) const;
    bool pinnedNode(unsigned level, addr::CounterBlockId cb) const;
    /** Does the pending fault sit on blk's readback path? */
    bool pendingOnPath(addr::BlockId blk, bool memo_hit,
                       addr::CounterValue l0_value) const;
    /** Restore the pending fault's unit to truth and retire the record. */
    void finalizePending(FaultOutcome outcome, const Verdict &v);

    /** Heal the pending fault's unit without retiring the record. */
    void healPendingUnit();

    /** Truncated-MAC inequality under the configured compare width. */
    bool macDiffers(std::uint64_t a, std::uint64_t b) const
    {
        return ((a ^ b) & mac_compare_mask_) != 0;
    }

    OracleConfig cfg_;
    ctr::IntegrityTree &tree_;
    std::unique_ptr<crypto::OtpEngine> otp_;
    //! Per-tenant data-plane engines, keyed by blk >> key_domain_shift;
    //! built on first touch (mutable: const MAC/verify paths populate it).
    mutable std::unordered_map<std::uint64_t,
                               std::unique_ptr<crypto::OtpEngine>>
        domain_otp_;
    crypto::MacEngine mac_;
    std::uint64_t mac_compare_mask_;

    std::unordered_map<addr::BlockId, DataEntry> data_;
    std::unordered_map<std::uint64_t, NodeEntry> nodes_;
    std::vector<addr::BlockId> write_order_;

    std::optional<FaultRecord> pending_;
    //! Armed memo-entry fault: reads memo-hitting on first see second.
    std::optional<std::pair<addr::CounterValue, addr::CounterValue>>
        memo_fault_;
    //! First verdict derived via checkRead() while a fault was armed.
    std::optional<Verdict> first_check_;
    bool pending_transient_ = false;

    FaultStats stats_;
    std::vector<FaultRecord> records_;
};

} // namespace rmcc::fault

#endif // RMCC_FAULT_ORACLE_HPP
