/**
 * @file
 * Fault-storm campaign: sustained Poisson-rate injection against a
 * recovering secure-memory stack.
 *
 * The one-shot sweep (campaign.hpp) answers "is every injected fault
 * detected?"; the storm answers the availability question the paper
 * never modeled: under a *sustained* fault arrival process, does the
 * self-healing datapath (mc/recovery.hpp) keep serving — zero silent
 * corruptions, every detected fault recovered or refused, bounded MTTR —
 * and does degraded mode engage when the storm rate exceeds the
 * threshold?
 *
 * Arrivals are Poisson in operation count: inter-injection gaps are
 * geometric with mean 1/rate, drawn from the seeded traffic Rng, so a
 * storm is reproducible from its seed like every other experiment.  Each
 * injected fault is independently marked transient (heals on a stage-1
 * re-fetch) or persistent with probability transient_fraction, then the
 * target block is read back through the recovering controller and the
 * oracle classifies the fault from the verdict latched by the
 * controller's first integrity check.
 */
#ifndef RMCC_FAULT_STORM_HPP
#define RMCC_FAULT_STORM_HPP

#include <cstdint>
#include <vector>

#include "counters/scheme.hpp"
#include "fault/plan.hpp"
#include "mc/recovery.hpp"

namespace rmcc::obs
{
class Registry;
}

namespace rmcc::fault
{

/** Arrival process and fault mix of one storm. */
struct StormPlan
{
    double rate = 0.02;          //!< Mean injections per traffic operation.
    std::uint64_t ops = 20000;   //!< Traffic operations to drive.
    //! Probability an injected fault is transient (heals on re-fetch).
    double transient_fraction = 0.5;
    double write_fraction = 0.3;
    std::uint64_t seed = 0x570f2;
    std::vector<FaultCombo> combos = allCombos();
};

/** System under storm (mirrors SweepConfig plus the recovery policy). */
struct StormConfig
{
    ctr::SchemeKind scheme = ctr::SchemeKind::Morphable;
    bool rmcc = true;
    bool split_otp = true;
    std::uint64_t data_blocks = 1ULL << 14;
    std::uint64_t hot_blocks = 1ULL << 12;
    std::uint64_t seed = 1;
    addr::CounterValue init_mean = 64;
    std::uint64_t counter_cache_bytes = 2048;
    mc::RecoveryConfig recovery; //!< Off by default; storms set retry/full.
};

/** Availability metrics of one storm run. */
struct StormStats
{
    FaultStats faults;          //!< Detection classification counts.
    mc::RecoveryStats recovery; //!< Datapath recovery counters.
    std::uint64_t ops = 0;      //!< Traffic operations driven.
    std::uint64_t reads = 0;    //!< Data reads among them (incl. forced).
    std::uint64_t forced_readbacks = 0; //!< Post-injection readbacks.
    std::uint64_t degraded_reads_served = 0; //!< Reads in degraded mode.
};

/**
 * Build a secure stack with the given recovery policy, drive a seeded
 * Zipf read/write stream with Poisson fault arrivals, and return the
 * detection + availability metrics.
 * @param obs optional per-run registry; when given, the controller feeds
 *   it recovery-latency histograms and quarantine/degraded instants.
 */
StormStats runRecoveryStorm(const StormPlan &plan, const StormConfig &cfg,
                            obs::Registry *obs = nullptr);

} // namespace rmcc::fault

#endif // RMCC_FAULT_STORM_HPP
