#include "workloads/canneal.hpp"

#include "util/rng.hpp"

namespace rmcc::wl
{

namespace
{

/** One netlist element: location plus connectivity (32 B). */
struct Element
{
    std::uint32_t x = 0, y = 0;
    std::uint32_t nets[6] = {0, 0, 0, 0, 0, 0};
};

} // namespace

void
runCanneal(const CannealConfig &cfg, trace::TracedHeap &heap,
           std::uint64_t seed)
{
    util::Rng rng(seed);
    trace::TracedArray<Element> elems(heap, cfg.elements, "cn-elements");
    for (std::uint64_t i = 0; i < cfg.elements; ++i) {
        Element &e = elems.raw(i);
        e.x = static_cast<std::uint32_t>(rng.nextBelow(4096));
        e.y = static_cast<std::uint32_t>(rng.nextBelow(4096));
        for (auto &n : e.nets)
            n = static_cast<std::uint32_t>(rng.nextBelow(cfg.elements));
    }

    while (!heap.done()) {
        // Pick two random elements, read them (and the elements on their
        // nets, to evaluate the wirelength delta), then swap locations
        // with annealing probability.  Every touch is a random 64 B
        // block: canneal's page- and counter-locality are terrible by
        // construction.
        const std::uint64_t a = rng.nextBelow(cfg.elements);
        const std::uint64_t b = rng.nextBelow(cfg.elements);
        Element ea = elems.get(a);
        Element eb = elems.get(b);
        long delta = 0;
        for (unsigned k = 0; k < cfg.fanin && !heap.done(); ++k) {
            const Element na = elems.get(ea.nets[k % 6]);
            const Element nb = elems.get(eb.nets[k % 6]);
            delta += static_cast<long>(na.x) - static_cast<long>(nb.x);
        }
        const bool accept = delta < 0 || rng.nextBool(0.35);
        if (accept && !heap.done()) {
            std::swap(ea.x, eb.x);
            std::swap(ea.y, eb.y);
            elems.set(a, ea);
            elems.set(b, eb);
        }
    }
}

} // namespace rmcc::wl
