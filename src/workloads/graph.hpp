/**
 * @file
 * Synthetic power-law graph in CSR form — the substitute for the paper's
 * 8_5-fb Facebook-like LDBC dataset (see DESIGN.md, substitutions).
 */
#ifndef RMCC_WORKLOADS_GRAPH_HPP
#define RMCC_WORKLOADS_GRAPH_HPP

#include <cstdint>
#include <vector>

#include "trace/traced_memory.hpp"

namespace rmcc::wl
{

/**
 * Compressed-sparse-row directed graph.
 */
struct Graph
{
    std::uint64_t num_vertices = 0;
    std::vector<std::uint64_t> offsets; //!< size V+1.
    std::vector<std::uint32_t> edges;   //!< size E, sorted per vertex.

    std::uint64_t numEdges() const { return edges.size(); }

    std::uint64_t degree(std::uint64_t v) const
    {
        return offsets[v + 1] - offsets[v];
    }

    /**
     * Build a power-law (RMAT-like degree skew) graph: edge sources are
     * Zipf-distributed so a few hub vertices have very high out-degree,
     * targets mix Zipf (popularity) and uniform (randomness) draws.
     */
    static Graph powerLaw(std::uint64_t vertices, std::uint64_t edges,
                          double zipf_exponent, std::uint64_t seed);

    /**
     * powerLaw() behind an on-disk memo: the CSR of a (vertices, edges,
     * exponent, seed) build is checksummed and cached in the directory
     * named by RMCC_GRAPH_CACHE_DIR (default /tmp), so the ~seconds-long
     * generation runs once per machine instead of once per bench
     * process.  A stale, corrupt, or unwritable cache silently falls
     * back to building; RMCC_GRAPH_CACHE=0 disables the cache entirely.
     * The returned graph is byte-identical to powerLaw()'s either way.
     */
    static Graph powerLawCached(std::uint64_t vertices,
                                std::uint64_t edges,
                                double zipf_exponent, std::uint64_t seed);
};

/**
 * The graph's CSR arrays copied into a traced heap so kernel traversals
 * are recorded, plus the untraced host copy for fast control decisions.
 */
class TracedGraph
{
  public:
    TracedGraph(const Graph &g, trace::TracedHeap &heap);

    /** Recorded load of offsets[v]. */
    std::uint64_t offset(std::uint64_t v) { return offsets_.get(v); }

    /** Recorded load of edges[e]. */
    std::uint32_t edge(std::uint64_t e) { return edges_.get(e); }

    std::uint64_t numVertices() const { return g_->num_vertices; }
    std::uint64_t numEdges() const { return g_->numEdges(); }

    /** Untraced degree (control flow, not data traffic). */
    std::uint64_t rawDegree(std::uint64_t v) const
    {
        return g_->degree(v);
    }

  private:
    const Graph *g_;
    trace::TracedArray<std::uint64_t> offsets_;
    trace::TracedArray<std::uint32_t> edges_;
};

} // namespace rmcc::wl

#endif // RMCC_WORKLOADS_GRAPH_HPP
