#include "workloads/graph.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "util/env.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"
#include "util/thread_pool.hpp"

#ifdef __unix__
#include <unistd.h>
#endif

namespace rmcc::wl
{

namespace
{

/** GCD for the permutation-multiplier selection. */
std::uint64_t
gcdU64(std::uint64_t a, std::uint64_t b)
{
    while (b) {
        a %= b;
        std::swap(a, b);
    }
    return a;
}

using EdgePair = std::pair<std::uint32_t, std::uint32_t>;

/**
 * Sort the edge list, fanning chunk sorts and pairwise merges across
 * RMCC_JOBS threads when that pays.  The sorted sequence of a multiset
 * is unique, so the result is bit-identical to a plain std::sort no
 * matter the thread count.
 */
void
sortEdgePairs(std::vector<EdgePair> &pairs)
{
    const unsigned jobs = util::ThreadPool::envJobs();
    if (jobs <= 1 || pairs.size() < (1u << 16)) {
        std::sort(pairs.begin(), pairs.end());
        return;
    }
    util::ThreadPool pool(jobs);
    const std::size_t n = pairs.size();
    const std::size_t n_runs = std::min<std::size_t>(jobs, 16);
    std::vector<std::size_t> bounds(n_runs + 1);
    for (std::size_t i = 0; i <= n_runs; ++i)
        bounds[i] = n * i / n_runs;
    util::parallelFor(pool, n_runs, [&](std::size_t i) {
        std::sort(pairs.begin() + static_cast<std::ptrdiff_t>(bounds[i]),
                  pairs.begin() +
                      static_cast<std::ptrdiff_t>(bounds[i + 1]));
    });

    // Merge adjacent runs pairwise, ping-ponging between two buffers.
    std::vector<EdgePair> scratch(n);
    std::vector<EdgePair> *src = &pairs, *dst = &scratch;
    while (bounds.size() > 2) {
        const std::size_t runs = bounds.size() - 1;
        std::vector<std::size_t> next_bounds = {0};
        for (std::size_t j = 0; j + 2 <= runs; j += 2)
            next_bounds.push_back(bounds[j + 2]);
        if (runs % 2)
            next_bounds.push_back(bounds[runs]);
        util::parallelFor(pool, runs / 2 + runs % 2, [&](std::size_t j) {
            const std::size_t lo = bounds[2 * j];
            if (2 * j + 2 <= runs) {
                const std::size_t mid = bounds[2 * j + 1];
                const std::size_t hi = bounds[2 * j + 2];
                std::merge(src->begin() + static_cast<std::ptrdiff_t>(lo),
                           src->begin() + static_cast<std::ptrdiff_t>(mid),
                           src->begin() + static_cast<std::ptrdiff_t>(mid),
                           src->begin() + static_cast<std::ptrdiff_t>(hi),
                           dst->begin() + static_cast<std::ptrdiff_t>(lo));
            } else {
                // Odd run out: carry it into the destination buffer.
                std::copy(src->begin() + static_cast<std::ptrdiff_t>(lo),
                          src->begin() +
                              static_cast<std::ptrdiff_t>(bounds[runs]),
                          dst->begin() + static_cast<std::ptrdiff_t>(lo));
            }
        });
        std::swap(src, dst);
        bounds = std::move(next_bounds);
    }
    if (src != &pairs)
        pairs.swap(*src);
}

// "RMCCGRPH" — identifies (and versions, below) the graph cache files.
constexpr std::uint64_t kCacheMagic = 0x524d434347525048ULL;
constexpr std::uint64_t kCacheVersion = 1;

/**
 * Fixed-size cache-file header; every field is uint64_t so the struct
 * has no padding and can be read/written as raw bytes.
 */
struct CacheHeader
{
    std::uint64_t magic;
    std::uint64_t version;
    std::uint64_t vertices;
    std::uint64_t edges_requested;
    std::uint64_t zipf_bits; //!< bit pattern of the double exponent.
    std::uint64_t seed;
    std::uint64_t num_edges; //!< actual edges.size() in the payload.
    std::uint64_t checksum;  //!< FNV-1a over offsets then edges bytes.
};
static_assert(sizeof(CacheHeader) == 8 * sizeof(std::uint64_t));

std::uint64_t
fnv1a(const void *data, std::size_t n,
      std::uint64_t h = 0xcbf29ce484222325ULL)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
graphChecksum(const Graph &g)
{
    const std::uint64_t h =
        fnv1a(g.offsets.data(),
              g.offsets.size() * sizeof(std::uint64_t));
    return fnv1a(g.edges.data(), g.edges.size() * sizeof(std::uint32_t),
                 h);
}

bool
readExact(std::FILE *f, void *dst, std::size_t n)
{
    return std::fread(dst, 1, n, f) == n;
}

/**
 * Load a cached CSR, validating every header field, the payload size,
 * and the checksum.  Any mismatch (stale format, different parameters,
 * truncated or corrupt file) returns false so the caller rebuilds.
 */
bool
loadGraphCache(const std::string &path, const CacheHeader &want,
               Graph &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    CacheHeader h{};
    bool ok = readExact(f, &h, sizeof h) && h.magic == want.magic &&
              h.version == want.version &&
              h.vertices == want.vertices &&
              h.edges_requested == want.edges_requested &&
              h.zipf_bits == want.zipf_bits && h.seed == want.seed &&
              h.num_edges == want.edges_requested;
    if (ok) {
        out.num_vertices = h.vertices;
        out.offsets.resize(h.vertices + 1);
        out.edges.resize(h.num_edges);
        ok = readExact(f, out.offsets.data(),
                       out.offsets.size() * sizeof(std::uint64_t)) &&
             readExact(f, out.edges.data(),
                       out.edges.size() * sizeof(std::uint32_t)) &&
             std::fgetc(f) == EOF && graphChecksum(out) == h.checksum;
    }
    std::fclose(f);
    if (!ok)
        out = Graph{};
    return ok;
}

/**
 * Write the cache atomically: build a .tmp sibling, then rename() it
 * into place so concurrent readers only ever see complete files.  All
 * failures are silent — the cache is an optimization, not a contract.
 */
void
saveGraphCache(const std::string &path, const CacheHeader &h,
               const Graph &g)
{
#ifdef __unix__
    const unsigned long uniq = static_cast<unsigned long>(::getpid());
#else
    const unsigned long uniq = 0;
#endif
    const std::string tmp = path + ".tmp." + std::to_string(uniq);
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return;
    bool ok =
        std::fwrite(&h, 1, sizeof h, f) == sizeof h &&
        std::fwrite(g.offsets.data(), sizeof(std::uint64_t),
                    g.offsets.size(), f) == g.offsets.size() &&
        std::fwrite(g.edges.data(), sizeof(std::uint32_t),
                    g.edges.size(), f) == g.edges.size();
    ok = (std::fclose(f) == 0) && ok;
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0)
        std::remove(tmp.c_str());
}

} // namespace

Graph
Graph::powerLawCached(std::uint64_t vertices, std::uint64_t edges,
                      double zipf_exponent, std::uint64_t seed)
{
    const auto toggle = util::envString("RMCC_GRAPH_CACHE");
    if (toggle && *toggle == "0")
        return powerLaw(vertices, edges, zipf_exponent, seed);

    std::uint64_t zipf_bits = 0;
    static_assert(sizeof zipf_bits == sizeof zipf_exponent);
    std::memcpy(&zipf_bits, &zipf_exponent, sizeof zipf_bits);

    CacheHeader want{kCacheMagic, kCacheVersion, vertices, edges,
                     zipf_bits,   seed,          edges,    0};

    const auto dir = util::envString("RMCC_GRAPH_CACHE_DIR");
    std::string path = dir ? *dir : "/tmp";
    if (dir) {
        std::error_code ec;
        if (!std::filesystem::is_directory(path, ec)) {
            // The cache is an optimization, so a bad directory must not
            // abort the run — but silently building uncached every time
            // hides a misconfiguration, so say why.
            util::warn("RMCC_GRAPH_CACHE_DIR='%s' is not a directory; "
                       "graph cache disabled for this run",
                       path.c_str());
            return powerLaw(vertices, edges, zipf_exponent, seed);
        }
    }
    char name[128];
    std::snprintf(name, sizeof name,
                  "/rmcc_graph_v%llu_%llx_%llx_%llx_%llx.bin",
                  static_cast<unsigned long long>(kCacheVersion),
                  static_cast<unsigned long long>(vertices),
                  static_cast<unsigned long long>(edges),
                  static_cast<unsigned long long>(zipf_bits),
                  static_cast<unsigned long long>(seed));
    path += name;

    Graph g;
    if (loadGraphCache(path, want, g))
        return g;

    g = powerLaw(vertices, edges, zipf_exponent, seed);
    want.num_edges = g.numEdges();
    want.checksum = graphChecksum(g);
    saveGraphCache(path, want, g);
    return g;
}

Graph
Graph::powerLaw(std::uint64_t vertices, std::uint64_t num_edges,
                double zipf_exponent, std::uint64_t seed)
{
    util::Rng rng(seed);
    util::ZipfSampler zipf(vertices, zipf_exponent);

    // Scatter popularity ranks over the id space with an affine bijection:
    // real graphs' hubs have arbitrary ids, not a contiguous prefix (a
    // contiguous hot prefix would be unrealistically cache-friendly).
    std::uint64_t mult = 2654435761ULL % vertices;
    while (gcdU64(mult, vertices) != 1)
        ++mult;
    const auto perm = [mult, vertices](std::uint64_t rank) {
        return static_cast<std::uint32_t>(
            (rank * mult + 12345) % vertices);
    };

    // Cap per-source degree so no single hub's adjacency dominates a
    // simulation window (LDBC-scale degree ceilings relative to |V|).
    const std::uint64_t cap =
        std::max<std::uint64_t>(64, 64 * num_edges / vertices);
    std::vector<std::uint32_t> degree(vertices, 0);

    // Draw (src, dst) pairs: Zipf sources give hub vertices; half the
    // targets are Zipf (popular destinations), half uniform.  This loop
    // is inherently serial — the degree-cap fallback draws extra RNG
    // values conditionally, so every edge depends on its predecessors.
    std::vector<EdgePair> pairs;
    pairs.reserve(num_edges);
    for (std::uint64_t e = 0; e < num_edges; ++e) {
        std::uint64_t src_rank = zipf(rng);
        if (degree[src_rank] >= cap)
            src_rank = rng.nextBelow(vertices);
        ++degree[src_rank];
        const std::uint64_t dst_rank =
            rng.nextBool(0.5) ? zipf(rng) : rng.nextBelow(vertices);
        pairs.emplace_back(perm(src_rank), perm(dst_rank));
    }
    sortEdgePairs(pairs);

    Graph g;
    g.num_vertices = vertices;
    g.offsets.assign(vertices + 1, 0);
    for (const auto &[src, dst] : pairs)
        ++g.offsets[src + 1];
    for (std::uint64_t v = 0; v < vertices; ++v)
        g.offsets[v + 1] += g.offsets[v];
    g.edges.resize(pairs.size());
    for (std::uint64_t e = 0; e < pairs.size(); ++e)
        g.edges[e] = pairs[e].second;
    // Per-vertex adjacency is already sorted by the pair sort; that makes
    // triangle counting's sorted-intersection realistic.
    return g;
}

TracedGraph::TracedGraph(const Graph &g, trace::TracedHeap &heap)
    : g_(&g),
      offsets_(heap, g.num_vertices + 1, "csr-offsets"),
      edges_(heap, g.numEdges(), "csr-edges")
{
    for (std::uint64_t v = 0; v <= g.num_vertices; ++v)
        offsets_.raw(v) = g.offsets[v];
    for (std::uint64_t e = 0; e < g.numEdges(); ++e)
        edges_.raw(e) = g.edges[e];
}

} // namespace rmcc::wl
