#include "workloads/graph.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace rmcc::wl
{

namespace
{

/** GCD for the permutation-multiplier selection. */
std::uint64_t
gcdU64(std::uint64_t a, std::uint64_t b)
{
    while (b) {
        a %= b;
        std::swap(a, b);
    }
    return a;
}

} // namespace

Graph
Graph::powerLaw(std::uint64_t vertices, std::uint64_t num_edges,
                double zipf_exponent, std::uint64_t seed)
{
    util::Rng rng(seed);
    util::ZipfSampler zipf(vertices, zipf_exponent);

    // Scatter popularity ranks over the id space with an affine bijection:
    // real graphs' hubs have arbitrary ids, not a contiguous prefix (a
    // contiguous hot prefix would be unrealistically cache-friendly).
    std::uint64_t mult = 2654435761ULL % vertices;
    while (gcdU64(mult, vertices) != 1)
        ++mult;
    const auto perm = [mult, vertices](std::uint64_t rank) {
        return static_cast<std::uint32_t>(
            (rank * mult + 12345) % vertices);
    };

    // Cap per-source degree so no single hub's adjacency dominates a
    // simulation window (LDBC-scale degree ceilings relative to |V|).
    const std::uint64_t cap =
        std::max<std::uint64_t>(64, 64 * num_edges / vertices);
    std::vector<std::uint32_t> degree(vertices, 0);

    // Draw (src, dst) pairs: Zipf sources give hub vertices; half the
    // targets are Zipf (popular destinations), half uniform.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    pairs.reserve(num_edges);
    for (std::uint64_t e = 0; e < num_edges; ++e) {
        std::uint64_t src_rank = zipf(rng);
        if (degree[src_rank] >= cap)
            src_rank = rng.nextBelow(vertices);
        ++degree[src_rank];
        const std::uint64_t dst_rank =
            rng.nextBool(0.5) ? zipf(rng) : rng.nextBelow(vertices);
        pairs.emplace_back(perm(src_rank), perm(dst_rank));
    }
    std::sort(pairs.begin(), pairs.end());

    Graph g;
    g.num_vertices = vertices;
    g.offsets.assign(vertices + 1, 0);
    g.edges.reserve(pairs.size());
    for (const auto &[src, dst] : pairs)
        ++g.offsets[src + 1];
    for (std::uint64_t v = 0; v < vertices; ++v)
        g.offsets[v + 1] += g.offsets[v];
    for (const auto &[src, dst] : pairs)
        g.edges.push_back(dst);
    // Per-vertex adjacency is already sorted by the pair sort; that makes
    // triangle counting's sorted-intersection realistic.
    return g;
}

TracedGraph::TracedGraph(const Graph &g, trace::TracedHeap &heap)
    : g_(&g),
      offsets_(heap, g.num_vertices + 1, "csr-offsets"),
      edges_(heap, g.numEdges(), "csr-edges")
{
    for (std::uint64_t v = 0; v <= g.num_vertices; ++v)
        offsets_.raw(v) = g.offsets[v];
    for (std::uint64_t e = 0; e < g.numEdges(); ++e)
        edges_.raw(e) = g.edges[e];
}

} // namespace rmcc::wl
