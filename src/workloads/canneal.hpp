/**
 * @file
 * canneal (PARSEC) model: simulated-annealing placement that swaps random
 * netlist elements — the most irregular workload in the paper's suite
 * (highest counter-cache miss rate in Fig 3).
 */
#ifndef RMCC_WORKLOADS_CANNEAL_HPP
#define RMCC_WORKLOADS_CANNEAL_HPP

#include "trace/traced_memory.hpp"

namespace rmcc::wl
{

/** Tuning for the canneal model. */
struct CannealConfig
{
    std::uint64_t elements = 3 * 512 * 1024;  //!< Netlist elements (~48 MB).
    unsigned fanin = 4;                       //!< Nets examined per swap.
};

/** Run the annealing loop until the trace budget is exhausted. */
void runCanneal(const CannealConfig &cfg, trace::TracedHeap &heap,
                std::uint64_t seed);

} // namespace rmcc::wl

#endif // RMCC_WORKLOADS_CANNEAL_HPP
