#include "workloads/graphbig.hpp"

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace rmcc::wl
{

namespace
{

/** Vertices processed between trace-budget checks. */
constexpr std::uint64_t kCheckStride = 256;

} // namespace

void
runPageRank(const Graph &g, trace::TracedHeap &heap, std::uint64_t seed)
{
    (void)seed;
    TracedGraph tg(g, heap);
    const std::uint64_t v_count = g.num_vertices;
    trace::TracedArray<double> rank(heap, v_count, "pr-rank");
    trace::TracedArray<double> next(heap, v_count, "pr-next");
    for (std::uint64_t v = 0; v < v_count; ++v)
        rank.raw(v) = 1.0 / static_cast<double>(v_count);

    while (!heap.done()) {
        for (std::uint64_t u = 0; u < v_count && !heap.done(); ++u) {
            const std::uint64_t begin = tg.offset(u);
            const std::uint64_t end = tg.offset(u + 1);
            const double share =
                rank.get(u) /
                std::max<std::uint64_t>(end - begin, 1);
            // Push this vertex's rank share to each out-neighbour: the
            // scattered next[dst] updates are PageRank's signature
            // irregular traffic.
            for (std::uint64_t e = begin; e < end && !heap.done(); ++e) {
                const std::uint32_t dst = tg.edge(e);
                next.set(dst, next.get(dst) + share);
            }
        }
        for (std::uint64_t v = 0; v < v_count && !heap.done();
             v += kCheckStride) {
            rank.set(v, 0.15 / static_cast<double>(v_count) +
                            0.85 * next.get(v));
            next.set(v, 0.0);
        }
    }
}

void
runGraphColoring(const Graph &g, trace::TracedHeap &heap,
                 std::uint64_t seed)
{
    (void)seed;
    TracedGraph tg(g, heap);
    const std::uint64_t v_count = g.num_vertices;
    trace::TracedArray<std::uint64_t> color(heap, v_count, "gc-color");
    constexpr std::uint64_t kUncolored = ~0ULL;
    for (std::uint64_t v = 0; v < v_count; ++v)
        color.raw(v) = kUncolored;

    std::vector<bool> used(256);
    while (!heap.done()) {
        for (std::uint64_t u = 0; u < v_count && !heap.done(); ++u) {
            std::fill(used.begin(), used.end(), false);
            const std::uint64_t begin = tg.offset(u);
            const std::uint64_t end = tg.offset(u + 1);
            for (std::uint64_t e = begin; e < end && !heap.done(); ++e) {
                const std::uint64_t c = color.get(tg.edge(e));
                if (c < used.size())
                    used[c] = true;
            }
            std::uint64_t c = 0;
            while (c < used.size() && used[c])
                ++c;
            color.set(u, c);
        }
        // Re-run from a shuffled seed if the trace budget is not met yet.
        for (std::uint64_t v = 0; v < v_count; ++v)
            color.raw(v) = kUncolored;
    }
}

void
runConnectedComp(const Graph &g, trace::TracedHeap &heap,
                 std::uint64_t seed)
{
    (void)seed;
    TracedGraph tg(g, heap);
    const std::uint64_t v_count = g.num_vertices;
    trace::TracedArray<std::uint64_t> label(heap, v_count, "cc-label");
    for (std::uint64_t v = 0; v < v_count; ++v)
        label.raw(v) = v;

    bool changed = true;
    while (!heap.done()) {
        changed = false;
        for (std::uint64_t u = 0; u < v_count && !heap.done(); ++u) {
            std::uint64_t best = label.get(u);
            const std::uint64_t begin = tg.offset(u);
            const std::uint64_t end = tg.offset(u + 1);
            for (std::uint64_t e = begin; e < end && !heap.done(); ++e)
                best = std::min(best, label.get(tg.edge(e)));
            if (best < label.get(u)) {
                label.set(u, best);
                changed = true;
            }
        }
        if (!changed) {
            // Converged before the budget: reset labels and propagate
            // again (the steady-state access pattern repeats).
            for (std::uint64_t v = 0; v < v_count; ++v)
                label.raw(v) = v;
        }
    }
}

void
runDegreeCentr(const Graph &g, trace::TracedHeap &heap, std::uint64_t seed)
{
    (void)seed;
    TracedGraph tg(g, heap);
    const std::uint64_t v_count = g.num_vertices;
    trace::TracedArray<std::uint64_t> in_deg(heap, v_count, "dc-indeg");
    while (!heap.done()) {
        // Stream the edge array sequentially; only the in-degree
        // increment is scattered.  This is the most regular kernel.
        for (std::uint64_t e = 0; e < g.numEdges() && !heap.done(); ++e) {
            const std::uint32_t dst = tg.edge(e);
            in_deg.set(dst, in_deg.get(dst) + 1);
        }
    }
}

void
runDfs(const Graph &g, trace::TracedHeap &heap, std::uint64_t seed)
{
    util::Rng rng(seed);
    TracedGraph tg(g, heap);
    const std::uint64_t v_count = g.num_vertices;
    trace::TracedArray<std::uint64_t> visited(heap, v_count,
                                              "dfs-visited");
    trace::TracedArray<std::uint32_t> stack(heap, v_count + 1,
                                            "dfs-stack");

    while (!heap.done()) {
        for (std::uint64_t v = 0; v < v_count; ++v)
            visited.raw(v) = 0;
        std::uint64_t top = 0;
        stack.set(top++, static_cast<std::uint32_t>(
                             rng.nextBelow(v_count)));
        while (top > 0 && !heap.done()) {
            const std::uint32_t u = stack.get(--top);
            if (visited.get(u))
                continue;
            visited.set(u, 1);
            const std::uint64_t begin = tg.offset(u);
            const std::uint64_t end = tg.offset(u + 1);
            for (std::uint64_t e = begin; e < end && !heap.done(); ++e) {
                const std::uint32_t w = tg.edge(e);
                if (!visited.get(w) && top <= v_count)
                    stack.set(top++, w);
            }
        }
    }
}

void
runBfs(const Graph &g, trace::TracedHeap &heap, std::uint64_t seed)
{
    util::Rng rng(seed);
    TracedGraph tg(g, heap);
    const std::uint64_t v_count = g.num_vertices;
    trace::TracedArray<std::uint64_t> visited(heap, v_count,
                                              "bfs-visited");
    trace::TracedArray<std::uint32_t> queue(heap, v_count, "bfs-queue");

    while (!heap.done()) {
        for (std::uint64_t v = 0; v < v_count; ++v)
            visited.raw(v) = 0;
        std::uint64_t head = 0, tail = 0;
        const auto root =
            static_cast<std::uint32_t>(rng.nextBelow(v_count));
        queue.set(tail++, root);
        visited.raw(root) = 1;
        while (head < tail && !heap.done()) {
            const std::uint32_t u = queue.get(head++);
            const std::uint64_t begin = tg.offset(u);
            const std::uint64_t end = tg.offset(u + 1);
            for (std::uint64_t e = begin; e < end && !heap.done(); ++e) {
                const std::uint32_t w = tg.edge(e);
                if (!visited.get(w)) {
                    visited.set(w, 1);
                    if (tail < v_count)
                        queue.set(tail++, w);
                }
            }
        }
    }
}

void
runTriangleCount(const Graph &g, trace::TracedHeap &heap,
                 std::uint64_t seed)
{
    util::Rng rng(seed);
    TracedGraph tg(g, heap);
    const std::uint64_t v_count = g.num_vertices;
    trace::TracedArray<std::uint64_t> count(heap, v_count, "tc-count");

    while (!heap.done()) {
        const auto u = rng.nextBelow(v_count);
        const std::uint64_t ub = tg.offset(u), ue = tg.offset(u + 1);
        for (std::uint64_t e = ub; e < ue && !heap.done(); ++e) {
            const std::uint32_t v = tg.edge(e);
            // Sorted-adjacency intersection of adj(u) and adj(v).
            std::uint64_t i = ub, j = tg.offset(v),
                          jend = tg.offset(static_cast<std::uint64_t>(v) +
                                           1);
            std::uint64_t triangles = 0;
            while (i < ue && j < jend && !heap.done()) {
                const std::uint32_t a = tg.edge(i), b = tg.edge(j);
                if (a == b) {
                    ++triangles;
                    ++i;
                    ++j;
                } else if (a < b) {
                    ++i;
                } else {
                    ++j;
                }
            }
            if (triangles)
                count.set(u, count.get(u) + triangles);
        }
    }
}

void
runShortestPath(const Graph &g, trace::TracedHeap &heap,
                std::uint64_t seed)
{
    util::Rng rng(seed);
    TracedGraph tg(g, heap);
    const std::uint64_t v_count = g.num_vertices;
    trace::TracedArray<std::uint64_t> dist(heap, v_count, "sp-dist");
    trace::TracedArray<std::uint32_t> work(heap, v_count, "sp-worklist");
    constexpr std::uint64_t kInf = ~0ULL;

    // Queue-based Bellman-Ford: relaxations propagate along a worklist,
    // touching dist[] at frontier-ordered (irregular) positions.
    while (!heap.done()) {
        for (std::uint64_t v = 0; v < v_count; ++v)
            dist.raw(v) = kInf;
        const std::uint64_t root = rng.nextBelow(v_count);
        dist.raw(root) = 0;
        std::uint64_t head = 0, tail = 0;
        work.set(tail++ % v_count, static_cast<std::uint32_t>(root));
        while (head < tail && !heap.done()) {
            const std::uint32_t u = work.get(head++ % v_count);
            const std::uint64_t du = dist.get(u);
            const std::uint64_t begin = tg.offset(u);
            const std::uint64_t end = tg.offset(u + 1);
            for (std::uint64_t e = begin; e < end && !heap.done(); ++e) {
                const std::uint32_t w = tg.edge(e);
                if (dist.get(w) > du + 1) {
                    dist.set(w, du + 1);
                    if (tail - head < v_count)
                        work.set(tail++ % v_count, w);
                }
            }
        }
    }
}

} // namespace rmcc::wl
