#include "workloads/omnetpp.hpp"

#include "util/rng.hpp"

namespace rmcc::wl
{

namespace
{

/** One scheduled event (16 B). */
struct Event
{
    std::uint64_t time = 0;
    std::uint32_t module = 0;
    std::uint32_t kind = 0;
};

/** Per-module state record (64 B: one cache block each). */
struct ModuleState
{
    std::uint64_t words[8] = {};
};

} // namespace

void
runOmnetpp(const OmnetppConfig &cfg, trace::TracedHeap &heap,
           std::uint64_t seed)
{
    util::Rng rng(seed);
    trace::TracedArray<Event> events(heap, cfg.heap_events, "om-heap");
    trace::TracedArray<ModuleState> modules(heap, cfg.modules,
                                            "om-modules");
    // Seed the heap half full with random timestamps.
    std::uint64_t size = cfg.heap_events / 2;
    for (std::uint64_t i = 0; i < size; ++i) {
        Event &e = events.raw(i);
        e.time = rng.next() >> 32;
        e.module = static_cast<std::uint32_t>(rng.nextBelow(cfg.modules));
    }
    // Establish the heap property untraced (setup phase).
    for (std::uint64_t i = size / 2; i-- > 0;) {
        std::uint64_t p = i;
        while (true) {
            std::uint64_t c = 2 * p + 1;
            if (c >= size)
                break;
            if (c + 1 < size &&
                events.raw(c + 1).time < events.raw(c).time)
                ++c;
            if (events.raw(p).time <= events.raw(c).time)
                break;
            std::swap(events.raw(p), events.raw(c));
            p = c;
        }
    }

    std::uint64_t now = 0;
    while (!heap.done() && size > 1) {
        // Pop-min: read the root, move the tail up, percolate down.  The
        // top of the heap stays cache-resident; deep levels scatter.
        Event top = events.get(0);
        now = top.time;
        Event tail = events.get(--size);
        std::uint64_t p = 0;
        while (!heap.done()) {
            std::uint64_t c = 2 * p + 1;
            if (c >= size)
                break;
            Event ec = events.get(c);
            if (c + 1 < size) {
                const Event ec1 = events.get(c + 1);
                if (ec1.time < ec.time) {
                    ++c;
                    ec = ec1;
                }
            }
            if (tail.time <= ec.time)
                break;
            events.set(p, ec);
            p = c;
        }
        events.set(p, tail);

        // Process the event: touch the module's state block(s).
        ModuleState st = modules.get(top.module);
        st.words[0] += top.kind + 1;
        for (unsigned k = 1; k < cfg.module_touches && !heap.done(); ++k)
            st.words[k % 8] +=
                modules.get(rng.nextBelow(cfg.modules)).words[0];
        modules.set(top.module, st);

        // Schedule a follow-up event: percolate up from the new tail.
        Event next;
        next.time = now + 1 + (rng.next() & 0xffff);
        next.module =
            static_cast<std::uint32_t>(rng.nextBelow(cfg.modules));
        std::uint64_t child = size++;
        events.set(child, next);
        while (child > 0 && !heap.done()) {
            const std::uint64_t parent = (child - 1) / 2;
            const Event ep = events.get(parent);
            if (ep.time <= next.time)
                break;
            events.set(child, ep);
            events.set(parent, next);
            child = parent;
        }
    }
}

} // namespace rmcc::wl
