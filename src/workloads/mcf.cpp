#include "workloads/mcf.hpp"

#include "util/rng.hpp"

namespace rmcc::wl
{

namespace
{

/** One arc record (32 B). */
struct Arc
{
    std::int64_t cost = 0;
    std::uint32_t tail = 0, head = 0;
    std::int64_t flow = 0;
    std::uint64_t pad = 0;
};

/** One node record (32 B). */
struct Node
{
    std::int64_t potential = 0;
    std::uint32_t parent = 0;
    std::uint32_t depth = 0;
    std::uint64_t pad[2] = {};
};

} // namespace

void
runMcf(const McfConfig &cfg, trace::TracedHeap &heap, std::uint64_t seed)
{
    util::Rng rng(seed);
    trace::TracedArray<Arc> arcs(heap, cfg.arcs, "mcf-arcs");
    trace::TracedArray<Node> nodes(heap, cfg.nodes, "mcf-nodes");
    for (std::uint64_t a = 0; a < cfg.arcs; ++a) {
        Arc &arc = arcs.raw(a);
        arc.cost = static_cast<std::int64_t>(rng.nextBelow(1000)) - 500;
        arc.tail = static_cast<std::uint32_t>(rng.nextBelow(cfg.nodes));
        arc.head = static_cast<std::uint32_t>(rng.nextBelow(cfg.nodes));
    }
    for (std::uint64_t n = 0; n < cfg.nodes; ++n)
        nodes.raw(n).parent =
            static_cast<std::uint32_t>(rng.nextBelow(cfg.nodes));

    while (!heap.done()) {
        // Pricing pass: stream the arc array sequentially looking for the
        // most negative reduced cost (mcf's dominant, highly spatial
        // phase).
        std::int64_t best_cost = 0;
        std::uint64_t best_arc = 0;
        for (std::uint64_t a = 0; a < cfg.arcs && !heap.done(); ++a) {
            const Arc arc = arcs.get(a);
            const std::int64_t reduced = arc.cost - arc.flow;
            if (reduced < best_cost) {
                best_cost = reduced;
                best_arc = a;
            }
        }
        if (heap.done())
            break;
        // Pivot: short tree walk from the entering arc's endpoints.
        Arc entering = arcs.get(best_arc);
        std::uint32_t n = entering.tail;
        for (unsigned d = 0; d < cfg.chase_depth && !heap.done(); ++d) {
            Node node = nodes.get(n);
            node.potential += best_cost;
            nodes.set(n, node);
            n = node.parent;
        }
        entering.flow += 1;
        arcs.set(best_arc, entering);
    }
}

} // namespace rmcc::wl
