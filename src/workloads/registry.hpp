/**
 * @file
 * The paper's 11-workload suite (Fig 3 order): eight GraphBig kernels,
 * canneal, omnetpp, and mcf, each packaged as a named trace generator.
 */
#ifndef RMCC_WORKLOADS_REGISTRY_HPP
#define RMCC_WORKLOADS_REGISTRY_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_buffer.hpp"
#include "workloads/graph.hpp"

namespace rmcc::trace
{
class TraceFileReader;
} // namespace rmcc::trace

namespace rmcc::wl
{

/** A named, reproducible trace generator. */
struct Workload
{
    std::string name;
    //! Mean non-memory instructions between memory ops (compute density).
    double mean_inst_gap;
    //! Stream the workload's access stream into the sink (until full).
    std::function<void(trace::TraceSink &, std::uint64_t seed)> generate;
};

/** The 11 workloads in the paper's figure order. */
const std::vector<Workload> &workloadSuite();

/** Look up a workload by name; nullptr when unknown. */
const Workload *findWorkload(const std::string &name);

/**
 * The shared power-law input graph (built once per process) that all
 * GraphBig kernels traverse — the stand-in for the 8_5-fb dataset.
 */
const Graph &sharedGraph();

/**
 * Generate a workload's trace with the standard budget.
 * @param records trace length (default 2 M memory operations).
 */
trace::TraceBuffer generateTrace(const Workload &w, std::size_t records,
                                 std::uint64_t seed);

/**
 * Owner of one generated trace — either the classic in-RAM TraceBuffer
 * or a spilled columnar trace file opened for windowed mmap replay.
 * Movable, not copyable; source() is what the simulators consume either
 * way.
 */
class TraceHandle
{
  public:
    TraceHandle() = delete;
    explicit TraceHandle(trace::TraceBuffer buf);
    explicit TraceHandle(std::unique_ptr<trace::TraceFileReader> file);
    ~TraceHandle();
    TraceHandle(TraceHandle &&) noexcept;
    TraceHandle &operator=(TraceHandle &&) noexcept;

    /** The replayable view (valid for the handle's lifetime). */
    const trace::TraceSource &source() const;

    /** True when the trace lives on disk (mmap windows), not in RAM. */
    bool spilled() const { return file_ != nullptr; }

    /** On-disk path of a spilled trace; empty for in-RAM traces. */
    const std::string &path() const;

  private:
    std::unique_ptr<trace::TraceBuffer> ram_;
    std::unique_ptr<trace::TraceFileReader> file_;
};

/**
 * Generate a workload's trace honoring the RMCC_TRACE_SPILL policy:
 * in-RAM by default (bit-identical to generateTrace()), streamed to a
 * checksummed file under RMCC_TRACE_DIR when spilling is requested (or
 * the trace crosses the auto threshold).  Spilled files are keyed by the
 * workload fingerprint (name/records/seed/generator-version): a cached
 * file that validates is reused, anything stale or corrupt is
 * regenerated in place.
 */
TraceHandle generateTraceHandle(const Workload &w, std::size_t records,
                                std::uint64_t seed);

} // namespace rmcc::wl

#endif // RMCC_WORKLOADS_REGISTRY_HPP
