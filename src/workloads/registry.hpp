/**
 * @file
 * The paper's 11-workload suite (Fig 3 order): eight GraphBig kernels,
 * canneal, omnetpp, and mcf, each packaged as a named trace generator.
 */
#ifndef RMCC_WORKLOADS_REGISTRY_HPP
#define RMCC_WORKLOADS_REGISTRY_HPP

#include <functional>
#include <string>
#include <vector>

#include "trace/trace_buffer.hpp"
#include "workloads/graph.hpp"

namespace rmcc::wl
{

/** A named, reproducible trace generator. */
struct Workload
{
    std::string name;
    //! Mean non-memory instructions between memory ops (compute density).
    double mean_inst_gap;
    //! Fill the buffer (until full) with the workload's access stream.
    std::function<void(trace::TraceBuffer &, std::uint64_t seed)> generate;
};

/** The 11 workloads in the paper's figure order. */
const std::vector<Workload> &workloadSuite();

/** Look up a workload by name; nullptr when unknown. */
const Workload *findWorkload(const std::string &name);

/**
 * The shared power-law input graph (built once per process) that all
 * GraphBig kernels traverse — the stand-in for the 8_5-fb dataset.
 */
const Graph &sharedGraph();

/**
 * Generate a workload's trace with the standard budget.
 * @param records trace length (default 2 M memory operations).
 */
trace::TraceBuffer generateTrace(const Workload &w, std::size_t records,
                                 std::uint64_t seed);

} // namespace rmcc::wl

#endif // RMCC_WORKLOADS_REGISTRY_HPP
