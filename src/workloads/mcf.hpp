/**
 * @file
 * mcf (SPEC) model: network-simplex minimum-cost flow — long sequential
 * scans over the arc array with a light pointer-chasing component, giving
 * the low TLB/counter miss rates the paper reports for mcf.
 */
#ifndef RMCC_WORKLOADS_MCF_HPP
#define RMCC_WORKLOADS_MCF_HPP

#include "trace/traced_memory.hpp"

namespace rmcc::wl
{

/** Tuning for the mcf model. */
struct McfConfig
{
    std::uint64_t arcs = 1024 * 1024;     //!< Arc records (32 B each).
    std::uint64_t nodes = 256 * 1024;     //!< Node records.
    unsigned chase_depth = 4;             //!< Tree-walk length per pivot.
};

/** Run pricing/pivot iterations until the trace budget is exhausted. */
void runMcf(const McfConfig &cfg, trace::TracedHeap &heap,
            std::uint64_t seed);

} // namespace rmcc::wl

#endif // RMCC_WORKLOADS_MCF_HPP
