/**
 * @file
 * omnetpp (SPEC) model: discrete-event network simulation — a binary
 * event heap whose percolations are semi-local plus scattered touches of
 * per-module state.
 */
#ifndef RMCC_WORKLOADS_OMNETPP_HPP
#define RMCC_WORKLOADS_OMNETPP_HPP

#include "trace/traced_memory.hpp"

namespace rmcc::wl
{

/** Tuning for the omnetpp model. */
struct OmnetppConfig
{
    std::uint64_t heap_events = 1 << 20;  //!< Event-heap capacity.
    std::uint64_t modules = 1 << 17;      //!< Simulated network modules.
    unsigned module_touches = 3;          //!< State words read per event.
};

/** Run the event loop until the trace budget is exhausted. */
void runOmnetpp(const OmnetppConfig &cfg, trace::TracedHeap &heap,
                std::uint64_t seed);

} // namespace rmcc::wl

#endif // RMCC_WORKLOADS_OMNETPP_HPP
