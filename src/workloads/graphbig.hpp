/**
 * @file
 * Executable models of the eight IBM GraphBig kernels the paper evaluates
 * (pageRank, graphColoring, connectedComp, degreeCentr, DFS, BFS,
 * triangleCount, shortestPath).  Each is the real algorithm running over
 * the shared power-law graph; every heap access is recorded into the
 * trace, reproducing each kernel's distinctive locality.
 */
#ifndef RMCC_WORKLOADS_GRAPHBIG_HPP
#define RMCC_WORKLOADS_GRAPHBIG_HPP

#include "workloads/graph.hpp"

namespace rmcc::wl
{

/** Push-style iterative PageRank. */
void runPageRank(const Graph &g, trace::TracedHeap &heap,
                 std::uint64_t seed);

/** Greedy first-fit graph coloring. */
void runGraphColoring(const Graph &g, trace::TracedHeap &heap,
                      std::uint64_t seed);

/** Label-propagation connected components. */
void runConnectedComp(const Graph &g, trace::TracedHeap &heap,
                      std::uint64_t seed);

/** Degree centrality (edge-stream accumulation). */
void runDegreeCentr(const Graph &g, trace::TracedHeap &heap,
                    std::uint64_t seed);

/** Depth-first traversal with an explicit stack. */
void runDfs(const Graph &g, trace::TracedHeap &heap, std::uint64_t seed);

/** Breadth-first traversal with a frontier queue. */
void runBfs(const Graph &g, trace::TracedHeap &heap, std::uint64_t seed);

/** Triangle counting via sorted-adjacency intersection. */
void runTriangleCount(const Graph &g, trace::TracedHeap &heap,
                      std::uint64_t seed);

/** Bellman-Ford-style single-source shortest paths. */
void runShortestPath(const Graph &g, trace::TracedHeap &heap,
                     std::uint64_t seed);

} // namespace rmcc::wl

#endif // RMCC_WORKLOADS_GRAPHBIG_HPP
