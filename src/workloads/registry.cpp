#include "workloads/registry.hpp"

#include <cstdio>

#include <sys/stat.h>

#include "trace/trace_file.hpp"
#include "trace/trace_reader.hpp"
#include "util/log.hpp"
#include "workloads/canneal.hpp"
#include "workloads/graphbig.hpp"
#include "workloads/mcf.hpp"
#include "workloads/omnetpp.hpp"

namespace rmcc::wl
{

namespace
{

/** Shared-graph scale: ~4 M vertices, ~24 M edges (~128 MB CSR). */
constexpr std::uint64_t kGraphVertices = 4 * 1024 * 1024;
constexpr std::uint64_t kGraphEdges = 24 * 1024 * 1024;
constexpr double kGraphZipf = 0.75;
constexpr std::uint64_t kGraphSeed = 0x5eed6a7;

using KernelFn = void (*)(const Graph &, trace::TracedHeap &,
                          std::uint64_t);

/** Wrap a graph kernel as a Workload generator. */
Workload
graphWorkload(std::string name, double gap, KernelFn kernel)
{
    return {std::move(name), gap,
            [kernel, gap](trace::TraceSink &buf, std::uint64_t seed) {
                trace::TracedHeap heap(buf, gap, seed);
                kernel(sharedGraph(), heap, seed);
            }};
}

} // namespace

const Graph &
sharedGraph()
{
    static const Graph g =
        Graph::powerLawCached(kGraphVertices, kGraphEdges, kGraphZipf,
                              kGraphSeed);
    return g;
}

const std::vector<Workload> &
workloadSuite()
{
    static const std::vector<Workload> suite = [] {
        std::vector<Workload> v;
        v.push_back(graphWorkload("pageRank", 5.0, &runPageRank));
        v.push_back(graphWorkload("graphColoring", 4.0,
                                  &runGraphColoring));
        v.push_back(graphWorkload("connectedComp", 4.0,
                                  &runConnectedComp));
        v.push_back(graphWorkload("degreeCentr", 4.0, &runDegreeCentr));
        v.push_back(graphWorkload("DFS", 4.0, &runDfs));
        v.push_back(graphWorkload("BFS", 4.0, &runBfs));
        v.push_back(graphWorkload("triangleCount", 3.0,
                                  &runTriangleCount));
        v.push_back(graphWorkload("shortestPath", 4.0, &runShortestPath));
        v.push_back({"canneal", 6.0,
                     [](trace::TraceSink &buf, std::uint64_t seed) {
                         trace::TracedHeap heap(buf, 6.0, seed);
                         runCanneal(CannealConfig(), heap, seed);
                     }});
        v.push_back({"omnetpp", 10.0,
                     [](trace::TraceSink &buf, std::uint64_t seed) {
                         trace::TracedHeap heap(buf, 10.0, seed);
                         runOmnetpp(OmnetppConfig(), heap, seed);
                     }});
        v.push_back({"mcf", 8.0,
                     [](trace::TraceSink &buf, std::uint64_t seed) {
                         trace::TracedHeap heap(buf, 8.0, seed);
                         runMcf(McfConfig(), heap, seed);
                     }});
        return v;
    }();
    return suite;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &w : workloadSuite())
        if (w.name == name)
            return &w;
    return nullptr;
}

trace::TraceBuffer
generateTrace(const Workload &w, std::size_t records, std::uint64_t seed)
{
    trace::TraceBuffer buf(records);
    w.generate(buf, seed);
    return buf;
}

TraceHandle::TraceHandle(trace::TraceBuffer buf)
    : ram_(std::make_unique<trace::TraceBuffer>(std::move(buf)))
{
}

TraceHandle::TraceHandle(std::unique_ptr<trace::TraceFileReader> file)
    : file_(std::move(file))
{
}

TraceHandle::~TraceHandle() = default;
TraceHandle::TraceHandle(TraceHandle &&) noexcept = default;
TraceHandle &TraceHandle::operator=(TraceHandle &&) noexcept = default;

const trace::TraceSource &
TraceHandle::source() const
{
    return file_ ? static_cast<const trace::TraceSource &>(*file_)
                 : static_cast<const trace::TraceSource &>(*ram_);
}

const std::string &
TraceHandle::path() const
{
    static const std::string empty;
    return file_ ? file_->path() : empty;
}

TraceHandle
generateTraceHandle(const Workload &w, std::size_t records,
                    std::uint64_t seed)
{
    const trace::SpillConfig sc = trace::spillConfigFromEnv();
    if (!sc.shouldSpill(records))
        return TraceHandle(generateTrace(w, records, seed));

    const std::uint64_t fp =
        trace::traceFingerprint(w.name, records, seed);
    trace::ensureTraceDir(sc.dir);
    char fphex[20];
    std::snprintf(fphex, sizeof fphex, "%016llx",
                  static_cast<unsigned long long>(fp));
    const std::string path =
        sc.dir + "/" + w.name + "-" + fphex + ".rmcctrc";

    // Spill cache: a finalized file for this exact (workload, records,
    // seed, generator version) is replayed as-is — the fingerprint in
    // the header plus the opening checksum pass make reuse safe.  Any
    // mismatch, truncation, or corruption falls through to regeneration.
    struct stat st{};
    const bool exists = ::stat(path.c_str(), &st) == 0;
    if (exists) {
        try {
            auto rd = std::make_unique<trace::TraceFileReader>(
                path, sc.window_records, fp);
            util::logDebug("trace spill: reusing cached '%s'",
                           path.c_str());
            return TraceHandle(std::move(rd));
        } catch (const std::exception &e) {
            util::warn("trace spill: cached '%s' rejected (%s); "
                       "regenerating",
                       path.c_str(), e.what());
        }
    }

    {
        trace::TraceFileWriter writer(
            path, records, fp, trace::kTraceChunkRecords,
            sc.compress == trace::SpillConfig::Compress::Delta);
        w.generate(writer, seed);
        writer.finalize();
    }
    return TraceHandle(std::make_unique<trace::TraceFileReader>(
        path, sc.window_records, fp));
}

} // namespace rmcc::wl
