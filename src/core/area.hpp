/**
 * @file
 * Area-overhead accounting for RMCC hardware (paper Sec IV-E).
 */
#ifndef RMCC_CORE_AREA_HPP
#define RMCC_CORE_AREA_HPP

#include <cstdint>

#include "core/memo_table.hpp"

namespace rmcc::core
{

/** Area/latency accounting for one memoization table + multiplier. */
struct AreaReport
{
    std::uint64_t table_bytes;        //!< AES-result storage.
    std::uint64_t freq_counter_bytes; //!< Use-frequency counters.
    std::uint64_t clmul_xor_gates;    //!< Carry-less multiplier XORs.
    std::uint64_t clmul_inverters;    //!< Fan-out inverters.
    std::uint64_t clmul_sram_equiv_bytes; //!< Gate area in SRAM-cell terms.
    unsigned xor_depth;               //!< Multiplier XOR-tree depth.
    unsigned inverter_depth;          //!< Fan-out inverter depth.

    /** Everything, in bytes of SRAM-equivalent area. */
    std::uint64_t totalSramEquivBytes() const
    {
        return table_bytes + freq_counter_bytes + clmul_sram_equiv_bytes;
    }
};

/**
 * Compute the Sec IV-E accounting for a table configuration.
 *
 * Per entry: 16 B AES result for decryption + 16 B for verification
 * (different keys).  Frequency tracking: 16 B counters for current groups,
 * recently evicted groups, and new-candidate monitoring.  The truncated
 * 128x128 multiplier uses ~12 K XOR gates (2 SRAM cells each) and ~16 K
 * inverters (half a cell each); depth log2(128) = 7 XORs and
 * log4(128) ~= 3 inverters.
 */
AreaReport computeArea(const MemoConfig &cfg = MemoConfig());

} // namespace rmcc::core

#endif // RMCC_CORE_AREA_HPP
