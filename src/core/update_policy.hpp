/**
 * @file
 * Memoization-aware counter update (paper Sec IV-B, IV-C1, IV-C2).
 *
 * On a writeback, instead of incrementing the block's counter by one, RMCC
 * raises it to the nearest counter value currently memoized; counter-mode
 * security only requires that the value increases.  Reads whose counter
 * values miss in the memoization table may also be releveled, within the
 * traffic budget.  Jumps that cause a split-counter overflow the baseline
 * would have avoided are charged to the budget; when the budget is dry the
 * policy reverts to baseline +1, except for writes the baseline would
 * overflow anyway, which relevel straight to a memoized value.
 */
#ifndef RMCC_CORE_UPDATE_POLICY_HPP
#define RMCC_CORE_UPDATE_POLICY_HPP

#include <cstdint>
#include <optional>

#include "core/budget.hpp"
#include "core/memo_table.hpp"
#include "counters/scheme.hpp"

namespace rmcc::core
{

/** What one counter update did. */
struct UpdateOutcome
{
    addr::CounterValue value = 0;        //!< Final counter value.
    bool used_memo_target = false;       //!< Jumped to a memoized value.
    bool overflow = false;               //!< Block rebase occurred.
    std::uint64_t reencrypt_blocks = 0;  //!< Entities to re-encrypt.
    //! Extra 64 B accesses charged to the budget vs the baseline update.
    std::uint64_t overhead_accesses = 0;
};

/**
 * The update policy for one integrity-tree level.
 */
class UpdatePolicy
{
  public:
    /**
     * @param table that level's memoization table (borrowed).
     * @param budget that level's traffic budget (borrowed).
     * @param enabled false = always baseline +1 (baseline configs).
     */
    /**
     * @param allow_far_relevel permit whole-block relevels for far jumps
     *        (level 0 in the default configuration; a relevel at level k
     *        re-encrypts every level k-1 block it covers, which is
     *        disproportionate at higher levels).
     */
    UpdatePolicy(MemoTable &table, TrafficBudget &budget, bool enabled,
                 bool allow_far_relevel = true);

    /** Counter update for a writeback of entity idx. */
    UpdateOutcome onWrite(ctr::CounterScheme &scheme, std::uint64_t idx);

    /**
     * Read-triggered relevel (Sec IV-C1): the read's counter value missed
     * in the table; raise it to a memoized value if the budget allows.
     * The extra traffic (re-encrypting and rewriting the data block, plus
     * any overflow) is charged to the budget.  Returns nullopt if nothing
     * was done.
     */
    std::optional<UpdateOutcome> onReadMiss(ctr::CounterScheme &scheme,
                                            std::uint64_t idx);

    /** Total read-triggered updates performed. */
    std::uint64_t readUpdates() const { return read_updates_; }

  private:
    /**
     * Pick the jump target for idx: nearest memoized value above the
     * current value, retargeted above the block max when the jump would
     * rebase the block (so the rebase lands on a memoized value).
     */
    std::optional<addr::CounterValue>
    memoTarget(const ctr::CounterScheme &scheme, std::uint64_t idx) const;

    MemoTable &table_;
    TrafficBudget &budget_;
    bool enabled_;
    bool allow_far_relevel_;
    std::uint64_t read_updates_ = 0;
};

} // namespace rmcc::core

#endif // RMCC_CORE_UPDATE_POLICY_HPP
