/**
 * @file
 * Per-epoch traffic-overhead budget (paper Sec IV-C1/C2).
 *
 * RMCC may cause extra memory traffic in two ways: read-triggered
 * memoization-aware updates (a data block is rewritten just to relevel its
 * counter) and extra counter overflows (a write jumps past the minor range
 * to reach a memoized value).  Both draw from a budget of 1% of memory
 * accesses, replenished every 1 M-access epoch; leftover budget carries
 * over.  When the budget is exhausted, RMCC reverts to the baseline
 * counter update for the rest of the epoch, except for writes that would
 * overflow under the baseline anyway.
 */
#ifndef RMCC_CORE_BUDGET_HPP
#define RMCC_CORE_BUDGET_HPP

#include <cstdint>

namespace rmcc::core
{

/** Budget tuning. */
struct BudgetConfig
{
    double fraction = 0.01;                  //!< Overhead budget fraction.
    std::uint64_t epoch_accesses = 1000000;  //!< Accesses per epoch.
    /**
     * Budget balance carried in from the (unsimulated) earlier lifetime.
     * The paper carries leftover budget across epochs over whole-lifetime
     * runs; simulating a window that joins a workload mid-life therefore
     * starts with accrued balance.  See DESIGN.md (substitutions).
     */
    double initial_pool_accesses = 0.0;
};

/**
 * Epoch-replenished overhead-traffic allowance, denominated in 64 B
 * memory accesses.
 */
class TrafficBudget
{
  public:
    explicit TrafficBudget(const BudgetConfig &cfg = BudgetConfig());

    /**
     * Record one memory access toward epoch progress.
     * @return true exactly when this access closes an epoch.
     */
    bool onAccess();

    /** Overhead accesses available right now. */
    double available() const { return pool_; }

    /** True if `cost` accesses of overhead could be spent. */
    bool canSpend(std::uint64_t cost) const
    {
        return pool_ >= static_cast<double>(cost);
    }

    /** Spend if affordable; returns whether the charge went through. */
    bool trySpend(std::uint64_t cost);

    /** Unconditionally charge (for overhead that happens regardless). */
    void forceSpend(std::uint64_t cost);

    /** Overwrite the pool (lifetime-warmup grant/drain). */
    void setPool(double accesses) { pool_ = accesses; }

    /** Lifetime overhead accesses charged. */
    std::uint64_t totalSpent() const { return total_spent_; }

    /** Lifetime accesses observed. */
    std::uint64_t totalAccesses() const { return total_accesses_; }

    /** Epochs completed. */
    std::uint64_t epochs() const { return epochs_; }

    const BudgetConfig &config() const { return cfg_; }

  private:
    BudgetConfig cfg_;
    double pool_;
    std::uint64_t in_epoch_ = 0;
    std::uint64_t epochs_ = 0;
    std::uint64_t total_spent_ = 0;
    std::uint64_t total_accesses_ = 0;
};

} // namespace rmcc::core

#endif // RMCC_CORE_BUDGET_HPP
