#include "core/rmcc_engine.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace rmcc::core
{

RmccEngine::RmccEngine(const RmccConfig &cfg, ctr::IntegrityTree &tree)
    : cfg_(cfg), tree_(tree)
{
    const unsigned n =
        std::min(cfg_.memo_levels, tree_.levels());
    for (unsigned l = 0; l < n; ++l) {
        auto state = std::make_unique<LevelState>();
        state->table = std::make_unique<MemoTable>(cfg_.memo);
        state->monitor = std::make_unique<CandidateMonitor>(cfg_.monitor);
        state->budget = std::make_unique<TrafficBudget>(cfg_.budget);
        state->policy = std::make_unique<UpdatePolicy>(
            *state->table, *state->budget, cfg_.enabled,
            /*allow_far_relevel=*/l == 0);
        levels_.push_back(std::move(state));
    }
}

addr::CounterValue
RmccEngine::capStart(addr::CounterValue start) const
{
    // Sec IV-D2: new groups start below Observed-System-Max + 1, so the
    // largest counter in the system can only ever advance by one per
    // writeback, preserving SGX's 2^56-writeback reboot bound.
    return std::min(start, tree_.observedMax());
}

ReadConsult
RmccEngine::onReadCounterUse(unsigned level, std::uint64_t idx)
{
    ReadConsult out;
    if (!cfg_.enabled || level >= levels_.size())
        return out;

    LevelState &st = *levels_[level];
    if (domain_resolver_)
        st.table->setActiveDomain(domain_resolver_(level, idx));
    ctr::CounterScheme &scheme = tree_.level(level);
    const addr::CounterValue v = scheme.read(idx);

    st.monitor->observeRead(v);
    out.hit = st.table->lookupRead(v);

    // High-counter trigger: insert a new group above the table (IV-C3),
    // at most once per epoch.
    if (!st.inserted_this_epoch) {
        if (const auto sel = st.monitor->takeSelection()) {
            st.table->insertGroup(capStart(*sel));
            ++st.insertions;
            st.inserted_this_epoch = true;
            st.monitor->arm(st.table->maxInTable());
        }
    }

    // Read-triggered relevel for values the table does not cover (IV-C1).
    if (out.hit == MemoHit::Miss && cfg_.read_update) {
        if (const auto upd = st.policy->onReadMiss(scheme, idx)) {
            out.releveled = true;
            out.overhead_accesses = upd->overhead_accesses;
            out.reencrypt_blocks = upd->reencrypt_blocks;
        }
    }
    return out;
}

UpdateOutcome
RmccEngine::onWriteCounter(unsigned level, std::uint64_t idx)
{
    ctr::CounterScheme &scheme = tree_.level(level);
    if (cfg_.enabled && level < levels_.size()) {
        if (domain_resolver_)
            levels_[level]->table->setActiveDomain(
                domain_resolver_(level, idx));
        return levels_[level]->policy->onWrite(scheme, idx);
    }

    // Baseline +1 (also used above the memoized levels under RMCC).
    const addr::CounterValue cur = scheme.read(idx);
    const ctr::WriteResult r = scheme.write(idx, cur + 1);
    UpdateOutcome out;
    out.value = r.new_value;
    out.overflow = r.overflow;
    out.reencrypt_blocks = r.reencrypt_blocks;
    return out;
}

void
RmccEngine::onDramAccess()
{
    if (!cfg_.enabled)
        return;
    for (auto &st : levels_) {
        if (st->budget->onAccess()) {
            st->table->endOfEpoch();
            st->monitor->arm(st->table->maxInTable());
            st->inserted_this_epoch = false;
        }
    }
}

bool
RmccEngine::quarantineMemoValue(unsigned level, addr::CounterValue v)
{
    if (!cfg_.enabled || level >= levels_.size())
        return false;
    LevelState &st = *levels_[level];
    const bool dropped = st.table->quarantineValue(v);
    st.monitor->arm(st.table->maxInTable());
    return dropped;
}

void
RmccEngine::setBudgetPools(double accesses)
{
    for (auto &st : levels_)
        st->budget->setPool(accesses);
}

double
RmccEngine::averageCoverage(unsigned level) const
{
    if (level >= levels_.size())
        return 0.0;
    const MemoTable &tbl = *levels_[level]->table;
    const ctr::CounterScheme &scheme = tree_.level(level);

    // Covered values form [start, start + group_size) intervals; merge
    // the (possibly overlapping) groups so the entity scan is a compare
    // against a handful of sorted ranges instead of a hash probe per
    // counter.
    std::vector<std::pair<addr::CounterValue, addr::CounterValue>> ranges;
    const unsigned group_size = tbl.config().group_size;
    for (const auto start : tbl.groupStarts())
        ranges.emplace_back(start, start + group_size);
    if (ranges.empty())
        return 0.0;
    std::sort(ranges.begin(), ranges.end());
    std::size_t merged = 0;
    for (std::size_t i = 1; i < ranges.size(); ++i) {
        if (ranges[i].first <= ranges[merged].second)
            ranges[merged].second =
                std::max(ranges[merged].second, ranges[i].second);
        else
            ranges[++merged] = ranges[i];
    }
    ranges.resize(merged + 1);
    std::uint64_t distinct = 0;
    for (const auto &[lo, hi] : ranges)
        distinct += hi - lo;

    std::uint64_t total = 0;
    const std::uint64_t n = scheme.entities();
    const addr::CounterValue *raw = scheme.rawValues();
    if (raw != nullptr) {
        // Dense store: sweep the whole array once per merged range with a
        // branchless membership test ((v - lo) < span catches lo <= v < hi
        // in one unsigned compare).  Ranges are disjoint after the merge,
        // so indicator sums equal the per-value scan's count, and the
        // branch-free inner loop vectorizes — this runs inside the timed
        // region of every RMCC experiment.
        for (const auto &[lo, hi] : ranges) {
            const addr::CounterValue span = hi - lo;
            std::uint64_t in = 0;
            for (std::uint64_t i = 0; i < n; ++i)
                in += (raw[i] - lo) < span ? 1u : 0u;
            total += in;
        }
    } else {
        for (std::uint64_t i = 0; i < n; ++i) {
            const addr::CounterValue v = scheme.read(i);
            for (const auto &[lo, hi] : ranges) {
                if (v < lo)
                    break;
                if (v < hi) {
                    ++total;
                    break;
                }
            }
        }
    }
    return static_cast<double>(total) / static_cast<double>(distinct);
}

} // namespace rmcc::core
