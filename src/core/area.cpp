#include "core/area.hpp"

namespace rmcc::core
{

AreaReport
computeArea(const MemoConfig &cfg)
{
    AreaReport r{};
    // 32 B per memoized value: 16 B decryption AES + 16 B MAC AES.
    r.table_bytes = static_cast<std::uint64_t>(cfg.entries()) * 32;
    // 16 B-wide frequency/monitor counters: one per current group, one per
    // shadow group, and one per monitored new-group candidate (31 rungs),
    // rounded to the paper's 64-counter provision.
    const std::uint64_t counters =
        cfg.groups + cfg.shadow_groups + 32;
    r.freq_counter_bytes = counters * 16;
    // Truncated 128x128 -> 128 carry-less multiplier (Sec IV-E).
    r.clmul_xor_gates = 12 * 1024;
    r.clmul_inverters = 16 * 1024;
    // XOR = 2 SRAM cells, inverter = 0.5; 8 cells per byte.
    r.clmul_sram_equiv_bytes =
        (r.clmul_xor_gates * 2 + r.clmul_inverters / 2) / 8;
    r.xor_depth = 7;      // log2(128)
    r.inverter_depth = 3; // ~log4(128)
    return r;
}

} // namespace rmcc::core
