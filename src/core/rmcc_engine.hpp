/**
 * @file
 * The RMCC engine: per-integrity-tree-level memoization tables, candidate
 * monitors, traffic budgets, and update policies, glued to the counter
 * tree (paper Fig 8).
 *
 * The paper's configuration memoizes two levels — one 128-entry table for
 * L0 counters (protecting data blocks) and one for L1 counters (protecting
 * L0 counter blocks).  Levels beyond the memoized ones use the baseline
 * +1 counter update.
 */
#ifndef RMCC_CORE_RMCC_ENGINE_HPP
#define RMCC_CORE_RMCC_ENGINE_HPP

#include <functional>
#include <memory>
#include <vector>

#include "core/budget.hpp"
#include "core/candidate_monitor.hpp"
#include "core/memo_table.hpp"
#include "core/update_policy.hpp"
#include "counters/tree.hpp"

namespace rmcc::core
{

/** Full RMCC configuration. */
struct RmccConfig
{
    MemoConfig memo;          //!< Per-level memoization table sizing.
    MonitorConfig monitor;    //!< Candidate monitor knobs.
    BudgetConfig budget;      //!< Per-level traffic budget (1% each).
    unsigned memo_levels = 2; //!< Levels with tables (L0 and L1).
    bool read_update = true;  //!< Relevel on read misses (Sec IV-C1).
    bool enabled = true;      //!< false = pure baseline (no RMCC).
};

/** Result of consulting RMCC for a read's counter use. */
struct ReadConsult
{
    MemoHit hit = MemoHit::Miss;         //!< Memoization outcome.
    bool releveled = false;              //!< Read-triggered update ran.
    std::uint64_t overhead_accesses = 0; //!< Budgeted extra traffic.
    std::uint64_t reencrypt_blocks = 0;  //!< Overflow re-encryption work.
};

/**
 * RMCC state machine over an integrity tree.
 */
class RmccEngine
{
  public:
    /** The tree is borrowed and must outlive the engine. */
    RmccEngine(const RmccConfig &cfg, ctr::IntegrityTree &tree);

    /**
     * A read needs the counter of entity idx at `level` to decrypt or
     * verify: look up the memoization table, feed the monitor, insert a
     * new group if the high-counter trigger fired, and possibly relevel
     * the counter (read-triggered update) when it missed.
     */
    ReadConsult onReadCounterUse(unsigned level, std::uint64_t idx);

    /**
     * A writeback updates the counter of entity idx at `level` using the
     * memoization-aware policy (or baseline above the memoized levels).
     */
    UpdateOutcome onWriteCounter(unsigned level, std::uint64_t idx);

    /**
     * Advance epoch accounting by one 64 B memory access; at epoch
     * boundaries the tables reselect their groups and the monitors
     * re-arm.
     */
    void onDramAccess();

    /** Memoization table of a level (level < memoLevels()). */
    MemoTable &table(unsigned level) { return *levels_[level]->table; }
    const MemoTable &table(unsigned level) const
    {
        return *levels_[level]->table;
    }

    /** Budget of a level. */
    const TrafficBudget &budget(unsigned level) const
    {
        return *levels_[level]->budget;
    }

    /** Number of levels with memoization tables. */
    unsigned memoLevels() const
    {
        return static_cast<unsigned>(levels_.size());
    }

    /** Whether RMCC is active at all. */
    bool enabled() const { return cfg_.enabled; }

    /** Groups inserted by the candidate monitor at a level. */
    std::uint64_t groupInsertions(unsigned level) const
    {
        return levels_[level]->insertions;
    }

    /** Read-triggered relevels performed at a level. */
    std::uint64_t readUpdates(unsigned level) const
    {
        return levels_[level]->policy->readUpdates();
    }

    /**
     * Average number of entities currently covered by each memoized
     * counter value at a level (paper Fig 15); O(entities) scan.
     */
    double averageCoverage(unsigned level) const;

    /**
     * Quarantine a poisoned memoized value at `level` (recovery path) and
     * apply the security-register rollback rule: the candidate monitor's
     * high-counter trigger re-arms from the post-quarantine
     * Max-Counter-in-Table, so a poisoned entry can never have ratcheted
     * the monitor threshold upward (the Observed-System-Max cap of
     * Sec IV-D2 keeps group starts bounded by honest tree state either
     * way).
     * @return true when the value was actually memoized and dropped.
     */
    bool quarantineMemoValue(unsigned level, addr::CounterValue v);

    /**
     * Tenant-domain resolver: maps a (level, entity idx) pair to the
     * memo-table domain it belongs to.  When set (tenancy with strict
     * isolation), the engine selects that domain on each table before
     * every lookup/insert/update, so memoized counter values never cross
     * tenant boundaries.  Unset (default) leaves the tables in the
     * single-domain configuration — bit-identical to pre-tenancy runs.
     */
    using DomainResolver =
        std::function<std::uint32_t(unsigned level, std::uint64_t idx)>;
    void setDomainResolver(DomainResolver resolver)
    {
        domain_resolver_ = std::move(resolver);
    }

    /**
     * Set every level's budget pool — used by the lifetime-warmup
     * (precondition) phase, which emulates the budget accrued and spent
     * over the unsimulated earlier lifetime, then drains to zero so the
     * measured window runs at the steady 1% accrual.
     */
    void setBudgetPools(double accesses);

    /** The configuration in force. */
    const RmccConfig &config() const { return cfg_; }

  private:
    struct LevelState
    {
        std::unique_ptr<MemoTable> table;
        std::unique_ptr<CandidateMonitor> monitor;
        std::unique_ptr<TrafficBudget> budget;
        std::unique_ptr<UpdatePolicy> policy;
        std::uint64_t insertions = 0;
        //! One insertion per epoch: the reselection protects one new
        //! group per epoch (the 15-of-32 + newcomer rule, Sec IV-C3);
        //! unbounded insertion would make the value ladder climb so fast
        //! that every hot block rebases chasing it.
        bool inserted_this_epoch = false;
    };

    /** Apply the Observed-System-Max cap to a selected group start. */
    addr::CounterValue capStart(addr::CounterValue start) const;

    RmccConfig cfg_;
    ctr::IntegrityTree &tree_;
    std::vector<std::unique_ptr<LevelState>> levels_;
    DomainResolver domain_resolver_; //!< Null outside tenancy mode.
};

} // namespace rmcc::core

#endif // RMCC_CORE_RMCC_ENGINE_HPP
