#include "core/memo_table.hpp"

#include <algorithm>

namespace rmcc::core
{

MemoTable::MemoTable(const MemoConfig &cfg)
    : cfg_(cfg), groups_(cfg.groups), shadows_(cfg.shadow_groups)
{
}

int
MemoTable::findGroup(addr::CounterValue v) const
{
    // domain is 0 everywhere in the single-domain configuration, so the
    // extra compare cannot change the legacy result.
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        const Group &grp = groups_[g];
        if (grp.valid && grp.domain == active_ && v >= grp.start &&
            v < grp.start + cfg_.group_size)
            return static_cast<int>(g);
    }
    return -1;
}

int
MemoTable::findShadow(addr::CounterValue v) const
{
    for (std::size_t g = 0; g < shadows_.size(); ++g) {
        const Group &grp = shadows_[g];
        if (grp.valid && grp.domain == active_ && v >= grp.start &&
            v < grp.start + cfg_.group_size)
            return static_cast<int>(g);
    }
    return -1;
}

MemoHit
MemoTable::lookupRead(addr::CounterValue v)
{
    // Quarantined values must never serve a read; the empty-set guard
    // keeps the default (fault-free) path at zero extra cost.
    if (!quarantine_.empty() && isQuarantined(v)) {
        ++misses_;
        return MemoHit::Miss;
    }
    const int g = findGroup(v);
    if (g >= 0) {
        ++groups_[static_cast<std::size_t>(g)].freq;
        ++group_hits_;
        return MemoHit::GroupHit;
    }
    // MRU evicted-group values: an exact-value hit refreshes recency and
    // keeps teaching the covering shadow group's frequency counter.
    const DomainValue dv{v, active_};
    const auto it = std::find(recent_.begin(), recent_.end(), dv);
    if (it != recent_.end()) {
        recent_.erase(it);
        recent_.push_front(dv);
        const int s = findShadow(v);
        if (s >= 0)
            ++shadows_[static_cast<std::size_t>(s)].freq;
        ++recent_hits_;
        return MemoHit::RecentHit;
    }
    // A value under a recently evicted group misses now but becomes
    // memoized for subsequent uses; the shadow group's frequency counter
    // keeps learning so the group can win re-insertion at epoch end.
    const int s = findShadow(v);
    if (s >= 0) {
        ++shadows_[static_cast<std::size_t>(s)].freq;
        if (cfg_.recent_values > 0) {
            recent_.push_front(dv);
            if (recent_.size() > cfg_.recent_values)
                recent_.pop_back();
        }
    }
    ++misses_;
    return MemoHit::Miss;
}

bool
MemoTable::contains(addr::CounterValue v) const
{
    return inGroups(v) ||
           std::find(recent_.begin(), recent_.end(),
                     DomainValue{v, active_}) != recent_.end();
}

bool
MemoTable::inGroups(addr::CounterValue v) const
{
    return findGroup(v) >= 0;
}

std::optional<addr::CounterValue>
MemoTable::nearestAbove(addr::CounterValue v) const
{
    std::optional<addr::CounterValue> best;
    for (const Group &grp : groups_) {
        if (!grp.valid || grp.domain != active_)
            continue;
        // Smallest value in this group strictly above v.
        addr::CounterValue candidate;
        if (grp.start > v)
            candidate = grp.start;
        else if (v < grp.start + cfg_.group_size - 1)
            candidate = v + 1;
        else
            continue;
        if (!best || candidate < *best)
            best = candidate;
    }
    return best;
}

addr::CounterValue
MemoTable::maxInTable() const
{
    addr::CounterValue m = 0;
    for (const Group &grp : groups_)
        if (grp.valid && grp.domain == active_)
            m = std::max(m, grp.start + cfg_.group_size - 1);
    return m;
}

unsigned
MemoTable::validGroupsOf(std::uint32_t d) const
{
    unsigned n = 0;
    for (const Group &grp : groups_)
        n += (grp.valid && grp.domain == d) ? 1 : 0;
    return n;
}

unsigned
MemoTable::validGroups() const
{
    unsigned n = 0;
    for (const Group &grp : groups_)
        n += grp.valid ? 1 : 0;
    return n;
}

void
MemoTable::insertGroup(addr::CounterValue start)
{
    // A domain at its quota evicts its own LFU group: the hot tenant
    // churns its own memoized range instead of taking over the table.
    const bool quota_bound =
        cfg_.domains > 1 && cfg_.quota_groups > 0 &&
        validGroupsOf(active_) >= cfg_.quota_groups;

    // Find the LFU victim among current groups (invalid slots first).
    std::size_t victim = 0;
    std::uint64_t best = ~0ULL;
    bool found_invalid = false;
    bool found_victim = false;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        if (quota_bound) {
            if (groups_[g].valid && groups_[g].domain == active_ &&
                groups_[g].freq < best) {
                best = groups_[g].freq;
                victim = g;
                found_victim = true;
            }
            continue;
        }
        if (!groups_[g].valid) {
            victim = g;
            found_invalid = true;
            found_victim = true;
            break;
        }
        if (groups_[g].freq < best) {
            best = groups_[g].freq;
            victim = g;
            found_victim = true;
        }
    }
    if (!found_victim)
        return; // quota of zero own groups cannot happen; defensive
    if (!found_invalid && groups_[victim].valid) {
        // Push the evicted group onto the shadow list (LRU shadow drops).
        std::rotate(shadows_.rbegin(), shadows_.rbegin() + 1,
                    shadows_.rend());
        shadows_[0] = groups_[victim];
    }
    groups_[victim] = {start, 0, true, active_};
    protected_start_ = DomainValue{start, active_};
}

void
MemoTable::endOfEpoch()
{
    // Pool current + shadow groups, keep the protected insertion, then
    // fill with the hottest remainder; leftovers become the new shadows.
    std::vector<Group> pool;
    pool.reserve(groups_.size() + shadows_.size());
    for (const Group &g : groups_)
        if (g.valid)
            pool.push_back(g);
    for (const Group &g : shadows_)
        if (g.valid)
            pool.push_back(g);

    std::stable_sort(pool.begin(), pool.end(),
                     [](const Group &a, const Group &b) {
                         return a.freq > b.freq;
                     });

    // Two groups are "the same" only within a domain: tenants may
    // legitimately memoize the same counter range under different keys.
    const auto same = [](const Group &a, const Group &b) {
        return a.start == b.start && a.domain == b.domain;
    };

    std::vector<Group> selected;
    selected.reserve(cfg_.groups);
    if (protected_start_) {
        const auto it = std::find_if(
            pool.begin(), pool.end(), [&](const Group &g) {
                return g.start == protected_start_->v &&
                       g.domain == protected_start_->domain;
            });
        if (it != pool.end()) {
            selected.push_back(*it);
            pool.erase(it);
        }
    }
    for (const Group &g : pool) {
        if (selected.size() >= cfg_.groups)
            break;
        // Skip duplicates (a group can appear in both lists after
        // re-insertion of an evicted start value).
        const bool dup = std::any_of(
            selected.begin(), selected.end(),
            [&](const Group &s) { return same(s, g); });
        if (!dup)
            selected.push_back(g);
    }

    // Whatever did not make the cut becomes the new shadow set (hottest
    // first, capped at shadow capacity).
    std::vector<Group> leftover;
    for (const Group &g : pool) {
        const bool kept = std::any_of(
            selected.begin(), selected.end(),
            [&](const Group &s) { return same(s, g); });
        if (!kept)
            leftover.push_back(g);
    }

    groups_.assign(cfg_.groups, Group());
    std::copy(selected.begin(), selected.end(), groups_.begin());
    shadows_.assign(cfg_.shadow_groups, Group());
    std::copy(leftover.begin(),
              leftover.begin() +
                  std::min<std::size_t>(leftover.size(),
                                        cfg_.shadow_groups),
              shadows_.begin());

    // Age frequencies so LFU reflects recent epochs, not ancient history.
    for (Group &g : groups_)
        g.freq /= 2;
    for (Group &g : shadows_)
        g.freq /= 2;
    protected_start_.reset();
    // Reselection re-derives every memoized pad from scratch, so any
    // quarantined values are honest again from here on.
    quarantine_.clear();
}

bool
MemoTable::quarantineValue(addr::CounterValue v)
{
    bool dropped = false;
    const int g = findGroup(v);
    if (g >= 0) {
        Group &grp = groups_[static_cast<std::size_t>(g)];
        if (protected_start_ && protected_start_->v == grp.start &&
            protected_start_->domain == grp.domain)
            protected_start_.reset();
        grp = Group(); // invalidate; no shadow push for a poisoned group
        dropped = true;
    }
    const DomainValue dv{v, active_};
    const auto it = std::find(recent_.begin(), recent_.end(), dv);
    if (it != recent_.end()) {
        recent_.erase(it);
        dropped = true;
    }
    if (!isQuarantined(v))
        quarantine_.push_back(dv);
    return dropped;
}

bool
MemoTable::isQuarantined(addr::CounterValue v) const
{
    return std::find(quarantine_.begin(), quarantine_.end(),
                     DomainValue{v, active_}) != quarantine_.end();
}

std::vector<addr::CounterValue>
MemoTable::groupStarts() const
{
    std::vector<addr::CounterValue> out;
    for (const Group &g : groups_)
        if (g.valid)
            out.push_back(g.start);
    return out;
}

std::vector<addr::CounterValue>
MemoTable::memoizedValues() const
{
    std::vector<addr::CounterValue> out;
    for (const Group &g : groups_)
        if (g.valid)
            for (unsigned i = 0; i < cfg_.group_size; ++i)
                out.push_back(g.start + i);
    for (const DomainValue &r : recent_)
        out.push_back(r.v);
    return out;
}

} // namespace rmcc::core
