#include "core/update_policy.hpp"

namespace rmcc::core
{

UpdatePolicy::UpdatePolicy(MemoTable &table, TrafficBudget &budget,
                           bool enabled, bool allow_far_relevel)
    : table_(table), budget_(budget), enabled_(enabled),
      allow_far_relevel_(allow_far_relevel)
{
}

std::optional<addr::CounterValue>
UpdatePolicy::memoTarget(const ctr::CounterScheme &scheme,
                         std::uint64_t idx) const
{
    const addr::CounterValue cur = scheme.read(idx);
    auto target = table_.nearestAbove(cur);
    if (!target)
        return std::nullopt;
    if (!scheme.encodable(idx, *target)) {
        // The jump rebases the whole block to at least blockMax; aim the
        // relevel at a memoized value above that so the shared new value
        // is itself memoized ("relevels ... to the nearest higher counter
        // value in the table", Sec IV-C2).
        const addr::CounterValue bmax = scheme.blockMax(idx);
        if (const auto above = table_.nearestAbove(bmax))
            target = above;
    }
    return target;
}

UpdateOutcome
UpdatePolicy::onWrite(ctr::CounterScheme &scheme, std::uint64_t idx)
{
    const addr::CounterValue cur = scheme.read(idx);
    const addr::CounterValue baseline = cur + 1;
    const bool baseline_overflows = !scheme.encodable(idx, baseline);

    auto finish = [&](ctr::WriteResult r, bool memo,
                      std::uint64_t overhead) {
        UpdateOutcome out;
        out.value = r.new_value;
        out.used_memo_target = memo;
        out.overflow = r.overflow;
        out.reencrypt_blocks = r.reencrypt_blocks;
        out.overhead_accesses = overhead;
        return out;
    };

    if (!enabled_)
        return finish(scheme.write(idx, baseline), false, 0);

    const auto target = table_.nearestAbove(cur);
    if (!target || *target == baseline) {
        // No memoized value above, or the baseline increment already
        // lands on the next memoized value (the common case for groups
        // of consecutive values, Sec IV-C2).
        const bool memo = target.has_value();
        return finish(scheme.write(idx, baseline), memo, 0);
    }

    if (scheme.cheaplyEncodable(idx, *target)) {
        // Free jump: the target sits in the block's dense encoding range.
        return finish(scheme.write(idx, *target), true, 0);
    }

    // Far jump: instead of stranding one counter beyond the dense range
    // (which burns exception capacity and pushes later baseline writes
    // into overflow), relevel the whole block onto the memoized ladder.
    // The full re-encryption of every covered entity is charged to the
    // budget; when the baseline write was itself about to overflow, the
    // relevel costs nothing extra (the re-encryption was coming anyway),
    // per Sec IV-C2.
    const auto relevel_target =
        allow_far_relevel_ ? table_.nearestAbove(scheme.blockMax(idx))
                           : std::nullopt;
    if (relevel_target) {
        const std::uint64_t cost = 2ULL * scheme.coverage();
        if (baseline_overflows || budget_.trySpend(cost)) {
            const ctr::WriteResult r =
                scheme.relevelBlock(idx, *relevel_target);
            UpdateOutcome out =
                finish(r, true, baseline_overflows ? 0 : cost);
            out.overflow = baseline_overflows;
            return out;
        }
    }

    // Budget dry (or nothing to relevel to): baseline update, including
    // its natural overflow behaviour.
    return finish(scheme.write(idx, baseline), false, 0);
}

std::optional<UpdateOutcome>
UpdatePolicy::onReadMiss(ctr::CounterScheme &scheme, std::uint64_t idx)
{
    if (!enabled_ || !allow_far_relevel_)
        return std::nullopt;
    // Relevel the whole counter block to the nearest memoized value above
    // its maximum ("relevels the counter values of an overflowing page to
    // the nearest higher counter value in the table", Sec IV-C2): one
    // budgeted relevel converges all covered counters at once and leaves
    // the block in the compact all-equal encoding, instead of
    // fragmenting it with single far-drifted minors.
    const auto target = table_.nearestAbove(scheme.blockMax(idx));
    if (!target)
        return std::nullopt;
    const std::uint64_t cost = 2ULL * scheme.coverage();
    if (!budget_.trySpend(cost))
        return std::nullopt;

    ++read_updates_;
    const ctr::WriteResult r = scheme.relevelBlock(idx, *target);
    UpdateOutcome out;
    out.value = r.new_value;
    out.used_memo_target = true;
    out.overflow = false;
    out.reencrypt_blocks = r.reencrypt_blocks;
    out.overhead_accesses = cost;
    return out;
}

} // namespace rmcc::core
