/**
 * @file
 * The RMCC memoization table (paper Fig 9).
 *
 * 128 entries organized as 16 Memoized Counter Value Groups of eight
 * consecutive counter values each.  Each group carries a use-frequency
 * counter (incremented whenever one of its values decrypts/verifies a
 * read).  The 16 most recently evicted groups keep shadow frequency
 * counters, like shadow tags in cache-replacement studies, and up to 16
 * most-recently-used individual counter values falling under evicted
 * groups stay memoized (Sec IV-C4).  At the end of each 1 M-access epoch
 * the 15 hottest of the 32 tracked groups (plus any group inserted during
 * the epoch, which is protected) are re-memoized.
 */
#ifndef RMCC_CORE_MEMO_TABLE_HPP
#define RMCC_CORE_MEMO_TABLE_HPP

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "address/types.hpp"

namespace rmcc::core
{

/** Sizing knobs of one memoization table. */
struct MemoConfig
{
    unsigned groups = 16;        //!< Memoized Counter Value Groups.
    unsigned group_size = 8;     //!< Consecutive values per group.
    unsigned shadow_groups = 16; //!< Recently evicted groups tracked.
    unsigned recent_values = 16; //!< MRU evicted-group values memoized.

    /**
     * Tenant key/counter domains sharing this table.  1 (default) is the
     * single-tenant paper configuration and is bit-identical to the
     * pre-tenancy table; >1 tags every group with its owning domain and
     * restricts lookups/updates to the active domain, so one tenant's
     * counter values can never decrypt under another tenant's groups.
     */
    std::uint32_t domains = 1;

    /**
     * Per-domain cap on valid groups (0 = uncapped).  Only meaningful
     * with domains > 1: a domain at its quota evicts its own LFU group
     * instead of another tenant's, bounding hot-tenant table takeover.
     */
    unsigned quota_groups = 0;

    /** Total memoized value entries (128 in the paper). */
    unsigned entries() const { return groups * group_size; }
};

/** Kind of memoization-table hit for a looked-up counter value. */
enum class MemoHit
{
    GroupHit,  //!< Value inside a memoized group.
    RecentHit, //!< Value among the MRU evicted-group values.
    Miss,      //!< Not memoized; AES must run from scratch.
};

/**
 * One level's memoization table.
 */
class MemoTable
{
  public:
    explicit MemoTable(const MemoConfig &cfg = MemoConfig());

    const MemoConfig &config() const { return cfg_; }

    /**
     * Select the tenant domain subsequent calls operate in.  A no-op in
     * the single-domain configuration (domain 0 is the only one); with
     * domains > 1 the engine calls this before every table operation
     * with the domain the touched counter entity belongs to.
     */
    void setActiveDomain(std::uint32_t d) { active_ = d; }

    /** Domain subsequent operations act in. */
    std::uint32_t activeDomain() const { return active_; }

    /** Number of valid groups owned by one domain. */
    unsigned validGroupsOf(std::uint32_t d) const;

    /**
     * Look up the counter value used to decrypt/verify a read; updates
     * group/shadow frequencies and the MRU evicted-value list.
     */
    MemoHit lookupRead(addr::CounterValue v);

    /** Pure query: is v currently memoized (group or recent value)? */
    bool contains(addr::CounterValue v) const;

    /** Pure query: is v inside a memoized group? */
    bool inGroups(addr::CounterValue v) const;

    /**
     * Smallest memoized *group* value strictly greater than v — the
     * target of memoization-aware counter update.  The MRU evicted values
     * are deliberately excluded: their composition changes with every
     * access, so the update policy does not chase them (Sec IV-C4).
     */
    std::optional<addr::CounterValue>
    nearestAbove(addr::CounterValue v) const;

    /** Largest memoized group value (Max-Counter-in-Table); 0 if empty. */
    addr::CounterValue maxInTable() const;

    /** Number of valid groups. */
    unsigned validGroups() const;

    /**
     * Insert a new group starting at `start`, replacing the least
     * frequently used current group (which moves to the shadow list).
     * The inserted group is protected from the next end-of-epoch
     * reselection.
     */
    void insertGroup(addr::CounterValue start);

    /**
     * End-of-epoch reselection: keep the protected group (if any) plus
     * the hottest remaining groups out of current+shadow, then age all
     * frequency counters.
     */
    void endOfEpoch();

    /**
     * Quarantine a memoized counter value whose derived pad is suspect
     * (recovery path, Sec IV-D threat handling): invalidate the covering
     * group without shadow credit — a poisoned group must not win
     * re-insertion on its history — drop any MRU-recent copy, and refuse
     * lookups of v until the next end-of-epoch reselection rebuilds the
     * table from honestly recomputed pads.
     * @return true when v was actually memoized (something was dropped).
     */
    bool quarantineValue(addr::CounterValue v);

    /** Is v currently refused by quarantine? */
    bool isQuarantined(addr::CounterValue v) const;

    /** Values currently under quarantine (cleared at end of epoch). */
    unsigned quarantinedCount() const
    {
        return static_cast<unsigned>(quarantine_.size());
    }

    /** All current group start values (tests/diagnostics). */
    std::vector<addr::CounterValue> groupStarts() const;

    /**
     * Every counter value currently memoized: all values of all valid
     * groups plus the MRU evicted-group values.  Used by the fault
     * injector to aim memo-entry perturbations at live entries, and by
     * tests asserting table contents across overflow edges.
     */
    std::vector<addr::CounterValue> memoizedValues() const;

    /** Lifetime hit counters. */
    std::uint64_t groupHits() const { return group_hits_; }
    std::uint64_t recentHits() const { return recent_hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t lookups() const
    {
        return group_hits_ + recent_hits_ + misses_;
    }

  private:
    struct Group
    {
        addr::CounterValue start = 0;
        std::uint64_t freq = 0;
        bool valid = false;
        std::uint32_t domain = 0;
    };

    /** A counter value tagged with its owning domain. */
    struct DomainValue
    {
        addr::CounterValue v = 0;
        std::uint32_t domain = 0;
        bool operator==(const DomainValue &o) const
        {
            return v == o.v && domain == o.domain;
        }
    };

    /** Group (current) containing v in the active domain, or -1. */
    int findGroup(addr::CounterValue v) const;
    /** Shadow group containing v in the active domain, or -1. */
    int findShadow(addr::CounterValue v) const;

    MemoConfig cfg_;
    std::uint32_t active_ = 0;
    std::vector<Group> groups_;
    std::vector<Group> shadows_;
    std::deque<DomainValue> recent_; // front = most recent
    std::vector<DomainValue> quarantine_; // empty almost always
    std::optional<DomainValue> protected_start_;
    std::uint64_t group_hits_ = 0, recent_hits_ = 0, misses_ = 0;
};

} // namespace rmcc::core

#endif // RMCC_CORE_MEMO_TABLE_HPP
