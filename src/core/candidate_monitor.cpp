#include "core/candidate_monitor.hpp"

namespace rmcc::core
{

CandidateMonitor::CandidateMonitor(const MonitorConfig &cfg) : cfg_(cfg)
{
    arm(0);
}

void
CandidateMonitor::arm(addr::CounterValue max_in_table)
{
    armed_max_ = max_in_table;
    candidates_.clear();
    // X+1+8i for i = 0..16: fine-grained rungs just above the table.
    for (unsigned i = 0; i <= 16; ++i)
        candidates_.push_back(max_in_table + 1 + 8ULL * i);
    // X+129+2^j for j = 4..17: exponential rungs reaching ~131 K above.
    for (unsigned j = 4; j <= 17; ++j)
        candidates_.push_back(max_in_table + 129 + (1ULL << j));
    below_counts_.assign(candidates_.size(), 0);
    total_reads_ = 0;
    high_reads_ = 0;
}

void
CandidateMonitor::observeRead(addr::CounterValue v)
{
    ++total_reads_;
    if (v > armed_max_)
        ++high_reads_;
    for (std::size_t c = 0; c < candidates_.size(); ++c)
        below_counts_[c] += v < candidates_[c] ? 1 : 0;
}

std::optional<addr::CounterValue>
CandidateMonitor::takeSelection()
{
    if (high_reads_ < cfg_.trigger_reads)
        return std::nullopt;
    const double goal =
        cfg_.coverage_goal * static_cast<double>(total_reads_);
    // Smallest candidate covering >= 98% of observed reads; if even the
    // top rung falls short, take the top rung (the ladder re-arms higher
    // next time and ratchets up).
    for (std::size_t c = 0; c < candidates_.size(); ++c)
        if (static_cast<double>(below_counts_[c]) >= goal)
            return candidates_[c];
    return candidates_.back();
}

} // namespace rmcc::core
