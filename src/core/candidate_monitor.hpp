/**
 * @file
 * High-counter candidate monitor (paper Sec IV-C3).
 *
 * When counters climb above Max-Counter-in-Table, memoization-aware update
 * has nothing to aim at.  The monitor watches a ladder of candidate start
 * values above the current table maximum X — X+1+8i (i = 0..16) and
 * X+129+2^j (j = 4..17) — counts, per candidate, how many read requests
 * used a counter value *below* it, and, once 2 K reads with counters above
 * X have accumulated, selects the smallest candidate that covers at least
 * 98% of the reads observed since arming.
 */
#ifndef RMCC_CORE_CANDIDATE_MONITOR_HPP
#define RMCC_CORE_CANDIDATE_MONITOR_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "address/types.hpp"

namespace rmcc::core
{

/** Tuning knobs of the candidate monitor. */
struct MonitorConfig
{
    std::uint64_t trigger_reads = 2048; //!< "many (e.g., 2K)" high reads.
    double coverage_goal = 0.98;        //!< The 98% requirement.
};

/**
 * Per-level candidate monitor.
 */
class CandidateMonitor
{
  public:
    explicit CandidateMonitor(const MonitorConfig &cfg = MonitorConfig());

    /**
     * Re-arm around a new table maximum X; resets counts and recomputes
     * the candidate ladder.
     */
    void arm(addr::CounterValue max_in_table);

    /** Observe the counter value used by one read request. */
    void observeRead(addr::CounterValue v);

    /**
     * If the 2 K trigger has fired, return the selected start value for a
     * new Memoized Counter Value Group (and expect the caller to re-arm).
     * The caller must still apply the Observed-System-Max cap.
     */
    std::optional<addr::CounterValue> takeSelection();

    /** Candidate ladder for the current arming (tests). */
    const std::vector<addr::CounterValue> &candidates() const
    {
        return candidates_;
    }

    /** Reads observed above the armed maximum since arming. */
    std::uint64_t highReads() const { return high_reads_; }

  private:
    MonitorConfig cfg_;
    addr::CounterValue armed_max_ = 0;
    std::vector<addr::CounterValue> candidates_;
    std::vector<std::uint64_t> below_counts_;
    std::uint64_t total_reads_ = 0;
    std::uint64_t high_reads_ = 0;
};

} // namespace rmcc::core

#endif // RMCC_CORE_CANDIDATE_MONITOR_HPP
