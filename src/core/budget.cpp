#include "core/budget.hpp"

namespace rmcc::core
{

TrafficBudget::TrafficBudget(const BudgetConfig &cfg)
    : cfg_(cfg), pool_(cfg.initial_pool_accesses)
{
}

bool
TrafficBudget::onAccess()
{
    ++total_accesses_;
    // Continuous accrual: identical cumulative allowance at every epoch
    // boundary to the paper's replenish-at-epoch-start + carry-over rule,
    // but usable smoothly within short simulation windows.
    pool_ += cfg_.fraction;
    if (++in_epoch_ < cfg_.epoch_accesses)
        return false;
    in_epoch_ = 0;
    ++epochs_;
    return true;
}

bool
TrafficBudget::trySpend(std::uint64_t cost)
{
    if (!canSpend(cost))
        return false;
    pool_ -= static_cast<double>(cost);
    total_spent_ += cost;
    return true;
}

void
TrafficBudget::forceSpend(std::uint64_t cost)
{
    pool_ -= static_cast<double>(cost);
    if (pool_ < 0.0)
        pool_ = 0.0;
    total_spent_ += cost;
}

} // namespace rmcc::core
