/**
 * @file
 * Flat logical-counter storage shared by all counter-scheme models.
 *
 * Schemes store every counter as a widened 64-bit logical value (the
 * functional truth) and separately model whether a value transition is
 * *encodable* in their 64 B block layout; unencodable transitions are
 * overflows that cost re-encryption traffic.
 */
#ifndef RMCC_COUNTERS_STORE_HPP
#define RMCC_COUNTERS_STORE_HPP

#include <cstdint>
#include <vector>

#include "address/types.hpp"

namespace rmcc::ctr
{

/**
 * Dense array of logical counter values with observed-max tracking.
 *
 * The observed maximum feeds RMCC's Observed-System-Max register
 * (Sec IV-D2), which caps how high new Memoized Counter Value Groups may
 * start.
 */
class CounterStore
{
  public:
    /** n counters, all zero. */
    explicit CounterStore(std::uint64_t n);

    /** Current logical value of counter idx. */
    addr::CounterValue get(std::uint64_t idx) const { return values_[idx]; }

    /** Dense value array, for bulk scans that must not pay a virtual
     *  call per counter (stats reporting). */
    const addr::CounterValue *data() const { return values_.data(); }

    /** Overwrite counter idx; tracks the observed maximum. */
    void set(std::uint64_t idx, addr::CounterValue v);

    /** Number of counters. */
    std::uint64_t size() const
    {
        return static_cast<std::uint64_t>(values_.size());
    }

    /** Largest value ever stored. */
    addr::CounterValue observedMax() const { return observed_max_; }

  private:
    std::vector<addr::CounterValue> values_;
    addr::CounterValue observed_max_ = 0;
};

} // namespace rmcc::ctr

#endif // RMCC_COUNTERS_STORE_HPP
