#include "counters/sc64.hpp"

#include <algorithm>
#include <cassert>

namespace rmcc::ctr
{

Sc64Scheme::Sc64Scheme(std::uint64_t n)
    : store_(n), majors_((n + kCoverage - 1) / kCoverage, 0)
{
}

addr::CounterValue
Sc64Scheme::read(std::uint64_t idx) const
{
    return store_.get(idx);
}

bool
Sc64Scheme::encodable(std::uint64_t idx,
                      addr::CounterValue new_value) const
{
    const addr::CounterValue major = majors_[blockOf(idx)];
    return new_value >= major && new_value - major < kMinorRange;
}

WriteResult
Sc64Scheme::write(std::uint64_t idx, addr::CounterValue new_value)
{
    assert(new_value > store_.get(idx));
    const addr::CounterBlockId cb = blockOf(idx);
    if (encodable(idx, new_value)) {
        store_.set(idx, new_value);
        return {new_value, false, 0};
    }
    // Overflow: relevel every encoded value in the block to the maximum
    // (paper Sec II-D), which zeroes all minors under a new major; every
    // covered entity's ciphertext must be recomputed with the new value.
    const std::uint64_t first = cb * kCoverage;
    const std::uint64_t last =
        std::min(first + kCoverage, store_.size());
    addr::CounterValue vmax = new_value;
    for (std::uint64_t i = first; i < last; ++i)
        vmax = std::max(vmax, store_.get(i));
    majors_[cb] = vmax;
    for (std::uint64_t i = first; i < last; ++i)
        store_.set(i, vmax);
    ++overflows_;
    return {vmax, true, last - first};
}

WriteResult
Sc64Scheme::relevelBlock(std::uint64_t idx, addr::CounterValue target)
{
    const addr::CounterBlockId cb = blockOf(idx);
    const std::uint64_t first = cb * kCoverage;
    const std::uint64_t last =
        std::min<std::uint64_t>(first + kCoverage, store_.size());
    assert(target > blockMax(idx));
    majors_[cb] = target;
    for (std::uint64_t i = first; i < last; ++i)
        store_.set(i, target);
    return {target, false, last - first};
}

void
Sc64Scheme::randomInit(util::Rng &rng, addr::CounterValue mean)
{
    for (addr::CounterBlockId cb = 0; cb < majors_.size(); ++cb) {
        const addr::CounterValue major =
            rng.nextInRange(mean / 2, mean + mean / 2);
        majors_[cb] = major;
        const std::uint64_t first = cb * kCoverage;
        const std::uint64_t last =
            std::min(first + kCoverage, store_.size());
        for (std::uint64_t i = first; i < last; ++i)
            store_.set(i, major + rng.nextBelow(kMinorRange));
    }
}

} // namespace rmcc::ctr
