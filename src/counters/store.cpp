#include "counters/store.hpp"

#include <algorithm>

namespace rmcc::ctr
{

CounterStore::CounterStore(std::uint64_t n) : values_(n, 0)
{
}

void
CounterStore::set(std::uint64_t idx, addr::CounterValue v)
{
    values_[idx] = v;
    observed_max_ = std::max(observed_max_, v);
}

} // namespace rmcc::ctr
