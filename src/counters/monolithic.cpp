#include "counters/monolithic.hpp"

#include <cassert>

#include "crypto/otp.hpp"

namespace rmcc::ctr
{

MonolithicScheme::MonolithicScheme(std::uint64_t n) : store_(n)
{
}

addr::CounterValue
MonolithicScheme::read(std::uint64_t idx) const
{
    return store_.get(idx);
}

WriteResult
MonolithicScheme::write(std::uint64_t idx, addr::CounterValue new_value)
{
    assert(new_value > store_.get(idx));
    assert(new_value <= crypto::kCounterMask);
    store_.set(idx, new_value);
    return {new_value, false, 0};
}

bool
MonolithicScheme::encodable(std::uint64_t idx,
                            addr::CounterValue new_value) const
{
    (void)idx;
    return new_value <= crypto::kCounterMask;
}

WriteResult
MonolithicScheme::relevelBlock(std::uint64_t idx, addr::CounterValue target)
{
    const std::uint64_t first = blockOf(idx) * kCoverage;
    const std::uint64_t last =
        std::min<std::uint64_t>(first + kCoverage, store_.size());
    assert(target > blockMax(idx));
    for (std::uint64_t i = first; i < last; ++i)
        store_.set(i, target);
    return {target, false, last - first};
}

void
MonolithicScheme::randomInit(util::Rng &rng, addr::CounterValue mean)
{
    for (std::uint64_t i = 0; i < store_.size(); ++i)
        store_.set(i, rng.nextInRange(mean / 2, mean + mean / 2));
}

} // namespace rmcc::ctr
