#include "counters/tree.hpp"

#include <algorithm>

#include "counters/monolithic.hpp"
#include "counters/morphable.hpp"
#include "counters/sc64.hpp"
#include "util/log.hpp"

namespace rmcc::ctr
{

std::unique_ptr<CounterScheme>
makeScheme(SchemeKind kind, std::uint64_t n)
{
    switch (kind) {
      case SchemeKind::SgxMonolithic:
        return std::make_unique<MonolithicScheme>(n);
      case SchemeKind::SC64:
        return std::make_unique<Sc64Scheme>(n);
      case SchemeKind::Morphable:
        return std::make_unique<MorphableScheme>(n);
    }
    util::panic("unknown scheme kind");
}

std::string
schemeKindName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::SgxMonolithic:
        return "SGX-monolithic";
      case SchemeKind::SC64:
        return "SC-64";
      case SchemeKind::Morphable:
        return "Morphable";
    }
    return "?";
}

unsigned
schemeCoverage(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::SgxMonolithic:
        return MonolithicScheme::kCoverage;
      case SchemeKind::SC64:
        return Sc64Scheme::kCoverage;
      case SchemeKind::Morphable:
        return MorphableScheme::kCoverage;
    }
    return 0;
}

IntegrityTree::IntegrityTree(SchemeKind kind, std::uint64_t data_blocks)
    : kind_(kind),
      layout_(data_blocks * addr::kBlockSize, schemeCoverage(kind),
              schemeCoverage(kind))
{
    // Level 0 covers data blocks; each higher level covers the counter
    // blocks of the level below, until at most eight blocks remain — the
    // counters of those top blocks live in on-chip root registers (see
    // MemoryLayout).
    std::uint64_t entities = data_blocks;
    while (true) {
        schemes_.push_back(makeScheme(kind, entities));
        const std::uint64_t blocks =
            (entities + schemeCoverage(kind) - 1) / schemeCoverage(kind);
        if (blocks <= 8)
            break;
        entities = blocks;
    }
}

std::uint64_t
IntegrityTree::blocksAt(unsigned k) const
{
    const std::uint64_t entities = schemes_[k]->entities();
    const unsigned cov = schemes_[k]->coverage();
    return (entities + cov - 1) / cov;
}

void
IntegrityTree::randomInit(util::Rng &rng, addr::CounterValue mean)
{
    for (auto &s : schemes_)
        s->randomInit(rng, mean);
}

addr::CounterValue
IntegrityTree::observedMax() const
{
    addr::CounterValue m = 0;
    for (const auto &s : schemes_)
        m = std::max(m, s->observedMax());
    return m;
}

std::uint64_t
IntegrityTree::totalOverflows() const
{
    std::uint64_t n = 0;
    for (const auto &s : schemes_)
        n += s->overflows();
    return n;
}

} // namespace rmcc::ctr
