/**
 * @file
 * Morphable Counters (Saileshwar et al., MICRO'18): 128-entity coverage per
 * 64 B counter block with a *morphing* encoding.
 *
 * Layout modeled here (the original's exact bit layout is not public; see
 * DESIGN.md item 5.2): a 56-bit shared major, an 8-bit format tag, and a
 * 448-bit payload that morphs between five formats:
 *
 *   Uniform3  - 128 x 3-bit minors (384 b)          offsets < 8
 *   Uniform3X - 128 x 3-bit minors + 3 exception
 *               slots (7-bit index + 13-bit minor)  < 8 except 3 < 8 Ki
 *   Bitmap6   - 128 b bitmap + 51 x 6-bit minors    <= 51 non-zero, < 64
 *   Bitmap7   - 128 b bitmap + 42 x 7-bit minors    <= 42 non-zero, < 128
 *   Bitmap8   - 128 b bitmap + 36 x 8-bit minors    <= 36 non-zero, < 256
 *   Index16   - 16 x (7-bit index + 16-bit minor)   <= 16 non-zero, < 64 Ki
 *
 * (The 51/42/36 non-zero-minor counts are the variable non-power-of-2
 * decode widths the paper charges 3 ns for.)  A write first tries to morph
 * to any fitting format; if none fits, the block rebases: every encoded
 * value is raised to the block maximum and all 128 covered entities are
 * re-encrypted.
 */
#ifndef RMCC_COUNTERS_MORPHABLE_HPP
#define RMCC_COUNTERS_MORPHABLE_HPP

#include <array>
#include <optional>
#include <vector>

#include "counters/scheme.hpp"
#include "util/bitvec.hpp"

namespace rmcc::ctr
{

/** Identifier of a morphable payload format. */
enum class MorphFormat : std::uint8_t
{
    Uniform3 = 0,
    Uniform3X = 1,
    Bitmap6 = 2,
    Bitmap7 = 3,
    Bitmap8 = 4,
    Index16 = 5,
};

/** Static description of one format. */
struct MorphFormatInfo
{
    MorphFormat id;
    unsigned max_nonzero;   //!< Max entities with non-zero minors.
    unsigned minor_bits;    //!< Width of each stored minor.
    bool bitmap;            //!< Payload starts with a 128-bit bitmap.
    unsigned payload_bits;  //!< Total payload size; must be <= 448.
};

/** All formats in preference order (cheapest decode first). */
const std::array<MorphFormatInfo, 6> &morphFormats();

/** Morphable counter scheme. */
class MorphableScheme : public CounterScheme
{
  public:
    /** Entities per counter block. */
    static constexpr unsigned kCoverage = 128;

    explicit MorphableScheme(std::uint64_t n);

    std::string name() const override { return "Morphable"; }
    unsigned coverage() const override { return kCoverage; }
    double decodeLatencyNs() const override { return 3.0; }

    addr::CounterValue read(std::uint64_t idx) const override;
    WriteResult write(std::uint64_t idx,
                      addr::CounterValue new_value) override;
    bool encodable(std::uint64_t idx,
                   addr::CounterValue new_value) const override;
    WriteResult relevelBlock(std::uint64_t idx,
                             addr::CounterValue target) override;
    bool cheaplyEncodable(std::uint64_t idx,
                          addr::CounterValue v) const override;
    std::uint64_t entities() const override { return store_.size(); }
    const addr::CounterValue *rawValues() const override
    {
        return store_.data();
    }
    addr::CounterValue observedMax() const override
    {
        return store_.observedMax();
    }
    addr::CounterValue blockMax(std::uint64_t idx) const override;
    void randomInit(util::Rng &rng, addr::CounterValue mean) override;

    /** Current format of a block (stats/tests). */
    MorphFormat format(addr::CounterBlockId cb) const
    {
        return formats_[cb];
    }

    /** Major counter of a block. */
    addr::CounterValue major(addr::CounterBlockId cb) const
    {
        return majors_[cb];
    }

    /** Number of format-morph events (no traffic cost). */
    std::uint64_t morphs() const { return morphs_; }

    /**
     * Pack a block's current contents into its literal 512-bit layout;
     * proves the encoding really fits in 64 B (used by tests).
     */
    util::BitVec512 packBlock(addr::CounterBlockId cb) const;

    /**
     * Decode a packed block back into (major, offsets); inverse of
     * packBlock for round-trip tests.
     */
    static std::pair<addr::CounterValue, std::vector<std::uint64_t>>
    unpackBlock(const util::BitVec512 &bits);

    /**
     * Smallest fitting format for a set of minor offsets, or nullopt if
     * only a rebase can accommodate them.
     */
    static std::optional<MorphFormat>
    chooseFormat(const std::vector<std::uint64_t> &offsets);

    /**
     * Force the AVX2 block-scan kernels on/off (tests cross-check the
     * vector kernels against the scalar oracle).  Process-wide, like
     * cache::SetAssocCache::setSimdProbes.
     */
    static void setSimdScan(bool on);

    /** Are the AVX2 block scans active (CPUID-seeded by default)? */
    static bool simdScanActive();

  private:
    /**
     * Per-block digest of the offset distribution — exactly the facts the
     * format predicates test.  Lets the common write (major unchanged,
     * offsets only grow) pick its format in O(1) instead of re-scanning
     * all 128 offsets; any path that moves the major recomputes it.
     */
    struct BlockSummary
    {
        std::uint64_t max_off = 0; //!< Largest offset in the block.
        std::uint16_t nonzero = 0; //!< Entities with non-zero offsets.
        std::uint16_t ge8 = 0;     //!< Entities with offsets >= 8.
    };

    /** First fitting format for a summarized offset set; O(1). */
    static std::optional<MorphFormat>
    formatFromSummary(const BlockSummary &s);

    /** Recompute a block's summary from its stored values. */
    void refreshSummary(addr::CounterBlockId cb);

    /** chooseFormat over a raw offsets array (allocation-free core). */
    static std::optional<MorphFormat>
    chooseFormat(const std::uint64_t *offsets, std::size_t n);

    /** Offsets (value - major) of every entity in a block. */
    std::vector<std::uint64_t> blockOffsets(addr::CounterBlockId cb) const;

    /**
     * Format that fits after sliding the major to the block minimum with
     * entity idx set to new_value; nullopt if none.
     */
    std::optional<MorphFormat>
    shiftedFormat(addr::CounterBlockId cb, std::uint64_t idx,
                  addr::CounterValue new_value) const;

    /** First/last+1 entity of a block. */
    std::pair<std::uint64_t, std::uint64_t>
    blockRange(addr::CounterBlockId cb) const;

    CounterStore store_;
    std::vector<addr::CounterValue> majors_;
    std::vector<MorphFormat> formats_;
    std::vector<BlockSummary> summaries_;
    std::uint64_t morphs_ = 0;
};

} // namespace rmcc::ctr

#endif // RMCC_COUNTERS_MORPHABLE_HPP
