/**
 * @file
 * Abstract write-counter scheme: the contract shared by SGX monolithic
 * counters, SC-64 split counters, and Morphable Counters.
 *
 * A scheme manages the counters of N *entities* (data blocks when used at
 * integrity-tree level 0; counter blocks when used at higher levels),
 * groups them into 64 B counter blocks with a scheme-specific coverage,
 * and reports overflows — writes whose new value cannot be encoded in the
 * block's layout and that therefore force re-encrypting every covered
 * entity (paper Sec II-D).
 */
#ifndef RMCC_COUNTERS_SCHEME_HPP
#define RMCC_COUNTERS_SCHEME_HPP

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "address/types.hpp"
#include "counters/store.hpp"
#include "util/rng.hpp"

namespace rmcc::ctr
{

/** Outcome of setting one counter. */
struct WriteResult
{
    //! The value the entity's counter ended up with (>= requested).
    addr::CounterValue new_value = 0;
    //! True if the write forced a full-block rebase (overflow).
    bool overflow = false;
    //! Covered entities that must be re-encrypted due to the rebase.
    std::uint64_t reencrypt_blocks = 0;
};

/** Available scheme implementations. */
enum class SchemeKind
{
    SgxMonolithic, //!< 8 x 56-bit counters per block (SGX).
    SC64,          //!< 64-bit major + 64 x 7-bit minors (ISCA'06).
    Morphable,     //!< 128-entity coverage, morphing formats (MICRO'18).
};

/**
 * Base class for counter schemes.
 */
class CounterScheme
{
  public:
    virtual ~CounterScheme() = default;

    /** Scheme display name. */
    virtual std::string name() const = 0;

    /** Entities covered by one 64 B counter block. */
    virtual unsigned coverage() const = 0;

    /** Extra latency to extract a counter from a fetched block, ns. */
    virtual double decodeLatencyNs() const = 0;

    /** Current logical counter of an entity. */
    virtual addr::CounterValue read(std::uint64_t idx) const = 0;

    /**
     * Set the counter of idx to new_value.
     *
     * @pre new_value > read(idx): counters only increase (counter-mode
     *      security requires never reusing a value for the same entity).
     */
    virtual WriteResult write(std::uint64_t idx,
                              addr::CounterValue new_value) = 0;

    /** Would new_value encode into idx's block without a rebase? */
    virtual bool encodable(std::uint64_t idx,
                           addr::CounterValue new_value) const = 0;

    /**
     * Relevel every counter in idx's block to `target` (which must exceed
     * blockMax(idx)), as a deliberate whole-block update: all covered
     * entities must be re-encrypted.  Used by RMCC's read-triggered
     * memoization-aware update (Sec IV-C1/C2).
     */
    virtual WriteResult relevelBlock(std::uint64_t idx,
                                     addr::CounterValue target) = 0;

    /**
     * Encodable without degrading the block's encoding headroom: a value
     * the update policy may jump to for free.  Split schemes with
     * morphing formats override this to the dense uniform range; far
     * jumps outside it must relevel the whole block instead (otherwise
     * they burn exception/bitmap capacity and push later baseline writes
     * into overflow).
     */
    virtual bool
    cheaplyEncodable(std::uint64_t idx, addr::CounterValue v) const
    {
        return encodable(idx, v);
    }

    /** Number of entities. */
    virtual std::uint64_t entities() const = 0;

    /**
     * Raw dense array of all entities() logical values when the scheme
     * stores them contiguously; nullptr otherwise.  Bulk scans (stats
     * reporting) use it to skip one virtual read() per counter.
     */
    virtual const addr::CounterValue *rawValues() const { return nullptr; }

    /** Largest counter value ever stored (feeds Observed-System-Max). */
    virtual addr::CounterValue observedMax() const = 0;

    /**
     * Randomize counter state, emulating the paper's write-intensive
     * initialization benchmark (Sec V, Lifetime Characterization): block
     * majors land uniformly in [mean/2, 3*mean/2), minors take small
     * in-range offsets, as repeated releveling leaves them.
     */
    virtual void randomInit(util::Rng &rng, addr::CounterValue mean) = 0;

    /** Counter block holding entity idx's counter. */
    addr::CounterBlockId blockOf(std::uint64_t idx) const
    {
        return idx / coverage();
    }

    /**
     * Largest counter value in idx's block; an overflow relevels the whole
     * block to (at least) this value, so the update policy aims rebase
     * targets at the nearest memoized value above it.  Virtual so schemes
     * with direct storage can skip the per-entity virtual read() calls.
     */
    virtual addr::CounterValue
    blockMax(std::uint64_t idx) const
    {
        const std::uint64_t first = blockOf(idx) * coverage();
        const std::uint64_t last =
            std::min<std::uint64_t>(first + coverage(), entities());
        addr::CounterValue m = 0;
        for (std::uint64_t i = first; i < last; ++i)
            m = std::max(m, read(i));
        return m;
    }

    /**
     * Logical values of every counter in block cb, in entity order (the
     * last block of a level may cover fewer than coverage() entities).
     * This is the content the fault layer serializes and MACs: the
     * authenticated payload of the stored counter block.
     */
    std::vector<addr::CounterValue>
    blockValues(addr::CounterBlockId cb) const
    {
        const std::uint64_t first = cb * coverage();
        const std::uint64_t last =
            std::min<std::uint64_t>(first + coverage(), entities());
        std::vector<addr::CounterValue> vals;
        vals.reserve(last - first);
        for (std::uint64_t i = first; i < last; ++i)
            vals.push_back(read(i));
        return vals;
    }

    /** Total overflow events so far. */
    std::uint64_t overflows() const { return overflows_; }

  protected:
    std::uint64_t overflows_ = 0;
};

/** Create a scheme of the given kind for n entities. */
std::unique_ptr<CounterScheme> makeScheme(SchemeKind kind, std::uint64_t n);

/** Human-readable scheme-kind name. */
std::string schemeKindName(SchemeKind kind);

/** L0 counter-block coverage of a scheme kind (8 / 64 / 128). */
unsigned schemeCoverage(SchemeKind kind);

/**
 * Widest L0 coverage across all schemes (Morphable's 128 blocks = 8 KB).
 * Tenant arena sizing aligns to this so no counter block of any scheme
 * can span two tenants' physical frames.
 */
inline constexpr unsigned kMaxSchemeCoverage = 128;

} // namespace rmcc::ctr

#endif // RMCC_COUNTERS_SCHEME_HPP
