/**
 * @file
 * SC-64 split counters (Yan et al., ISCA'06): each 64 B counter block holds
 * a 64-bit major counter shared by 64 entities plus one dedicated 7-bit
 * minor per entity (64*7 + 64 = 512 bits).  A minor overflow relevels the
 * whole block: every encoded value is raised to the block's maximum and all
 * covered entities must be re-encrypted.
 */
#ifndef RMCC_COUNTERS_SC64_HPP
#define RMCC_COUNTERS_SC64_HPP

#include <vector>

#include "counters/scheme.hpp"

namespace rmcc::ctr
{

/** SC-64 split-counter scheme. */
class Sc64Scheme : public CounterScheme
{
  public:
    /** Entities per counter block. */
    static constexpr unsigned kCoverage = 64;
    /** Minor counter width in bits. */
    static constexpr unsigned kMinorBits = 7;
    /** Exclusive minor bound. */
    static constexpr addr::CounterValue kMinorRange = 1ULL << kMinorBits;

    explicit Sc64Scheme(std::uint64_t n);

    std::string name() const override { return "SC-64"; }
    unsigned coverage() const override { return kCoverage; }
    double decodeLatencyNs() const override { return 1.0; }

    addr::CounterValue read(std::uint64_t idx) const override;
    WriteResult write(std::uint64_t idx,
                      addr::CounterValue new_value) override;
    bool encodable(std::uint64_t idx,
                   addr::CounterValue new_value) const override;
    WriteResult relevelBlock(std::uint64_t idx,
                             addr::CounterValue target) override;
    std::uint64_t entities() const override { return store_.size(); }
    const addr::CounterValue *rawValues() const override
    {
        return store_.data();
    }
    addr::CounterValue observedMax() const override
    {
        return store_.observedMax();
    }
    void randomInit(util::Rng &rng, addr::CounterValue mean) override;

    /** Major counter of a block (tests/diagnostics). */
    addr::CounterValue major(addr::CounterBlockId cb) const
    {
        return majors_[cb];
    }

  private:
    CounterStore store_;
    std::vector<addr::CounterValue> majors_;
};

} // namespace rmcc::ctr

#endif // RMCC_COUNTERS_SC64_HPP
