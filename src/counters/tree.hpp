/**
 * @file
 * The integrity tree: a stack of counter schemes where level k's counters
 * protect level k-1's counter blocks (level 0 protects data blocks).
 *
 * A data write increments the block's L0 counter.  When an L0 counter
 * block is written back to memory, its own counter — an L1 counter —
 * increments, and so on up to the on-chip root.  Morphable Counters use a
 * four-level tree for 128 GB (paper Sec V); the depth here follows from
 * the protected size and the scheme's coverage.
 */
#ifndef RMCC_COUNTERS_TREE_HPP
#define RMCC_COUNTERS_TREE_HPP

#include <memory>
#include <vector>

#include "address/layout.hpp"
#include "counters/scheme.hpp"

namespace rmcc::ctr
{

/**
 * Multi-level counter tree over a protected data region.
 */
class IntegrityTree
{
  public:
    /**
     * @param kind counter scheme used at every level.
     * @param data_blocks number of protected data blocks.
     */
    IntegrityTree(SchemeKind kind, std::uint64_t data_blocks);

    /** Scheme kind in use. */
    SchemeKind kind() const { return kind_; }

    /** Number of in-memory levels (the root above them stays on-chip). */
    unsigned levels() const
    {
        return static_cast<unsigned>(schemes_.size());
    }

    /**
     * Counter scheme of a level.  Level 0 entities are data blocks; level
     * k>0 entities are level k-1 counter blocks.
     */
    CounterScheme &level(unsigned k) { return *schemes_[k]; }
    const CounterScheme &level(unsigned k) const { return *schemes_[k]; }

    /** Number of counter blocks at a level. */
    std::uint64_t blocksAt(unsigned k) const;

    /** Physical address of counter block cb at level k. */
    addr::Addr blockAddr(unsigned k, addr::CounterBlockId cb) const
    {
        return layout_.counterBlockAddr(k, cb);
    }

    /** The address-space layout (data + counter regions). */
    const addr::MemoryLayout &layout() const { return layout_; }

    /** Randomize all levels' counters around the given mean. */
    void randomInit(util::Rng &rng, addr::CounterValue mean);

    /** Largest counter value across all levels. */
    addr::CounterValue observedMax() const;

    /** Total overflow events across all levels. */
    std::uint64_t totalOverflows() const;

    /** Overflow events at one level (observability probe). */
    std::uint64_t overflowsAt(unsigned k) const
    {
        return schemes_[k]->overflows();
    }

  private:
    SchemeKind kind_;
    addr::MemoryLayout layout_;
    std::vector<std::unique_ptr<CounterScheme>> schemes_;
};

} // namespace rmcc::ctr

#endif // RMCC_COUNTERS_TREE_HPP
