#include "counters/morphable.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "crypto/dispatch.hpp"
#include "util/log.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace rmcc::ctr
{

/** Exception slots in the Uniform3X format. */
constexpr unsigned kUniform3xSlots = 3;

const std::array<MorphFormatInfo, 6> &
morphFormats()
{
    static const std::array<MorphFormatInfo, 6> kFormats = {{
        {MorphFormat::Uniform3, 128, 3, false, 128 * 3},
        {MorphFormat::Uniform3X, 128, 3, false,
         128 * 3 + kUniform3xSlots * (7 + 13)},
        {MorphFormat::Bitmap6, 51, 6, true, 128 + 51 * 6},
        {MorphFormat::Bitmap7, 42, 7, true, 128 + 42 * 7},
        {MorphFormat::Bitmap8, 36, 8, true, 128 + 36 * 8},
        {MorphFormat::Index16, 16, 16, false, 16 * (7 + 16)},
    }};
    static_assert(128 * 3 <= 448 && 128 * 3 + 3 * 20 <= 448 &&
                      128 + 51 * 6 <= 448 && 128 + 42 * 7 <= 448 &&
                      128 + 36 * 8 <= 448 && 16 * 23 <= 448,
                  "all payloads must fit the 448-bit budget");
    return kFormats;
}

namespace
{

const MorphFormatInfo &
infoOf(MorphFormat f)
{
    return morphFormats()[static_cast<std::size_t>(f)];
}

/** Does a set of offsets fit one format? */
bool
fits(const MorphFormatInfo &fmt, const std::uint64_t *offsets,
     std::size_t n)
{
    if (fmt.id == MorphFormat::Uniform3X) {
        // Uniform 3-bit minors with up to kUniform3xSlots far-drifted
        // exceptions below 2^13.
        unsigned exceptions = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t o = offsets[i];
            if (o >= (1ULL << 13))
                return false;
            if (o >= 8 && ++exceptions > kUniform3xSlots)
                return false;
        }
        return true;
    }
    const std::uint64_t limit = 1ULL << fmt.minor_bits;
    unsigned nonzero = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t o = offsets[i];
        if (o >= limit)
            return false;
        nonzero += o != 0;
    }
    if (fmt.id == MorphFormat::Uniform3)
        return true; // all minors stored, any may be non-zero
    return nonzero <= fmt.max_nonzero;
}

/** Bit offsets of the packed layout. */
constexpr std::size_t kMajorBits = 56;
constexpr std::size_t kFormatBits = 8;
constexpr std::size_t kPayloadBase = kMajorBits + kFormatBits;

// ---------------------------------------------------------------------------
// Block-scan kernels.  Every encodability decision reduces to two scans
// over a block's contiguous logical values: a summary (max offset above
// the major, non-zero count, >=8 count — exactly the facts the format
// predicates test) and a min/max.  The AVX2 variants process four
// counters per vector; counter values sit far below 2^63, so signed
// 64-bit compares agree with the unsigned scalar ones.  Same gating
// discipline as the cache way scans: CPUID-seeded process-wide toggle,
// scalar kernels kept as the oracle (cross-checked in tests).
// ---------------------------------------------------------------------------

//! -1 unresolved, else 0/1; atomic so suite-runner threads race benignly.
std::atomic<int> g_simd_scan{-1};

/** Accumulate (max_off, nonzero, ge8) over values[0..n) minus major. */
void
summarizeSpanScalar(const addr::CounterValue *values, std::size_t n,
                    addr::CounterValue major, std::uint64_t &max_off,
                    unsigned &nonzero, unsigned &ge8)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t off = values[i] - major;
        max_off = std::max(max_off, off);
        nonzero += off != 0;
        ge8 += off >= 8;
    }
}

/** Fold values[0..n) into the running [lo, hi] envelope. */
void
minmaxSpanScalar(const addr::CounterValue *values, std::size_t n,
                 addr::CounterValue &lo, addr::CounterValue &hi)
{
    for (std::size_t i = 0; i < n; ++i) {
        lo = std::min(lo, values[i]);
        hi = std::max(hi, values[i]);
    }
}

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("avx2"))) void
summarizeSpanAvx2(const addr::CounterValue *values, std::size_t n,
                  addr::CounterValue major, std::uint64_t &max_off,
                  unsigned &nonzero, unsigned &ge8)
{
    const __m256i maj =
        _mm256_set1_epi64x(static_cast<long long>(major));
    const __m256i seven = _mm256_set1_epi64x(7);
    const __m256i zero = _mm256_setzero_si256();
    __m256i vmax = zero;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(values + i));
        const __m256i off = _mm256_sub_epi64(x, maj);
        const __m256i gt = _mm256_cmpgt_epi64(off, vmax);
        vmax = _mm256_blendv_epi8(vmax, off, gt);
        const int zmask = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(off, zero)));
        nonzero += 4u - static_cast<unsigned>(
                            __builtin_popcount(static_cast<unsigned>(
                                zmask)));
        const int gmask = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpgt_epi64(off, seven)));
        ge8 += static_cast<unsigned>(
            __builtin_popcount(static_cast<unsigned>(gmask)));
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), vmax);
    for (int k = 0; k < 4; ++k)
        max_off = std::max(max_off, lanes[k]);
    summarizeSpanScalar(values + i, n - i, major, max_off, nonzero, ge8);
}

__attribute__((target("avx2"))) void
minmaxSpanAvx2(const addr::CounterValue *values, std::size_t n,
               addr::CounterValue &lo, addr::CounterValue &hi)
{
    if (n < 4) {
        minmaxSpanScalar(values, n, lo, hi);
        return;
    }
    __m256i vlo = _mm256_set1_epi64x(static_cast<long long>(lo));
    __m256i vhi = _mm256_set1_epi64x(static_cast<long long>(hi));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(values + i));
        vlo = _mm256_blendv_epi8(vlo, x, _mm256_cmpgt_epi64(vlo, x));
        vhi = _mm256_blendv_epi8(vhi, x, _mm256_cmpgt_epi64(x, vhi));
    }
    alignas(32) std::uint64_t los[4], his[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(los), vlo);
    _mm256_store_si256(reinterpret_cast<__m256i *>(his), vhi);
    for (int k = 0; k < 4; ++k) {
        lo = std::min(lo, los[k]);
        hi = std::max(hi, his[k]);
    }
    minmaxSpanScalar(values + i, n - i, lo, hi);
}

#endif // x86

/** Dispatching summarize: AVX2 when enabled, scalar oracle otherwise. */
void
summarizeSpan(const addr::CounterValue *values, std::size_t n,
              addr::CounterValue major, std::uint64_t &max_off,
              unsigned &nonzero, unsigned &ge8)
{
#if defined(__x86_64__) || defined(__i386__)
    if (MorphableScheme::simdScanActive()) {
        summarizeSpanAvx2(values, n, major, max_off, nonzero, ge8);
        return;
    }
#endif
    summarizeSpanScalar(values, n, major, max_off, nonzero, ge8);
}

/** Dispatching min/max envelope fold. */
void
minmaxSpan(const addr::CounterValue *values, std::size_t n,
           addr::CounterValue &lo, addr::CounterValue &hi)
{
#if defined(__x86_64__) || defined(__i386__)
    if (MorphableScheme::simdScanActive()) {
        minmaxSpanAvx2(values, n, lo, hi);
        return;
    }
#endif
    minmaxSpanScalar(values, n, lo, hi);
}

} // namespace

void
MorphableScheme::setSimdScan(bool on)
{
    g_simd_scan.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool
MorphableScheme::simdScanActive()
{
    int v = g_simd_scan.load(std::memory_order_relaxed);
    if (v < 0) {
        v = crypto::detectCpuFeatures().avx2 ? 1 : 0;
        g_simd_scan.store(v, std::memory_order_relaxed);
    }
    return v == 1;
}

std::optional<MorphFormat>
MorphableScheme::chooseFormat(const std::uint64_t *offsets, std::size_t n)
{
    for (const auto &fmt : morphFormats())
        if (fits(fmt, offsets, n))
            return fmt.id;
    return std::nullopt;
}

std::optional<MorphFormat>
MorphableScheme::chooseFormat(const std::vector<std::uint64_t> &offsets)
{
    return chooseFormat(offsets.data(), offsets.size());
}

std::optional<MorphFormat>
MorphableScheme::formatFromSummary(const BlockSummary &s)
{
    // Mirrors fits(): each predicate only needs the block's max offset,
    // non-zero count, and >=8 count, all of which the summary carries.
    for (const auto &fmt : morphFormats()) {
        if (fmt.id == MorphFormat::Uniform3X) {
            if (s.max_off < (1ULL << 13) && s.ge8 <= kUniform3xSlots)
                return fmt.id;
            continue;
        }
        if (s.max_off >= (1ULL << fmt.minor_bits))
            continue;
        if (fmt.id == MorphFormat::Uniform3 || s.nonzero <= fmt.max_nonzero)
            return fmt.id;
    }
    return std::nullopt;
}

void
MorphableScheme::refreshSummary(addr::CounterBlockId cb)
{
    const auto [first, last] = blockRange(cb);
    std::uint64_t max_off = 0;
    unsigned nonzero = 0, ge8 = 0;
    summarizeSpan(store_.data() + first, last - first, majors_[cb],
                  max_off, nonzero, ge8);
    BlockSummary s;
    s.max_off = max_off;
    s.nonzero = static_cast<std::uint16_t>(nonzero);
    s.ge8 = static_cast<std::uint16_t>(ge8);
    summaries_[cb] = s;
}

MorphableScheme::MorphableScheme(std::uint64_t n)
    : store_(n),
      majors_((n + kCoverage - 1) / kCoverage, 0),
      formats_(majors_.size(), MorphFormat::Uniform3),
      summaries_(majors_.size())
{
}

std::pair<std::uint64_t, std::uint64_t>
MorphableScheme::blockRange(addr::CounterBlockId cb) const
{
    const std::uint64_t first = cb * kCoverage;
    return {first, std::min(first + kCoverage, store_.size())};
}

std::vector<std::uint64_t>
MorphableScheme::blockOffsets(addr::CounterBlockId cb) const
{
    const auto [first, last] = blockRange(cb);
    std::vector<std::uint64_t> offsets(last - first);
    for (std::uint64_t i = first; i < last; ++i)
        offsets[i - first] = store_.get(i) - majors_[cb];
    return offsets;
}

addr::CounterValue
MorphableScheme::blockMax(std::uint64_t idx) const
{
    const addr::CounterBlockId cb = blockOf(idx);
    return majors_[cb] + summaries_[cb].max_off;
}

addr::CounterValue
MorphableScheme::read(std::uint64_t idx) const
{
    return store_.get(idx);
}

bool
MorphableScheme::encodable(std::uint64_t idx,
                           addr::CounterValue new_value) const
{
    const addr::CounterBlockId cb = blockOf(idx);
    const addr::CounterValue major = majors_[cb];
    if (new_value >= major) {
        const addr::CounterValue cur = store_.get(idx);
        if (new_value >= cur) {
            // A non-decreasing candidate can only grow the summary, so
            // the updated digest is exact and no offset scan is needed.
            BlockSummary s = summaries_[cb];
            const std::uint64_t old_off = cur - major;
            const std::uint64_t new_off = new_value - major;
            s.max_off = std::max(s.max_off, new_off);
            s.nonzero += old_off == 0 && new_off != 0;
            s.ge8 += old_off < 8 && new_off >= 8;
            if (formatFromSummary(s).has_value())
                return true;
        } else {
            // Decreasing candidate: summarize everyone else and merge
            // the changed offset — equivalent to re-deriving the offsets
            // and running the format predicates over them (they only
            // consult the summary facts).
            const auto [first, last] = blockRange(cb);
            const addr::CounterValue *base = store_.data();
            const std::uint64_t new_off = new_value - major;
            std::uint64_t max_off = new_off;
            unsigned nonzero = new_off != 0, ge8 = new_off >= 8;
            summarizeSpan(base + first, idx - first, major, max_off,
                          nonzero, ge8);
            summarizeSpan(base + idx + 1, last - idx - 1, major, max_off,
                          nonzero, ge8);
            BlockSummary s;
            s.max_off = max_off;
            s.nonzero = static_cast<std::uint16_t>(nonzero);
            s.ge8 = static_cast<std::uint16_t>(ge8);
            if (formatFromSummary(s).has_value())
                return true;
        }
    }
    // Min-shift re-encode: sliding the major up to the block minimum
    // changes no counter value, so it costs no re-encryption.
    return shiftedFormat(cb, idx, new_value).has_value();
}

std::optional<MorphFormat>
MorphableScheme::shiftedFormat(addr::CounterBlockId cb, std::uint64_t idx,
                               addr::CounterValue new_value) const
{
    const auto [first, last] = blockRange(cb);
    const addr::CounterValue *base = store_.data();
    // Candidate major = min over the block with idx set to new_value,
    // found by folding the two spans around idx.
    addr::CounterValue vmin = new_value, hi_unused = new_value;
    minmaxSpan(base + first, idx - first, vmin, hi_unused);
    minmaxSpan(base + idx + 1, last - idx - 1, vmin, hi_unused);
    // Summary of the shifted offsets (idx replaced by new_value); the
    // format predicates need nothing more.
    const std::uint64_t new_off = new_value - vmin;
    std::uint64_t max_off = new_off;
    unsigned nonzero = new_off != 0, ge8 = new_off >= 8;
    summarizeSpan(base + first, idx - first, vmin, max_off, nonzero, ge8);
    summarizeSpan(base + idx + 1, last - idx - 1, vmin, max_off, nonzero,
                  ge8);
    BlockSummary s;
    s.max_off = max_off;
    s.nonzero = static_cast<std::uint16_t>(nonzero);
    s.ge8 = static_cast<std::uint16_t>(ge8);
    return formatFromSummary(s);
}

WriteResult
MorphableScheme::write(std::uint64_t idx, addr::CounterValue new_value)
{
    assert(new_value > store_.get(idx));
    const addr::CounterBlockId cb = blockOf(idx);
    const addr::CounterValue major = majors_[cb];
    if (new_value >= major) {
        // Counter writes are monotone, so the one changed offset only
        // grows and the block digest updates in O(1) — no 128-offset
        // rescan on the dense path.
        BlockSummary s = summaries_[cb];
        const std::uint64_t old_off = store_.get(idx) - major;
        const std::uint64_t new_off = new_value - major;
        s.max_off = std::max(s.max_off, new_off);
        s.nonzero += old_off == 0;
        s.ge8 += old_off < 8 && new_off >= 8;
        if (const auto fmt = formatFromSummary(s)) {
            if (*fmt != formats_[cb]) {
                ++morphs_;
                formats_[cb] = *fmt;
            }
            summaries_[cb] = s;
            store_.set(idx, new_value);
            return {new_value, false, 0};
        }
    }
    // Min-shift re-encode: when the whole block has drifted upward, the
    // major slides up to the block minimum.  No counter value changes,
    // so no covered entity needs re-encryption.
    if (const auto fmt = shiftedFormat(cb, idx, new_value)) {
        store_.set(idx, new_value);
        const auto [first, last] = blockRange(cb);
        addr::CounterValue vmin = store_.get(first);
        addr::CounterValue hi_unused = vmin;
        minmaxSpan(store_.data() + first, last - first, vmin, hi_unused);
        majors_[cb] = vmin;
        formats_[cb] = *fmt;
        ++morphs_;
        refreshSummary(cb);
        return {new_value, false, 0};
    }
    // Rebase: relevel every value to the block maximum; all covered
    // entities must be re-encrypted with the new shared value.
    const auto [first, last] = blockRange(cb);
    addr::CounterValue vmax = new_value, lo_unused = new_value;
    minmaxSpan(store_.data() + first, last - first, lo_unused, vmax);
    majors_[cb] = vmax;
    for (std::uint64_t i = first; i < last; ++i)
        store_.set(i, vmax);
    formats_[cb] = MorphFormat::Uniform3;
    summaries_[cb] = BlockSummary{};
    ++overflows_;
    return {vmax, true, last - first};
}

bool
MorphableScheme::cheaplyEncodable(std::uint64_t idx,
                                  addr::CounterValue v) const
{
    // Cheap = the block stays in (possibly min-shifted) dense uniform
    // range: no exception or bitmap capacity is consumed.
    const addr::CounterBlockId cb = blockOf(idx);
    const auto [first, last] = blockRange(cb);
    // Summary fast path: when another entity still sits at the major
    // (so the others' minimum is known) and idx does not hold the block
    // maximum (so the others' maximum is known), the min/max over
    // "everyone but idx, plus v" follows from the digest alone.
    const BlockSummary &s = summaries_[cb];
    const addr::CounterValue major = majors_[cb];
    const std::uint64_t off_idx = store_.get(idx) - major;
    const std::uint64_t n = last - first;
    const std::uint64_t nonzero_others = s.nonzero - (off_idx != 0);
    if (nonzero_others < n - 1 && off_idx < s.max_off) {
        const addr::CounterValue vmin = std::min(v, major);
        const addr::CounterValue vmax =
            std::max(v, major + s.max_off);
        return vmax - vmin < 8;
    }
    addr::CounterValue vmin = v, vmax = v;
    const addr::CounterValue *base = store_.data();
    minmaxSpan(base + first, idx - first, vmin, vmax);
    minmaxSpan(base + idx + 1, last - idx - 1, vmin, vmax);
    return vmax - vmin < 8;
}

WriteResult
MorphableScheme::relevelBlock(std::uint64_t idx, addr::CounterValue target)
{
    const addr::CounterBlockId cb = blockOf(idx);
    const auto [first, last] = blockRange(cb);
    assert(target > blockMax(idx));
    majors_[cb] = target;
    for (std::uint64_t i = first; i < last; ++i)
        store_.set(i, target);
    formats_[cb] = MorphFormat::Uniform3;
    summaries_[cb] = BlockSummary{};
    return {target, false, last - first};
}

void
MorphableScheme::randomInit(util::Rng &rng, addr::CounterValue mean)
{
    for (addr::CounterBlockId cb = 0; cb < majors_.size(); ++cb) {
        const addr::CounterValue major =
            rng.nextInRange(mean / 2, mean + mean / 2);
        majors_[cb] = major;
        const auto [first, last] = blockRange(cb);
        // Releveling is the fixed point of split-counter dynamics: a block
        // that has overflowed holds all-equal values, and subsequent
        // writes add only a small drift.  Model exactly that: most blocks
        // sit at their major with a handful of small drifted minors, and
        // a few carry larger bitmap-encoded offsets.
        std::vector<std::uint64_t> offsets(last - first, 0);
        const unsigned drifted =
            static_cast<unsigned>(rng.nextBelow(12));
        for (unsigned k = 0; k < drifted; ++k)
            offsets[rng.nextBelow(offsets.size())] = 1 + rng.nextBelow(7);
        if (rng.nextBool(0.1)) {
            const unsigned big = 1 + static_cast<unsigned>(
                                         rng.nextBelow(8));
            for (unsigned k = 0; k < big; ++k)
                offsets[rng.nextBelow(offsets.size())] =
                    8 + rng.nextBelow(56);
        }
        const auto fmt = chooseFormat(offsets);
        if (!fmt)
            util::panic("randomInit produced unencodable morphable block");
        formats_[cb] = *fmt;
        for (std::uint64_t i = first; i < last; ++i)
            store_.set(i, major + offsets[i - first]);
        refreshSummary(cb);
    }
}

util::BitVec512
MorphableScheme::packBlock(addr::CounterBlockId cb) const
{
    util::BitVec512 bits;
    bits.set(0, kMajorBits, majors_[cb]);
    bits.set(kMajorBits, kFormatBits,
             static_cast<std::uint64_t>(formats_[cb]));
    const auto offsets = blockOffsets(cb);
    const MorphFormatInfo &fmt = infoOf(formats_[cb]);

    if (fmt.id == MorphFormat::Uniform3) {
        for (std::size_t i = 0; i < offsets.size(); ++i)
            bits.set(kPayloadBase + i * fmt.minor_bits, fmt.minor_bits,
                     offsets[i]);
        return bits;
    }
    if (fmt.id == MorphFormat::Uniform3X) {
        // Uniform 3-bit array; offsets >= 8 go to exception slots and
        // leave zero in their uniform position.
        const std::size_t exc_base = kPayloadBase + 128 * 3;
        std::size_t slot = 0;
        for (std::size_t i = 0; i < offsets.size(); ++i) {
            if (offsets[i] < 8) {
                bits.set(kPayloadBase + i * 3, 3, offsets[i]);
            } else {
                const std::size_t base = exc_base + slot * 20;
                bits.set(base, 7, i);
                bits.set(base + 7, 13, offsets[i]);
                ++slot;
            }
        }
        assert(slot <= kUniform3xSlots);
        return bits;
    }
    if (fmt.bitmap) {
        std::size_t slot = 0;
        const std::size_t minors_base = kPayloadBase + kCoverage;
        for (std::size_t i = 0; i < offsets.size(); ++i) {
            if (offsets[i] == 0)
                continue;
            bits.set(kPayloadBase + i, 1, 1);
            bits.set(minors_base + slot * fmt.minor_bits, fmt.minor_bits,
                     offsets[i]);
            ++slot;
        }
        assert(slot <= fmt.max_nonzero);
        return bits;
    }
    // Index16: (7-bit index, 16-bit minor) pairs; unused slots zero.
    std::size_t slot = 0;
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        if (offsets[i] == 0)
            continue;
        const std::size_t base = kPayloadBase + slot * 23;
        bits.set(base, 7, i);
        bits.set(base + 7, 16, offsets[i]);
        ++slot;
    }
    assert(slot <= fmt.max_nonzero);
    return bits;
}

std::pair<addr::CounterValue, std::vector<std::uint64_t>>
MorphableScheme::unpackBlock(const util::BitVec512 &bits)
{
    const addr::CounterValue major = bits.get(0, kMajorBits);
    const auto fmt_id =
        static_cast<MorphFormat>(bits.get(kMajorBits, kFormatBits));
    const MorphFormatInfo &fmt = infoOf(fmt_id);
    std::vector<std::uint64_t> offsets(kCoverage, 0);

    if (fmt.id == MorphFormat::Uniform3) {
        for (std::size_t i = 0; i < offsets.size(); ++i)
            offsets[i] =
                bits.get(kPayloadBase + i * fmt.minor_bits, fmt.minor_bits);
    } else if (fmt.id == MorphFormat::Uniform3X) {
        for (std::size_t i = 0; i < offsets.size(); ++i)
            offsets[i] = bits.get(kPayloadBase + i * 3, 3);
        const std::size_t exc_base = kPayloadBase + 128 * 3;
        for (std::size_t slot = 0; slot < kUniform3xSlots; ++slot) {
            const std::size_t base = exc_base + slot * 20;
            const std::uint64_t minor = bits.get(base + 7, 13);
            if (minor != 0)
                offsets[bits.get(base, 7)] = minor;
        }
    } else if (fmt.bitmap) {
        std::size_t slot = 0;
        const std::size_t minors_base = kPayloadBase + kCoverage;
        for (std::size_t i = 0; i < offsets.size(); ++i) {
            if (bits.get(kPayloadBase + i, 1)) {
                offsets[i] = bits.get(minors_base + slot * fmt.minor_bits,
                                      fmt.minor_bits);
                ++slot;
            }
        }
    } else {
        for (std::size_t slot = 0; slot < fmt.max_nonzero; ++slot) {
            const std::size_t base = kPayloadBase + slot * 23;
            const std::uint64_t minor = bits.get(base + 7, 16);
            if (minor != 0)
                offsets[bits.get(base, 7)] = minor;
        }
    }
    return {major, offsets};
}

} // namespace rmcc::ctr
