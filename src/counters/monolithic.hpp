/**
 * @file
 * SGX-style monolithic counters: eight dedicated 56-bit counters per 64 B
 * counter block.  Coverage is only eight entities, but counters never
 * overflow within a realistic lifetime (2^56 writebacks).
 */
#ifndef RMCC_COUNTERS_MONOLITHIC_HPP
#define RMCC_COUNTERS_MONOLITHIC_HPP

#include "counters/scheme.hpp"

namespace rmcc::ctr
{

/** Monolithic 56-bit-per-entity counter scheme. */
class MonolithicScheme : public CounterScheme
{
  public:
    /** Entities per 64 B block: 8 x 56-bit counters (+ padding). */
    static constexpr unsigned kCoverage = 8;

    explicit MonolithicScheme(std::uint64_t n);

    std::string name() const override { return "SGX-monolithic"; }
    unsigned coverage() const override { return kCoverage; }
    double decodeLatencyNs() const override { return 0.0; }

    addr::CounterValue read(std::uint64_t idx) const override;
    WriteResult write(std::uint64_t idx,
                      addr::CounterValue new_value) override;
    bool encodable(std::uint64_t idx,
                   addr::CounterValue new_value) const override;
    WriteResult relevelBlock(std::uint64_t idx,
                             addr::CounterValue target) override;
    std::uint64_t entities() const override { return store_.size(); }
    const addr::CounterValue *rawValues() const override
    {
        return store_.data();
    }
    addr::CounterValue observedMax() const override
    {
        return store_.observedMax();
    }
    void randomInit(util::Rng &rng, addr::CounterValue mean) override;

  private:
    CounterStore store_;
};

} // namespace rmcc::ctr

#endif // RMCC_COUNTERS_MONOLITHIC_HPP
