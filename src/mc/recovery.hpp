/**
 * @file
 * RecoveryPolicy: the self-healing state machine of the secure memory
 * controller.
 *
 * PR 2's DetectionOracle proved the modeled system *detects* corruption
 * (zero silent corruptions across the 12k-injection matrix); this layer
 * answers what the controller does *after* a detected MAC/tree mismatch,
 * and at what availability cost.  On a failed read check the SecureMc
 * escalates through three stages:
 *
 *   1. bounded re-fetch with exponential backoff — heals transient
 *      transfer faults (the stored cells are intact);
 *   2. counter reconstruction via an integrity-tree walk from the on-chip
 *      root — heals persistent counter/tree-node corruption (there is a
 *      redundant authenticated source to rebuild from);
 *   3. memo-table quarantine — a poisoned memoized pad is evicted from
 *      the RMCC table (with the Observed-System-Max monitor re-armed from
 *      the post-quarantine table, so the poison cannot have ratcheted any
 *      security threshold) and the read retried with an honestly
 *      recomputed pad.
 *
 * Data-ciphertext/MAC corruption that survives re-fetch is UNRECOVERABLE
 * by construction — there is no redundant copy of data — and the read is
 * refused, never served.  Under a sustained fault storm (detections per
 * sliding read window above a threshold) the policy enters DEGRADED mode:
 * memoization is disabled and every read pays a full verification charge
 * for a residency period, shrinking the attack/fault surface at a known
 * throughput cost.
 *
 * Everything here is off by default (`RMCC_RECOVERY=off`): the policy
 * object exists but active() is false, the read path takes one extra
 * predicted branch, and every fig03–fig22 CSV stays bit-identical.
 */
#ifndef RMCC_MC_RECOVERY_HPP
#define RMCC_MC_RECOVERY_HPP

#include <cstdint>

namespace rmcc::mc
{

/** RMCC_RECOVERY policy (strict-parsed). */
enum class RecoveryMode
{
    Off,   //!< Detection only; a failed check is terminal (default).
    Retry, //!< Bounded re-fetch with backoff; no reconstruction.
    Full,  //!< Re-fetch + tree-walk reconstruction + memo quarantine
           //!< + degraded mode under fault storms.
};

/** Display name of a mode (matches the env spelling). */
const char *recoveryModeName(RecoveryMode m);

/** Knobs of the recovery state machine. */
struct RecoveryConfig
{
    RecoveryMode mode = RecoveryMode::Off;
    unsigned max_refetch = 3;        //!< RMCC_RECOVERY_RETRIES.
    double refetch_backoff_ns = 40.0; //!< Initial backoff; doubles per try.
    //! Sliding detection window for storm sensing (reads).
    std::uint64_t storm_window_reads = 512;
    //! Detections within one window that trip degraded mode.  ~6% of the
    //! window: a moderate storm (1% of reads faulting) stays far below
    //! this, so degraded mode is reserved for genuine barrages.
    std::uint64_t storm_threshold = 32;
    //! Reads spent in degraded mode per entry (re-armed while storming).
    std::uint64_t degraded_residency_reads = 4096;
};

/**
 * Read RMCC_RECOVERY / RMCC_RECOVERY_RETRIES / RMCC_RECOVERY_STORM_WINDOW
 * / RMCC_RECOVERY_STORM_THRESHOLD / RMCC_RECOVERY_DEGRADED_READS with
 * strict parsing.
 * @throws std::runtime_error on malformed values (util::env semantics).
 */
RecoveryConfig recoveryConfigFromEnv();

/** Lifetime availability counters of one RecoveryPolicy. */
struct RecoveryStats
{
    std::uint64_t detections = 0;            //!< Failed read checks.
    std::uint64_t recovered_refetch = 0;     //!< Healed by stage 1.
    std::uint64_t recovered_reconstruct = 0; //!< Healed by stage 2.
    std::uint64_t recovered_quarantine = 0;  //!< Healed by stage 3.
    std::uint64_t unrecoverable = 0;         //!< Refused, never served.
    std::uint64_t refetch_attempts = 0;      //!< Total stage-1 tries.
    std::uint64_t values_quarantined = 0;    //!< Memo values evicted.
    std::uint64_t degraded_entries = 0;      //!< Degraded-mode entries.
    std::uint64_t degraded_reads = 0;        //!< Reads served degraded.

    /** Reads re-served after a detection (any stage). */
    std::uint64_t recovered() const
    {
        return recovered_refetch + recovered_reconstruct +
               recovered_quarantine;
    }

    /**
     * Mean time to repair, in read-equivalent operations: the failing
     * read itself plus its re-fetch attempts, averaged over detections
     * (0 when nothing was detected).
     */
    double mttrReads() const
    {
        return detections == 0
                   ? 0.0
                   : 1.0 + static_cast<double>(refetch_attempts) /
                               static_cast<double>(detections);
    }
};

/**
 * The storm/degraded-mode state machine.  Latency and healing actions
 * live in SecureMc::recoverRead(); this object owns the counters, the
 * sliding detection window, and degraded-mode residency.
 */
class RecoveryPolicy
{
  public:
    RecoveryPolicy() = default;
    explicit RecoveryPolicy(const RecoveryConfig &cfg) : cfg_(cfg) {}

    /** Is any recovery behaviour enabled? */
    bool active() const { return cfg_.mode != RecoveryMode::Off; }

    /** Are reconstruction/quarantine/degraded stages enabled? */
    bool full() const { return cfg_.mode == RecoveryMode::Full; }

    const RecoveryConfig &config() const { return cfg_; }

    /** Currently serving reads in degraded (memoization-off) mode? */
    bool degraded() const { return degraded_reads_left_ > 0; }

    /**
     * Account one secure read: slides the storm window and decays
     * degraded-mode residency.
     * @return true when this read ended the degraded residency (the
     *   caller may emit a DegradedExit instant).
     */
    bool onSecureRead();

    /**
     * Account one detected fault: bumps the window count and, in Full
     * mode, (re-)enters degraded mode when the storm threshold trips.
     * @return true when this detection newly entered degraded mode.
     */
    bool onDetection();

    RecoveryStats &stats() { return stats_; }
    const RecoveryStats &stats() const { return stats_; }

  private:
    RecoveryConfig cfg_;
    RecoveryStats stats_;
    std::uint64_t window_reads_ = 0;
    std::uint64_t window_detections_ = 0;
    std::uint64_t degraded_reads_left_ = 0;
};

} // namespace rmcc::mc

#endif // RMCC_MC_RECOVERY_HPP
