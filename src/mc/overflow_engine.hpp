/**
 * @file
 * Counter-overflow re-encryption engine (paper Sec V).
 *
 * A split-counter overflow forces re-encrypting every block the counter
 * block covers: each block is read, re-encrypted under the new counter,
 * and written back.  The paper allows at most two outstanding overflows —
 * the MC rejects LLC requests that would start a third — and drains
 * overflow traffic in the background a few 64 B requests at a time so it
 * cannot seize the read/write queue.
 */
#ifndef RMCC_MC_OVERFLOW_ENGINE_HPP
#define RMCC_MC_OVERFLOW_ENGINE_HPP

#include <cstdint>
#include <vector>

#include "address/types.hpp"
#include "dram/ddr4.hpp"

namespace rmcc::mc
{

/** Outcome of scheduling one overflow. */
struct OverflowIssue
{
    double stall_until_ns;  //!< Core stalls to here if a slot had to free.
    double drain_done_ns;   //!< When the re-encryption finishes.
    std::uint64_t accesses; //!< 64 B DRAM transfers generated (2/block).
};

/**
 * Background re-encryption engine with a two-overflow cap.
 */
class OverflowEngine
{
  public:
    /**
     * @param dram DRAM model to charge the re-encryption traffic to.
     * @param max_outstanding overflow slots (2 in the paper).
     */
    OverflowEngine(dram::Ddr4 &dram, unsigned max_outstanding = 2);

    /**
     * Schedule re-encryption of `blocks` blocks starting at base_addr.
     *
     * @param base_addr first covered block's physical address.
     * @param blocks covered blocks to read + rewrite.
     * @param now_ns current time.
     */
    OverflowIssue schedule(addr::Addr base_addr, std::uint64_t blocks,
                           double now_ns);

    /** Number of overflows scheduled. */
    std::uint64_t overflowCount() const { return count_; }

    /** Total 64 B accesses generated. */
    std::uint64_t totalAccesses() const { return accesses_; }

    /** Total core-visible stall time caused by the 2-outstanding cap. */
    double totalStallNs() const { return stall_ns_; }

  private:
    dram::Ddr4 &dram_;
    unsigned max_outstanding_;
    std::vector<double> in_flight_; // completion times
    std::uint64_t count_ = 0;
    std::uint64_t accesses_ = 0;
    double stall_ns_ = 0.0;
};

} // namespace rmcc::mc

#endif // RMCC_MC_OVERFLOW_ENGINE_HPP
