#include "mc/secure_mc.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "util/log.hpp"

namespace rmcc::mc
{

SecureMc::SecureMc(const McConfig &cfg, ctr::IntegrityTree &tree,
                   core::RmccEngine &engine, dram::Ddr4 &dram)
    : cfg_(cfg), tree_(tree), engine_(engine), dram_(dram),
      ctr_cache_("counter-cache", cfg.counter_cache_bytes,
                 cfg.counter_cache_assoc),
      ovf_(dram), recovery_(cfg.recovery)
{
    h_.dram_total = stats_.handle("dram.total");
    h_.dram_data_read = stats_.handle("dram.data_read");
    h_.dram_data_write = stats_.handle("dram.data_write");
    h_.dram_ctr_read = stats_.handle("dram.ctr_read");
    h_.dram_ctr_write = stats_.handle("dram.ctr_write");
    h_.dram_ovf0 = stats_.handle("dram.ovf0");
    h_.dram_ovf_hi = stats_.handle("dram.ovf_hi");
    h_.ctr_writebacks = stats_.handle("ctr.writebacks");
    h_.ovf_count = stats_.handle("ovf.count");
    h_.ovf_l0 = stats_.handle("ovf.l0");
    h_.ovf_hi = stats_.handle("ovf.hi");
    h_.rmcc_read_updates = stats_.handle("rmcc.read_updates");
    h_.rmcc_memo_write_updates = stats_.handle("rmcc.memo_write_updates");
    h_.mc_reads = stats_.handle("mc.reads");
    h_.mc_writes = stats_.handle("mc.writes");
    h_.lat_read_sum_ns = stats_.handle("lat.read_sum_ns");
    h_.ctr_l0_miss = stats_.handle("ctr.l0_miss");
    h_.ctr_hi_miss = stats_.handle("ctr.hi_miss");
    h_.ctr_l0_hit = stats_.handle("ctr.l0_hit");
    h_.memo_lookups_on_miss = stats_.handle("memo.l0_lookups_on_miss");
    h_.memo_hit_on_miss = stats_.handle("memo.l0_hit_on_miss");
    h_.memo_group_hit_on_miss = stats_.handle("memo.l0_group_hit_on_miss");
    h_.memo_recent_hit_on_miss =
        stats_.handle("memo.l0_recent_hit_on_miss");
    h_.memo_hit_all = stats_.handle("memo.l0_hit_all");
    h_.memo_lookups_all = stats_.handle("memo.l0_lookups_all");
    h_.memo_accelerated_misses = stats_.handle("memo.accelerated_misses");

    const unsigned levels = tree_.levels();
    if (levels > kMaxLevels)
        util::fatal("SecureMc: integrity tree has %u levels, max %u",
                    levels, kMaxLevels);
    for (unsigned k = 0; k < levels; ++k) {
        meta_[k].base = tree_.blockAddr(k, 0);
        meta_[k].end =
            meta_[k].base + tree_.blocksAt(k) * addr::kBlockSize;
        meta_[k].coverage = tree_.level(k).coverage();
        meta_[k].decode_ns = tree_.level(k).decodeLatencyNs();
        meta_[k].raw = tree_.level(k).rawValues();
    }
}

void
SecureMc::prefetchRead(addr::Addr paddr) const
{
    if (!cfg_.secure)
        return;
    // The read walk's first touches: the L0 (and, on an L0 miss, L1)
    // counter value for this block and the counter-cache sets holding
    // their blocks.  Counter stores span tens of megabytes, so these
    // loads are the replay loop's dominant memory stalls; issuing them a
    // record early hides most of that latency.
    const addr::BlockId blk = addr::blockOf(paddr);
    const std::uint64_t cb0 = blk / meta_[0].coverage;
    if (meta_[0].raw != nullptr)
        __builtin_prefetch(meta_[0].raw + blk);
    ctr_cache_.prefetchSet(meta_[0].base + (cb0 << addr::kBlockShift));
    if (tree_.levels() > 1) {
        const std::uint64_t cb1 = cb0 / meta_[1].coverage;
        if (meta_[1].raw != nullptr)
            __builtin_prefetch(meta_[1].raw + cb0);
        ctr_cache_.prefetchSet(meta_[1].base + (cb1 << addr::kBlockShift));
    }
}

double
SecureMc::chargeDram(addr::Addr a, bool is_write, double now_ns,
                     util::StatHandle category)
{
    stats_.inc(category);
    stats_.inc(h_.dram_total);
    engine_.onDramAccess();
    const double done = dram_.access(a, is_write, now_ns).done_ns;
    if (obs_)
        obs_->recordLatency(obs::LatencyHist::Dram, done - now_ns);
    return done;
}

std::pair<double, bool>
SecureMc::touchCounterBlock(unsigned level, addr::CounterBlockId cb,
                            bool dirty, double now_ns)
{
    const addr::Addr a =
        meta_[level].base + (cb << addr::kBlockShift);
    const double decode = meta_[level].decode_ns;
    if (ctr_cache_.accessIfPresent(a, dirty))
        return {now_ns + cfg_.lat.ctr_cache_ns + decode, false};
    const double done = chargeDram(a, false, now_ns, h_.dram_ctr_read);
    const cache::AccessResult fill = ctr_cache_.fill(a, dirty);
    if (fill.writeback) {
        // Dirty victim: identify its level and block id from the address.
        for (unsigned l = 0; l < tree_.levels(); ++l) {
            if (fill.victim_addr >= meta_[l].base &&
                fill.victim_addr < meta_[l].end) {
                counterWriteback(
                    l,
                    (fill.victim_addr - meta_[l].base) >> addr::kBlockShift,
                    now_ns);
                break;
            }
        }
    }
    return {done + decode, true};
}

void
SecureMc::counterWriteback(unsigned level, addr::CounterBlockId cb,
                           double now_ns)
{
    // Writing a counter block back to memory bumps its own counter, which
    // lives one level up (the on-chip root needs no update traffic).
    if (level + 1 < tree_.levels()) {
        const core::UpdateOutcome out =
            engine_.onWriteCounter(level + 1, cb);
        if (out.reencrypt_blocks > 0) {
            const std::uint64_t first =
                (cb / meta_[level + 1].coverage) *
                meta_[level + 1].coverage;
            chargeOverflow(level + 1, first, out.reencrypt_blocks, now_ns);
        }
        // The parent counter block must be present and dirty.
        const addr::CounterBlockId parent =
            cb / meta_[level + 1].coverage;
        touchCounterBlock(level + 1, parent, true, now_ns);
    }
    chargeDram(meta_[level].base + (cb << addr::kBlockShift), true, now_ns,
               h_.dram_ctr_write);
    stats_.inc(h_.ctr_writebacks);
}

double
SecureMc::chargeOverflow(unsigned level, std::uint64_t first_entity,
                         std::uint64_t blocks, double now_ns)
{
    // Covered entities of a level-k overflow are data blocks (k = 0) or
    // level k-1 counter blocks (k >= 1); each is read and rewritten.
    addr::Addr base;
    util::StatHandle category;
    if (level == 0) {
        base = first_entity * addr::kBlockSize;
        category = h_.dram_ovf0;
    } else {
        base = meta_[level - 1].base + (first_entity << addr::kBlockShift);
        category = h_.dram_ovf_hi;
    }
    const OverflowIssue issue = ovf_.schedule(base, blocks, now_ns);
    for (std::uint64_t i = 0; i < issue.accesses; ++i) {
        stats_.inc(category);
        stats_.inc(h_.dram_total);
        engine_.onDramAccess();
    }
    stats_.inc(h_.ovf_count);
    if (level == 0)
        stats_.inc(h_.ovf_l0);
    else
        stats_.inc(h_.ovf_hi);
    if (obs_)
        obs_->instant(level == 0 ? obs::InstantKind::CounterOverflowL0
                                 : obs::InstantKind::CounterOverflowHi);
    return issue.stall_until_ns;
}

void
SecureMc::chargeReadUpdate(unsigned level, std::uint64_t entity,
                           const core::ReadConsult &consult, double now_ns)
{
    if (!consult.releveled)
        return;
    // The whole counter block was releveled: every covered entity is
    // re-encrypted under the new shared counter (read + write each),
    // drained through the overflow engine like any block re-encryption.
    stats_.inc(h_.rmcc_read_updates);
    if (obs_)
        obs_->instant(obs::InstantKind::Rebase);
    if (consult.reencrypt_blocks > 0) {
        const unsigned cov = meta_[level].coverage;
        const std::uint64_t first = (entity / cov) * cov;
        chargeOverflow(level, first, consult.reencrypt_blocks, now_ns);
    }
    // Its counter block is now dirty.
    touchCounterBlock(level, entity / meta_[level].coverage, true, now_ns);
}

// rmcc-lint: hot-path
McReadResult
SecureMc::read(addr::Addr paddr, double now_ns)
{
    McReadResult res;
    stats_.inc(h_.mc_reads);

    const double data_done =
        chargeDram(paddr, false, now_ns, h_.dram_data_read);
    if (!cfg_.secure) {
        res.done_ns = data_done;
        stats_.inc(h_.lat_read_sum_ns, res.done_ns - now_ns);
        if (obs_)
            obs_->recordLatency(obs::LatencyHist::McRead,
                                res.done_ns - now_ns);
        return res;
    }

    const addr::BlockId blk = addr::blockOf(paddr);
    const unsigned levels = tree_.levels();

    // Slide the recovery policy's storm window and degraded residency
    // (one predicted branch when RMCC_RECOVERY=off).
    if (recovery_.onSecureRead() && obs_)
        obs_->instant(obs::InstantKind::DegradedExit);
    const bool degraded = recovery_.degraded();
    res.recovery.degraded = degraded;

    // Walk up the tree until the counter cache hits (or the root).
    // entity[k] is the thing whose counter level k stores; block_id[k] is
    // the counter block at level k that holds it.  Fixed-size stack
    // scratch: this path runs per LLC miss and must not allocate.
    std::uint64_t entity[kMaxLevels + 1];
    addr::CounterBlockId block_id[kMaxLevels];
    double known[kMaxLevels + 1];
    std::fill(known, known + levels + 1, now_ns);
    entity[0] = blk;
    unsigned hit_level = levels; // levels = walked to the on-chip root
    for (unsigned k = 0; k < levels; ++k) {
        block_id[k] = entity[k] / meta_[k].coverage;
        entity[k + 1] = block_id[k];
        const auto [t, missed] =
            touchCounterBlock(k, block_id[k], false, now_ns);
        known[k] = t;
        if (!missed) {
            hit_level = k;
            break;
        }
        stats_.inc(k == 0 ? h_.ctr_l0_miss : h_.ctr_hi_miss);
    }
    res.counter_miss = hit_level != 0;
    if (!res.counter_miss)
        stats_.inc(h_.ctr_l0_hit);

    // Consult RMCC for every counter value this read uses: level 0 always
    // (data OTPs), level k >= 1 only when level k-1's block was fetched
    // (its MAC needs the level-k value).
    core::ReadConsult consult[kMaxLevels + 1];
    consult[0] = engine_.onReadCounterUse(0, entity[0]);
    chargeReadUpdate(0, entity[0], consult[0], now_ns);
    const unsigned walked = std::min(hit_level, levels);
    for (unsigned k = 1; k <= walked && k < levels; ++k) {
        consult[k] = engine_.onReadCounterUse(k, entity[k]);
        chargeReadUpdate(k, entity[k], consult[k], now_ns);
    }

    // Degraded mode: memoization is disabled — every consult becomes a
    // miss, so reads pay full AES and a poisoned memo entry cannot serve.
    if (degraded)
        for (unsigned k = 0; k < levels; ++k)
            consult[k].hit = core::MemoHit::Miss;

    res.memo_hit = consult[0].hit != core::MemoHit::Miss;
    if (res.counter_miss) {
        stats_.inc(h_.memo_lookups_on_miss);
        if (res.memo_hit) {
            stats_.inc(h_.memo_hit_on_miss);
            if (consult[0].hit == core::MemoHit::GroupHit)
                stats_.inc(h_.memo_group_hit_on_miss);
            else
                stats_.inc(h_.memo_recent_hit_on_miss);
        }
    }
    if (res.memo_hit)
        stats_.inc(h_.memo_hit_all);
    stats_.inc(h_.memo_lookups_all);

    // Counter-value contribution latency at a level: memoized values need
    // only the CLMUL combine; otherwise AES runs after the value is known
    // (plus the combine under RMCC's split OTP).
    auto ctr_contrib = [&](unsigned k) {
        if (!engine_.enabled())
            return cfg_.lat.aes_ns;
        if (k < engine_.memoLevels() &&
            consult[k].hit != core::MemoHit::Miss)
            return cfg_.lat.clmul_ns;
        return cfg_.lat.aes_ns + cfg_.lat.clmul_ns;
    };

    // Verification chain from the trust point down to level 0.
    // verified[k] = when the level-k block fetched from memory is trusted.
    double verified[kMaxLevels + 1];
    std::fill(verified, verified + levels + 1, now_ns);
    if (hit_level < levels)
        verified[hit_level] = known[hit_level]; // cached => pre-verified
    for (int k = static_cast<int>(std::min(hit_level, levels)) - 1; k >= 0;
         --k) {
        const auto ku = static_cast<unsigned>(k);
        // MAC of the fetched level-k block uses the level-(k+1) value.
        // The address-only AES overlaps the fetch; the value contribution
        // starts when the value is known and the source block trusted.
        const double otp_ready =
            std::max(known[ku + 1], verified[ku + 1]) + ctr_contrib(ku + 1);
        verified[ku] = std::max(known[ku], otp_ready) + cfg_.lat.mac_dot_ns;
    }

    // Data decryption and verification.
    const double otp0 =
        std::max(known[0] + ctr_contrib(0), now_ns + cfg_.lat.aes_ns);
    const double trusted0 =
        hit_level == 0 ? known[0] : verified[0];
    const double decrypted =
        std::max(data_done, otp0) + cfg_.lat.otp_xor_ns;
    // Degraded mode pays one extra MAC combine: the full-verify rule
    // re-checks the whole chain instead of trusting memo shortcuts.
    const double data_verified =
        std::max({data_done, otp0, trusted0}) + cfg_.lat.mac_dot_ns +
        (degraded ? cfg_.lat.mac_dot_ns : 0.0);
    res.done_ns = std::max(decrypted, data_verified);

    // Headline stat (Sec VI): a counter miss counts as accelerated when
    // the L0 value is memoized and the L1 value is either cached or
    // memoized.
    if (res.counter_miss && res.memo_hit) {
        const bool l1_fast =
            hit_level == 1 ||
            (levels > 1 && consult[1].hit != core::MemoHit::Miss);
        res.accelerated = l1_fast || hit_level >= levels;
        if (res.accelerated)
            stats_.inc(h_.memo_accelerated_misses);
    }

    // Self-healing check runs before latency accounting so a recovered
    // read carries its true (longer) service time.
    if (observer_ && recovery_.active()) {
        const McReadCheck chk = observer_->checkRead(blk, res.memo_hit);
        if (!chk.pass)
            recoverRead(blk, paddr, chk, res);
    }

    stats_.inc(h_.lat_read_sum_ns, res.done_ns - now_ns);
    if (obs_) {
        obs_->recordLatency(obs::LatencyHist::McRead, res.done_ns - now_ns);
        obs_->recordLatency(obs::LatencyHist::MacVerify,
                            data_verified - now_ns);
    }
    if (observer_)
        observer_->onDataRead(blk, res.memo_hit);
    return res;
}

void
SecureMc::recoverRead(addr::BlockId blk, addr::Addr paddr,
                      const McReadCheck &first, McReadResult &res)
{
    RecoveryStats &rs = recovery_.stats();
    res.recovery.detected = true;
    if (recovery_.onDetection() && obs_)
        obs_->instant(obs::InstantKind::DegradedEnter);

    const RecoveryConfig &rc = recovery_.config();
    const double t_detect = res.done_ns;
    double t = res.done_ns;
    bool healthy = false;

    // Stage 1: bounded re-fetch with exponential backoff.  Heals
    // transient transfer faults — the stored cells are intact, so a
    // fresh fetch + re-derive + re-verify comes back clean.
    double backoff = rc.refetch_backoff_ns;
    for (unsigned a = 0; a < rc.max_refetch && !healthy; ++a) {
        ++rs.refetch_attempts;
        ++res.recovery.refetches;
        t += backoff;
        backoff *= 2.0;
        t = chargeDram(paddr, false, t, h_.dram_data_read);
        t += cfg_.lat.aes_ns + cfg_.lat.mac_dot_ns;
        observer_->onRefetch(blk);
        healthy = observer_->checkRead(blk, res.memo_hit).pass;
        if (healthy)
            ++rs.recovered_refetch;
    }

    // Stage 2: counter reconstruction.  A corrupted counter or tree node
    // has a redundant authenticated source — the integrity tree walked
    // from the on-chip root — so rebuild every counter block on the path
    // (fetch + MAC per level, written back dirty).
    if (!healthy && recovery_.full() && first.fail_level >= 0) {
        const unsigned levels = tree_.levels();
        std::uint64_t entity = blk;
        for (unsigned k = 0; k < levels; ++k) {
            const addr::CounterBlockId cb = entity / meta_[k].coverage;
            // Only the corrupted level's block is rewritten (dirty); the
            // rest of the path is fetched and verified in place.
            const bool dirty = static_cast<int>(k) == first.fail_level;
            t = std::max(t, touchCounterBlock(k, cb, dirty, t).first) +
                cfg_.lat.mac_dot_ns;
            entity = cb;
        }
        observer_->reconstructCounterPath(blk);
        res.recovery.reconstructed = true;
        healthy = observer_->checkRead(blk, res.memo_hit).pass;
        if (healthy)
            ++rs.recovered_reconstruct;
    }

    // Stage 3: memo quarantine.  A poisoned memoized pad must never
    // serve another read: evict it (the engine re-arms the monitor from
    // the post-quarantine table — the security-register rollback rule)
    // and retry with an honestly recomputed OTP.
    if (!healthy && recovery_.full() && res.memo_hit) {
        const addr::CounterValue v = tree_.level(0).read(blk);
        if (engine_.quarantineMemoValue(0, v)) {
            ++rs.values_quarantined;
            res.recovery.quarantined = true;
            if (obs_)
                obs_->instant(obs::InstantKind::MemoQuarantine);
        }
        res.memo_hit = false;
        res.accelerated = false;
        t += cfg_.lat.aes_ns; // the pad is recomputed from scratch
        healthy = observer_->checkRead(blk, res.memo_hit).pass;
        if (healthy)
            ++rs.recovered_quarantine;
    }

    if (healthy) {
        res.recovery.recovered = true;
        if (obs_)
            obs_->instant(obs::InstantKind::FaultRecovered);
    } else {
        // Data ciphertext/MAC corruption that survives re-fetch has no
        // redundant copy to rebuild from: refuse the read.  The caller
        // must treat the data as never served.
        ++rs.unrecoverable;
        res.recovery.unrecoverable = true;
    }
    res.done_ns = t;
    if (obs_)
        obs_->recordLatency(obs::LatencyHist::Recovery, t - t_detect);
}

double
SecureMc::write(addr::Addr paddr, double now_ns)
{
    stats_.inc(h_.mc_writes);
    if (!cfg_.secure) {
        chargeDram(paddr, true, now_ns, h_.dram_data_write);
        return now_ns;
    }

    const addr::BlockId blk = addr::blockOf(paddr);
    const core::UpdateOutcome out = engine_.onWriteCounter(0, blk);
    if (out.used_memo_target)
        stats_.inc(h_.rmcc_memo_write_updates);
    double stall = now_ns;
    if (out.reencrypt_blocks > 0) {
        const unsigned cov = meta_[0].coverage;
        const std::uint64_t first = (blk / cov) * cov;
        stall = std::max(
            stall, chargeOverflow(0, first, out.reencrypt_blocks, now_ns));
    }

    // The L0 counter block is read-modified: it must be resident and
    // becomes dirty.
    touchCounterBlock(0, blk / meta_[0].coverage, true, now_ns);

    // Encrypt + write the data (posted; OTP generation is off the
    // critical path because the counter is already in the MC).
    chargeDram(paddr, true, now_ns, h_.dram_data_write);
    if (observer_)
        observer_->onDataWrite(blk);
    return stall;
}

} // namespace rmcc::mc
