#include "mc/overflow_engine.hpp"

#include <algorithm>

namespace rmcc::mc
{

OverflowEngine::OverflowEngine(dram::Ddr4 &dram, unsigned max_outstanding)
    : dram_(dram), max_outstanding_(max_outstanding)
{
}

OverflowIssue
OverflowEngine::schedule(addr::Addr base_addr, std::uint64_t blocks,
                         double now_ns)
{
    // Retire finished overflows.
    std::erase_if(in_flight_, [&](double t) { return t <= now_ns; });

    double start = now_ns;
    if (in_flight_.size() >= max_outstanding_) {
        // The MC rejects LLC requests until a slot frees: the core stalls
        // to the earliest in-flight completion.
        const double earliest =
            *std::min_element(in_flight_.begin(), in_flight_.end());
        stall_ns_ += earliest - now_ns;
        start = earliest;
        std::erase_if(in_flight_,
                      [&](double t) { return t <= start; });
    }

    // Drain the read+write pairs; issuing through the DRAM model makes the
    // background traffic contend for banks and bus with demand requests.
    // Blocks are issued in parallel (the shared-bus serialization in the
    // channel model paces them); each block's rewrite follows its read.
    double done = start;
    for (std::uint64_t b = 0; b < blocks; ++b) {
        const addr::Addr a = base_addr + b * addr::kBlockSize;
        const double read_done = dram_.access(a, false, start).done_ns;
        const double write_done = dram_.access(a, true, read_done).done_ns;
        done = std::max(done, write_done);
    }
    accesses_ += 2 * blocks;
    ++count_;
    in_flight_.push_back(done);
    return {start, done, 2 * blocks};
}

} // namespace rmcc::mc
