/**
 * @file
 * The secure memory controller: counter cache, integrity-tree walk, OTP
 * latency accounting, RMCC consultation, and overflow handling — the
 * component every timing experiment in the paper exercises.
 */
#ifndef RMCC_MC_SECURE_MC_HPP
#define RMCC_MC_SECURE_MC_HPP

#include <cstdint>
#include <utility>

#include "cache/set_assoc.hpp"
#include "core/rmcc_engine.hpp"
#include "counters/tree.hpp"
#include "dram/ddr4.hpp"
#include "mc/latency.hpp"
#include "mc/overflow_engine.hpp"
#include "mc/recovery.hpp"
#include "util/stats.hpp"

namespace rmcc::obs
{
class Registry;
}

namespace rmcc::mc
{

/** Memory-controller configuration (Table I defaults). */
struct McConfig
{
    bool secure = true;               //!< false = non-secure baseline.
    std::uint64_t counter_cache_bytes = 128 * 1024;
    unsigned counter_cache_assoc = 32;
    LatencyConfig lat;
    RecoveryConfig recovery;          //!< Self-healing policy (off default).
};

/**
 * Verdict of an observer's integrity check on one read, consumed by the
 * recovery path.  Mirrors the DetectionOracle's MAC-chain walk: pass is
 * "every MAC from the trust anchor down matched".
 */
struct McReadCheck
{
    bool pass = true;
    //! Failing layer: -1 = data MAC, k >= 0 = tree node at level k,
    //! -2 = not applicable (check passed).
    int fail_level = -2;
};

/**
 * Observer of the controller's data-plane events, called synchronously
 * from read()/write() on secure systems.  The fault layer's
 * DetectionOracle implements this to shadow every block the controller
 * stores and to re-derive the MAC/tree verdict on every read; attaching
 * nothing costs nothing.
 */
class McObserver
{
  public:
    virtual ~McObserver() = default;

    /** Data block blk was (re-)encrypted and written, counter bumped. */
    virtual void onDataWrite(addr::BlockId blk) = 0;

    /**
     * Data block blk was read and decrypted.
     * @param memo_hit the L0 counter value came from the memo table.
     */
    virtual void onDataRead(addr::BlockId blk, bool memo_hit) = 0;

    /**
     * Recovery hook: re-derive the MAC/tree verdict for a read of blk
     * before it is served.  Only consulted when RMCC_RECOVERY is not off;
     * the default (pass) keeps plain observers working unchanged.
     */
    virtual McReadCheck checkRead(addr::BlockId blk, bool memo_hit)
    {
        (void)blk;
        (void)memo_hit;
        return {};
    }

    /**
     * Recovery hook: the controller re-fetched blk's path from memory
     * (stage-1 retry).  A fault model returns true when the re-fetch
     * observed different (healed) contents — i.e. the armed fault was
     * transient.
     */
    virtual bool onRefetch(addr::BlockId blk)
    {
        (void)blk;
        return false;
    }

    /**
     * Recovery hook: the controller rebuilt every counter on blk's path
     * by walking the integrity tree from the on-chip root (stage-2
     * reconstruction); stored node images revert to tree truth.
     */
    virtual void reconstructCounterPath(addr::BlockId blk) { (void)blk; }
};

/**
 * Outcome of the self-healing datapath for one read.  All-false when
 * RMCC_RECOVERY=off (the default) or when no fault was detected.
 */
struct McRecoveryOutcome
{
    bool detected = false;      //!< The observer's read check failed.
    bool recovered = false;     //!< Served after recovery actions.
    bool unrecoverable = false; //!< Exhausted all stages; NOT served.
    bool quarantined = false;   //!< A memo value was quarantined.
    bool reconstructed = false; //!< Counter path rebuilt via tree walk.
    bool degraded = false;      //!< Read served in degraded (memo-off) mode.
    std::uint8_t refetches = 0; //!< Stage-1 re-fetch attempts performed.
};

/** Core-visible outcome of one LLC-miss read. */
struct McReadResult
{
    double done_ns = 0.0;     //!< When the load's value is usable.
    bool counter_miss = false; //!< L0 counter block missed in the cache.
    bool memo_hit = false;     //!< L0 counter value was memoized.
    bool accelerated = false;  //!< Counter miss fully served by RMCC
                               //!< (L0 memo hit, L1 cached or memoized).
    McRecoveryOutcome recovery; //!< Self-healing outcome (off => all false).
};

/**
 * Secure memory controller model.
 *
 * Borrows the integrity tree, RMCC engine, and DRAM; they must outlive
 * the controller.  The counter cache holds L0 counter blocks and all
 * integrity-tree nodes, as in SGX.
 */
class SecureMc
{
  public:
    SecureMc(const McConfig &cfg, ctr::IntegrityTree &tree,
             core::RmccEngine &engine, dram::Ddr4 &dram);

    /** Serve an LLC-miss read of the data block at paddr. */
    McReadResult read(addr::Addr paddr, double now_ns);

    /**
     * Hint that a read of paddr may be next: software-prefetch the L0/L1
     * counter-store entries and counter-cache set rows that read(paddr)
     * would touch.  Pure — no stats, no cache state, no timing — so the
     * replay loop can issue it for the record after the current one and
     * overlap the counter store's DRAM-sized footprint with the rest of
     * the iteration.
     */
    void prefetchRead(addr::Addr paddr) const;

    /**
     * Serve an LLC writeback of the data block at paddr.  Writes are
     * posted; the returned time is only later than now_ns when the
     * two-outstanding-overflow cap stalls the core.
     */
    double write(addr::Addr paddr, double now_ns);

    /** Named statistics (dram.* traffic categories, memo.*, ctr.*). */
    const util::StatSet &stats() const { return stats_; }
    util::StatSet &stats() { return stats_; }

    const cache::SetAssocCache &counterCache() const { return ctr_cache_; }
    const OverflowEngine &overflowEngine() const { return ovf_; }

    /**
     * Counter-cache lines currently holding level-`level` counter blocks
     * in [first_cb, first_cb + n_cb).  The per-tenant occupancy view: a
     * tenant's L0 counter blocks form one contiguous id range under arena
     * partitioning.  Full tag sweep; reporting-point use only.
     */
    std::uint64_t counterLinesResident(unsigned level,
                                       addr::CounterBlockId first_cb,
                                       std::uint64_t n_cb) const
    {
        if (level >= tree_.levels() || n_cb == 0)
            return 0;
        const addr::Addr lo =
            meta_[level].base + (first_cb << addr::kBlockShift);
        return ctr_cache_.countValidIn(lo, lo + (n_cb << addr::kBlockShift));
    }

    /**
     * Attach (or detach, with nullptr) a data-plane observer.  Only
     * meaningful on secure systems; the observer must outlive its
     * attachment.
     */
    void attachObserver(McObserver *observer) { observer_ = observer; }

    /**
     * Attach (or detach, with nullptr) the run's observability registry.
     * Off (null, the default) costs one branch per event; when attached
     * the controller feeds latency histograms (read, DRAM, MAC verify)
     * and rare-event instants (overflow, rebase).  Pure reads only — the
     * registry never alters timing or stats.
     */
    void attachObs(obs::Registry *obs) { obs_ = obs; }

    /** The self-healing policy state (stats, degraded mode). */
    const RecoveryPolicy &recovery() const { return recovery_; }

  private:
    /**
     * Pre-resolved stat handles for every counter the data path touches.
     * Resolved once at construction so read()/write() never perform a
     * string-keyed registry lookup per event.
     */
    struct Handles
    {
        util::StatHandle dram_total;
        util::StatHandle dram_data_read, dram_data_write;
        util::StatHandle dram_ctr_read, dram_ctr_write;
        util::StatHandle dram_ovf0, dram_ovf_hi;
        util::StatHandle ctr_writebacks;
        util::StatHandle ovf_count, ovf_l0, ovf_hi;
        util::StatHandle rmcc_read_updates, rmcc_memo_write_updates;
        util::StatHandle mc_reads, mc_writes, lat_read_sum_ns;
        util::StatHandle ctr_l0_miss, ctr_hi_miss, ctr_l0_hit;
        util::StatHandle memo_lookups_on_miss, memo_hit_on_miss;
        util::StatHandle memo_group_hit_on_miss, memo_recent_hit_on_miss;
        util::StatHandle memo_hit_all, memo_lookups_all;
        util::StatHandle memo_accelerated_misses;
    };

    /** Per-level geometry snapshot taken from the integrity tree. */
    struct LevelMeta
    {
        addr::Addr base;        //!< Address of the level's block 0.
        addr::Addr end;         //!< One past the level's last block.
        unsigned coverage;      //!< Entities per counter block.
        double decode_ns;       //!< Scheme decode latency.
        //! Scheme's dense value array for prefetchRead (null when the
        //! scheme exposes none).
        const addr::CounterValue *raw = nullptr;
    };

    /** One DRAM transfer with category accounting and epoch advance. */
    double chargeDram(addr::Addr a, bool is_write, double now_ns,
                      util::StatHandle category);

    /**
     * Ensure a counter block is present in the counter cache; returns the
     * time its (decoded) content is available and whether it missed.
     */
    std::pair<double, bool> touchCounterBlock(unsigned level,
                                              addr::CounterBlockId cb,
                                              bool dirty, double now_ns);

    /** Handle a dirty counter-block eviction from the counter cache. */
    void counterWriteback(unsigned level, addr::CounterBlockId cb,
                          double now_ns);

    /** Charge an overflow's re-encryption of `blocks` covered entities. */
    double chargeOverflow(unsigned level, std::uint64_t first_entity,
                          std::uint64_t blocks, double now_ns);

    /** Apply a read-consult's relevel side effects (traffic). */
    void chargeReadUpdate(unsigned level, std::uint64_t entity,
                          const core::ReadConsult &consult, double now_ns);

    /**
     * Escalate a failed read check through the recovery stages (re-fetch,
     * tree-walk reconstruction, memo quarantine); updates res in place —
     * done_ns carries the full recovery latency, and
     * res.recovery.unrecoverable means the data was refused, not served.
     */
    void recoverRead(addr::BlockId blk, addr::Addr paddr,
                     const McReadCheck &first, McReadResult &res);

    //! Upper bound on integrity-tree depth; real trees over terabytes of
    //! protected memory need at most ~7 levels at 64:1 arity.
    static constexpr unsigned kMaxLevels = 16;

    McConfig cfg_;
    ctr::IntegrityTree &tree_;
    core::RmccEngine &engine_;
    dram::Ddr4 &dram_;
    cache::SetAssocCache ctr_cache_;
    OverflowEngine ovf_;
    util::StatSet stats_;
    Handles h_;
    LevelMeta meta_[kMaxLevels] = {};
    McObserver *observer_ = nullptr;
    obs::Registry *obs_ = nullptr;
    RecoveryPolicy recovery_;
};

} // namespace rmcc::mc

#endif // RMCC_MC_SECURE_MC_HPP
