#include "mc/recovery.hpp"

#include "util/env.hpp"

namespace rmcc::mc
{

const char *
recoveryModeName(RecoveryMode m)
{
    switch (m) {
    case RecoveryMode::Off: return "off";
    case RecoveryMode::Retry: return "retry";
    case RecoveryMode::Full: return "full";
    }
    return "?";
}

RecoveryConfig
recoveryConfigFromEnv()
{
    RecoveryConfig cfg;
    const std::string mode =
        util::envChoice("RMCC_RECOVERY", {"off", "retry", "full"}, "off");
    cfg.mode = mode == "retry"  ? RecoveryMode::Retry
               : mode == "full" ? RecoveryMode::Full
                                : RecoveryMode::Off;
    cfg.max_refetch = static_cast<unsigned>(
        util::envUnsignedOr("RMCC_RECOVERY_RETRIES", cfg.max_refetch));
    if (const auto v = util::envPositive("RMCC_RECOVERY_STORM_WINDOW"))
        cfg.storm_window_reads = *v;
    if (const auto v = util::envPositive("RMCC_RECOVERY_STORM_THRESHOLD"))
        cfg.storm_threshold = *v;
    if (const auto v = util::envPositive("RMCC_RECOVERY_DEGRADED_READS"))
        cfg.degraded_residency_reads = *v;
    return cfg;
}

bool
RecoveryPolicy::onSecureRead()
{
    if (!active())
        return false;
    bool exited = false;
    if (degraded_reads_left_ > 0) {
        ++stats_.degraded_reads;
        if (--degraded_reads_left_ == 0)
            exited = true;
    }
    if (++window_reads_ >= cfg_.storm_window_reads) {
        window_reads_ = 0;
        window_detections_ = 0;
    }
    return exited;
}

bool
RecoveryPolicy::onDetection()
{
    ++stats_.detections;
    if (!full())
        return false;
    if (++window_detections_ < cfg_.storm_threshold)
        return false;
    // Threshold tripped: (re-)arm the residency.  Only a transition from
    // healthy counts as an entry; a storm that keeps tripping while
    // already degraded just extends the stay.
    window_detections_ = 0;
    const bool entering = degraded_reads_left_ == 0;
    degraded_reads_left_ = cfg_.degraded_residency_reads;
    if (entering)
        ++stats_.degraded_entries;
    return entering;
}

} // namespace rmcc::mc
