/**
 * @file
 * Fixed-latency parameters of the secure memory controller's datapath
 * (paper Table I) and helpers shared by the timing model.
 */
#ifndef RMCC_MC_LATENCY_HPP
#define RMCC_MC_LATENCY_HPP

namespace rmcc::mc
{

/** Cryptography/datapath latencies, in nanoseconds. */
struct LatencyConfig
{
    double aes_ns = 15.0;       //!< AES-128 under 7 nm synthesis [4].
    double clmul_ns = 1.0;      //!< Truncated carry-less multiply.
    double mac_dot_ns = 1.0;    //!< GF dot product + compare.
    double otp_xor_ns = 0.25;   //!< OTP XOR with the 64 B block.
    double ctr_cache_ns = 1.0;  //!< Counter-cache hit latency.

    /** The AES-256 sensitivity point (paper Fig 17). */
    static LatencyConfig aes256()
    {
        LatencyConfig l;
        l.aes_ns = 22.0;
        return l;
    }
};

/**
 * Latency anatomy of one secured read, for the Fig 5 walkthrough and
 * diagnostics.
 */
struct ReadAnatomy
{
    double data_ready_ns;    //!< DRAM data arrival.
    double counter_ready_ns; //!< Counter value known (cache or DRAM+decode).
    double otp_ready_ns;     //!< Encryption OTP available.
    double verified_ns;      //!< MAC verification complete.
    double done_ns;          //!< Load usable by the core.
};

/**
 * Fig 5 walkthrough: latency anatomy of a counter-missing read with or
 * without memoization.
 *
 * @param data_dram_ns DRAM latency of the data block.
 * @param ctr_dram_ns DRAM latency of the counter block.
 * @param decode_ns counter-block decode latency (3 ns for Morphable).
 * @param lat datapath latencies.
 * @param memoized counter value hits the memoization table.
 */
ReadAnatomy fig5Anatomy(double data_dram_ns, double ctr_dram_ns,
                        double decode_ns, const LatencyConfig &lat,
                        bool memoized);

} // namespace rmcc::mc

#endif // RMCC_MC_LATENCY_HPP
