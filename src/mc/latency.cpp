#include "mc/latency.hpp"

#include <algorithm>

namespace rmcc::mc
{

/**
 * Fig 5 walkthrough: anatomy of a read whose counter misses, with and
 * without memoization, under given DRAM latencies.  Kept here (not in the
 * bench) so tests can pin the arithmetic down.
 */
ReadAnatomy
fig5Anatomy(double data_dram_ns, double ctr_dram_ns, double decode_ns,
            const LatencyConfig &lat, bool memoized)
{
    ReadAnatomy a{};
    a.data_ready_ns = data_dram_ns;
    a.counter_ready_ns = ctr_dram_ns + decode_ns;
    // Address-only AES starts at t=0 (the address is always known); the
    // counter contribution is either a memo lookup + CLMUL or a full AES
    // serialized after the counter arrives.
    const double ctr_contrib =
        memoized ? lat.clmul_ns : lat.aes_ns;
    a.otp_ready_ns =
        std::max(a.counter_ready_ns + ctr_contrib, lat.aes_ns);
    a.verified_ns =
        std::max(a.data_ready_ns, a.otp_ready_ns) + lat.mac_dot_ns;
    a.done_ns = std::max(
        std::max(a.data_ready_ns, a.otp_ready_ns) + lat.otp_xor_ns,
        a.verified_ns);
    return a;
}

} // namespace rmcc::mc
