/**
 * @file
 * Per-bank DRAM state machine: open row, busy window, row-timeout policy.
 */
#ifndef RMCC_DRAM_BANK_HPP
#define RMCC_DRAM_BANK_HPP

#include <cstdint>

#include "address/types.hpp"
#include "dram/config.hpp"

namespace rmcc::dram
{

/** Row-buffer outcome of a column access. */
enum class RowOutcome
{
    Hit,      //!< Row already open.
    Closed,   //!< Bank precharged (e.g. after timeout): ACT needed.
    Conflict, //!< Different row open: PRE + ACT needed.
};

/**
 * Timing state of one DRAM bank.
 */
class Bank
{
  public:
    /**
     * Issue a column access to `row` at earliest time `t_ns`.
     *
     * @param t_ns earliest issue time (ns).
     * @param row target row.
     * @param cfg timing parameters.
     * @param[out] outcome row-buffer outcome for statistics.
     * @return time the requested data is available at the bank (before
     *         bus transfer), ns.
     */
    double issue(double t_ns, std::uint64_t row, const DramConfig &cfg,
                 RowOutcome &outcome);

    /** Open row, or -1 when precharged. */
    std::int64_t openRow() const { return open_row_; }

    /** Earliest time the bank can accept a new command. */
    double readyAt() const { return ready_ns_; }

  private:
    std::int64_t open_row_ = -1;
    double ready_ns_ = 0.0;
    double last_use_ns_ = -1.0e18;
};

} // namespace rmcc::dram

#endif // RMCC_DRAM_BANK_HPP
