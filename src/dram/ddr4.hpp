/**
 * @file
 * DDR4 memory-system front end: address decode plus per-channel timing.
 * Plays the role Ramulator plays in the paper's evaluation.
 */
#ifndef RMCC_DRAM_DDR4_HPP
#define RMCC_DRAM_DDR4_HPP

#include <memory>
#include <vector>

#include "dram/channel.hpp"

namespace rmcc::dram
{

/**
 * Whole DRAM subsystem.
 */
class Ddr4
{
  public:
    explicit Ddr4(const DramConfig &cfg = DramConfig());

    /**
     * Serve a 64 B transfer for byte address a at earliest time t_ns.
     * Writes are posted (see Channel); the returned time is when the burst
     * finishes on the bus.
     */
    DramCompletion access(addr::Addr a, bool is_write, double t_ns);

    /** Total 64 B transfers served. */
    std::uint64_t totalAccesses() const;

    /** Sum of per-channel stats. */
    ChannelStats aggregateStats() const;

    const DramConfig &config() const { return cfg_; }

    void resetStats();

    /**
     * Queue-depth proxy for observability: the furthest any channel's
     * data bus is committed beyond now_ns (0 when all buses are free).
     * The model has no explicit request queue — bus backlog is the
     * closest analogue of one.
     */
    double busBacklogNs(double now_ns) const;

  private:
    DramConfig cfg_;
    AddressMapper mapper_;
    std::vector<Channel> channels_;
};

} // namespace rmcc::dram

#endif // RMCC_DRAM_DDR4_HPP
