#include "dram/mapping.hpp"

#include <bit>

namespace rmcc::dram
{

namespace
{

unsigned
log2u(std::uint64_t v)
{
    return static_cast<unsigned>(std::bit_width(v) - 1);
}

} // namespace

AddressMapper::AddressMapper(const DramConfig &cfg) : cfg_(cfg)
{
    col_bits_ = log2u(cfg_.row_bytes / addr::kBlockSize);
    bank_bits_ = log2u(cfg_.banks_per_rank);
    rank_bits_ = cfg_.ranks > 1 ? log2u(cfg_.ranks) : 0;
    chan_bits_ = cfg_.channels > 1 ? log2u(cfg_.channels) : 0;
}

DramCoord
AddressMapper::decode(addr::Addr a) const
{
    // Bit layout (low to high): block offset | column | channel | bank |
    // rank | row.  The bank field is XOR-hashed with the low row bits.
    std::uint64_t x = a >> addr::kBlockShift;
    DramCoord c{};
    c.column = x & ((1ULL << col_bits_) - 1);
    x >>= col_bits_;
    c.channel = static_cast<unsigned>(x & ((1ULL << chan_bits_) - 1));
    x >>= chan_bits_;
    const auto bank_raw =
        static_cast<unsigned>(x & ((1ULL << bank_bits_) - 1));
    x >>= bank_bits_;
    c.rank = static_cast<unsigned>(x & ((1ULL << rank_bits_) - 1));
    x >>= rank_bits_;
    c.row = x;
    // Skylake-style XOR hash: fold the low row bits into the bank index.
    c.bank = bank_raw ^
             static_cast<unsigned>(c.row & ((1ULL << bank_bits_) - 1));
    return c;
}

} // namespace rmcc::dram
