/**
 * @file
 * Physical-address to DRAM-coordinate mapping.
 *
 * Uses an XOR-based (Skylake-like, per Table I / DRAMA) bank function:
 * bank index bits are XORed with row bits so that strided streams spread
 * across banks instead of ping-ponging one bank's row buffer.
 */
#ifndef RMCC_DRAM_MAPPING_HPP
#define RMCC_DRAM_MAPPING_HPP

#include <cstdint>

#include "address/types.hpp"
#include "dram/config.hpp"

namespace rmcc::dram
{

/** DRAM coordinates of a block address. */
struct DramCoord
{
    unsigned channel;
    unsigned rank;
    unsigned bank;      //!< Bank within the rank.
    std::uint64_t row;
    std::uint64_t column;

    /** Flat bank identifier across channels/ranks. */
    std::uint64_t flatBank(const DramConfig &cfg) const
    {
        return (static_cast<std::uint64_t>(channel) * cfg.ranks + rank) *
                   cfg.banks_per_rank +
               bank;
    }
};

/**
 * Address decoder with the XOR bank hash.
 */
class AddressMapper
{
  public:
    explicit AddressMapper(const DramConfig &cfg);

    /** Decode a byte address into DRAM coordinates. */
    DramCoord decode(addr::Addr a) const;

  private:
    DramConfig cfg_;
    unsigned col_bits_, bank_bits_, rank_bits_, chan_bits_;
};

} // namespace rmcc::dram

#endif // RMCC_DRAM_MAPPING_HPP
