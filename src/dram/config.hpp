/**
 * @file
 * DDR4 timing/geometry parameters (paper Table I defaults).
 */
#ifndef RMCC_DRAM_CONFIG_HPP
#define RMCC_DRAM_CONFIG_HPP

#include <cstdint>

#include "address/types.hpp"

namespace rmcc::dram
{

/** Geometry and timing of the DDR4 subsystem. */
struct DramConfig
{
    unsigned channels = 1;          //!< Table I: 1 channel.
    unsigned ranks = 8;             //!< Table I: 8 ranks.
    unsigned banks_per_rank = 16;   //!< DDR4: 4 bank groups x 4 banks.
    std::uint64_t row_bytes = 8192; //!< Row buffer size per bank.

    double data_rate_gtps = 3.2;    //!< 3.2 GT/s.
    unsigned bus_bytes = 8;         //!< 64-bit channel.

    double tCL_ns = 13.75;
    double tRCD_ns = 13.75;
    double tRP_ns = 13.75;
    double tRFC_ns = 350.0;
    double tREFI_ns = 7800.0;       //!< Refresh interval.
    double row_timeout_ns = 500.0;  //!< Table I: 500 ns open-row timeout.

    unsigned queue_entries = 256;   //!< Read/write queue capacity.
    unsigned frfcfs_cap = 4;        //!< FR-FCFS-Capped: max consecutive
                                    //!< row hits that may bypass older
                                    //!< row-miss requests.

    /** Burst transfer time for one 64 B block, ns. */
    double burstNs() const
    {
        const double beats =
            static_cast<double>(addr::kBlockSize) / bus_bytes;
        return beats / data_rate_gtps; // 8 beats / 3.2 GT/s = 2.5 ns
    }

    /** Peak channel bandwidth, bytes per ns. */
    double peakBytesPerNs() const { return data_rate_gtps * bus_bytes; }
};

} // namespace rmcc::dram

#endif // RMCC_DRAM_CONFIG_HPP
