/**
 * @file
 * One DRAM channel: banks, shared data bus, refresh, and an FR-FCFS-Capped
 * row-hit streak limit.
 */
#ifndef RMCC_DRAM_CHANNEL_HPP
#define RMCC_DRAM_CHANNEL_HPP

#include <cstdint>
#include <vector>

#include "dram/bank.hpp"
#include "dram/mapping.hpp"

namespace rmcc::dram
{

/** Completion information for one 64 B transfer. */
struct DramCompletion
{
    double done_ns;     //!< Time the block is fully transferred.
    RowOutcome outcome; //!< Row-buffer outcome.
};

/** Aggregated channel statistics. */
struct ChannelStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_closed = 0;
    std::uint64_t row_conflicts = 0;
    double bus_busy_ns = 0.0;
};

/**
 * Channel timing model.
 *
 * Requests are served in arrival order (the simulators issue them in
 * program order); bank conflicts, bus serialization, refresh windows, and
 * the FR-FCFS row-hit cap shape each request's completion time.  Writes are
 * posted: they occupy the bank and bus but complete immediately from the
 * core's perspective.
 */
class Channel
{
  public:
    Channel(const DramConfig &cfg, unsigned channel_index);

    /** Serve one block transfer at earliest time t_ns. */
    DramCompletion serve(const DramCoord &coord, bool is_write,
                         double t_ns);

    const ChannelStats &stats() const { return stats_; }
    void resetStats() { stats_ = ChannelStats(); }

    /** Time the shared data bus is committed through (observability). */
    double busFreeNs() const { return bus_free_ns_; }

  private:
    /** Apply refresh blackout for a rank to a candidate issue time. */
    double refreshAdjust(unsigned rank, double t_ns);

    DramConfig cfg_;
    std::vector<Bank> banks_;           // ranks * banks_per_rank
    std::vector<double> next_refresh_;  // per rank
    std::vector<std::uint64_t> hit_streak_; // per bank, for the cap
    double bus_free_ns_ = 0.0;
    ChannelStats stats_;
};

} // namespace rmcc::dram

#endif // RMCC_DRAM_CHANNEL_HPP
