#include "dram/ddr4.hpp"

#include <algorithm>

namespace rmcc::dram
{

Ddr4::Ddr4(const DramConfig &cfg) : cfg_(cfg), mapper_(cfg)
{
    channels_.reserve(cfg_.channels);
    for (unsigned c = 0; c < cfg_.channels; ++c)
        channels_.emplace_back(cfg_, c);
}

DramCompletion
Ddr4::access(addr::Addr a, bool is_write, double t_ns)
{
    const DramCoord coord = mapper_.decode(a);
    return channels_[coord.channel].serve(coord, is_write, t_ns);
}

std::uint64_t
Ddr4::totalAccesses() const
{
    std::uint64_t n = 0;
    for (const auto &c : channels_)
        n += c.stats().reads + c.stats().writes;
    return n;
}

ChannelStats
Ddr4::aggregateStats() const
{
    ChannelStats agg;
    for (const auto &c : channels_) {
        const auto &s = c.stats();
        agg.reads += s.reads;
        agg.writes += s.writes;
        agg.row_hits += s.row_hits;
        agg.row_closed += s.row_closed;
        agg.row_conflicts += s.row_conflicts;
        agg.bus_busy_ns += s.bus_busy_ns;
    }
    return agg;
}

double
Ddr4::busBacklogNs(double now_ns) const
{
    double backlog = 0.0;
    for (const auto &c : channels_)
        backlog = std::max(backlog, c.busFreeNs() - now_ns);
    return backlog;
}

void
Ddr4::resetStats()
{
    for (auto &c : channels_)
        c.resetStats();
}

} // namespace rmcc::dram
