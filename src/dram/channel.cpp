#include "dram/channel.hpp"

#include <algorithm>

namespace rmcc::dram
{

Channel::Channel(const DramConfig &cfg, unsigned channel_index)
    : cfg_(cfg),
      banks_(static_cast<std::size_t>(cfg.ranks) * cfg.banks_per_rank),
      next_refresh_(cfg.ranks, 0.0),
      hit_streak_(banks_.size(), 0)
{
    // Stagger refresh across ranks so they do not blackout simultaneously.
    for (unsigned r = 0; r < cfg_.ranks; ++r)
        next_refresh_[r] =
            cfg_.tREFI_ns * (static_cast<double>(r) + 1.0) /
            static_cast<double>(cfg_.ranks);
    (void)channel_index;
}

double
Channel::refreshAdjust(unsigned rank, double t_ns)
{
    double &next = next_refresh_[rank];
    // Catch the schedule up to the present.
    while (t_ns >= next + cfg_.tRFC_ns)
        next += cfg_.tREFI_ns;
    if (t_ns >= next) {
        // Inside the blackout: wait for tRFC to finish.
        const double resume = next + cfg_.tRFC_ns;
        next += cfg_.tREFI_ns;
        return resume;
    }
    return t_ns;
}

DramCompletion
Channel::serve(const DramCoord &coord, bool is_write, double t_ns)
{
    const std::size_t bank_idx =
        static_cast<std::size_t>(coord.rank) * cfg_.banks_per_rank +
        coord.bank;
    Bank &bank = banks_[bank_idx];

    double t = refreshAdjust(coord.rank, t_ns);

    RowOutcome outcome;
    double data_at = bank.issue(t, coord.row, cfg_, outcome);

    // FR-FCFS-Capped: after `cap` consecutive row hits the scheduler lets
    // an older row-miss request in, which closes our row; charge the full
    // conflict path on the capped access.
    if (outcome == RowOutcome::Hit) {
        if (++hit_streak_[bank_idx] > cfg_.frfcfs_cap) {
            hit_streak_[bank_idx] = 0;
            outcome = RowOutcome::Conflict;
            data_at += cfg_.tRP_ns + cfg_.tRCD_ns;
        }
    } else {
        hit_streak_[bank_idx] = 0;
    }

    switch (outcome) {
      case RowOutcome::Hit:
        ++stats_.row_hits;
        break;
      case RowOutcome::Closed:
        ++stats_.row_closed;
        break;
      case RowOutcome::Conflict:
        ++stats_.row_conflicts;
        break;
    }

    // Serialize the burst on the shared data bus.
    const double burst_start = std::max(data_at, bus_free_ns_);
    const double done = burst_start + cfg_.burstNs();
    bus_free_ns_ = done;
    stats_.bus_busy_ns += cfg_.burstNs();

    if (is_write)
        ++stats_.writes;
    else
        ++stats_.reads;

    return {done, outcome};
}

} // namespace rmcc::dram
