#include "dram/bank.hpp"

#include <algorithm>

namespace rmcc::dram
{

double
Bank::issue(double t_ns, std::uint64_t row, const DramConfig &cfg,
            RowOutcome &outcome)
{
    double t = std::max(t_ns, ready_ns_);

    // 500 ns open-row timeout (Table I): the controller precharges idle
    // rows in the background, so a long-idle bank behaves as closed.
    if (open_row_ >= 0 && t - last_use_ns_ > cfg.row_timeout_ns)
        open_row_ = -1;

    double data_at;
    if (open_row_ == static_cast<std::int64_t>(row)) {
        outcome = RowOutcome::Hit;
        data_at = t + cfg.tCL_ns;
    } else if (open_row_ < 0) {
        outcome = RowOutcome::Closed;
        data_at = t + cfg.tRCD_ns + cfg.tCL_ns;
    } else {
        outcome = RowOutcome::Conflict;
        data_at = t + cfg.tRP_ns + cfg.tRCD_ns + cfg.tCL_ns;
    }
    open_row_ = static_cast<std::int64_t>(row);
    last_use_ns_ = data_at;
    // The bank can overlap CAS of back-to-back hits; approximate command
    // occupancy with the burst time for hits and the full activate path
    // otherwise.
    ready_ns_ = data_at - cfg.tCL_ns + cfg.burstNs();
    return data_at;
}

} // namespace rmcc::dram
