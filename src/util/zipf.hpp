/**
 * @file
 * Precomputed-CDF Zipf sampler, shared by workload generation, fault
 * storms, and the tenancy traffic mixer.
 *
 * Hoisted out of the RNG module once tenant traffic shares needed the
 * same guide-table trick as power-law graph construction: the sampler is
 * a standalone object so hot loops build the CDF once and draw millions
 * of ranks, while Rng::nextZipf stays as the convenience one-shot.
 */
#ifndef RMCC_UTIL_ZIPF_HPP
#define RMCC_UTIL_ZIPF_HPP

#include <cstdint>
#include <vector>

namespace rmcc::util
{

class Rng;

/**
 * Precomputed-CDF Zipf sampler.
 *
 * Draws invert the CDF for a uniform u.  A guide table narrows the
 * inversion to a handful of CDF entries before the binary search: entry k
 * holds lower_bound(cdf, k/K), so the search for u only scans
 * [guide[floor(u*K)], guide[floor(u*K)+1]].  This returns exactly what a
 * full-array lower_bound would (same rank for the same u, hence the same
 * stream for the same Rng) at a fraction of the cost — the full search
 * was the hot spot of power-law graph construction.
 */
class ZipfSampler
{
  public:
    /** Build the CDF for ranks [0, n) with exponent s (> 0). */
    ZipfSampler(std::uint64_t n, double s);

    /** Draw one Zipf-distributed rank using the supplied generator. */
    std::uint64_t operator()(Rng &rng) const;

    /** Probability mass of a single rank in [0, n). */
    double mass(std::uint64_t rank) const;

    /** Number of ranks. */
    std::uint64_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
    std::vector<std::uint32_t> guide_; //!< K+1 lower-bound anchors.
    double buckets_ = 0.0;             //!< K as a double, for u*K.
};

} // namespace rmcc::util

#endif // RMCC_UTIL_ZIPF_HPP
