#include "util/cancel.hpp"

namespace rmcc::util
{

namespace
{

struct ScopeState
{
    const std::atomic<bool> *flag = nullptr;
    std::chrono::steady_clock::time_point deadline{};
    std::uint64_t timeout_ms = 0;
    bool active = false;
};

//! One scope per thread, never shared: no lock, nothing for the
//! thread-safety analysis to track (only the atomic flag crosses
//! threads).
thread_local ScopeState tls_scope;

} // namespace

CancelScope::CancelScope(const std::atomic<bool> *flag,
                         std::uint64_t timeout_ms)
    : prev_flag_(tls_scope.flag), prev_deadline_(tls_scope.deadline),
      prev_timeout_ms_(tls_scope.timeout_ms), prev_active_(tls_scope.active)
{
    tls_scope.flag = flag;
    tls_scope.timeout_ms = timeout_ms;
    tls_scope.deadline =
        timeout_ms > 0 ? std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(timeout_ms)
                       : std::chrono::steady_clock::time_point{};
    tls_scope.active = flag != nullptr || timeout_ms > 0;
}

CancelScope::~CancelScope()
{
    tls_scope.flag = prev_flag_;
    tls_scope.deadline = prev_deadline_;
    tls_scope.timeout_ms = prev_timeout_ms_;
    tls_scope.active = prev_active_;
}

bool
cancelRequested()
{
    if (!tls_scope.active)
        return false;
    if (tls_scope.flag &&
        tls_scope.flag->load(std::memory_order_relaxed))
        return true;
    return tls_scope.timeout_ms > 0 &&
           std::chrono::steady_clock::now() >= tls_scope.deadline;
}

void
pollCancel()
{
    if (!tls_scope.active)
        return;
    if (tls_scope.flag && tls_scope.flag->load(std::memory_order_relaxed))
        throw CancelledError(CancelledError::Reason::Shutdown,
                             "cancelled: shutdown requested");
    if (tls_scope.timeout_ms > 0 &&
        std::chrono::steady_clock::now() >= tls_scope.deadline)
        throw CancelledError(
            CancelledError::Reason::Timeout,
            "cancelled: cell exceeded RMCC_CELL_TIMEOUT_MS=" +
                std::to_string(tls_scope.timeout_ms) + " ms");
}

} // namespace rmcc::util
