/**
 * @file
 * Statistics primitives used by the simulators and benches: scalar counters
 * with ratio helpers, running means, histograms, and geometric means, in the
 * spirit of gem5's stats package but sized for this project.
 */
#ifndef RMCC_UTIL_STATS_HPP
#define RMCC_UTIL_STATS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rmcc::util
{

/** Running mean/min/max/sum accumulator over double samples. */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples seen. */
    std::uint64_t count() const { return n_; }

    /** Sum of all samples (0 when empty). */
    double sum() const { return sum_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Smallest sample (+inf when empty). */
    double min() const { return min_; }

    /** Largest sample (-inf when empty). */
    double max() const { return max_; }

    /** Reset to the empty state. */
    void reset();

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 1.0e300;
    double max_ = -1.0e300;
};

/** Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets. */
class Histogram
{
  public:
    /** Create nbuckets equal-width buckets spanning [lo, hi). */
    Histogram(double lo, double hi, std::size_t nbuckets);

    /** Record one sample. */
    void add(double x);

    /** Total samples including out-of-range ones. */
    std::uint64_t count() const { return total_; }

    /** Count in bucket i (0 <= i < buckets()). */
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }

    /** Number of in-range buckets. */
    std::size_t buckets() const { return counts_.size(); }

    /** Samples below lo / at-or-above hi. */
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /** Approximate p-quantile (0 <= p <= 1) from bucket midpoints. */
    double quantile(double p) const;

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/** Geometric mean of strictly positive values; zeros are skipped. */
double geomean(const std::vector<double> &xs);

/** Arithmetic mean; 0 when empty. */
double mean(const std::vector<double> &xs);

class StatSet;

/**
 * Pre-resolved index of one named counter inside one StatSet.
 *
 * A handle is obtained once per (set, name) via StatSet::handle() — the
 * only operation that touches the string registry — and then increments a
 * plain double by index.  Handles are NOT portable across StatSet
 * instances: each set assigns slots in its own registration order.
 */
class StatHandle
{
  public:
    StatHandle() = default;

    /** True once resolved by StatSet::handle(). */
    bool valid() const { return idx_ != kInvalid; }

  private:
    friend class StatSet;
    static constexpr std::uint32_t kInvalid = 0xffffffffu;

    explicit StatHandle(std::uint32_t idx) : idx_(idx) {}

    std::uint32_t idx_ = kInvalid;
};

/**
 * Named scalar statistics bag, used by the simulators to report counters
 * (accesses, hits, misses, traffic) without a rigid struct per experiment.
 *
 * Storage is a dense slot array (gem5-style): every name resolves once to
 * a StatHandle, and the handle-based inc()/set()/get() touch only
 * values_[idx].  The string overloads remain for registration, reporting,
 * and tests; per-event hot paths must pre-resolve handles instead.  A
 * registered-but-never-written slot does not appear in all()/merge()/diff()
 * output, so pre-resolving handles cannot change reported results.
 */
class StatSet
{
  public:
    /**
     * Resolve (registering on first use) the slot for a name.  This is
     * the only string-keyed registry lookup; it is counted in
     * stringLookups() so tests can prove hot loops never take it.
     */
    StatHandle handle(const std::string &name);

    /** Add delta (default 1) to the counter behind a resolved handle. */
    void inc(StatHandle h, double delta = 1.0)
    {
        values_[h.idx_] += delta;
        written_[h.idx_] = 1;
    }

    /** Overwrite the counter behind a resolved handle. */
    void set(StatHandle h, double value)
    {
        values_[h.idx_] = value;
        written_[h.idx_] = 1;
    }

    /** Read the counter behind a resolved handle (0 if never written). */
    double get(StatHandle h) const { return values_[h.idx_]; }

    /** Add delta (default 1) to the named counter, creating it at 0. */
    void inc(const std::string &name, double delta = 1.0)
    {
        inc(handle(name), delta);
    }

    /** Overwrite the named counter. */
    void set(const std::string &name, double value)
    {
        set(handle(name), value);
    }

    /** Read a counter; returns 0 for names never written. */
    double get(const std::string &name) const;

    /** a / b with 0 fallback when b == 0. */
    double ratio(const std::string &a, const std::string &b) const;

    /** All written counters, in name order. */
    std::map<std::string, double> all() const;

    /** Merge: add every written counter of other into this. */
    void merge(const StatSet &other);

    /** Per-counter difference this - earlier (for windowed measurement). */
    StatSet diff(const StatSet &earlier) const;

    /**
     * Process-wide count of string-keyed registry lookups (handle
     * resolutions and string get()s) across every StatSet.  A steady-state
     * simulator loop performs zero of these per record; tests assert the
     * count is independent of trace length.  merge()/diff()/all() traverse
     * registries internally and are not counted — they are end-of-run
     * reporting, not per-event resolution.
     */
    static std::uint64_t stringLookups();

  private:
    /** Find-or-create the slot for a name without touching the lookup
     *  counter; merge()/diff() traverse registries through this so
     *  reporting does not inflate the hot-path diagnostic. */
    std::uint32_t slotFor(const std::string &name);

    std::map<std::string, std::uint32_t> index_;
    std::vector<double> values_;
    //! 1 once inc()/set() touched the slot; registration alone leaves 0,
    //! keeping all()/merge()/diff() identical to the pre-handle string API.
    std::vector<std::uint8_t> written_;
};

} // namespace rmcc::util

#endif // RMCC_UTIL_STATS_HPP
