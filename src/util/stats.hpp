/**
 * @file
 * Statistics primitives used by the simulators and benches: scalar counters
 * with ratio helpers, running means, histograms, and geometric means, in the
 * spirit of gem5's stats package but sized for this project.
 */
#ifndef RMCC_UTIL_STATS_HPP
#define RMCC_UTIL_STATS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rmcc::util
{

/** Running mean/min/max/sum accumulator over double samples. */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples seen. */
    std::uint64_t count() const { return n_; }

    /** Sum of all samples (0 when empty). */
    double sum() const { return sum_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Smallest sample (+inf when empty). */
    double min() const { return min_; }

    /** Largest sample (-inf when empty). */
    double max() const { return max_; }

    /** Reset to the empty state. */
    void reset();

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 1.0e300;
    double max_ = -1.0e300;
};

/** Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets. */
class Histogram
{
  public:
    /** Create nbuckets equal-width buckets spanning [lo, hi). */
    Histogram(double lo, double hi, std::size_t nbuckets);

    /** Record one sample. */
    void add(double x);

    /** Total samples including out-of-range ones. */
    std::uint64_t count() const { return total_; }

    /** Count in bucket i (0 <= i < buckets()). */
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }

    /** Number of in-range buckets. */
    std::size_t buckets() const { return counts_.size(); }

    /** Samples below lo / at-or-above hi. */
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /** Approximate p-quantile (0 <= p <= 1) from bucket midpoints. */
    double quantile(double p) const;

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/** Geometric mean of strictly positive values; zeros are skipped. */
double geomean(const std::vector<double> &xs);

/** Arithmetic mean; 0 when empty. */
double mean(const std::vector<double> &xs);

/**
 * Named scalar statistics bag, used by the simulators to report counters
 * (accesses, hits, misses, traffic) without a rigid struct per experiment.
 */
class StatSet
{
  public:
    /** Add delta (default 1) to the named counter, creating it at 0. */
    void inc(const std::string &name, double delta = 1.0);

    /** Overwrite the named counter. */
    void set(const std::string &name, double value);

    /** Read a counter; returns 0 for names never written. */
    double get(const std::string &name) const;

    /** a / b with 0 fallback when b == 0. */
    double ratio(const std::string &a, const std::string &b) const;

    /** All counters in name order. */
    const std::map<std::string, double> &all() const { return values_; }

    /** Merge: add every counter of other into this. */
    void merge(const StatSet &other);

    /** Per-counter difference this - earlier (for windowed measurement). */
    StatSet diff(const StatSet &earlier) const;

  private:
    std::map<std::string, double> values_;
};

} // namespace rmcc::util

#endif // RMCC_UTIL_STATS_HPP
