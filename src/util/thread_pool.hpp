/**
 * @file
 * Fixed-size thread pool used to fan the (workload x configuration)
 * simulation grid across cores.
 *
 * The pool is deliberately minimal — a FIFO queue, N workers, and a
 * blocking wait() — because the experiment runner's tasks are coarse
 * (whole simulations) and independent; work stealing would buy nothing.
 * Concurrency for the suite runner is controlled by the RMCC_JOBS
 * environment variable (see envJobs()); RMCC_JOBS=1 means callers skip
 * the pool entirely and run serially.
 */
#ifndef RMCC_UTIL_THREAD_POOL_HPP
#define RMCC_UTIL_THREAD_POOL_HPP

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace rmcc::util
{

/** A fixed set of worker threads draining a FIFO job queue. */
class ThreadPool
{
  public:
    /** Spawn the workers; at least one thread is always created. */
    explicit ThreadPool(unsigned threads);

    /** Drains remaining jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Enqueue one job; runs on some worker in FIFO order. */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished.  If any job threw,
     * the first captured exception is rethrown here and the rest stay
     * retrievable via takeErrors() (the remaining jobs still run to
     * completion).
     */
    void wait();

    /**
     * Block until every submitted job has finished, without rethrowing.
     * Callers that must survive failing jobs (the hardened suite runner)
     * use this and then inspect takeErrors().
     */
    void waitAll();

    /**
     * Every exception captured from jobs since the last wait()/
     * takeErrors(), in completion order.  The internal list is cleared.
     */
    std::vector<std::exception_ptr> takeErrors();

    /**
     * Pool-worker index of the calling thread: 0 .. threadCount()-1 on a
     * pool worker, -1 on any other thread (main, detached helpers).
     * Observability uses this to assign trace lanes; ids are stable for
     * a thread's lifetime but reused across pool instances.
     */
    static int currentWorkerId();

    /**
     * Job-count policy: the RMCC_JOBS environment variable when set,
     * otherwise std::thread::hardware_concurrency() (and 1 when even
     * that is unknown).
     *
     * @throws std::runtime_error when RMCC_JOBS is set to anything but a
     *         positive integer — a typo like RMCC_JOBS=banana used to
     *         silently fall back and run at a surprise width.
     */
    static unsigned envJobs();

  private:
    void workerLoop();

    std::vector<std::thread> workers_; //!< Main-thread-only after ctor.
    Mutex mutex_;
    CondVar work_cv_;
    CondVar idle_cv_;
    std::deque<std::function<void()>> queue_ RMCC_GUARDED_BY(mutex_);
    //! Jobs queued or currently running.
    std::size_t in_flight_ RMCC_GUARDED_BY(mutex_) = 0;
    bool stop_ RMCC_GUARDED_BY(mutex_) = false;
    //! All captured job errors.
    std::vector<std::exception_ptr> errors_ RMCC_GUARDED_BY(mutex_);
};

/**
 * Run fn(0) .. fn(n-1) across the pool and block until all complete.
 * With a single-threaded pool (or n <= 1) the calls run inline on the
 * caller's thread, in index order — the bit-for-bit serial path.
 */
void parallelFor(ThreadPool &pool, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

/** Free-function alias for ThreadPool::currentWorkerId(). */
int currentWorkerId();

} // namespace rmcc::util

#endif // RMCC_UTIL_THREAD_POOL_HPP
