#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <ctime>
#include <stdexcept>
#include <string>

#include "util/env.hpp"

namespace rmcc::util
{

LogLevel
logLevelFromString(const char *s)
{
    if (std::strcmp(s, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(s, "info") == 0)
        return LogLevel::Info;
    if (std::strcmp(s, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(s, "error") == 0)
        return LogLevel::Error;
    if (std::strcmp(s, "silent") == 0)
        return LogLevel::Silent;
    throw std::runtime_error(
        std::string("RMCC_LOG_LEVEL: unknown level '") + s +
        "' (expected debug|info|warn|error|silent)");
}

namespace
{

//! -1 = unresolved; otherwise a LogLevel value.  Relaxed atomics: worst
//! case two threads both parse the same env value.
std::atomic<int> g_level{-1};

} // namespace

LogLevel
logLevel()
{
    int lvl = g_level.load(std::memory_order_relaxed);
    if (lvl >= 0)
        return static_cast<LogLevel>(lvl);
    const auto s = envString("RMCC_LOG_LEVEL");
    LogLevel resolved = LogLevel::Info;
    if (s) {
        try {
            resolved = logLevelFromString(s->c_str());
        } catch (const std::exception &e) {
            // fatal, not throw: logLevel() runs from destructors and
            // noexcept contexts where an escaping exception would abort
            // with no message at all.
            fatal("%s", e.what());
        }
    }
    g_level.store(static_cast<int>(resolved), std::memory_order_relaxed);
    return resolved;
}

void
resetLogLevelForTest()
{
    g_level.store(-1, std::memory_order_relaxed);
}

namespace detail
{

void
logTimestamp(char *buf, std::size_t n)
{
    const auto now = std::chrono::system_clock::now();
    const std::time_t t = std::chrono::system_clock::to_time_t(now);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count() %
                    1000;
    std::tm tm{};
#if defined(_WIN32)
    localtime_s(&tm, &t);
#else
    localtime_r(&t, &tm);
#endif
    std::snprintf(buf, n, "%02d:%02d:%02d.%03d", tm.tm_hour, tm.tm_min,
                  tm.tm_sec, static_cast<int>(ms));
}

const char *
levelTag(LogLevel lvl)
{
    switch (lvl) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Silent: break;
    }
    return "?";
}

} // namespace detail

} // namespace rmcc::util
