/**
 * @file
 * Deterministic pseudo-random number generation for simulation.
 *
 * All stochastic behaviour in the repository (workload generation, counter
 * initialization, replacement tie-breaking) flows through Rng so that every
 * experiment is reproducible from a single 64-bit seed.  The generator is
 * xoshiro256** (Blackman & Vigna), which is fast, has a 2^256-1 period, and
 * passes BigCrush; it is *not* used for any cryptographic purpose (the
 * crypto module has real AES for that).
 */
#ifndef RMCC_UTIL_RNG_HPP
#define RMCC_UTIL_RNG_HPP

#include <cstdint>

namespace rmcc::util
{

/**
 * xoshiro256** PRNG with SplitMix64 seeding.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire rejection; bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::uint64_t nextInRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p (clamped to [0,1]). */
    bool nextBool(double p = 0.5);

    /**
     * Geometric-ish integer with the given mean (>= 0); used for
     * inter-memory-op instruction gaps in workload models.
     */
    std::uint32_t nextGeometric(double mean);

    /**
     * Zipf-distributed rank in [0, n) with exponent s; used to give graph
     * workloads their power-law vertex popularity.  Uses precomputed CDF,
     * so construct a util::ZipfSampler (util/zipf.hpp) for hot loops
     * instead.
     */
    std::uint64_t nextZipf(std::uint64_t n, double s);

    /** Fork a statistically independent child generator. */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace rmcc::util

#endif // RMCC_UTIL_RNG_HPP
