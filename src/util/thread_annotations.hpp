/**
 * @file
 * Clang Thread Safety Analysis macros for the RMCC concurrency surface.
 *
 * Under Clang each macro expands to the corresponding
 * `__attribute__((...))` so `-Wthread-safety` (promoted to an error in
 * the static-analysis CI job) proves lock discipline at compile time:
 * every access to an RMCC_GUARDED_BY member must happen with its
 * capability held, and every function marked RMCC_REQUIRES can only be
 * called with the lock already taken.  Under any other compiler the
 * macros expand to nothing, so GCC builds (the default container
 * toolchain) are unaffected.
 *
 * libstdc++'s std::mutex carries no such attributes, so the analysis
 * only works through the annotated wrappers in util/mutex.hpp
 * (util::Mutex / util::MutexLock).  New mutex-protected state should use
 * those wrappers and annotate each protected member with
 * RMCC_GUARDED_BY(mu_); see docs/STATIC_ANALYSIS.md for the recipe.
 */
#ifndef RMCC_UTIL_THREAD_ANNOTATIONS_HPP
#define RMCC_UTIL_THREAD_ANNOTATIONS_HPP

#if defined(__clang__)
#define RMCC_THREAD_ATTR(x) __attribute__((x))
#else
#define RMCC_THREAD_ATTR(x)
#endif

//! Marks a type as a lockable capability (mutexes).
#define RMCC_CAPABILITY(x) RMCC_THREAD_ATTR(capability(x))

//! Marks an RAII type whose lifetime acquires/releases a capability.
#define RMCC_SCOPED_CAPABILITY RMCC_THREAD_ATTR(scoped_lockable)

//! Data member readable/writable only with the named capability held.
#define RMCC_GUARDED_BY(x) RMCC_THREAD_ATTR(guarded_by(x))

//! Pointer member whose pointee is protected by the named capability.
#define RMCC_PT_GUARDED_BY(x) RMCC_THREAD_ATTR(pt_guarded_by(x))

//! Function acquires the capability (must not already hold it).
#define RMCC_ACQUIRE(...) RMCC_THREAD_ATTR(acquire_capability(__VA_ARGS__))

//! Function releases the capability (must hold it on entry).
#define RMCC_RELEASE(...) RMCC_THREAD_ATTR(release_capability(__VA_ARGS__))

//! Function may acquire the capability; first arg is the success value.
#define RMCC_TRY_ACQUIRE(...) \
    RMCC_THREAD_ATTR(try_acquire_capability(__VA_ARGS__))

//! Caller must hold the capability for the duration of the call.
#define RMCC_REQUIRES(...) \
    RMCC_THREAD_ATTR(requires_capability(__VA_ARGS__))

//! Caller must NOT hold the capability (deadlock prevention).
#define RMCC_EXCLUDES(...) RMCC_THREAD_ATTR(locks_excluded(__VA_ARGS__))

//! Runtime assertion that the capability is held (no acquire/release).
#define RMCC_ASSERT_CAPABILITY(x) RMCC_THREAD_ATTR(assert_capability(x))

//! Function returns a reference to the named capability.
#define RMCC_RETURN_CAPABILITY(x) RMCC_THREAD_ATTR(lock_returned(x))

//! Opt a function out of the analysis entirely (document why at use).
#define RMCC_NO_THREAD_SAFETY_ANALYSIS \
    RMCC_THREAD_ATTR(no_thread_safety_analysis)

#endif // RMCC_UTIL_THREAD_ANNOTATIONS_HPP
