#include "util/thread_pool.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "util/env.hpp"

namespace rmcc::util
{

namespace
{

//! Pool-worker index of this thread; -1 off-pool.  Set once at worker
//! startup, so reads need no synchronization.
thread_local int t_worker_id = -1;

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] {
            t_worker_id = static_cast<int>(i);
            workerLoop();
        });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        MutexLock lock(mutex_);
        queue_.push_back(std::move(job));
        ++in_flight_;
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    MutexLock lock(mutex_);
    idle_cv_.wait(lock,
                  [this]() RMCC_REQUIRES(mutex_) { return in_flight_ == 0; });
    if (!errors_.empty()) {
        std::exception_ptr first = errors_.front();
        errors_.erase(errors_.begin());
        lock.unlock();
        std::rethrow_exception(first);
    }
}

void
ThreadPool::waitAll()
{
    MutexLock lock(mutex_);
    idle_cv_.wait(lock,
                  [this]() RMCC_REQUIRES(mutex_) { return in_flight_ == 0; });
}

std::vector<std::exception_ptr>
ThreadPool::takeErrors()
{
    MutexLock lock(mutex_);
    return std::exchange(errors_, {});
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            MutexLock lock(mutex_);
            work_cv_.wait(lock, [this]() RMCC_REQUIRES(mutex_) {
                return stop_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            job();
        } catch (...) {
            MutexLock lock(mutex_);
            errors_.push_back(std::current_exception());
        }
        {
            MutexLock lock(mutex_);
            if (--in_flight_ == 0)
                idle_cv_.notify_all();
        }
    }
}

int
ThreadPool::currentWorkerId()
{
    return t_worker_id;
}

int
currentWorkerId()
{
    return ThreadPool::currentWorkerId();
}

unsigned
ThreadPool::envJobs()
{
    if (const auto v = envPositive("RMCC_JOBS")) {
        if (*v > 4096)
            throw std::runtime_error(
                "RMCC_JOBS: expected a sane thread count, got " +
                std::to_string(*v));
        return static_cast<unsigned>(*v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
parallelFor(ThreadPool &pool, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (n <= 1 || pool.threadCount() <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace rmcc::util
