#include "util/thread_pool.hpp"

#include <cstdlib>
#include <utility>

namespace rmcc::util
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        ++in_flight_;
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
    if (first_error_) {
        std::exception_ptr err = std::exchange(first_error_, nullptr);
        lock.unlock();
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock,
                          [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            job();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--in_flight_ == 0)
                idle_cv_.notify_all();
        }
    }
}

unsigned
ThreadPool::envJobs()
{
    if (const char *env = std::getenv("RMCC_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
parallelFor(ThreadPool &pool, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (n <= 1 || pool.threadCount() <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace rmcc::util
