#include "util/table.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "util/log.hpp"

namespace rmcc::util
{

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addRow(const std::string &label, const std::vector<double> &values,
              int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(fmtDouble(v, precision));
    addRow(std::move(cells));
}

std::string
Table::toText() const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    if (!title_.empty())
        out << "== " << title_ << " ==\n";
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out << (c ? "  " : "");
            out << cells[c];
            out << std::string(widths[c] - cells[c].size(), ' ');
        }
        out << '\n';
    };
    emit_row(headers_);
    std::size_t total = headers_.size() ? (headers_.size() - 1) * 2 : 0;
    for (auto w : widths)
        total += w;
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return out.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            out << (c ? "," : "") << cells[c];
        out << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
    return out.str();
}

void
Table::emit(const std::string &csv_path) const
{
    std::cout << toText() << std::endl;
    if (!csv_path.empty()) {
        std::ofstream f(csv_path);
        if (f)
            f << toCsv();
        else
            warn("cannot write %s", csv_path.c_str());
    }
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string
fmtPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
    return buf;
}

} // namespace rmcc::util
