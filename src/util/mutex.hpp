/**
 * @file
 * Thread-safety-annotated mutex wrappers.
 *
 * libstdc++'s std::mutex / std::lock_guard carry no Clang Thread Safety
 * attributes, so code using them directly is invisible to
 * `-Wthread-safety`.  These thin wrappers add the attributes without
 * changing behaviour: util::Mutex is a capability, util::MutexLock is
 * the RAII guard (replacing both std::lock_guard and std::unique_lock),
 * and util::CondVar is std::condition_variable_any, which can wait on
 * MutexLock because MutexLock satisfies BasicLockable.
 *
 * Usage:
 *
 *     util::Mutex mu_;
 *     int value_ RMCC_GUARDED_BY(mu_);
 *
 *     void set(int v)
 *     {
 *         util::MutexLock lock(mu_);
 *         value_ = v;  // OK; without the lock Clang errors out
 *     }
 */
#ifndef RMCC_UTIL_MUTEX_HPP
#define RMCC_UTIL_MUTEX_HPP

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace rmcc::util
{

/** std::mutex annotated as a Clang TSA capability. */
class RMCC_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() RMCC_ACQUIRE() { mu_.lock(); }
    void unlock() RMCC_RELEASE() { mu_.unlock(); }
    bool try_lock() RMCC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    // The raw mutex lives only here; everything else guards through the
    // annotated wrapper.
    std::mutex mu_; // rmcc-lint: allow(mutex-guard)
};

/**
 * RAII lock for util::Mutex, standing in for both std::lock_guard and
 * std::unique_lock: it satisfies BasicLockable (so util::CondVar can
 * wait on it) and supports manual unlock()/lock() for the rare
 * drop-the-lock-then-rethrow pattern.
 */
class RMCC_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) RMCC_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
        owns_ = true;
    }

    ~MutexLock() RMCC_RELEASE()
    {
        if (owns_)
            mu_.unlock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Re-acquire after a manual unlock(). */
    void lock() RMCC_ACQUIRE()
    {
        mu_.lock();
        owns_ = true;
    }

    /** Release early (before scope exit). */
    void unlock() RMCC_RELEASE()
    {
        mu_.unlock();
        owns_ = false;
    }

  private:
    Mutex &mu_;
    bool owns_ = false;
};

/**
 * Condition variable usable with util::MutexLock.  The _any variant
 * waits on any BasicLockable; with a MutexLock it behaves exactly like
 * std::condition_variable on the underlying std::mutex.
 */
using CondVar = std::condition_variable_any;

} // namespace rmcc::util

#endif // RMCC_UTIL_MUTEX_HPP
