#include "util/bitvec.hpp"

#include <bit>
#include <cassert>

namespace rmcc::util
{

std::uint64_t
BitVec512::get(std::size_t offset, std::size_t width) const
{
    assert(width <= 64 && offset + width <= kBits);
    if (width == 0)
        return 0;
    const std::size_t word = offset / 64;
    const std::size_t shift = offset % 64;
    std::uint64_t value = words_[word] >> shift;
    if (shift + width > 64)
        value |= words_[word + 1] << (64 - shift);
    if (width < 64)
        value &= (1ULL << width) - 1;
    return value;
}

void
BitVec512::set(std::size_t offset, std::size_t width, std::uint64_t value)
{
    assert(width <= 64 && offset + width <= kBits);
    if (width == 0)
        return;
    const std::uint64_t mask =
        width == 64 ? ~0ULL : ((1ULL << width) - 1);
    value &= mask;
    const std::size_t word = offset / 64;
    const std::size_t shift = offset % 64;
    words_[word] = (words_[word] & ~(mask << shift)) | (value << shift);
    if (shift + width > 64) {
        const std::size_t spill = shift + width - 64;
        const std::uint64_t hi_mask = (1ULL << spill) - 1;
        words_[word + 1] = (words_[word + 1] & ~hi_mask) |
                           (value >> (64 - shift));
    }
}

std::size_t
BitVec512::popcount() const
{
    std::size_t n = 0;
    for (auto w : words_)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

std::size_t
bitWidth(std::uint64_t value)
{
    return static_cast<std::size_t>(std::bit_width(value));
}

} // namespace rmcc::util
