/**
 * @file
 * Fixed-width bit packing over a 64-byte container, used to model the exact
 * bit layout of counter blocks (majors, format tags, bitmaps, minor arrays).
 */
#ifndef RMCC_UTIL_BITVEC_HPP
#define RMCC_UTIL_BITVEC_HPP

#include <array>
#include <cstdint>
#include <cstddef>

namespace rmcc::util
{

/**
 * A 512-bit little-endian bit container with arbitrary-width field access.
 *
 * Fields are addressed by (bit offset, width <= 64).  This mirrors how a
 * hardware counter block is laid out and lets the counter-scheme models
 * prove that their encodings actually fit in 64 bytes.
 */
class BitVec512
{
  public:
    /** Number of bits in the container. */
    static constexpr std::size_t kBits = 512;

    /** All-zero container. */
    BitVec512() { words_.fill(0); }

    /** Read `width` bits starting at bit `offset`; width in [0, 64]. */
    std::uint64_t get(std::size_t offset, std::size_t width) const;

    /** Write the low `width` bits of value at bit `offset`. */
    void set(std::size_t offset, std::size_t width, std::uint64_t value);

    /** Zero the whole container. */
    void clear() { words_.fill(0); }

    /** Total number of set bits. */
    std::size_t popcount() const;

    /** Raw word access for hashing/serialization. */
    const std::array<std::uint64_t, 8> &words() const { return words_; }

    bool operator==(const BitVec512 &other) const = default;

  private:
    std::array<std::uint64_t, 8> words_;
};

/** Smallest width (bits) that can represent value; bitWidth(0) == 0. */
std::size_t bitWidth(std::uint64_t value);

} // namespace rmcc::util

#endif // RMCC_UTIL_BITVEC_HPP
