#include "util/env.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rmcc::util
{

namespace
{

[[noreturn]] void
rejectValue(const char *name, const char *value, const char *why)
{
    throw std::runtime_error(std::string(name) + ": expected " + why +
                             ", got \"" + value + "\"");
}

} // namespace

std::optional<std::uint64_t>
envUnsigned(const char *name)
{
    const char *value = std::getenv(name);
    if (!value || value[0] == '\0')
        return std::nullopt;
    // Reject signs and whitespace up front: strtoull would accept "-2"
    // by wrapping it to a huge unsigned value.
    if (!std::isdigit(static_cast<unsigned char>(value[0])))
        rejectValue(name, value, "a non-negative integer");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0')
        rejectValue(name, value, "a non-negative integer");
    if (errno == ERANGE)
        rejectValue(name, value, "an integer within 64 bits");
    return static_cast<std::uint64_t>(v);
}

std::uint64_t
envUnsignedOr(const char *name, std::uint64_t fallback)
{
    return envUnsigned(name).value_or(fallback);
}

std::optional<std::uint64_t>
envPositive(const char *name)
{
    const std::optional<std::uint64_t> v = envUnsigned(name);
    if (v && *v == 0) {
        const char *raw = std::getenv(name);
        throw std::runtime_error(std::string(name) +
                                 ": expected a positive integer, got \"" +
                                 (raw ? raw : "") + "\"");
    }
    return v;
}

std::optional<double>
envDouble(const char *name)
{
    const char *value = std::getenv(name);
    if (!value || value[0] == '\0')
        return std::nullopt;
    // Reject signs, whitespace, and the inf/nan spellings up front:
    // strtod accepts all of them, and none make sense for a knob.
    if (!std::isdigit(static_cast<unsigned char>(value[0])) &&
        value[0] != '.')
        rejectValue(name, value, "a non-negative number");
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(value, &end);
    if (end == value || *end != '\0')
        rejectValue(name, value, "a non-negative number");
    if (errno == ERANGE || !std::isfinite(v))
        rejectValue(name, value, "a finite number");
    return v;
}

double
envDoubleOr(const char *name, double fallback)
{
    return envDouble(name).value_or(fallback);
}

std::string
envChoice(const char *name, const std::vector<std::string> &choices,
          const std::string &fallback)
{
    const char *value = std::getenv(name);
    if (!value || value[0] == '\0')
        return fallback;
    for (const std::string &c : choices)
        if (c == value)
            return c;
    std::string expected = "one of {";
    for (std::size_t i = 0; i < choices.size(); ++i)
        expected += (i ? ", " : "") + choices[i];
    expected += "}";
    rejectValue(name, value, expected.c_str());
}

std::optional<std::string>
envString(const char *name)
{
    const char *value = std::getenv(name);
    if (!value || value[0] == '\0')
        return std::nullopt;
    return std::string(value);
}

std::string
envStringOr(const char *name, const std::string &fallback)
{
    return envString(name).value_or(fallback);
}

} // namespace rmcc::util
