/**
 * @file
 * Cooperative cancellation for long-running simulation cells.
 *
 * Simulations cannot be preempted safely mid-flight (component state and
 * obs buffers would be torn), so cancellation is cooperative: the suite
 * runner installs a thread-local CancelScope around each cell — carrying
 * an optional external abort flag (graceful shutdown) and an optional
 * deadline (RMCC_CELL_TIMEOUT_MS) — and the simulator hot loops call
 * pollCancel() every few thousand records.  A tripped scope throws
 * CancelledError, which unwinds the cell cleanly through the ordinary
 * failure path.  With no scope installed, pollCancel() is a thread-local
 * load and a predicted branch, so bit-identity and replay throughput are
 * untouched.
 *
 * Thread-safety audit (see docs/STATIC_ANALYSIS.md): this module is
 * deliberately mutex-free.  All scope state is thread_local — one
 * ScopeState per thread, never shared — so there is nothing for
 * RMCC_GUARDED_BY to guard; the only cross-thread communication is the
 * external abort flag, which is a std::atomic<bool> read with relaxed
 * ordering (the flag is a latch, not a synchronization edge).
 */
#ifndef RMCC_UTIL_CANCEL_HPP
#define RMCC_UTIL_CANCEL_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace rmcc::util
{

/** Thrown by pollCancel() when the installed scope has tripped. */
class CancelledError : public std::runtime_error
{
  public:
    enum class Reason
    {
        Timeout,  //!< The scope's deadline elapsed.
        Shutdown, //!< The external abort flag was raised.
    };

    CancelledError(Reason reason, const std::string &what)
        : std::runtime_error(what), reason_(reason)
    {
    }

    Reason reason() const { return reason_; }

  private:
    Reason reason_;
};

/**
 * RAII installer of the current thread's cancellation scope.
 *
 * Scopes do not nest: constructing a second scope on the same thread
 * replaces the first until it is destroyed (the suite runner installs
 * exactly one per cell attempt, so nesting never happens in practice).
 */
class CancelScope
{
  public:
    /**
     * @param flag External abort flag (may be null), e.g. the suite
     *   shutdown flag raised by SIGTERM/SIGINT.
     * @param timeout_ms Deadline from now; 0 means no deadline.
     */
    CancelScope(const std::atomic<bool> *flag, std::uint64_t timeout_ms);
    ~CancelScope();

    CancelScope(const CancelScope &) = delete;
    CancelScope &operator=(const CancelScope &) = delete;

  private:
    const std::atomic<bool> *prev_flag_;
    std::chrono::steady_clock::time_point prev_deadline_;
    std::uint64_t prev_timeout_ms_;
    bool prev_active_;
};

/** Has the current thread's scope tripped (flag raised or deadline hit)? */
bool cancelRequested();

/**
 * Throw CancelledError if the current scope has tripped; no-op without a
 * scope.  Hot loops call this every few thousand iterations.
 */
void pollCancel();

} // namespace rmcc::util

#endif // RMCC_UTIL_CANCEL_HPP
