#include "util/stats.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace rmcc::util
{

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::mean() const
{
    return n_ ? sum_ / static_cast<double>(n_) : 0.0;
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

Histogram::Histogram(double lo, double hi, std::size_t nbuckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(nbuckets ? nbuckets : 1)),
      counts_(nbuckets ? nbuckets : 1, 0)
{
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto i = static_cast<std::size_t>((x - lo_) / width_);
        i = std::min(i, counts_.size() - 1);
        ++counts_[i];
    }
}

double
Histogram::quantile(double p) const
{
    if (total_ == 0)
        return lo_;
    p = std::clamp(p, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(total_));
    std::uint64_t acc = underflow_;
    if (acc >= target && underflow_ > 0)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        acc += counts_[i];
        if (acc >= target)
            return lo_ + (static_cast<double>(i) + 0.5) * width_;
    }
    return hi_;
}

double
geomean(const std::vector<double> &xs)
{
    double acc = 0.0;
    std::size_t n = 0;
    for (double x : xs) {
        if (x > 0.0) {
            acc += std::log(x);
            ++n;
        }
    }
    return n ? std::exp(acc / static_cast<double>(n)) : 0.0;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

namespace
{

//! Process-wide string-lookup counter; relaxed is enough for a monotonic
//! diagnostic counter read only between simulation phases.
std::atomic<std::uint64_t> g_string_lookups{0};

} // namespace

std::uint64_t
StatSet::stringLookups()
{
    return g_string_lookups.load(std::memory_order_relaxed);
}

StatHandle
StatSet::handle(const std::string &name)
{
    g_string_lookups.fetch_add(1, std::memory_order_relaxed);
    return StatHandle(slotFor(name));
}

double
StatSet::get(const std::string &name) const
{
    g_string_lookups.fetch_add(1, std::memory_order_relaxed);
    const auto it = index_.find(name);
    return it == index_.end() ? 0.0 : values_[it->second];
}

double
StatSet::ratio(const std::string &a, const std::string &b) const
{
    const double denom = get(b);
    return denom == 0.0 ? 0.0 : get(a) / denom;
}

std::map<std::string, double>
StatSet::all() const
{
    std::map<std::string, double> out;
    for (const auto &[name, idx] : index_)
        if (written_[idx])
            out.emplace(name, values_[idx]);
    return out;
}

std::uint32_t
StatSet::slotFor(const std::string &name)
{
    const auto it = index_.find(name);
    if (it != index_.end())
        return it->second;
    const auto idx = static_cast<std::uint32_t>(values_.size());
    index_.emplace(name, idx);
    values_.push_back(0.0);
    written_.push_back(0);
    return idx;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, idx] : other.index_) {
        if (!other.written_[idx])
            continue;
        const std::uint32_t mine = slotFor(name);
        values_[mine] += other.values_[idx];
        written_[mine] = 1;
    }
}

StatSet
StatSet::diff(const StatSet &earlier) const
{
    StatSet out;
    for (const auto &[name, idx] : index_) {
        if (!written_[idx])
            continue;
        const auto it = earlier.index_.find(name);
        const double base =
            it == earlier.index_.end() ? 0.0 : earlier.values_[it->second];
        const std::uint32_t slot = out.slotFor(name);
        out.values_[slot] = values_[idx] - base;
        out.written_[slot] = 1;
    }
    return out;
}

} // namespace rmcc::util
