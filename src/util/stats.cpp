#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace rmcc::util
{

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::mean() const
{
    return n_ ? sum_ / static_cast<double>(n_) : 0.0;
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

Histogram::Histogram(double lo, double hi, std::size_t nbuckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(nbuckets ? nbuckets : 1)),
      counts_(nbuckets ? nbuckets : 1, 0)
{
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto i = static_cast<std::size_t>((x - lo_) / width_);
        i = std::min(i, counts_.size() - 1);
        ++counts_[i];
    }
}

double
Histogram::quantile(double p) const
{
    if (total_ == 0)
        return lo_;
    p = std::clamp(p, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(total_));
    std::uint64_t acc = underflow_;
    if (acc >= target && underflow_ > 0)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        acc += counts_[i];
        if (acc >= target)
            return lo_ + (static_cast<double>(i) + 0.5) * width_;
    }
    return hi_;
}

double
geomean(const std::vector<double> &xs)
{
    double acc = 0.0;
    std::size_t n = 0;
    for (double x : xs) {
        if (x > 0.0) {
            acc += std::log(x);
            ++n;
        }
    }
    return n ? std::exp(acc / static_cast<double>(n)) : 0.0;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

void
StatSet::inc(const std::string &name, double delta)
{
    values_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    values_[name] = value;
}

double
StatSet::get(const std::string &name) const
{
    const auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

double
StatSet::ratio(const std::string &a, const std::string &b) const
{
    const double denom = get(b);
    return denom == 0.0 ? 0.0 : get(a) / denom;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.values_)
        values_[name] += value;
}

StatSet
StatSet::diff(const StatSet &earlier) const
{
    StatSet out;
    for (const auto &[name, value] : values_)
        out.set(name, value - earlier.get(name));
    return out;
}

} // namespace rmcc::util
