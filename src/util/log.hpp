/**
 * @file
 * Leveled logging in the spirit of gem5's logging.hh.
 *
 * Severity model:
 *   logDebug(): chatty diagnostics, off by default.
 *   logInfo():  progress/one-line status (suite progress, bench phases).
 *   warn():     something works but not as well as it should.
 *   logError(): an operation failed but the process continues (a cell
 *               failed, a file could not be written).
 *   fatal():    user-correctable problem (bad configuration) -> exit(1).
 *   panic():    internal invariant violation (a bug) -> abort().
 *
 * RMCC_LOG_LEVEL selects the minimum severity that prints
 * (debug|info|warn|error|silent, default info) and is strict-parsed:
 * garbage is rejected loudly rather than silently defaulting.  fatal()
 * and panic() always print — a process should never die silently.
 *
 * Every line is prefixed with a wall-clock timestamp and severity tag,
 * e.g. "[14:03:22.187] warn: ...", and written to stderr in one fprintf
 * per line so concurrent suite workers do not interleave mid-line.
 */
#ifndef RMCC_UTIL_LOG_HPP
#define RMCC_UTIL_LOG_HPP

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace rmcc::util
{

/** Message severities, ordered; Silent suppresses everything non-fatal. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Silent = 4,
};

/**
 * Parse a log-level spelling ("debug", "info", "warn", "error",
 * "silent").  @throws std::runtime_error on anything else.
 */
LogLevel logLevelFromString(const char *s);

/**
 * The active minimum severity: RMCC_LOG_LEVEL on first call (cached),
 * default Info.  A malformed value is a user error -> fatal(), not a
 * throw, so logging stays usable from destructors.
 */
LogLevel logLevel();

/** Forget the cached level so the next logLevel() re-reads the env. */
void resetLogLevelForTest();

/** True when messages of severity lvl currently print. */
inline bool
logEnabled(LogLevel lvl)
{
    return static_cast<int>(lvl) >= static_cast<int>(logLevel());
}

namespace detail
{

/** Fill buf with the current wall-clock time as HH:MM:SS.mmm. */
void logTimestamp(char *buf, std::size_t n);

/** Severity tag as printed ("debug", "info", "warn", "error"). */
const char *levelTag(LogLevel lvl);

template <typename... Args>
void
logLine(LogLevel lvl, const char *fmt, Args &&...args)
{
    char line[1024];
    int off = 0;
    {
        char ts[32];
        logTimestamp(ts, sizeof ts);
        off = std::snprintf(line, sizeof line, "[%s] %s: ", ts,
                            levelTag(lvl));
    }
    if (off < 0)
        off = 0;
    const auto room = sizeof line - static_cast<std::size_t>(off);
    if constexpr (sizeof...(Args) == 0)
        std::snprintf(line + off, room, "%s", fmt);
    else
        std::snprintf(line + off, room, fmt, std::forward<Args>(args)...);
    std::fprintf(stderr, "%s\n", line);
}

} // namespace detail

/** Chatty diagnostic; printed only at RMCC_LOG_LEVEL=debug. */
template <typename... Args>
void
logDebug(const char *fmt, Args &&...args)
{
    if (logEnabled(LogLevel::Debug))
        detail::logLine(LogLevel::Debug, fmt,
                        std::forward<Args>(args)...);
}

/** Progress/status line (default-visible). */
template <typename... Args>
void
logInfo(const char *fmt, Args &&...args)
{
    if (logEnabled(LogLevel::Info))
        detail::logLine(LogLevel::Info, fmt, std::forward<Args>(args)...);
}

/** Non-fatal warning. */
template <typename... Args>
void
warn(const char *fmt, Args &&...args)
{
    if (logEnabled(LogLevel::Warn))
        detail::logLine(LogLevel::Warn, fmt, std::forward<Args>(args)...);
}

/** A failed operation the process survives. */
template <typename... Args>
void
logError(const char *fmt, Args &&...args)
{
    if (logEnabled(LogLevel::Error))
        detail::logLine(LogLevel::Error, fmt,
                        std::forward<Args>(args)...);
}

/** Terminate with exit(1) after printing a user-error message. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    std::fprintf(stderr, "fatal: ");
    if constexpr (sizeof...(Args) == 0)
        std::fprintf(stderr, "%s", fmt);
    else
        std::fprintf(stderr, fmt, std::forward<Args>(args)...);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

/** Abort after printing an internal-bug message. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    std::fprintf(stderr, "panic: ");
    if constexpr (sizeof...(Args) == 0)
        std::fprintf(stderr, "%s", fmt);
    else
        std::fprintf(stderr, fmt, std::forward<Args>(args)...);
    std::fprintf(stderr, "\n");
    std::abort();
}

} // namespace rmcc::util

#endif // RMCC_UTIL_LOG_HPP
