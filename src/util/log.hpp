/**
 * @file
 * Minimal fatal/panic/warn helpers in the spirit of gem5's logging.hh.
 *
 * fatal(): user-correctable problem (bad configuration) -> exit(1).
 * panic(): internal invariant violation (a bug in this library) -> abort().
 * warn():  something works but not as well as it should.
 */
#ifndef RMCC_UTIL_LOG_HPP
#define RMCC_UTIL_LOG_HPP

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace rmcc::util
{

/** Terminate with exit(1) after printing a user-error message. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args &&...args)
{
    std::fprintf(stderr, "fatal: ");
    if constexpr (sizeof...(Args) == 0)
        std::fprintf(stderr, "%s", fmt);
    else
        std::fprintf(stderr, fmt, std::forward<Args>(args)...);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

/** Abort after printing an internal-bug message. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args &&...args)
{
    std::fprintf(stderr, "panic: ");
    if constexpr (sizeof...(Args) == 0)
        std::fprintf(stderr, "%s", fmt);
    else
        std::fprintf(stderr, fmt, std::forward<Args>(args)...);
    std::fprintf(stderr, "\n");
    std::abort();
}

/** Non-fatal warning. */
template <typename... Args>
void
warn(const char *fmt, Args &&...args)
{
    std::fprintf(stderr, "warn: ");
    if constexpr (sizeof...(Args) == 0)
        std::fprintf(stderr, "%s", fmt);
    else
        std::fprintf(stderr, fmt, std::forward<Args>(args)...);
    std::fprintf(stderr, "\n");
}

} // namespace rmcc::util

#endif // RMCC_UTIL_LOG_HPP
