#include "util/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace rmcc::util
{

ZipfSampler::ZipfSampler(std::uint64_t n, double s)
{
    cdf_.resize(n ? n : 1);
    double acc = 0.0;
    for (std::uint64_t i = 0; i < cdf_.size(); ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = acc;
    }
    for (auto &c : cdf_)
        c /= acc;

    // Guide table: K a power of two so u*K and k/K are exact, sized to
    // leave ~4 CDF entries per bucket (capped at 2^20 entries).
    std::uint64_t k_buckets = 1;
    while (k_buckets < cdf_.size() / 4 && k_buckets < (1ULL << 20))
        k_buckets <<= 1;
    buckets_ = static_cast<double>(k_buckets);
    guide_.resize(k_buckets + 1);
    std::uint32_t idx = 0;
    for (std::uint64_t k = 0; k <= k_buckets; ++k) {
        const double target =
            static_cast<double>(k) / static_cast<double>(k_buckets);
        while (idx < cdf_.size() && cdf_[idx] < target)
            ++idx;
        guide_[k] = idx; // == lower_bound(cdf_, k/K)
    }
}

std::uint64_t
ZipfSampler::operator()(Rng &rng) const
{
    const double u = rng.nextDouble();
    // u lies in bucket k, so its lower_bound lies in
    // [guide[k], guide[k+1]]: cdf[guide[k+1]] >= (k+1)/K > u.
    const auto k = static_cast<std::size_t>(u * buckets_);
    const auto first = cdf_.begin() + guide_[k];
    const auto last =
        cdf_.begin() +
        std::min<std::size_t>(guide_[k + 1] + 1, cdf_.size());
    return static_cast<std::uint64_t>(
        std::lower_bound(first, last, u) - cdf_.begin());
}

double
ZipfSampler::mass(std::uint64_t rank) const
{
    if (rank >= cdf_.size())
        return 0.0;
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

} // namespace rmcc::util
