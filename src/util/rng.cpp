#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

#include "util/zipf.hpp"

namespace rmcc::util
{

namespace
{

/** SplitMix64 step used to expand the seed into xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
    // Guard against the all-zero state, which is a fixed point.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    // Lemire's multiply-shift with rejection for exact uniformity.
    if (bound == 0)
        return 0;
    while (true) {
        const std::uint64_t x = next();
        const unsigned __int128 m =
            static_cast<unsigned __int128>(x) * bound;
        const std::uint64_t lo = static_cast<std::uint64_t>(m);
        if (lo >= bound || lo >= static_cast<std::uint64_t>(-bound) % bound)
            return static_cast<std::uint64_t>(m >> 64);
    }
}

std::uint64_t
Rng::nextInRange(std::uint64_t lo, std::uint64_t hi)
{
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    p = std::clamp(p, 0.0, 1.0);
    return nextDouble() < p;
}

std::uint32_t
Rng::nextGeometric(double mean)
{
    if (mean <= 0.0)
        return 0;
    const double u = 1.0 - nextDouble(); // in (0, 1]
    const double v = -mean * std::log(u);
    return static_cast<std::uint32_t>(std::min(v, 1.0e9));
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double s)
{
    ZipfSampler sampler(n, s);
    return sampler(*this);
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace rmcc::util
