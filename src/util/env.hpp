/**
 * @file
 * Strict environment-variable parsing for the RMCC_* knobs.
 *
 * The runner knobs (RMCC_JOBS, RMCC_CELL_RETRIES, ...) used to fall back
 * silently when set to garbage, which turns a typo into an hours-long
 * surprise (a suite quietly running single-threaded, retries quietly
 * disabled).  These helpers reject malformed values loudly instead: a
 * std::runtime_error naming the variable and the offending text.
 */
#ifndef RMCC_UTIL_ENV_HPP
#define RMCC_UTIL_ENV_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rmcc::util
{

/**
 * Value of an integer environment variable.
 *
 * @return nullopt when the variable is unset or empty.
 * @throws std::runtime_error when the value is not a plain non-negative
 *         decimal integer (trailing junk, sign, overflow, "banana", ...);
 *         the message names the variable and quotes the value.
 */
std::optional<std::uint64_t> envUnsigned(const char *name);

/**
 * envUnsigned() with a fallback for the unset/empty case.  Parsing errors
 * still throw — only absence is defaulted.
 */
std::uint64_t envUnsignedOr(const char *name, std::uint64_t fallback);

/**
 * Positive-integer variant for knobs where zero makes no sense (thread
 * counts).  Unset/empty returns nullopt; zero throws like garbage does.
 */
std::optional<std::uint64_t> envPositive(const char *name);

/**
 * Value of a floating-point environment variable (e.g. RMCC_TENANT_SKEW).
 *
 * @return nullopt when the variable is unset or empty.
 * @throws std::runtime_error when the value is not a plain finite
 *         non-negative decimal number ("banana", "-1.5", "inf", trailing
 *         junk); the message names the variable and quotes the value.
 */
std::optional<double> envDouble(const char *name);

/** envDouble() with a fallback for the unset/empty case. */
double envDoubleOr(const char *name, double fallback);

/**
 * Value of an enumerated environment variable (e.g. RMCC_CRYPTO_IMPL).
 *
 * @return fallback when the variable is unset or empty, otherwise the
 *         matching choice.
 * @throws std::runtime_error when the value matches none of the choices;
 *         the message names the variable, quotes the value, and lists the
 *         accepted spellings.  Matching is exact (case-sensitive).
 */
std::string envChoice(const char *name,
                      const std::vector<std::string> &choices,
                      const std::string &fallback);

/**
 * Value of a free-form string environment variable (paths, labels).
 *
 * @return nullopt when the variable is unset or empty — the two cases
 *         are deliberately identical, matching every other accessor
 *         here, so `RMCC_TRACE_DIR= ./run` behaves like unset.
 */
std::optional<std::string> envString(const char *name);

/** envString() with a fallback for the unset/empty case. */
std::string envStringOr(const char *name, const std::string &fallback);

} // namespace rmcc::util

#endif // RMCC_UTIL_ENV_HPP
