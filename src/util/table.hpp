/**
 * @file
 * Text/CSV table rendering for the bench harnesses.  Every bench binary
 * prints the same rows/series the paper's figure reports; this keeps the
 * formatting consistent and writes a machine-readable CSV alongside.
 */
#ifndef RMCC_UTIL_TABLE_HPP
#define RMCC_UTIL_TABLE_HPP

#include <string>
#include <vector>

namespace rmcc::util
{

/**
 * A column-aligned results table with an optional title.
 */
class Table
{
  public:
    /** Create a table with the given title and column headers. */
    Table(std::string title, std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: first cell is a label, the rest are numbers. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 3);

    /** Render as an aligned text table. */
    std::string toText() const;

    /** Render as CSV (headers + rows). */
    std::string toCsv() const;

    /** Print toText() to stdout and write toCsv() to path (if non-empty). */
    void emit(const std::string &csv_path = "") const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string fmtDouble(double v, int precision = 3);

/** Format a fraction as a percentage string, e.g. 0.923 -> "92.3%". */
std::string fmtPercent(double fraction, int precision = 1);

} // namespace rmcc::util

#endif // RMCC_UTIL_TABLE_HPP
