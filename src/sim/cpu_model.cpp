#include "sim/cpu_model.hpp"

#include <algorithm>

namespace rmcc::sim
{

CpuModel::CpuModel(const CpuConfig &cfg)
    : cfg_(cfg),
      ns_per_inst_(1.0 / (cfg.freq_ghz * cfg.width))
{
}

void
CpuModel::enforceLimits()
{
    // Window limit: an op older than (insts_ - rob) must have retired for
    // the current instruction to even enter the window.
    while (!outstanding_.empty()) {
        const Outstanding &oldest = outstanding_.front();
        const bool window_full =
            insts_ - oldest.inst_at_issue >= cfg_.rob;
        const bool mshrs_full = outstanding_.size() >= cfg_.mshrs;
        if (!window_full && !mshrs_full)
            break;
        now_ns_ = std::max(now_ns_, oldest.done_ns);
        outstanding_.pop_front();
    }
    // Anything already complete can leave the queue.
    while (!outstanding_.empty() &&
           outstanding_.front().done_ns <= now_ns_)
        outstanding_.pop_front();
}

double
CpuModel::advance(std::uint32_t inst_gap)
{
    insts_ += inst_gap + 1;
    now_ns_ += static_cast<double>(inst_gap + 1) * ns_per_inst_;
    enforceLimits();
    return now_ns_;
}

void
CpuModel::recordLongLatency(double done_ns)
{
    outstanding_.push_back({done_ns, insts_});
}

void
CpuModel::stallUntil(double t_ns)
{
    now_ns_ = std::max(now_ns_, t_ns);
}

double
CpuModel::finish()
{
    for (const Outstanding &o : outstanding_)
        now_ns_ = std::max(now_ns_, o.done_ns);
    outstanding_.clear();
    return now_ns_;
}

} // namespace rmcc::sim
