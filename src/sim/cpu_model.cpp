#include "sim/cpu_model.hpp"

#include <algorithm>
#include <bit>

namespace rmcc::sim
{

CpuModel::CpuModel(const CpuConfig &cfg)
    : cfg_(cfg),
      ns_per_inst_(1.0 / (cfg.freq_ghz * cfg.width))
{
    // MSHR pressure bounds steady-state occupancy near cfg.mshrs; start
    // one doubling above it so growth is a cold-path rarity.
    ring_.resize(std::bit_ceil(std::max<std::size_t>(cfg.mshrs + 1, 8)));
    mask_ = ring_.size() - 1;
}

void
CpuModel::grow()
{
    std::vector<Outstanding> bigger(ring_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i)
        bigger[i] = ring_[(head_ + i) & mask_];
    ring_ = std::move(bigger);
    head_ = 0;
    mask_ = ring_.size() - 1;
}

void
CpuModel::refreshGates()
{
    if (count_ == 0) {
        // Empty queue: advance()'s count_ check short-circuits first,
        // so the gate values are never read; park them harmlessly.
        gate_done_ns_ = 0.0;
        gate_insts_ = 0;
        return;
    }
    const Outstanding &oldest = ring_[head_];
    gate_done_ns_ = oldest.done_ns;
    gate_insts_ = oldest.inst_at_issue + cfg_.rob;
}

void
CpuModel::enforceLimits()
{
    // Window limit: an op older than (insts_ - rob) must have retired for
    // the current instruction to even enter the window.
    while (count_ != 0) {
        const Outstanding &oldest = ring_[head_];
        const bool window_full =
            insts_ - oldest.inst_at_issue >= cfg_.rob;
        const bool mshrs_full = count_ >= cfg_.mshrs;
        if (!window_full && !mshrs_full)
            break;
        now_ns_ = std::max(now_ns_, oldest.done_ns);
        head_ = (head_ + 1) & mask_;
        --count_;
    }
    // Everything already complete leaves in one batch: scan the ready
    // prefix, then retire it with a single head/count adjustment.
    std::size_t ready = 0;
    while (ready < count_ &&
           ring_[(head_ + ready) & mask_].done_ns <= now_ns_)
        ++ready;
    head_ = (head_ + ready) & mask_;
    count_ -= ready;
    refreshGates();
}

void
CpuModel::recordLongLatency(double done_ns)
{
    if (count_ == ring_.size())
        grow();
    ring_[(head_ + count_) & mask_] = {done_ns, insts_};
    ++count_;
    if (count_ == 1)
        refreshGates(); // the new op is the head and defines the gates
}

void
CpuModel::stallUntil(double t_ns)
{
    now_ns_ = std::max(now_ns_, t_ns);
}

double
CpuModel::finish()
{
    for (std::size_t i = 0; i < count_; ++i)
        now_ns_ = std::max(now_ns_, ring_[(head_ + i) & mask_].done_ns);
    head_ = 0;
    count_ = 0;
    return now_ns_;
}

} // namespace rmcc::sim
