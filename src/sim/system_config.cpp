#include "sim/system_config.hpp"

#include <sstream>

namespace rmcc::sim
{

SystemConfig
SystemConfig::timingDefault()
{
    SystemConfig cfg;
    cfg.mode = SimMode::Timing;
    return cfg;
}

SystemConfig
SystemConfig::functionalDefault()
{
    SystemConfig cfg;
    cfg.mode = SimMode::Functional;
    cfg.l2 = {1024 * 1024, 8, 4.0};
    cfg.llc = {2ULL * 1024 * 1024, 16, 17.0};
    cfg.counter_cache_bytes = 32 * 1024;
    cfg.trace_records = 1500 * 1000;
    cfg.warmup_records = 750 * 1000;
    return cfg;
}

std::string
SystemConfig::describe() const
{
    std::ostringstream out;
    out << "CPU: x86-like, 1 core, " << cpu.freq_ghz << " GHz, "
        << cpu.width << "-wide OoO, " << cpu.rob << " entry ROB\n";
    out << "D-TLB/I-TLB: " << tlb_entries << " entries\n";
    out << "L1 DCache: " << l1.size_bytes / 1024 << " KB " << l1.assoc
        << "-way, " << l1.latency_ns << " ns\n";
    out << "L2 Cache: " << l2.size_bytes / 1024 << " KB " << l2.assoc
        << "-way, " << l2.latency_ns << " ns\n";
    out << "L3 Cache: " << llc.size_bytes / (1024 * 1024) << " MB "
        << llc.assoc << "-way, " << llc.latency_ns << " ns\n";
    out << "Counter Cache in MC: " << counter_cache_bytes / 1024 << " KB "
        << counter_cache_assoc << "-way\n";
    out << "Counter scheme: " << ctr::schemeKindName(scheme)
        << (rmcc ? " + RMCC" : "") << "\n";
    out << "Decoding of Morphable Counters: 3 ns\n";
    out << "AES latency: " << lat.aes_ns << " ns\n";
    out << "Carry-less Multiplication Latency: " << lat.clmul_ns
        << " ns\n";
    out << "Memoization Table in MC: " << rmcc_cfg.memo.entries()
        << " entries for L0 counters, " << rmcc_cfg.memo.entries()
        << " entries for L1 counters\n";
    out << "Memory Data Rate: " << dram.data_rate_gtps << " GT/s\n";
    out << "tCL, tRCD, tRP: " << dram.tCL_ns << " ns\n";
    out << "tRFC: " << dram.tRFC_ns << " ns\n";
    out << "Row buffer policy: " << dram.row_timeout_ns << " ns timeout\n";
    out << "Read/Write queue: " << dram.queue_entries << " entries\n";
    out << "Channels, Ranks: " << dram.channels << ", " << dram.ranks
        << "\n";
    out << "Mapping Function: XOR-based (Skylake-like)\n";
    out << "Bank-level scheduling policy: FR-FCFS-Capped (cap "
        << dram.frfcfs_cap << ")\n";
    // Single-tenant runs keep the exact pre-tenancy table (describe()
    // feeds cell names, so an extra row would change every cell hash).
    if (tenancy.tenants > 1) {
        out << "Tenants: " << tenancy.tenants << ", "
            << (tenancy.strict ? "strict" : "shared")
            << " isolation, vaddr tag shift " << tenancy.tag_shift << "\n";
        if (tenancy.memo_quota != 0)
            out << "Per-tenant memo quota: " << tenancy.memo_quota
                << " groups\n";
    }
    return out.str();
}

} // namespace rmcc::sim
