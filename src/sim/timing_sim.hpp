/**
 * @file
 * Timing (gem5-like) simulator: the OoO CPU proxy drives the cache
 * hierarchy; LLC misses go through the secure MC and DDR4 timing models.
 * Produces the performance and latency numbers of paper Figs 12-14,
 * 17-18.
 */
#ifndef RMCC_SIM_TIMING_SIM_HPP
#define RMCC_SIM_TIMING_SIM_HPP

#include "sim/report.hpp"
#include "sim/system_config.hpp"
#include "trace/trace_source.hpp"

namespace rmcc::sim
{

/**
 * Run the timing simulation of one trace under one configuration.
 * Statistics, instructions, and elapsed time are windowed past warm-up.
 */
SimResult runTiming(const std::string &workload_name,
                    const trace::TraceSource &trace,
                    const SystemConfig &cfg);

} // namespace rmcc::sim

#endif // RMCC_SIM_TIMING_SIM_HPP
