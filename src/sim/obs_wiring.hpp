/**
 * @file
 * Internal: observability wiring shared by both simulators — the cell
 * naming scheme and the standard probe catalog registered over a SimRig.
 *
 * Both runTiming() and runFunctional() create their run registry with
 * makeRunRegistry(cellName(...)), register the probes here, attach the
 * registry to the secure MC, and tick() it once per trace record.  All
 * probes are pure reads, so sampling cannot perturb the simulated
 * results (the RMCC_OBS=off bit-identity guarantee).
 */
#ifndef RMCC_SIM_OBS_WIRING_HPP
#define RMCC_SIM_OBS_WIRING_HPP

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "crypto/dispatch.hpp"
#include "obs/registry.hpp"
#include "sim/rig.hpp"
#include "trace/trace_source.hpp"

namespace rmcc::sim::detail
{

/** 64-bit FNV-1a over a string (cell-name disambiguation hash). */
inline std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

inline const char *
schemeShortName(ctr::SchemeKind k)
{
    switch (k) {
    case ctr::SchemeKind::SgxMonolithic: return "sgx";
    case ctr::SchemeKind::SC64: return "sc64";
    case ctr::SchemeKind::Morphable: return "morphable";
    }
    return "scheme";
}

/**
 * Stable per-(workload, configuration) cell label: a readable prefix plus
 * a hash of everything describe() renders and of the experiment-shape
 * fields describe() leaves out (trace length, warm-up, seed, budget
 * fraction, memo-group geometry), so sensitivity sweeps that vary only a
 * latency or a budget still get distinct obs files.
 */
inline std::string
cellName(const std::string &workload, const SystemConfig &cfg)
{
    std::string label = workload;
    label += cfg.mode == SimMode::Timing ? "-timing" : "-functional";
    if (!cfg.secure)
        label += "-nonsecure";
    else {
        label += "-";
        label += schemeShortName(cfg.scheme);
        if (cfg.rmcc)
            label += "-rmcc";
    }
    std::string key = cfg.describe();
    key += "|records=" + std::to_string(cfg.trace_records);
    key += "|warmup=" + std::to_string(cfg.warmup_records);
    key += "|seed=" + std::to_string(cfg.seed);
    key += "|precond=" + std::to_string(cfg.precondition ? 1 : 0);
    key += "|budget_frac=" +
           std::to_string(cfg.precondition_budget_fraction);
    key += "|epoch=" + std::to_string(cfg.rmcc_cfg.budget.epoch_accesses);
    key += "|groups=" + std::to_string(cfg.rmcc_cfg.memo.groups);
    key += "|gsize=" + std::to_string(cfg.rmcc_cfg.memo.group_size);
    key += "|mlevels=" + std::to_string(cfg.rmcc_cfg.memo_levels);

    char hash[20];
    std::snprintf(hash, sizeof hash, "-%08llx",
                  static_cast<unsigned long long>(fnv1a64(key) &
                                                  0xffffffffULL));
    return obs::sanitizeCellName(label + hash);
}

/**
 * Register the standard probe catalog over a rig.  now_fn supplies the
 * current simulated time for the DRAM-backlog probe (the two simulators
 * keep time differently).  io, when non-null, is the replay cursor's
 * I/O counter block (spilled traces only) and adds the spill probes.
 * Everything referenced must outlive the registry; probe lambdas capture
 * raw pointers/references.
 */
inline void
registerRigProbes(obs::Registry &o, SimRig &rig,
                  const trace::TraceSource &trace,
                  std::function<double()> now_fn,
                  const trace::TraceIoStats *io = nullptr)
{
    // Memoization table + candidate monitor (L0; the headline curves).
    core::RmccEngine &eng = rig.engine;
    if (eng.enabled() && eng.memoLevels() > 0) {
        o.addProbe("memo.lookups",
                   [&eng] { return double(eng.table(0).lookups()); });
        o.addProbe("memo.hits", [&eng] {
            return double(eng.table(0).groupHits() +
                          eng.table(0).recentHits());
        });
        o.addProbe("memo.valid_groups",
                   [&eng] { return double(eng.table(0).validGroups()); });
        o.addProbe("memo.max_in_table",
                   [&eng] { return double(eng.table(0).maxInTable()); });
        o.addProbe("monitor.promotions",
                   [&eng] { return double(eng.groupInsertions(0)); });
        o.addProbe("rmcc.read_updates",
                   [&eng] { return double(eng.readUpdates(0)); });
        o.addRate("memo.hit_rate", "memo.hits", "memo.lookups");
    }

    // Counter overflows and the integrity tree.
    ctr::IntegrityTree &tree = rig.tree;
    o.addProbe("ovf.total",
               [&tree] { return double(tree.totalOverflows()); });
    o.addProbe("ovf.l0", [&tree] {
        return tree.levels() > 0 ? double(tree.overflowsAt(0)) : 0.0;
    });
    o.addProbe("ctr.observed_max",
               [&tree] { return double(tree.observedMax()); });

    // Cache hierarchy + counter cache.
    const cache::SetAssocCache &llc = rig.hier.llc();
    o.addProbe("llc.accesses",
               [&llc] { return double(llc.accesses()); });
    o.addProbe("llc.misses", [&llc] { return double(llc.misses()); });
    o.addRate("llc.miss_rate", "llc.misses", "llc.accesses");
    const cache::SetAssocCache &cc = rig.mc.counterCache();
    o.addProbe("ctr_cache.accesses",
               [&cc] { return double(cc.accesses()); });
    o.addProbe("ctr_cache.misses",
               [&cc] { return double(cc.misses()); });
    o.addRate("ctr_cache.miss_rate", "ctr_cache.misses",
              "ctr_cache.accesses");

    // DRAM: work done plus the bus-backlog queue proxy at sample time.
    dram::Ddr4 &dram = rig.dram;
    o.addProbe("dram.accesses",
               [&dram] { return double(dram.totalAccesses()); });
    o.addProbe("dram.queue_ns", [&dram, now_fn = std::move(now_fn)] {
        return dram.busBacklogNs(now_fn());
    });

    // Crypto ops split hw/sw.  Counts are process-global (see
    // CryptoOpCounts); with a parallel suite, concurrent cells mix.
    crypto::setCryptoOpCounting(true);
    o.addProbe("crypto.aes_hw",
               [] { return double(crypto::cryptoOpCounts().aes_hw); });
    o.addProbe("crypto.aes_sw",
               [] { return double(crypto::cryptoOpCounts().aes_sw); });
    o.addProbe("crypto.clmul_hw",
               [] { return double(crypto::cryptoOpCounts().clmul_hw); });
    o.addProbe("crypto.clmul_sw",
               [] { return double(crypto::cryptoOpCounts().clmul_sw); });
    // Pipelined multi-block dispatches (zero when RMCC_CRYPTO_BATCH is
    // off or the sw kernels are active); block totals stay in the hw/sw
    // counters above regardless of batching.
    o.addProbe("crypto.aes_batch_calls", [] {
        return double(crypto::cryptoOpCounts().aes_batch_calls);
    });
    o.addProbe("crypto.clmul_batch_calls", [] {
        return double(crypto::cryptoOpCounts().clmul_batch_calls);
    });

    // Recovery datapath (zero-cost when RMCC_RECOVERY=off: no probes).
    const mc::RecoveryPolicy &rp = rig.mc.recovery();
    if (rp.active()) {
        o.addProbe("recovery.detections", [&rp] {
            return double(rp.stats().detections);
        });
        o.addProbe("recovery.recovered",
                   [&rp] { return double(rp.stats().recovered()); });
        o.addProbe("recovery.unrecoverable", [&rp] {
            return double(rp.stats().unrecoverable);
        });
        o.addProbe("recovery.refetch_attempts", [&rp] {
            return double(rp.stats().refetch_attempts);
        });
        o.addProbe("recovery.values_quarantined", [&rp] {
            return double(rp.stats().values_quarantined);
        });
        o.addProbe("recovery.degraded_reads", [&rp] {
            return double(rp.stats().degraded_reads);
        });
    }

    // Trace health: records refused by the bounded buffer.
    o.addProbe("trace.dropped",
               [&trace] { return double(trace.dropped()); });

    // Out-of-core replay: window traffic of the spilled-trace cursor
    // (absent entirely for in-RAM traces, keeping their obs output
    // unchanged).
    if (io != nullptr) {
        o.addProbe("trace.windows_served",
                   [io] { return double(io->windows_served); });
        o.addProbe("trace.prefetches",
                   [io] { return double(io->prefetches); });
        o.addProbe("trace.windows_dropped",
                   [io] { return double(io->windows_dropped); });
        o.addProbe("trace.io_wait_ns",
                   [io] { return double(io->wait_ns); });
    }

    // Obs self-diagnostic: epoch rows evicted from the ring so far.
    o.addProbe("obs.epochs_dropped",
               [&o] { return double(o.epochsDropped()); });
}

} // namespace rmcc::sim::detail

#endif // RMCC_SIM_OBS_WIRING_HPP
