/**
 * @file
 * Trace-driven out-of-order CPU proxy (the role gem5's O3 core plays in
 * the paper): 4-wide retire from a 192-entry window, with memory-level
 * parallelism limited by the window and by MSHRs.
 *
 * The model retires instructions at the pipeline width; long-latency
 * memory operations enter an outstanding queue and overlap until either
 * (a) the reorder window fills — the clock then waits for the oldest
 * outstanding completion — or (b) MSHRs run out.
 */
#ifndef RMCC_SIM_CPU_MODEL_HPP
#define RMCC_SIM_CPU_MODEL_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rmcc::sim
{

/** Core parameters (Table I). */
struct CpuConfig
{
    double freq_ghz = 3.2;  //!< Core clock.
    unsigned width = 4;     //!< Retire width (4-wide OoO).
    unsigned rob = 192;     //!< Reorder-buffer entries.
    unsigned mshrs = 16;    //!< Outstanding long-latency memory ops.
};

/**
 * Limited-window OoO timing proxy.
 */
class CpuModel
{
  public:
    explicit CpuModel(const CpuConfig &cfg = CpuConfig());

    /**
     * Account for inst_gap non-memory instructions plus the memory
     * instruction itself, then return the memory op's issue time (ns).
     *
     * The retirement accounting is batched across the in-flight MSHR
     * entries: the oldest outstanding op gates every possible state
     * change (window pressure, MSHR pressure, and the FIFO ready-prefix
     * drain all trigger at head), so advance() compares the clock and
     * instruction count against two cached head gates and skips the
     * drain scan entirely until one crosses.  Most records touch no
     * entry at all; the full scan runs once per retirement batch, not
     * once per record — with identical state transitions either way.
     */
    double advance(std::uint32_t inst_gap)
    {
        insts_ += inst_gap + 1;
        now_ns_ += static_cast<double>(inst_gap + 1) * ns_per_inst_;
        if (count_ != 0 &&
            (now_ns_ >= gate_done_ns_ || insts_ >= gate_insts_ ||
             count_ >= cfg_.mshrs))
            enforceLimits();
        return now_ns_;
    }

    /**
     * Register a long-latency operation (LLC hit or memory access) that
     * completes at done_ns; it occupies the window until then.
     */
    void recordLongLatency(double done_ns);

    /** Force the clock to at least t_ns (e.g. MC overflow stalls). */
    void stallUntil(double t_ns);

    /** Drain all outstanding operations; returns the final time. */
    double finish();

    /** Current retire-time estimate (ns). */
    double now() const { return now_ns_; }

    /** Instructions accounted so far. */
    std::uint64_t instructions() const { return insts_; }

  private:
    struct Outstanding
    {
        double done_ns;
        std::uint64_t inst_at_issue;
    };

    /** Apply window/MSHR limits at the current instruction count. */
    void enforceLimits();

    /** Re-derive the head gates after head_ or count_ changed. */
    void refreshGates();

    /** Double the ring capacity, re-linearizing from head_. */
    void grow();

    CpuConfig cfg_;
    double ns_per_inst_;
    double now_ns_ = 0.0;
    std::uint64_t insts_ = 0;
    //! Outstanding ops in a power-of-two ring (oldest at head_).  The
    //! deque this replaces paid a segment-map indirection on every
    //! enforceLimits() call, millions of times per replay; a flat ring
    //! keeps the whole drain scan inside one small allocation.
    std::vector<Outstanding> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::size_t mask_ = 0; //!< capacity - 1 (capacity is a power of two).
    //! Batched-retirement gates: nothing can retire before the clock
    //! reaches the head op's completion (gate_done_ns_) or the
    //! instruction count reaches head-issue + rob (gate_insts_).
    double gate_done_ns_ = 0.0;
    std::uint64_t gate_insts_ = 0;
};

} // namespace rmcc::sim

#endif // RMCC_SIM_CPU_MODEL_HPP
