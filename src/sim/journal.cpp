#include "sim/journal.hpp"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/env.hpp"

#ifdef __unix__
#include <unistd.h>
#endif

namespace rmcc::sim
{

namespace
{

// --- shutdown latch (async-signal-safe: two relaxed atomic stores) -------

std::atomic<bool> g_shutdown{false};
std::atomic<int> g_signal{0};

extern "C" void
onShutdownSignal(int sig)
{
    g_signal.store(sig, std::memory_order_relaxed);
    g_shutdown.store(true, std::memory_order_relaxed);
}

// --- manifest text format --------------------------------------------------

constexpr const char *kMagic = "rmcc-journal v1";

std::uint64_t
fnv1a(const std::string &s, std::uint64_t h = 0xcbf29ce484222325ULL)
{
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Signature of the config set: labels in order (identity of the suite). */
std::uint64_t
configSignature(const std::vector<NamedConfig> &configs)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const NamedConfig &nc : configs)
        h = fnv1a(nc.label + "\n", h);
    return h;
}

/** %-hex escape so names tokenize on whitespace and survive round trips. */
std::string
escapeToken(const std::string &s)
{
    static const char *hex = "0123456789abcdef";
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        const auto u = static_cast<unsigned char>(c);
        const bool plain = (u >= 'a' && u <= 'z') ||
                           (u >= 'A' && u <= 'Z') ||
                           (u >= '0' && u <= '9') || u == '.' ||
                           u == '_' || u == '-' || u == '/';
        if (plain && u != '%') {
            out.push_back(c);
        } else {
            out.push_back('%');
            out.push_back(hex[u >> 4]);
            out.push_back(hex[u & 0xf]);
        }
    }
    return out.empty() ? std::string("%00") : out;
}

bool
unescapeToken(const std::string &s, std::string &out)
{
    out.clear();
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '%') {
            out.push_back(s[i]);
            continue;
        }
        if (i + 2 >= s.size())
            return false;
        auto nib = [](char c) -> int {
            if (c >= '0' && c <= '9')
                return c - '0';
            if (c >= 'a' && c <= 'f')
                return c - 'a' + 10;
            return -1;
        };
        const int hi = nib(s[i + 1]), lo = nib(s[i + 2]);
        if (hi < 0 || lo < 0)
            return false;
        const char c = static_cast<char>((hi << 4) | lo);
        if (c != '\0')
            out.push_back(c);
        i += 2;
    }
    return true;
}

/** Doubles travel as exact bit patterns so resumed CSVs are bit-identical. */
std::string
bitsHex(double d)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &d, sizeof u);
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(u));
    return buf;
}

bool
parseHex(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s.size() > 16)
        return false;
    std::uint64_t v = 0;
    for (const char c : s) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else
            return false;
        v = (v << 4) | static_cast<std::uint64_t>(d);
    }
    out = v;
    return true;
}

bool
parseBits(const std::string &s, double &out)
{
    std::uint64_t u = 0;
    if (!parseHex(s, u))
        return false;
    std::memcpy(&out, &u, sizeof out);
    return true;
}

std::string
hex64(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

void
installShutdownHandlers()
{
    static std::atomic<bool> installed{false};
    bool expected = false;
    if (!installed.compare_exchange_strong(expected, true))
        return;
    std::signal(SIGTERM, onShutdownSignal);
    std::signal(SIGINT, onShutdownSignal);
}

bool
shutdownRequested()
{
    return g_shutdown.load(std::memory_order_relaxed);
}

int
shutdownSignal()
{
    return g_signal.load(std::memory_order_relaxed);
}

void
requestShutdown(int sig)
{
    onShutdownSignal(sig);
}

void
resetShutdownForTest()
{
    g_shutdown.store(false, std::memory_order_relaxed);
    g_signal.store(0, std::memory_order_relaxed);
}

const std::atomic<bool> *
shutdownFlag()
{
    return &g_shutdown;
}

SuiteJournal::SuiteJournal(std::string path, std::uint64_t seed,
                           std::uint64_t trace_records,
                           std::uint64_t config_sig)
    : path_(std::move(path)), seed_(seed), trace_records_(trace_records),
      config_sig_(config_sig)
{
}

std::unique_ptr<SuiteJournal>
SuiteJournal::openFromEnv(const std::vector<NamedConfig> &configs)
{
    const auto env = util::envString("RMCC_SUITE_JOURNAL");
    if (!env)
        return nullptr;

    // One manifest per runSuite() invocation: a multi-suite bench gets
    // base, base.1, base.2... matched by invocation order on resume.
    static std::atomic<unsigned> invocation{0};
    const unsigned n = invocation.fetch_add(1);
    std::string path = *env;
    if (n > 0)
        path += "." + std::to_string(n);

    installShutdownHandlers();
    return openAt(std::move(path), configs,
                  util::envUnsignedOr("RMCC_SUITE_RESUME", 0) != 0);
}

std::unique_ptr<SuiteJournal>
SuiteJournal::openAt(std::string path,
                     const std::vector<NamedConfig> &configs, bool resume)
{
    const std::uint64_t seed = configs.empty() ? 0 : configs.front().cfg.seed;
    const std::uint64_t records =
        configs.empty() ? 0 : configs.front().cfg.trace_records;
    std::unique_ptr<SuiteJournal> j(new SuiteJournal(
        std::move(path), seed, records, configSignature(configs)));

    if (resume) {
        util::MutexLock lk(j->mu_);
        if (!j->loadLocked())
            j->cells_.clear(); // stale/corrupt/foreign: start fresh
        j->resumed_ = j->cells_.size();
    }
    return j;
}

bool
SuiteJournal::loadLocked()
{
    std::ifstream in(path_);
    if (!in)
        return false;

    std::string line;
    if (!std::getline(in, line) || line != kMagic)
        return false;

    auto headerField = [&](const char *key, std::uint64_t &out) {
        if (!std::getline(in, line))
            return false;
        std::istringstream ls(line);
        std::string k, v;
        return (ls >> k >> v) && k == key && parseHex(v, out);
    };
    std::uint64_t seed = 0, records = 0, sig = 0, checksum = 0;
    if (!headerField("seed", seed) ||
        !headerField("trace_records", records) ||
        !headerField("configs", sig) || !headerField("checksum", checksum))
        return false;
    if (seed != seed_ || records != trace_records_ || sig != config_sig_)
        return false;

    std::ostringstream body;
    body << in.rdbuf();
    const std::string text = body.str();
    if (fnv1a(text) != checksum)
        return false;

    std::map<std::pair<std::string, std::string>, Entry> cells;
    std::istringstream bs(text);
    while (std::getline(bs, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string tag, wl_tok, lb_tok, ms_tok, ns_tok;
        unsigned attempts = 0;
        std::uint64_t instructions = 0;
        std::size_t nstats = 0;
        if (!(ls >> tag >> wl_tok >> lb_tok >> attempts >> ms_tok >>
              std::hex >> instructions >> std::dec >> ns_tok >> nstats) ||
            tag != "cell")
            return false;
        Entry e;
        e.attempts = attempts;
        e.instructions = instructions;
        std::string wl, lb;
        if (!unescapeToken(wl_tok, wl) || !unescapeToken(lb_tok, lb) ||
            !parseBits(ms_tok, e.elapsed_ms) ||
            !parseBits(ns_tok, e.elapsed_ns))
            return false;
        e.stats.reserve(nstats);
        for (std::size_t i = 0; i < nstats; ++i) {
            std::string name_tok, bits_tok, name;
            double value = 0.0;
            if (!(ls >> name_tok >> bits_tok) ||
                !unescapeToken(name_tok, name) ||
                !parseBits(bits_tok, value))
                return false;
            e.stats.emplace_back(std::move(name), value);
        }
        cells[{std::move(wl), std::move(lb)}] = std::move(e);
    }
    cells_ = std::move(cells);
    return true;
}

std::string
SuiteJournal::serializeBodyLocked() const
{
    std::ostringstream out;
    for (const auto &kv : cells_) {
        const Entry &e = kv.second;
        out << "cell " << escapeToken(kv.first.first) << ' '
            << escapeToken(kv.first.second) << ' ' << e.attempts << ' '
            << bitsHex(e.elapsed_ms) << ' ' << std::hex << e.instructions
            << std::dec << ' ' << bitsHex(e.elapsed_ns) << ' '
            << e.stats.size();
        for (const auto &st : e.stats)
            out << ' ' << escapeToken(st.first) << ' '
                << bitsHex(st.second);
        out << '\n';
    }
    return out.str();
}

void
SuiteJournal::saveLocked() const
{
    const std::string body = serializeBodyLocked();
#ifdef __unix__
    const unsigned long uniq = static_cast<unsigned long>(::getpid());
#else
    const unsigned long uniq = 0;
#endif
    const std::string tmp = path_ + ".tmp." + std::to_string(uniq);
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return; // unwritable journal is a lost optimization, not fatal
        out << kMagic << '\n';
        out << "seed " << hex64(seed_) << '\n';
        out << "trace_records " << hex64(trace_records_) << '\n';
        out << "configs " << hex64(config_sig_) << '\n';
        out << "checksum " << hex64(fnv1a(body)) << '\n';
        out << body;
        out.flush();
        if (!out)
            return;
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        std::remove(tmp.c_str());
}

bool
SuiteJournal::lookup(const std::string &workload, const std::string &label,
                     SimResult &result, CellStatus &status) const
{
    util::MutexLock lk(mu_);
    const auto it = cells_.find({workload, label});
    if (it == cells_.end())
        return false;
    const Entry &e = it->second;
    result = SimResult{};
    result.workload = workload;
    result.config_label = label;
    result.instructions = e.instructions;
    result.elapsed_ns = e.elapsed_ns;
    for (const auto &st : e.stats)
        result.stats.set(st.first, st.second);
    status = CellStatus{};
    status.state = CellState::Ok;
    status.attempts = e.attempts;
    status.elapsed_ms = e.elapsed_ms;
    return true;
}

bool
SuiteJournal::workloadComplete(const std::string &workload,
                               const std::vector<NamedConfig> &configs) const
{
    util::MutexLock lk(mu_);
    for (const NamedConfig &nc : configs)
        if (cells_.find({workload, nc.label}) == cells_.end())
            return false;
    return true;
}

void
SuiteJournal::record(const std::string &workload, const std::string &label,
                     const SimResult &result, const CellStatus &status)
{
    if (!status.ok())
        return; // failed/timed-out cells must rerun on resume
    Entry e;
    e.attempts = status.attempts;
    e.elapsed_ms = status.elapsed_ms;
    e.instructions = result.instructions;
    e.elapsed_ns = result.elapsed_ns;
    const auto all = result.stats.all();
    e.stats.assign(all.begin(), all.end());
    util::MutexLock lk(mu_);
    cells_[{workload, label}] = std::move(e);
    saveLocked();
}

std::size_t
SuiteJournal::size() const
{
    util::MutexLock lk(mu_);
    return cells_.size();
}

std::size_t
SuiteJournal::resumed() const
{
    // resumed_ is written once in openAt() before the journal is shared,
    // but it lives under mu_ like the rest of the manifest state — take
    // the lock so the discipline is uniform and provable.
    util::MutexLock lk(mu_);
    return resumed_;
}

} // namespace rmcc::sim
