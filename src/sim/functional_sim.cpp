#include "sim/functional_sim.hpp"

#include "fault/campaign.hpp"
#include "sim/obs_wiring.hpp"
#include "sim/rig.hpp"

namespace rmcc::sim
{

SimResult
runFunctional(const std::string &workload_name,
              const trace::TraceSource &trace, const SystemConfig &cfg)
{
    return runFunctional(workload_name, trace, cfg, nullptr);
}

// rmcc-lint: hot-path
SimResult
runFunctional(const std::string &workload_name,
              const trace::TraceSource &trace, const SystemConfig &cfg,
              fault::FaultCampaign *campaign, ReplayObserver *replay)
{
    detail::SimRig rig(cfg);
    detail::preconditionRmcc(rig, cfg, trace);
    if (campaign != nullptr && cfg.secure) {
        campaign->bind(rig.tree, &rig.engine);
        rig.mc.attachObserver(campaign->oracle());
    }

    util::StatSet side; // simulator-side counters (TLB, LLC events)
    const util::StatHandle h_tlb_miss = side.handle("tlb.misses");
    const util::StatHandle h_llc_miss = side.handle("sim.llc_misses");
    const util::StatHandle h_llc_wb = side.handle("sim.llc_writebacks");
    util::StatSet mc_at_warm, side_at_warm;
    std::uint64_t instructions = 0, insts_at_warm = 0;

    // A loosely advancing pseudo-clock keeps the DRAM and overflow-engine
    // substrates in a sane regime; no timing conclusions are drawn from
    // functional runs.
    double fake_now = 0.0;

    std::unique_ptr<obs::Registry> obs =
        obs::makeRunRegistry(detail::cellName(workload_name, cfg));

    // The drive walks the source's windows (one covering the whole
    // vector for in-RAM traces; mmap'd spans with next-window prefetch
    // for spilled ones) and pre-warms the page mapper per window from
    // the planning pass — both invisible to the simulated state.
    detail::TraceDrive drive(trace, rig.mapper, obs.get());

    if (obs) {
        detail::registerRigProbes(*obs, rig, trace,
                                  [&fake_now] { return fake_now; },
                                  drive.ioStats());
        rig.mc.attachObs(obs.get());
    }

    // One-record lookahead (see runTiming): translating record i+1 at the
    // end of iteration i keeps the first-touch order v0, v1, v2, ... the
    // plain loop produced, and the prefetch hooks are pure, so results
    // are bit-identical.  `ahead` carries the lookahead across window
    // boundaries.
    bool more = drive.advance();
    addr::Addr next_paddr =
        more ? rig.mapper.translate(drive.window().data[0].vaddr) : 0;
    std::size_t i = 0;
    while (more) {
        const trace::TraceWindow &w = drive.window();
        for (std::size_t k = 0; k < w.count; ++k, ++i) {
            // Cooperative cancellation: a cell past RMCC_CELL_TIMEOUT_MS
            // (or a SIGTERM'd suite) aborts here instead of running to
            // the end.
            if ((i & 0x1fff) == 0)
                util::pollCancel();
            const trace::Record &rec = w.data[k];
            if (i == cfg.warmup_records) {
                mc_at_warm = rig.mc.stats();
                side_at_warm = side;
                insts_at_warm = instructions;
            }
            instructions += rec.inst_gap + 1;

            if (!rig.tlb.access(rec.vaddr))
                side.inc(h_tlb_miss);
            const addr::Addr paddr = next_paddr;
            const trace::Record *nxt =
                k + 1 < w.count ? &w.data[k + 1] : w.ahead;
            if (nxt != nullptr) {
                next_paddr = rig.mapper.translate(nxt->vaddr);
                rig.hier.prefetch(next_paddr);
                rig.mc.prefetchRead(next_paddr);
            }
            const cache::HierarchyResult h =
                rig.hier.access(paddr, rec.is_write);
            if (h.llc_miss) {
                side.inc(h_llc_miss);
                const mc::McReadResult r = rig.mc.read(paddr, fake_now);
                if (replay != nullptr)
                    replay->onRead(rec.vaddr, r, r.done_ns - fake_now);
                fake_now += 20.0;
            }
            if (h.memory_writeback) {
                side.inc(h_llc_wb);
                rig.mc.write(*h.memory_writeback, fake_now);
                if (replay != nullptr)
                    replay->onWrite(rec.vaddr);
                fake_now += 20.0;
            }
            if (campaign != nullptr && cfg.secure)
                campaign->afterRecord();
            if (obs)
                obs->tick();
        }
        more = drive.advance();
    }
    if (campaign != nullptr && cfg.secure)
        rig.mc.attachObserver(nullptr);
    if (replay != nullptr)
        replay->onFinish(rig.mc, rig.tree);
    if (obs) {
        rig.mc.attachObs(nullptr);
        obs->finish();
    }

    SimResult res;
    res.workload = workload_name;
    res.stats = rig.mc.stats().diff(mc_at_warm);
    res.stats.merge(side.diff(side_at_warm));
    res.instructions = instructions - insts_at_warm;

    // Lifetime/global state snapshots (not windowed).
    if (cfg.rmcc && cfg.secure) {
        res.stats.set("rmcc.avg_coverage_l0",
                      rig.engine.averageCoverage(0));
        res.stats.set("rmcc.group_insertions_l0",
                      static_cast<double>(rig.engine.groupInsertions(0)));
        res.stats.set("rmcc.budget_spent_l0",
                      static_cast<double>(
                          rig.engine.budget(0).totalSpent()));
    }
    if (cfg.secure) {
        res.stats.set("ctr.observed_max",
                      static_cast<double>(rig.tree.observedMax()));
        res.stats.set("ctr.init_max", static_cast<double>(rig.init_max));
        res.stats.set("ctr.overflows_total",
                      static_cast<double>(rig.tree.totalOverflows()));
    }
    return res;
}

} // namespace rmcc::sim
