#include "sim/report.hpp"

#include <cstdio>

namespace rmcc::sim
{

void
printResult(const SimResult &r)
{
    std::printf("== %s [%s] ==\n", r.workload.c_str(),
                r.config_label.c_str());
    std::printf("  instructions: %llu  elapsed: %.1f ns  perf: %.4f "
                "inst/ns\n",
                static_cast<unsigned long long>(r.instructions),
                r.elapsed_ns, r.perf());
    for (const auto &[name, value] : r.stats.all())
        std::printf("  %-32s %.3f\n", name.c_str(), value);
}

} // namespace rmcc::sim
