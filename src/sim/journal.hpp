/**
 * @file
 * Crash-safe suite checkpointing: a per-cell journal manifest plus the
 * process-wide graceful-shutdown latch.
 *
 * When RMCC_SUITE_JOURNAL names a file, the suite runner records every
 * completed (workload, config) cell — its full StatSet, instruction
 * count, and window wall time — after the cell finishes.  Each record()
 * rewrites the manifest through a write-temp+rename (the graph-cache
 * discipline), so a crash or SIGTERM at any instant leaves either the
 * previous complete manifest or the new one, never a torn file.  A rerun
 * with RMCC_SUITE_RESUME=1 loads the manifest, validates its checksum
 * and the suite identity (trace shape, seed, config labels), and skips
 * every journaled cell — the resumed run's CSVs are bit-identical to an
 * uninterrupted run because doubles are journaled as exact bit patterns.
 *
 * The shutdown latch is the other half of crash safety: SIGTERM/SIGINT
 * set an async-signal-safe flag that the suite runner polls between (and
 * cooperatively inside) cells, so an interrupted suite flushes partial
 * results and exits 128+signum instead of dying mid-write.
 */
#ifndef RMCC_SIM_JOURNAL_HPP
#define RMCC_SIM_JOURNAL_HPP

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiments.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace rmcc::sim
{

/**
 * Append-logically / rewrite-physically manifest of completed suite
 * cells.  Thread-safe: record()/lookup() may race across the suite
 * thread pool.  Only CellState::Ok cells are journaled — failed or
 * timed-out cells rerun on resume.
 */
class SuiteJournal
{
  public:
    /**
     * Journal policy from the environment.  Returns nullptr when
     * RMCC_SUITE_JOURNAL is unset or empty (the common case: no journal,
     * zero overhead).  Each runSuite() invocation in one process gets a
     * distinct file (".1", ".2"... suffixes) so multi-suite benches
     * journal every suite, matched by invocation order on resume.
     *
     * With RMCC_SUITE_RESUME=1 an existing manifest is loaded and
     * validated against the configs (seed, trace_records, config-label
     * signature, body checksum); any mismatch discards it and starts
     * fresh rather than resuming into a different experiment.
     *
     * Installs the SIGTERM/SIGINT shutdown handlers as a side effect —
     * a journaled suite is expected to be killable.
     */
    static std::unique_ptr<SuiteJournal>
    openFromEnv(const std::vector<NamedConfig> &configs);

    /**
     * Open a journal at an explicit path (the openFromEnv() workhorse;
     * also the test seam — no env, no invocation counter, no signal
     * handlers).  With resume=true an existing valid manifest is loaded;
     * an invalid one is discarded.
     */
    static std::unique_ptr<SuiteJournal>
    openAt(std::string path, const std::vector<NamedConfig> &configs,
           bool resume);

    /**
     * Fetch a previously journaled cell.  On a hit, fills the result
     * (bit-exact stats) and a synthetic Ok status and returns true.
     */
    bool lookup(const std::string &workload, const std::string &label,
                SimResult &result, CellStatus &status) const;

    /** Every configuration of this workload already journaled? */
    bool workloadComplete(const std::string &workload,
                          const std::vector<NamedConfig> &configs) const;

    /**
     * Journal one completed cell and atomically rewrite the manifest.
     * Non-Ok cells are ignored (they must rerun on resume).
     */
    void record(const std::string &workload, const std::string &label,
                const SimResult &result, const CellStatus &status);

    /** Cells currently journaled (resume hits + this run's records). */
    std::size_t size() const;

    /** Manifest path (for tests and log messages). */
    const std::string &path() const { return path_; }

    /** Cells restored from a prior run by openFromEnv(). */
    std::size_t resumed() const;

  private:
    struct Entry
    {
        unsigned attempts = 1;
        double elapsed_ms = 0.0;
        std::uint64_t instructions = 0;
        double elapsed_ns = 0.0;
        std::vector<std::pair<std::string, double>> stats;
    };

    SuiteJournal(std::string path, std::uint64_t seed,
                 std::uint64_t trace_records, std::uint64_t config_sig);

    bool loadLocked() RMCC_REQUIRES(mu_);
    void saveLocked() const RMCC_REQUIRES(mu_);
    std::string serializeBodyLocked() const RMCC_REQUIRES(mu_);

    std::string path_;
    std::uint64_t seed_ = 0;
    std::uint64_t trace_records_ = 0;
    std::uint64_t config_sig_ = 0;
    mutable util::Mutex mu_;
    std::size_t resumed_ RMCC_GUARDED_BY(mu_) = 0;
    std::map<std::pair<std::string, std::string>, Entry>
        cells_ RMCC_GUARDED_BY(mu_);
};

// --- graceful shutdown latch ---------------------------------------------

/**
 * Install SIGTERM/SIGINT handlers that set the shutdown latch (idempotent;
 * first call wins).  Called by SuiteJournal::openFromEnv(); benches that
 * want graceful shutdown without a journal may call it directly.
 */
void installShutdownHandlers();

/** Has SIGTERM/SIGINT been received (or requestShutdown() called)? */
bool shutdownRequested();

/** The signal that tripped the latch (0 if none); exit with 128+this. */
int shutdownSignal();

/** Trip the latch programmatically (tests; also reusable as an API). */
void requestShutdown(int sig);

/** Reset the latch (tests only — production never un-requests). */
void resetShutdownForTest();

/** The latch itself, for wiring into util::CancelScope. */
const std::atomic<bool> *shutdownFlag();

} // namespace rmcc::sim

#endif // RMCC_SIM_JOURNAL_HPP
