/**
 * @file
 * Experiment harness shared by the bench binaries: build named
 * configurations, run them over the workload suite (reusing one trace per
 * workload across configurations), and collect SimResults.
 *
 * The (workload x configuration) grid is embarrassingly parallel: every
 * simulation is a pure function of one immutable trace and one config.
 * runSuite()/runWorkload() fan the grid across a thread pool sized by the
 * RMCC_JOBS environment variable (default: hardware concurrency).
 * RMCC_JOBS=1 takes the original serial path — same call order,
 * bit-for-bit identical results.  Results are always collected in
 * deterministic (suite, config) order regardless of the job count.
 */
#ifndef RMCC_SIM_EXPERIMENTS_HPP
#define RMCC_SIM_EXPERIMENTS_HPP

#include <functional>
#include <utility>
#include <vector>

#include "sim/functional_sim.hpp"
#include "sim/timing_sim.hpp"
#include "workloads/registry.hpp"

namespace rmcc::sim
{

/** A labeled configuration for comparative experiments. */
struct NamedConfig
{
    std::string label;
    SystemConfig cfg;
};

/** Terminal state of one (workload, config) cell. */
enum class CellState
{
    Ok,       //!< Produced a result (possibly after retries).
    Failed,   //!< Every attempt threw; the result slot is a placeholder.
    TimedOut, //!< Completed, but slower than RMCC_CELL_TIMEOUT_MS.
};

/** Human-readable cell-state name ("ok" / "failed" / "timed-out"). */
const char *cellStateName(CellState s);

/**
 * How one (workload, config) cell executed — distinct from what it
 * measured.  A failed or timed-out cell never aborts the suite: its
 * status carries the error while every other cell's results survive.
 */
struct CellStatus
{
    CellState state = CellState::Ok;
    unsigned attempts = 1;   //!< Runs performed (1 + retries used).
    double elapsed_ms = 0.0; //!< Wall clock of the last attempt.
    std::string error;       //!< what() of the last failure, if any.
    //! what() of EVERY failed attempt, oldest first — a retried cell's
    //! first-attempt error survives into the .errors sidecar.
    std::vector<std::string> attempt_errors;

    bool ok() const { return state == CellState::Ok; }
    bool retried() const { return attempts > 1; }
};

/** Results for one workload under each configuration (config order). */
struct SuiteRow
{
    std::string workload;
    std::vector<SimResult> results;
    std::vector<CellStatus> statuses; //!< Parallel to results.

    /** Every cell of the row ran to completion? */
    bool allOk() const
    {
        for (const CellStatus &s : statuses)
            if (!s.ok())
                return false;
        return true;
    }
};

/**
 * Per-workload completion callback.  The suite runner invokes it exactly
 * once per workload, as soon as every configuration of that workload has
 * finished — from worker threads when running in parallel, so the
 * callback must be thread-safe (e.g. a mutex-guarded reporter).
 */
using ProgressFn = std::function<void(const std::string &workload)>;

/**
 * Run each configuration over each workload of the paper suite.  The
 * workload's trace is generated once (with the first configuration's
 * record count and seed) and shared immutably across configurations, so
 * normalized comparisons see identical instruction streams.  Under
 * RMCC_TRACE_SPILL the trace streams to a checksummed file in
 * RMCC_TRACE_DIR instead of RAM and every cell replays it through
 * windowed mmap — same records, bit-identical results, bounded memory
 * (see wl::generateTraceHandle and docs/TRACING.md).
 *
 * With RMCC_JOBS > 1 the traces and then every (workload, config) cell
 * run as independent thread-pool tasks; rows come back in suite order
 * either way.
 *
 * Cells are failure-isolated: a cell that throws is retried up to
 * RMCC_CELL_RETRIES times (default 1) on a fresh rig, and if every
 * attempt fails, its CellStatus records the error while the rest of the
 * grid completes normally.  A cell exceeding RMCC_CELL_TIMEOUT_MS
 * (default 0 = disabled) is aborted cooperatively — the simulator polls a
 * cancellation token between records — and recorded TimedOut with a
 * placeholder result; timeouts are not retried.  A workload whose trace
 * generation fails has every cell of its row marked Failed.
 *
 * Crash safety: when RMCC_SUITE_JOURNAL names a file, every completed
 * cell is checkpointed there (atomic write-temp+rename) and a rerun with
 * RMCC_SUITE_RESUME=1 skips journaled cells with bit-identical results;
 * SIGTERM/SIGINT abort in-flight cells and mark unstarted ones Failed
 * ("interrupted by shutdown request") so callers can flush partial
 * output and exit 128+signum.  See sim/journal.hpp.
 *
 * @throws std::invalid_argument if the configurations disagree on the
 *         trace shape (trace_records / seed) — a silent mismatch would
 *         feed some configs a trace they did not ask for.  (Caller
 *         errors are not failure-isolated; broken cells are.)
 */
std::vector<SuiteRow> runSuite(const std::vector<NamedConfig> &configs,
                               const ProgressFn &progress = {});

/**
 * Run a single workload under each configuration (configs fan out across
 * the pool when RMCC_JOBS > 1).  Same trace-shape validation as
 * runSuite().
 */
SuiteRow runWorkload(const wl::Workload &w,
                     const std::vector<NamedConfig> &configs);

/** Resolved job count for the suite runner (RMCC_JOBS policy). */
unsigned suiteJobs();

/** Dispatch one run by the configuration's mode. */
SimResult runOne(const std::string &workload_name,
                 const trace::TraceSource &trace, const NamedConfig &nc);

/**
 * runOne with the suite runner's failure isolation: catch, retry per
 * RMCC_CELL_RETRIES, flag per RMCC_CELL_TIMEOUT_MS.  On failure the
 * returned SimResult is a labeled placeholder with empty stats.
 */
std::pair<SimResult, CellStatus>
runCellGuarded(const std::string &workload_name,
               const trace::TraceSource &trace, const NamedConfig &nc);

namespace detail
{
/**
 * Test seam: invoked with (workload, config label) at the start of every
 * cell attempt.  Tests install a throwing hook to prove the runner
 * isolates and records failing cells; empty in production.
 */
extern std::function<void(const std::string &, const std::string &)>
    cell_fault_hook;
} // namespace detail

// --- standard configurations used across benches ------------------------

/** Non-secure memory system (Fig 13 normalization baseline). */
NamedConfig nonSecureConfig(SimMode mode);

/** Secure system with a given counter scheme, no RMCC. */
NamedConfig baselineConfig(SimMode mode, ctr::SchemeKind scheme);

/** Secure Morphable + RMCC (the paper's main configuration). */
NamedConfig rmccConfig(SimMode mode);

/**
 * Reduce simulated work for quick runs: scales trace/warmup lengths of a
 * config set by the RMCC_FAST environment variable if present (used by
 * CI/tests, not by the reported benches).
 */
void applyFastEnv(std::vector<NamedConfig> &configs);

} // namespace rmcc::sim

#endif // RMCC_SIM_EXPERIMENTS_HPP
