/**
 * @file
 * Experiment harness shared by the bench binaries: build named
 * configurations, run them over the workload suite (reusing one trace per
 * workload across configurations), and collect SimResults.
 *
 * The (workload x configuration) grid is embarrassingly parallel: every
 * simulation is a pure function of one immutable trace and one config.
 * runSuite()/runWorkload() fan the grid across a thread pool sized by the
 * RMCC_JOBS environment variable (default: hardware concurrency).
 * RMCC_JOBS=1 takes the original serial path — same call order,
 * bit-for-bit identical results.  Results are always collected in
 * deterministic (suite, config) order regardless of the job count.
 */
#ifndef RMCC_SIM_EXPERIMENTS_HPP
#define RMCC_SIM_EXPERIMENTS_HPP

#include <functional>
#include <vector>

#include "sim/functional_sim.hpp"
#include "sim/timing_sim.hpp"
#include "workloads/registry.hpp"

namespace rmcc::sim
{

/** A labeled configuration for comparative experiments. */
struct NamedConfig
{
    std::string label;
    SystemConfig cfg;
};

/** Results for one workload under each configuration (config order). */
struct SuiteRow
{
    std::string workload;
    std::vector<SimResult> results;
};

/**
 * Per-workload completion callback.  The suite runner invokes it exactly
 * once per workload, as soon as every configuration of that workload has
 * finished — from worker threads when running in parallel, so the
 * callback must be thread-safe (e.g. a mutex-guarded reporter).
 */
using ProgressFn = std::function<void(const std::string &workload)>;

/**
 * Run each configuration over each workload of the paper suite.  The
 * workload's trace is generated once (with the first configuration's
 * record count and seed) and shared immutably across configurations, so
 * normalized comparisons see identical instruction streams.
 *
 * With RMCC_JOBS > 1 the traces and then every (workload, config) cell
 * run as independent thread-pool tasks; rows come back in suite order
 * either way.
 *
 * @throws std::invalid_argument if the configurations disagree on the
 *         trace shape (trace_records / seed) — a silent mismatch would
 *         feed some configs a trace they did not ask for.
 */
std::vector<SuiteRow> runSuite(const std::vector<NamedConfig> &configs,
                               const ProgressFn &progress = {});

/**
 * Run a single workload under each configuration (configs fan out across
 * the pool when RMCC_JOBS > 1).  Same trace-shape validation as
 * runSuite().
 */
SuiteRow runWorkload(const wl::Workload &w,
                     const std::vector<NamedConfig> &configs);

/** Resolved job count for the suite runner (RMCC_JOBS policy). */
unsigned suiteJobs();

/** Dispatch one run by the configuration's mode. */
SimResult runOne(const std::string &workload_name,
                 const trace::TraceBuffer &trace, const NamedConfig &nc);

// --- standard configurations used across benches ------------------------

/** Non-secure memory system (Fig 13 normalization baseline). */
NamedConfig nonSecureConfig(SimMode mode);

/** Secure system with a given counter scheme, no RMCC. */
NamedConfig baselineConfig(SimMode mode, ctr::SchemeKind scheme);

/** Secure Morphable + RMCC (the paper's main configuration). */
NamedConfig rmccConfig(SimMode mode);

/**
 * Reduce simulated work for quick runs: scales trace/warmup lengths of a
 * config set by the RMCC_FAST environment variable if present (used by
 * CI/tests, not by the reported benches).
 */
void applyFastEnv(std::vector<NamedConfig> &configs);

} // namespace rmcc::sim

#endif // RMCC_SIM_EXPERIMENTS_HPP
