/**
 * @file
 * Experiment harness shared by the bench binaries: build named
 * configurations, run them over the workload suite (reusing one trace per
 * workload across configurations), and collect SimResults.
 */
#ifndef RMCC_SIM_EXPERIMENTS_HPP
#define RMCC_SIM_EXPERIMENTS_HPP

#include <vector>

#include "sim/functional_sim.hpp"
#include "sim/timing_sim.hpp"
#include "workloads/registry.hpp"

namespace rmcc::sim
{

/** A labeled configuration for comparative experiments. */
struct NamedConfig
{
    std::string label;
    SystemConfig cfg;
};

/** Results for one workload under each configuration (config order). */
struct SuiteRow
{
    std::string workload;
    std::vector<SimResult> results;
};

/**
 * Run each configuration over each workload of the paper suite.  The
 * workload's trace is generated once (with the first configuration's
 * record count and seed) and shared across configurations, so normalized
 * comparisons see identical instruction streams.
 */
std::vector<SuiteRow> runSuite(const std::vector<NamedConfig> &configs);

/** Run a single workload under each configuration. */
SuiteRow runWorkload(const wl::Workload &w,
                     const std::vector<NamedConfig> &configs);

/** Dispatch one run by the configuration's mode. */
SimResult runOne(const std::string &workload_name,
                 const trace::TraceBuffer &trace, const NamedConfig &nc);

// --- standard configurations used across benches ------------------------

/** Non-secure memory system (Fig 13 normalization baseline). */
NamedConfig nonSecureConfig(SimMode mode);

/** Secure system with a given counter scheme, no RMCC. */
NamedConfig baselineConfig(SimMode mode, ctr::SchemeKind scheme);

/** Secure Morphable + RMCC (the paper's main configuration). */
NamedConfig rmccConfig(SimMode mode);

/**
 * Reduce simulated work for quick runs: scales trace/warmup lengths of a
 * config set by the RMCC_FAST environment variable if present (used by
 * CI/tests, not by the reported benches).
 */
void applyFastEnv(std::vector<NamedConfig> &configs);

} // namespace rmcc::sim

#endif // RMCC_SIM_EXPERIMENTS_HPP
