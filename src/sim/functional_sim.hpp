/**
 * @file
 * Functional (Pintool-like) simulator: drives the cache hierarchy, TLB,
 * counter tree, and RMCC engine over a trace without CPU/DRAM timing, to
 * measure hit rates, coverage, and traffic across workload lifetimes
 * (paper Sec III and the "Lifetime Characterization" methodology).
 */
#ifndef RMCC_SIM_FUNCTIONAL_SIM_HPP
#define RMCC_SIM_FUNCTIONAL_SIM_HPP

#include "sim/report.hpp"
#include "sim/system_config.hpp"
#include "trace/trace_source.hpp"

namespace rmcc::fault
{
class FaultCampaign;
}

namespace rmcc::sim
{

/**
 * Run the functional simulation of one trace under one configuration.
 *
 * Statistics are windowed: the first cfg.warmup_records operations warm
 * caches, counters, and the memoization tables; the returned stats cover
 * only the remainder.
 */
SimResult runFunctional(const std::string &workload_name,
                        const trace::TraceSource &trace,
                        const SystemConfig &cfg);

/**
 * Same, with a fault campaign riding along: the campaign's detection
 * oracle observes the secure controller's data plane (verifying every
 * read against its crypto-functional shadow) and the campaign injects
 * and classifies faults as the trace advances.  Requires cfg.secure;
 * the campaign must be fresh (its tree is the one being driven) and
 * outlive the call.  Pass nullptr for a plain run.
 */
SimResult runFunctional(const std::string &workload_name,
                        const trace::TraceSource &trace,
                        const SystemConfig &cfg,
                        fault::FaultCampaign *campaign);

} // namespace rmcc::sim

#endif // RMCC_SIM_FUNCTIONAL_SIM_HPP
