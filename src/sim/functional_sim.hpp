/**
 * @file
 * Functional (Pintool-like) simulator: drives the cache hierarchy, TLB,
 * counter tree, and RMCC engine over a trace without CPU/DRAM timing, to
 * measure hit rates, coverage, and traffic across workload lifetimes
 * (paper Sec III and the "Lifetime Characterization" methodology).
 */
#ifndef RMCC_SIM_FUNCTIONAL_SIM_HPP
#define RMCC_SIM_FUNCTIONAL_SIM_HPP

#include "sim/report.hpp"
#include "sim/system_config.hpp"
#include "trace/trace_source.hpp"

namespace rmcc::fault
{
class FaultCampaign;
}

namespace rmcc::sim
{

/**
 * Run the functional simulation of one trace under one configuration.
 *
 * Statistics are windowed: the first cfg.warmup_records operations warm
 * caches, counters, and the memoization tables; the returned stats cover
 * only the remainder.
 */
SimResult runFunctional(const std::string &workload_name,
                        const trace::TraceSource &trace,
                        const SystemConfig &cfg);

/**
 * Per-record replay observer: sees every LLC-miss read (with the
 * controller's outcome and its latency) and every memory writeback,
 * keyed by the *virtual* address of the causing trace record — the only
 * layer that still knows which tenant issued the access.  Implemented by
 * tenancy::TenantAccountant; attaching nothing costs one branch per
 * memory-side event.  Hooks must not mutate simulated state.
 */
class ReplayObserver
{
  public:
    virtual ~ReplayObserver() = default;

    /** LLC-miss read served by the controller. */
    virtual void onRead(addr::Addr vaddr, const mc::McReadResult &res,
                        double latency_ns) = 0;

    /**
     * LLC writeback reaching the controller, attributed to the record
     * whose access displaced the victim line (the victim's own tenant is
     * unknowable here — the cache model returns physical addresses).
     */
    virtual void onWrite(addr::Addr vaddr) = 0;

    /** End of replay: snapshot whole-system state (occupancy views). */
    virtual void onFinish(const mc::SecureMc &mc,
                          const ctr::IntegrityTree &tree)
    {
        (void)mc;
        (void)tree;
    }
};

/**
 * Same, with a fault campaign riding along: the campaign's detection
 * oracle observes the secure controller's data plane (verifying every
 * read against its crypto-functional shadow) and the campaign injects
 * and classifies faults as the trace advances.  Requires cfg.secure;
 * the campaign must be fresh (its tree is the one being driven) and
 * outlive the call.  Pass nullptr for a plain run.  `replay`, when
 * non-null, receives every memory-side event (see ReplayObserver).
 */
SimResult runFunctional(const std::string &workload_name,
                        const trace::TraceSource &trace,
                        const SystemConfig &cfg,
                        fault::FaultCampaign *campaign,
                        ReplayObserver *replay = nullptr);

} // namespace rmcc::sim

#endif // RMCC_SIM_FUNCTIONAL_SIM_HPP
