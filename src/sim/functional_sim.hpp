/**
 * @file
 * Functional (Pintool-like) simulator: drives the cache hierarchy, TLB,
 * counter tree, and RMCC engine over a trace without CPU/DRAM timing, to
 * measure hit rates, coverage, and traffic across workload lifetimes
 * (paper Sec III and the "Lifetime Characterization" methodology).
 */
#ifndef RMCC_SIM_FUNCTIONAL_SIM_HPP
#define RMCC_SIM_FUNCTIONAL_SIM_HPP

#include "sim/report.hpp"
#include "sim/system_config.hpp"
#include "trace/trace_buffer.hpp"

namespace rmcc::sim
{

/**
 * Run the functional simulation of one trace under one configuration.
 *
 * Statistics are windowed: the first cfg.warmup_records operations warm
 * caches, counters, and the memoization tables; the returned stats cover
 * only the remainder.
 */
SimResult runFunctional(const std::string &workload_name,
                        const trace::TraceBuffer &trace,
                        const SystemConfig &cfg);

} // namespace rmcc::sim

#endif // RMCC_SIM_FUNCTIONAL_SIM_HPP
