#include "sim/experiments.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>
#include <tuple>

#include "crypto/dispatch.hpp"
#include "obs/registry.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"

namespace rmcc::sim
{

namespace detail
{
std::function<void(const std::string &, const std::string &)>
    cell_fault_hook;
} // namespace detail

namespace
{

/** Labeled empty result standing in for a cell that never completed. */
SimResult
placeholderResult(const std::string &workload_name, const NamedConfig &nc)
{
    SimResult r;
    r.workload = workload_name;
    r.config_label = nc.label;
    return r;
}

/** Mark every cell of a row failed (e.g. its trace never generated). */
void
failWholeRow(SuiteRow &row, const std::vector<NamedConfig> &configs,
             const std::string &error)
{
    for (std::size_t c = 0; c < configs.size(); ++c) {
        row.results[c] = placeholderResult(row.workload, configs[c]);
        row.statuses[c].state = CellState::Failed;
        row.statuses[c].attempts = 0;
        row.statuses[c].error = error;
    }
}

/**
 * The shared trace is generated from the FIRST configuration's record
 * count and seed; any config that disagrees would silently simulate a
 * trace it did not ask for, so refuse the set outright.
 */
void
validateTraceShape(const std::vector<NamedConfig> &configs)
{
    if (configs.empty())
        throw std::invalid_argument(
            "experiment runner: empty configuration set");
    const SystemConfig &first = configs.front().cfg;
    for (const NamedConfig &nc : configs) {
        if (nc.cfg.trace_records != first.trace_records ||
            nc.cfg.seed != first.seed) {
            throw std::invalid_argument(
                "experiment runner: config '" + nc.label +
                "' disagrees with '" + configs.front().label +
                "' on trace shape (trace_records/seed); the shared "
                "trace would not match");
        }
    }
}

} // namespace

const char *
cellStateName(CellState s)
{
    switch (s) {
    case CellState::Ok: return "ok";
    case CellState::Failed: return "failed";
    case CellState::TimedOut: return "timed-out";
    }
    return "?";
}

unsigned
suiteJobs()
{
    return util::ThreadPool::envJobs();
}

SimResult
runOne(const std::string &workload_name, const trace::TraceBuffer &trace,
       const NamedConfig &nc)
{
    SimResult r = nc.cfg.mode == SimMode::Timing
                      ? runTiming(workload_name, trace, nc.cfg)
                      : runFunctional(workload_name, trace, nc.cfg);
    r.config_label = nc.label;
    return r;
}

std::pair<SimResult, CellStatus>
runCellGuarded(const std::string &workload_name,
               const trace::TraceBuffer &trace, const NamedConfig &nc)
{
    // Env policy is read outside the guard: a malformed variable is a
    // caller error and must fail loudly, not be recorded as a cell
    // failure.  Retries rerun the identical cell — a fresh rig from the
    // same seed — so a retried flaky cell reports the same numbers a
    // clean first run would.
    const std::uint64_t retries = std::min<std::uint64_t>(
        util::envUnsignedOr("RMCC_CELL_RETRIES", 1), 16);
    const std::uint64_t timeout_ms =
        util::envUnsignedOr("RMCC_CELL_TIMEOUT_MS", 0);

    CellStatus st;
    for (std::uint64_t attempt = 0; attempt <= retries; ++attempt) {
        if (attempt > 0)
            obs::instantGlobal(obs::InstantKind::CellRetry,
                               workload_name + "/" + nc.label);
        st.attempts = static_cast<unsigned>(attempt + 1);
        const auto t0 = std::chrono::steady_clock::now();
        try {
            if (detail::cell_fault_hook)
                detail::cell_fault_hook(workload_name, nc.label);
            SimResult r = runOne(workload_name, trace, nc);
            st.elapsed_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            st.state = CellState::Ok;
            // Simulations cannot be preempted safely mid-flight, so the
            // timeout is detect-and-flag: the (valid) result is kept and
            // the overrun recorded for the caller to act on.
            if (timeout_ms > 0 &&
                st.elapsed_ms > static_cast<double>(timeout_ms)) {
                st.state = CellState::TimedOut;
                st.error = "cell took " + std::to_string(st.elapsed_ms) +
                           " ms (RMCC_CELL_TIMEOUT_MS=" +
                           std::to_string(timeout_ms) + ")";
            }
            return {std::move(r), std::move(st)};
        } catch (const std::exception &e) {
            st.state = CellState::Failed;
            st.error = e.what();
        } catch (...) {
            st.state = CellState::Failed;
            st.error = "unknown exception";
        }
        st.elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    }
    return {placeholderResult(workload_name, nc), std::move(st)};
}

SuiteRow
runWorkload(const wl::Workload &w, const std::vector<NamedConfig> &configs)
{
    validateTraceShape(configs);
    // Resolve RMCC_OBS* and the crypto dispatch outside the per-cell
    // guard: a malformed variable is a caller error, not a per-cell
    // failure to retry.
    obs::session();
    crypto::hwAesActive();
    SuiteRow row;
    row.workload = w.name;
    row.results.resize(configs.size());
    row.statuses.resize(configs.size());
    std::optional<trace::TraceBuffer> trace;
    try {
        trace.emplace(wl::generateTrace(w,
                                        configs.front().cfg.trace_records,
                                        configs.front().cfg.seed));
    } catch (const std::exception &e) {
        failWholeRow(row, configs,
                     std::string("trace generation failed: ") + e.what());
        return row;
    }
    const unsigned jobs = suiteJobs();
    if (jobs <= 1 || configs.size() <= 1) {
        for (std::size_t c = 0; c < configs.size(); ++c)
            std::tie(row.results[c], row.statuses[c]) =
                runCellGuarded(w.name, *trace, configs[c]);
        return row;
    }
    util::ThreadPool pool(jobs);
    util::parallelFor(pool, configs.size(), [&](std::size_t c) {
        std::tie(row.results[c], row.statuses[c]) =
            runCellGuarded(w.name, *trace, configs[c]);
    });
    return row;
}

std::vector<SuiteRow>
runSuite(const std::vector<NamedConfig> &configs, const ProgressFn &progress)
{
    validateTraceShape(configs);
    obs::session(); // strict RMCC_OBS* parsing fails loudly up front
    crypto::hwAesActive(); // same for RMCC_CRYPTO_IMPL/BATCH

    const std::vector<wl::Workload> &suite = wl::workloadSuite();
    const unsigned jobs = suiteJobs();

    if (jobs <= 1) {
        // Original serial path: workload-major, configs in order.
        std::vector<SuiteRow> rows;
        rows.reserve(suite.size());
        for (const wl::Workload &w : suite) {
            rows.push_back(runWorkload(w, configs));
            if (progress)
                progress(w.name);
        }
        return rows;
    }

    const std::size_t n_wl = suite.size();
    const std::size_t n_cfg = configs.size();
    std::vector<SuiteRow> rows(n_wl);
    for (std::size_t i = 0; i < n_wl; ++i) {
        rows[i].workload = suite[i].name;
        rows[i].results.resize(n_cfg);
        rows[i].statuses.resize(n_cfg);
    }

    util::ThreadPool pool(jobs);

    // The GraphBig kernels all walk the shared graph; touch it before the
    // fan-out so its (thread-safe, but serializing) lazy build does not
    // stall the first wave of workers.
    wl::sharedGraph();

    // Phase 1: one trace per workload, generated in parallel and then
    // shared immutably by every configuration of that workload.  A
    // workload whose generator throws loses only its own row.
    std::vector<std::optional<trace::TraceBuffer>> traces(n_wl);
    std::vector<std::string> trace_errors(n_wl);
    util::parallelFor(pool, n_wl, [&](std::size_t i) {
        try {
            traces[i].emplace(wl::generateTrace(
                suite[i], configs.front().cfg.trace_records,
                configs.front().cfg.seed));
        } catch (const std::exception &e) {
            trace_errors[i] =
                std::string("trace generation failed: ") + e.what();
        } catch (...) {
            trace_errors[i] = "trace generation failed: unknown exception";
        }
    });

    // Phase 2: every (workload, config) cell is an independent task.
    // Each cell writes its own preassigned slot, so results land in
    // deterministic order no matter which worker finishes first.
    std::unique_ptr<std::atomic<std::size_t>[]> cells_done(
        new std::atomic<std::size_t>[n_wl]);
    for (std::size_t i = 0; i < n_wl; ++i)
        cells_done[i].store(0, std::memory_order_relaxed);
    util::parallelFor(pool, n_wl * n_cfg, [&](std::size_t t) {
        const std::size_t w = t / n_cfg;
        const std::size_t c = t % n_cfg;
        if (!traces[w]) {
            rows[w].results[c] =
                placeholderResult(suite[w].name, configs[c]);
            rows[w].statuses[c].state = CellState::Failed;
            rows[w].statuses[c].attempts = 0;
            rows[w].statuses[c].error = trace_errors[w];
        } else {
            std::tie(rows[w].results[c], rows[w].statuses[c]) =
                runCellGuarded(suite[w].name, *traces[w], configs[c]);
        }
        if (progress &&
            cells_done[w].fetch_add(1, std::memory_order_acq_rel) + 1 ==
                n_cfg)
            progress(suite[w].name);
    });
    return rows;
}

NamedConfig
nonSecureConfig(SimMode mode)
{
    SystemConfig cfg = mode == SimMode::Timing
                           ? SystemConfig::timingDefault()
                           : SystemConfig::functionalDefault();
    cfg.secure = false;
    return {"non-secure", cfg};
}

NamedConfig
baselineConfig(SimMode mode, ctr::SchemeKind scheme)
{
    SystemConfig cfg = mode == SimMode::Timing
                           ? SystemConfig::timingDefault()
                           : SystemConfig::functionalDefault();
    cfg.scheme = scheme;
    cfg.rmcc = false;
    return {ctr::schemeKindName(scheme), cfg};
}

NamedConfig
rmccConfig(SimMode mode)
{
    NamedConfig nc = baselineConfig(mode, ctr::SchemeKind::Morphable);
    nc.label = "RMCC";
    nc.cfg.rmcc = true;
    return nc;
}

void
applyFastEnv(std::vector<NamedConfig> &configs)
{
    const char *fast = std::getenv("RMCC_FAST");
    if (!fast || fast[0] == '\0' || fast[0] == '0')
        return;
    for (NamedConfig &nc : configs) {
        nc.cfg.trace_records /= 8;
        nc.cfg.warmup_records /= 8;
    }
}

} // namespace rmcc::sim
