#include "sim/experiments.hpp"

#include <cstdlib>

namespace rmcc::sim
{

SimResult
runOne(const std::string &workload_name, const trace::TraceBuffer &trace,
       const NamedConfig &nc)
{
    SimResult r = nc.cfg.mode == SimMode::Timing
                      ? runTiming(workload_name, trace, nc.cfg)
                      : runFunctional(workload_name, trace, nc.cfg);
    r.config_label = nc.label;
    return r;
}

SuiteRow
runWorkload(const wl::Workload &w, const std::vector<NamedConfig> &configs)
{
    SuiteRow row;
    row.workload = w.name;
    const trace::TraceBuffer trace = wl::generateTrace(
        w, configs.front().cfg.trace_records, configs.front().cfg.seed);
    for (const NamedConfig &nc : configs)
        row.results.push_back(runOne(w.name, trace, nc));
    return row;
}

std::vector<SuiteRow>
runSuite(const std::vector<NamedConfig> &configs)
{
    std::vector<SuiteRow> rows;
    for (const wl::Workload &w : wl::workloadSuite())
        rows.push_back(runWorkload(w, configs));
    return rows;
}

NamedConfig
nonSecureConfig(SimMode mode)
{
    SystemConfig cfg = mode == SimMode::Timing
                           ? SystemConfig::timingDefault()
                           : SystemConfig::functionalDefault();
    cfg.secure = false;
    return {"non-secure", cfg};
}

NamedConfig
baselineConfig(SimMode mode, ctr::SchemeKind scheme)
{
    SystemConfig cfg = mode == SimMode::Timing
                           ? SystemConfig::timingDefault()
                           : SystemConfig::functionalDefault();
    cfg.scheme = scheme;
    cfg.rmcc = false;
    return {ctr::schemeKindName(scheme), cfg};
}

NamedConfig
rmccConfig(SimMode mode)
{
    NamedConfig nc = baselineConfig(mode, ctr::SchemeKind::Morphable);
    nc.label = "RMCC";
    nc.cfg.rmcc = true;
    return nc;
}

void
applyFastEnv(std::vector<NamedConfig> &configs)
{
    const char *fast = std::getenv("RMCC_FAST");
    if (!fast || fast[0] == '\0' || fast[0] == '0')
        return;
    for (NamedConfig &nc : configs) {
        nc.cfg.trace_records /= 8;
        nc.cfg.warmup_records /= 8;
    }
}

} // namespace rmcc::sim
