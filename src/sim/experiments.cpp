#include "sim/experiments.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace rmcc::sim
{

namespace
{

/**
 * The shared trace is generated from the FIRST configuration's record
 * count and seed; any config that disagrees would silently simulate a
 * trace it did not ask for, so refuse the set outright.
 */
void
validateTraceShape(const std::vector<NamedConfig> &configs)
{
    if (configs.empty())
        throw std::invalid_argument(
            "experiment runner: empty configuration set");
    const SystemConfig &first = configs.front().cfg;
    for (const NamedConfig &nc : configs) {
        if (nc.cfg.trace_records != first.trace_records ||
            nc.cfg.seed != first.seed) {
            throw std::invalid_argument(
                "experiment runner: config '" + nc.label +
                "' disagrees with '" + configs.front().label +
                "' on trace shape (trace_records/seed); the shared "
                "trace would not match");
        }
    }
}

} // namespace

unsigned
suiteJobs()
{
    return util::ThreadPool::envJobs();
}

SimResult
runOne(const std::string &workload_name, const trace::TraceBuffer &trace,
       const NamedConfig &nc)
{
    SimResult r = nc.cfg.mode == SimMode::Timing
                      ? runTiming(workload_name, trace, nc.cfg)
                      : runFunctional(workload_name, trace, nc.cfg);
    r.config_label = nc.label;
    return r;
}

SuiteRow
runWorkload(const wl::Workload &w, const std::vector<NamedConfig> &configs)
{
    validateTraceShape(configs);
    SuiteRow row;
    row.workload = w.name;
    row.results.resize(configs.size());
    const trace::TraceBuffer trace = wl::generateTrace(
        w, configs.front().cfg.trace_records, configs.front().cfg.seed);
    const unsigned jobs = suiteJobs();
    if (jobs <= 1 || configs.size() <= 1) {
        for (std::size_t c = 0; c < configs.size(); ++c)
            row.results[c] = runOne(w.name, trace, configs[c]);
        return row;
    }
    util::ThreadPool pool(jobs);
    util::parallelFor(pool, configs.size(), [&](std::size_t c) {
        row.results[c] = runOne(w.name, trace, configs[c]);
    });
    return row;
}

std::vector<SuiteRow>
runSuite(const std::vector<NamedConfig> &configs, const ProgressFn &progress)
{
    validateTraceShape(configs);
    const std::vector<wl::Workload> &suite = wl::workloadSuite();
    const unsigned jobs = suiteJobs();

    if (jobs <= 1) {
        // Original serial path: workload-major, configs in order.
        std::vector<SuiteRow> rows;
        rows.reserve(suite.size());
        for (const wl::Workload &w : suite) {
            rows.push_back(runWorkload(w, configs));
            if (progress)
                progress(w.name);
        }
        return rows;
    }

    const std::size_t n_wl = suite.size();
    const std::size_t n_cfg = configs.size();
    std::vector<SuiteRow> rows(n_wl);
    for (std::size_t i = 0; i < n_wl; ++i) {
        rows[i].workload = suite[i].name;
        rows[i].results.resize(n_cfg);
    }

    util::ThreadPool pool(jobs);

    // The GraphBig kernels all walk the shared graph; touch it before the
    // fan-out so its (thread-safe, but serializing) lazy build does not
    // stall the first wave of workers.
    wl::sharedGraph();

    // Phase 1: one trace per workload, generated in parallel and then
    // shared immutably by every configuration of that workload.
    std::vector<std::optional<trace::TraceBuffer>> traces(n_wl);
    util::parallelFor(pool, n_wl, [&](std::size_t i) {
        traces[i].emplace(wl::generateTrace(
            suite[i], configs.front().cfg.trace_records,
            configs.front().cfg.seed));
    });

    // Phase 2: every (workload, config) cell is an independent task.
    // Each cell writes its own preassigned slot, so results land in
    // deterministic order no matter which worker finishes first.
    std::unique_ptr<std::atomic<std::size_t>[]> cells_done(
        new std::atomic<std::size_t>[n_wl]);
    for (std::size_t i = 0; i < n_wl; ++i)
        cells_done[i].store(0, std::memory_order_relaxed);
    util::parallelFor(pool, n_wl * n_cfg, [&](std::size_t t) {
        const std::size_t w = t / n_cfg;
        const std::size_t c = t % n_cfg;
        rows[w].results[c] = runOne(suite[w].name, *traces[w], configs[c]);
        if (progress &&
            cells_done[w].fetch_add(1, std::memory_order_acq_rel) + 1 ==
                n_cfg)
            progress(suite[w].name);
    });
    return rows;
}

NamedConfig
nonSecureConfig(SimMode mode)
{
    SystemConfig cfg = mode == SimMode::Timing
                           ? SystemConfig::timingDefault()
                           : SystemConfig::functionalDefault();
    cfg.secure = false;
    return {"non-secure", cfg};
}

NamedConfig
baselineConfig(SimMode mode, ctr::SchemeKind scheme)
{
    SystemConfig cfg = mode == SimMode::Timing
                           ? SystemConfig::timingDefault()
                           : SystemConfig::functionalDefault();
    cfg.scheme = scheme;
    cfg.rmcc = false;
    return {ctr::schemeKindName(scheme), cfg};
}

NamedConfig
rmccConfig(SimMode mode)
{
    NamedConfig nc = baselineConfig(mode, ctr::SchemeKind::Morphable);
    nc.label = "RMCC";
    nc.cfg.rmcc = true;
    return nc;
}

void
applyFastEnv(std::vector<NamedConfig> &configs)
{
    const char *fast = std::getenv("RMCC_FAST");
    if (!fast || fast[0] == '\0' || fast[0] == '0')
        return;
    for (NamedConfig &nc : configs) {
        nc.cfg.trace_records /= 8;
        nc.cfg.warmup_records /= 8;
    }
}

} // namespace rmcc::sim
