#include "sim/experiments.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>
#include <tuple>

#include "crypto/dispatch.hpp"
#include "mc/recovery.hpp"
#include "obs/registry.hpp"
#include "sim/journal.hpp"
#include "util/cancel.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"

namespace rmcc::sim
{

namespace detail
{
std::function<void(const std::string &, const std::string &)>
    cell_fault_hook;
} // namespace detail

namespace
{

/** Labeled empty result standing in for a cell that never completed. */
SimResult
placeholderResult(const std::string &workload_name, const NamedConfig &nc)
{
    SimResult r;
    r.workload = workload_name;
    r.config_label = nc.label;
    return r;
}

/**
 * The shared trace is generated from the FIRST configuration's record
 * count and seed; any config that disagrees would silently simulate a
 * trace it did not ask for, so refuse the set outright.
 */
void
validateTraceShape(const std::vector<NamedConfig> &configs)
{
    if (configs.empty())
        throw std::invalid_argument(
            "experiment runner: empty configuration set");
    const SystemConfig &first = configs.front().cfg;
    for (const NamedConfig &nc : configs) {
        if (nc.cfg.trace_records != first.trace_records ||
            nc.cfg.seed != first.seed) {
            throw std::invalid_argument(
                "experiment runner: config '" + nc.label +
                "' disagrees with '" + configs.front().label +
                "' on trace shape (trace_records/seed); the shared "
                "trace would not match");
        }
    }
}

/**
 * One suite cell with checkpoint/resume semantics layered over
 * runCellGuarded: a journal hit returns the prior (bit-exact) result, a
 * pending shutdown or missing trace yields a Failed placeholder, and a
 * freshly run Ok cell is checkpointed before the suite moves on.
 */
void
runCellJournaled(SuiteJournal *journal, const std::string &workload,
                 const trace::TraceSource *trace, const NamedConfig &nc,
                 const std::string &no_trace_error, SimResult &result,
                 CellStatus &status)
{
    if (journal && journal->lookup(workload, nc.label, result, status))
        return;
    if (!trace || shutdownRequested()) {
        result = placeholderResult(workload, nc);
        status = CellStatus{};
        status.state = CellState::Failed;
        status.attempts = 0;
        status.error = (!trace && !no_trace_error.empty())
                           ? no_trace_error
                           : "interrupted by shutdown request";
        return;
    }
    std::tie(result, status) = runCellGuarded(workload, *trace, nc);
    if (journal)
        journal->record(workload, nc.label, result, status);
}

} // namespace

const char *
cellStateName(CellState s)
{
    switch (s) {
    case CellState::Ok: return "ok";
    case CellState::Failed: return "failed";
    case CellState::TimedOut: return "timed-out";
    }
    return "?";
}

unsigned
suiteJobs()
{
    return util::ThreadPool::envJobs();
}

SimResult
runOne(const std::string &workload_name, const trace::TraceSource &trace,
       const NamedConfig &nc)
{
    SimResult r = nc.cfg.mode == SimMode::Timing
                      ? runTiming(workload_name, trace, nc.cfg)
                      : runFunctional(workload_name, trace, nc.cfg);
    r.config_label = nc.label;
    return r;
}

std::pair<SimResult, CellStatus>
runCellGuarded(const std::string &workload_name,
               const trace::TraceSource &trace, const NamedConfig &nc)
{
    // Env policy is read outside the guard: a malformed variable is a
    // caller error and must fail loudly, not be recorded as a cell
    // failure.  Retries rerun the identical cell — a fresh rig from the
    // same seed — so a retried flaky cell reports the same numbers a
    // clean first run would.
    const std::uint64_t retries = std::min<std::uint64_t>(
        util::envUnsignedOr("RMCC_CELL_RETRIES", 1), 16);
    const std::uint64_t timeout_ms =
        util::envUnsignedOr("RMCC_CELL_TIMEOUT_MS", 0);

    CellStatus st;
    for (std::uint64_t attempt = 0; attempt <= retries; ++attempt) {
        if (attempt > 0)
            obs::instantGlobal(obs::InstantKind::CellRetry,
                               workload_name + "/" + nc.label);
        st.attempts = static_cast<unsigned>(attempt + 1);
        const auto t0 = std::chrono::steady_clock::now();
        try {
            // The simulators poll this scope's token between records, so
            // a cell that overruns RMCC_CELL_TIMEOUT_MS (or a SIGTERM'd
            // suite) aborts here instead of running to completion.
            util::CancelScope cancel(shutdownFlag(), timeout_ms);
            if (detail::cell_fault_hook)
                detail::cell_fault_hook(workload_name, nc.label);
            SimResult r = runOne(workload_name, trace, nc);
            st.elapsed_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            st.state = CellState::Ok;
            // Backstop for cells that finish between polls: the (valid)
            // result is kept but the overrun is still recorded.
            if (timeout_ms > 0 &&
                st.elapsed_ms > static_cast<double>(timeout_ms)) {
                st.state = CellState::TimedOut;
                st.error = "cell took " + std::to_string(st.elapsed_ms) +
                           " ms (RMCC_CELL_TIMEOUT_MS=" +
                           std::to_string(timeout_ms) + ")";
                st.attempt_errors.push_back(st.error);
            }
            return {std::move(r), std::move(st)};
        } catch (const util::CancelledError &e) {
            // Neither a timeout nor a shutdown is retried: rerunning a
            // too-slow cell only doubles the overrun, and a shutdown
            // wants the suite drained, not restarted.
            st.elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
            st.state =
                e.reason() == util::CancelledError::Reason::Timeout
                    ? CellState::TimedOut
                    : CellState::Failed;
            st.error = e.what();
            st.attempt_errors.push_back(st.error);
            return {placeholderResult(workload_name, nc), std::move(st)};
        } catch (const std::exception &e) {
            st.state = CellState::Failed;
            st.error = e.what();
            st.attempt_errors.push_back(st.error);
        } catch (...) {
            st.state = CellState::Failed;
            st.error = "unknown exception";
            st.attempt_errors.push_back(st.error);
        }
        st.elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    }
    return {placeholderResult(workload_name, nc), std::move(st)};
}

SuiteRow
runWorkload(const wl::Workload &w, const std::vector<NamedConfig> &configs)
{
    validateTraceShape(configs);
    // Resolve RMCC_OBS*, the crypto dispatch, and the recovery policy
    // outside the per-cell guard: a malformed variable is a caller
    // error, not a per-cell failure to retry.
    obs::session();
    crypto::hwAesActive();
    mc::recoveryConfigFromEnv();
    // One-workload benches checkpoint too: each runWorkload() call is
    // its own openFromEnv() invocation, so a bench looping the workload
    // suite gets base, base.1, base.2... matched by call order on resume.
    const std::unique_ptr<SuiteJournal> journal =
        SuiteJournal::openFromEnv(configs);
    SuiteRow row;
    row.workload = w.name;
    row.results.resize(configs.size());
    row.statuses.resize(configs.size());
    // A fully journaled row needs no trace; skip the (expensive)
    // generation so resume is near-instant and shutdown drains fast.
    const bool journaled =
        journal && journal->workloadComplete(w.name, configs);
    std::optional<wl::TraceHandle> trace;
    std::string trace_error;
    if (!journaled && !shutdownRequested()) {
        try {
            trace.emplace(wl::generateTraceHandle(
                w, configs.front().cfg.trace_records,
                configs.front().cfg.seed));
        } catch (const std::exception &e) {
            trace_error =
                std::string("trace generation failed: ") + e.what();
        } catch (...) {
            trace_error = "trace generation failed: unknown exception";
        }
    }
    const trace::TraceSource *tp = trace ? &trace->source() : nullptr;
    const unsigned jobs = suiteJobs();
    if (jobs <= 1 || configs.size() <= 1) {
        for (std::size_t c = 0; c < configs.size(); ++c)
            runCellJournaled(journal.get(), w.name, tp, configs[c],
                             trace_error, row.results[c],
                             row.statuses[c]);
        return row;
    }
    util::ThreadPool pool(jobs);
    util::parallelFor(pool, configs.size(), [&](std::size_t c) {
        runCellJournaled(journal.get(), w.name, tp, configs[c],
                         trace_error, row.results[c], row.statuses[c]);
    });
    return row;
}

std::vector<SuiteRow>
runSuite(const std::vector<NamedConfig> &configs, const ProgressFn &progress)
{
    validateTraceShape(configs);
    obs::session(); // strict RMCC_OBS* parsing fails loudly up front
    crypto::hwAesActive();      // same for RMCC_CRYPTO_IMPL/BATCH
    mc::recoveryConfigFromEnv(); // and for RMCC_RECOVERY*

    const std::vector<wl::Workload> &suite = wl::workloadSuite();
    const unsigned jobs = suiteJobs();
    const std::unique_ptr<SuiteJournal> journal =
        SuiteJournal::openFromEnv(configs);

    if (jobs <= 1) {
        // Original serial path: workload-major, configs in order.  With
        // no journal and no shutdown this takes exactly the historical
        // cell sequence (same trace, same order, same results).
        std::vector<SuiteRow> rows;
        rows.reserve(suite.size());
        for (const wl::Workload &w : suite) {
            SuiteRow row;
            row.workload = w.name;
            row.results.resize(configs.size());
            row.statuses.resize(configs.size());
            // A fully journaled workload needs no trace at all — resume
            // skips the generation cost along with the simulations.
            const bool journaled =
                journal && journal->workloadComplete(w.name, configs);
            std::optional<wl::TraceHandle> trace;
            std::string trace_error;
            if (!journaled && !shutdownRequested()) {
                try {
                    trace.emplace(wl::generateTraceHandle(
                        w, configs.front().cfg.trace_records,
                        configs.front().cfg.seed));
                } catch (const std::exception &e) {
                    trace_error =
                        std::string("trace generation failed: ") +
                        e.what();
                } catch (...) {
                    trace_error =
                        "trace generation failed: unknown exception";
                }
            }
            for (std::size_t c = 0; c < configs.size(); ++c)
                runCellJournaled(journal.get(), w.name,
                                 trace ? &trace->source() : nullptr,
                                 configs[c], trace_error,
                                 row.results[c], row.statuses[c]);
            rows.push_back(std::move(row));
            if (progress)
                progress(w.name);
        }
        return rows;
    }

    const std::size_t n_wl = suite.size();
    const std::size_t n_cfg = configs.size();
    std::vector<SuiteRow> rows(n_wl);
    for (std::size_t i = 0; i < n_wl; ++i) {
        rows[i].workload = suite[i].name;
        rows[i].results.resize(n_cfg);
        rows[i].statuses.resize(n_cfg);
    }

    util::ThreadPool pool(jobs);

    // The GraphBig kernels all walk the shared graph; touch it before the
    // fan-out so its (thread-safe, but serializing) lazy build does not
    // stall the first wave of workers.
    wl::sharedGraph();

    // Phase 1: one trace per workload, generated in parallel and then
    // shared immutably by every configuration of that workload.  A
    // workload whose generator throws loses only its own row; a fully
    // journaled workload skips generation (its cells resume from the
    // manifest), and a pending shutdown skips it too.
    std::vector<std::optional<wl::TraceHandle>> traces(n_wl);
    std::vector<std::string> trace_errors(n_wl);
    util::parallelFor(pool, n_wl, [&](std::size_t i) {
        if (journal && journal->workloadComplete(suite[i].name, configs))
            return;
        if (shutdownRequested())
            return; // cells report "interrupted by shutdown request"
        try {
            traces[i].emplace(wl::generateTraceHandle(
                suite[i], configs.front().cfg.trace_records,
                configs.front().cfg.seed));
        } catch (const std::exception &e) {
            trace_errors[i] =
                std::string("trace generation failed: ") + e.what();
        } catch (...) {
            trace_errors[i] = "trace generation failed: unknown exception";
        }
    });

    // Phase 2: every (workload, config) cell is an independent task.
    // Each cell writes its own preassigned slot, so results land in
    // deterministic order no matter which worker finishes first.
    std::unique_ptr<std::atomic<std::size_t>[]> cells_done(
        new std::atomic<std::size_t>[n_wl]);
    for (std::size_t i = 0; i < n_wl; ++i)
        cells_done[i].store(0, std::memory_order_relaxed);
    util::parallelFor(pool, n_wl * n_cfg, [&](std::size_t t) {
        const std::size_t w = t / n_cfg;
        const std::size_t c = t % n_cfg;
        runCellJournaled(journal.get(), suite[w].name,
                         traces[w] ? &traces[w]->source() : nullptr,
                         configs[c], trace_errors[w], rows[w].results[c],
                         rows[w].statuses[c]);
        if (progress &&
            cells_done[w].fetch_add(1, std::memory_order_acq_rel) + 1 ==
                n_cfg)
            progress(suite[w].name);
    });
    return rows;
}

NamedConfig
nonSecureConfig(SimMode mode)
{
    SystemConfig cfg = mode == SimMode::Timing
                           ? SystemConfig::timingDefault()
                           : SystemConfig::functionalDefault();
    cfg.secure = false;
    return {"non-secure", cfg};
}

NamedConfig
baselineConfig(SimMode mode, ctr::SchemeKind scheme)
{
    SystemConfig cfg = mode == SimMode::Timing
                           ? SystemConfig::timingDefault()
                           : SystemConfig::functionalDefault();
    cfg.scheme = scheme;
    cfg.rmcc = false;
    return {ctr::schemeKindName(scheme), cfg};
}

NamedConfig
rmccConfig(SimMode mode)
{
    NamedConfig nc = baselineConfig(mode, ctr::SchemeKind::Morphable);
    nc.label = "RMCC";
    nc.cfg.rmcc = true;
    return nc;
}

void
applyFastEnv(std::vector<NamedConfig> &configs)
{
    const auto fast = util::envString("RMCC_FAST");
    if (!fast || (*fast)[0] == '0')
        return;
    for (NamedConfig &nc : configs) {
        nc.cfg.trace_records /= 8;
        nc.cfg.warmup_records /= 8;
    }
}

} // namespace rmcc::sim
