/**
 * @file
 * Experiment results: the windowed statistics one simulation run yields
 * and the derived metrics the paper's figures report.
 */
#ifndef RMCC_SIM_REPORT_HPP
#define RMCC_SIM_REPORT_HPP

#include <string>

#include "util/stats.hpp"

namespace rmcc::sim
{

/**
 * Measured outcome of one (workload, configuration) run, restricted to
 * the observation window (after warm-up).
 */
struct SimResult
{
    std::string workload;
    std::string config_label;
    util::StatSet stats;   //!< MC + sim counters, observation window.

    // Timing-mode only:
    std::uint64_t instructions = 0; //!< Instructions in the window.
    double elapsed_ns = 0.0;        //!< Window wall time.

    /** Instructions per nanosecond (timing mode). */
    double perf() const
    {
        return elapsed_ns > 0.0
                   ? static_cast<double>(instructions) / elapsed_ns
                   : 0.0;
    }

    /** Fraction of LLC misses that suffered an L0 counter miss (Fig 3). */
    double counterMissRate() const
    {
        return stats.ratio("ctr.l0_miss", "mc.reads");
    }

    /** Average LLC-miss read latency in ns (Fig 14). */
    double avgReadLatencyNs() const
    {
        return stats.ratio("lat.read_sum_ns", "mc.reads");
    }

    /** Memoization hit rate among counter-missing reads (Fig 10). */
    double memoHitRateOnMiss() const
    {
        return stats.ratio("memo.l0_hit_on_miss",
                           "memo.l0_lookups_on_miss");
    }

    /** Memoization hit rate over all counter uses (Fig 19/21). */
    double memoHitRateAll() const
    {
        return stats.ratio("memo.l0_hit_all", "memo.l0_lookups_all");
    }

    /** Fraction of counter misses fully accelerated (Sec VI headline). */
    double acceleratedMissRate() const
    {
        return stats.ratio("memo.accelerated_misses", "ctr.l0_miss");
    }

    /** Total 64 B DRAM transfers in the window. */
    double dramAccesses() const { return stats.get("dram.total"); }

    /** TLB misses per LLC miss (Fig 4). */
    double tlbMissPerLlcMiss() const
    {
        return stats.ratio("tlb.misses", "mc.reads");
    }
};

/** Print every counter of a result (debugging aid). */
void printResult(const SimResult &r);

} // namespace rmcc::sim

#endif // RMCC_SIM_REPORT_HPP
